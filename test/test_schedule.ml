open Util
module D = Asr.Domain
module G = Asr.Graph
module B = Asr.Block
module F = Asr.Fixpoint
module S = Asr.Schedule

let domain = Alcotest.testable (fun ppf v -> Fmt.string ppf (D.to_string v)) D.equal

let strategies = [ F.Chaotic; F.Scheduled; F.Worklist ]

(* Chain of [n] unary gains declared output-first (the block created
   first is the one feeding the output), so declaration order is the
   exact reverse of dependency order. *)
let reversed_chain n =
  let g = G.create "chain" in
  let blocks = Array.init n (fun _ -> G.add_block g (B.gain 1)) in
  let input = G.add_input g "x" in
  let output = G.add_output g "y" in
  G.connect g ~src:(G.out_port input 0) ~dst:(G.in_port blocks.(n - 1) 0);
  for i = n - 1 downto 1 do
    G.connect g ~src:(G.out_port blocks.(i) 0) ~dst:(G.in_port blocks.(i - 1) 0)
  done;
  G.connect g ~src:(G.out_port blocks.(0) 0) ~dst:(G.in_port output 0);
  g

(* y = mux(sel, 5, y): constructive delay-free cycle (test_asr's
   muxloop). Blocks: five=0, mux=1, fork=2. *)
let mux_cycle () =
  let g = G.create "muxloop" in
  let sel = G.add_input g "sel" in
  let five = G.add_block g (B.const ~name:"five" (Asr.Data.Int 5)) in
  let mux = G.add_block g B.mux in
  let fork = G.add_block g (B.fork 2) in
  let o = G.add_output g "y" in
  G.connect g ~src:(G.out_port sel 0) ~dst:(G.in_port mux 0);
  G.connect g ~src:(G.out_port five 0) ~dst:(G.in_port mux 1);
  G.connect g ~src:(G.out_port mux 0) ~dst:(G.in_port fork 0);
  G.connect g ~src:(G.out_port fork 0) ~dst:(G.in_port mux 2);
  G.connect g ~src:(G.out_port fork 1) ~dst:(G.in_port o 0);
  g

(* Outputs 1 on ⊥, 2 on any defined input: retracts once its input
   becomes defined. *)
let evil_block () =
  B.make ~name:"evil" ~n_in:1 ~n_out:1 (fun inputs ->
      match inputs.(0) with
      | D.Bottom -> [| D.int 1 |]
      | D.Def _ -> [| D.int 2 |])

(* Drive a compiled system through [stream] under one strategy at the
   Fixpoint level, recording full net vectors and outputs per instant. *)
let run_fix compiled ?order ~strategy stream =
  let delays =
    ref (Array.map (fun (_, _, init) -> init) compiled.G.c_delays)
  in
  List.map
    (fun inputs ->
      let r = F.eval compiled ~inputs ~delay_values:!delays ?order ~strategy () in
      delays := F.delay_next compiled r;
      (Array.to_list r.F.nets, F.outputs compiled r))
    stream

let shuffled_order ~seed n =
  let rng = Random.State.make [| seed |] in
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  order

let suite =
  [ (* Tarjan / schedule structure *)
    case "reversed chain: all acyclic, schedule is topological" (fun () ->
        let n = 10 in
        let compiled = G.compile (reversed_chain n) in
        let s = S.of_compiled compiled in
        Alcotest.(check bool) "feed-forward" true (S.is_feed_forward s);
        Alcotest.(check int) "no cyclic blocks" 0 (S.cyclic_block_count s);
        List.iter
          (function
            | S.Acyclic _ -> ()
            | S.Cyclic _ -> Alcotest.fail "unexpected cyclic group")
          (S.groups s);
        (* dependency order is block n-1, n-2, ..., 0 *)
        Alcotest.(check (list int)) "topological order"
          (List.init n (fun i -> n - 1 - i))
          (Array.to_list (S.linear_order s)));
    case "two-block cycle is one cyclic SCC" (fun () ->
        let g = G.create "tight" in
        let a = G.add_block g B.identity in
        let b = G.add_block g B.identity in
        G.connect g ~src:(G.out_port a 0) ~dst:(G.in_port b 0);
        G.connect g ~src:(G.out_port b 0) ~dst:(G.in_port a 0);
        let s = S.of_compiled (G.compile g) in
        Alcotest.(check bool) "not feed-forward" false (S.is_feed_forward s);
        Alcotest.(check int) "two cyclic blocks" 2 (S.cyclic_block_count s);
        match S.groups s with
        | [ S.Cyclic members ] ->
            Alcotest.(check (list int)) "members" [ 0; 1 ]
              (Array.to_list members)
        | _ -> Alcotest.fail "expected exactly one cyclic group");
    case "self-loop is a cyclic singleton" (fun () ->
        let g = G.create "self" in
        let a = G.add_block g B.identity in
        G.connect g ~src:(G.out_port a 0) ~dst:(G.in_port a 0);
        match S.groups (S.of_compiled (G.compile g)) with
        | [ S.Cyclic [| 0 |] ] -> ()
        | _ -> Alcotest.fail "expected one cyclic singleton");
    case "SCCs come out in condensation topological order" (fun () ->
        (* a<->b then b -> c<->d: component {a,b} must precede {c,d} *)
        let g = G.create "two-sccs" in
        let a = G.add_block g (B.fork 2) in
        let b = G.add_block g B.identity in
        let c = G.add_block g B.add in
        let d = G.add_block g B.identity in
        G.connect g ~src:(G.out_port a 0) ~dst:(G.in_port b 0);
        G.connect g ~src:(G.out_port b 0) ~dst:(G.in_port a 0);
        G.connect g ~src:(G.out_port a 1) ~dst:(G.in_port c 0);
        G.connect g ~src:(G.out_port c 0) ~dst:(G.in_port d 0);
        G.connect g ~src:(G.out_port d 0) ~dst:(G.in_port c 1);
        let compiled = G.compile g in
        Alcotest.(check (list (list int))) "ordered components"
          [ [ 0; 1 ]; [ 2; 3 ] ]
          (List.map (List.sort compare) (S.sccs compiled)));
    (* strategy semantics *)
    case "mux cycle converges to 5 under every strategy" (fun () ->
        let compiled = G.compile (mux_cycle ()) in
        List.iter
          (fun strategy ->
            let r =
              F.eval compiled
                ~inputs:[ ("sel", D.bool true) ]
                ~delay_values:[||] ~strategy ()
            in
            match F.outputs compiled r with
            | [ ("y", v) ] ->
                Alcotest.check domain
                  (F.strategy_name strategy ^ " value") (D.int 5) v
            | _ -> Alcotest.fail "one output expected")
          strategies);
    case "cyclic SCC iteration stays within the monotone bound" (fun () ->
        (* SCC {mux, fork} writes 3 nets; bound is 3 + 2 rounds *)
        let compiled = G.compile (mux_cycle ()) in
        let r =
          F.eval compiled
            ~inputs:[ ("sel", D.bool true) ]
            ~delay_values:[||] ~strategy:F.Scheduled ()
        in
        Alcotest.(check bool) "within bound" true (r.F.iterations <= 5);
        Alcotest.(check bool) "needed inner iteration" true (r.F.iterations >= 2));
    case "cyclic retraction raises Nonmonotonic under every strategy" (fun () ->
        let build () =
          let g = G.create "evil-cycle" in
          let e = G.add_block g (evil_block ()) in
          let fork = G.add_block g (B.fork 2) in
          let o = G.add_output g "y" in
          G.connect g ~src:(G.out_port e 0) ~dst:(G.in_port fork 0);
          G.connect g ~src:(G.out_port fork 0) ~dst:(G.in_port e 0);
          G.connect g ~src:(G.out_port fork 1) ~dst:(G.in_port o 0);
          G.compile g
        in
        List.iter
          (fun strategy ->
            Alcotest.(check bool)
              (F.strategy_name strategy ^ " raises")
              true
              (try
                 ignore
                   (F.eval (build ()) ~inputs:[] ~delay_values:[||] ~strategy ());
                 false
               with F.Nonmonotonic _ -> true))
          strategies);
    case "feed-forward retraction: chaotic and worklist raise" (fun () ->
        (* evil declared before its producer, as in test_asr *)
        let build () =
          let g = G.create "evil" in
          let e = G.add_block g (evil_block ()) in
          let gain = G.add_block g (B.gain 1) in
          let i = G.add_input g "x" in
          let o = G.add_output g "y" in
          G.connect g ~src:(G.out_port i 0) ~dst:(G.in_port gain 0);
          G.connect g ~src:(G.out_port gain 0) ~dst:(G.in_port e 0);
          G.connect g ~src:(G.out_port e 0) ~dst:(G.in_port o 0);
          G.compile g
        in
        List.iter
          (fun strategy ->
            Alcotest.(check bool)
              (F.strategy_name strategy ^ " raises")
              true
              (try
                 ignore
                   (F.eval (build ())
                      ~inputs:[ ("x", D.int 1) ]
                      ~delay_values:[||] ~strategy ());
                 false
               with F.Nonmonotonic _ -> true))
          [ F.Chaotic; F.Worklist ];
        (* the static schedule applies an acyclic block exactly once,
           with final inputs: the documented evaluate-once semantics *)
        let r =
          F.eval (build ())
            ~inputs:[ ("x", D.int 1) ]
            ~delay_values:[||] ~strategy:F.Scheduled ()
        in
        match F.outputs (build ()) r with
        | [ ("y", v) ] -> Alcotest.check domain "value at final inputs" (D.int 2) v
        | _ -> Alcotest.fail "one output expected");
    case "strict delay-free cycle stays bottom under every strategy" (fun () ->
        let g = G.create "loop" in
        let a = G.add_block g B.add in
        let fork = G.add_block g (B.fork 2) in
        let i = G.add_input g "x" in
        let o = G.add_output g "y" in
        G.connect g ~src:(G.out_port i 0) ~dst:(G.in_port a 0);
        G.connect g ~src:(G.out_port a 0) ~dst:(G.in_port fork 0);
        G.connect g ~src:(G.out_port fork 0) ~dst:(G.in_port a 1);
        G.connect g ~src:(G.out_port fork 1) ~dst:(G.in_port o 0);
        let compiled = G.compile g in
        List.iter
          (fun strategy ->
            let r =
              F.eval compiled
                ~inputs:[ ("x", D.int 1) ]
                ~delay_values:[||] ~strategy ()
            in
            match F.outputs compiled r with
            | [ ("y", v) ] ->
                Alcotest.check domain (F.strategy_name strategy) D.Bottom v
            | _ -> Alcotest.fail "one output expected")
          strategies);
    case "explicit order is rejected under non-chaotic strategies" (fun () ->
        let compiled = G.compile (reversed_chain 3) in
        List.iter
          (fun strategy ->
            Alcotest.(check bool)
              (F.strategy_name strategy ^ " rejects order")
              true
              (try
                 ignore
                   (F.eval compiled
                      ~inputs:[ ("x", D.int 1) ]
                      ~delay_values:[||] ~order:[| 0; 1; 2 |] ~strategy ());
                 false
               with Invalid_argument _ -> true))
          [ F.Scheduled; F.Worklist ];
        Alcotest.(check bool) "Simulate.create rejects the combination" true
          (try
             ignore
               (Asr.Simulate.create ~order:[| 0; 1; 2 |]
                  ~strategy:F.Scheduled (reversed_chain 3));
             false
           with Invalid_argument _ -> true));
    (* evaluation-count accounting *)
    case "schedule and worklist evaluate acyclic blocks exactly once" (fun () ->
        let n = 30 and instants = 5 in
        let drive strategy =
          let sim = Asr.Simulate.create ~strategy (reversed_chain n) in
          let outs =
            List.init instants (fun t ->
                Asr.Simulate.step sim [ ("x", D.int t) ])
          in
          (outs, Asr.Simulate.block_evaluations sim)
        in
        let chaotic_outs, chaotic_evals = drive F.Chaotic in
        let scheduled_outs, scheduled_evals = drive F.Scheduled in
        let worklist_outs, worklist_evals = drive F.Worklist in
        Alcotest.(check bool) "same outputs" true
          (chaotic_outs = scheduled_outs && chaotic_outs = worklist_outs);
        Alcotest.(check int) "scheduled: n per instant" (n * instants)
          scheduled_evals;
        Alcotest.(check int) "worklist: n per instant" (n * instants)
          worklist_evals;
        Alcotest.(check bool) "chaotic pays >= 5x on the reversed chain" true
          (chaotic_evals >= 5 * scheduled_evals));
    case "simulate exposes its schedule and strategy" (fun () ->
        let sim = Asr.Simulate.create (reversed_chain 4) in
        Alcotest.(check bool) "worklist default" true
          (Asr.Simulate.strategy sim = F.Worklist);
        Alcotest.(check int) "schedule covers all blocks" 4
          (S.block_count (Asr.Simulate.schedule sim));
        ignore (Asr.Simulate.step sim [ ("x", D.int 1) ]);
        Alcotest.(check bool) "evaluations counted" true
          (Asr.Simulate.block_evaluations sim > 0);
        Asr.Simulate.reset sim;
        Alcotest.(check int) "reset clears the counter" 0
          (Asr.Simulate.block_evaluations sim));
    (* differential properties on random well-formed systems *)
    qcase ~count:120 "random systems: scheduled/worklist nets match chaotic"
      Test_random_graphs.arbitrary_spec
      (fun spec ->
        let g = Test_random_graphs.build spec in
        let compiled = G.compile g in
        let stream = Test_random_graphs.stimuli spec in
        let reference = run_fix compiled ~strategy:F.Chaotic stream in
        let shuffled =
          let n = Array.length compiled.G.c_blocks in
          run_fix compiled
            ~order:(shuffled_order ~seed:spec.Test_random_graphs.sp_seed n)
            ~strategy:F.Chaotic stream
        in
        (* On mismatch, re-run through the causal tracer and report the
           earliest divergent (instant, block, net) instead of a bare
           false — the counterexample then names the culprit block. *)
        let against strategy =
          reference = run_fix compiled ~strategy stream
          ||
          let a =
            Asr.Trace.record ~strategy:F.Chaotic
              (Test_random_graphs.build spec)
              stream
          in
          let b =
            Asr.Trace.record ~strategy (Test_random_graphs.build spec) stream
          in
          match Asr.Trace.first_divergence a b with
          | Some d ->
              QCheck.Test.fail_reportf "chaotic vs %s: %s"
                (F.strategy_name strategy)
                (Asr.Trace.divergence_to_string d)
          | None ->
              QCheck.Test.fail_reportf
                "chaotic vs %s: runs differ but recorded fixed points agree"
                (F.strategy_name strategy)
        in
        against F.Scheduled && against F.Worklist && reference = shuffled);
    qcase ~count:100 "random systems: schedule agrees with cycle detection"
      Test_random_graphs.arbitrary_spec
      (fun spec ->
        let g = Test_random_graphs.build spec in
        let s = S.of_compiled (G.compile g) in
        G.has_causality_cycle g = not (S.is_feed_forward s)
        && S.block_count s = G.block_count g);
    qcase ~count:100 "random systems: worklist never exceeds chaotic evaluations"
      Test_random_graphs.arbitrary_spec
      (fun spec ->
        (* chaotic re-sweeps everything; the worklist (seeded in schedule
           order through Simulate) only re-evaluates on input changes *)
        let stream = Test_random_graphs.stimuli spec in
        let evals strategy =
          let sim =
            Asr.Simulate.create ~strategy (Test_random_graphs.build spec)
          in
          List.iter (fun i -> ignore (Asr.Simulate.step sim i)) stream;
          Asr.Simulate.block_evaluations sim
        in
        evals F.Worklist <= evals F.Chaotic) ]
