open Util
module D = Asr.Domain
module Dt = Asr.Data
module G = Asr.Graph
module B = Asr.Block
module S = Asr.Supervisor
module I = Asr.Inject
module Fx = Asr.Fixpoint
module Sim = Asr.Simulate
module K = Asr.Checkpoint
module Cd = Asr.Codec
module C = Telemetry.Causal
module J = Telemetry.Json
module M = Telemetry.Monitor
module E = Javatime.Elaborate

(* ---- helpers ----------------------------------------------------- *)

let jget path j =
  List.fold_left
    (fun acc k -> match acc with Some o -> J.member k o | None -> None)
    (Some j) path

let jint path j =
  match jget path j with
  | Some (J.Int n) -> n
  | _ -> Alcotest.failf "missing int at %s" (String.concat "." path)

(* x --gain 2--> (+) --> y, with the adder's second arm fed back
   through a delay: y(t) = 2 x(t) + y(t-1). *)
let chain_graph () =
  let g = G.create "chain" in
  let x = G.add_input g "x" in
  let gn = G.add_block g (B.gain 2) in
  G.connect g ~src:(G.out_port x 0) ~dst:(G.in_port gn 0);
  let add = G.add_block g B.add in
  G.connect g ~src:(G.out_port gn 0) ~dst:(G.in_port add 0);
  let f = G.add_block g (B.fork 2) in
  G.connect g ~src:(G.out_port add 0) ~dst:(G.in_port f 0);
  let d = G.add_delay g ~init:(D.int 0) in
  G.connect g ~src:(G.out_port f 0) ~dst:(G.in_port d 0);
  G.connect g ~src:(G.out_port d 0) ~dst:(G.in_port add 1);
  let y = G.add_output g "y" in
  G.connect g ~src:(G.out_port f 1) ~dst:(G.in_port y 0);
  g

let chain_stream n = List.init n (fun t -> [ ("x", D.int (t + 1)) ])

let persistent_trap ~block ~instant =
  { I.i_block = block;
    i_kind = I.Trap;
    i_instant = instant;
    i_persistence = I.Persistent;
    i_first_only = false }

(* The full attachment set the CLI wires up, over an instrumented copy
   of [g]. *)
let attach ?policy ?escalate_after ?(inject = []) ?(causal = false)
    ~strategy g =
  let injector = if inject = [] then None else Some (I.make inject) in
  let g' = match injector with None -> g | Some inj -> I.instrument inj g in
  let sup =
    Option.map (fun p -> S.create ~policy:p ?escalate_after ()) policy
  in
  let cz =
    if causal then Some (C.create ~n_nets:(G.compile g).G.n_nets ())
    else None
  in
  let sim =
    Sim.create ~strategy
      ~telemetry:(Telemetry.Registry.create ())
      ?supervisor:sup
      ~monitor:(M.create ())
      ?causal:cz g'
  in
  (sim, injector)

let rec drop n = function _ :: tl when n > 0 -> drop (n - 1) tl | l -> l

let outputs_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun xs ys ->
         List.length xs = List.length ys
         && List.for_all2
              (fun (n1, v1) (n2, v2) ->
                String.equal n1 n2 && Cd.value_eq v1 v2)
              xs ys)
       a b

(* Drive [sim] over [stream] (ticking [injector]), stopping on a
   Fail_fast abort; returns completed outputs and the fault, if any. *)
let run_to_end sim injector stream =
  let outs = ref [] and fatal = ref None in
  (try
     List.iter
       (fun inputs ->
         outs := Sim.step sim inputs :: !outs;
         Option.iter I.tick injector)
       stream
   with S.Fatal f -> fatal := Some f);
  (List.rev !outs, !fatal)

(* Oracle run that also captures a checkpoint at instant boundary
   [at]. *)
let run_capturing ?policy ?escalate_after ?(inject = []) ?(causal = false)
    ~strategy ~at g stream =
  let sim, injector =
    attach ?policy ?escalate_after ~inject ~causal ~strategy g
  in
  let ck = ref None in
  let outs = ref [] and fatal = ref None in
  (try
     List.iteri
       (fun i inputs ->
         if i = at then
           ck := Some (K.capture ~system:"test" ~seed:5 ?injector sim);
         outs := Sim.step sim inputs :: !outs;
         Option.iter I.tick injector)
       stream
   with S.Fatal f -> fatal := Some f);
  let final =
    match !fatal with
    | Some _ -> None
    | None -> Some (K.capture ~system:"test" ~seed:5 ?injector sim)
  in
  (Option.get !ck, List.rev !outs, final, !fatal)

(* Resume [ck] (through a JSON round-trip) against clean [g] and drive
   the remaining instants. *)
let resume_and_run ck g stream =
  let ck = K.of_json (K.to_json ck) in
  let r = K.resume ck g in
  let start = K.instant ck in
  let routs, rfatal = run_to_end r.K.r_sim r.K.r_injector (drop start stream) in
  let final =
    match rfatal with
    | Some _ -> None
    | None ->
        Some
          (K.capture ~system:"test" ~seed:5 ?injector:r.K.r_injector
             r.K.r_sim)
  in
  (r, start, routs, final, rfatal)

(* A resumed run converged: identical suffix outputs and a final
   checkpoint byte-identical to the oracle's (or, on aborted runs, the
   same abort instant and fault). *)
let converged ~oracle_outs ~oracle_final ~oracle_fatal ~start ~routs ~final
    ~rfatal =
  outputs_eq routs (drop start oracle_outs)
  &&
  match (oracle_fatal, rfatal) with
  | None, None -> K.equal (Option.get oracle_final) (Option.get final)
  | Some f, Some f' ->
      start + List.length routs = List.length oracle_outs
      && String.equal (S.fault_to_string f) (S.fault_to_string f')
  | _ -> false

let bits_roundtrip f =
  match J.float_of_bits (J.float_bits f) with
  | Some f' -> Int64.bits_of_float f' = Int64.bits_of_float f
  | None -> false

(* ---- generators -------------------------------------------------- *)

let arbitrary_data =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ map (fun n -> Dt.Int n) small_signed_int;
        map (fun b -> Dt.Real (Int64.float_of_bits b)) ui64;
        map (fun b -> Dt.Bool b) bool;
        map (fun s -> Dt.Str s) (small_string ~gen:printable);
        map (fun l -> Dt.Int_array (Array.of_list l))
          (small_list small_signed_int);
        return Dt.Absent ]
  in
  let data =
    oneof [ scalar; map (fun l -> Dt.Tuple l) (list_size (int_range 0 4) scalar) ]
  in
  QCheck.make
    ~print:(fun v -> J.to_string (Cd.value_json v))
    (oneof [ map (fun d -> D.Def d) data; return D.Bottom ])

let suite =
  [
    (* ---- shared IEEE-754 codec ---- *)
    case "float bits codec is bit-exact on the special values" (fun () ->
        List.iter
          (fun f ->
            Alcotest.(check bool)
              (Printf.sprintf "bits 0x%Lx" (Int64.bits_of_float f))
              true (bits_roundtrip f))
          [ 0.0; -0.0; 1.5; -3.25; Float.pi; min_float; max_float;
            epsilon_float; infinity; neg_infinity; nan;
            (* a non-default NaN payload *)
            Int64.float_of_bits 0x7ff0000000deadL ]);
    qcase ~count:200 "every 64-bit pattern rides through float_bits"
      (QCheck.make ~print:(Printf.sprintf "0x%Lx") QCheck.Gen.ui64)
      (fun b -> bits_roundtrip (Int64.float_of_bits b));
    qcase ~count:200 "domain values round-trip through the codec"
      arbitrary_data
      (fun v -> Cd.value_eq v (Cd.value_of_json (Cd.value_json v)));

    (* ---- simulator state ---- *)
    case "simulate state export/import resumes bit-identically" (fun () ->
        let stream = chain_stream 8 in
        let a = Sim.create ~strategy:Fx.Worklist (chain_graph ()) in
        List.iter (fun i -> ignore (Sim.step a i)) (List.filteri (fun i _ -> i < 4) stream);
        let st = Sim.export_state a in
        let b = Sim.create ~strategy:Fx.Worklist (chain_graph ()) in
        Sim.import_state b st;
        let rest = drop 4 stream in
        let out_a = List.map (Sim.step a) rest in
        let out_b = List.map (Sim.step b) rest in
        Alcotest.(check bool) "suffixes agree" true (outputs_eq out_a out_b);
        Alcotest.(check int) "instant restored" (Sim.instant_count a)
          (Sim.instant_count b));
    case "simulate import_state rejects a foreign graph" (fun () ->
        let a = Sim.create (chain_graph ()) in
        ignore (Sim.step a [ ("x", D.int 1) ]);
        let st = Sim.export_state a in
        let g = G.create "other" in
        let x = G.add_input g "x" in
        let y = G.add_output g "y" in
        G.connect g ~src:(G.out_port x 0) ~dst:(G.in_port y 0);
        let b = Sim.create g in
        (match Sim.import_state b st with
        | () -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ()));

    (* ---- supervisor state ---- *)
    case "supervisor state round-trips, quarantine included" (fun () ->
        let g = chain_graph () in
        let sim, injector =
          attach ~policy:S.Hold_last ~escalate_after:2
            ~inject:[ persistent_trap ~block:0 ~instant:1 ]
            ~strategy:Fx.Scheduled g
        in
        let _ = run_to_end sim injector (chain_stream 6) in
        let sup = Option.get (Sim.supervisor sim) in
        Alcotest.(check bool) "quarantined" true (S.is_quarantined sup 0);
        let st = S.state_json sup in
        let sup' = S.create ~policy:S.Hold_last ~escalate_after:2 () in
        S.attach sup' (G.compile g);
        S.restore_state sup' st;
        Alcotest.(check string) "state identical"
          (J.to_string st)
          (J.to_string (S.state_json sup'));
        Alcotest.(check bool) "quarantine restored" true
          (S.is_quarantined sup' 0);
        Alcotest.(check int) "fault log restored" (S.fault_count sup)
          (S.fault_count sup'));
    case "supervisor state_json refuses an open instant" (fun () ->
        let sup = S.create () in
        S.attach sup (G.compile (chain_graph ()));
        S.begin_instant sup;
        match S.state_json sup with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());

    (* ---- monitor and causal state ---- *)
    case "monitor state round-trips through JSON" (fun () ->
        let m = M.create () in
        let sim = Sim.create ~monitor:m (chain_graph ()) in
        List.iter (fun i -> ignore (Sim.step sim i)) (chain_stream 5);
        let st = M.state_json m in
        let m' = M.create () in
        M.restore_state m' st;
        Alcotest.(check string) "state identical" (J.to_string st)
          (J.to_string (M.state_json m'));
        Alcotest.(check int) "instants" (M.instants m) (M.instants m'));
    case "causal state export/of_state preserves the continuable log"
      (fun () ->
        let g = chain_graph () in
        let cz = C.create ~n_nets:(G.compile g).G.n_nets () in
        let sim = Sim.create ~causal:cz g in
        List.iter (fun i -> ignore (Sim.step sim i)) (chain_stream 4);
        let st = C.export_state cz in
        let cz' = C.of_state st in
        Alcotest.(check int) "pushed" (C.pushed cz) (C.pushed cz');
        let render = C.event_json ~render:Cd.value_json in
        Alcotest.(check (list string))
          "events identical"
          (List.map (fun e -> J.to_string (render e)) (C.events cz))
          (List.map (fun e -> J.to_string (render e)) (C.events cz')));

    (* ---- checkpoint round-trip differentials ---- *)
    case "resume from a mid-run checkpoint is bit-identical" (fun () ->
        let g = chain_graph () in
        let stream = chain_stream 10 in
        List.iter
          (fun strategy ->
            let ck, outs, final, fatal =
              run_capturing ~policy:(S.Retry 2)
                ~inject:[ persistent_trap ~block:1 ~instant:3 ]
                ~causal:true ~strategy ~at:5 g stream
            in
            let _, start, routs, rfinal, rfatal = resume_and_run ck g stream in
            Alcotest.(check bool)
              (Fx.strategy_name strategy ^ " converged")
              true
              (converged ~oracle_outs:outs ~oracle_final:final
                 ~oracle_fatal:fatal ~start ~routs ~final:rfinal ~rfatal))
          [ Fx.Chaotic; Fx.Scheduled; Fx.Worklist; Fx.Fused ]);
    case "mid-quarantine resume carries the quarantine set" (fun () ->
        let g = chain_graph () in
        let stream = chain_stream 10 in
        let ck, outs, final, fatal =
          run_capturing ~policy:S.Hold_last ~escalate_after:2
            ~inject:[ persistent_trap ~block:0 ~instant:1 ]
            ~strategy:Fx.Worklist ~at:6 g stream
        in
        let r, start, routs, rfinal, rfatal = resume_and_run ck g stream in
        Alcotest.(check bool) "resumed supervisor mid-quarantine" true
          (S.is_quarantined (Option.get r.K.r_supervisor) 0);
        Alcotest.(check bool) "converged" true
          (converged ~oracle_outs:outs ~oracle_final:final
             ~oracle_fatal:fatal ~start ~routs ~final:rfinal ~rfatal));
    case "fail-fast abort: boundary checkpoint resumes and re-aborts"
      (fun () ->
        (* the CLI's abort path: a checkpoint captured at the last
           boundary before the Fatal, saved to disk, loaded post-mortem,
           and the resumed run re-aborts identically *)
        let g = chain_graph () in
        let stream = chain_stream 8 in
        let ck, outs, final, fatal =
          run_capturing ~policy:S.Fail_fast
            ~inject:[ persistent_trap ~block:1 ~instant:4 ]
            ~strategy:Fx.Fused ~at:3 g stream
        in
        Alcotest.(check bool) "oracle aborted" true (Option.is_some fatal);
        Alcotest.(check int) "aborted at the faulty instant" 4
          (List.length outs);
        let path = Filename.temp_file "ck-abort" ".json" in
        let m = M.create () in
        K.save ~monitor:m ck path;
        let writes, bytes, _, failures = M.checkpoint_stats m in
        Alcotest.(check int) "one write accounted" 1 writes;
        Alcotest.(check bool) "bytes accounted" true (bytes > 0);
        Alcotest.(check int) "no failures" 0 failures;
        let ck' = K.load path in
        Sys.remove path;
        Alcotest.(check bool) "artifact identical" true (K.equal ck ck');
        let _, start, routs, rfinal, rfatal = resume_and_run ck' g stream in
        Alcotest.(check bool) "re-aborts identically" true
          (converged ~oracle_outs:outs ~oracle_final:final
             ~oracle_fatal:fatal ~start ~routs ~final:rfinal ~rfatal));
    case "failed checkpoint write raises the data-loss flag" (fun () ->
        let g = chain_graph () in
        let sim = Sim.create g in
        ignore (Sim.step sim [ ("x", D.int 1) ]);
        let ck = K.capture ~system:"test" sim in
        let m = M.create () in
        (match K.save ~monitor:m ck "/nonexistent-dir/ck.json" with
        | () -> Alcotest.fail "expected Sys_error"
        | exception Sys_error _ -> ());
        let _, _, _, failures = M.checkpoint_stats m in
        Alcotest.(check int) "failure accounted" 1 failures;
        Alcotest.(check int) "data_loss flag raised" 1
          (jint [ "data_loss"; "checkpoint_write_failures" ] (M.snapshot m)));
    case "of_json rejects an unsupported version" (fun () ->
        let sim = Sim.create (chain_graph ()) in
        let ck = K.capture ~system:"test" sim in
        let tampered =
          match K.to_json ck with
          | J.Obj kvs ->
              J.Obj
                (List.map
                   (function
                     | ("version", _) -> ("version", J.Int 999)
                     | kv -> kv)
                   kvs)
          | _ -> Alcotest.fail "object expected"
        in
        match K.of_json tampered with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    qcase ~count:40
      "random systems: resumed campaigns converge under every policy"
      Test_random_graphs.arbitrary_spec
      (fun spec ->
        let g = Test_random_graphs.build spec in
        let stream =
          List.map
            (fun bindings ->
              List.map (fun (n, v) -> (n, v)) bindings)
            (Test_random_graphs.stimuli spec)
        in
        let n = List.length stream in
        if n < 2 then true
        else
          let n_blocks = Array.length (G.compile g).G.c_blocks in
          let inject =
            I.plan ~seed:spec.Test_random_graphs.sp_seed ~n_blocks
              ~instants:n ~n_faults:2 ~first_only:false ()
          in
          let strategy, policy =
            match spec.Test_random_graphs.sp_seed mod 4 with
            | 0 -> (Fx.Scheduled, S.Hold_last)
            | 1 -> (Fx.Worklist, S.Retry 1)
            | 2 -> (Fx.Fused, S.Absent)
            | _ -> (Fx.Chaotic, S.Hold_last)
          in
          let at = 1 + (spec.Test_random_graphs.sp_seed mod (n - 1)) in
          let ck, outs, final, fatal =
            run_capturing ~policy ~inject ~strategy ~at g stream
          in
          let _, start, routs, rfinal, rfatal = resume_and_run ck g stream in
          converged ~oracle_outs:outs ~oracle_final:final ~oracle_fatal:fatal
            ~start ~routs ~final:rfinal ~rfatal);

    (* ---- machine payloads and re-application safety ---- *)
    case "machine snapshot restores a stateful reaction" (fun () ->
        let src =
          {|class Counter extends ASR {
              private int total;
              Counter() { declarePorts(1, 1); total = 0; }
              public void run() { total = total + readPort(0); writePort(0, total); }
            }|}
        in
        let elab = E.elaborate (check_src src) ~cls:"Counter" in
        Alcotest.(check int) "1+2+3" 6
          (List.fold_left (fun _ x -> react_int elab x) 0 [ 1; 2; 3 ]);
        let snap = E.machine_state_json elab in
        Alcotest.(check int) "advanced past the snapshot" 16
          (react_int elab 10);
        E.restore_machine_json elab snap;
        Alcotest.(check int) "restored: 6 + 4" 10 (react_int elab 4);
        (* the serialized payload restores too, not just the live copy *)
        E.restore_machine_json elab (J.parse (J.to_string snap));
        Alcotest.(check int) "JSON round-trip restores" 7 (react_int elab 1));
    case "re-applicable block: N applications behave as one" (fun () ->
        let src =
          {|class Acc extends ASR {
              private int total;
              Acc() { declarePorts(1, 1); total = 0; }
              public void run() { total = total + readPort(0); writePort(0, total); }
            }|}
        in
        let elab = E.elaborate (check_src src) ~cls:"Acc" in
        let block, new_instant = E.to_reapplicable_block elab in
        let apply x =
          match B.apply block [| D.int x |] with
          | [| v |] -> Option.get (D.to_int v)
          | _ -> Alcotest.fail "one output expected"
        in
        new_instant ();
        Alcotest.(check int) "first application" 5 (apply 5);
        Alcotest.(check int) "re-application is idempotent" 5 (apply 5);
        Alcotest.(check int) "third application too" 5 (apply 5);
        new_instant ();
        Alcotest.(check int) "next instant accumulates once" 8 (apply 3);
        new_instant ();
        Alcotest.(check int) "and again" 9 (apply 1));
  ]
