(* Shared helpers for the test suites. *)

let contains ~substring s =
  let n = String.length substring and m = String.length s in
  if n = 0 then true
  else
    let rec loop i = i + n <= m && (String.sub s i n = substring || loop (i + 1)) in
    loop 0

let check_src ?(file = "<test>") src = Mj.Typecheck.check_source ~file src

let parse ?(file = "<test>") src = Mj.Parser.parse_program ~file src

(* Console output of [cls]'s static main() under each engine. *)
let interp_output src cls =
  let session = Mj_runtime.Interp.create (check_src src) in
  Mj_runtime.Interp.run_main session cls;
  Mj_runtime.Interp.output session

let vm_output src cls =
  let session = Mj_bytecode.Vm.create (check_src src) in
  Mj_bytecode.Vm.run_main session cls;
  Mj_bytecode.Vm.output session

let jit_output src cls =
  let session = Mj_bytecode.Jit.create (check_src src) in
  Mj_bytecode.Jit.run_main session cls;
  Mj_bytecode.Jit.output session

(* Expect a compile error whose message contains [substring]. *)
let expect_compile_error ?(substring = "") src =
  match Mj.Typecheck.check_source ~file:"<test>" src with
  | (_ : Mj.Typecheck.checked) ->
      Alcotest.failf "expected a compile error (containing %S)" substring
  | exception Mj.Diag.Compile_error d ->
      if not (contains ~substring d.Mj.Diag.message) then
        Alcotest.failf "error %S does not mention %S" d.Mj.Diag.message substring

let expect_runtime_error ?(substring = "") f =
  match f () with
  | _ -> Alcotest.failf "expected a runtime error (containing %S)" substring
  | exception Mj_runtime.Heap.Runtime_error message ->
      if not (contains ~substring message) then
        Alcotest.failf "runtime error %S does not mention %S" message substring

let case name f = Alcotest.test_case name `Quick f

(* Every qcheck property runs from a pinned seed so a CI failure
   reproduces locally bit-for-bit; QCHECK_SEED overrides it to explore
   other parts of the space. The seed in effect is printed when a
   property fails. *)
let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> 0x5eed)
  | None -> 0x5eed

let qcase ?(count = 100) name gen prop =
  let rand = Random.State.make [| qcheck_seed |] in
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand (QCheck.Test.make ~count ~name gen prop)
  in
  let run args =
    try run args
    with e ->
      Printf.eprintf
        "qcheck failure in %S under deterministic seed %d; rerun with \
         QCHECK_SEED=%d (or another seed) to reproduce or explore\n\
         %!"
        name qcheck_seed qcheck_seed;
      raise e
  in
  (name, speed, run)

(* A tiny ASR harness: one int input port, one int output port. *)
let react_int elab x =
  match Javatime.Elaborate.react elab [| Asr.Domain.int x |] with
  | [| v |] -> Option.get (Asr.Domain.to_int v)
  | outs -> Alcotest.failf "expected 1 output, got %d" (Array.length outs)
