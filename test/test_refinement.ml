(* The refinement checker (Verify): per-transform verification
   conditions over the provenance chain, trace correspondence between
   seeded low-level schedules and the refined instant stream, the
   canonical violation ordering of policy reports, and the fused-path
   provenance differential. *)

open Util
module V = Javatime.Verify
module R = Analysis.Refinement
module Rule = Policy.Rule

let fir_program () =
  Mj.Parser.parse_program ~file:"fir.mj" Workloads.Fir_mj.unrestricted_source

let jpeg_program () =
  Mj.Parser.parse_program ~file:"jpeg.mj"
    (Workloads.Jpeg_mj.unrestricted_source ~width:16 ~height:8 ())

(* ------------------------------------------------------------------ *)
(* Layer 1: verification conditions                                    *)
(* ------------------------------------------------------------------ *)

let applied_transforms outcome =
  List.concat_map
    (fun s ->
      List.map (fun a -> a.Javatime.Engine.a_transform) s.Javatime.Engine.applied)
    outcome.Javatime.Engine.steps

let vc_tests =
  [ case "fir: every applied transform discharges its VCs" (fun () ->
        let report, outcome = V.check_program (fir_program ()) in
        Alcotest.(check bool) "compliant" true outcome.Javatime.Engine.compliant;
        Alcotest.(check int) "no failed VC" 0 report.V.v_failed;
        Alcotest.(check bool) "some VCs discharged" true
          (report.V.v_discharged > 0);
        Alcotest.(check (list string))
          "one VC step per applied transform"
          (applied_transforms outcome)
          (List.map (fun s -> s.V.s_transform) report.V.v_steps);
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (s.V.s_transform ^ " has at least one VC")
              true (s.V.s_vcs <> []);
            List.iter
              (fun vc ->
                if not vc.R.vc_ok then
                  Alcotest.failf "VC failed: %s %s: %s" vc.R.vc_transform
                    vc.R.vc_site vc.R.vc_detail)
              s.V.s_vcs)
          report.V.v_steps;
        Alcotest.(check bool) "thread elimination justified" true
          report.V.v_races.R.vc_ok);
    case "jpeg: the codec chain's VCs all discharge" (fun () ->
        let report, _ = V.check_program (jpeg_program ()) in
        Alcotest.(check int) "no failed VC" 0 report.V.v_failed;
        Alcotest.(check bool) "some VCs discharged" true
          (report.V.v_discharged > 0);
        Alcotest.(check bool) "chain is non-trivial" true
          (List.length report.V.v_steps > 1));
    case "a broken transform is rejected with a blocking violation"
      (fun () ->
        (* A while->for that installs the loop's update expression as
           the for-update while also leaving it in the body, so it runs
           twice per iteration. *)
        let mk d = { Mj.Ast.stmt = d; sloc = Mj.Loc.dummy } in
        let broken =
          { Javatime.Transforms.id = "while-to-for";
            description = "broken while->for (update applied twice)";
            apply =
              (fun checked ->
                let count = ref 0 in
                let rewrite s =
                  match s.Mj.Ast.stmt with
                  | Mj.Ast.While (cond, body) -> (
                      let stmts =
                        match body.Mj.Ast.stmt with
                        | Mj.Ast.Block l -> l
                        | _ -> [ body ]
                      in
                      match List.rev stmts with
                      | { Mj.Ast.stmt = Mj.Ast.Expr u; _ } :: _ ->
                          incr count;
                          mk
                            (Mj.Ast.For
                               (None, Some cond, Some u,
                                mk (Mj.Ast.Block stmts)))
                      | _ -> s)
                  | _ -> s
                in
                let program =
                  Javatime.Rewrite.map_program_bodies
                    (fun ~cls:_ stmts -> List.map rewrite stmts)
                    checked.Mj.Typecheck.program
                in
                (program, !count)) }
        in
        let catalogue =
          List.map
            (fun t ->
              if String.equal t.Javatime.Transforms.id "while-to-for" then
                broken
              else t)
            Javatime.Transforms.catalogue
        in
        let report, _ = V.check_program ~catalogue (fir_program ()) in
        Alcotest.(check bool) "some VC failed" true (report.V.v_failed > 0);
        match V.violations_of_report report with
        | [] -> Alcotest.fail "expected blocking violations"
        | violations ->
            List.iter
              (fun v ->
                Alcotest.(check bool) "blocking" true (Rule.is_blocking v);
                Alcotest.(check string) "rule id" "R11-verified-refinement"
                  v.Rule.rule_id;
                Alcotest.(check bool) "carries the before span" true
                  (List.mem_assoc "before" v.Rule.related))
              violations);
    case "thread elimination on a racy program fails its VC" (fun () ->
        let program =
          Mj.Parser.parse_program ~file:"fig8.mj"
            Workloads.Fig8_mj.threaded_source
        in
        let report, _ = V.check_program program in
        Alcotest.(check bool) "races VC fails" false report.V.v_races.R.vc_ok;
        Alcotest.(check bool) "detail names the race" true
          (contains ~substring:"race" report.V.v_races.R.vc_detail);
        let violations = V.violations_of_report report in
        Alcotest.(check bool) "reported as a blocking violation" true
          (List.exists Rule.is_blocking violations)) ]

(* ------------------------------------------------------------------ *)
(* Layer 2: trace correspondence                                       *)
(* ------------------------------------------------------------------ *)

(* A design whose reaction spawns a worker thread and joins it before
   reading the result: genuinely interleaved under the seeded
   scheduler, yet race-free, so every schedule must abstract to the
   refined stream. *)
let pipe_source =
  {|class Worker extends Thread {
  public int acc;
  Worker() {}
  public void run() {
    int i = 0;
    while (i < 8) {
      acc = acc + i;
      Thread.yield();
      i = i + 1;
    }
  }
}

class Pipe extends ASR {
  Pipe() {
    declarePorts(1, 1);
  }
  public void run() {
    int x = readPort(0);
    Worker w = new Worker();
    w.start();
    w.join();
    writePort(0, x + w.acc);
  }
}
|}

let correspondence_tests =
  [ case "fir: every seeded schedule refines the instant stream" (fun () ->
        let corr =
          V.trace_correspondence ~schedules:10 ~instants:4 (fir_program ())
            ~cls:"FirFilter"
        in
        Alcotest.(check (list string)) "no failures" [] corr.V.c_failures;
        Alcotest.(check int) "schedules" 10 corr.V.c_schedules;
        (* three strategy agreements (scheduled, worklist, fused vs
           chaotic) plus one correspondence per seed *)
        Alcotest.(check int) "checked" 13 corr.V.c_checked;
        Alcotest.(check (list string))
          "all four strategies, chaotic readmitted"
          [ "chaotic"; "scheduled"; "worklist"; "fused" ]
          corr.V.c_strategies);
    case "jpeg: array ports are calibrated and correspond" (fun () ->
        let corr =
          V.trace_correspondence ~schedules:3 ~instants:2 (jpeg_program ())
            ~cls:"JpegCodec"
        in
        Alcotest.(check (list string)) "no failures" [] corr.V.c_failures;
        Alcotest.(check bool) "checked" true (corr.V.c_checked >= 5));
    case "threaded worker: genuine interleavings abstract to the stream"
      (fun () ->
        let program = Mj.Parser.parse_program ~file:"pipe.mj" pipe_source in
        let corr =
          V.trace_correspondence ~schedules:25 ~instants:6 program ~cls:"Pipe"
        in
        Alcotest.(check (list string)) "no failures" [] corr.V.c_failures;
        Alcotest.(check int) "schedules" 25 corr.V.c_schedules);
    case "the abstraction function takes the last write per port"
      (fun () ->
        let events =
          [ { Mj_runtime.Threads.thread = -1;
              description = "writePort(0, 1)" };
            { thread = -1; description = "readPort(0, 7)" };
            { thread = -1; description = "writePort(0, 5)" };
            { thread = 2; description = "writePort(2, [3;4])" } ]
        in
        let outs = V.abstract_outputs ~n_out:3 events in
        Alcotest.(check bool) "port 0 holds the last write" true
          (Asr.Domain.equal outs.(0) (Asr.Domain.int 5));
        Alcotest.(check bool) "unwritten port is bottom" true
          (Asr.Domain.equal outs.(1) Asr.Domain.Bottom);
        Alcotest.(check bool) "array write snapshots the payload" true
          (Asr.Domain.equal outs.(2) (Asr.Domain.int_array [| 3; 4 |])));
    (let spec = lazy (
       let outcome = Javatime.Engine.refine (fir_program ()) in
       V.spec_stream ~strategy:Asr.Fixpoint.Scheduled ~instants:4
         outcome.Javatime.Engine.checked ~cls:"FirFilter")
     in
     qcase ~count:40 "random seeds: low-level fir traces match the spec"
       QCheck.(int_range 1 100_000)
       (fun seed ->
         let checked =
           Mj.Typecheck.check_source ~file:"fir.mj"
             Workloads.Fir_mj.unrestricted_source
         in
         let low =
           V.low_stream ~seed ~instants:4 checked ~cls:"FirFilter"
         in
         let spec = Lazy.force spec in
         List.for_all2
           (fun s l -> Array.for_all2 Asr.Domain.equal s l)
           spec low)) ]

(* ------------------------------------------------------------------ *)
(* Satellite: canonical violation ordering of policy reports           *)
(* ------------------------------------------------------------------ *)

let ordering_tests =
  let pos line col = { Mj.Loc.line; col; offset = 0 } in
  let loc ?(file = "a.mj") line col =
    Mj.Loc.make ~file ~start_pos:(pos line col) ~end_pos:(pos line (col + 1))
  in
  let rule id =
    { Rule.id; title = id; paper_ref = "test"; check = (fun _ -> []) }
  in
  let v rule_id l =
    Rule.make_violation ~rule:(rule rule_id) ~loc:l ~subject:"S" "m"
  in
  [ case "order_violations groups by first-seen rule, then location"
      (fun () ->
        (* R9 first reported, then R10: the grouped order must keep R9
           before R10 even though "R10" < "R9" lexicographically. *)
        let input =
          [ v "R9" (loc 5 1); v "R10" (loc 1 1); v "R9" (loc 2 3);
            v "R10" (loc 9 1); v "R9" (loc 2 1) ]
        in
        let got =
          List.map
            (fun x ->
              (x.Rule.rule_id, x.Rule.loc.Mj.Loc.start_pos.Mj.Loc.line,
               x.Rule.loc.Mj.Loc.start_pos.Mj.Loc.col))
            (Rule.order_violations input)
        in
        Alcotest.(check (list (triple string int int)))
          "rule then (file, line, col)"
          [ ("R9", 2, 1); ("R9", 2, 3); ("R9", 5, 1);
            ("R10", 1, 1); ("R10", 9, 1) ]
          got);
    case "order_violations sorts by file before line" (fun () ->
        let input = [ v "R1" (loc ~file:"b.mj" 1 1); v "R1" (loc ~file:"a.mj" 9 9) ] in
        match Rule.order_violations input with
        | [ first; second ] ->
            Alcotest.(check string) "a.mj first" "a.mj"
              first.Rule.loc.Mj.Loc.file;
            Alcotest.(check string) "b.mj second" "b.mj"
              second.Rule.loc.Mj.Loc.file
        | _ -> Alcotest.fail "expected both violations back");
    case "report_to_json emits rule-then-location order" (fun () ->
        let input =
          [ v "R7" (loc 8 1); v "R3" (loc 2 2); v "R7" (loc 1 1) ]
        in
        let json = Rule.report_to_json input in
        let idx s =
          let n = String.length s and m = String.length json in
          let rec go i =
            if i + n > m then Alcotest.failf "%s not in report" s
            else if String.sub json i n = s then i
            else go (i + 1)
          in
          go 0
        in
        (* R7's two sites (line 1 before line 8) precede R3's. *)
        let r7a = idx "\"line\":1," and r7b = idx "\"line\":8," in
        let r3 = idx "\"line\":2," in
        Alcotest.(check bool) "R7 line 1 first" true (r7a < r7b);
        Alcotest.(check bool) "R7 precedes R3" true (r7b < r3));
    case "asr policy report on the threaded program is canonically ordered"
      (fun () ->
        let checked =
          Mj.Typecheck.check_source ~file:"fig8.mj"
            Workloads.Fig8_mj.threaded_source
        in
        let report = Policy.Asr_policy.check checked in
        Alcotest.(check bool) "has violations" true (report <> []);
        (* Idempotence: the checker already returns canonical order. *)
        let key x =
          (x.Rule.rule_id, x.Rule.loc.Mj.Loc.file,
           x.Rule.loc.Mj.Loc.start_pos.Mj.Loc.line,
           x.Rule.loc.Mj.Loc.start_pos.Mj.Loc.col)
        in
        Alcotest.(check (list (pair string (triple string int int))))
          "already canonical"
          (List.map
             (fun x ->
               let a, b, c, d = key x in
               (a, (b, c, d)))
             (Rule.order_violations report))
          (List.map
             (fun x ->
               let a, b, c, d = key x in
               (a, (b, c, d)))
             report)) ]

(* ------------------------------------------------------------------ *)
(* Satellite: provenance audit under the fused strategy                *)
(* ------------------------------------------------------------------ *)

let fused_audit_tests =
  [ case "refine --audit then fused simulation matches scheduled" (fun () ->
        let audit () =
          let outcome =
            Javatime.Engine.refine ~provenance:true (fir_program ())
          in
          match outcome.Javatime.Engine.provenance with
          | None -> Alcotest.fail "provenance missing"
          | Some p -> (outcome, p)
        in
        let outcome_s, prov_s = audit () in
        let outcome_f, prov_f = audit () in
        Alcotest.(check string)
          "p_final identical across runs" prov_s.Javatime.Provenance.p_final
          prov_f.Javatime.Provenance.p_final;
        let stream strategy outcome =
          V.spec_stream ~strategy ~instants:6 outcome.Javatime.Engine.checked
            ~cls:"FirFilter"
        in
        let scheduled = stream Asr.Fixpoint.Scheduled outcome_s in
        let fused = stream Asr.Fixpoint.Fused outcome_f in
        List.iter2
          (fun s f ->
            Alcotest.(check bool) "fixpoints identical" true
              (Array.for_all2 Asr.Domain.equal s f))
          scheduled fused) ]

let suite = vc_tests @ correspondence_tests @ ordering_tests @ fused_audit_tests
