open Util
module Sk = Telemetry.Sketch
module W = Telemetry.Window
module Rc = Telemetry.Recorder
module M = Telemetry.Monitor
module J = Telemetry.Json
module R = Telemetry.Registry
module D = Asr.Domain
module G = Asr.Graph
module S = Asr.Supervisor
module I = Asr.Inject

(* ------------------------------------------------------------------ *)
(* Sketch: mergeable quantiles with a relative-error guarantee         *)
(* ------------------------------------------------------------------ *)

let exact_quantile sorted q =
  let n = Array.length sorted in
  sorted.(int_of_float (Float.floor (q *. float_of_int (n - 1))))

let feed values =
  let s = Sk.create () in
  List.iter (Sk.add s) values;
  s

let sketch_tests =
  [ case "empty sketch: nan quantiles, zero counts" (fun () ->
        let s = Sk.create () in
        Alcotest.(check int) "count" 0 (Sk.count s);
        Alcotest.(check bool) "q nan" true (Float.is_nan (Sk.quantile s 0.5));
        Alcotest.(check bool) "min nan" true (Float.is_nan (Sk.min_value s)));
    case "zeros are recorded, not dropped" (fun () ->
        let s = feed [ 0.0; 0.0; 5.0 ] in
        Alcotest.(check int) "count" 3 (Sk.count s);
        Alcotest.(check int) "zeros" 2 (Sk.zero_count s);
        Alcotest.(check (float 0.0)) "p25 is zero" 0.0 (Sk.quantile s 0.25));
    case "nan, infinities and negatives count as out-of-range" (fun () ->
        let s = feed [ 1.0; nan; infinity; neg_infinity; -3.0 ] in
        Alcotest.(check int) "oor" 4 (Sk.out_of_range s);
        Alcotest.(check int) "count excludes them" 1 (Sk.count s);
        match J.member "out_of_range" (Sk.to_json s) with
        | Some (J.Int 4) -> ()
        | _ -> Alcotest.fail "to_json must flag out_of_range");
    case "quantiles of 1..1000 stay within the relative-error bound"
      (fun () ->
        let values = List.init 1000 (fun i -> float_of_int (i + 1)) in
        let s = feed values in
        let sorted = Array.of_list values in
        Array.sort compare sorted;
        List.iter
          (fun q ->
            let exact = exact_quantile sorted q in
            let est = Sk.quantile s q in
            let rel = Float.abs (est -. exact) /. exact in
            if rel > Sk.alpha s +. 1e-9 then
              Alcotest.failf "q=%.2f exact=%.1f est=%.3f rel=%.4f" q exact est
                rel)
          [ 0.0; 0.25; 0.5; 0.75; 0.95; 0.99; 1.0 ]);
    case "bucket overflow collapses and is flagged, never silent" (fun () ->
        let s = Sk.create ~alpha:0.05 ~max_buckets:16 () in
        for i = 0 to 99 do
          Sk.add s (Float.pow 2.0 (float_of_int (i mod 40)))
        done;
        Alcotest.(check bool) "collapsed flagged" true (Sk.collapsed s > 0);
        Alcotest.(check int) "count intact" 100 (Sk.count s);
        Alcotest.(check bool)
          "top quantile survives collapse" true
          (Float.abs (Sk.quantile s 1.0 -. Sk.max_value s)
          <= 0.11 *. Sk.max_value s));
    case "copy is independent of the original" (fun () ->
        let s = feed [ 1.0; 2.0; 3.0 ] in
        let c = Sk.copy s in
        Alcotest.(check bool) "equal after copy" true (Sk.equal s c);
        Sk.add s 100.0;
        Alcotest.(check int) "copy unchanged" 3 (Sk.count c);
        Alcotest.(check bool) "diverged" false (Sk.equal s c));
    case "clear empties everything" (fun () ->
        let s = feed [ 1.0; -1.0; 0.0 ] in
        Sk.clear s;
        Alcotest.(check int) "count" 0 (Sk.count s);
        Alcotest.(check int) "oor" 0 (Sk.out_of_range s);
        Alcotest.(check bool) "empty buckets" true (Sk.buckets s = []));
    case "bucket memo survives interleaved values (regression)" (fun () ->
        (* alternating values defeat the one-bucket memo on every add;
           the result must match grouped feeding exactly *)
        let a = Sk.create () and b = Sk.create () in
        for _ = 1 to 500 do
          Sk.add a 10.0;
          Sk.add a 1000.0
        done;
        for _ = 1 to 500 do
          Sk.add b 10.0
        done;
        for _ = 1 to 500 do
          Sk.add b 1000.0
        done;
        Alcotest.(check bool) "order-insensitive" true (Sk.equal a b)) ]

let pos_floats =
  QCheck.(list_of_size Gen.(1 -- 60) (float_range 0.001 1e6))

let any_floats =
  QCheck.(list_of_size Gen.(0 -- 40) (float_range (-5.0) 1e6))

let sketch_qcheck =
  [ qcase ~count:60 "merge is commutative"
      QCheck.(pair any_floats any_floats)
      (fun (xs, ys) ->
        let a = feed xs and b = feed ys in
        let ab = Sk.copy a and ba = Sk.copy b in
        Sk.merge ~into:ab b;
        Sk.merge ~into:ba a;
        Sk.equal ab ba);
    qcase ~count:60 "merge is associative"
      QCheck.(triple any_floats any_floats any_floats)
      (fun (xs, ys, zs) ->
        let a = feed xs and b = feed ys and c = feed zs in
        let left = Sk.copy a in
        Sk.merge ~into:left b;
        Sk.merge ~into:left c;
        let bc = Sk.copy b in
        Sk.merge ~into:bc c;
        let right = Sk.copy a in
        Sk.merge ~into:right bc;
        Sk.equal left right);
    qcase ~count:100 "quantile is monotone in q"
      QCheck.(pair pos_floats (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
      (fun (xs, (q1, q2)) ->
        let s = feed xs in
        let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
        Sk.quantile s lo <= Sk.quantile s hi +. 1e-9);
    qcase ~count:100 "estimates stay within alpha of the exact oracle"
      pos_floats
      (fun xs ->
        let s = feed xs in
        let sorted = Array.of_list xs in
        Array.sort compare sorted;
        List.for_all
          (fun q ->
            let exact = exact_quantile sorted q in
            Float.abs (Sk.quantile s q -. exact)
            <= (Sk.alpha s *. exact) +. 1e-9)
          [ 0.5; 0.95; 0.99 ]) ]

(* ------------------------------------------------------------------ *)
(* Window: sliding aggregations                                        *)
(* ------------------------------------------------------------------ *)

let window_tests =
  [ case "ring evicts oldest; aggregates cover the window only" (fun () ->
        let w = W.create ~capacity:4 () in
        List.iter (W.push w) [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ];
        Alcotest.(check int) "size" 4 (W.size w);
        Alcotest.(check int) "pushed" 6 (W.pushed w);
        Alcotest.(check (float 1e-9)) "min" 3.0 (W.min_value w);
        Alcotest.(check (float 1e-9)) "max" 6.0 (W.max_value w);
        Alcotest.(check (float 1e-9)) "mean" 4.5 (W.mean w);
        Alcotest.(check (float 1e-9)) "last" 6.0 (W.last w));
    case "ewma seeds on the first sample and tracks the stream" (fun () ->
        let w = W.create ~ewma_alpha:0.5 ~capacity:4 () in
        W.push w 10.0;
        Alcotest.(check (float 1e-9)) "seeded" 10.0 (W.ewma w);
        W.push w 0.0;
        Alcotest.(check (float 1e-9)) "decays" 5.0 (W.ewma w));
    case "clear resets to empty" (fun () ->
        let w = W.create ~capacity:4 () in
        W.push w 1.0;
        W.clear w;
        Alcotest.(check int) "size" 0 (W.size w);
        Alcotest.(check bool) "mean nan" true (Float.is_nan (W.mean w))) ]

(* ------------------------------------------------------------------ *)
(* Recorder: flight ring with loss accounting                          *)
(* ------------------------------------------------------------------ *)

let push_i r i =
  Rc.push_values r ~instant:i ~cycles:(10 * i) ~iterations:1 ~block_evals:i
    ~net_churn:0 ~faults:(if i = 3 then 1 else 0)

let recorder_tests =
  [ case "wrap keeps the newest records and counts the loss" (fun () ->
        let r = Rc.create ~capacity:3 () in
        for i = 0 to 4 do
          push_i r i
        done;
        Alcotest.(check int) "size" 3 (Rc.size r);
        Alcotest.(check int) "overwrites" 2 (Rc.overwrites r);
        Alcotest.(check (list int)) "chronological tail" [ 2; 3; 4 ]
          (List.map (fun rec_ -> rec_.Rc.r_instant) (Rc.records r));
        match J.member "overwrites" (Rc.dump r) with
        | Some (J.Int 2) -> ()
        | _ -> Alcotest.fail "dump must flag overwrites");
    case "push and push_values are interchangeable" (fun () ->
        let a = Rc.create ~capacity:4 () and b = Rc.create ~capacity:4 () in
        for i = 0 to 5 do
          push_i a i;
          Rc.push b
            { Rc.r_instant = i; r_cycles = 10 * i; r_iterations = 1;
              r_block_evals = i; r_net_churn = 0;
              r_faults = (if i = 3 then 1 else 0) }
        done;
        Alcotest.(check bool) "same records" true (Rc.records a = Rc.records b);
        Alcotest.(check bool)
          "same dump" true
          (J.to_string (Rc.dump a) = J.to_string (Rc.dump b)));
    case "dump round-trips through the JSON parser" (fun () ->
        let r = Rc.create ~capacity:3 () in
        for i = 0 to 4 do
          push_i r i
        done;
        match J.parse (J.to_string (Rc.dump r)) with
        | parsed -> (
            match J.member "records" parsed with
            | Some (J.List rs) ->
                Alcotest.(check int) "retained records" 3 (List.length rs)
            | _ -> Alcotest.fail "records missing")
        | exception J.Parse_error msg -> Alcotest.fail msg) ]

(* ------------------------------------------------------------------ *)
(* Monitor: batched commit, spikes, snapshots, dumps                   *)
(* ------------------------------------------------------------------ *)

let drive_monitor m evals_of n =
  for i = 0 to n - 1 do
    M.instant_begin m;
    M.instant_end m ~iterations:1 ~block_evals:(evals_of i) ~net_churn:0
      ~faults:0
  done

(* a clock the test scripts: pops one preset timestamp per call *)
let scripted_clock times =
  let q = ref times in
  fun () ->
    match !q with
    | [] -> Alcotest.fail "clock polled past the script"
    | t :: rest ->
        q := rest;
        t

let monitor_tests =
  [ case "batched commit is invisible to every query" (fun () ->
        (* 45 is deliberately not a multiple of the commit batch *)
        let m = M.create () in
        drive_monitor m (fun i -> (i mod 7) + 1) 45;
        let direct = Sk.create () in
        for i = 0 to 44 do
          Sk.add direct (float_of_int ((i mod 7) + 1))
        done;
        Alcotest.(check int) "instants" 45 (M.instants m);
        Alcotest.(check bool)
          "evals sketch identical to unbatched feed" true
          (Sk.equal (M.evals m) direct);
        Alcotest.(check int) "flight ring exact" 45
          (Rc.pushed (M.recorder m));
        Alcotest.(check int) "cum evals exact" 174 (M.cum_block_evals m));
    case "latency spike is flagged against the prior EWMA" (fun () ->
        (* 10 quiet instants of latency 1.0, then one of 100.0 *)
        let lats = List.init 10 (fun _ -> 1.0) @ [ 100.0; 1.0 ] in
        let times =
          List.concat
            (List.mapi
               (fun i l -> [ float_of_int (1000 * i); float_of_int (1000 * i) +. l ])
               lats)
        in
        let m = M.create ~clock:(scripted_clock times) () in
        drive_monitor m (fun _ -> 1) (List.length lats);
        Alcotest.(check int) "one spike" 1 (M.spike_count m));
    case "default tick clock records latency 1.0 per instant" (fun () ->
        let m = M.create () in
        drive_monitor m (fun _ -> 1) 5;
        Alcotest.(check (float 1e-9)) "sum of latencies" 5.0
          (Sk.sum (M.latency m)));
    case "periodic snapshots parse and advance monotonically" (fun () ->
        let lines = ref [] in
        let m =
          M.create ~snapshot_every:4
            ~snapshot_sink:(fun l -> lines := l :: !lines)
            ()
        in
        drive_monitor m (fun _ -> 2) 10;
        Alcotest.(check int) "emitted" 2 (M.snapshots_emitted m);
        let parsed = List.rev_map J.parse !lines in
        let instants =
          List.map
            (fun s ->
              match J.member "instants" s with
              | Some (J.Int n) -> n
              | _ -> Alcotest.fail "snapshot missing instants")
            parsed
        in
        Alcotest.(check (list int)) "snapshot cadence" [ 4; 8 ] instants);
    case "reset returns the monitor to its initial state" (fun () ->
        let m = M.create () in
        drive_monitor m (fun _ -> 3) 40;
        M.reset m;
        Alcotest.(check int) "instants" 0 (M.instants m);
        Alcotest.(check int) "sketch" 0 (Sk.count (M.latency m));
        Alcotest.(check int) "ring" 0 (Rc.pushed (M.recorder m));
        Alcotest.(check int) "spikes" 0 (M.spike_count m);
        Alcotest.(check bool) "health" true (M.health m = [])) ]

(* ------------------------------------------------------------------ *)
(* Monitor wired into the simulator                                    *)
(* ------------------------------------------------------------------ *)

let gain_graph () =
  let g = G.create "t" in
  let b = G.add_block g (Asr.Block.gain 2) in
  let inp = G.add_input g "x" in
  let out = G.add_output g "y" in
  G.connect g ~src:(G.out_port inp 0) ~dst:(G.in_port b 0);
  G.connect g ~src:(G.out_port b 0) ~dst:(G.in_port out 0);
  g

let stream n = List.init n (fun i -> [ ("x", D.int (i mod 3)) ])

let sim_tests =
  [ case "snapshot reconciles exactly with the telemetry registry" (fun () ->
        let reg = R.create () in
        let m = M.create () in
        let sim = Asr.Simulate.create ~telemetry:reg ~monitor:m (gain_graph ()) in
        List.iter (fun i -> ignore (Asr.Simulate.step sim i)) (stream 20);
        let cval name =
          match
            List.find_opt (fun c -> c.R.c_name = name) (R.counters reg)
          with
          | Some c -> c.R.c_value
          | None -> Alcotest.failf "counter %s missing" name
        in
        Alcotest.(check int) "instants" (cval "asr.instants") (M.instants m);
        Alcotest.(check int) "evals"
          (cval "asr.block_evaluations")
          (M.cum_block_evals m));
    case "data-loss flags surface in the snapshot" (fun () ->
        (* tiny ring so it wraps; a negative cycles source so the cycles
           sketch sees out-of-range samples *)
        let m =
          M.create ~recorder_capacity:4 ~cycles_source:(fun () -> -1) ()
        in
        let sim = Asr.Simulate.create ~monitor:m (gain_graph ()) in
        List.iter (fun i -> ignore (Asr.Simulate.step sim i)) (stream 10);
        let snap = M.snapshot m in
        match J.member "data_loss" snap with
        | Some dl ->
            (match J.member "recorder_overwrites" dl with
            | Some (J.Int 6) -> ()
            | v ->
                Alcotest.failf "recorder_overwrites: %s"
                  (match v with Some j -> J.to_string j | None -> "missing"));
            (match J.member "sketch_out_of_range" dl with
            | Some (J.Int 10) -> ()
            | v ->
                Alcotest.failf "sketch_out_of_range: %s"
                  (match v with Some j -> J.to_string j | None -> "missing"))
        | None -> Alcotest.fail "snapshot missing data_loss");
    case "churn_every:1 monitor matches the exact telemetry scan" (fun () ->
        let run ?telemetry () =
          let m = M.create ~churn_every:1 () in
          let sim =
            Asr.Simulate.create ?telemetry ~monitor:m (gain_graph ())
          in
          List.iter (fun i -> ignore (Asr.Simulate.step sim i)) (stream 12);
          M.cum_net_churn m
        in
        let sampled = run () in
        let exact = run ~telemetry:(R.create ()) () in
        Alcotest.(check int) "same churn" exact sampled;
        Alcotest.(check bool) "nonzero on a toggling stream" true (exact > 0));
    case "churn_every:0 disables the scan entirely" (fun () ->
        let m = M.create ~churn_every:0 () in
        let sim = Asr.Simulate.create ~monitor:m (gain_graph ()) in
        List.iter (fun i -> ignore (Asr.Simulate.step sim i)) (stream 12);
        Alcotest.(check int) "no churn recorded" 0 (M.cum_net_churn m));
    case "quarantine dump is deterministic and covers the faulty streak"
      (fun () ->
        let run () =
          let dumps = ref [] in
          let m = M.create ~dump_sink:(fun d -> dumps := d :: !dumps) () in
          let inj =
            I.make
              [ { I.i_block = 0; i_kind = I.Trap; i_instant = 3;
                  i_persistence = I.Persistent; i_first_only = false } ]
          in
          let g = I.instrument inj (gain_graph ()) in
          let sup = S.create ~escalate_after:2 () in
          let sim = Asr.Simulate.create ~supervisor:sup ~monitor:m g in
          List.iter
            (fun i ->
              ignore (Asr.Simulate.step sim i);
              I.tick inj)
            (stream 10);
          (m, List.rev_map J.to_string !dumps)
        in
        let m1, d1 = run () in
        let _, d2 = run () in
        Alcotest.(check bool) "dump emitted" true (d1 <> []);
        Alcotest.(check (list string)) "deterministic" d1 d2;
        (match M.last_dump m1 with
        | Some d -> (
            match J.member "flight" d with
            | Some flight -> (
                match J.member "records" flight with
                | Some (J.List rs) ->
                    let faulty =
                      List.length
                        (List.filter
                           (fun r -> J.member "faults" r = Some (J.Int 1))
                           rs)
                    in
                    Alcotest.(check bool)
                      "streak covered" true (faulty >= 2)
                | _ -> Alcotest.fail "flight records missing")
            | None -> Alcotest.fail "dump missing flight")
        | None -> Alcotest.fail "last_dump missing");
        let q =
          List.filter (fun h -> h.M.h_quarantined) (M.health m1)
        in
        Alcotest.(check int) "one block quarantined" 1 (List.length q);
        Alcotest.(check bool)
          "streak length recorded" true
          (List.for_all (fun h -> h.M.h_max_streak >= 2) q)) ]

let suite =
  sketch_tests @ sketch_qcheck @ window_tests @ recorder_tests
  @ monitor_tests @ sim_tests
