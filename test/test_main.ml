let () =
  Alcotest.run "javatime"
    [ ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("syntax-properties", Test_qcheck_syntax.suite);
      ("typecheck", Test_typecheck.suite);
      ("interp", Test_interp.suite);
      ("threads", Test_threads.suite);
      ("bytecode", Test_bytecode.suite);
      ("asr", Test_asr.suite);
      ("policy", Test_policy.suite);
      ("transforms", Test_transforms.suite);
      ("elaborate", Test_elaborate.suite);
      ("workloads", Test_workloads.suite);
      ("extensions", Test_extensions.suite);
      ("cells", Test_cells.suite);
      ("elevator", Test_elevator.suite);
      ("analysis", Test_analysis.suite);
      ("analysis-extras", Test_analysis_extras.suite);
      ("misc", Test_misc.suite);
      ("random-graphs", Test_random_graphs.suite);
      ("schedule", Test_schedule.suite);
      ("fuse", Test_fuse.suite);
      ("uart", Test_uart.suite);
      ("telemetry", Test_telemetry.suite);
      ("observability", Test_observability.suite);
      ("monitor", Test_monitor.suite);
      ("supervisor", Test_supervisor.suite);
      ("refinement", Test_refinement.suite);
      ("causal", Test_causal.suite);
      ("checkpoint", Test_checkpoint.suite) ]
