open Util
module D = Asr.Domain
module Dt = Asr.Data
module G = Asr.Graph
module B = Asr.Block
module S = Asr.Supervisor
module I = Asr.Inject
module F = Asr.Fuse
module Fx = Asr.Fixpoint
module R = Test_random_graphs

(* ---- reference graphs -------------------------------------------- *)

(* Small FIR: a fork/delay tap line with gain weights and an adder
   chain. Exercises the fused fast lane end to end: fork ports alias
   their source (the delay feed is served by a post-pass copyback),
   gains and adds collapse into chains. *)
let fir_graph taps =
  let g = G.create "fir-test" in
  let x = G.add_input g "x" in
  let src = ref (G.out_port x 0) in
  let taps_out = ref [] in
  for k = 0 to taps - 1 do
    let f = G.add_block g (B.fork 2) in
    G.connect g ~src:!src ~dst:(G.in_port f 0);
    let gn = G.add_block g (B.gain (k + 1)) in
    G.connect g ~src:(G.out_port f 0) ~dst:(G.in_port gn 0);
    taps_out := G.out_port gn 0 :: !taps_out;
    let d = G.add_delay g ~init:(D.int 0) in
    G.connect g ~src:(G.out_port f 1) ~dst:(G.in_port d 0);
    src := G.out_port d 0
  done;
  let gn = G.add_block g (B.gain 7) in
  G.connect g ~src:!src ~dst:(G.in_port gn 0);
  taps_out := G.out_port gn 0 :: !taps_out;
  let acc =
    List.fold_left
      (fun acc src ->
        match acc with
        | None -> Some src
        | Some a ->
            let add = G.add_block g B.add in
            G.connect g ~src:a ~dst:(G.in_port add 0);
            G.connect g ~src ~dst:(G.in_port add 1);
            Some (G.out_port add 0))
      None !taps_out
  in
  let y = G.add_output g "y" in
  G.connect g ~src:(Option.get acc) ~dst:(G.in_port y 0);
  g

(* A fork whose ports feed a mux: the mux reads slots directly, so
   those ports need residual stores at the fork's schedule position
   while the parity port resolves through the alias. *)
let mux_fork_graph () =
  let g = G.create "mux-fork" in
  let x = G.add_input g "x" in
  let f = G.add_block g (B.fork 3) in
  G.connect g ~src:(G.out_port x 0) ~dst:(G.in_port f 0);
  let parity =
    G.add_block g
      (B.map1 ~name:"parity" (function
        | Dt.Int v -> Dt.Bool (v mod 2 = 0)
        | _ -> Dt.Bool false))
  in
  G.connect g ~src:(G.out_port f 0) ~dst:(G.in_port parity 0);
  let neg = G.add_block g B.neg in
  G.connect g ~src:(G.out_port f 1) ~dst:(G.in_port neg 0);
  let m = G.add_block g B.mux in
  G.connect g ~src:(G.out_port parity 0) ~dst:(G.in_port m 0);
  G.connect g ~src:(G.out_port neg 0) ~dst:(G.in_port m 1);
  G.connect g ~src:(G.out_port f 2) ~dst:(G.in_port m 2);
  let y = G.add_output g "y" in
  G.connect g ~src:(G.out_port m 0) ~dst:(G.in_port y 0);
  g

(* Delay-free feedback resolved through a mux (Netgen's pattern): the
   SCC {mux, add} takes the bounded-iteration fallback inside the
   fused reaction. *)
let cyclic_graph () =
  let g = G.create "cyc-test" in
  let x = G.add_input g "x" in
  let parity =
    G.add_block g
      (B.map1 ~name:"parity" (function
        | Dt.Int v -> Dt.Bool (v mod 2 = 0)
        | _ -> Dt.Bool false))
  in
  G.connect g ~src:(G.out_port x 0) ~dst:(G.in_port parity 0);
  let m = G.add_block g B.mux in
  let a = G.add_block g B.add in
  G.connect g ~src:(G.out_port parity 0) ~dst:(G.in_port m 0);
  G.connect g ~src:(G.out_port x 0) ~dst:(G.in_port m 1);
  G.connect g ~src:(G.out_port a 0) ~dst:(G.in_port m 2);
  G.connect g ~src:(G.out_port x 0) ~dst:(G.in_port a 0);
  G.connect g ~src:(G.out_port m 0) ~dst:(G.in_port a 1);
  let y = G.add_output g "y" in
  G.connect g ~src:(G.out_port m 0) ~dst:(G.in_port y 0);
  g

let int_stream n = List.init n (fun t -> [ ("x", D.int (3 * t - 7)) ])

let run_strategy ?strategy g stream =
  let sim = Asr.Simulate.create ?strategy g in
  List.map (Asr.Simulate.step sim) stream

let check_differential name g stream =
  let chaotic = run_strategy ~strategy:Fx.Chaotic g stream in
  let fused = run_strategy ~strategy:Fx.Fused g stream in
  Alcotest.(check bool) name true (chaotic = fused)

(* ---- supervised runners ------------------------------------------ *)

type 'a outcome = Finished of 'a * int | Fatal_at of int * int

let run_injected ~strategy ~policy specs g stream =
  let inj = I.make specs in
  let gi = I.instrument inj g in
  let sup = S.create ~policy () in
  let sim = Asr.Simulate.create ~strategy ~supervisor:sup gi in
  match
    List.map
      (fun inputs ->
        let out = Asr.Simulate.step sim inputs in
        I.tick inj;
        out)
      stream
  with
  | trace -> Finished (trace, List.length (S.faults sup))
  | exception S.Fatal f -> Fatal_at (f.S.f_instant, f.S.f_block)

(* ---- suite ------------------------------------------------------- *)

let suite =
  [ case "fused = chaotic on the FIR tap line (alias + copyback)" (fun () ->
        check_differential "fir" (fir_graph 6) (int_stream 12));
    case "fused = chaotic when a mux reads fork ports (residual stores)"
      (fun () -> check_differential "mux-fork" (mux_fork_graph ()) (int_stream 10));
    case "fused = chaotic through the cyclic SCC fallback" (fun () ->
        check_differential "cyclic" (cyclic_graph ()) (int_stream 10);
        let plan = F.compile (G.compile (cyclic_graph ())) in
        Alcotest.(check int) "SCC blocks" 2 plan.F.f_n_cyclic);
    case "fused = chaotic on non-int data (int-lane fallback)" (fun () ->
        let g = G.create "real-chain" in
        let x = G.add_input g "x" in
        let gn = G.add_block g (B.gain 2) in
        let ng = G.add_block g B.neg in
        let a = G.add_block g B.add in
        G.connect g ~src:(G.out_port x 0) ~dst:(G.in_port gn 0);
        G.connect g ~src:(G.out_port gn 0) ~dst:(G.in_port ng 0);
        G.connect g ~src:(G.out_port ng 0) ~dst:(G.in_port a 0);
        G.connect g ~src:(G.out_port x 0) ~dst:(G.in_port a 1);
        let y = G.add_output g "y" in
        G.connect g ~src:(G.out_port a 0) ~dst:(G.in_port y 0);
        let stream =
          List.init 8 (fun t ->
              [ ( "x",
                  if t mod 2 = 0 then D.int t
                  else D.def (Dt.Real (0.5 +. float_of_int t)) ) ])
        in
        check_differential "real" g stream);
    case "constant folding: template, stats and constant_nets" (fun () ->
        let g = G.create "fold" in
        let c = G.add_block g (B.const ~name:"k5" (Dt.Int 5)) in
        let gn = G.add_block g (B.gain 3) in
        G.connect g ~src:(G.out_port c 0) ~dst:(G.in_port gn 0);
        let x = G.add_input g "x" in
        let a = G.add_block g B.add in
        G.connect g ~src:(G.out_port x 0) ~dst:(G.in_port a 0);
        G.connect g ~src:(G.out_port gn 0) ~dst:(G.in_port a 1);
        let y = G.add_output g "y" in
        G.connect g ~src:(G.out_port a 0) ~dst:(G.in_port y 0);
        let plan = F.compile (G.compile g) in
        Alcotest.(check int) "folded" 2 plan.F.f_n_folded;
        Alcotest.(check bool) "constant 15 visible" true
          (List.exists (fun (_, v) -> v = D.int 15) (F.constant_nets plan));
        Alcotest.(check bool) "describe mentions folding" true
          (contains ~substring:"2 folded" (F.describe plan));
        let outs = run_strategy ~strategy:Fx.Fused g (int_stream 5) in
        Alcotest.(check bool) "y = x + 15" true
          (List.for_all2
             (fun t out -> out = [ ("y", D.int ((3 * t - 7) + 15)) ])
             (List.init 5 Fun.id) outs));
    case "a fold that would trap is declined, then contained at run time"
      (fun () ->
        let g = G.create "declined" in
        let c = G.add_block g (B.const ~name:"kt" (Dt.Bool true)) in
        let gn = G.add_block g (B.gain 2) in
        G.connect g ~src:(G.out_port c 0) ~dst:(G.in_port gn 0);
        let y = G.add_output g "y" in
        G.connect g ~src:(G.out_port gn 0) ~dst:(G.in_port y 0);
        let plan = F.compile (G.compile g) in
        Alcotest.(check int) "only the const folds" 1 plan.F.f_n_folded;
        let sup = S.create ~policy:S.Absent () in
        let sim = Asr.Simulate.create ~strategy:Fx.Fused ~supervisor:sup g in
        let out = Asr.Simulate.step sim [] in
        Alcotest.(check bool) "absent output" true (out = [ ("y", D.Bottom) ]);
        Alcotest.(check bool) "fault contained" true (S.faults sup <> []));
    case "eval counters agree between fused and scheduled" (fun () ->
        let c = G.compile (fir_graph 5) in
        let delays = Array.map (fun (_, _, init) -> init) c.G.c_delays in
        let inputs = [ ("x", D.int 9) ] in
        let count strategy =
          let counts = Array.make (Array.length c.G.c_blocks) 0 in
          let r =
            Fx.eval c ~inputs ~delay_values:delays ~strategy
              ~eval_counts:counts ()
          in
          (counts, r.Fx.block_evaluations)
        in
        let fused, fused_total = count Fx.Fused in
        let sched, _ = count Fx.Scheduled in
        Alcotest.(check bool) "per-block counts equal" true (fused = sched);
        let fast = Fx.eval c ~inputs ~delay_values:delays ~strategy:Fx.Fused () in
        Alcotest.(check int) "fast lane accounts the same evaluations"
          fused_total fast.Fx.block_evaluations);
    case "plan/graph mismatch is rejected" (fun () ->
        let plan = F.compile (G.compile (mux_fork_graph ())) in
        let c = G.compile (fir_graph 3) in
        let delays = Array.map (fun (_, _, init) -> init) c.G.c_delays in
        match
          Fx.eval c ~inputs:[ ("x", D.int 1) ] ~delay_values:delays
            ~strategy:Fx.Fused ~fuse:plan ()
        with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    case "Simulate exposes the plan only under the fused strategy" (fun () ->
        let fused = Asr.Simulate.create ~strategy:Fx.Fused (fir_graph 3) in
        let sched = Asr.Simulate.create ~strategy:Fx.Scheduled (fir_graph 3) in
        Alcotest.(check bool) "some plan" true
          (Asr.Simulate.fuse_plan fused <> None);
        Alcotest.(check bool) "no plan" true
          (Asr.Simulate.fuse_plan sched = None));
    case "strategy name round-trips through of_string" (fun () ->
        Alcotest.(check bool) "fused" true
          (Fx.strategy_of_string (Fx.strategy_name Fx.Fused) = Some Fx.Fused));
    case "netgen workloads: fused = chaotic, evals no worse than scheduled"
      (fun () ->
        List.iter
          (fun seed ->
            let g =
              Workloads.Netgen.generate ~inputs:2 ~delays:3 ~cyclic_ratio:0.1
                ~seed ~depth:6 ~width:8 ()
            in
            let stream = Workloads.Netgen.stimulus g ~instants:10 in
            let run strategy =
              let sim = Asr.Simulate.create ~strategy g in
              let trace = List.map (Asr.Simulate.step sim) stream in
              (trace, Asr.Simulate.block_evaluations sim)
            in
            let chaotic, _ = run Fx.Chaotic in
            let fused, fused_evals = run Fx.Fused in
            let _, sched_evals = run Fx.Scheduled in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d equal" seed)
              true (chaotic = fused);
            Alcotest.(check bool)
              (Printf.sprintf "seed %d evals" seed)
              true
              (fused_evals <= sched_evals))
          [ 1; 7; 42 ]);
    case "interval hints unlock elision at call-indexed sites" (fun () ->
        let checked =
          check_src
            {|class P {
  int src(int t) { return t; }
  void f(int p) {
    int[] a = new int[8];
    a[src(p)] = 1;
  }
}|}
        in
        let bare = Analysis.Elide.plan checked in
        let hinted =
          Analysis.Elide.plan
            ~hints:(fun name _ ->
              if name = "src" then
                Some { Analysis.Interval.lo = 0; hi = 7 }
              else None)
            checked
        in
        Alcotest.(check int) "no elision without the hint" 0
          (Hashtbl.length bare);
        Alcotest.(check int) "hinted site elides" 1 (Hashtbl.length hinted));
    case "imap kernels agree with their data functions on ints" (fun () ->
        List.iter
          (fun b ->
            match b.B.kernel with
            | B.IMap2 (fi, f) ->
                List.iter
                  (fun (x, y) ->
                    Alcotest.(check bool)
                      (Printf.sprintf "%s %d %d" b.B.name x y)
                      true
                      (f (Dt.Int x) (Dt.Int y) = Dt.Int (fi x y)))
                  [ (0, 0); (3, -4); (-17, 5); (1000, 999) ]
            | B.IMap1 (fi, f) ->
                List.iter
                  (fun x ->
                    Alcotest.(check bool)
                      (Printf.sprintf "%s %d" b.B.name x)
                      true
                      (f (Dt.Int x) = Dt.Int (fi x)))
                  [ 0; 3; -17; 1000 ]
            | _ -> Alcotest.failf "%s lost its int specialization" b.B.name)
          [ B.add; B.sub; B.mul; B.gain 5; B.neg ]);
    case "first-divergence localizer pinpoints a broken fused plan" (fun () ->
        (* Failing-first demo: corrupt one mid-net block by +1 on every
           int output, then let the localizer find it. The divergence
           must name exactly the corrupted block at the first instant it
           reacts — not some downstream net that also changed. *)
        let g =
          Workloads.Netgen.generate ~inputs:3 ~delays:2 ~seed:77 ~depth:4
            ~width:5 ()
        in
        let stream = Workloads.Netgen.stimulus g ~instants:6 in
        let target = 5 in
        let broken =
          G.map_blocks g (fun i b ->
              if i <> target then b
              else
                B.make ~name:b.B.name ~n_in:b.B.n_in ~n_out:b.B.n_out
                  (fun ins ->
                    Array.map
                      (function
                        | D.Def (Dt.Int v) -> D.int (v + 1)
                        | v -> v)
                      (b.B.fn ins)))
        in
        let a = Asr.Trace.record ~strategy:Fx.Fused g stream in
        let b = Asr.Trace.record ~strategy:Fx.Fused broken stream in
        match Asr.Trace.first_divergence a b with
        | None -> Alcotest.fail "corrupted plan should diverge"
        | Some d ->
            Alcotest.(check int) "localized block" target d.Asr.Trace.d_block;
            Alcotest.(check int) "first reacting instant" 0
              d.Asr.Trace.d_instant;
            Alcotest.(check bool) "slices attached" true
              (d.Asr.Trace.d_slice_a <> None && d.Asr.Trace.d_slice_b <> None));
    qcase ~count:150 "random systems: fused = chaotic" R.arbitrary_spec
      (fun spec ->
        let stream = R.stimuli spec in
        let chaotic = R.run_graph (R.build spec) stream in
        let sim = Asr.Simulate.create ~strategy:Fx.Fused (R.build spec) in
        let fused = List.map (Asr.Simulate.step sim) stream in
        chaotic = fused
        ||
        (* localize the earliest divergent (instant, block, net) so the
           counterexample names the culprit, not just the seed *)
        let a = Asr.Trace.record ~strategy:Fx.Chaotic (R.build spec) stream in
        let b = Asr.Trace.record ~strategy:Fx.Fused (R.build spec) stream in
        match Asr.Trace.first_divergence a b with
        | Some d ->
            QCheck.Test.fail_reportf "chaotic vs fused: %s"
              (Asr.Trace.divergence_to_string d)
        | None ->
            QCheck.Test.fail_reportf
              "chaotic vs fused: runs differ but recorded fixed points agree");
    qcase ~count:50
      "random systems: supervised fused = supervised chaotic under faults"
      R.arbitrary_spec
      (fun spec ->
        let g () = R.build spec in
        let stream = R.stimuli spec in
        let specs =
          I.plan ~seed:spec.R.sp_seed ~n_blocks:(G.block_count (g ()))
            ~instants:(max 1 (List.length stream))
            ~n_faults:2 ()
        in
        let contained =
          List.for_all
            (fun policy ->
              run_injected ~strategy:Fx.Chaotic ~policy specs (g ()) stream
              = run_injected ~strategy:Fx.Fused ~policy specs (g ()) stream)
            [ S.Hold_last; S.Absent; S.Retry 1 ]
        in
        (* Fail_fast aborts on the first faulty application, and with two
           faulty blocks in one instant "first" depends on evaluation
           order: the fatal instant is strategy-independent, the block
           identity is only pinned by a fixed order (the schedule, which
           the fused plan follows). *)
        let fatal =
          match
            ( run_injected ~strategy:Fx.Chaotic ~policy:S.Fail_fast specs
                (g ()) stream,
              run_injected ~strategy:Fx.Scheduled ~policy:S.Fail_fast specs
                (g ()) stream,
              run_injected ~strategy:Fx.Fused ~policy:S.Fail_fast specs (g ())
                stream )
          with
          | Fatal_at (ic, _), (Fatal_at (is, _) as s), (Fatal_at (i, _) as f)
            ->
              ic = i && s = f && is = i
          | (Finished _ as c), s, f -> c = s && s = f
          | _ -> false
        in
        contained && fatal);
    qcase ~count:50
      "random systems: first-application glitches, fused = scheduled"
      R.arbitrary_spec
      (fun spec ->
        (* first_only faults are sensitive to the number of applications
           per instant, so the oracle is the static schedule (also one
           application per acyclic block) rather than chaotic *)
        let g () = R.build spec in
        let stream = R.stimuli spec in
        let specs =
          I.plan ~seed:(spec.R.sp_seed + 1) ~n_blocks:(G.block_count (g ()))
            ~instants:(max 1 (List.length stream))
            ~n_faults:2 ~first_only:true ()
        in
        List.for_all
          (fun policy ->
            run_injected ~strategy:Fx.Scheduled ~policy specs (g ()) stream
            = run_injected ~strategy:Fx.Fused ~policy specs (g ()) stream)
          [ S.Hold_last; S.Retry 2 ]) ]
