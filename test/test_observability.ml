open Util
module R = Telemetry.Registry
module J = Telemetry.Json
module P = Telemetry.Profile
module L = Telemetry.Lines
module F = Telemetry.Flame

(* ------------------------------------------------------------------ *)
(* Telemetry.Lines: the per-source-line attribution table              *)
(* ------------------------------------------------------------------ *)

let lines_tests =
  [ case "charges accrue to the current position" (fun () ->
        let lt = L.create () in
        L.set lt ~file:"a.mj" ~line:3;
        L.charge lt 10;
        L.charge lt 5;
        L.set lt ~file:"a.mj" ~line:7;
        L.charge lt 2;
        Alcotest.(check int) "total" 17 (L.total lt);
        match L.rows lt with
        | [ r3; r7 ] ->
            Alcotest.(check int) "line 3" 15 r3.L.e_cycles;
            Alcotest.(check int) "line 7" 2 r7.L.e_cycles
        | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
    case "charges before any set are unattributed" (fun () ->
        let lt = L.create () in
        L.charge lt 4;
        match L.rows lt with
        | [ r ] ->
            Alcotest.(check string) "file" "" r.L.e_file;
            Alcotest.(check int) "line" 0 r.L.e_line;
            Alcotest.(check int) "cycles" 4 r.L.e_cycles
        | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
    case "enter/leave restores the caller's position" (fun () ->
        let lt = L.create () in
        L.set lt ~file:"a.mj" ~line:1;
        L.enter lt;
        L.set lt ~file:"a.mj" ~line:9;
        L.charge lt 3;
        L.leave lt;
        (* post-call charge lands on the caller's line, not line 9 *)
        L.charge lt 2;
        let find line =
          List.find (fun r -> r.L.e_line = line) (L.rows lt)
        in
        Alcotest.(check int) "callee" 3 (find 9).L.e_cycles;
        Alcotest.(check int) "caller" 2 (find 1).L.e_cycles);
    case "unbalanced leave is ignored" (fun () ->
        let lt = L.create () in
        L.leave lt;
        L.set lt ~file:"a.mj" ~line:2;
        L.charge lt 1;
        Alcotest.(check int) "total" 1 (L.total lt));
    case "allocs and traps count without charging cycles" (fun () ->
        let lt = L.create () in
        L.set lt ~file:"a.mj" ~line:5;
        L.alloc lt ~words:8;
        L.trap lt;
        Alcotest.(check int) "no cycles" 0 (L.total lt);
        match L.rows lt with
        | [ r ] ->
            Alcotest.(check int) "allocs" 1 r.L.e_allocs;
            Alcotest.(check int) "words" 8 r.L.e_alloc_words;
            Alcotest.(check int) "traps" 1 r.L.e_traps
        | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
    case "by_cycles sorts descending" (fun () ->
        let lt = L.create () in
        L.set lt ~file:"a.mj" ~line:1;
        L.charge lt 5;
        L.set lt ~file:"a.mj" ~line:2;
        L.charge lt 50;
        L.set lt ~file:"a.mj" ~line:3;
        L.charge lt 20;
        Alcotest.(check (list int))
          "order" [ 2; 3; 1 ]
          (List.map (fun r -> r.L.e_line) (L.by_cycles lt))) ]

(* ------------------------------------------------------------------ *)
(* Line tables: compiler emission, serialization, optimizer remapping  *)
(* ------------------------------------------------------------------ *)

let check_src src = Mj.Typecheck.check_source ~file:"t.mj" src

let loop_src =
  {|class Main {
  static int acc = 0;
  static int work(int n) {
    int[] buf = new int[4];
    for (int i = 0; i < n; i = i + 1) {
      buf[i - i / 4 * 4] = i;
      acc = acc + buf[i - i / 4 * 4] * i;
    }
    return acc;
  }
  public static void main() {
    System.out.println(Main.work(10));
  }
}|}

let compiled_methods src =
  Mj_bytecode.Compile.sorted_methods
    (Mj_bytecode.Compile.compile (check_src src))

let assert_table_well_formed mc =
  let open Mj_bytecode.Instr in
  let lines = mc.mc_lines in
  Array.iteri
    (fun i (pc, _) ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "%s.%s entry %d pc increasing" mc.mc_class mc.mc_name
             i)
          true
          (pc > fst lines.(i - 1));
      Alcotest.(check bool)
        (Printf.sprintf "%s.%s entry %d pc in range" mc.mc_class mc.mc_name i)
        true
        (pc >= 0 && pc < Array.length mc.mc_code))
    lines

let linetable_tests =
  [ case "compiler emits sorted in-range line tables" (fun () ->
        let methods = compiled_methods loop_src in
        Alcotest.(check bool) "has methods" true (methods <> []);
        List.iter assert_table_well_formed methods;
        (* user methods with code carry at least one entry *)
        List.iter
          (fun mc ->
            let open Mj_bytecode.Instr in
            if mc.mc_class = "Main" && Array.length mc.mc_code > 1 then
              Alcotest.(check bool)
                (mc.mc_name ^ " has line info")
                true
                (Array.length mc.mc_lines > 0))
          methods);
    case "line_at resolves each table entry and dummy before the first"
      (fun () ->
        let open Mj_bytecode.Instr in
        List.iter
          (fun mc ->
            Array.iter
              (fun (pc, loc) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s pc %d" mc.mc_name pc)
                  true
                  (line_at mc pc = loc))
              mc.mc_lines;
            if Array.length mc.mc_lines > 0 && fst mc.mc_lines.(0) > 0 then
              Alcotest.(check bool)
                (mc.mc_name ^ " dummy before first entry")
                true
                (Mj.Loc.is_dummy (line_at mc 0)))
          (compiled_methods loop_src));
    case "expand_lines covers every pc consistently" (fun () ->
        let open Mj_bytecode.Instr in
        List.iter
          (fun mc ->
            let locs = expand_lines mc in
            Alcotest.(check int)
              (mc.mc_name ^ " one loc per instruction")
              (Array.length mc.mc_code) (Array.length locs);
            Array.iteri
              (fun pc loc ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s pc %d agrees" mc.mc_name pc)
                  true
                  (line_at mc pc = loc))
              locs)
          (compiled_methods loop_src));
    case "classfile round-trip preserves the line table" (fun () ->
        List.iter
          (fun mc ->
            let decoded =
              Mj_bytecode.Classfile.decode_method
                (Mj_bytecode.Classfile.encode_method mc)
            in
            Alcotest.(check bool)
              (mc.Mj_bytecode.Instr.mc_name ^ " lines survive")
              true
              (decoded.Mj_bytecode.Instr.mc_lines
              = mc.Mj_bytecode.Instr.mc_lines);
            Alcotest.(check bool)
              (mc.Mj_bytecode.Instr.mc_name ^ " full method equal")
              true (decoded = mc))
          (compiled_methods loop_src));
    case "optimizer keeps line tables sorted, in range, and anchored"
      (fun () ->
        List.iter
          (fun mc ->
            let mc' = Mj_bytecode.Optimize.method_code mc in
            assert_table_well_formed mc';
            let open Mj_bytecode.Instr in
            if Array.length mc.mc_lines > 0 then begin
              Alcotest.(check bool)
                (mc.mc_name ^ " keeps line info")
                true
                (Array.length mc'.mc_lines > 0);
              (* the entry line of the method survives optimization *)
              let first (m : method_code) =
                (snd m.mc_lines.(0)).Mj.Loc.start_pos.Mj.Loc.line
              in
              Alcotest.(check int)
                (mc.mc_name ^ " first line kept")
                (first mc) (first mc')
            end)
          (compiled_methods loop_src)) ]

(* ------------------------------------------------------------------ *)
(* Per-line reconciliation on all three engines                        *)
(* ------------------------------------------------------------------ *)

let run_with_lines engine src =
  let checked = check_src src in
  let lt = L.create () in
  let cycles =
    match engine with
    | `Interp ->
        let s = Mj_runtime.Interp.create ~lines:lt checked in
        Mj_runtime.Interp.run_main s "Main";
        Mj_runtime.Interp.cycles s
    | `Vm ->
        let s = Mj_bytecode.Vm.create ~lines:lt checked in
        Mj_bytecode.Vm.run_main s "Main";
        Mj_bytecode.Vm.cycles s
    | `Jit ->
        let s = Mj_bytecode.Jit.create ~lines:lt checked in
        Mj_bytecode.Jit.run_main s "Main";
        Mj_bytecode.Jit.cycles s
  in
  (lt, cycles)

let engine_name = function `Interp -> "interp" | `Vm -> "vm" | `Jit -> "jit"

let reconcile_tests =
  List.map
    (fun engine ->
      case
        (Printf.sprintf "line totals reconcile with Cost.cycles (%s)"
           (engine_name engine))
        (fun () ->
          let lt, cycles = run_with_lines engine loop_src in
          Alcotest.(check int) "exact" cycles (L.total lt);
          Alcotest.(check bool) "ran" true (cycles > 0);
          (* the loop body lines carry most of the work *)
          let body =
            List.filter
              (fun r -> r.L.e_file = "t.mj" && r.L.e_line >= 5 && r.L.e_line <= 8)
              (L.rows lt)
          in
          Alcotest.(check bool) "loop lines attributed" true
            (List.exists (fun r -> r.L.e_cycles > 0) body)))
    [ `Interp; `Vm; `Jit ]
  @ [ case "line profiling does not change modeled cycles" (fun () ->
          List.iter
            (fun engine ->
              let _, with_lines = run_with_lines engine loop_src in
              let without =
                let checked = check_src loop_src in
                match engine with
                | `Interp ->
                    let s = Mj_runtime.Interp.create checked in
                    Mj_runtime.Interp.run_main s "Main";
                    Mj_runtime.Interp.cycles s
                | `Vm ->
                    let s = Mj_bytecode.Vm.create checked in
                    Mj_bytecode.Vm.run_main s "Main";
                    Mj_bytecode.Vm.cycles s
                | `Jit ->
                    let s = Mj_bytecode.Jit.create checked in
                    Mj_bytecode.Jit.run_main s "Main";
                    Mj_bytecode.Jit.cycles s
              in
              Alcotest.(check int) (engine_name engine) without with_lines)
            [ `Interp; `Vm; `Jit ]);
      case "bounds trap is attributed to the faulting line" (fun () ->
          let src =
            {|class Main {
  public static void main() {
    int[] a = new int[2];
    a[5] = 1;
  }
}|}
          in
          List.iter
            (fun engine ->
              let checked = check_src src in
              let lt = L.create () in
              let faulted =
                match engine with
                | `Interp -> (
                    let s = Mj_runtime.Interp.create ~lines:lt checked in
                    try
                      Mj_runtime.Interp.run_main s "Main";
                      false
                    with Mj_runtime.Heap.Runtime_error _ -> true)
                | `Vm -> (
                    let s = Mj_bytecode.Vm.create ~lines:lt checked in
                    try
                      Mj_bytecode.Vm.run_main s "Main";
                      false
                    with Mj_runtime.Heap.Runtime_error _ -> true)
              in
              Alcotest.(check bool)
                (engine_name (engine :> [ `Interp | `Vm | `Jit ]) ^ " trapped")
                true faulted;
              match
                List.find_opt (fun r -> r.L.e_traps > 0) (L.rows lt)
              with
              | Some r -> Alcotest.(check int) "line 4" 4 r.L.e_line
              | None -> Alcotest.fail "no trap row recorded")
            [ `Interp; `Vm ]) ]

(* ------------------------------------------------------------------ *)
(* Flamegraph export                                                   *)
(* ------------------------------------------------------------------ *)

let flame_tests =
  [ case "collapse computes self weights over nested spans" (fun () ->
        let reg = R.create () in
        R.enter reg ~cat:"method" "A.main";
        R.enter reg ~cat:"method" "A.helper";
        R.exit reg ();
        R.exit reg ();
        let rows = F.collapse reg in
        (* default clock ticks once per event: main spans 3, helper 1 *)
        Alcotest.(check (list (pair string int)))
          "rows"
          [ ("A.main", 2); ("A.main;A.helper", 1) ]
          rows);
    case "parent chains skip spans of other categories" (fun () ->
        let reg = R.create () in
        R.enter reg ~cat:"method" "A.main";
        R.enter reg ~cat:"phase" "gc";
        R.enter reg ~cat:"method" "A.inner";
        R.exit reg ();
        R.exit reg ();
        R.exit reg ();
        let stacks = List.map fst (F.collapse reg) in
        Alcotest.(check bool)
          "inner folds under main" true
          (List.mem "A.main;A.inner" stacks));
    case "to_string/parse round-trips" (fun () ->
        let rows = [ ("a;b", 12); ("a;c c", 3); ("a", 7) ] in
        Alcotest.(check (list (pair string int)))
          "round trip" rows
          (F.parse (F.to_string rows)));
    case "parse rejects malformed lines" (fun () ->
        match F.parse "nonumberhere" with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected Failure");
    case "flame totals match the flat profile's self cycles" (fun () ->
        let checked = check_src loop_src in
        let reg = R.create () in
        let profile = P.create ~spans:reg () in
        let s =
          Mj_bytecode.Vm.create ~sink:(Mj_runtime.Cost.profile_sink profile)
            checked
        in
        Mj_bytecode.Vm.run_main s "Main";
        let rows = F.collapse reg in
        Alcotest.(check bool) "nonempty" true (rows <> []);
        let leaf_sum = Hashtbl.create 16 in
        List.iter
          (fun (stack, w) ->
            let leaf =
              match String.rindex_opt stack ';' with
              | None -> stack
              | Some i -> String.sub stack (i + 1) (String.length stack - i - 1)
            in
            Hashtbl.replace leaf_sum leaf
              (w + Option.value ~default:0 (Hashtbl.find_opt leaf_sum leaf)))
          rows;
        List.iter
          (fun r ->
            if r.P.r_label <> "<toplevel>" then
              Alcotest.(check int)
                (r.P.r_label ^ " self")
                r.P.r_self
                (Option.value ~default:0 (Hashtbl.find_opt leaf_sum r.P.r_label)))
          (P.rows profile)) ]

(* ------------------------------------------------------------------ *)
(* Refinement provenance                                               *)
(* ------------------------------------------------------------------ *)

let provenance_tests =
  [ case "diff narrows a changed method body to the differing span"
      (fun () ->
        let parse src = Mj.Parser.parse_program ~file:"d.mj" src in
        let before =
          parse
            "class A { int f; void m() { int x = 1; int y = 2; int z = 3; } }"
        in
        let after =
          parse
            "class A { int f; void m() { int x = 1; int y = 9; int z = 3; } }"
        in
        match Javatime.Provenance.diff_program ~before ~after with
        | [ c ] ->
            let open Javatime.Provenance in
            Alcotest.(check string) "class" "A" c.ch_class;
            Alcotest.(check string) "site" "method m" c.ch_site;
            Alcotest.(check bool) "before mentions y = 2" true
              (String.length c.ch_before > 0
              && String.index_opt c.ch_before '2' <> None);
            Alcotest.(check bool) "after mentions 9" true
              (String.index_opt c.ch_after '9' <> None);
            Alcotest.(check bool) "loc is real" true
              (not (Mj.Loc.is_dummy c.ch_loc))
        | cs -> Alcotest.failf "expected 1 change, got %d" (List.length cs));
    case "diff reports added fields and identical programs as empty"
      (fun () ->
        let parse src = Mj.Parser.parse_program ~file:"d.mj" src in
        let a = parse "class A { void m() { } }" in
        let b = parse "class A { int g; void m() { } }" in
        Alcotest.(check int)
          "identical" 0
          (List.length (Javatime.Provenance.diff_program ~before:a ~after:a));
        match Javatime.Provenance.diff_program ~before:a ~after:b with
        | [ c ] ->
            Alcotest.(check string) "site" "field g"
              c.Javatime.Provenance.ch_site;
            Alcotest.(check string) "no before" ""
              c.Javatime.Provenance.ch_before
        | cs -> Alcotest.failf "expected 1 change, got %d" (List.length cs));
    case "refine ~provenance audits every applied transform" (fun () ->
        let outcome =
          Javatime.Engine.refine_source ~file:"fir.mj" ~provenance:true
            Workloads.Fir_mj.unrestricted_source
        in
        match outcome.Javatime.Engine.provenance with
        | None -> Alcotest.fail "provenance missing"
        | Some p ->
            let open Javatime.Provenance in
            Alcotest.(check bool) "compliant" true p.p_compliant;
            let applied =
              List.concat_map
                (fun s ->
                  List.map
                    (fun a -> a.Javatime.Engine.a_transform)
                    s.Javatime.Engine.applied)
                outcome.Javatime.Engine.steps
            in
            let audited =
              List.filter_map (fun it -> it.it_transform) p.p_iterations
            in
            Alcotest.(check (list string))
              "every applied transform audited" applied audited;
            List.iter
              (fun it ->
                if it.it_transform <> None then begin
                  Alcotest.(check bool) "has changes" true (it.it_changes <> []);
                  List.iter
                    (fun c ->
                      if c.ch_before <> "" then
                        Alcotest.(check string)
                          "replaced code carries a source loc" "fir.mj"
                          c.ch_loc.Mj.Loc.file)
                    it.it_changes
                end)
              p.p_iterations;
            Alcotest.(check string)
              "final text pretty-prints the refined program"
              (Mj.Pretty.program_to_string outcome.Javatime.Engine.final)
              p.p_final);
    case "refine without provenance records none" (fun () ->
        let outcome =
          Javatime.Engine.refine_source ~file:"fir.mj"
            Workloads.Fir_mj.unrestricted_source
        in
        Alcotest.(check bool)
          "absent" true
          (outcome.Javatime.Engine.provenance = None));
    case "provenance JSON is parseable and lists iterations" (fun () ->
        let outcome =
          Javatime.Engine.refine_source ~file:"fir.mj" ~provenance:true
            Workloads.Fir_mj.unrestricted_source
        in
        match outcome.Javatime.Engine.provenance with
        | None -> Alcotest.fail "provenance missing"
        | Some p -> (
            let text = J.to_string (Javatime.Provenance.to_json p) in
            match J.parse text with
            | parsed -> (
                (match J.member "compliant" parsed with
                | Some (J.Bool true) -> ()
                | _ -> Alcotest.fail "compliant flag");
                match J.member "iterations" parsed with
                | Some (J.List its) ->
                    Alcotest.(check int)
                      "iteration count"
                      (List.length p.Javatime.Provenance.p_iterations)
                      (List.length its)
                | _ -> Alcotest.fail "iterations list")
            | exception J.Parse_error msg -> Alcotest.fail msg)) ]

(* ------------------------------------------------------------------ *)
(* R10 race reports carry racing read and write locations              *)
(* ------------------------------------------------------------------ *)

let race_related_tests =
  [ case "R10 head violation links a racing write and read" (fun () ->
        let checked =
          Mj.Typecheck.check_source ~file:"fig8.mj"
            Workloads.Fig8_mj.threaded_source
        in
        let heads =
          List.filter
            (fun v ->
              v.Policy.Rule.rule_id = "R10-no-shared-field-races"
              && v.Policy.Rule.related <> [])
            (Policy.Asr_policy.check checked)
        in
        Alcotest.(check bool) "at least one head report" true (heads <> []);
        List.iter
          (fun v ->
            let roles = List.map fst v.Policy.Rule.related in
            Alcotest.(check bool) "has write" true (List.mem "write" roles);
            Alcotest.(check bool) "has read" true (List.mem "read" roles);
            List.iter
              (fun (role, loc) ->
                Alcotest.(check bool) (role ^ " loc is real") true
                  (not (Mj.Loc.is_dummy loc));
                Alcotest.(check string) (role ^ " loc file") "fig8.mj"
                  loc.Mj.Loc.file)
              v.Policy.Rule.related)
          heads);
    case "check --json carries the related sites" (fun () ->
        let checked =
          Mj.Typecheck.check_source ~file:"fig8.mj"
            Workloads.Fig8_mj.threaded_source
        in
        let text =
          Policy.Rule.report_to_json (Policy.Asr_policy.check checked)
        in
        match J.parse text with
        | exception J.Parse_error msg -> Alcotest.fail msg
        | parsed -> (
            match J.member "violations" parsed with
            | Some (J.List vs) ->
                let has_role role v =
                  match J.member "related" v with
                  | Some (J.List rel) ->
                      List.exists
                        (fun r -> J.member "role" r = Some (J.Str role))
                        rel
                  | _ -> false
                in
                Alcotest.(check bool)
                  "some violation links write and read" true
                  (List.exists
                     (fun v -> has_role "write" v && has_role "read" v)
                     vs)
            | _ -> Alcotest.fail "violations list missing")) ]

(* ------------------------------------------------------------------ *)
(* Json edge cases                                                     *)
(* ------------------------------------------------------------------ *)

let json_edge_tests =
  [ case "control characters round-trip through \\u escapes" (fun () ->
        let s = "a\x01b\x02\x1fc\nd\te\rf" in
        let text = J.to_string (J.Str s) in
        Alcotest.(check bool) "escaped" true
          (String.index_opt text '\x01' = None);
        Alcotest.(check bool)
          "round trip" true
          (J.parse text = J.Str s));
    case "non-ASCII bytes pass through unescaped" (fun () ->
        let s = "caf\xc3\xa9 \xe2\x86\x92" in
        Alcotest.(check bool)
          "round trip" true
          (J.parse (J.to_string (J.Str s)) = J.Str s));
    case "\\u escapes decode ASCII and flatten the rest" (fun () ->
        Alcotest.(check bool) "A" true (J.parse {|"\u0041"|} = J.Str "A");
        Alcotest.(check bool) "NUL" true
          (J.parse {|"\u0000"|} = J.Str "\x00");
        (* outside the byte-transparent subset: documented '?' fallback *)
        Alcotest.(check bool) "e-acute" true (J.parse {|"\u00e9"|} = J.Str "?"));
    case "deeply nested arrays round-trip" (fun () ->
        let deep = ref (J.Int 1) in
        for _ = 1 to 500 do
          deep := J.List [ !deep ]
        done;
        Alcotest.(check bool)
          "round trip" true
          (J.parse (J.to_string !deep) = !deep));
    case "duplicate object keys are preserved, member takes the first"
      (fun () ->
        match J.parse {|{"a":1,"a":2,"b":3}|} with
        | J.Obj kvs as parsed ->
            Alcotest.(check int) "both kept" 3 (List.length kvs);
            Alcotest.(check bool)
              "member takes first" true
              (J.member "a" parsed = Some (J.Int 1))
        | _ -> Alcotest.fail "expected object");
    case "float edge cases serialize valid JSON deterministically"
      (fun () ->
        (* nan and infinities have no JSON spelling: documented "0" *)
        List.iter
          (fun f ->
            Alcotest.(check string)
              "non-finite flattens" "0"
              (J.to_string (J.Float f)))
          [ nan; infinity; neg_infinity ];
        (* negative zero keeps its sign through a round trip *)
        (match J.parse (J.to_string (J.Float (-0.0))) with
        | J.Float z ->
            Alcotest.(check bool)
              "sign preserved" true
              (1.0 /. z = neg_infinity)
        | _ -> Alcotest.fail "expected a float");
        (* extreme magnitudes round-trip exactly *)
        List.iter
          (fun f ->
            match J.parse (J.to_string (J.Float f)) with
            | J.Float g ->
                Alcotest.(check bool)
                  (Printf.sprintf "%h round-trips" f)
                  true (f = g)
            | J.Int n ->
                Alcotest.(check bool)
                  (Printf.sprintf "%h as int" f)
                  true
                  (float_of_int n = f)
            | _ -> Alcotest.failf "%h parsed to a non-number" f)
          [ 1e300; 5e-324; 0.1; 1e15; 1e15 -. 1.0 ]);
    case "reject paths report an offset" (fun () ->
        let expect_error text =
          match J.parse text with
          | exception J.Parse_error msg ->
              Alcotest.(check bool)
                (Printf.sprintf "%S mentions offset" text)
                true
                (String.length msg > 0
                &&
                let has_offset =
                  let sub = "at offset" in
                  let n = String.length sub and m = String.length msg in
                  let rec go i =
                    i + n <= m && (String.sub msg i n = sub || go (i + 1))
                  in
                  go 0
                in
                has_offset)
          | v -> Alcotest.failf "%S parsed as %s" text (J.to_string v)
        in
        List.iter expect_error
          [ "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "\"bad \\q escape\"";
            "[1] trailing"; "\"\\u00\""; "" ]) ]

(* ------------------------------------------------------------------ *)
(* dropped_spans surfaces in every exporter                            *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let dropped_tests =
  [ case "overflowing max_spans is reported by every exporter" (fun () ->
        let reg = R.create ~max_spans:2 () in
        for _ = 1 to 5 do
          R.enter reg "s";
          R.exit reg ()
        done;
        Alcotest.(check int) "dropped" 3 (R.dropped_spans reg);
        Alcotest.(check bool)
          "table footer" true
          (contains ~sub:"3 spans dropped" (Telemetry.Export.table reg));
        (match J.member "dropped_spans" (Telemetry.Export.json reg) with
        | Some (J.Int 3) -> ()
        | _ -> Alcotest.fail "json dump missing dropped_spans");
        match J.parse (Telemetry.Export.chrome_trace reg) with
        | exception J.Parse_error msg -> Alcotest.fail msg
        | parsed -> (
            match J.member "metadata" parsed with
            | Some meta -> (
                match J.member "dropped_spans" meta with
                | Some (J.Int 3) -> ()
                | _ -> Alcotest.fail "chrome metadata missing dropped_spans")
            | None -> Alcotest.fail "chrome trace missing metadata"));
    case "no drops reports zero everywhere" (fun () ->
        let reg = R.create () in
        R.enter reg "only";
        R.exit reg ();
        Alcotest.(check bool)
          "no footer" true
          (not (contains ~sub:"dropped" (Telemetry.Export.table reg)));
        match J.member "dropped_spans" (Telemetry.Export.json reg) with
        | Some (J.Int 0) -> ()
        | _ -> Alcotest.fail "json dump should carry 0");
    case "a saturated counter is flagged by every exporter" (fun () ->
        let reg = R.create () in
        R.count reg "hot" 1;
        R.count reg "cold" 1;
        (* drive the counter to the clamp the way a long campaign would,
           without iterating max_int times *)
        (match List.find_opt (fun c -> c.R.c_name = "hot") (R.counters reg) with
        | Some c -> c.R.c_value <- max_int - 2
        | None -> Alcotest.fail "counter missing");
        R.count reg "hot" 5;
        Alcotest.(check bool)
          "clamped, not wrapped" true
          ((List.find (fun c -> c.R.c_name = "hot") (R.counters reg)).R.c_value
          = max_int);
        Alcotest.(check (list string))
          "flag names the counter" [ "hot" ]
          (R.saturated_counters reg);
        Alcotest.(check bool)
          "table names it" true
          (contains ~sub:"counter hot saturated" (Telemetry.Export.table reg));
        (match J.member "data_loss" (Telemetry.Export.json reg) with
        | Some dl -> (
            match J.member "saturated_counters" dl with
            | Some (J.List [ J.Str "hot" ]) -> ()
            | _ -> Alcotest.fail "json data_loss missing the counter")
        | None -> Alcotest.fail "json dump missing data_loss");
        match J.parse (Telemetry.Export.chrome_trace reg) with
        | exception J.Parse_error msg -> Alcotest.fail msg
        | parsed -> (
            match J.member "metadata" parsed with
            | Some meta -> (
                match J.member "saturated_counters" meta with
                | Some (J.List [ J.Str "hot" ]) -> ()
                | _ -> Alcotest.fail "chrome metadata missing the counter")
            | None -> Alcotest.fail "chrome trace missing metadata"));
    case "no saturation reports an empty flag set" (fun () ->
        let reg = R.create () in
        R.count reg "n" 3;
        Alcotest.(check (list string)) "none" [] (R.saturated_counters reg);
        Alcotest.(check bool)
          "no table line" true
          (not (contains ~sub:"saturated" (Telemetry.Export.table reg)))) ]

let suite =
  lines_tests @ linetable_tests @ reconcile_tests @ flame_tests
  @ provenance_tests @ race_related_tests @ json_edge_tests @ dropped_tests
