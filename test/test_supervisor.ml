open Util
module D = Asr.Domain
module G = Asr.Graph
module S = Asr.Supervisor
module I = Asr.Inject
module E = Javatime.Elaborate

(* One gain-by-2 block between an input and an output: the smallest
   system where holding, absence, retry and escalation are all visible
   on the output port. *)
let gain_graph () =
  let g = G.create "t" in
  let b = G.add_block g (Asr.Block.gain 2) in
  let inp = G.add_input g "x" in
  let out = G.add_output g "y" in
  G.connect g ~src:(G.out_port inp 0) ~dst:(G.in_port b 0);
  G.connect g ~src:(G.out_port b 0) ~dst:(G.in_port out 0);
  g

let trap_at ?(kind = I.Trap) ?(persistence = I.Transient) ?(first_only = false)
    instant =
  { I.i_block = 0; i_kind = kind; i_instant = instant;
    i_persistence = persistence; i_first_only = first_only }

(* Inject [specs] into the gain graph and drive it one int per instant,
   returning the per-instant value of output "y". *)
let drive_injected ?policy ?escalate_after specs xs =
  let inj = I.make specs in
  let g = I.instrument inj (gain_graph ()) in
  let sup = S.create ?policy ?escalate_after () in
  let sim = Asr.Simulate.create ~supervisor:sup g in
  let ys =
    List.map
      (fun x ->
        let outs = Asr.Simulate.step sim [ ("x", D.int x) ] in
        I.tick inj;
        List.assoc "y" outs)
      xs
  in
  (inj, sup, ys)

let domain = Alcotest.testable (Fmt.of_to_string D.to_string) ( = )

(* ---- random-system properties ----------------------------------- *)

let capture ?strategy ?supervisor ?inject g stream =
  let sim = Asr.Simulate.create ?strategy ?supervisor g in
  List.map
    (fun inputs ->
      ignore (Asr.Simulate.step sim inputs);
      (match inject with Some inj -> I.tick inj | None -> ());
      Asr.Simulate.net_values sim)
    stream

let blast_radius compiled specs =
  let affected = Array.make compiled.G.n_nets false in
  List.iter
    (fun s ->
      Array.iteri
        (fun i b -> if b then affected.(i) <- true)
        (G.affected_nets compiled s.I.i_block))
    specs;
  affected

let outside_identical affected clean faulty =
  List.for_all2
    (fun cn fn ->
      let ok = ref true in
      Array.iteri
        (fun n v -> if (not affected.(n)) && v <> fn.(n) then ok := false)
        cn;
      !ok)
    clean faulty

let mj_suite =
  let spin_src =
    {|class Spin extends ASR {
        Spin() { declarePorts(1, 1); }
        public void run() {
          int acc = 0;
          int i = 0;
          while (i < 64) { acc = acc + i; i = i + 1; }
          writePort(0, acc + readPort(0));
        }
      }|}
  in
  let storm_src =
    {|class Storm extends ASR {
        Storm() { declarePorts(1, 1); }
        public void run() {
          int[] a = new int[32];
          a[0] = readPort(0);
          writePort(0, a[0] + 1);
        }
      }|}
  in
  let engines =
    [ ("interp", E.Engine_interp); ("vm", E.Engine_vm); ("jit", E.Engine_jit) ]
  in
  (* Run [cls] under a Hold_last supervisor for [instants] instants and
     return (supervisor, elaboration, line table). *)
  let supervised_run ~engine ~src ~cls ?budget ?heap_slack ~instants () =
    let lines = Telemetry.Lines.create () in
    let elab =
      E.elaborate ~engine ~enforce_policy:false ~bounded_memory:false
        ~cost_lines:lines (check_src src) ~cls
    in
    let heap = (E.machine elab).Mj_runtime.Machine.heap in
    (match heap_slack with
    | Some slack ->
        let stats = Mj_runtime.Heap.stats heap in
        Mj_runtime.Heap.set_limit_words heap
          (Some (stats.Mj_runtime.Heap.init_words + slack))
    | None -> ());
    let block =
      Asr.Block.make ~name:("mj:" ^ cls) ~n_in:1 ~n_out:1 (fun inputs ->
          if Array.for_all D.is_def inputs then
            match budget with
            | Some b -> E.react_bounded elab ~budget_cycles:b inputs
            | None -> E.react elab inputs
          else [| D.Bottom |])
    in
    let g = G.create ("mj-" ^ cls) in
    let b = G.add_block g block in
    let inp = G.add_input g "x" in
    let out = G.add_output g "y" in
    G.connect g ~src:(G.out_port inp 0) ~dst:(G.in_port b 0);
    G.connect g ~src:(G.out_port b 0) ~dst:(G.in_port out 0);
    let sup =
      S.create ~policy:S.Hold_last ~escalate_after:100
        ~classify:E.fault_classifier ()
    in
    let sim = Asr.Simulate.create ~supervisor:sup g in
    ignore
      (Asr.Simulate.run sim (List.init instants (fun t -> [ ("x", D.int t) ])));
    (sup, elab, lines)
  in
  List.concat_map
    (fun (label, engine) ->
      [ case (label ^ ": cycle-budget trap contained on every instant")
          (fun () ->
            let sup, elab, lines =
              supervised_run ~engine ~src:spin_src ~cls:"Spin" ~budget:40
                ~instants:3 ()
            in
            Alcotest.(check int) "contained" 3 (S.fault_count sup);
            Alcotest.(check bool) "classed" true
              (List.for_all
                 (fun f -> f.S.f_class = S.Budget_exceeded)
                 (S.faults sup));
            (* satellite: Cost.cycles reconciles with line attribution
               even though every reaction aborted mid-flight *)
            Alcotest.(check int) "lines reconcile" (E.total_cycles elab)
              (Telemetry.Lines.total lines);
            (* the engine is not wedged: an unbudgeted reaction works *)
            match E.react elab [| D.int 1 |] with
            | [| D.Def _ |] -> ()
            | _ -> Alcotest.fail "reaction did not resume");
        case (label ^ ": heap-exhaustion trap contained, engine recovers")
          (fun () ->
            let sup, elab, lines =
              supervised_run ~engine ~src:storm_src ~cls:"Storm" ~heap_slack:80
                ~instants:4 ()
            in
            (* 34 words per reaction against init+80: reactions 3 and 4
               trip the limit *)
            Alcotest.(check int) "contained" 2 (S.fault_count sup);
            Alcotest.(check bool) "classed" true
              (List.for_all
                 (fun f -> f.S.f_class = S.Heap_exhausted)
                 (S.faults sup));
            Alcotest.(check int) "lines reconcile" (E.total_cycles elab)
              (Telemetry.Lines.total lines);
            let heap = (E.machine elab).Mj_runtime.Machine.heap in
            Mj_runtime.Heap.set_limit_words heap None;
            match E.react elab [| D.int 1 |] with
            | [| D.Def _ |] -> ()
            | _ -> Alcotest.fail "reaction did not resume") ])
    engines

let suite =
  [ case "hold-last: output holds the previous instant's value" (fun () ->
        let _, sup, ys =
          drive_injected [ trap_at 1 ] [ 3; 5; 7 ] ~policy:S.Hold_last
        in
        Alcotest.(check (list domain)) "trace"
          [ D.int 6; D.int 6; D.int 14 ]
          ys;
        match S.faults sup with
        | [ f ] ->
            Alcotest.(check int) "instant" 1 f.S.f_instant;
            Alcotest.(check int) "block" 0 f.S.f_block;
            Alcotest.(check bool) "held" true (f.S.f_action = S.Held);
            Alcotest.(check bool) "trap" true (f.S.f_class = S.Trap)
        | fs -> Alcotest.failf "expected 1 fault, got %d" (List.length fs));
    case "absent: output goes bottom for the faulty instant" (fun () ->
        let _, sup, ys =
          drive_injected [ trap_at 1 ] [ 3; 5; 7 ] ~policy:S.Absent
        in
        Alcotest.(check (list domain)) "trace"
          [ D.int 6; D.Bottom; D.int 14 ]
          ys;
        Alcotest.(check bool) "went absent" true
          (List.for_all (fun f -> f.S.f_action = S.Went_absent) (S.faults sup)));
    case "fail-fast: the fault is fatal" (fun () ->
        match drive_injected [ trap_at 0 ] [ 3 ] ~policy:S.Fail_fast with
        | _ -> Alcotest.fail "expected Fatal"
        | exception S.Fatal f ->
            Alcotest.(check bool) "aborted" true (f.S.f_action = S.Aborted);
            Alcotest.(check int) "instant" 0 f.S.f_instant);
    case "retry absorbs a first-application-only glitch" (fun () ->
        let _, sup, ys =
          drive_injected
            [ trap_at ~first_only:true 1 ]
            [ 3; 5; 7 ] ~policy:(S.Retry 1)
        in
        Alcotest.(check (list domain)) "trace unperturbed"
          [ D.int 6; D.int 10; D.int 14 ]
          ys;
        Alcotest.(check int) "recovered" 1 (S.recovered_count sup);
        Alcotest.(check int) "nothing contained" 0 (S.fault_count sup);
        Alcotest.(check bool) "logged as recovery" true
          (List.exists (fun f -> f.S.f_action = S.Recovered 1) (S.faults sup)));
    case "retry exhausted falls back to holding" (fun () ->
        let _, sup, ys =
          drive_injected [ trap_at 1 ] [ 3; 5; 7 ] ~policy:(S.Retry 2)
        in
        Alcotest.(check (list domain)) "trace"
          [ D.int 6; D.int 6; D.int 14 ]
          ys;
        Alcotest.(check int) "contained" 1 (S.fault_count sup);
        match S.faults sup with
        | [ f ] ->
            Alcotest.(check bool) "detail mentions retries" true
              (contains ~substring:"after 2 retries" f.S.f_detail)
        | _ -> Alcotest.fail "expected exactly one contained fault");
    case "watchdog escalates to permanent quarantine" (fun () ->
        let inj, sup, ys =
          drive_injected
            [ trap_at ~persistence:I.Persistent 0 ]
            [ 1; 2; 3; 4 ] ~escalate_after:2
        in
        Alcotest.(check (list domain)) "all held at initial bottom"
          [ D.Bottom; D.Bottom; D.Bottom; D.Bottom ]
          ys;
        Alcotest.(check bool) "quarantined" true (S.is_quarantined sup 0);
        Alcotest.(check (list int)) "listed" [ 0 ] (S.quarantined_blocks sup);
        Alcotest.(check bool) "escalation logged" true
          (List.exists (fun f -> f.S.f_action = S.Escalated) (S.faults sup));
        (* a quarantined block is never re-executed: the injector only
           fired on the two pre-quarantine instants *)
        Alcotest.(check int) "no further applications" 2 (I.fired inj));
    case "injected kinds map to the matching fault classes" (fun () ->
        let classes kind =
          let _, sup, _ =
            drive_injected [ trap_at ~kind 0 ] [ 1 ] ~policy:S.Hold_last
          in
          List.map (fun f -> f.S.f_class) (S.faults sup)
        in
        Alcotest.(check bool) "cycle spike -> budget" true
          (classes I.Cycle_spike = [ S.Budget_exceeded ]);
        Alcotest.(check bool) "alloc storm -> heap" true
          (classes I.Alloc_storm = [ S.Heap_exhausted ]));
    case "step budget trips on re-application, value survives" (fun () ->
        (* chaotic iteration re-applies the block to confirm the fixpoint;
           with step_budget 1 the second application is contained but the
           staged first result stands *)
        let sup = S.create ~step_budget:1 () in
        let sim =
          Asr.Simulate.create ~strategy:Asr.Fixpoint.Chaotic ~supervisor:sup
            (gain_graph ())
        in
        let outs = Asr.Simulate.step sim [ ("x", D.int 3) ] in
        Alcotest.check domain "value" (D.int 6) (List.assoc "y" outs);
        Alcotest.(check bool) "step-limit fault" true
          (List.exists (fun f -> f.S.f_class = S.Step_limit) (S.faults sup)));
    case "retraction is contained where unsupervised it is fatal" (fun () ->
        let nonmono () =
          let n = ref 0 in
          let g = G.create "nm" in
          let b =
            G.add_block g
              (Asr.Block.make ~name:"count" ~n_in:1 ~n_out:1 (fun _ ->
                   incr n;
                   [| D.int !n |]))
          in
          let inp = G.add_input g "x" in
          let out = G.add_output g "y" in
          G.connect g ~src:(G.out_port inp 0) ~dst:(G.in_port b 0);
          G.connect g ~src:(G.out_port b 0) ~dst:(G.in_port out 0);
          g
        in
        (match
           Asr.Simulate.step
             (Asr.Simulate.create ~strategy:Asr.Fixpoint.Chaotic (nonmono ()))
             [ ("x", D.int 1) ]
         with
        | _ -> Alcotest.fail "expected Nonmonotonic"
        | exception Asr.Fixpoint.Nonmonotonic _ -> ());
        let sup = S.create () in
        let sim =
          Asr.Simulate.create ~strategy:Asr.Fixpoint.Chaotic ~supervisor:sup
            (nonmono ())
        in
        let outs = Asr.Simulate.step sim [ ("x", D.int 1) ] in
        Alcotest.check domain "frozen at first write" (D.int 1)
          (List.assoc "y" outs);
        Alcotest.(check bool) "retraction fault" true
          (List.exists (fun f -> f.S.f_class = S.Retraction) (S.faults sup)));
    case "fault log is capped, drops are counted" (fun () ->
        let inj = I.make [ trap_at ~persistence:I.Persistent 0 ] in
        let g = I.instrument inj (gain_graph ()) in
        let sup = S.create ~escalate_after:100 ~max_log:2 () in
        let sim = Asr.Simulate.create ~supervisor:sup g in
        List.iter
          (fun x ->
            ignore (Asr.Simulate.step sim [ ("x", D.int x) ]);
            I.tick inj)
          [ 1; 2; 3; 4 ];
        Alcotest.(check int) "total" 4 (S.fault_count sup);
        Alcotest.(check int) "retained" 2 (List.length (S.faults sup));
        Alcotest.(check int) "dropped" 2 (S.dropped_faults sup));
    case "fault log exports as parseable JSON" (fun () ->
        let _, sup, _ =
          drive_injected [ trap_at 1 ] [ 3; 5; 7 ] ~policy:S.Hold_last
        in
        let module J = Telemetry.Json in
        let round = J.parse (J.to_string (S.faults_json sup)) in
        (match J.member "policy" round with
        | Some (J.Str "hold-last") -> ()
        | _ -> Alcotest.fail "policy missing");
        match J.member "faults" round with
        | Some (J.List [ f ]) -> (
            match J.member "class" f with
            | Some (J.Str "trap") -> ()
            | _ -> Alcotest.fail "class missing")
        | _ -> Alcotest.fail "faults missing");
    case "telemetry counters track containment and recovery" (fun () ->
        let reg = Telemetry.Registry.create () in
        let inj = I.make [ trap_at 1 ] in
        let g = I.instrument inj (gain_graph ()) in
        let sup = S.create ~telemetry:reg () in
        let sim = Asr.Simulate.create ~supervisor:sup g in
        List.iter
          (fun x ->
            ignore (Asr.Simulate.step sim [ ("x", D.int x) ]);
            I.tick inj)
          [ 3; 5; 7 ];
        let value name =
          (Telemetry.Registry.counter reg name).Telemetry.Registry.c_value
        in
        Alcotest.(check int) "faults" 1 (value "asr.supervisor.faults");
        Alcotest.(check int) "by class" 1 (value "asr.supervisor.fault.trap"));
    case "policy names round-trip through policy_of_string" (fun () ->
        List.iter
          (fun p ->
            Alcotest.(check bool) (S.policy_name p) true
              (S.policy_of_string (S.policy_name p) = Some p))
          [ S.Fail_fast; S.Hold_last; S.Absent; S.Retry 3 ];
        Alcotest.(check bool) "hold alias" true
          (S.policy_of_string "hold" = Some S.Hold_last);
        Alcotest.(check bool) "garbage" true (S.policy_of_string "bogus" = None));
    case "default classifier covers the standard traps" (fun () ->
        let cls e = Option.map fst (S.default_classify e) in
        Alcotest.(check bool) "div" true (cls Division_by_zero = Some S.Trap);
        Alcotest.(check bool) "oom" true
          (cls Out_of_memory = Some S.Heap_exhausted);
        Alcotest.(check bool) "injected" true
          (cls (I.Injected (I.Cycle_spike, "x")) = Some S.Budget_exceeded);
        Alcotest.(check bool) "unknown propagates" true
          (S.default_classify Not_found = None));
    case "engine classifier maps budget and heap traps" (fun () ->
        let open Mj_runtime in
        (match E.fault_classifier (Cost.Budget_exceeded 42) with
        | Some (S.Budget_exceeded, d) ->
            Alcotest.(check bool) "meter in detail" true
              (contains ~substring:"42" d)
        | _ -> Alcotest.fail "budget class");
        (match
           E.fault_classifier (Heap.Runtime_error "heap exhausted: 9 of 8")
         with
        | Some (S.Heap_exhausted, _) -> ()
        | _ -> Alcotest.fail "heap limit class");
        (match
           E.fault_classifier
             (Heap.Runtime_error
                "allocation during the reactive phase (bounded-memory policy)")
         with
        | Some (S.Heap_exhausted, _) -> ()
        | _ -> Alcotest.fail "policy alloc class");
        (match
           E.fault_classifier
             (Heap.Runtime_error "array index 5 out of bounds for length 3")
         with
        | Some (S.Trap, _) -> ()
        | _ -> Alcotest.fail "ordinary trap class");
        Alcotest.(check bool) "unknown propagates" true
          (E.fault_classifier Not_found = None));
    case "heap limit: negative rejected, init phase enforced" (fun () ->
        let h = Mj_runtime.Heap.create () in
        (match Mj_runtime.Heap.set_limit_words h (Some (-1)) with
        | () -> Alcotest.fail "negative limit accepted"
        | exception Invalid_argument _ -> ());
        Mj_runtime.Heap.set_limit_words h (Some 10);
        ignore (Mj_runtime.Heap.alloc_array h ~elem:Mj.Ast.TInt 4);
        expect_runtime_error ~substring:"heap exhausted" (fun () ->
            Mj_runtime.Heap.alloc_array h ~elem:Mj.Ast.TInt 8);
        (* an oversized initialization trips it too: elaboration allocates
           the instance during Init *)
        expect_runtime_error ~substring:"heap exhausted" (fun () ->
            E.elaborate ~heap_limit_words:1
              (check_src
                 {|class T extends ASR {
                     T() { declarePorts(1, 1); }
                     public void run() { writePort(0, readPort(0)); }
                   }|})
              ~cls:"T"));
    case "to_block enforces an optional cycle budget" (fun () ->
        let src =
          {|class Loop extends ASR {
              Loop() { declarePorts(1, 1); }
              public void run() {
                int acc = 0;
                int i = 0;
                while (i < 64) { acc = acc + i; i = i + 1; }
                writePort(0, acc);
              }
            }|}
        in
        let apply budget =
          let elab = E.elaborate ~enforce_policy:false (check_src src) ~cls:"Loop" in
          Asr.Block.apply (E.to_block ?budget_cycles:budget elab) [| D.int 1 |]
        in
        (match apply None with
        | [| D.Def _ |] -> ()
        | _ -> Alcotest.fail "unbudgeted application failed");
        match apply (Some 10) with
        | _ -> Alcotest.fail "expected Budget_exceeded"
        | exception Mj_runtime.Cost.Budget_exceeded _ -> ());
    case "injection plans are deterministic per seed" (fun () ->
        let p seed = I.plan ~seed ~n_blocks:9 ~instants:30 ~n_faults:4 () in
        Alcotest.(check bool) "same seed same plan" true (p 5 = p 5);
        Alcotest.(check bool) "plans stay in range" true
          (List.for_all
             (fun s -> s.I.i_block < 9 && s.I.i_instant < 30)
             (p 5 @ p 6)));
    case "injector validates specs and preserves block shape" (fun () ->
        (match I.make [ trap_at (-1) ] with
        | _ -> Alcotest.fail "negative instant accepted"
        | exception Invalid_argument _ -> ());
        let inj = I.make [ trap_at 3 ] in
        let b = I.wrap inj ~index:0 (Asr.Block.gain 2) in
        Alcotest.(check string) "name kept" (Asr.Block.gain 2).Asr.Block.name
          b.Asr.Block.name;
        Alcotest.(check int) "arity kept" 1 b.Asr.Block.n_in;
        (* before the faulty instant the wrapper is transparent *)
        Alcotest.check domain "passes through" (D.int 8)
          (Asr.Block.apply b [| D.int 4 |]).(0));
    qcase ~count:60 "random systems: supervised no-fault run is invisible"
      Test_random_graphs.arbitrary_spec
      (fun spec ->
        let stream = Test_random_graphs.stimuli spec in
        let clean = capture (Test_random_graphs.build spec) stream in
        let sup = S.create () in
        let supervised =
          capture ~supervisor:sup (Test_random_graphs.build spec) stream
        in
        clean = supervised && S.fault_count sup = 0);
    qcase ~count:50
      "random systems: faults perturb nothing outside the blast radius"
      Test_random_graphs.arbitrary_spec
      (fun spec ->
        let g = Test_random_graphs.build spec in
        let compiled = G.compile g in
        let n_blocks = Array.length compiled.G.c_blocks in
        let stream = Test_random_graphs.stimuli spec in
        let specs =
          I.plan ~seed:spec.Test_random_graphs.sp_seed ~n_blocks
            ~instants:(List.length stream) ~n_faults:2 ()
        in
        let affected = blast_radius compiled specs in
        let clean = capture g stream in
        List.for_all
          (fun (strategy, policy) ->
            let inj = I.make specs in
            let sup = S.create ~policy () in
            let faulty =
              capture ~strategy ~supervisor:sup ~inject:inj
                (I.instrument inj (Test_random_graphs.build spec))
                stream
            in
            outside_identical affected clean faulty)
          [ (Asr.Fixpoint.Chaotic, S.Hold_last);
            (Asr.Fixpoint.Scheduled, S.Absent);
            (Asr.Fixpoint.Worklist, S.Retry 1) ]);
    qcase ~count:40 "random systems: fault handling is deterministic"
      Test_random_graphs.arbitrary_spec
      (fun spec ->
        let stream = Test_random_graphs.stimuli spec in
        let g = Test_random_graphs.build spec in
        let n_blocks = Array.length (G.compile g).G.c_blocks in
        let specs =
          I.plan ~seed:spec.Test_random_graphs.sp_seed ~n_blocks
            ~instants:(List.length stream) ()
        in
        let once () =
          let inj = I.make specs in
          let sup = S.create () in
          let nets =
            capture ~supervisor:sup ~inject:inj
              (I.instrument inj (Test_random_graphs.build spec))
              stream
          in
          (nets, S.faults sup, S.fault_count sup)
        in
        once () = once ()) ]
  @ mj_suite
