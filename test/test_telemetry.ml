open Util
module R = Telemetry.Registry
module J = Telemetry.Json
module P = Telemetry.Profile
module D = Asr.Domain
module G = Asr.Graph
module B = Asr.Block

(* ------------------------------------------------------------------ *)
(* Spans: nesting, ordering, lifecycle                                  *)
(* ------------------------------------------------------------------ *)

let span_tests =
  [ case "span nesting records depth and parent" (fun () ->
        let reg = R.create () in
        R.enter reg "outer";
        R.enter reg "inner";
        R.exit reg ();
        R.enter reg "sibling";
        R.exit reg ();
        R.exit reg ();
        match R.spans reg with
        | [ outer; inner; sibling ] ->
            Alcotest.(check string) "outer name" "outer" outer.R.sp_name;
            Alcotest.(check int) "outer depth" 0 outer.R.sp_depth;
            Alcotest.(check int) "outer parent" (-1) outer.R.sp_parent;
            Alcotest.(check int) "inner depth" 1 inner.R.sp_depth;
            Alcotest.(check int)
              "inner parent is outer" outer.R.sp_id inner.R.sp_parent;
            Alcotest.(check int)
              "sibling parent is outer" outer.R.sp_id sibling.R.sp_parent;
            Alcotest.(check bool) "all closed" true
              (outer.R.sp_closed && inner.R.sp_closed && sibling.R.sp_closed)
        | spans ->
            Alcotest.failf "expected 3 spans, got %d" (List.length spans));
    case "spans listed in start order with monotone timestamps" (fun () ->
        let reg = R.create () in
        R.enter reg "a";
        R.enter reg "b";
        R.exit reg ();
        R.exit reg ();
        R.enter reg "c";
        R.exit reg ();
        let names = List.map (fun s -> s.R.sp_name) (R.spans reg) in
        Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] names;
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (s.R.sp_name ^ " stop after start")
              true
              (s.R.sp_stop >= s.R.sp_start))
          (R.spans reg));
    case "with_span closes on exception" (fun () ->
        let reg = R.create () in
        (try R.with_span reg "doomed" (fun () -> failwith "boom")
         with Failure _ -> ());
        match R.spans reg with
        | [ s ] -> Alcotest.(check bool) "closed" true s.R.sp_closed
        | _ -> Alcotest.fail "one span expected");
    case "unbalanced exit is ignored" (fun () ->
        let reg = R.create () in
        R.exit reg ();
        R.enter reg "a";
        R.exit reg ();
        R.exit reg ();
        Alcotest.(check int) "one span" 1 (List.length (R.spans reg)));
    case "disabled registry records nothing" (fun () ->
        let reg = R.create ~enabled:false () in
        R.enter reg "a";
        R.exit reg ();
        R.count reg "n" 5;
        R.observe_value reg "h" 3;
        Alcotest.(check int) "no spans" 0 (List.length (R.spans reg));
        Alcotest.(check int) "no counters" 0 (List.length (R.counters reg));
        Alcotest.(check int) "no histograms" 0 (List.length (R.histograms reg)));
    case "max_spans caps retention but keeps pairing" (fun () ->
        let reg = R.create ~max_spans:2 () in
        for _ = 1 to 5 do
          R.enter reg "s";
          R.exit reg ()
        done;
        Alcotest.(check int) "retained" 2 (List.length (R.spans reg));
        Alcotest.(check int) "dropped" 3 (R.dropped_spans reg);
        List.iter
          (fun s -> Alcotest.(check bool) "closed" true s.R.sp_closed)
          (R.spans reg)) ]

(* ------------------------------------------------------------------ *)
(* Counters and histograms                                              *)
(* ------------------------------------------------------------------ *)

let counter_tests =
  [ case "counter saturates at max_int" (fun () ->
        let reg = R.create () in
        let c = R.counter reg "big" in
        R.add c (max_int - 10);
        R.add c 100;
        Alcotest.(check int) "saturated" max_int c.R.c_value;
        R.add c 1;
        Alcotest.(check int) "stays saturated" max_int c.R.c_value);
    case "counter ignores negative increments" (fun () ->
        let reg = R.create () in
        let c = R.counter reg "n" in
        R.add c 7;
        R.add c (-3);
        Alcotest.(check int) "monotone" 7 c.R.c_value);
    case "counter handles are find-or-create" (fun () ->
        let reg = R.create () in
        R.add (R.counter reg "x") 1;
        R.add (R.counter reg "x") 2;
        Alcotest.(check int) "one counter" 1 (List.length (R.counters reg));
        Alcotest.(check int) "summed" 3 (R.counter reg "x").R.c_value);
    case "histogram buckets powers of two" (fun () ->
        let reg = R.create () in
        let h = R.histogram reg "h" in
        List.iter (R.observe h) [ 0; 1; 2; 3; 4; 1000 ];
        Alcotest.(check int) "count" 6 h.R.h_count;
        Alcotest.(check int) "sum" 1010 h.R.h_sum;
        Alcotest.(check int) "min" 0 h.R.h_min;
        Alcotest.(check int) "max" 1000 h.R.h_max;
        (* 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3 *)
        Alcotest.(check int) "bucket 0" 1 h.R.h_buckets.(0);
        Alcotest.(check int) "bucket 1" 1 h.R.h_buckets.(1);
        Alcotest.(check int) "bucket 2" 2 h.R.h_buckets.(2);
        Alcotest.(check int) "bucket 3" 1 h.R.h_buckets.(3);
        Alcotest.(check (float 1e-9)) "mean" (1010.0 /. 6.0) (R.mean h)) ]

(* ------------------------------------------------------------------ *)
(* JSON: parser round-trips its own printer                             *)
(* ------------------------------------------------------------------ *)

let json_tests =
  [ case "round-trip of a nested value" (fun () ->
        let v =
          J.Obj
            [ ("s", J.Str "he said \"hi\"\n\ttab");
              ("n", J.Int (-42));
              ("f", J.Float 1.5);
              ("b", J.Bool true);
              ("z", J.Null);
              ("l", J.List [ J.Int 1; J.Str "two"; J.List [] ]) ]
        in
        Alcotest.(check bool)
          "parse (to_string v) = v" true
          (J.parse (J.to_string v) = v));
    case "parses whitespace and unicode escapes" (fun () ->
        match J.parse "  { \"a\" : [ 1 , \"\\u0041\" ] }  " with
        | J.Obj [ ("a", J.List [ J.Int 1; J.Str "A" ]) ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    case "rejects malformed input" (fun () ->
        List.iter
          (fun src ->
            match J.parse src with
            | exception J.Parse_error _ -> ()
            | _ -> Alcotest.failf "accepted %S" src)
          [ "{"; "[1,]"; "\"unterminated"; "tru"; "1 2"; "" ]);
    case "member lookup" (fun () ->
        let v = J.parse "{\"a\": 1, \"b\": null}" in
        Alcotest.(check bool) "a" true (J.member "a" v = Some (J.Int 1));
        Alcotest.(check bool) "b" true (J.member "b" v = Some J.Null);
        Alcotest.(check bool) "missing" true (J.member "c" v = None)) ]

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                  *)
(* ------------------------------------------------------------------ *)

let chrome_tests =
  [ case "chrome trace parses back and is well-formed" (fun () ->
        let reg = R.create () in
        R.with_span reg ~cat:"outer" "parent" (fun () ->
            R.with_span reg "child" (fun () -> ());
            R.count reg "events" 3);
        let parsed = J.parse (Telemetry.Export.chrome_trace reg) in
        let events =
          match J.member "traceEvents" parsed with
          | Some (J.List evs) -> evs
          | _ -> Alcotest.fail "traceEvents missing"
        in
        Alcotest.(check int) "two events" 2 (List.length events);
        List.iter
          (fun ev ->
            List.iter
              (fun k ->
                if J.member k ev = None then Alcotest.failf "missing %s" k)
              [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid" ];
            Alcotest.(check bool)
              "complete event" true
              (J.member "ph" ev = Some (J.Str "X")))
          events;
        (* the child must nest inside the parent on the timeline *)
        let field ev k =
          match J.member k ev with
          | Some (J.Float f) -> f
          | Some (J.Int n) -> float_of_int n
          | _ -> Alcotest.failf "no %s" k
        in
        let by_name name =
          List.find (fun ev -> J.member "name" ev = Some (J.Str name)) events
        in
        let p = by_name "parent" and c = by_name "child" in
        Alcotest.(check bool) "child starts after parent" true
          (field c "ts" >= field p "ts");
        Alcotest.(check bool) "child ends before parent" true
          (field c "ts" +. field c "dur" <= field p "ts" +. field p "dur"));
    case "open spans are excluded from the trace" (fun () ->
        let reg = R.create () in
        R.enter reg "never-closed";
        let parsed = J.parse (Telemetry.Export.chrome_trace reg) in
        match J.member "traceEvents" parsed with
        | Some (J.List []) -> ()
        | _ -> Alcotest.fail "expected no events") ]

(* ------------------------------------------------------------------ *)
(* Profile: exact attribution, recursion, reconciliation                *)
(* ------------------------------------------------------------------ *)

let profile_tests =
  [ case "self cycles sum to total" (fun () ->
        let p = P.create () in
        P.charge p 5;
        P.enter p "A.f";
        P.charge p 10;
        P.enter p "A.g";
        P.charge p 20;
        P.leave p;
        P.charge p 1;
        P.leave p;
        Alcotest.(check int) "total" 36 (P.total p);
        let sum =
          List.fold_left (fun acc r -> acc + r.P.r_self) 0 (P.rows p)
        in
        Alcotest.(check int) "self sum" 36 sum;
        Alcotest.(check int) "depth balanced" 0 (P.depth p);
        let f = List.find (fun r -> r.P.r_label = "A.f") (P.rows p) in
        Alcotest.(check int) "f self" 11 f.P.r_self;
        Alcotest.(check int) "f cum includes g" 31 f.P.r_cum);
    case "recursion does not double-count cumulative" (fun () ->
        let p = P.create () in
        P.enter p "A.rec";
        P.charge p 10;
        P.enter p "A.rec";
        P.charge p 10;
        P.leave p;
        P.leave p;
        let r = List.find (fun r -> r.P.r_label = "A.rec") (P.rows p) in
        Alcotest.(check int) "calls" 2 r.P.r_calls;
        Alcotest.(check int) "self" 20 r.P.r_self;
        Alcotest.(check int) "cum counted once" 20 r.P.r_cum);
    case "profile reconciles with Cost.cycles on FIR (all engines)" (fun () ->
        let outcome =
          Javatime.Engine.refine_source ~file:"fir.mj"
            Workloads.Fir_mj.unrestricted_source
        in
        Alcotest.(check bool) "refined to compliance" true outcome.compliant;
        let src = Mj.Pretty.program_to_string outcome.Javatime.Engine.final in
        let checked = check_src ~file:"fir-refined.mj" src in
        List.iter
          (fun (name, engine) ->
            let profile = P.create () in
            let elab =
              Javatime.Elaborate.elaborate ~engine ~enforce_policy:false
                ~bounded_memory:false
                ~cost_sink:(Mj_runtime.Cost.profile_sink profile)
                checked ~cls:Workloads.Fir_mj.class_name
            in
            for i = 1 to 12 do
              ignore (Javatime.Elaborate.react elab [| D.int (i * 7) |])
            done;
            Alcotest.(check int)
              (name ^ " profile total = Cost.cycles")
              (Javatime.Elaborate.total_cycles elab)
              (P.total profile);
            Alcotest.(check bool)
              (name ^ " attributes the work to run")
              true
              (List.exists
                 (fun r -> r.P.r_label = "FirFilter.run" && r.P.r_self > 0)
                 (P.rows profile)))
          [ ("interp", Javatime.Elaborate.Engine_interp);
            ("vm", Javatime.Elaborate.Engine_vm);
            ("jit", Javatime.Elaborate.Engine_jit) ]) ]

(* ------------------------------------------------------------------ *)
(* VCD export                                                           *)
(* ------------------------------------------------------------------ *)

(* The accumulator from test_asr: x -> (+) with a unit delay -> sum. *)
let accumulator () =
  let g = G.create "acc" in
  let input = G.add_input g "x" in
  let adder = G.add_block g B.add in
  let fork = G.add_block g (B.fork 2) in
  let delay = G.add_delay g ~init:(D.int 0) in
  let output = G.add_output g "sum" in
  G.connect g ~src:(G.out_port input 0) ~dst:(G.in_port adder 0);
  G.connect g ~src:(G.out_port delay 0) ~dst:(G.in_port adder 1);
  G.connect g ~src:(G.out_port adder 0) ~dst:(G.in_port fork 0);
  G.connect g ~src:(G.out_port fork 0) ~dst:(G.in_port output 0);
  G.connect g ~src:(G.out_port fork 1) ~dst:(G.in_port delay 0);
  g

let vcd_tests =
  [ case "vcd golden for the accumulator" (fun () ->
        let sim = Asr.Simulate.create (accumulator ()) in
        let trace =
          Asr.Simulate.run sim
            [ [ ("x", D.int 3) ]; [ ("x", D.int 1) ]; [ ("x", D.int 4) ] ]
        in
        let expected =
          "$timescale 1 us $end\n\
           $scope module asr $end\n\
           $var wire 32 ! in:x $end\n\
           $var wire 32 \" out:sum $end\n\
           $upscope $end\n\
           $enddefinitions $end\n\
           #0\n\
           $dumpvars\n\
           b11 !\n\
           b11 \"\n\
           $end\n\
           #1\n\
           b1 !\n\
           b100 \"\n\
           #2\n\
           b100 !\n\
           b1000 \"\n\
           #3\n"
        in
        Alcotest.(check string) "golden" expected (Asr.Waves.to_vcd trace));
    case "vcd kinds: bool wires, reals, negative ints, bottom" (fun () ->
        let vcd =
          Asr.Waves.signals_to_vcd
            [ ("flag", [ D.bool true; D.Bottom; D.bool false ]);
              ("level", [ D.real 0.5; D.real 1.25; D.real 1.25 ]);
              ("neg", [ D.int (-1); D.int (-1); D.int 2 ]) ]
        in
        Alcotest.(check bool) "1-bit wire" true
          (contains ~substring:"$var wire 1 ! flag $end" vcd);
        Alcotest.(check bool) "real var" true
          (contains ~substring:"$var real 64 \" level $end" vcd);
        Alcotest.(check bool) "bool bottom is x" true
          (contains ~substring:"x!" vcd);
        Alcotest.(check bool) "two's complement -1" true
          (contains
             ~substring:"b11111111111111111111111111111111 #" vcd);
        Alcotest.(check bool) "real value" true
          (contains ~substring:"r1.25 \"" vcd);
        (* a real-valued signal with a ⊥ instant has no VCD real
           encoding for absence; it degrades to a string variable *)
        let mixed =
          Asr.Waves.signals_to_vcd [ ("m", [ D.real 0.5; D.Bottom ]) ]
        in
        Alcotest.(check bool) "bottom real becomes string var" true
          (contains ~substring:"$var string 1 ! m $end" mixed);
        Alcotest.(check bool) "bottom renders as sbottom" true
          (contains ~substring:"sbottom !" mixed));
    case "vcd only emits changed values" (fun () ->
        let vcd =
          Asr.Waves.signals_to_vcd [ ("k", [ D.int 5; D.int 5; D.int 5 ]) ]
        in
        (* initial dump plus no further emissions for a constant signal *)
        let occurrences =
          List.length
            (String.split_on_char '\n' vcd
            |> List.filter (fun l -> l = "b101 !"))
        in
        Alcotest.(check int) "emitted once" 1 occurrences) ]

(* ------------------------------------------------------------------ *)
(* Instrumented subsystems: simulator, refinement engine, dedup         *)
(* ------------------------------------------------------------------ *)

let subsystem_tests =
  [ case "simulate emits instant spans with fixpoint stats" (fun () ->
        let reg = R.create () in
        let sim = Asr.Simulate.create ~telemetry:reg (accumulator ()) in
        ignore (Asr.Simulate.run sim [ [ ("x", D.int 3) ]; [ ("x", D.int 1) ] ]);
        let instants =
          List.filter (fun s -> s.R.sp_name = "instant") (R.spans reg)
        in
        Alcotest.(check int) "two instant spans" 2 (List.length instants);
        List.iter
          (fun s ->
            Alcotest.(check string) "cat" "asr" s.R.sp_cat;
            List.iter
              (fun k ->
                if not (List.mem_assoc k s.R.sp_args) then
                  Alcotest.failf "missing span arg %s" k)
              [ "instant"; "iterations"; "block_evaluations"; "net_churn" ])
          instants;
        Alcotest.(check bool) "instants counter" true
          (List.exists
             (fun c -> c.R.c_name = "asr.instants" && c.R.c_value = 2)
             (R.counters reg));
        Alcotest.(check bool) "per-block eval counters" true
          (List.exists
             (fun c ->
               String.length c.R.c_name > 10
               && String.sub c.R.c_name 0 10 = "asr.block."
               && c.R.c_value > 0)
             (R.counters reg));
        Alcotest.(check bool) "fixpoint iteration histogram" true
          (List.exists
             (fun h -> h.R.h_name = "asr.fixpoint_iterations" && h.R.h_count = 2)
             (R.histograms reg)));
    case "refine emits iteration, check and apply spans" (fun () ->
        let reg = R.create () in
        let outcome =
          Javatime.Engine.refine_source ~file:"fir.mj" ~telemetry:reg
            Workloads.Fir_mj.unrestricted_source
        in
        Alcotest.(check bool) "compliant" true outcome.compliant;
        let spans = R.spans reg in
        let named n = List.filter (fun s -> s.R.sp_name = n) spans in
        let iterations = named "iteration" in
        Alcotest.(check int)
          "iteration spans match the trace"
          (List.length outcome.Javatime.Engine.steps + 1)
          (List.length iterations);
        Alcotest.(check bool) "check spans nested under iterations" true
          (List.exists
             (fun s ->
               s.R.sp_cat = "rule"
               && List.exists (fun i -> i.R.sp_id = s.R.sp_parent) iterations)
             spans);
        Alcotest.(check bool) "apply spans carry site counts" true
          (List.exists
             (fun s ->
               s.R.sp_cat = "transform"
               && List.exists
                    (fun (k, v) ->
                      k = "sites"
                      && match v with R.Int n -> n > 0 | _ -> false)
                    s.R.sp_args)
             spans);
        Alcotest.(check bool) "iterations counter" true
          (List.exists
             (fun c ->
               c.R.c_name = "refine.iterations"
               && c.R.c_value = List.length iterations)
             (R.counters reg)));
    case "dedup preserves first-occurrence order" (fun () ->
        Alcotest.(check (list string))
          "order kept"
          [ "b"; "a"; "c" ]
          (Javatime.Engine.dedup [ "b"; "a"; "b"; "c"; "a"; "b" ]);
        Alcotest.(check (list string)) "empty" [] (Javatime.Engine.dedup []));
    case "dedup is linear in practice (large input)" (fun () ->
        let ids = List.init 20_000 (fun i -> string_of_int (i mod 500)) in
        Alcotest.(check int)
          "500 distinct survive" 500
          (List.length (Javatime.Engine.dedup ids))) ]

let suite =
  span_tests @ counter_tests @ json_tests @ chrome_tests @ profile_tests
  @ vcd_tests @ subsystem_tests
