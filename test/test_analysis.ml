open Util

(* PR 2: the abstract-interpretation dataflow engine — interval loop
   bounds, bounds-check elision, the static race detector — plus the
   Const_eval and Escape edge cases fixed alongside it. *)

(* ------------------------------------------------------------------ *)
(* Interval loop bounds                                                *)
(* ------------------------------------------------------------------ *)

(* All For loops of a method body, with the body as enclosing context. *)
let loops_of checked =
  let out = ref [] in
  List.iter
    (fun cls ->
      List.iter
        (fun body ->
          Mj.Visit.iter_stmts
            ~stmt:(fun s ->
              match s.Mj.Ast.stmt with
              | Mj.Ast.For _ -> out := (body, s) :: !out
              | _ -> ())
            ~expr:(fun _ -> ())
            body.Mj.Visit.b_stmts)
        (Mj.Visit.bodies cls))
    checked.Mj.Typecheck.program.Mj.Ast.classes;
  List.rev !out

(* Bound of the first For loop in A.f, with the whole body as context. *)
let method_for_bound body_src =
  let src =
    Printf.sprintf
      "class A { static final int N = 10; int g() { return 42; } void f(int p, \
       int[] arr) { %s } }"
      body_src
  in
  let checked = check_src src in
  match
    List.find_opt
      (fun (body, _) -> body.Mj.Visit.b_class = "A")
      (loops_of checked)
  with
  | Some (body, s) ->
      Policy.Loop_bounds.for_bound ~enclosing:body.Mj.Visit.b_stmts checked s
  | None -> Alcotest.fail "no for loop found"

let expect_bounded name body_src n =
  case name (fun () ->
      match method_for_bound body_src with
      | Policy.Loop_bounds.Bounded m ->
          Alcotest.(check int) "iterations" n m
      | Policy.Loop_bounds.Index_modified x ->
          Alcotest.failf "index modified: %s" x
      | Policy.Loop_bounds.Unrecognized why ->
          Alcotest.failf "unrecognized: %s" why)

let expect_unbounded name body_src =
  case name (fun () ->
      match method_for_bound body_src with
      | Policy.Loop_bounds.Bounded m -> Alcotest.failf "bounded to %d" m
      | Policy.Loop_bounds.Index_modified _ | Policy.Loop_bounds.Unrecognized _
        ->
          ())

let workload_sources =
  [ ("traffic", Workloads.Traffic_mj.source);
    ("elevator", Workloads.Elevator_mj.source);
    ("uart", Workloads.Uart_mj.source);
    ("fig8-blocks", Workloads.Fig8_mj.refined_blocks_source);
    ("jpeg-restricted", Workloads.Jpeg_mj.restricted_source ~width:32 ~height:24 ());
    ("jpeg-unrestricted",
     Workloads.Jpeg_mj.unrestricted_source ~width:32 ~height:24 ()) ]

let interval_suite =
  [ case "interval subsumes the syntactic recognizer on every workload"
      (fun () ->
        List.iter
          (fun (name, src) ->
            let checked = check_src src in
            List.iter
              (fun (body, s) ->
                match Policy.Loop_bounds.syntactic_for_bound checked s with
                | Policy.Loop_bounds.Bounded n -> (
                    match
                      Policy.Loop_bounds.for_bound
                        ~enclosing:body.Mj.Visit.b_stmts checked s
                    with
                    | Policy.Loop_bounds.Bounded m when m = n -> ()
                    | Policy.Loop_bounds.Bounded m ->
                        Alcotest.failf "%s %s: syntactic %d but interval %d"
                          name (Mj.Visit.body_name body) n m
                    | _ ->
                        Alcotest.failf "%s %s: syntactic Bounded %d regressed"
                          name (Mj.Visit.body_name body) n)
                | _ -> ())
              (loops_of checked))
          workload_sources);
    (* shapes the syntactic recognizer rejects, now bounded *)
    expect_bounded "bound copied through a local"
      "int m = N * 2; for (int i = 0; i < m; i++) { p = p + i; }" 20;
    expect_bounded "bound computed through a chain of locals"
      "int n = 5; int m = n + 3; for (int i = 0; i < m; i++) { p = p + i; }" 8;
    expect_bounded "descending loop from a local start"
      "int m = N; for (int i = m - 1; i >= 0; i--) { p = p + i; }" 10;
    (* guardrails: runtime-governed bounds must stay flagged *)
    expect_unbounded "call result as bound stays unrecognized"
      "int n = g(); for (int i = 0; i < n; i++) { p = p + i; }";
    expect_unbounded "parameter as bound stays unrecognized"
      "for (int i = 0; i < p; i++) { p = p - 1; }";
    expect_unbounded "parameter-length array bound stays unrecognized"
      "for (int i = 0; i < arr.length; i++) { p = p + arr[i]; }";
    expect_unbounded "index modified in the body stays flagged"
      "for (int i = 0; i < N; i++) { i = i - 1; }";
    (* the step may flow through a local, but only a stable one *)
    expect_bounded "step through an unmodified local"
      "int k = 100; for (int i = 0; i < 1000; i += k) { p = p + i; }" 10;
    expect_unbounded "step local modified in the body is rejected"
      "int k = 100; for (int i = 0; i < 1000; i += k) { k = 1; }";
    (* the closed form must not claim loops whose index wraps at int32 *)
    expect_unbounded "stride that wraps past int32 is rejected"
      "for (int i = 0; i < 2147483646; i += 4) { p = p + 1; }";
    expect_bounded "unit stride to the int32 limit still bounds"
      "for (int i = 0; i < 2147483647; i++) { p = p + 1; }" 2147483647 ]

(* ------------------------------------------------------------------ *)
(* Static race detector                                                *)
(* ------------------------------------------------------------------ *)

let races src = Analysis.Races.detect (check_src src)

let race_suite =
  [ case "fig8 threaded: the shared x is a race, the private seen is not"
      (fun () ->
        match races Workloads.Fig8_mj.threaded_source with
        | [ r ] ->
            Alcotest.(check string) "class" "SharedX" r.Analysis.Races.r_class;
            Alcotest.(check string) "field" "x" r.Analysis.Races.r_field;
            Alcotest.(check (list string)) "roots"
              [ "ReaderC"; "WriterA"; "WriterB" ]
              (List.sort compare r.Analysis.Races.r_roots);
            Alcotest.(check (list string)) "writers" [ "WriterA"; "WriterB" ]
              (List.sort_uniq compare
                 (List.map fst r.Analysis.Races.r_writes))
        | rs -> Alcotest.failf "expected exactly 1 race, got %d" (List.length rs));
    case "refined blocks version has no races" (fun () ->
        Alcotest.(check int) "races" 0
          (List.length (races Workloads.Fig8_mj.refined_blocks_source)));
    case "restricted workloads have no races" (fun () ->
        List.iter
          (fun (name, src) ->
            let n = List.length (races src) in
            if n > 0 then Alcotest.failf "%s: %d spurious race(s)" name n)
          workload_sources);
    case "two readers without a write do not race" (fun () ->
        let src =
          {|class S { public static int v = 7; }
            class R1 extends Thread { R1() {} public void run() { int t = S.v; } }
            class R2 extends Thread { R2() {} public void run() { int t = S.v; } }|}
        in
        Alcotest.(check int) "races" 0 (List.length (races src)));
    case "write reached through a helper call is still found" (fun () ->
        let src =
          {|class S { public static int v = 0; }
            class H { H() {} void bump() { S.v = S.v + 1; } }
            class W extends Thread { W() {} public void run() { H h = new H(); h.bump(); } }
            class R extends Thread { R() {} public void run() { int t = S.v; } }|}
        in
        match races src with
        | [ r ] ->
            Alcotest.(check string) "field" "v" r.Analysis.Races.r_field
        | rs -> Alcotest.failf "expected 1 race, got %d" (List.length rs));
    case "one thread class instantiated twice races with itself" (fun () ->
        let src =
          {|class S { public static int v = 0; }
            class W extends Thread { W() {} public void run() { S.v = S.v + 1; } }
            class M { public static void main() { W a = new W(); W b = new W(); a.start(); b.start(); a.join(); b.join(); } }|}
        in
        match races src with
        | [ r ] ->
            Alcotest.(check (list string)) "roots" [ "W" ]
              r.Analysis.Races.r_roots
        | rs -> Alcotest.failf "expected 1 race, got %d" (List.length rs));
    case "one thread class instantiated once does not race with itself"
      (fun () ->
        let src =
          {|class S { public static int v = 0; }
            class W extends Thread { W() {} public void run() { S.v = S.v + 1; } }
            class M { public static void main() { W a = new W(); a.start(); a.join(); } }|}
        in
        Alcotest.(check int) "races" 0 (List.length (races src)));
    case "instantiation under a loop counts as multiple instances" (fun () ->
        let src =
          {|class S { public static int v = 0; }
            class W extends Thread { W() {} public void run() { S.v = S.v + 1; } }
            class M { public static void main() { for (int i = 0; i < 3; i++) { W w = new W(); w.start(); } } }|}
        in
        Alcotest.(check int) "races" 1 (List.length (races src)));
    case "main reading between start and join races with the writer"
      (fun () ->
        let src =
          {|class S { public static int v = 0; }
            class W extends Thread { W() {} public void run() { S.v = S.v + 1; } }
            class M { public static void main() { W a = new W(); a.start(); int t = S.v; a.join(); } }|}
        in
        match races src with
        | [ r ] ->
            Alcotest.(check (list string)) "roots" [ "W"; "main" ]
              (List.sort compare r.Analysis.Races.r_roots)
        | rs -> Alcotest.failf "expected 1 race, got %d" (List.length rs));
    case "main reading after all joins does not race" (fun () ->
        let src =
          {|class S { public static int v = 0; }
            class W extends Thread { W() {} public void run() { S.v = S.v + 1; } }
            class M { public static void main() { W a = new W(); a.start(); a.join(); int t = S.v; } }|}
        in
        Alcotest.(check int) "races" 0 (List.length (races src)));
    case "R10 flags the threaded fig8 and not the refined version" (fun () ->
        let ids src =
          List.filter_map
            (fun v ->
              if v.Policy.Rule.rule_id = "R10-no-shared-field-races" then
                Some v.Policy.Rule.severity
              else None)
            (Policy.Asr_policy.check (check_src src))
        in
        let threaded = ids Workloads.Fig8_mj.threaded_source in
        Alcotest.(check bool) "threaded flagged" true
          (List.mem Policy.Rule.Forbidden threaded);
        Alcotest.(check int) "refined clean" 0
          (List.length (ids Workloads.Fig8_mj.refined_blocks_source))) ]

(* ------------------------------------------------------------------ *)
(* Const_eval edge cases                                               *)
(* ------------------------------------------------------------------ *)

(* Evaluate the initializer of static final field [r] in [decls]. *)
let const_of decls =
  let src = Printf.sprintf "class A { %s }" decls in
  let checked = check_src src in
  let cls = List.hd checked.Mj.Typecheck.program.Mj.Ast.classes in
  let f = List.find (fun f -> f.Mj.Ast.f_name = "r") cls.Mj.Ast.cl_fields in
  Policy.Const_eval.const_int checked (Option.get f.Mj.Ast.f_init)

let const_suite =
  [ case "addition wraps to 32 bits like the VM" (fun () ->
        Alcotest.(check (option int)) "wrap" (Some (-294967296))
          (const_of "static final int r = 2000000000 + 2000000000;"));
    case "multiplication wraps to 32 bits" (fun () ->
        Alcotest.(check (option int)) "wrap" (Some 1410065408)
          (const_of "static final int r = 100000 * 100000;"));
    case "shift distance is masked to 5 bits" (fun () ->
        Alcotest.(check (option int)) "1 << 33" (Some 2)
          (const_of "static final int r = 1 << 33;"));
    case "division by zero is not constant and does not raise" (fun () ->
        Alcotest.(check (option int)) "7 / 0" None
          (const_of "static final int r = 7 / 0;"));
    case "modulo by zero is not constant and does not raise" (fun () ->
        Alcotest.(check (option int)) "7 % 0" None
          (const_of "static final int r = 7 % 0;"));
    case "static finals computed from static finals" (fun () ->
        Alcotest.(check (option int)) "chain" (Some 40)
          (const_of
             "static final int A = 6; static final int B = A * 7; static \
              final int r = B - 2;")) ]

(* ------------------------------------------------------------------ *)
(* Escape analysis regressions                                         *)
(* ------------------------------------------------------------------ *)

(* Does local [x] escape from A.f's body? *)
let escapes methods =
  let src = Printf.sprintf "class A { int[] q; %s }" methods in
  let checked = check_src src in
  let cls = List.hd checked.Mj.Typecheck.program.Mj.Ast.classes in
  let m = Option.get (Mj.Ast.find_method cls "f") in
  Policy.Escape.local_escapes "x" (Option.get m.Mj.Ast.m_body)

let escape_suite =
  [ case "indexing, length and rebinding do not escape" (fun () ->
        Alcotest.(check bool) "no escape" false
          (escapes
             "void f(int[] x) { x[0] = 1; int n = x.length; int y = x[0] + \
              x[1]; x = new int[3]; }"));
    case "plain call argument escapes" (fun () ->
        Alcotest.(check bool) "escape" true
          (escapes "int g(int[] a) { return a[0]; } void f(int[] x) { int y = g(x); }"));
    case "cast-wrapped call argument escapes" (fun () ->
        Alcotest.(check bool) "escape" true
          (escapes
             "int g(int[] a) { return a[0]; } void f(int[] x) { int y = \
              g((int[]) x); }"));
    case "cast-wrapped return escapes" (fun () ->
        Alcotest.(check bool) "escape" true
          (escapes "int[] f(int[] x) { return (int[]) x; }"));
    case "cast-wrapped field store escapes" (fun () ->
        Alcotest.(check bool) "escape" true
          (escapes "void f(int[] x) { q = (int[]) x; }"));
    case "aliasing into another local escapes" (fun () ->
        Alcotest.(check bool) "escape" true
          (escapes "void f(int[] x) { int[] y; y = x; }"));
    case "aliasing at declaration escapes" (fun () ->
        Alcotest.(check bool) "escape" true
          (escapes "void f(int[] x) { int[] y = x; }"));
    case "storing into an element of another array escapes" (fun () ->
        Alcotest.(check bool) "escape" true
          (escapes "void f(int x) { int[] a = new int[2]; a[0] = x; }")) ]

(* ------------------------------------------------------------------ *)
(* Bounds-check elision: differential property                         *)
(* ------------------------------------------------------------------ *)

type outcome = Finished of string | Trapped of string

let vm_run ~elide checked cls =
  let plan = if elide then Some (Analysis.Elide.plan checked) else None in
  let s = Mj_bytecode.Vm.create ?elide:plan checked in
  let result =
    try
      Mj_bytecode.Vm.run_main s cls;
      Finished (Mj_bytecode.Vm.output s)
    with Mj_runtime.Heap.Runtime_error m -> Trapped m
  in
  (result,
   Mj_runtime.Cost.cycles (Mj_bytecode.Vm.machine s).Mj_runtime.Machine.cost)

let jit_run ~elide checked cls =
  let plan = if elide then Some (Analysis.Elide.plan checked) else None in
  let s = Mj_bytecode.Jit.create ?elide:plan checked in
  let result =
    try
      Mj_bytecode.Jit.run_main s cls;
      Finished (Mj_bytecode.Jit.output s)
    with Mj_runtime.Heap.Runtime_error m -> Trapped m
  in
  (result,
   Mj_runtime.Cost.cycles (Mj_bytecode.Jit.machine s).Mj_runtime.Machine.cost)

let interp_run checked cls =
  let s = Mj_runtime.Interp.create checked in
  try
    Mj_runtime.Interp.run_main s cls;
    Finished (Mj_runtime.Interp.output s)
  with Mj_runtime.Heap.Runtime_error m -> Trapped m

(* One random straight-line program over a constant-sized local array:
   a constant-bounded fill loop (possibly overrunning) followed by a
   handful of literal-index reads (possibly out of range). The interval
   analysis elides exactly the in-range accesses; the property is that
   elision changes neither outputs nor traps and never adds cycles. *)
let random_program (n, l, idxs) =
  let reads =
    String.concat "\n    "
      (List.map (Printf.sprintf "s = s + a[%d];") idxs)
  in
  Printf.sprintf
    {|class P {
  static void main() {
    int[] a = new int[%d];
    for (int i = 0; i < %d; i++) { a[i] = i * 2; }
    int s = 0;
    %s
    System.out.println("s=" + s);
  }
}|}
    n l reads

let gen_program =
  QCheck.make
    ~print:(fun (n, l, idxs) ->
      Printf.sprintf "n=%d l=%d idxs=[%s]" n l
        (String.concat ";" (List.map string_of_int idxs)))
    QCheck.Gen.(
      triple (int_range 1 6) (int_range 0 8)
        (list_size (int_range 1 6) (int_range (-2) 8)))

let differential_case checked cls =
  let reference = interp_run checked cls in
  List.iter
    (fun (label, run) ->
      let base, base_cycles = run ~elide:false checked cls in
      let elided, elided_cycles = run ~elide:true checked cls in
      if base <> elided then
        Alcotest.failf "%s: elision changed the outcome" label;
      if base <> reference then
        Alcotest.failf "%s: disagrees with the interpreter" label;
      if elided_cycles > base_cycles then
        Alcotest.failf "%s: elision cost cycles (%d > %d)" label elided_cycles
          base_cycles)
    [ ("vm", vm_run); ("jit", jit_run) ]

let elision_suite =
  [ qcase ~count:60 "random array programs run identically with elision"
      gen_program
      (fun p ->
        let checked = check_src (random_program p) in
        differential_case checked "P";
        true);
    case "elision preserves a genuine out-of-range trap" (fun () ->
        let checked =
          check_src
            {|class P {
  static void main() {
    int[] a = new int[4];
    a[2] = 5;
    System.out.println("pre=" + a[2]);
    a[7] = 1;
    System.out.println("unreached");
  }
}|}
        in
        (match vm_run ~elide:true checked "P" with
        | Trapped _, _ -> ()
        | Finished out, _ -> Alcotest.failf "no trap; output %S" out);
        differential_case checked "P");
    case "side-effecting condition does not mislead narrowing" (fun () ->
        (* [i < ++i] compares the pre-increment value, so the true
           branch always runs and a[5] must trap; narrowing [i] with
           the post-increment binding used to mark it dead and elide
           the (failing) check. *)
        let checked =
          check_src
            {|class P {
  static void main() {
    int[] a = new int[1];
    int i = 3;
    if (i < ++i) { i = 5; } else { i = 0; }
    a[i] = 1;
    System.out.println("unreached");
  }
}|}
        in
        (match vm_run ~elide:true checked "P" with
        | Trapped _, _ -> ()
        | Finished out, _ -> Alcotest.failf "no trap; output %S" out);
        differential_case checked "P");
    case "workload reactions are unchanged under elision" (fun () ->
        List.iter
          (fun (name, src, cls, input) ->
            let drive elide =
              let checked = check_src src in
              let elab =
                Javatime.Elaborate.elaborate ~enforce_policy:false
                  ~bounded_memory:false ~elide_bounds_checks:elide checked ~cls
              in
              let outs =
                List.init 8 (fun i ->
                    Javatime.Elaborate.react elab [| input i |])
              in
              (outs, Javatime.Elaborate.total_cycles elab)
            in
            let base, base_cycles = drive false in
            let elided, elided_cycles = drive true in
            if base <> elided then
              Alcotest.failf "%s: outputs differ under elision" name;
            if elided_cycles > base_cycles then
              Alcotest.failf "%s: elision cost cycles" name)
          [ ("traffic", Workloads.Traffic_mj.source, "TrafficLight",
             fun i -> Asr.Domain.int (i mod 2));
            ("elevator", Workloads.Elevator_mj.source, "Elevator",
             fun i -> Asr.Domain.int (i mod 4));
            ("fir", Workloads.Fir_mj.unrestricted_source, "FirFilter",
             fun i -> Asr.Domain.int ((i * 13) mod 50)) ]) ]

let suite =
  interval_suite @ race_suite @ const_suite @ escape_suite @ elision_suite
