open Util
module D = Asr.Domain
module Dt = Asr.Data
module G = Asr.Graph
module B = Asr.Block
module S = Asr.Supervisor
module I = Asr.Inject
module Fx = Asr.Fixpoint
module Sim = Asr.Simulate
module T = Asr.Trace
module C = Telemetry.Causal
module J = Telemetry.Json
module N = Workloads.Netgen

(* ---- helpers ----------------------------------------------------- *)

let jget path j =
  List.fold_left
    (fun acc k ->
      match acc with
      | Some o -> J.member k o
      | None -> None)
    (Some j) path

let jint path j =
  match jget path j with
  | Some (J.Int n) -> n
  | _ -> Alcotest.failf "missing int at %s" (String.concat "." path)

(* x --gain 2--> (+) --> y, with the adder's second arm fed back
   through a delay: y(t) = 2 x(t) + y(t-1). *)
let chain_graph () =
  let g = G.create "chain" in
  let x = G.add_input g "x" in
  let gn = G.add_block g (B.gain 2) in
  G.connect g ~src:(G.out_port x 0) ~dst:(G.in_port gn 0);
  let add = G.add_block g B.add in
  G.connect g ~src:(G.out_port gn 0) ~dst:(G.in_port add 0);
  let f = G.add_block g (B.fork 2) in
  G.connect g ~src:(G.out_port add 0) ~dst:(G.in_port f 0);
  let d = G.add_delay g ~init:(D.int 0) in
  G.connect g ~src:(G.out_port f 0) ~dst:(G.in_port d 0);
  G.connect g ~src:(G.out_port d 0) ~dst:(G.in_port add 1);
  let y = G.add_output g "y" in
  G.connect g ~src:(G.out_port f 1) ~dst:(G.in_port y 0);
  g

let chain_stream n =
  List.init n (fun t -> [ ("x", D.int (t + 1)) ])

(* Two strict adders in a delay-free cycle: both outputs stay ⊥. *)
let stuck_graph () =
  let g = G.create "stuck" in
  let x = G.add_input g "x" in
  let a = G.add_block g B.add in
  let b = G.add_block g B.add in
  G.connect g ~src:(G.out_port x 0) ~dst:(G.in_port a 0);
  G.connect g ~src:(G.out_port b 0) ~dst:(G.in_port a 1);
  G.connect g ~src:(G.out_port a 0) ~dst:(G.in_port b 0);
  G.connect g ~src:(G.out_port x 0) ~dst:(G.in_port b 1);
  let y = G.add_output g "y" in
  G.connect g ~src:(G.out_port a 0) ~dst:(G.in_port y 0);
  g

let netgen ?(delays = 2) ?(cyclic_ratio = 0.1) seed =
  N.generate ~inputs:3 ~delays ~cyclic_ratio ~seed ~depth:4 ~width:5 ()

let run_traced ?capacity ~strategy g stream =
  let compiled = G.compile g in
  let cz = C.create ?capacity ~n_nets:compiled.G.n_nets () in
  let sim = Sim.create ~strategy ~causal:cz g in
  let outs = List.map (Sim.step sim) stream in
  (cz, sim, outs)

let suite =
  [
    (* ---- ring discipline ---- *)
    case "create validates capacity and net count" (fun () ->
        Alcotest.check_raises "capacity"
          (Invalid_argument "Causal.create: capacity must be >= 1")
          (fun () -> ignore (C.create ~capacity:0 ~n_nets:1 ()));
        let cz : unit C.t = C.create ~n_nets:0 () in
        Alcotest.(check int) "n_nets" 0 (C.n_nets cz));
    case "quiet evaluations leave no trace" (fun () ->
        let cz : int C.t = C.create ~n_nets:4 () in
        C.begin_instant cz;
        C.eval_begin cz ~block:0 ~reads:[| 1; 2 |];
        C.eval_commit cz;
        Alcotest.(check int) "pushed" 0 (C.pushed cz);
        C.eval_begin cz ~block:0 ~reads:[| 1 |];
        C.eval_write cz ~net:3 42;
        C.eval_commit cz;
        Alcotest.(check int) "pushed after write" 1 (C.pushed cz);
        C.end_instant cz);
    case "ring bounds memory and counts overwrites" (fun () ->
        let cz : int C.t = C.create ~capacity:4 ~n_nets:16 () in
        C.begin_instant cz;
        for net = 0 to 9 do
          C.record_binding cz ~kind:C.Input ~net net
        done;
        C.end_instant cz;
        Alcotest.(check int) "pushed" 10 (C.pushed cz);
        Alcotest.(check int) "retained" 4 (C.retained cz);
        Alcotest.(check int) "overwrites" 6 (C.overwrites cz);
        Alcotest.(check bool) "evicted uid gone" true (C.find cz 2 = None);
        (match C.find cz 8 with
        | Some ev -> Alcotest.(check int) "retained uid" 8 ev.C.ev_uid
        | None -> Alcotest.fail "uid 8 should be retained");
        Alcotest.(check int)
          "events lists only retained" 4
          (List.length (C.events cz)));
    (* ---- recording through the simulator ---- *)
    case "instants record input and delay bindings" (fun () ->
        let cz, _, _ =
          run_traced ~strategy:Fx.Scheduled (chain_graph ()) (chain_stream 3)
        in
        let evs = C.events ~instant:1 cz in
        let has k = List.exists (fun e -> e.C.ev_kind = k) evs in
        Alcotest.(check bool) "input binding" true (has C.Input);
        Alcotest.(check bool) "delay binding" true (has C.Delay);
        let delay_ev = List.find (fun e -> e.C.ev_kind = C.Delay) evs in
        Alcotest.(check bool) "delay has source net" true
          (delay_ev.C.ev_src >= 0);
        (* The delay's read resolves to the previous instant's writer of
           the source net. *)
        (match delay_ev.C.ev_reads with
        | [| src; uid |] ->
            Alcotest.(check int) "read net is source" delay_ev.C.ev_src src;
            (match C.find cz uid with
            | Some w -> Alcotest.(check int) "writer instant" 0 w.C.ev_instant
            | None -> Alcotest.fail "delay source writer should be retained")
        | _ -> Alcotest.fail "delay binding should have one read"));
    case "slice resolves an output back to its inputs" (fun () ->
        let g = chain_graph () in
        let t = T.record ~strategy:Fx.Scheduled g (chain_stream 3) in
        let net = Option.get (T.output_net t "y") in
        let sl = T.why t ~net ~instant:0 in
        (* y(0) = 2*1 + 0 = 2 *)
        Alcotest.(check bool) "value" true (sl.C.sl_value = Some (D.int 2));
        Alcotest.(check bool) "has root" true (sl.C.sl_root >= 0);
        Alcotest.(check bool) "not truncated" false sl.C.sl_truncated;
        let kinds = List.map (fun e -> e.C.ev_kind) sl.C.sl_events in
        Alcotest.(check bool) "reaches the input binding" true
          (List.mem C.Input kinds);
        Alcotest.(check bool) "reaches the delay binding" true
          (List.mem C.Delay kinds));
    case "slice crosses delays into earlier instants" (fun () ->
        let g = chain_graph () in
        let t = T.record ~strategy:Fx.Worklist g (chain_stream 4) in
        let net = Option.get (T.output_net t "y") in
        let sl = T.why t ~net ~instant:3 in
        (* y(3) = 2(1+2+3+4) = 20 *)
        Alcotest.(check bool) "value" true (sl.C.sl_value = Some (D.int 20));
        let instants =
          List.sort_uniq compare
            (List.map (fun e -> e.C.ev_instant) sl.C.sl_events)
        in
        Alcotest.(check (list int)) "spans all instants" [ 0; 1; 2; 3 ]
          instants);
    case "slice of a stuck cyclic net reports bottom" (fun () ->
        let cz, sim, _ =
          run_traced ~strategy:Fx.Scheduled (stuck_graph ())
            [ [ ("x", D.int 1) ] ]
        in
        let vals = Sim.net_values sim in
        let net =
          (* first net that stayed bottom *)
          let rec find i = if vals.(i) = D.Bottom then i else find (i + 1) in
          find 0
        in
        let sl = C.slice cz ~net ~instant:0 in
        Alcotest.(check bool) "no value" true (sl.C.sl_value = None);
        Alcotest.(check int) "no root" (-1) sl.C.sl_root;
        Alcotest.(check bool) "not truncated (bottom is not loss)" false
          sl.C.sl_truncated);
    case "slice truncates at the retention horizon" (fun () ->
        let g = chain_graph () in
        let cz, _, _ =
          run_traced ~capacity:8 ~strategy:Fx.Scheduled g (chain_stream 12)
        in
        Alcotest.(check bool) "ring overflowed" true (C.overwrites cz > 0);
        let compiled = G.compile g in
        let _, net = compiled.G.c_outputs.(0) in
        let sl = C.slice cz ~net ~instant:11 in
        Alcotest.(check bool) "truncated" true sl.C.sl_truncated;
        Alcotest.(check bool) "counted" true (C.truncated_slices cz > 0);
        let _, trunc = C.data_loss cz in
        Alcotest.(check bool) "data_loss pair" true (trunc > 0));
    case "strategies agree on the causal structure of a slice" (fun () ->
        let g () = netgen 11 in
        let stream = N.stimulus (g ()) ~instants:5 in
        let slice_shape strategy =
          let t = T.record ~strategy (g ()) stream in
          let net = Option.get (T.output_net t "out0") in
          let sl = T.why t ~net ~instant:4 in
          ( sl.C.sl_value,
            List.sort_uniq compare
              (List.map
                 (fun e -> (e.C.ev_kind, e.C.ev_block, e.C.ev_instant))
                 sl.C.sl_events) )
        in
        let ref_shape = slice_shape Fx.Chaotic in
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (Fx.strategy_name s ^ " matches chaotic")
              true
              (slice_shape s = ref_shape))
          [ Fx.Scheduled; Fx.Worklist; Fx.Fused ]);
    case "fused runs record folded constants" (fun () ->
        let g = N.generate ~inputs:2 ~const_ratio:0.6 ~seed:7 ~depth:3 ~width:4 () in
        let stream = N.stimulus g ~instants:2 in
        let cz, sim, _ = run_traced ~strategy:Fx.Fused g stream in
        let plan = Option.get (Sim.fuse_plan sim) in
        let folded = Asr.Fuse.constant_nets plan in
        if folded <> [] then begin
          let evs = C.events ~instant:0 cz in
          let folded_nets =
            List.filter_map
              (fun e ->
                if e.C.ev_kind = C.Folded then Some e.C.ev_write_nets.(0)
                else None)
              evs
          in
          List.iter
            (fun (net, _) ->
              Alcotest.(check bool)
                (Printf.sprintf "net %d recorded as folded" net)
                true (List.mem net folded_nets))
            folded
        end);
    case "tracing does not change evaluation counts" (fun () ->
        let g = chain_graph () in
        let stream = chain_stream 6 in
        let count ~causal strategy =
          let sim =
            if causal then
              let compiled = G.compile g in
              let cz = C.create ~n_nets:compiled.G.n_nets () in
              Sim.create ~strategy ~causal:cz g
            else Sim.create ~strategy g
          in
          List.iter (fun i -> ignore (Sim.step sim i)) stream;
          Sim.block_evaluations sim
        in
        List.iter
          (fun s ->
            Alcotest.(check int)
              (Fx.strategy_name s ^ " evals")
              (count ~causal:false s) (count ~causal:true s))
          [ Fx.Chaotic; Fx.Scheduled; Fx.Worklist ]);
    (* ---- containment provenance ---- *)
    case "held substitutions carry containment tags" (fun () ->
        let g = chain_graph () in
        let inject =
          [ { I.i_block = 1; i_kind = I.Trap; i_instant = 2;
              i_persistence = I.Transient; i_first_only = false } ]
        in
        let t =
          T.record ~strategy:Fx.Scheduled ~policy:S.Hold_last ~inject g
            (chain_stream 4)
        in
        Alcotest.(check int) "one fault" 1 (T.fault_count t);
        let tagged =
          List.filter (fun e -> e.C.ev_tag <> "") (T.events t)
        in
        Alcotest.(check bool) "tagged event exists" true (tagged <> []);
        List.iter
          (fun e ->
            Alcotest.(check bool) "tag names containment" true
              (String.length e.C.ev_tag >= 9
              && String.sub e.C.ev_tag 0 9 = "contained"))
          tagged);
    case "absent policy tags substitutions as absent" (fun () ->
        let g = chain_graph () in
        let inject =
          [ { I.i_block = 0; i_kind = I.Trap; i_instant = 0;
              i_persistence = I.Transient; i_first_only = false } ]
        in
        let t =
          T.record ~strategy:Fx.Worklist ~policy:S.Absent ~inject g
            (chain_stream 2)
        in
        Alcotest.(check bool) "contained:absent recorded" true
          (List.exists
             (fun e -> e.C.ev_tag = "contained:absent")
             (T.events t)));
    (* ---- serialization ---- *)
    case "value codec is bit-exact on every constructor" (fun () ->
        let round v =
          T.value_of_json (J.parse (J.to_string (T.value_json v)))
        in
        let bit_eq a b =
          match (a, b) with
          | D.Def (Dt.Real x), D.Def (Dt.Real y) ->
              Int64.bits_of_float x = Int64.bits_of_float y
          | _ -> a = b
        in
        List.iter
          (fun v ->
            Alcotest.(check bool)
              (J.to_string (T.value_json v))
              true
              (bit_eq v (round v)))
          [ D.Bottom; D.int 42; D.int (-7); D.Def (Dt.Bool true);
            D.Def (Dt.Str "hi\"\\"); D.Def (Dt.Real 0.1);
            D.Def (Dt.Real (-0.0)); D.Def (Dt.Real 1e308);
            D.Def (Dt.Real Float.nan); D.Def (Dt.Real Float.infinity);
            D.Def (Dt.Int_array [| 1; 2; 3 |]);
            D.Def (Dt.Tuple [ Dt.Int 1; Dt.Real 2.5; Dt.Absent ]);
            D.Def Dt.Absent ]);
    case "event json round-trips" (fun () ->
        let cz, _, _ =
          run_traced ~strategy:Fx.Scheduled (chain_graph ()) (chain_stream 3)
        in
        List.iter
          (fun ev ->
            let j = J.parse (J.to_string (C.event_json ~render:T.value_json ev)) in
            let ev' = C.event_of_json ~unrender:T.value_of_json j in
            Alcotest.(check bool) "round-trip" true (ev = ev'))
          (C.events cz));
    case "trace json round-trips" (fun () ->
        let t = T.record ~strategy:Fx.Fused (netgen 3) (N.stimulus (netgen 3) ~instants:5) in
        let t' = T.of_json (J.parse (J.to_string (T.to_json t))) in
        Alcotest.(check bool) "equal" true (T.equal t t');
        Alcotest.(check int) "instants" (T.instants t) (T.instants t'));
    case "trace save/load round-trips" (fun () ->
        let g = chain_graph () in
        let t =
          T.record ~strategy:Fx.Scheduled ~policy:S.Hold_last
            ~inject:(I.plan ~seed:5 ~n_blocks:3 ~instants:4 ())
            g (chain_stream 4)
        in
        let path = Filename.temp_file "trace" ".json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            T.save t path;
            Alcotest.(check bool) "equal" true (T.equal t (T.load path))));
    (* ---- deterministic replay ---- *)
    case "replay is bit-identical across strategies" (fun () ->
        let stream = N.stimulus (netgen 21) ~instants:6 in
        List.iter
          (fun strategy ->
            let t = T.record ~strategy (netgen 21) stream in
            let t' = T.replay t (netgen 21) in
            Alcotest.(check bool)
              (Fx.strategy_name strategy ^ " replay equal")
              true (T.equal t t'))
          [ Fx.Chaotic; Fx.Scheduled; Fx.Worklist; Fx.Fused ]);
    case "replay of an injected campaign is bit-identical" (fun () ->
        let g () = netgen ~delays:3 33 in
        let stream = N.stimulus (g ()) ~instants:8 in
        let inject =
          I.plan ~seed:9 ~n_blocks:(G.block_count (g ())) ~instants:8
            ~n_faults:3 ()
        in
        List.iter
          (fun (strategy, policy) ->
            let t = T.record ~strategy ~policy ~inject (g ()) stream in
            let t' = T.replay t (g ()) in
            Alcotest.(check bool)
              (Fx.strategy_name strategy ^ "/" ^ S.policy_name policy)
              true (T.equal t t');
            Alcotest.(check bool) "fault logs identical" true
              (T.faults t = T.faults t'))
          [ (Fx.Scheduled, S.Hold_last); (Fx.Worklist, S.Absent);
            (Fx.Fused, S.Retry 1); (Fx.Chaotic, S.Hold_last) ]);
    case "replay reproduces a fail-fast abort" (fun () ->
        let g () = chain_graph () in
        let inject =
          [ { I.i_block = 1; i_kind = I.Trap; i_instant = 2;
              i_persistence = I.Persistent; i_first_only = false } ]
        in
        let t =
          T.record ~strategy:Fx.Scheduled ~policy:S.Fail_fast ~inject (g ())
            (chain_stream 5)
        in
        Alcotest.(check bool) "aborted" true (T.fatal t <> None);
        Alcotest.(check int) "instants before abort" 2 (T.instants t);
        Alcotest.(check bool) "replay equal" true
          (T.equal t (T.replay t (g ()))));
    (* ---- first-divergence localization ---- *)
    case "identical runs have no divergence" (fun () ->
        let stream = N.stimulus (netgen 40) ~instants:5 in
        let a = T.record ~strategy:Fx.Scheduled (netgen 40) stream in
        let b = T.record ~strategy:Fx.Worklist (netgen 40) stream in
        Alcotest.(check bool) "none" true (T.first_divergence a b = None));
    case "divergence localizes a mutated block" (fun () ->
        let g = chain_graph () in
        (* corrupt the gain block (index 0): 2x becomes 2x+1 from the
           start, so the earliest cause is net(gain) at instant 0 *)
        let broken =
          G.map_blocks g (fun i b ->
              if i = 0 then
                B.map1 ~name:b.B.name (function
                  | Dt.Int v -> Dt.Int ((2 * v) + 1)
                  | d -> d)
              else b)
        in
        let a = T.record ~strategy:Fx.Scheduled g (chain_stream 4) in
        let b = T.record ~strategy:Fx.Scheduled broken (chain_stream 4) in
        match T.first_divergence a b with
        | None -> Alcotest.fail "expected a divergence"
        | Some d ->
            Alcotest.(check int) "instant" 0 d.T.d_instant;
            Alcotest.(check int) "block" 0 d.T.d_block;
            Alcotest.(check string) "producer" "gain2" d.T.d_producer;
            Alcotest.(check bool) "values differ" false
              (d.T.d_value_a = d.T.d_value_b);
            Alcotest.(check bool) "slices attached" true
              (d.T.d_slice_a <> None && d.T.d_slice_b <> None);
            (* rendering mentions the block and both values *)
            let s = T.divergence_to_string d in
            Alcotest.(check bool) "mentions producer" true
              (contains ~substring:"gain" s));
    case "divergence on a later-instant delay corruption" (fun () ->
        let g = chain_graph () in
        let broken =
          G.map_blocks g (fun i b ->
              if i = 1 then
                (* adder misbehaves only once values exceed 10 *)
                B.make ~name:b.B.name ~n_in:2 ~n_out:1 (fun ins ->
                    match (ins.(0), ins.(1)) with
                    | D.Def (Dt.Int x), D.Def (Dt.Int y) ->
                        let s = x + y in
                        [| D.int (if s > 10 then s + 100 else s) |]
                    | _ -> [| D.Bottom |])
              else b)
        in
        let a = T.record ~strategy:Fx.Worklist g (chain_stream 5) in
        let b = T.record ~strategy:Fx.Worklist broken (chain_stream 5) in
        match T.first_divergence a b with
        | None -> Alcotest.fail "expected a divergence"
        | Some d ->
            (* y: 2, 6, 12 — first sum > 10 at instant 2 *)
            Alcotest.(check int) "instant" 2 d.T.d_instant;
            Alcotest.(check string) "producer" "add" d.T.d_producer);
    case "fatal abort shows up as a missing instant" (fun () ->
        let g () = chain_graph () in
        let inject =
          [ { I.i_block = 0; i_kind = I.Trap; i_instant = 3;
              i_persistence = I.Persistent; i_first_only = false } ]
        in
        let a =
          T.record ~strategy:Fx.Scheduled ~policy:S.Hold_last ~inject (g ())
            (chain_stream 5)
        in
        let b =
          T.record ~strategy:Fx.Scheduled ~policy:S.Fail_fast ~inject (g ())
            (chain_stream 5)
        in
        match T.first_divergence a b with
        | Some d when d.T.d_net = -1 ->
            Alcotest.(check int) "missing instant" 3 d.T.d_instant;
            Alcotest.(check string) "side" "missing in B" d.T.d_producer
        | Some d ->
            Alcotest.failf "expected missing instant, got net %d" d.T.d_net
        | None -> Alcotest.fail "expected a divergence");
    case "different input streams are incomparable" (fun () ->
        let a = T.record (chain_graph ()) (chain_stream 3) in
        let b =
          T.record (chain_graph ()) [ [ ("x", D.int 99) ]; [ ("x", D.int 1) ];
                                      [ ("x", D.int 2) ] ]
        in
        Alcotest.check_raises "incomparable"
          (T.Incomparable "input streams differ") (fun () ->
            ignore (T.first_divergence a b)));
    (* ---- rendering ---- *)
    case "why rendering names blocks, inputs and tags" (fun () ->
        let g = chain_graph () in
        let inject =
          [ { I.i_block = 1; i_kind = I.Trap; i_instant = 1;
              i_persistence = I.Transient; i_first_only = false } ]
        in
        let t =
          T.record ~strategy:Fx.Scheduled ~policy:S.Hold_last ~inject g
            (chain_stream 3)
        in
        let net = Option.get (T.output_net t "y") in
        let s = T.slice_to_string t (T.why t ~net ~instant:1) in
        Alcotest.(check bool) "query line" true
          (contains ~substring:"why net" s);
        Alcotest.(check bool) "input label" true
          (contains ~substring:"input:x" s);
        Alcotest.(check bool) "containment tag" true
          (contains ~substring:"[contained:" s);
        let j = T.slice_json t (T.why t ~net ~instant:1) in
        (match jget [ "producer" ] j with
        | Some (J.Str p) ->
            Alcotest.(check bool) "producer label" true (p = "fork2")
        | _ -> Alcotest.fail "slice json should carry producer"));
    case "divergence json carries both slices" (fun () ->
        let g = chain_graph () in
        let broken =
          G.map_blocks g (fun i b ->
              if i = 0 then B.gain 3 else b)
        in
        let a = T.record g (chain_stream 2) in
        let b = T.record broken (chain_stream 2) in
        match T.first_divergence a b with
        | None -> Alcotest.fail "expected divergence"
        | Some d ->
            let j = J.parse (J.to_string (T.divergence_json d)) in
            Alcotest.(check int) "instant" 0 (jint [ "instant" ] j);
            Alcotest.(check bool) "slice_a present" true
              (jget [ "slice_a"; "root" ] j <> None);
            Alcotest.(check bool) "slice_b present" true
              (jget [ "slice_b"; "root" ] j <> None));
    (* ---- data-loss surfacing ---- *)
    case "export table reports causal loss" (fun () ->
        let reg = Telemetry.Registry.create () in
        let s = Telemetry.Export.table ~causal_loss:(3, 1) reg in
        Alcotest.(check bool) "overwrites line" true
          (contains ~substring:"3 causal events overwritten" s);
        Alcotest.(check bool) "truncation line" true
          (contains ~substring:"1 causal slices truncated" s);
        let quiet = Telemetry.Export.table reg in
        Alcotest.(check bool) "silent when zero" false
          (contains ~substring:"causal" quiet));
    case "export json and chrome trace report causal loss" (fun () ->
        let reg = Telemetry.Registry.create () in
        let j = Telemetry.Export.json ~causal_loss:(5, 2) reg in
        Alcotest.(check int) "json overwrites" 5
          (jint [ "data_loss"; "causal_overwrites" ] j);
        Alcotest.(check int) "json truncated" 2
          (jint [ "data_loss"; "causal_truncated" ] j);
        let j0 = Telemetry.Export.json reg in
        Alcotest.(check int) "json default 0" 0
          (jint [ "data_loss"; "causal_overwrites" ] j0);
        let ct = J.parse (Telemetry.Export.chrome_trace ~causal_loss:(5, 2) reg) in
        Alcotest.(check int) "chrome overwrites" 5
          (jint [ "metadata"; "causal_overwrites" ] ct);
        Alcotest.(check int) "chrome truncated" 2
          (jint [ "metadata"; "causal_truncated" ] ct));
    case "monitor snapshots report causal loss" (fun () ->
        let mon = Telemetry.Monitor.create () in
        let j0 = Telemetry.Monitor.snapshot mon in
        Alcotest.(check int) "default 0" 0
          (jint [ "data_loss"; "causal_overwrites" ] j0);
        Telemetry.Monitor.set_causal_source mon (fun () -> (7, 2));
        let j = Telemetry.Monitor.snapshot mon in
        Alcotest.(check int) "overwrites" 7
          (jint [ "data_loss"; "causal_overwrites" ] j);
        Alcotest.(check int) "truncated" 2
          (jint [ "data_loss"; "causal_truncated" ] j));
    case "simulator wires causal loss into the monitor" (fun () ->
        let g = chain_graph () in
        let compiled = G.compile g in
        let cz = C.create ~capacity:8 ~n_nets:compiled.G.n_nets () in
        let mon = Telemetry.Monitor.create () in
        let sim = Sim.create ~strategy:Fx.Scheduled ~monitor:mon ~causal:cz g in
        List.iter (fun i -> ignore (Sim.step sim i)) (chain_stream 12);
        Alcotest.(check bool) "ring overflowed" true (C.overwrites cz > 0);
        let j = Telemetry.Monitor.snapshot mon in
        Alcotest.(check int) "snapshot sees the ring" (C.overwrites cz)
          (jint [ "data_loss"; "causal_overwrites" ] j));
    case "simulator rejects a mismatched causal sink" (fun () ->
        let g = chain_graph () in
        let cz : D.t C.t = C.create ~n_nets:1 () in
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Simulate.create: causal sink net count mismatch")
          (fun () -> ignore (Sim.create ~causal:cz g)));
  ]
