(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see EXPERIMENTS.md for the mapping and the recorded
   paper-vs-measured values).

   Usage:  main.exe [table1|fig1|...|fig8|ablation|bechamel|all]
           main.exe table1 --small      (reduced image for quick runs)

   Times are reported two ways: deterministic cost-model cycles scaled
   to seconds at the paper's 150 MHz clock, and measured wall-clock
   seconds of this harness. *)

let clock_hz = 150e6

let wall f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let modeled cycles = float_of_int cycles /. clock_hz

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

type cell = {
  c_init_cycles : int;
  c_react_cycles : int;
  c_init_wall : float;
  c_react_wall : float;
}

(* 64 KiB young space, in the JDK-1.1 mould: reactive allocation beyond
   it triggers a modeled stop-the-world pause. The restricted codec never
   allocates reactively, so only the unrestricted variant pays. *)
let gc_threshold = 16_384

let run_codec ~engine ~source ~image ~reactions =
  let checked = Mj.Typecheck.check_source ~file:"jpeg.mj" source in
  let (elab, init_wall) =
    wall (fun () ->
        Javatime.Elaborate.elaborate ~engine ~enforce_policy:false
          ~bounded_memory:false ~gc_threshold checked ~cls:"JpegCodec")
  in
  let react () =
    match Javatime.Elaborate.react elab [| Asr.Domain.int_array image |] with
    | [| Asr.Domain.Def (Asr.Data.Int_array reconstructed);
         Asr.Domain.Def (Asr.Data.Int stream_len) |] ->
        (reconstructed, stream_len)
    | _ -> failwith "unexpected codec outputs"
  in
  (* warm once (JIT translation happens on first call), then measure *)
  let first, _ = wall react in
  let cycles_before = Javatime.Elaborate.total_cycles elab in
  let (_, react_wall) =
    wall (fun () ->
        for _ = 1 to reactions do
          ignore (react ())
        done)
  in
  let react_cycles =
    (Javatime.Elaborate.total_cycles elab - cycles_before) / reactions
  in
  ( { c_init_cycles = Javatime.Elaborate.init_cycles elab;
      c_react_cycles = react_cycles;
      c_init_wall = init_wall;
      c_react_wall = react_wall /. float_of_int reactions },
    first )

let program_size source classes =
  let checked = Mj.Typecheck.check_source ~file:"jpeg.mj" source in
  let image = Mj_bytecode.Compile.compile checked in
  Mj_bytecode.Classfile.program_size image ~classes

let table1 ~small () =
  let width = if small then 48 else Workloads.Images.paper_width in
  let height = if small then 40 else Workloads.Images.paper_height in
  let reactions = if small then 2 else 1 in
  let image = Workloads.Images.synthetic ~width ~height in
  let unrestricted = Workloads.Jpeg_mj.unrestricted_source ~width ~height () in
  let restricted = Workloads.Jpeg_mj.restricted_source ~width ~height () in
  Printf.printf
    "Table 1: unrestricted vs restricted JPEG (%dx%d image, %d reaction(s))\n\n"
    width height reactions;
  let engines =
    [ ("MJVM interpreter (cf. Sun JDK 1.1.4)", Javatime.Elaborate.Engine_vm);
      ("closure backend  (cf. Cafe JIT)", Javatime.Elaborate.Engine_jit) ]
  in
  let results =
    List.map
      (fun (label, engine) ->
        let (u, out_u) = run_codec ~engine ~source:unrestricted ~image ~reactions in
        let (r, out_r) = run_codec ~engine ~source:restricted ~image ~reactions in
        if out_u <> out_r then
          print_endline "WARNING: variants disagree on outputs!";
        (label, u, r))
      engines
  in
  Printf.printf
    "%-38s %14s %14s %12s\n" "" "unrestricted" "restricted" "restr/unr";
  List.iter
    (fun (label, u, r) ->
      Printf.printf "%s\n" label;
      let row name uv rv =
        Printf.printf "  %-36s %14.3f %14.3f %12.2f\n" name uv rv (rv /. uv)
      in
      row "initialization, modeled s" (modeled u.c_init_cycles)
        (modeled r.c_init_cycles);
      row "reaction, modeled s" (modeled u.c_react_cycles)
        (modeled r.c_react_cycles);
      row "initialization, wall s" u.c_init_wall r.c_init_wall;
      row "reaction, wall s" u.c_react_wall r.c_react_wall)
    results;
  let size_u =
    program_size unrestricted Workloads.Jpeg_mj.unrestricted_classes
  in
  let size_r = program_size restricted Workloads.Jpeg_mj.restricted_classes in
  Printf.printf "%-38s %14d %14d %12.2f\n" "program size (bytes)" size_u size_r
    (float_of_int size_r /. float_of_int size_u);
  print_newline ();
  print_endline "paper reported (130x135, 150 MHz Pentium):";
  print_endline "  JDK:  init 2.36 -> 5.12 s (2.2x);  reaction 39.5 -> 20.6 s (0.52x)";
  print_endline "  JIT:  init 0.56 -> 0.93 s (1.7x);  reaction  6.9 ->  3.3 s (0.47x)";
  print_endline "  size: 57.5k -> 58.1k (1.01x)"

(* ------------------------------------------------------------------ *)
(* Fig. 1: policy of use carves S' out of S                            *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  print_endline "Fig. 1: the ASR policy of use (restrictions defining S')";
  print_newline ();
  List.iter
    (fun rule ->
      Printf.printf "  %-24s %s\n" rule.Policy.Rule.id rule.Policy.Rule.title)
    Policy.Asr_policy.rules;
  print_newline ();
  print_endline "membership of the bundled designs:";
  let verdict name source =
    let checked = Mj.Typecheck.check_source ~file:(name ^ ".mj") source in
    let violations = Policy.Asr_policy.check checked in
    let blocking =
      List.length (List.filter Policy.Rule.is_blocking violations)
    in
    Printf.printf "  %-28s %s (%d violation(s))\n" name
      (if blocking = 0 then "in S' (compliant)" else "in S \\ S'")
      (List.length violations)
  in
  verdict "jpeg-unrestricted"
    (Workloads.Jpeg_mj.unrestricted_source ~width:48 ~height:40 ());
  verdict "jpeg-restricted"
    (Workloads.Jpeg_mj.restricted_source ~width:48 ~height:40 ());
  verdict "fir-unrestricted" Workloads.Fir_mj.unrestricted_source;
  verdict "traffic-light" Workloads.Traffic_mj.source;
  verdict "fig8-threaded" Workloads.Fig8_mj.threaded_source;
  verdict "fig8-refined-blocks" Workloads.Fig8_mj.refined_blocks_source

(* ------------------------------------------------------------------ *)
(* Fig. 2: SFR moves P into S'                                         *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  print_endline "Fig. 2: successive formal refinement traces";
  print_newline ();
  let trace name source =
    Printf.printf "-- %s --\n" name;
    let outcome =
      Javatime.Engine.refine (Mj.Parser.parse_program ~file:(name ^ ".mj") source)
    in
    Javatime.Engine.pp_trace Format.std_formatter outcome;
    Format.print_newline ()
  in
  trace "fir" Workloads.Fir_mj.unrestricted_source;
  trace "jpeg"
    (Workloads.Jpeg_mj.unrestricted_source ~width:48 ~height:40 ())

(* ------------------------------------------------------------------ *)
(* Fig. 3: an ASR system                                               *)
(* ------------------------------------------------------------------ *)

let fig3_graph () =
  (* Two inputs feed blocks A and B; C combines them; C's output both
     leaves the system and re-enters B through a delay element — the
     topology sketched in the paper's Fig. 3. *)
  let g = Asr.Graph.create "fig3" in
  let in1 = Asr.Graph.add_input g "i1" in
  let in2 = Asr.Graph.add_input g "i2" in
  let block_a = Asr.Graph.add_block g (Asr.Block.gain 2) in
  let block_b = Asr.Graph.add_block g Asr.Block.add in
  let block_c = Asr.Graph.add_block g Asr.Block.add in
  let fork = Asr.Graph.add_block g (Asr.Block.fork 2) in
  let delay = Asr.Graph.add_delay g ~init:(Asr.Domain.int 0) in
  let out = Asr.Graph.add_output g "o" in
  Asr.Graph.connect g ~src:(Asr.Graph.out_port in1 0) ~dst:(Asr.Graph.in_port block_a 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port in2 0) ~dst:(Asr.Graph.in_port block_b 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port delay 0) ~dst:(Asr.Graph.in_port block_b 1);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port block_a 0) ~dst:(Asr.Graph.in_port block_c 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port block_b 0) ~dst:(Asr.Graph.in_port block_c 1);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port block_c 0) ~dst:(Asr.Graph.in_port fork 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port fork 0) ~dst:(Asr.Graph.in_port out 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port fork 1) ~dst:(Asr.Graph.in_port delay 0);
  g

let fig3 () =
  print_endline "Fig. 3: an ASR system (blocks, channels, one delay element)";
  print_newline ();
  let g = fig3_graph () in
  print_string (Asr.Render.to_string g);
  print_newline ();
  print_endline "graphviz form (render with dot -Tpng):";
  print_string (Asr.Render.to_dot g);
  print_newline ();
  let sim = Asr.Simulate.create g in
  print_endline "three instants of reactive execution:";
  List.iter
    (fun (i1, i2) ->
      match
        Asr.Simulate.step sim
          [ ("i1", Asr.Domain.int i1); ("i2", Asr.Domain.int i2) ]
      with
      | [ ("o", v) ] ->
          Printf.printf "  i1=%d i2=%d  ->  o=%s\n" i1 i2 (Asr.Domain.to_string v)
      | _ -> assert false)
    [ (1, 1); (2, 0); (0, 3) ]

(* ------------------------------------------------------------------ *)
(* Fig. 4: hierarchical instants                                       *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  print_endline "Fig. 4: hierarchical nesting of instants";
  print_newline ();
  (* MJ side: a design opens sub-instants with JTime. *)
  let source =
    {|class Protocol extends ASR {
  Protocol() { declarePorts(1, 1); }
  public void run() {
    JTime.enterInstant("message transfer");
    JTime.enterInstant("handshake");
    JTime.exitInstant();
    JTime.enterInstant("payload");
    JTime.enterInstant("word 0");
    JTime.exitInstant();
    JTime.enterInstant("word 1");
    JTime.exitInstant();
    JTime.exitInstant();
    JTime.enterInstant("acknowledge");
    JTime.exitInstant();
    JTime.exitInstant();
    writePort(0, readPort(0));
  }
}|}
  in
  let checked = Mj.Typecheck.check_source ~file:"protocol.mj" source in
  let elab = Javatime.Elaborate.elaborate checked ~cls:"Protocol" in
  ignore (Javatime.Elaborate.react elab [| Asr.Domain.int 7 |]);
  let machine = Javatime.Elaborate.machine elab in
  let root = Mj_runtime.Machine.instant_root machine in
  let rec render indent (node : Mj_runtime.Machine.instant) =
    Printf.printf "%s%s\n" indent node.Mj_runtime.Machine.label;
    List.iter (render (indent ^ "  ")) node.Mj_runtime.Machine.subs
  in
  print_endline "instants opened by one reaction of an MJ protocol block:";
  render "  " root;
  print_newline ();
  (* ASR side: a composite block's internal activity as sub-instants. *)
  let instants = Asr.Instant.make "instant 0 (outer reaction)" in
  let inner = Asr.Graph.create "inner" in
  let i = Asr.Graph.add_input inner "a" in
  let g1 = Asr.Graph.add_block inner (Asr.Block.gain 3) in
  let g2 = Asr.Graph.add_block inner (Asr.Block.gain 5) in
  let o = Asr.Graph.add_output inner "b" in
  Asr.Graph.connect inner ~src:(Asr.Graph.out_port i 0) ~dst:(Asr.Graph.in_port g1 0);
  Asr.Graph.connect inner ~src:(Asr.Graph.out_port g1 0) ~dst:(Asr.Graph.in_port g2 0);
  Asr.Graph.connect inner ~src:(Asr.Graph.out_port g2 0) ~dst:(Asr.Graph.in_port o 0);
  let composite = Asr.Compose.to_block ~instants inner in
  ignore (Asr.Block.apply composite [| Asr.Domain.int 2 |]);
  print_endline "sub-instants of one application of a composite ASR block:";
  print_string (Asr.Instant.to_string instants);
  Printf.printf "tree: depth %d, %d nodes\n" (Asr.Instant.depth instants)
    (Asr.Instant.count instants);
  print_newline ();
  (* The paper's own example: "communication of a message between two
     processors may be viewed as a single instant, rather than as a
     multitude of instants representing the detailed protocol
     activities." One byte through the UART pair: *)
  let checked = Mj.Typecheck.check_source ~file:"uart.mj" Workloads.Uart_mj.source in
  let tx =
    Javatime.Elaborate.elaborate checked ~cls:Workloads.Uart_mj.serializer_class
  in
  let rx =
    Javatime.Elaborate.elaborate checked ~cls:Workloads.Uart_mj.deserializer_class
  in
  let byte = 0x5A in
  let delivered = ref (-1) in
  let detail_instants = ref 0 in
  for i = 1 to Workloads.Uart_mj.frame_instants do
    incr detail_instants;
    let word = if i = 1 then byte else -1 in
    match Javatime.Elaborate.react tx [| Asr.Domain.int word |] with
    | [| line; _busy |] -> (
        match Javatime.Elaborate.react rx [| line |] with
        | [| completed |] -> (
            match Asr.Domain.to_int completed with
            | Some c when c >= 0 -> delivered := c
            | _ -> ())
        | _ -> ())
    | _ -> ()
  done;
  Printf.printf
    "message transfer over the UART pair: 1 abstract instant = %d detail      instants (byte 0x%02X delivered as 0x%02X)\n"
    !detail_instants byte !delivered

(* ------------------------------------------------------------------ *)
(* Fig. 5: spatial abstraction                                         *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  print_endline "Fig. 5: blocks + delays  ==  one block + one delay";
  print_newline ();
  let g = fig3_graph () in
  let abstracted = Asr.Compose.abstract g in
  Printf.printf "original:   %s\n" (Asr.Render.summary g);
  Printf.printf "abstracted: %s\n" (Asr.Render.summary abstracted);
  let sim1 = Asr.Simulate.create g in
  let sim2 = Asr.Simulate.create abstracted in
  let rng = Random.State.make [| 5 |] in
  let mismatches = ref 0 in
  let instants = 200 in
  for _ = 1 to instants do
    let i1 = Random.State.int rng 100 and i2 = Random.State.int rng 100 in
    let inputs = [ ("i1", Asr.Domain.int i1); ("i2", Asr.Domain.int i2) ] in
    if Asr.Simulate.step sim1 inputs <> Asr.Simulate.step sim2 inputs then
      incr mismatches
  done;
  Printf.printf "I/O equivalence over %d random instants: %s\n" instants
    (if !mismatches = 0 then "EQUAL" else Printf.sprintf "%d mismatches" !mismatches)

(* ------------------------------------------------------------------ *)
(* Fig. 6: threads define a partial order                              *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  print_endline "Fig. 6: Java threads specify a partial order of events";
  print_newline ();
  List.iter
    (fun seed ->
      let output, trace = Workloads.Fig8_mj.run_threaded ~seed in
      Printf.printf "schedule (seed %d): result %s" seed output;
      List.iter
        (fun e ->
          Printf.printf "    [thread %d] %s\n" e.Mj_runtime.Threads.thread
            e.Mj_runtime.Threads.description)
        trace;
      print_newline ())
    [ 0; 1; 3 ];
  print_endline
    "the per-thread orders are fixed; the cross-thread order is not -";
  print_endline "different linearizations of the same partial order differ in result."

(* ------------------------------------------------------------------ *)
(* Fig. 7: encapsulation in the ASR class                              *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  print_endline "Fig. 7: an MJ design encapsulated in the ASR base class";
  print_newline ();
  let checked = Mj.Typecheck.check_source Workloads.Traffic_mj.source in
  let elab = Javatime.Elaborate.elaborate checked ~cls:"TrafficLight" in
  let n_in, n_out = Javatime.Elaborate.ports elab in
  Printf.printf "class TrafficLight extends ASR\n";
  Printf.printf "  input ports:  %d (car sensor)\n" n_in;
  Printf.printf "  output ports: %d (main light, side light)\n" n_out;
  Printf.printf "  initialization: %d cycles (constructor = fabrication + reset)\n"
    (Javatime.Elaborate.init_cycles elab);
  (match Policy.Time_bound.reaction_bound checked ~cls:"TrafficLight" with
  | Policy.Time_bound.Cycles n ->
      Printf.printf "  static worst-case reaction bound: %d cycles\n" n
  | Policy.Time_bound.Unbounded why -> Printf.printf "  unbounded: %s\n" why);
  ignore (Javatime.Elaborate.react elab [| Asr.Domain.int 0 |]);
  Printf.printf "  observed reaction: %d cycles\n"
    (Javatime.Elaborate.last_reaction_cycles elab);
  let stats =
    Mj_runtime.Heap.stats (Javatime.Elaborate.machine elab).Mj_runtime.Machine.heap
  in
  Printf.printf
    "  heap: %d init-phase allocation(s), %d reactive allocation(s) \
     (bounded-memory enforcement armed)\n"
    stats.Mj_runtime.Heap.init_allocations
    stats.Mj_runtime.Heap.reactive_allocations;
  print_endline "  protocol per instant: environment writes input ports,";
  print_endline "  invokes run() (atomic from outside), reads output ports."

(* ------------------------------------------------------------------ *)
(* Fig. 8: nondeterministic thread interaction                         *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  print_endline "Fig. 8: nondeterministic thread interaction on shared x";
  print_newline ();
  let seeds = 40 in
  let outcomes = Hashtbl.create 8 in
  for seed = 0 to seeds - 1 do
    let output, _ = Workloads.Fig8_mj.run_threaded ~seed in
    let n = try Hashtbl.find outcomes output with Not_found -> 0 in
    Hashtbl.replace outcomes output (n + 1)
  done;
  Printf.printf "threaded program over %d seeded schedules: %d distinct outcome(s)\n"
    seeds (Hashtbl.length outcomes);
  Hashtbl.iter (fun k n -> Printf.printf "    %-24s x%d" (String.trim k) n;
                 print_newline ()) outcomes;
  print_newline ();
  let runs =
    List.init 5 (fun _ -> Workloads.Fig8_mj.run_refined ~instants:4)
  in
  let all_equal = List.for_all (fun r -> r = List.hd runs) runs in
  Printf.printf
    "refined ASR version (threads as functional blocks + delay): %s\n"
    (if all_equal then "1 distinct outcome across runs (deterministic)"
     else "NONDETERMINISTIC (bug)");
  Printf.printf "    x per instant: %s\n"
    (String.concat ", " (List.map string_of_int (List.hd runs)))

(* ------------------------------------------------------------------ *)
(* Ablation                                                            *)
(* ------------------------------------------------------------------ *)

let ablation () =
  print_endline "Ablation: which restriction pays, and what stays manual";
  print_newline ();
  let width = 48 and height = 40 in
  let image = Workloads.Images.synthetic ~width ~height in
  let unrestricted = Workloads.Jpeg_mj.unrestricted_source ~width ~height () in
  let restricted = Workloads.Jpeg_mj.restricted_source ~width ~height () in
  let auto_refined =
    let outcome =
      Javatime.Engine.refine
        (Mj.Parser.parse_program ~file:"jpeg.mj" unrestricted)
    in
    Mj.Pretty.program_to_string outcome.Javatime.Engine.final
  in
  let measure name source =
    let (cell, _) =
      run_codec ~engine:Javatime.Elaborate.Engine_vm ~source ~image ~reactions:1
    in
    Printf.printf "  %-34s init %10d cy   reaction %11d cy\n" name
      cell.c_init_cycles cell.c_react_cycles;
    cell
  in
  let u = measure "unrestricted" unrestricted in
  let a = measure "auto-refined (SFR, no manual work)" auto_refined in
  let r = measure "hand-restricted" restricted in
  print_newline ();
  (* GC pauses per reaction (JDK-style collector armed above) *)
  let gc_runs name source =
    let checked = Mj.Typecheck.check_source ~file:"jpeg.mj" source in
    let elab =
      Javatime.Elaborate.elaborate ~engine:Javatime.Elaborate.Engine_vm
        ~enforce_policy:false ~bounded_memory:false ~gc_threshold checked
        ~cls:"JpegCodec"
    in
    ignore (Javatime.Elaborate.react elab [| Asr.Domain.int_array image |]);
    let heap = (Javatime.Elaborate.machine elab).Mj_runtime.Machine.heap in
    Printf.printf "  %-34s %d GC pause(s) per reaction\n" name
      (Mj_runtime.Heap.gc_count heap)
  in
  gc_runs "unrestricted" unrestricted;
  gc_runs "hand-restricted" restricted;
  print_newline ();
  Printf.printf
    "  automatic transformations recover %.0f%% of the reaction-time gap;\n"
    (100.0
    *. float_of_int (u.c_react_cycles - a.c_react_cycles)
    /. float_of_int (u.c_react_cycles - r.c_react_cycles));
  print_endline
    "  the rest needs the manual data-structure work (linked list -> static\n\
    \  buffers, table precomputation) the paper describes.";
  print_newline ();
  (* allocation accounting across the three versions *)
  let allocs name source =
    let checked = Mj.Typecheck.check_source ~file:"jpeg.mj" source in
    let elab =
      Javatime.Elaborate.elaborate ~engine:Javatime.Elaborate.Engine_vm
        ~enforce_policy:false ~bounded_memory:false checked ~cls:"JpegCodec"
    in
    ignore (Javatime.Elaborate.react elab [| Asr.Domain.int_array image |]);
    let stats =
      Mj_runtime.Heap.stats
        (Javatime.Elaborate.machine elab).Mj_runtime.Machine.heap
    in
    Printf.printf "  %-34s init allocs %5d   reactive allocs %6d\n" name
      stats.Mj_runtime.Heap.init_allocations
      stats.Mj_runtime.Heap.reactive_allocations
  in
  allocs "unrestricted" unrestricted;
  allocs "auto-refined" auto_refined;
  allocs "hand-restricted" restricted

(* ------------------------------------------------------------------ *)
(* Fixpoint scheduling strategies                                      *)
(* ------------------------------------------------------------------ *)

(* Compares chaotic iteration (declaration order and best/topological
   order) against the static schedule and the worklist evaluator on
   feed-forward, cyclic, and random topologies, reporting per-strategy
   block-evaluation counts and wall time. The feed-forward graphs are
   declared output-first — a legal construction order on which chaotic
   iteration exhibits its O(blocks x nets) behaviour. *)

module Sched_bench = struct
  module D = Asr.Domain
  module G = Asr.Graph
  module B = Asr.Block

  let conn g src dst = G.connect g ~src ~dst

  (* FIR filter with [taps] taps, adder chain declared output-first:
     chain position k uses the node declared at index taps-2-k, so every
     chain consumer precedes its producer in declaration order (the
     chaotic worst case). Feed-forward. *)
  let fir_graph taps =
    let g = G.create (Printf.sprintf "fir%d" taps) in
    let output = G.add_output g "y" in
    let rev_adders = Array.init (taps - 1) (fun _ -> G.add_block g B.add) in
    let adders = Array.init (taps - 1) (fun k -> rev_adders.(taps - 2 - k)) in
    let gains = Array.init taps (fun k -> G.add_block g (B.gain (taps - k))) in
    let forks = Array.init (taps - 1) (fun _ -> G.add_block g (B.fork 2)) in
    let delays =
      Array.init (taps - 1) (fun _ -> G.add_delay g ~init:(D.int 0))
    in
    let input = G.add_input g "x" in
    conn g (G.out_port input 0) (G.in_port forks.(0) 0);
    for k = 0 to taps - 2 do
      (* tap k's fork feeds its gain and the next delay *)
      conn g (G.out_port forks.(k) 0) (G.in_port gains.(k) 0);
      conn g (G.out_port forks.(k) 1) (G.in_port delays.(k) 0);
      if k < taps - 2 then
        conn g (G.out_port delays.(k) 0) (G.in_port forks.(k + 1) 0)
    done;
    conn g (G.out_port delays.(taps - 2) 0) (G.in_port gains.(taps - 1) 0);
    (* adder chain *)
    conn g (G.out_port gains.(0) 0) (G.in_port adders.(0) 0);
    conn g (G.out_port gains.(1) 0) (G.in_port adders.(0) 1);
    for k = 1 to taps - 2 do
      conn g (G.out_port adders.(k - 1) 0) (G.in_port adders.(k) 0);
      conn g (G.out_port gains.(k + 1) 0) (G.in_port adders.(k) 1)
    done;
    conn g (G.out_port adders.(taps - 2) 0) (G.in_port output 0);
    g

  (* Deep diamond pipeline shaped like the JPEG stage chain (each stage:
     fork -> two unary transforms -> recombine), declared output-first. *)
  let pipeline_graph stages =
    let g = G.create (Printf.sprintf "pipe%d" stages) in
    let output = G.add_output g "y" in
    let stage_blocks =
      (* declare stage [stages-1] (closest to the output) first *)
      Array.init stages (fun _ ->
          let add = G.add_block g B.add in
          let hi = G.add_block g (B.gain 3) in
          let lo = G.add_block g (B.gain 2) in
          let fork = G.add_block g (B.fork 2) in
          (fork, lo, hi, add))
    in
    let input = G.add_input g "x" in
    let wire_stage (fork, lo, hi, add) src =
      conn g src (G.in_port fork 0);
      conn g (G.out_port fork 0) (G.in_port lo 0);
      conn g (G.out_port fork 1) (G.in_port hi 0);
      conn g (G.out_port lo 0) (G.in_port add 0);
      conn g (G.out_port hi 0) (G.in_port add 1);
      G.out_port add 0
    in
    let last =
      Array.fold_left
        (fun src stage -> wire_stage stage src)
        (G.out_port input 0)
        (Array.init stages (fun i -> stage_blocks.(stages - 1 - i)))
    in
    conn g last (G.in_port output 0);
    g

  (* [loops] independent delay-free cycles, each resolved through the
     dead branch of a mux (genuinely cyclic SCCs, still constructive). *)
  let cyclic_graph loops =
    let g = G.create (Printf.sprintf "cyclic%d" loops) in
    for i = 0 to loops - 1 do
      let sel = G.add_block g (B.const ~name:"sel" (Asr.Data.Bool true)) in
      let v = G.add_block g (B.const ~name:"v" (Asr.Data.Int i)) in
      let mux = G.add_block g B.mux in
      let fork = G.add_block g (B.fork 2) in
      let out = G.add_output g (Printf.sprintf "y%d" i) in
      conn g (G.out_port sel 0) (G.in_port mux 0);
      conn g (G.out_port v 0) (G.in_port mux 1);
      conn g (G.out_port mux 0) (G.in_port fork 0);
      conn g (G.out_port fork 0) (G.in_port mux 2);
      conn g (G.out_port fork 1) (G.in_port out 0)
    done;
    g

  (* Random layered DAG with delay feedback, declaration order shuffled
     by construction: consumers draw from any previously declared source. *)
  let random_graph ~seed ~inputs ~layers ~per_layer ~delays =
    let rng = Random.State.make [| seed |] in
    let g = G.create (Printf.sprintf "rand%d" seed) in
    let sources = ref [] in
    let add_source e = sources := e :: !sources in
    for i = 0 to inputs - 1 do
      let input = G.add_input g (Printf.sprintf "x%d" i) in
      add_source (G.out_port input 0)
    done;
    let delay_nodes =
      List.init delays (fun i ->
          let d = G.add_delay g ~init:(D.int i) in
          add_source (G.out_port d 0);
          d)
    in
    let pick () =
      List.nth !sources (Random.State.int rng (List.length !sources))
    in
    for _ = 1 to layers do
      for _ = 1 to per_layer do
        if Random.State.bool rng then begin
          let b = G.add_block g (B.gain (1 + Random.State.int rng 4)) in
          conn g (pick ()) (G.in_port b 0);
          add_source (G.out_port b 0)
        end
        else begin
          let b = G.add_block g B.add in
          conn g (pick ()) (G.in_port b 0);
          conn g (pick ()) (G.in_port b 1);
          add_source (G.out_port b 0)
        end
      done
    done;
    List.iter (fun d -> conn g (pick ()) (G.in_port d 0)) delay_nodes;
    let out = G.add_output g "y" in
    conn g (pick ()) (G.in_port out 0);
    g

  let input_names g =
    List.filter_map
      (fun (_, kind) ->
        match kind with G.Kinput label -> Some label | _ -> None)
      (G.nodes g)

  let stimulus g ~instants =
    let names = input_names g in
    List.init instants (fun t ->
        List.mapi (fun i name -> (name, D.int ((t + i) mod 97))) names)

  type run = {
    r_label : string;
    r_evals : int;
    r_wall : float;
    r_outputs : (string * D.t) list list;
  }

  let run_strategy g stream ~label ?order ?strategy () =
    let sim = Asr.Simulate.create ?order ?strategy g in
    let t0 = Unix.gettimeofday () in
    let trace = Asr.Simulate.run sim stream in
    let wall = Unix.gettimeofday () -. t0 in
    { r_label = label;
      r_evals = Asr.Simulate.block_evaluations sim;
      r_wall = wall;
      r_outputs = List.map (fun e -> e.Asr.Simulate.outputs) trace }

  type report = {
    w_name : string;
    w_blocks : int;
    w_nets : int;
    w_cyclic : int;
    w_instants : int;
    w_runs : run list;
    w_equal : bool;
    w_speedup_scheduled : float;
    w_speedup_worklist : float;
  }

  let bench_graph name g ~instants =
    let compiled = G.compile g in
    let schedule = Asr.Schedule.of_compiled compiled in
    let stream = stimulus g ~instants in
    let n_blocks = Array.length compiled.G.c_blocks in
    let chaotic =
      run_strategy g stream ~label:"chaotic (declaration order)"
        ~strategy:Asr.Fixpoint.Chaotic ()
    in
    let chaotic_best =
      run_strategy g stream ~label:"chaotic (topological order)"
        ~order:(Asr.Schedule.linear_order schedule) ()
    in
    let scheduled =
      run_strategy g stream ~label:"scheduled" ~strategy:Asr.Fixpoint.Scheduled ()
    in
    let worklist =
      run_strategy g stream ~label:"worklist" ~strategy:Asr.Fixpoint.Worklist ()
    in
    let runs = [ chaotic; chaotic_best; scheduled; worklist ] in
    let equal =
      List.for_all (fun r -> r.r_outputs = chaotic.r_outputs) runs
    in
    { w_name = name;
      w_blocks = n_blocks;
      w_nets = compiled.G.n_nets;
      w_cyclic = Asr.Schedule.cyclic_block_count schedule;
      w_instants = instants;
      w_runs = runs;
      w_equal = equal;
      w_speedup_scheduled =
        float_of_int chaotic.r_evals /. float_of_int scheduled.r_evals;
      w_speedup_worklist =
        float_of_int chaotic.r_evals /. float_of_int worklist.r_evals }

  let reports ~smoke () =
    let scale n small = if smoke then small else n in
    [ bench_graph "fir" (fir_graph (scale 64 12)) ~instants:(scale 200 20);
      bench_graph "jpeg-pipeline"
        (pipeline_graph (scale 40 10))
        ~instants:(scale 200 20);
      bench_graph "cyclic" (cyclic_graph (scale 16 4)) ~instants:(scale 200 20);
      bench_graph "random"
        (random_graph ~seed:11 ~inputs:3 ~layers:(scale 12 4)
           ~per_layer:(scale 25 6) ~delays:4)
        ~instants:(scale 200 20);
      (* generated nets from the shared Netgen family (the same generator
         the fusion, monitor and causal benches scale over). Layers are
         declared input-to-output, so chaotic declaration order is
         near-topological here — an honest best case next to the
         output-first fir/jpeg rows, which is why these rows sit outside
         the >= 5x feed-forward gate. *)
      bench_graph "netgen-1e2"
        (Workloads.Netgen.generate ~inputs:3 ~delays:4 ~cyclic_ratio:0.05
           ~seed:211 ~depth:(scale 5 3) ~width:(scale 20 5) ())
        ~instants:(scale 200 20);
      bench_graph "netgen-1e3"
        (Workloads.Netgen.generate ~inputs:3 ~delays:4 ~cyclic_ratio:0.05
           ~seed:212 ~depth:(scale 25 4) ~width:(scale 40 6) ())
        ~instants:(scale 200 20) ]

  let print_text reports =
    print_endline
      "Fixpoint strategies: chaotic vs. static schedule vs. worklist";
    print_newline ();
    List.iter
      (fun w ->
        Printf.printf "%s: %d blocks, %d nets, %d cyclic, %d instants%s\n"
          w.w_name w.w_blocks w.w_nets w.w_cyclic w.w_instants
          (if w.w_cyclic = 0 then " (feed-forward)" else "");
        List.iter
          (fun r ->
            Printf.printf "  %-30s %10d evals   %8.2f evals/instant   %8.4f s\n"
              r.r_label r.r_evals
              (float_of_int r.r_evals /. float_of_int w.w_instants)
              r.r_wall)
          w.w_runs;
        Printf.printf
          "  fixpoints equal: %s   speedup (evals) scheduled %.1fx, worklist \
           %.1fx\n\n"
          (if w.w_equal then "yes" else "NO (BUG)")
          w.w_speedup_scheduled w.w_speedup_worklist)
      reports

  let print_json reports =
    let run_json r =
      Printf.sprintf
        "{\"label\": %S, \"evaluations\": %d, \"wall_s\": %.6f}" r.r_label
        r.r_evals r.r_wall
    in
    let report_json w =
      Printf.sprintf
        "    {\"name\": %S, \"blocks\": %d, \"nets\": %d, \"cyclic_blocks\": \
         %d, \"instants\": %d, \"equal_fixpoints\": %b,\n\
        \     \"speedup_evals_scheduled\": %.2f, \"speedup_evals_worklist\": \
         %.2f,\n\
        \     \"strategies\": [%s]}"
        w.w_name w.w_blocks w.w_nets w.w_cyclic w.w_instants w.w_equal
        w.w_speedup_scheduled w.w_speedup_worklist
        (String.concat ", " (List.map run_json w.w_runs))
    in
    Printf.printf
      "{\n  \"bench\": \"asr_schedule\",\n  \"workloads\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.map report_json reports))

  (* Smoke contract (wired into `dune runtest` via the bench-smoke
     alias): identical fixpoints everywhere, >= 5x fewer evaluations on
     the feed-forward workloads. *)
  let check reports =
    let failed = ref false in
    List.iter
      (fun w ->
        if not w.w_equal then begin
          Printf.eprintf "FAIL %s: strategies disagree on the fixpoint\n"
            w.w_name;
          failed := true
        end;
        let deep_feed_forward = List.mem w.w_name [ "fir"; "jpeg-pipeline" ] in
        if deep_feed_forward && w.w_speedup_worklist < 5.0 then begin
          Printf.eprintf
            "FAIL %s: worklist speedup %.1fx < 5x on a feed-forward workload\n"
            w.w_name w.w_speedup_worklist;
          failed := true
        end)
      reports;
    if !failed then exit 1

  let run ~json ~smoke () =
    let reports = reports ~smoke () in
    if json then print_json reports else print_text reports;
    check reports
end

(* ------------------------------------------------------------------ *)

(* Reaction fusion: the ahead-of-time compiled strategy (Fuse plans
   executed by Fixpoint.Fused) against the interpreted static schedule —
   wall clock on the deep feed-forward workloads, a generated-net
   scaling curve up to 1e5 blocks, and fault containment on the fused
   path. The fir/jpeg-pipeline rows reuse the schedule bench's graphs,
   sizes and stimulus, so their "scheduled" rows key-match the committed
   BENCH_asr_schedule.json under `--compare` (eval regressions in the
   shared strategy fail the gate). *)

module Fusion_bench = struct
  module G = Asr.Graph
  module S = Asr.Supervisor
  module I = Asr.Inject

  type srun = { f_label : string; f_evals : int; f_wall : float }

  (* Evaluations and outputs from one untimed pass (deterministic,
     comparable across artifacts); wall from [passes] repeated timed
     passes of the bare reaction loop, amortizing noise. The simulator —
     and with it the schedule and the fuse plan — is created once:
     plan compilation is setup, not reaction cost. *)
  let measure g stream ~label ~strategy ~passes =
    let sim = Asr.Simulate.create ~strategy g in
    let outputs = List.map (fun inputs -> Asr.Simulate.step sim inputs) stream in
    let evals = Asr.Simulate.block_evaluations sim in
    Asr.Simulate.reset sim;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to passes do
      List.iter (fun inputs -> ignore (Asr.Simulate.step sim inputs)) stream;
      Asr.Simulate.reset sim
    done;
    let wall = (Unix.gettimeofday () -. t0) /. float_of_int passes in
    (outputs, { f_label = label; f_evals = evals; f_wall = wall })

  type report = {
    w_name : string;
    w_blocks : int;
    w_nets : int;
    w_cyclic : int;
    w_instants : int;
    w_kernel_steps : int;
    w_folded : int;
    w_equal : bool;  (* fused = scheduled = chaotic outputs, instant by instant *)
    w_speedup_wall : float;
    w_speedup_evals : float;
    w_runs : srun list;
    w_gate_wall : bool;  (* row participates in the >=10x wall gate *)
  }

  let bench_graph ?(gate_wall = false) ?(oracle = true) name g ~instants
      ~passes =
    let compiled = G.compile g in
    let schedule = Asr.Schedule.of_compiled compiled in
    let plan = Asr.Fuse.compile ~schedule compiled in
    let stream = Sched_bench.stimulus g ~instants in
    let scheduled_out, scheduled =
      measure g stream ~label:"scheduled" ~strategy:Asr.Fixpoint.Scheduled
        ~passes
    in
    let fused_out, fused =
      measure g stream ~label:"fused" ~strategy:Asr.Fixpoint.Fused ~passes
    in
    (* The chaotic oracle pins both to the reference least fixed point;
       skipped on nets where its O(blocks x nets) sweeps are prohibitive
       (those sizes are covered by the qcheck differentials). *)
    let equal =
      fused_out = scheduled_out
      &&
      if not oracle then true
      else
        let chaotic_out, _ =
          measure g stream ~label:"chaotic" ~strategy:Asr.Fixpoint.Chaotic
            ~passes:1
        in
        fused_out = chaotic_out
    in
    { w_name = name;
      w_blocks = Array.length compiled.G.c_blocks;
      w_nets = compiled.G.n_nets;
      w_cyclic = Asr.Schedule.cyclic_block_count schedule;
      w_instants = instants;
      w_kernel_steps = plan.Asr.Fuse.f_n_fused;
      w_folded = plan.Asr.Fuse.f_n_folded;
      w_equal = equal;
      w_speedup_wall = scheduled.f_wall /. fused.f_wall;
      w_speedup_evals =
        float_of_int scheduled.f_evals /. float_of_int (max 1 fused.f_evals);
      w_runs = [ scheduled; fused ];
      w_gate_wall = gate_wall }

  let reports ~smoke () =
    let scale n small = if smoke then small else n in
    [ (* identical graphs/sizes/stimulus to the schedule bench: the
         shared "scheduled" rows are the --compare anchor *)
      bench_graph "fir"
        (Sched_bench.fir_graph (scale 64 12))
        ~instants:(scale 200 20) ~passes:(scale 50 3);
      bench_graph "jpeg-pipeline"
        (Sched_bench.pipeline_graph (scale 40 10))
        ~instants:(scale 200 20) ~passes:(scale 50 3);
      (* the wall-gate rows: same topologies scaled up so per-instant
         bookkeeping amortizes and the per-application gap dominates *)
      bench_graph "fir-xl" ~gate_wall:true ~oracle:smoke
        (Sched_bench.fir_graph (scale 512 16))
        ~instants:(scale 200 20) ~passes:(scale 20 3);
      bench_graph "jpeg-pipeline-xl" ~gate_wall:true ~oracle:smoke
        (Sched_bench.pipeline_graph (scale 320 12))
        ~instants:(scale 200 20) ~passes:(scale 20 3) ]

  (* ---- generated-net scaling curve --------------------------------- *)

  type scale_row = {
    s_blocks : int;
    s_nets : int;
    s_folded : int;
    s_cyclic : int;
    s_fuse_compile : float;
    s_evals_scheduled : int;
    s_evals_fused : int;
    s_wall_scheduled : float;
    s_wall_fused : float;
    s_equal : bool;
  }

  let scaling_row size ~instants =
    let width = min size 25 in
    let depth = max 1 (size / width) in
    let g =
      Workloads.Netgen.generate ~inputs:4 ~delays:4 ~cyclic_ratio:0.04
        ~seed:(271 + size) ~depth ~width ()
    in
    let compiled = G.compile g in
    let schedule = Asr.Schedule.of_compiled compiled in
    let t0 = Unix.gettimeofday () in
    let plan = Asr.Fuse.compile ~schedule compiled in
    let fuse_compile = Unix.gettimeofday () -. t0 in
    let stream = Workloads.Netgen.stimulus g ~instants in
    let scheduled_out, scheduled =
      measure g stream ~label:"scheduled" ~strategy:Asr.Fixpoint.Scheduled
        ~passes:1
    in
    let fused_out, fused =
      measure g stream ~label:"fused" ~strategy:Asr.Fixpoint.Fused ~passes:1
    in
    { s_blocks = Array.length compiled.G.c_blocks;
      s_nets = compiled.G.n_nets;
      s_folded = plan.Asr.Fuse.f_n_folded;
      s_cyclic = plan.Asr.Fuse.f_n_cyclic;
      s_fuse_compile = fuse_compile;
      s_evals_scheduled = scheduled.f_evals;
      s_evals_fused = fused.f_evals;
      s_wall_scheduled = scheduled.f_wall;
      s_wall_fused = fused.f_wall;
      s_equal = fused_out = scheduled_out }

  let scaling ~smoke () =
    let sizes =
      if smoke then [ 50; 200 ] else [ 100; 1_000; 10_000; 100_000 ]
    in
    List.map
      (fun size -> scaling_row size ~instants:(if smoke then 5 else 20))
      sizes

  (* ---- containment on the fused path ------------------------------- *)

  type containment = {
    c_workload : string;
    c_policy : string;
    c_injected : int;
    c_contained : int;
    c_affected : int;
    c_checked : int;
    c_contained_ok : bool;
  }

  let run_capture_fused ?supervisor ?inject g stream =
    let sim = Asr.Simulate.create ~strategy:Asr.Fixpoint.Fused ?supervisor g in
    List.map
      (fun inputs ->
        ignore (Asr.Simulate.step sim inputs);
        (match inject with Some inj -> I.tick inj | None -> ());
        Asr.Simulate.net_values sim)
      stream

  (* Same blast-radius property the faults bench checks for the worklist
     evaluator, on the fused plan: injected traps contained by the
     supervisor must leave every net outside the faulted blocks'
     influence cone bit-identical to the fault-free fused run. *)
  let containment ~smoke () =
    let scale n small = if smoke then small else n in
    let name = "fir" in
    let g = Sched_bench.fir_graph (scale 32 8) in
    let instants = scale 60 12 in
    let compiled = G.compile g in
    let n_blocks = Array.length compiled.G.c_blocks in
    let stream = Sched_bench.stimulus g ~instants in
    (* The clean run is supervised too (its supervisor never fires):
       both runs then take the block-at-a-time fused path, which
       materializes every net — the fast lane leaves collapsed interior
       nets at ⊥, which is invisible at the ports but not to the
       net-by-net comparison below. *)
    let clean =
      run_capture_fused ~supervisor:(S.create ~policy:S.Hold_last ()) g stream
    in
    let specs =
      I.plan ~seed:45 ~n_blocks ~instants ~n_faults:2 ~first_only:false ()
    in
    let inj = I.make specs in
    let sup = S.create ~policy:S.Hold_last () in
    let faulty =
      run_capture_fused ~supervisor:sup ~inject:inj (I.instrument inj g) stream
    in
    let affected = Array.make compiled.G.n_nets false in
    List.iter
      (fun s ->
        Array.iteri
          (fun i b -> if b then affected.(i) <- true)
          (G.affected_nets compiled s.I.i_block))
      specs;
    let checked = ref 0 and contained_ok = ref true in
    List.iter2
      (fun clean_nets faulty_nets ->
        Array.iteri
          (fun n v ->
            if not affected.(n) then begin
              incr checked;
              if v <> faulty_nets.(n) then contained_ok := false
            end)
          clean_nets)
      clean faulty;
    { c_workload = name;
      c_policy = S.policy_name S.Hold_last;
      c_injected = I.fired inj;
      c_contained = S.fault_count sup;
      c_affected =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 affected;
      c_checked = !checked;
      c_contained_ok = !contained_ok && I.fired inj > 0 }

  (* ---- reporting and gates ----------------------------------------- *)

  let print_text (reports, srows, cont) =
    print_endline
      "Reaction fusion: ahead-of-time compiled nets vs. the static schedule";
    print_newline ();
    List.iter
      (fun w ->
        Printf.printf
          "%s: %d blocks (%d kernel steps, %d folded, %d cyclic), %d nets, \
           %d instants\n"
          w.w_name w.w_blocks w.w_kernel_steps w.w_folded w.w_cyclic w.w_nets
          w.w_instants;
        List.iter
          (fun r ->
            Printf.printf "  %-12s %10d evals   %10.6f s/pass\n" r.f_label
              r.f_evals r.f_wall)
          w.w_runs;
        Printf.printf
          "  fixpoints equal: %s   speedup wall %.1fx, evals %.2fx\n\n"
          (if w.w_equal then "yes" else "NO (BUG)")
          w.w_speedup_wall w.w_speedup_evals)
      reports;
    print_endline "scaling (generated nets, scheduled vs fused wall per pass):";
    List.iter
      (fun s ->
        Printf.printf
          "  %7d blocks  %7d nets  %6d folded  %5d cyclic  compile %8.4f s  \
           scheduled %9d evals %8.4f s  fused %9d evals %8.4f s  %5.1fx  %s\n"
          s.s_blocks s.s_nets s.s_folded s.s_cyclic s.s_fuse_compile
          s.s_evals_scheduled s.s_wall_scheduled s.s_evals_fused s.s_wall_fused
          (s.s_wall_scheduled /. s.s_wall_fused)
          (if s.s_equal then "equal" else "DIVERGED"))
      srows;
    Printf.printf
      "\ncontainment (fused + %s): %d injected, %d contained, %d nets in \
       blast radius, %d (instant, net) pairs outside it %s\n"
      cont.c_policy cont.c_injected cont.c_contained cont.c_affected
      cont.c_checked
      (if cont.c_contained_ok then "bit-identical" else "DIVERGED");
    print_newline ()

  let print_json (reports, srows, cont) =
    let run_json r =
      Printf.sprintf "{\"label\": %S, \"evaluations\": %d, \"wall_s\": %.6f}"
        r.f_label r.f_evals r.f_wall
    in
    let report_json w =
      Printf.sprintf
        "    {\"name\": %S, \"blocks\": %d, \"nets\": %d, \"cyclic_blocks\": \
         %d, \"instants\": %d,\n\
        \     \"kernel_steps\": %d, \"folded_blocks\": %d, \
         \"equal_fixpoints\": %b,\n\
        \     \"speedup_wall_fused\": %.2f, \"speedup_evals_fused\": %.2f,\n\
        \     \"strategies\": [%s]}"
        w.w_name w.w_blocks w.w_nets w.w_cyclic w.w_instants w.w_kernel_steps
        w.w_folded w.w_equal w.w_speedup_wall w.w_speedup_evals
        (String.concat ", " (List.map run_json w.w_runs))
    in
    let scale_json s =
      Printf.sprintf
        "    {\"name\": \"netgen-%d\", \"blocks\": %d, \"nets\": %d, \
         \"folded_blocks\": %d, \"cyclic_blocks\": %d, \"fuse_compile_s\": \
         %.6f, \"evaluations_scheduled\": %d, \"evaluations_fused\": %d, \
         \"wall_scheduled_s\": %.6f, \"wall_fused_s\": %.6f, \
         \"speedup_wall\": %.2f, \"equal_outputs\": %b}"
        s.s_blocks s.s_blocks s.s_nets s.s_folded s.s_cyclic s.s_fuse_compile
        s.s_evals_scheduled s.s_evals_fused s.s_wall_scheduled s.s_wall_fused
        (s.s_wall_scheduled /. s.s_wall_fused)
        s.s_equal
    in
    Printf.printf
      "{\n\
      \  \"bench\": \"fusion\",\n\
      \  \"workloads\": [\n\
       %s\n\
      \  ],\n\
      \  \"scaling\": [\n\
       %s\n\
      \  ],\n\
      \  \"containment\": {\"workload\": %S, \"policy\": %S, \"injected\": \
       %d, \"contained\": %d, \"affected_nets\": %d, \"checked\": %d, \
       \"contained_identical\": %b}\n\
       }\n"
      (String.concat ",\n" (List.map report_json reports))
      (String.concat ",\n" (List.map scale_json srows))
      cont.c_workload cont.c_policy cont.c_injected cont.c_contained
      cont.c_affected cont.c_checked cont.c_contained_ok

  (* Gates: identical fixed points everywhere (chaotic oracle on the
     exact-match rows, scheduled differential at scale), containment
     bit-identical outside the blast radius, fused never evaluates more
     than scheduled, and — full size only, wall clocks of smoke-scaled
     graphs are all bookkeeping — >= 10x wall on the xl feed-forward
     rows. *)
  let check ~smoke (reports, srows, cont) =
    let failed = ref false in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          Printf.eprintf "FAIL %s\n" s;
          failed := true)
        fmt
    in
    List.iter
      (fun w ->
        if not w.w_equal then
          fail "%s: fused fixpoint differs from scheduled/chaotic" w.w_name;
        if w.w_speedup_evals < 1.0 then
          fail "%s: fused evaluated more blocks than scheduled (%.2fx)"
            w.w_name w.w_speedup_evals;
        if (not smoke) && w.w_gate_wall && w.w_speedup_wall < 10.0 then
          fail "%s: fused wall speedup %.1fx < 10x" w.w_name w.w_speedup_wall)
      reports;
    List.iter
      (fun s ->
        if not s.s_equal then
          fail "netgen-%d: fused outputs diverge from scheduled" s.s_blocks)
      srows;
    if not cont.c_contained_ok then
      fail "%s: containment violated on the fused path (%d injected)"
        cont.c_workload cont.c_injected;
    if !failed then exit 1

  let run ~json ~smoke () =
    let results =
      (reports ~smoke (), scaling ~smoke (), containment ~smoke ())
    in
    if json then print_json results else print_text results;
    check ~smoke results
end

(* ------------------------------------------------------------------ *)
(* Bounds-check elision                                                *)
(* ------------------------------------------------------------------ *)

(* The interval analysis proves array indices in range for the
   restricted workloads (constant-bounded loops over statically sized
   arrays); the compiler then emits unchecked load/store instructions.
   This experiment measures how many sites the analysis discharges and
   what the cheaper tariff buys per reaction, on both bytecode engines,
   checking along the way that elision never changes the outputs. *)

module Boundscheck = struct
  type workload = {
    b_name : string;
    b_source : string;
    b_cls : string;
    b_inputs : Asr.Domain.t array list;
  }

  type engine_row = {
    e_label : string;
    e_baseline_cycles : int;
    e_elided_cycles : int;
    e_equal : bool;  (* outputs identical with and without elision *)
  }

  type report = {
    b_workload : string;
    b_sites_total : int;
    b_sites_elided : int;
    b_rows : engine_row list;
  }

  let workloads ~smoke () =
    let width = if smoke then 32 else 48 in
    let height = if smoke then 24 else 40 in
    let image = Workloads.Images.synthetic ~width ~height in
    let samples = if smoke then 24 else 192 in
    let fir_refined =
      (* no hand-restricted FIR ships; SFR produces the compliant one *)
      let outcome =
        Javatime.Engine.refine
          (Mj.Parser.parse_program ~file:"fir.mj"
             Workloads.Fir_mj.unrestricted_source)
      in
      Mj.Pretty.program_to_string outcome.Javatime.Engine.final
    in
    [ { b_name = "jpeg-restricted";
        b_source = Workloads.Jpeg_mj.restricted_source ~width ~height ();
        b_cls = "JpegCodec";
        b_inputs = [ [| Asr.Domain.int_array image |] ] };
      { b_name = "fir-refined";
        b_source = fir_refined;
        b_cls = Workloads.Fir_mj.class_name;
        b_inputs =
          List.init samples (fun i ->
              [| Asr.Domain.int (((i * 37) mod 201) - 100) |]) } ]

  let drive ~engine ~elide w =
    let checked = Mj.Typecheck.check_source ~file:(w.b_name ^ ".mj") w.b_source in
    let elab =
      Javatime.Elaborate.elaborate ~engine ~enforce_policy:false
        ~bounded_memory:false ~elide_bounds_checks:elide checked ~cls:w.b_cls
    in
    let outputs = List.map (Javatime.Elaborate.react elab) w.b_inputs in
    (Javatime.Elaborate.total_cycles elab
     - Javatime.Elaborate.init_cycles elab,
     outputs)

  let bench_workload ~smoke w =
    let checked = Mj.Typecheck.check_source ~file:(w.b_name ^ ".mj") w.b_source in
    let total = Analysis.Elide.all_sites checked in
    let elided = Hashtbl.length (Analysis.Elide.plan checked) in
    let engines =
      [ ("vm", Javatime.Elaborate.Engine_vm);
        ("jit", Javatime.Elaborate.Engine_jit) ]
    in
    let rows =
      List.map
        (fun (label, engine) ->
          let base_cycles, base_out = drive ~engine ~elide:false w in
          let elided_cycles, elided_out = drive ~engine ~elide:true w in
          { e_label = label;
            e_baseline_cycles = base_cycles;
            e_elided_cycles = elided_cycles;
            e_equal = base_out = elided_out })
        engines
    in
    ignore smoke;
    { b_workload = w.b_name;
      b_sites_total = total;
      b_sites_elided = elided;
      b_rows = rows }

  let reports ~smoke () =
    List.map (bench_workload ~smoke) (workloads ~smoke ())

  let print_text reports =
    print_endline
      "Bounds-check elision: interval analysis discharges the range checks";
    print_newline ();
    List.iter
      (fun r ->
        Printf.printf "%s: %d/%d array-access sites proven safe\n" r.b_workload
          r.b_sites_elided r.b_sites_total;
        List.iter
          (fun row ->
            Printf.printf
              "  %-4s baseline %10d cy   elided %10d cy   saved %5.2f%%   \
               outputs %s\n"
              row.e_label row.e_baseline_cycles row.e_elided_cycles
              (100.0
              *. float_of_int (row.e_baseline_cycles - row.e_elided_cycles)
              /. float_of_int (max 1 row.e_baseline_cycles))
              (if row.e_equal then "equal" else "DIFFER (BUG)"))
          r.b_rows;
        print_newline ())
      reports

  let print_json reports =
    let row_json row =
      Printf.sprintf
        "{\"engine\": %S, \"baseline_cycles\": %d, \"elided_cycles\": %d, \
         \"saved_pct\": %.2f, \"outputs_equal\": %b}"
        row.e_label row.e_baseline_cycles row.e_elided_cycles
        (100.0
        *. float_of_int (row.e_baseline_cycles - row.e_elided_cycles)
        /. float_of_int (max 1 row.e_baseline_cycles))
        row.e_equal
    in
    let report_json r =
      Printf.sprintf
        "    {\"workload\": %S, \"sites_total\": %d, \"sites_elided\": %d,\n\
        \     \"engines\": [%s]}"
        r.b_workload r.b_sites_total r.b_sites_elided
        (String.concat ", " (List.map row_json r.b_rows))
    in
    Printf.printf
      "{\n  \"bench\": \"boundscheck\",\n  \"workloads\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.map report_json reports))

  (* Smoke contract: the analysis discharges at least one check on every
     workload, elision never costs cycles, and outputs are untouched. *)
  let check reports =
    let failed = ref false in
    List.iter
      (fun r ->
        if r.b_sites_elided = 0 then begin
          Printf.eprintf "FAIL %s: no bounds checks elided\n" r.b_workload;
          failed := true
        end;
        List.iter
          (fun row ->
            if row.e_elided_cycles > row.e_baseline_cycles then begin
              Printf.eprintf "FAIL %s/%s: elision made the reaction dearer\n"
                r.b_workload row.e_label;
              failed := true
            end;
            if not row.e_equal then begin
              Printf.eprintf "FAIL %s/%s: elision changed the outputs\n"
                r.b_workload row.e_label;
              failed := true
            end)
          r.b_rows)
      reports;
    if !failed then exit 1

  let run ~json ~smoke () =
    let reports = reports ~smoke () in
    if json then print_json reports else print_text reports;
    check reports
end

(* ------------------------------------------------------------------ *)
(* Static analysis: race detector + interval loop bounds               *)
(* ------------------------------------------------------------------ *)

module Analysis_bench = struct
  (* The local-copied-bound shape the syntactic recognizer rejects but
     the interval analysis bounds (documents the subsumption is strict). *)
  let interval_only_source =
    {|class IntervalOnly extends ASR {
  IntervalOnly() { declarePorts(1, 1); }
  public void run() {
    int n = 10;
    int m = n * 2;
    int acc = readPort(0);
    for (int i = 0; i < m; i++) { acc = acc + i; }
    writePort(0, acc);
  }
}|}

  type loop_counts = {
    l_syntactic : int;  (* loops the syntactic recognizer bounds *)
    l_interval : int;   (* loops the full analysis bounds *)
    l_regressed : int;  (* syntactic-bounded loops the fallback loses *)
  }

  type report = {
    a_name : string;
    a_races : int;
    a_compliant : bool;
    a_loops : loop_counts;
  }

  let loop_counts checked =
    let syntactic = ref 0 and interval = ref 0 and regressed = ref 0 in
    List.iter
      (fun cls ->
        List.iter
          (fun body ->
            Mj.Visit.iter_stmts
              ~stmt:(fun s ->
                match s.Mj.Ast.stmt with
                | Mj.Ast.For _ ->
                    let syn = Policy.Loop_bounds.syntactic_for_bound checked s in
                    let full =
                      Policy.Loop_bounds.for_bound
                        ~enclosing:body.Mj.Visit.b_stmts checked s
                    in
                    (match syn with
                    | Policy.Loop_bounds.Bounded _ -> incr syntactic
                    | _ -> ());
                    (match full with
                    | Policy.Loop_bounds.Bounded _ -> incr interval
                    | _ -> (
                        match syn with
                        | Policy.Loop_bounds.Bounded _ -> incr regressed
                        | _ -> ()))
                | _ -> ())
              ~expr:(fun _ -> ())
              body.Mj.Visit.b_stmts)
          (Mj.Visit.bodies cls))
      checked.Mj.Typecheck.program.Mj.Ast.classes;
    { l_syntactic = !syntactic; l_interval = !interval; l_regressed = !regressed }

  let survey name source =
    let checked = Mj.Typecheck.check_source ~file:(name ^ ".mj") source in
    let violations = Policy.Asr_policy.check checked in
    { a_name = name;
      a_races = List.length (Analysis.Races.detect checked);
      a_compliant = not (List.exists Policy.Rule.is_blocking violations);
      a_loops = loop_counts checked }

  let reports ~smoke () =
    let dims = if smoke then (32, 24) else (48, 40) in
    let width, height = dims in
    [ survey "fig8-threaded" Workloads.Fig8_mj.threaded_source;
      survey "fig8-refined-blocks" Workloads.Fig8_mj.refined_blocks_source;
      survey "traffic" Workloads.Traffic_mj.source;
      survey "elevator" Workloads.Elevator_mj.source;
      survey "uart" Workloads.Uart_mj.source;
      survey "jpeg-restricted"
        (Workloads.Jpeg_mj.restricted_source ~width ~height ());
      survey "jpeg-unrestricted"
        (Workloads.Jpeg_mj.unrestricted_source ~width ~height ());
      survey "interval-only" interval_only_source ]

  let print_text reports =
    print_endline
      "Static analysis: shared-field races and interval loop bounds";
    print_newline ();
    Printf.printf "%-22s %6s %10s %28s\n" "" "races" "compliant"
      "loops bounded (syn -> itv)";
    List.iter
      (fun r ->
        Printf.printf "%-22s %6d %10s %18d -> %d%s\n" r.a_name r.a_races
          (if r.a_compliant then "yes" else "no")
          r.a_loops.l_syntactic r.a_loops.l_interval
          (if r.a_loops.l_regressed > 0 then "  (REGRESSION)" else ""))
      reports

  let print_json reports =
    let report_json r =
      Printf.sprintf
        "    {\"workload\": %S, \"races\": %d, \"compliant\": %b, \
         \"loops_syntactic\": %d, \"loops_interval\": %d, \
         \"loops_regressed\": %d}"
        r.a_name r.a_races r.a_compliant r.a_loops.l_syntactic
        r.a_loops.l_interval r.a_loops.l_regressed
    in
    Printf.printf
      "{\n  \"bench\": \"analysis\",\n  \"workloads\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.map report_json reports))

  (* Smoke contract (the analysis-smoke alias): the race detector flags
     the paper's Fig. 8 threaded program and nothing else; the interval
     analysis subsumes the syntactic recognizer everywhere and strictly
     extends it on the local-copied-bound shape; the unrestricted JPEG
     still flags while the restricted one stays clean. *)
  let check reports =
    let failed = ref false in
    let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "FAIL %s\n" m;
                                     failed := true) fmt in
    List.iter
      (fun r ->
        (match r.a_name with
        | "fig8-threaded" ->
            if r.a_races = 0 then fail "%s: race not detected" r.a_name
        | _ ->
            if r.a_races > 0 then
              fail "%s: %d spurious race(s)" r.a_name r.a_races);
        if r.a_loops.l_regressed > 0 then
          fail "%s: interval fallback lost %d syntactically bounded loop(s)"
            r.a_name r.a_loops.l_regressed;
        match r.a_name with
        | "jpeg-unrestricted" ->
            if r.a_compliant then fail "jpeg-unrestricted: should flag"
        | "jpeg-restricted" ->
            if not r.a_compliant then fail "jpeg-restricted: should be clean"
        | "interval-only" ->
            if r.a_loops.l_interval <= r.a_loops.l_syntactic then
              fail "interval-only: fallback bounded no extra loop";
            if not r.a_compliant then fail "interval-only: should be clean"
        | _ -> ())
      reports;
    if !failed then exit 1

  let run ~json ~smoke () =
    let reports = reports ~smoke () in
    if json then print_json reports else print_text reports;
    check reports
end

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  let open Bechamel in
  let width = 32 and height = 24 in
  let image = Workloads.Images.synthetic ~width ~height in
  let make_codec engine source =
    let checked = Mj.Typecheck.check_source ~file:"jpeg.mj" source in
    let elab =
      Javatime.Elaborate.elaborate ~engine ~enforce_policy:false
        ~bounded_memory:false checked ~cls:"JpegCodec"
    in
    fun () -> ignore (Javatime.Elaborate.react elab [| Asr.Domain.int_array image |])
  in
  let unrestricted = Workloads.Jpeg_mj.unrestricted_source ~width ~height () in
  let restricted = Workloads.Jpeg_mj.restricted_source ~width ~height () in
  let test =
    Test.make_grouped ~name:"table1" ~fmt:"%s %s"
      [ Test.make ~name:"vm/unrestricted"
          (Staged.stage (make_codec Javatime.Elaborate.Engine_vm unrestricted));
        Test.make ~name:"vm/restricted"
          (Staged.stage (make_codec Javatime.Elaborate.Engine_vm restricted));
        Test.make ~name:"jit/unrestricted"
          (Staged.stage (make_codec Javatime.Elaborate.Engine_jit unrestricted));
        Test.make ~name:"jit/restricted"
          (Staged.stage (make_codec Javatime.Elaborate.Engine_jit restricted)) ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:10 ~quota:(Time.second 2.0) ~kde:(Some 10) () in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-24s %12.0f ns/reaction\n" name est
      | _ -> Printf.printf "  %-24s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Telemetry: exact profile reconciliation, exporter validity, and     *)
(* instrumentation overhead (enabled vs disabled sink).                *)
(* ------------------------------------------------------------------ *)

module Telemetry_bench = struct
  module J = Telemetry.Json

  type recon_row = {
    t_workload : string;
    t_engine : string;
    t_cycles : int;  (* Cost.cycles after init + all reactions *)
    t_profile_total : int;  (* what the sink-fed profile attributed *)
    t_methods : int;
    t_top : (string * int) list;  (* top methods by self cycles *)
  }

  type overhead_row = {
    o_workload : string;
    o_engine : string;
    o_reactions : int;
    o_disabled_s : float;
    o_enabled_s : float;
  }

  type netgen_row = {
    n_name : string;
    n_blocks : int;
    n_instants : int;
    n_evals : int;
    n_spans : int;
    n_reconciles : bool;  (* registry counters == simulator totals *)
    n_disabled_s : float;
    n_enabled_s : float;
  }

  type report = {
    recon : recon_row list;
    overhead : overhead_row list;
    netgen : netgen_row list;
    trace_events : int;
    trace_valid : bool;
    vcd_ok : bool;
  }

  (* Same two workloads the boundscheck bench uses: the SFR-refined FIR
     (many small reactions) and the restricted JPEG codec (one large
     reaction). *)
  let drive ~engine ?profile ?lines (w : Boundscheck.workload) =
    let checked =
      Mj.Typecheck.check_source ~file:(w.Boundscheck.b_name ^ ".mj")
        w.Boundscheck.b_source
    in
    let cost_sink = Option.map Mj_runtime.Cost.profile_sink profile in
    let elab =
      Javatime.Elaborate.elaborate ~engine ~enforce_policy:false
        ~bounded_memory:false ?cost_sink ?cost_lines:lines checked
        ~cls:w.Boundscheck.b_cls
    in
    List.iter
      (fun inputs -> ignore (Javatime.Elaborate.react elab inputs))
      w.Boundscheck.b_inputs;
    Javatime.Elaborate.total_cycles elab

  let engines =
    [ ("interp", Javatime.Elaborate.Engine_interp);
      ("vm", Javatime.Elaborate.Engine_vm);
      ("jit", Javatime.Elaborate.Engine_jit) ]

  let reconcile ~smoke () =
    List.concat_map
      (fun w ->
        List.map
          (fun (label, engine) ->
            let profile = Telemetry.Profile.create () in
            let cycles = drive ~engine ~profile w in
            let top =
              List.filteri (fun i _ -> i < 3) (Telemetry.Profile.by_self profile)
              |> List.map (fun r ->
                     (r.Telemetry.Profile.r_label, r.Telemetry.Profile.r_self))
            in
            { t_workload = w.Boundscheck.b_name;
              t_engine = label;
              t_cycles = cycles;
              t_profile_total = Telemetry.Profile.total profile;
              t_methods = List.length (Telemetry.Profile.rows profile) - 1;
              t_top = top })
          engines)
      (Boundscheck.workloads ~smoke ())

  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0

  let measure_overhead ~smoke () =
    List.map
      (fun w ->
        let disabled = wall (fun () -> ignore (drive ~engine:Javatime.Elaborate.Engine_vm w)) in
        let enabled =
          wall (fun () ->
              let profile = Telemetry.Profile.create () in
              ignore (drive ~engine:Javatime.Elaborate.Engine_vm ~profile w))
        in
        { o_workload = w.Boundscheck.b_name;
          o_engine = "vm";
          o_reactions = List.length w.Boundscheck.b_inputs;
          o_disabled_s = disabled;
          o_enabled_s = enabled })
      (Boundscheck.workloads ~smoke ())

  (* ASR-level telemetry on generated nets: the per-instant span/counter
     machinery must reconcile exactly with the simulator's own totals at
     any net size, and the disabled registry must stay one branch per
     reaction. *)
  let netgen_rows ~smoke () =
    let sizes = if smoke then [ 50 ] else [ 200; 2_000 ] in
    let instants = if smoke then 10 else 100 in
    List.map
      (fun size ->
        let width = min size 25 in
        let depth = max 1 (size / width) in
        let g =
          Workloads.Netgen.generate ~inputs:4 ~delays:4 ~cyclic_ratio:0.04
            ~seed:(331 + size) ~depth ~width ()
        in
        let compiled = Asr.Graph.compile g in
        let stream = Workloads.Netgen.stimulus g ~instants in
        let run ?telemetry () =
          let sim =
            Asr.Simulate.create ~strategy:Asr.Fixpoint.Fused ?telemetry g
          in
          let t0 = Unix.gettimeofday () in
          List.iter (fun inputs -> ignore (Asr.Simulate.step sim inputs)) stream;
          (Unix.gettimeofday () -. t0, Asr.Simulate.block_evaluations sim)
        in
        let disabled_s, evals_off = run () in
        let reg = Telemetry.Registry.create () in
        let enabled_s, evals = run ~telemetry:reg () in
        let cval name =
          (Telemetry.Registry.counter reg name).Telemetry.Registry.c_value
        in
        { n_name =
            Printf.sprintf "netgen-%d" (Array.length compiled.Asr.Graph.c_blocks);
          n_blocks = Array.length compiled.Asr.Graph.c_blocks;
          n_instants = instants;
          n_evals = evals;
          n_spans = List.length (Telemetry.Registry.spans reg);
          n_reconciles =
            evals = evals_off
            && cval "asr.instants" = instants
            && cval "asr.block_evaluations" = evals
            && List.length (Telemetry.Registry.spans reg) = instants;
          n_disabled_s = disabled_s;
          n_enabled_s = enabled_s })
      sizes

  (* Chrome-trace validity: profile the FIR workload with span recording,
     export, parse the JSON back and structurally check the events. *)
  let trace_roundtrip ~smoke () =
    let w =
      List.find
        (fun w -> w.Boundscheck.b_name = "fir-refined")
        (Boundscheck.workloads ~smoke ())
    in
    let reg = Telemetry.Registry.create () in
    let profile = Telemetry.Profile.create ~spans:reg () in
    ignore (drive ~engine:Javatime.Elaborate.Engine_vm ~profile w);
    let text = Telemetry.Export.chrome_trace reg in
    match J.parse text with
    | exception J.Parse_error _ -> (0, false)
    | parsed -> (
        match J.member "traceEvents" parsed with
        | Some (J.List events) ->
            let well_formed ev =
              let has k =
                match J.member k ev with Some _ -> true | None -> false
              in
              has "name" && has "ph" && has "ts" && has "dur" && has "pid"
              && has "tid"
            in
            (List.length events, events <> [] && List.for_all well_formed events)
        | _ -> (0, false))

  let vcd_smoke () =
    let open Asr in
    let vcd =
      Waves.signals_to_vcd
        [ ("x", [ Domain.int 1; Domain.int 2; Domain.Bottom ]);
          ("go", [ Domain.bool true; Domain.bool false; Domain.bool false ]) ]
    in
    String.length vcd > 0
    && String.sub vcd 0 10 = "$timescale"
    && String.index_opt vcd 'x' <> None

  let report ~smoke () =
    let trace_events, trace_valid = trace_roundtrip ~smoke () in
    { recon = reconcile ~smoke ();
      overhead = measure_overhead ~smoke ();
      netgen = netgen_rows ~smoke ();
      trace_events;
      trace_valid;
      vcd_ok = vcd_smoke () }

  let overhead_pct r =
    if r.o_disabled_s <= 0.0 then 0.0
    else 100.0 *. (r.o_enabled_s -. r.o_disabled_s) /. r.o_disabled_s

  let print_text r =
    print_endline
      "Telemetry: deterministic profiling reconciles exactly with Cost.cycles";
    print_newline ();
    List.iter
      (fun row ->
        Printf.printf "  %-16s %-7s %12d cycles  profile %12d  %s\n"
          row.t_workload row.t_engine row.t_cycles row.t_profile_total
          (if row.t_cycles = row.t_profile_total then "exact" else "DRIFT");
        List.iter
          (fun (label, self) -> Printf.printf "      %-28s %12d self\n" label self)
          row.t_top)
      r.recon;
    print_newline ();
    List.iter
      (fun o ->
        Printf.printf
          "  overhead %-16s %-4s %4d reaction(s): %.4fs off, %.4fs on (%+.1f%%)\n"
          o.o_workload o.o_engine o.o_reactions o.o_disabled_s o.o_enabled_s
          (overhead_pct o))
      r.overhead;
    List.iter
      (fun n ->
        Printf.printf
          "  asr %-12s %4d instants %9d evals %4d spans: %s (%.4fs off, \
           %.4fs on)\n"
          n.n_name n.n_instants n.n_evals n.n_spans
          (if n.n_reconciles then "reconcile" else "DRIFT (BUG)")
          n.n_disabled_s n.n_enabled_s)
      r.netgen;
    Printf.printf "  chrome trace: %d events, %s\n" r.trace_events
      (if r.trace_valid then "parses and is well-formed" else "INVALID");
    Printf.printf "  vcd: %s\n" (if r.vcd_ok then "ok" else "INVALID")

  let print_json r =
    let recon_json row =
      J.Obj
        [ ("workload", J.Str row.t_workload);
          ("engine", J.Str row.t_engine);
          ("cycles", J.Int row.t_cycles);
          ("profile_total", J.Int row.t_profile_total);
          ("equal", J.Bool (row.t_cycles = row.t_profile_total));
          ("methods", J.Int row.t_methods);
          ( "top_self",
            J.List
              (List.map
                 (fun (label, self) ->
                   J.Obj [ ("method", J.Str label); ("self", J.Int self) ])
                 row.t_top) ) ]
    in
    let overhead_json o =
      J.Obj
        [ ("workload", J.Str o.o_workload);
          ("engine", J.Str o.o_engine);
          ("reactions", J.Int o.o_reactions);
          ("disabled_wall_s", J.Float o.o_disabled_s);
          ("enabled_wall_s", J.Float o.o_enabled_s);
          ("overhead_pct", J.Float (overhead_pct o)) ]
    in
    let netgen_json n =
      J.Obj
        [ ("workload", J.Str n.n_name);
          ("blocks", J.Int n.n_blocks);
          ("instants", J.Int n.n_instants);
          ("evaluations", J.Int n.n_evals);
          ("spans", J.Int n.n_spans);
          ("reconciles", J.Bool n.n_reconciles);
          ("disabled_wall_s", J.Float n.n_disabled_s);
          ("enabled_wall_s", J.Float n.n_enabled_s) ]
    in
    print_endline
      (J.to_string
         (J.Obj
            [ ("bench", J.Str "telemetry");
              ("reconcile", J.List (List.map recon_json r.recon));
              ("overhead", J.List (List.map overhead_json r.overhead));
              ("asr_netgen", J.List (List.map netgen_json r.netgen));
              ( "chrome_trace",
                J.Obj
                  [ ("events", J.Int r.trace_events);
                    ("valid", J.Bool r.trace_valid) ] );
              ("vcd_ok", J.Bool r.vcd_ok) ]))

  (* Smoke contract: every engine/workload pair reconciles to the cycle,
     the Chrome trace parses back well-formed, the VCD smoke passes. *)
  let check r =
    let failed = ref false in
    List.iter
      (fun row ->
        if row.t_cycles <> row.t_profile_total then begin
          Printf.eprintf "FAIL %s/%s: profile %d != cycles %d\n" row.t_workload
            row.t_engine row.t_profile_total row.t_cycles;
          failed := true
        end)
      r.recon;
    List.iter
      (fun n ->
        if not n.n_reconciles then begin
          Printf.eprintf
            "FAIL %s: asr telemetry counters drifted from the simulator\n"
            n.n_name;
          failed := true
        end)
      r.netgen;
    if not r.trace_valid then begin
      Printf.eprintf "FAIL chrome trace did not parse back well-formed\n";
      failed := true
    end;
    if not r.vcd_ok then begin
      Printf.eprintf "FAIL vcd export smoke\n";
      failed := true
    end;
    if !failed then exit 1

  let run ~json ~smoke () =
    let r = report ~smoke () in
    if json then print_json r else print_text r;
    check r
end

(* ------------------------------------------------------------------ *)
(* Line profiling: per-line attribution reconciles exactly with        *)
(* Cost.cycles on every engine, the modeled cycle counts are identical *)
(* with attribution on and off (the disabled path is free in the cost  *)
(* model), and the wall-clock overhead of both paths is reported.      *)
(* ------------------------------------------------------------------ *)

module Lineprof_bench = struct
  module J = Telemetry.Json

  type row = {
    l_workload : string;
    l_engine : string;
    l_cycles_off : int;  (* Cost.cycles without a line table *)
    l_cycles_on : int;   (* Cost.cycles with attribution enabled *)
    l_lines_total : int; (* what the line table attributed *)
    l_rows : int;        (* distinct (file, line) rows *)
    l_top : (string * int * int) list;  (* (file, line, cycles) *)
    l_off_wall : float;
    l_on_wall : float;
  }

  let measure ~smoke () =
    List.concat_map
      (fun w ->
        List.map
          (fun (label, engine) ->
            let cycles_off = ref 0 and cycles_on = ref 0 in
            let lt = Telemetry.Lines.create () in
            let off_wall =
              Telemetry_bench.wall (fun () ->
                  cycles_off := Telemetry_bench.drive ~engine w)
            in
            let on_wall =
              Telemetry_bench.wall (fun () ->
                  cycles_on := Telemetry_bench.drive ~engine ~lines:lt w)
            in
            let top =
              List.filteri (fun i _ -> i < 3) (Telemetry.Lines.by_cycles lt)
              |> List.map (fun e ->
                     Telemetry.Lines.
                       (e.e_file, e.e_line, e.e_cycles))
            in
            { l_workload = w.Boundscheck.b_name;
              l_engine = label;
              l_cycles_off = !cycles_off;
              l_cycles_on = !cycles_on;
              l_lines_total = Telemetry.Lines.total lt;
              l_rows = List.length (Telemetry.Lines.rows lt);
              l_top = top;
              l_off_wall = off_wall;
              l_on_wall = on_wall })
          Telemetry_bench.engines)
      (Boundscheck.workloads ~smoke ())

  let overhead_pct r =
    if r.l_off_wall <= 0.0 then 0.0
    else 100.0 *. (r.l_on_wall -. r.l_off_wall) /. r.l_off_wall

  let print_text rows =
    print_endline
      "Line profiling: per-line attribution reconciles exactly with \
       Cost.cycles";
    print_newline ();
    List.iter
      (fun r ->
        Printf.printf
          "  %-16s %-7s %12d cycles  lines %12d (%4d rows)  %s%s\n"
          r.l_workload r.l_engine r.l_cycles_on r.l_lines_total r.l_rows
          (if r.l_lines_total = r.l_cycles_on then "exact" else "DRIFT")
          (if r.l_cycles_on = r.l_cycles_off then "" else " COST-CHANGED");
        List.iter
          (fun (file, line, cycles) ->
            Printf.printf "      %s:%-5d %12d\n" file line cycles)
          r.l_top;
        Printf.printf
          "      wall: %.4fs off, %.4fs on (%+.1f%%)\n" r.l_off_wall
          r.l_on_wall (overhead_pct r))
      rows

  let print_json rows =
    let row_json r =
      J.Obj
        [ ("workload", J.Str r.l_workload);
          ("engine", J.Str r.l_engine);
          ("cycles", J.Int r.l_cycles_off);
          ("cycles_lines_enabled", J.Int r.l_cycles_on);
          ("cost_model_unchanged", J.Bool (r.l_cycles_on = r.l_cycles_off));
          ("lines_total", J.Int r.l_lines_total);
          ("reconciles", J.Bool (r.l_lines_total = r.l_cycles_on));
          ("rows", J.Int r.l_rows);
          ( "top_lines",
            J.List
              (List.map
                 (fun (file, line, cycles) ->
                   J.Obj
                     [ ("file", J.Str file); ("line", J.Int line);
                       ("cycles", J.Int cycles) ])
                 r.l_top) );
          ("disabled_wall_s", J.Float r.l_off_wall);
          ("enabled_wall_s", J.Float r.l_on_wall);
          ("overhead_pct", J.Float (overhead_pct r)) ]
    in
    print_endline
      (J.to_string
         (J.Obj
            [ ("bench", J.Str "lineprof");
              ("rows", J.List (List.map row_json rows)) ]))

  (* Smoke contract: attribution reconciles to the cycle on every
     engine/workload pair, and enabling it never changes the modeled
     cycle count (so PR-level cycle baselines remain comparable). *)
  let check rows =
    let failed = ref false in
    List.iter
      (fun r ->
        if r.l_lines_total <> r.l_cycles_on then begin
          Printf.eprintf "FAIL %s/%s: line table %d != cycles %d\n"
            r.l_workload r.l_engine r.l_lines_total r.l_cycles_on;
          failed := true
        end;
        if r.l_cycles_on <> r.l_cycles_off then begin
          Printf.eprintf
            "FAIL %s/%s: enabling line profiling changed modeled cycles \
             (%d -> %d)\n"
            r.l_workload r.l_engine r.l_cycles_off r.l_cycles_on;
          failed := true
        end;
        if r.l_rows < 2 then begin
          Printf.eprintf "FAIL %s/%s: only %d line rows attributed\n"
            r.l_workload r.l_engine r.l_rows;
          failed := true
        end)
      rows;
    if !failed then exit 1

  let run ~json ~smoke () =
    let rows = measure ~smoke () in
    if json then print_json rows else print_text rows;
    check rows
end

(* ------------------------------------------------------------------ *)
(* Fault-injection campaign: supervisor containment and degradation    *)
(* ------------------------------------------------------------------ *)

(* Three claims, checked bit-for-bit rather than statistically:

   1. Containment: injecting faults into chosen blocks of an ASR graph
      perturbs only the nets inside [Graph.affected_nets] of those
      blocks — every net outside the blast radius takes exactly the
      per-instant value of the fault-free run, under every containment
      policy.
   2. Determinism: a fixed injection seed reproduces the same traces
      and the same fault log run after run, and a transient
      first-application glitch absorbed by [Retry] leaves the whole
      trace bit-identical to the fault-free one.
   3. Zero-cost disablement: with no supervisor attached, the modeled
      cycle counts of the MJ workloads are unchanged — against fresh
      in-process controls (ample budget armed, ample heap limit armed)
      and, when [--baseline BENCH_lineprof.json] points at the
      committed pre-supervisor artifact, against that artifact exactly
      (full-size runs only; --smoke uses scaled-down workloads). *)

module Faults_bench = struct
  module D = Asr.Domain
  module G = Asr.Graph
  module S = Asr.Supervisor
  module I = Asr.Inject
  module J = Telemetry.Json
  module E = Javatime.Elaborate

  (* ---- part 1/2: ASR graph campaign -------------------------------- *)

  type asr_row = {
    a_workload : string;
    a_policy : string;
    a_first_only : bool;
    a_seed : int;
    a_blocks : int;
    a_nets : int;
    a_instants : int;
    a_specs : string list;
    a_injected : int;  (* faults actually raised by the injector *)
    a_contained : int;
    a_recovered : int;
    a_quarantined : int;
    a_affected : int;  (* nets inside the blast radius *)
    a_checked : int;  (* (instant, net) pairs compared outside it *)
    a_contained_ok : bool;  (* outside nets identical to fault-free run *)
    a_deterministic : bool;  (* same seed -> same nets + fault log *)
    a_fully_identical : bool;  (* whole trace equals the fault-free one *)
  }

  let graphs ~smoke () =
    let scale n small = if smoke then small else n in
    [ ("fir", Sched_bench.fir_graph (scale 32 8), scale 60 12);
      ("jpeg-pipeline", Sched_bench.pipeline_graph (scale 24 6), scale 60 12);
      ("cyclic", Sched_bench.cyclic_graph (scale 8 3), scale 60 12);
      ( "random",
        Sched_bench.random_graph ~seed:7 ~inputs:3 ~layers:(scale 8 3)
          ~per_layer:(scale 12 4) ~delays:3,
        scale 60 12 );
      (* Structured random nets (delays + a few cycles) widen the
         campaign beyond the hand-built topologies. *)
      ( "netgen",
        Workloads.Netgen.generate ~inputs:3 ~delays:2 ~cyclic_ratio:0.1
          ~seed:23 ~depth:(scale 7 3) ~width:(scale 10 4) (),
        scale 60 12 ) ]

  (* Drive one instant at a time, capturing each instant's whole fixed
     point (not just the output ports) — the containment property
     quantifies over nets. *)
  let run_capture ?supervisor ?inject g stream =
    let sim = Asr.Simulate.create ?supervisor g in
    List.map
      (fun inputs ->
        ignore (Asr.Simulate.step sim inputs);
        (match inject with Some inj -> I.tick inj | None -> ());
        Asr.Simulate.net_values sim)
      stream

  let campaign_row (name, g, instants) ~policy ~first_only ~seed =
    let compiled = G.compile g in
    let n_blocks = Array.length compiled.G.c_blocks in
    let stream = Sched_bench.stimulus g ~instants in
    let clean = run_capture g stream in
    let specs = I.plan ~seed ~n_blocks ~instants ~n_faults:2 ~first_only () in
    let faulty_run () =
      let inj = I.make specs in
      let sup = S.create ~policy () in
      let nets =
        run_capture ~supervisor:sup ~inject:inj (I.instrument inj g) stream
      in
      (inj, sup, nets)
    in
    let inj, sup, faulty = faulty_run () in
    let inj2, sup2, faulty2 = faulty_run () in
    let affected = Array.make compiled.G.n_nets false in
    List.iter
      (fun s ->
        Array.iteri
          (fun i b -> if b then affected.(i) <- true)
          (G.affected_nets compiled s.I.i_block))
      specs;
    let checked = ref 0 and contained_ok = ref true in
    List.iter2
      (fun clean_nets faulty_nets ->
        Array.iteri
          (fun n v ->
            if not affected.(n) then begin
              incr checked;
              if v <> faulty_nets.(n) then contained_ok := false
            end)
          clean_nets)
      clean faulty;
    { a_workload = name;
      a_policy = S.policy_name policy;
      a_first_only = first_only;
      a_seed = seed;
      a_blocks = n_blocks;
      a_nets = compiled.G.n_nets;
      a_instants = instants;
      a_specs = List.map I.spec_to_string specs;
      a_injected = I.fired inj;
      a_contained = S.fault_count sup;
      a_recovered = S.recovered_count sup;
      a_quarantined = List.length (S.quarantined_blocks sup);
      a_affected =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 affected;
      a_checked = !checked;
      a_contained_ok = !contained_ok;
      a_deterministic =
        faulty = faulty2
        && I.fired inj = I.fired inj2
        && S.faults sup = S.faults sup2;
      a_fully_identical = clean = faulty }

  (* A supervisor with nothing to contain must be invisible. *)
  let nofault_identical (name, g, instants) =
    let stream = Sched_bench.stimulus g ~instants in
    let clean = run_capture g stream in
    let sup = S.create () in
    let supervised = run_capture ~supervisor:sup g stream in
    (name, clean = supervised && S.fault_count sup = 0)

  (* The [Retry] rows inject first-application-only glitches, the shape
     that policy exists to absorb; the others inject unconditionally. *)
  let policies =
    [ (S.Hold_last, false); (S.Absent, false); (S.Retry 2, true) ]

  let asr_rows ~smoke () =
    List.concat
      (List.mapi
         (fun wi w ->
           List.mapi
             (fun pi (policy, first_only) ->
               campaign_row w ~policy ~first_only
                 ~seed:(41 + (13 * wi) + (7 * pi)))
             policies)
         (graphs ~smoke ()))

  (* ---- part 3: MJ engine traps under supervision ------------------- *)

  type mj_row = {
    m_engine : string;
    m_trap : string;  (* "budget" | "heap" *)
    m_instants : int;
    m_contained : int;
    m_class_ok : bool;  (* every contained fault has the right class *)
    m_reconciles : bool;  (* line attribution = Cost.cycles after traps *)
    m_next_ok : bool;  (* reaction resumes once the pressure is lifted *)
  }

  (* Blows any small cycle budget: 64 loop iterations per reaction. *)
  let spin_src =
    {|class Spin extends ASR {
        Spin() { declarePorts(1, 1); }
        public void run() {
          int acc = 0;
          int i = 0;
          while (i < 64) { acc = acc + i; i = i + 1; }
          writePort(0, acc + readPort(0));
        }
      }|}

  (* Allocates 34 heap words per reaction; a limit of init+80 words
     admits two reactions and traps from the third on. *)
  let storm_src =
    {|class Storm extends ASR {
        Storm() { declarePorts(1, 1); }
        public void run() {
          int[] a = new int[32];
          a[0] = readPort(0);
          writePort(0, a[0] + 1);
        }
      }|}

  let mj_trap_row ~engine ~label ~trap =
    let src, cls, budget, heap_slack, instants =
      match trap with
      | `Budget -> (spin_src, "Spin", Some 40, None, 5)
      | `Heap -> (storm_src, "Storm", None, Some 80, 6)
    in
    let checked = Mj.Typecheck.check_source ~file:(cls ^ ".mj") src in
    let lines = Telemetry.Lines.create () in
    let elab =
      E.elaborate ~engine ~enforce_policy:false ~bounded_memory:false
        ~cost_lines:lines checked ~cls
    in
    let heap = (E.machine elab).Mj_runtime.Machine.heap in
    (match heap_slack with
    | Some slack ->
        let stats = Mj_runtime.Heap.stats heap in
        Mj_runtime.Heap.set_limit_words heap
          (Some (stats.Mj_runtime.Heap.init_words + slack))
    | None -> ());
    let n_in, n_out = E.ports elab in
    let block =
      Asr.Block.make ~name:("mj:" ^ cls) ~n_in ~n_out (fun inputs ->
          if Array.for_all D.is_def inputs then
            match budget with
            | Some b -> E.react_bounded elab ~budget_cycles:b inputs
            | None -> E.react elab inputs
          else Array.make n_out D.Bottom)
    in
    let g = G.create ("mj-" ^ cls) in
    let b = G.add_block g block in
    let inp = G.add_input g "x" in
    let out = G.add_output g "y" in
    G.connect g ~src:(G.out_port inp 0) ~dst:(G.in_port b 0);
    G.connect g ~src:(G.out_port b 0) ~dst:(G.in_port out 0);
    let sup =
      S.create ~policy:S.Hold_last ~classify:E.fault_classifier ()
    in
    let sim = Asr.Simulate.create ~supervisor:sup g in
    ignore
      (Asr.Simulate.run sim
         (List.init instants (fun t -> [ ("x", D.int t) ])));
    let expected_class =
      match trap with
      | `Budget -> S.Budget_exceeded
      | `Heap -> S.Heap_exhausted
    in
    let class_ok =
      S.fault_count sup > 0
      && List.for_all
           (fun f -> f.S.f_action = S.Escalated || f.S.f_class = expected_class)
           (S.faults sup)
    in
    (* graceful degradation: lift the pressure, the reaction works again *)
    Mj_runtime.Heap.set_limit_words heap None;
    let next_ok =
      match E.react elab [| D.int 1 |] with
      | [| D.Def _ |] -> true
      | _ -> false
      | exception _ -> false
    in
    { m_engine = label;
      m_trap = (match trap with `Budget -> "budget" | `Heap -> "heap");
      m_instants = instants;
      m_contained = S.fault_count sup;
      m_class_ok = class_ok;
      m_reconciles = Telemetry.Lines.total lines = E.total_cycles elab;
      m_next_ok = next_ok }

  let mj_rows () =
    List.concat_map
      (fun (label, engine) ->
        [ mj_trap_row ~engine ~label ~trap:`Budget;
          mj_trap_row ~engine ~label ~trap:`Heap ])
      Telemetry_bench.engines

  (* ---- part 4: supervisor-disabled path is cycle-identical --------- *)

  type dis_row = {
    d_workload : string;
    d_engine : string;
    d_cycles : int;
    d_budget_identical : bool;  (* ample budget armed: same cycles *)
    d_heap_identical : bool;  (* ample heap limit armed: same cycles *)
    d_baseline : int option;  (* committed BENCH_lineprof.json cycles *)
  }

  let drive_mj ~engine ?budget ?heap_limit (w : Boundscheck.workload) =
    let checked =
      Mj.Typecheck.check_source ~file:(w.Boundscheck.b_name ^ ".mj")
        w.Boundscheck.b_source
    in
    let elab =
      E.elaborate ~engine ~enforce_policy:false ~bounded_memory:false
        ?heap_limit_words:heap_limit checked ~cls:w.Boundscheck.b_cls
    in
    List.iter
      (fun inputs ->
        ignore
          (match budget with
          | Some b -> E.react_bounded elab ~budget_cycles:b inputs
          | None -> E.react elab inputs))
      w.Boundscheck.b_inputs;
    E.total_cycles elab

  let baseline_lookup path =
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let parsed =
      match J.parse text with
      | parsed -> parsed
      | exception J.Parse_error msg ->
          Printf.eprintf "cannot parse baseline %s: %s\n" path msg;
          exit 1
    in
    fun ~workload ~engine ->
      match J.member "rows" parsed with
      | Some (J.List rows) ->
          List.find_map
            (fun r ->
              match
                (J.member "workload" r, J.member "engine" r, J.member "cycles" r)
              with
              | Some (J.Str w), Some (J.Str e), Some (J.Int c)
                when w = workload && e = engine ->
                  Some c
              | _ -> None)
            rows
      | _ -> None

  let disabled_rows ~smoke ~baseline () =
    let lookup =
      match baseline with
      | Some path -> baseline_lookup path
      | None -> fun ~workload:_ ~engine:_ -> None
    in
    List.concat_map
      (fun w ->
        List.map
          (fun (label, engine) ->
            (* ample but not max_int: the budget trip point is computed
               as meter + budget and must not overflow *)
            let plain = drive_mj ~engine w in
            let budgeted = drive_mj ~engine ~budget:(max_int / 2) w in
            let limited = drive_mj ~engine ~heap_limit:(max_int / 2) w in
            { d_workload = w.Boundscheck.b_name;
              d_engine = label;
              d_cycles = plain;
              d_budget_identical = budgeted = plain;
              d_heap_identical = limited = plain;
              d_baseline =
                lookup ~workload:w.Boundscheck.b_name ~engine:label })
          Telemetry_bench.engines)
      (Boundscheck.workloads ~smoke ())

  (* ---- report ------------------------------------------------------ *)

  type report = {
    r_asr : asr_row list;
    r_nofault : (string * bool) list;
    r_mj : mj_row list;
    r_disabled : dis_row list;
  }

  let reports ~smoke ~baseline () =
    { r_asr = asr_rows ~smoke ();
      r_nofault = List.map nofault_identical (graphs ~smoke ());
      r_mj = mj_rows ();
      r_disabled = disabled_rows ~smoke ~baseline () }

  let print_text r =
    print_endline
      "Fault injection: containment outside the blast radius, bit-for-bit";
    print_newline ();
    List.iter
      (fun a ->
        Printf.printf
          "  %-14s %-10s seed %3d  %2d faults  %3d contained %2d recovered \
           %2d quarantined  %5d/%d nets clean  outside %s%s%s\n"
          a.a_workload a.a_policy a.a_seed a.a_injected a.a_contained
          a.a_recovered a.a_quarantined (a.a_nets - a.a_affected) a.a_nets
          (if a.a_contained_ok then "identical" else "DIVERGED (BUG)")
          (if a.a_deterministic then "" else "  NONDETERMINISTIC (BUG)")
          (if a.a_fully_identical then "  (trace fully identical)" else ""))
      r.r_asr;
    print_newline ();
    List.iter
      (fun (w, ok) ->
        Printf.printf "  %-14s supervised no-fault run: %s\n" w
          (if ok then "identical to unsupervised" else "DIVERGED (BUG)"))
      r.r_nofault;
    print_newline ();
    List.iter
      (fun m ->
        Printf.printf
          "  mj %-7s %-6s trap  %d contained over %d instants  class %s  \
           lines %s  resume %s\n"
          m.m_engine m.m_trap m.m_contained m.m_instants
          (if m.m_class_ok then "ok" else "WRONG (BUG)")
          (if m.m_reconciles then "reconcile" else "DRIFT (BUG)")
          (if m.m_next_ok then "ok" else "STUCK (BUG)"))
      r.r_mj;
    print_newline ();
    List.iter
      (fun d ->
        Printf.printf
          "  disabled %-16s %-7s %12d cycles  budget-armed %s  heap-armed %s%s\n"
          d.d_workload d.d_engine d.d_cycles
          (if d.d_budget_identical then "identical" else "CHANGED (BUG)")
          (if d.d_heap_identical then "identical" else "CHANGED (BUG)")
          (match d.d_baseline with
          | None -> ""
          | Some b when b = d.d_cycles -> "  baseline identical"
          | Some b -> Printf.sprintf "  BASELINE DRIFT (%d)" b))
      r.r_disabled

  let print_json r =
    let asr_json a =
      J.Obj
        [ ("workload", J.Str a.a_workload);
          ("policy", J.Str a.a_policy);
          ("first_application_only", J.Bool a.a_first_only);
          ("seed", J.Int a.a_seed);
          ("blocks", J.Int a.a_blocks);
          ("nets", J.Int a.a_nets);
          ("instants", J.Int a.a_instants);
          ("specs", J.List (List.map (fun s -> J.Str s) a.a_specs));
          ("injected", J.Int a.a_injected);
          ("contained", J.Int a.a_contained);
          ("recovered", J.Int a.a_recovered);
          ("quarantined", J.Int a.a_quarantined);
          ("affected_nets", J.Int a.a_affected);
          ("checked_pairs", J.Int a.a_checked);
          ("unaffected_identical", J.Bool a.a_contained_ok);
          ("deterministic", J.Bool a.a_deterministic);
          ("trace_fully_identical", J.Bool a.a_fully_identical) ]
    in
    let nofault_json (w, ok) =
      J.Obj
        [ ("workload", J.Str w); ("supervised_nofault_identical", J.Bool ok) ]
    in
    let mj_json m =
      J.Obj
        [ ("engine", J.Str m.m_engine);
          ("trap", J.Str m.m_trap);
          ("instants", J.Int m.m_instants);
          ("contained", J.Int m.m_contained);
          ("class_ok", J.Bool m.m_class_ok);
          ("lines_reconcile", J.Bool m.m_reconciles);
          ("resumes_after_pressure", J.Bool m.m_next_ok) ]
    in
    let dis_json d =
      J.Obj
        ([ ("workload", J.Str d.d_workload);
           ("engine", J.Str d.d_engine);
           ("cycles", J.Int d.d_cycles);
           ("budget_armed_identical", J.Bool d.d_budget_identical);
           ("heap_armed_identical", J.Bool d.d_heap_identical) ]
        @
        match d.d_baseline with
        | None -> []
        | Some b ->
            [ ("baseline_cycles", J.Int b);
              ("baseline_identical", J.Bool (b = d.d_cycles)) ])
    in
    print_endline
      (J.to_string
         (J.Obj
            [ ("bench", J.Str "faults");
              ("campaign", J.List (List.map asr_json r.r_asr));
              ("no_fault", J.List (List.map nofault_json r.r_nofault));
              ("mj_traps", J.List (List.map mj_json r.r_mj));
              ("disabled_path", J.List (List.map dis_json r.r_disabled)) ]))

  (* Smoke contract (wired into `dune runtest` via the faults-smoke
     alias): containment, determinism, retry absorption, trap classes,
     line-table reconciliation across a contained trap, and the
     cycle-identity of the supervisor-disabled path all hold. *)
  let check r =
    let failed = ref false in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          Printf.eprintf "FAIL %s\n" s;
          failed := true)
        fmt
    in
    List.iter
      (fun a ->
        if a.a_injected = 0 then
          fail "%s/%s: no fault was injected" a.a_workload a.a_policy;
        if not a.a_contained_ok then
          fail "%s/%s: a net outside the blast radius diverged" a.a_workload
            a.a_policy;
        if not a.a_deterministic then
          fail "%s/%s: same seed produced a different trace or fault log"
            a.a_workload a.a_policy;
        if a.a_first_only then begin
          if not a.a_fully_identical then
            fail "%s/%s: retry did not absorb the transient glitch"
              a.a_workload a.a_policy;
          if a.a_recovered = 0 then
            fail "%s/%s: no recovery recorded" a.a_workload a.a_policy
        end
        else if a.a_contained = 0 then
          fail "%s/%s: nothing was contained" a.a_workload a.a_policy)
      r.r_asr;
    if List.fold_left (fun acc a -> acc + a.a_checked) 0 r.r_asr = 0 then
      fail "containment property was vacuous: no net escaped every blast \
            radius";
    List.iter
      (fun (w, ok) ->
        if not ok then
          fail "%s: supervised no-fault run diverged from the unsupervised one"
            w)
      r.r_nofault;
    List.iter
      (fun m ->
        if m.m_contained = 0 then
          fail "mj %s/%s: trap was not contained" m.m_engine m.m_trap;
        if not m.m_class_ok then
          fail "mj %s/%s: contained fault has the wrong class" m.m_engine
            m.m_trap;
        if not m.m_reconciles then
          fail
            "mj %s/%s: line attribution does not reconcile with Cost.cycles \
             after a contained trap"
            m.m_engine m.m_trap;
        if not m.m_next_ok then
          fail "mj %s/%s: reaction did not resume once the pressure was lifted"
            m.m_engine m.m_trap)
      r.r_mj;
    List.iter
      (fun d ->
        if not d.d_budget_identical then
          fail "%s/%s: arming an ample budget changed modeled cycles"
            d.d_workload d.d_engine;
        if not d.d_heap_identical then
          fail "%s/%s: arming an ample heap limit changed modeled cycles"
            d.d_workload d.d_engine;
        match d.d_baseline with
        | Some b when b <> d.d_cycles ->
            fail "%s/%s: disabled path drifted from the committed baseline \
                  (%d -> %d)"
              d.d_workload d.d_engine b d.d_cycles
        | Some _ | None -> ())
      r.r_disabled;
    if !failed then exit 1

  let run ~json ~smoke ~baseline () =
    let r = reports ~smoke ~baseline () in
    if json then print_json r else print_text r;
    check r
end

(* ------------------------------------------------------------------ *)
(* Continuous monitor: always-on overhead vs the fused baseline,      *)
(* sketch accuracy against exact quantiles, shard-merge equivalence,  *)
(* snapshot reconciliation, flight-dump determinism on quarantine     *)
(* ------------------------------------------------------------------ *)

module Monitor_bench = struct
  module J = Telemetry.Json
  module M = Telemetry.Monitor
  module Sk = Telemetry.Sketch
  module R = Telemetry.Recorder
  module G = Asr.Graph
  module S = Asr.Supervisor
  module I = Asr.Inject

  (* ---- overhead: monitor-on vs monitor-off on the fusion xl rows --- *)

  type ov_row = {
    v_name : string;
    v_blocks : int;
    v_nets : int;
    v_instants : int;
    v_evals_off : int;
    v_evals_on : int;
    v_wall_off : float;
    v_wall_on : float;
    v_outputs_equal : bool;
    v_baseline_evals : int option;  (* fused evals from BENCH_fusion.json *)
    v_gate : bool;  (* row participates in the <= 5% wall gate *)
  }

  let overhead_bound_pct = 5.0

  (* Best-of-[passes] wall for both arms, with the arms' passes
     interleaved: the gate compares two nearly identical costs, so a GC
     pause, a scheduler hiccup or a seconds-scale load shift must hit
     both arms alike rather than decide the verdict. Each timed pass
     runs the stream [reps] times (wall reported per stream) — a single
     xl stream is only ~1ms of work, too short for a stable 5%
     verdict. Evaluations and outputs come from one untimed pass each,
     as in [Fusion_bench.measure]. *)
  let measure_pair g stream ~passes ~reps =
    let sim_off = Asr.Simulate.create ~strategy:Asr.Fixpoint.Fused g in
    let sim_on =
      Asr.Simulate.create ~strategy:Asr.Fixpoint.Fused ~monitor:(M.create ()) g
    in
    let arm sim =
      let outputs =
        List.map (fun inputs -> Asr.Simulate.step sim inputs) stream
      in
      let evals = Asr.Simulate.block_evaluations sim in
      Asr.Simulate.reset sim;
      (outputs, evals)
    in
    let off_out, off_evals = arm sim_off in
    let on_out, on_evals = arm sim_on in
    let timed sim =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        List.iter (fun inputs -> ignore (Asr.Simulate.step sim inputs)) stream;
        Asr.Simulate.reset sim
      done;
      let w = Unix.gettimeofday () -. t0 in
      w /. float_of_int reps
    in
    Gc.full_major ();
    let best_off = ref infinity and best_on = ref infinity in
    for p = 1 to passes do
      (* alternate which arm goes first so any cost a pass defers onto
         its successor (GC slices, cache refill) is charged evenly *)
      let w_off, w_on =
        if p land 1 = 0 then begin
          let w_off = timed sim_off in
          let w_on = timed sim_on in
          (w_off, w_on)
        end
        else begin
          let w_on = timed sim_on in
          let w_off = timed sim_off in
          (w_off, w_on)
        end
      in
      if w_off < !best_off then best_off := w_off;
      if w_on < !best_on then best_on := w_on
    done;
    ((off_out, off_evals, !best_off), (on_out, on_evals, !best_on))

  let overhead_row ?baseline ~gate name g ~instants ~passes ~reps =
    let compiled = G.compile g in
    let stream = Sched_bench.stimulus g ~instants in
    let (off_out, off_evals, off_wall), (on_out, on_evals, on_wall) =
      measure_pair g stream ~passes ~reps
    in
    { v_name = name;
      v_blocks = Array.length compiled.G.c_blocks;
      v_nets = compiled.G.n_nets;
      v_instants = instants;
      v_evals_off = off_evals;
      v_evals_on = on_evals;
      v_wall_off = off_wall;
      v_wall_on = on_wall;
      v_outputs_equal = off_out = on_out;
      v_baseline_evals =
        (match baseline with None -> None | Some lookup -> lookup ~name);
      v_gate = gate }

  (* --baseline BENCH_fusion.json: the committed fused evaluation counts
     the monitor-off path must reproduce exactly (full size only). *)
  let fusion_baseline path =
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let parsed =
      match J.parse text with
      | parsed -> parsed
      | exception J.Parse_error msg ->
          Printf.eprintf "cannot parse baseline %s: %s\n" path msg;
          exit 1
    in
    fun ~name ->
      match J.member "workloads" parsed with
      | Some (J.List rows) ->
          List.find_map
            (fun r ->
              match (J.member "name" r, J.member "strategies" r) with
              | Some (J.Str n), Some (J.List runs) when n = name ->
                  List.find_map
                    (fun run ->
                      match
                        (J.member "label" run, J.member "evaluations" run)
                      with
                      | Some (J.Str "fused"), Some (J.Int e) -> Some e
                      | _ -> None)
                    runs
              | _ -> None)
            rows
      | _ -> None

  let overhead ~smoke ~baseline () =
    let scale n small = if smoke then small else n in
    let lookup = Option.map fusion_baseline baseline in
    (* same topologies, sizes and stimulus as the fusion xl rows, so the
       baseline evaluation counts line up exactly *)
    [ overhead_row ?baseline:lookup ~gate:(not smoke) "fir-xl"
        (Sched_bench.fir_graph (scale 512 16))
        ~instants:(scale 200 20) ~passes:(scale 20 3) ~reps:(scale 5 1);
      overhead_row ?baseline:lookup ~gate:(not smoke) "jpeg-pipeline-xl"
        (Sched_bench.pipeline_graph (scale 320 12))
        ~instants:(scale 200 20) ~passes:(scale 20 3) ~reps:(scale 10 1) ]

  let overhead_pct v =
    if v.v_wall_off <= 0.0 then 0.0
    else 100.0 *. (v.v_wall_on -. v.v_wall_off) /. v.v_wall_off

  (* ---- sketch accuracy and shard-merge equivalence on generated nets *)

  type q_row = { q_q : float; q_exact : float; q_est : float; q_rel : float }

  type acc_row = {
    k_name : string;
    k_blocks : int;
    k_instants : int;
    k_stream : string;  (* which per-instant measurement *)
    k_alpha : float;
    k_count : int;
    k_quantiles : q_row list;
    k_within_bound : bool;
  }

  type mg_row = {
    g_name : string;
    g_shards : int;
    g_values : int;
    g_equal : bool;  (* Sketch.equal: merged shards vs single sketch *)
    g_quantiles_identical : bool;
  }

  (* Monitored run of a generated net with [recorder_capacity = instants]
     and [churn_every = 1]: the flight ring then retains the exact
     per-instant streams the sketches summarized, so exact quantiles
     need no side channel. *)
  let netgen_run ~size ~instants =
    let width = min size 25 in
    let depth = max 1 (size / width) in
    let g =
      Workloads.Netgen.generate ~inputs:4 ~delays:4 ~cyclic_ratio:0.04
        ~seed:(911 + size) ~depth ~width ()
    in
    let compiled = G.compile g in
    let mon = M.create ~recorder_capacity:(max 1 instants) ~churn_every:1 () in
    let sim = Asr.Simulate.create ~strategy:Asr.Fixpoint.Fused ~monitor:mon g in
    List.iter
      (fun inputs -> ignore (Asr.Simulate.step sim inputs))
      (Workloads.Netgen.stimulus g ~instants);
    (Array.length compiled.G.c_blocks, mon, R.records (M.recorder mon))

  (* the value at rank floor(q * (count - 1)) — the same rank convention
     [Sketch.quantile] documents *)
  let exact_quantile sorted q =
    sorted.(int_of_float (q *. float_of_int (Array.length sorted - 1)))

  let quantile_probes = [ 0.5; 0.95; 0.99 ]

  let accuracy_check ~name ~blocks ~instants ~stream sk values =
    let sorted = Array.of_list values in
    Array.sort compare sorted;
    let sorted = Array.map float_of_int sorted in
    let quantiles =
      List.map
        (fun q ->
          let exact = exact_quantile sorted q in
          let est = Sk.quantile sk q in
          let rel =
            if exact = 0.0 then if est = 0.0 then 0.0 else infinity
            else Float.abs (est -. exact) /. exact
          in
          { q_q = q; q_exact = exact; q_est = est; q_rel = rel })
        quantile_probes
    in
    let alpha = Sk.alpha sk in
    { k_name = name;
      k_blocks = blocks;
      k_instants = instants;
      k_stream = stream;
      k_alpha = alpha;
      k_count = Sk.count sk;
      k_quantiles = quantiles;
      k_within_bound =
        Sk.count sk = List.length values
        && List.for_all (fun r -> r.q_rel <= alpha +. 1e-9) quantiles }

  let merge_shards = 4

  let merge_check ~name values =
    let single = Sk.create () in
    List.iter (Sk.add single) values;
    let parts = Array.init merge_shards (fun _ -> Sk.create ()) in
    List.iteri (fun i v -> Sk.add parts.(i mod merge_shards) v) values;
    let merged = Sk.create () in
    Array.iter (fun p -> Sk.merge ~into:merged p) parts;
    { g_name = name;
      g_shards = merge_shards;
      g_values = List.length values;
      g_equal = Sk.equal merged single;
      g_quantiles_identical =
        List.for_all
          (fun q -> Sk.quantile merged q = Sk.quantile single q)
          [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ] }

  let scaling ~smoke () =
    let sizes = if smoke then [ 50 ] else [ 100; 1_000; 10_000 ] in
    let instants = if smoke then 10 else 100 in
    List.fold_left
      (fun (accs, merges) size ->
        let blocks, mon, records = netgen_run ~size ~instants in
        let name = Printf.sprintf "netgen-%d" blocks in
        let evals = List.map (fun r -> r.R.r_block_evals) records in
        let churn = List.map (fun r -> r.R.r_net_churn) records in
        (* end-to-end: the monitor's own evals sketch vs the exact
           stream it was fed; plus a churn sketch built here, covering a
           stream with zeros and a different dynamic range *)
        let churn_sk = Sk.create () in
        List.iter (fun c -> Sk.add churn_sk (float_of_int c)) churn;
        let acc_evals =
          accuracy_check ~name ~blocks ~instants ~stream:"block_evals"
            (M.evals mon) evals
        in
        let acc_churn =
          accuracy_check ~name ~blocks ~instants ~stream:"net_churn" churn_sk
            churn
        in
        let merge =
          merge_check ~name
            (List.concat_map
               (fun r ->
                 [ float_of_int r.R.r_block_evals;
                   float_of_int r.R.r_net_churn;
                   float_of_int r.R.r_iterations ])
               records)
        in
        (accs @ [ acc_evals; acc_churn ], merges @ [ merge ]))
      ([], []) sizes

  (* ---- snapshot reconciliation ------------------------------------- *)

  type snap_row = {
    p_workload : string;
    p_instants : int;
    p_snapshots : int;
    p_lines_valid : bool;  (* every NDJSON line parses back *)
    p_monotone_ok : bool;  (* cumulative counters never decrease *)
    p_reconciles : bool;  (* monitor cumulatives == registry totals *)
  }

  let snapshot_row ~smoke () =
    let taps = if smoke then 8 else 32 in
    let instants = if smoke then 16 else 80 in
    let g = Sched_bench.fir_graph taps in
    let compiled = G.compile g in
    let specs =
      I.plan ~seed:77
        ~n_blocks:(Array.length compiled.G.c_blocks)
        ~instants ~n_faults:2 ~first_only:false ()
    in
    let inj = I.make specs in
    let reg = Telemetry.Registry.create () in
    let sup = S.create ~policy:S.Hold_last ~telemetry:reg () in
    let lines = ref [] in
    let mon =
      M.create ~snapshot_every:8 ~snapshot_sink:(fun l -> lines := l :: !lines)
        ()
    in
    let sim =
      Asr.Simulate.create ~strategy:Asr.Fixpoint.Fused ~telemetry:reg
        ~supervisor:sup ~monitor:mon (I.instrument inj g)
    in
    List.iter
      (fun inputs ->
        ignore (Asr.Simulate.step sim inputs);
        I.tick inj)
      (Sched_bench.stimulus g ~instants);
    let lines = List.rev !lines in
    let parsed =
      List.map (fun l -> try Some (J.parse l) with J.Parse_error _ -> None) lines
    in
    let ints key j =
      match J.member key j with Some (J.Int n) -> n | _ -> -1
    in
    let monotone =
      let rec go prev = function
        | [] -> true
        | Some j :: rest ->
            let cur =
              (ints "instants" j, ints "block_evaluations" j, ints "faults" j)
            in
            cur >= prev && go cur rest
        | None :: _ -> false
      in
      go (0, 0, 0) parsed
    in
    let cval name = (Telemetry.Registry.counter reg name).Telemetry.Registry.c_value in
    { p_workload = Printf.sprintf "fir%d" taps;
      p_instants = instants;
      p_snapshots = M.snapshots_emitted mon;
      p_lines_valid =
        List.length lines = M.snapshots_emitted mon
        && List.for_all Option.is_some parsed;
      p_monotone_ok = monotone;
      p_reconciles =
        M.instants mon = instants
        && cval "asr.instants" = instants
        && M.cum_block_evals mon = cval "asr.block_evaluations"
        && M.cum_faults mon = cval "asr.supervisor.faults"
        && M.cum_faults mon > 0 }

  (* ---- flight-dump determinism on quarantine escalation ------------ *)

  type dump_row = {
    f_workload : string;
    f_escalate_after : int;
    f_quarantine_ok : bool;  (* the watchdog actually escalated *)
    f_dump_deterministic : bool;  (* fixed seed => bit-identical dumps *)
    f_covers_streak_ok : bool;  (* dump spans the K faulty instants *)
  }

  let dump_run ~taps ~instants ~escalate_after =
    let g = Sched_bench.fir_graph taps in
    (* one persistent trap: faults every instant from 5 on, so the
       watchdog escalates after exactly [escalate_after] instants *)
    let inj =
      I.make
        [ { I.i_block = 3;
            i_kind = I.Trap;
            i_instant = 5;
            i_persistence = I.Persistent;
            i_first_only = false } ]
    in
    let sup = S.create ~policy:S.Hold_last ~escalate_after () in
    let dumps = ref [] in
    let mon = M.create ~dump_sink:(fun d -> dumps := d :: !dumps) () in
    let sim =
      Asr.Simulate.create ~strategy:Asr.Fixpoint.Fused ~supervisor:sup
        ~monitor:mon (I.instrument inj g)
    in
    List.iter
      (fun inputs ->
        ignore (Asr.Simulate.step sim inputs);
        I.tick inj)
      (Sched_bench.stimulus g ~instants);
    (mon, List.rev_map J.to_string !dumps)

  let dump_row ~smoke () =
    let taps = if smoke then 8 else 32 in
    let instants = if smoke then 12 else 40 in
    let escalate_after = 3 in
    let mon, dumps = dump_run ~taps ~instants ~escalate_after in
    let _, dumps2 = dump_run ~taps ~instants ~escalate_after in
    let faulty_records =
      List.length
        (List.filter (fun r -> r.R.r_faults > 0) (R.records (M.recorder mon)))
    in
    let quarantined =
      List.exists
        (fun h -> h.M.h_quarantined && h.M.h_max_streak >= escalate_after)
        (M.health mon)
    in
    { f_workload = Printf.sprintf "fir%d" taps;
      f_escalate_after = escalate_after;
      f_quarantine_ok = quarantined && M.last_dump mon <> None;
      f_dump_deterministic = dumps <> [] && dumps = dumps2;
      f_covers_streak_ok = faulty_records >= escalate_after }

  (* ---- report ------------------------------------------------------ *)

  type report = {
    r_overhead : ov_row list;
    r_accuracy : acc_row list;
    r_merge : mg_row list;
    r_snapshot : snap_row list;
    r_dump : dump_row list;
  }

  let reports ~smoke ~baseline () =
    let accuracy, merge = scaling ~smoke () in
    { r_overhead = overhead ~smoke ~baseline ();
      r_accuracy = accuracy;
      r_merge = merge;
      r_snapshot = [ snapshot_row ~smoke () ];
      r_dump = [ dump_row ~smoke () ] }

  let print_text r =
    print_endline
      "Continuous monitor: bounded-memory observability at fused-path cost";
    print_newline ();
    List.iter
      (fun v ->
        Printf.printf
          "  %-18s %5d blocks %5d nets %4d instants  off %.6fs on %.6fs \
           (%+.2f%%)  outputs %s  evals %s%s\n"
          v.v_name v.v_blocks v.v_nets v.v_instants v.v_wall_off v.v_wall_on
          (overhead_pct v)
          (if v.v_outputs_equal then "identical" else "DIVERGED (BUG)")
          (if v.v_evals_off = v.v_evals_on then "identical" else "CHANGED (BUG)")
          (match v.v_baseline_evals with
          | None -> ""
          | Some b when b = v.v_evals_off -> "  baseline identical"
          | Some b -> Printf.sprintf "  BASELINE DRIFT (%d)" b))
      r.r_overhead;
    print_newline ();
    List.iter
      (fun k ->
        Printf.printf "  %-14s %-12s alpha %.3f  %4d values  %s\n" k.k_name
          k.k_stream k.k_alpha k.k_count
          (if k.k_within_bound then "within bound" else "OUT OF BOUND (BUG)");
        List.iter
          (fun q ->
            Printf.printf "      p%-4g exact %10.1f  est %12.2f  rel %.5f\n"
              (100.0 *. q.q_q) q.q_exact q.q_est q.q_rel)
          k.k_quantiles)
      r.r_accuracy;
    print_newline ();
    List.iter
      (fun m ->
        Printf.printf
          "  merge %-14s %d shards over %5d values: %s, quantiles %s\n"
          m.g_name m.g_shards m.g_values
          (if m.g_equal then "bucket-identical" else "DIVERGED (BUG)")
          (if m.g_quantiles_identical then "identical" else "DIVERGED (BUG)"))
      r.r_merge;
    List.iter
      (fun p ->
        Printf.printf
          "  snapshots %-10s %d instants, %d emitted: %s, %s, %s\n"
          p.p_workload p.p_instants p.p_snapshots
          (if p.p_lines_valid then "all parse" else "UNPARSEABLE (BUG)")
          (if p.p_monotone_ok then "monotone" else "NON-MONOTONE (BUG)")
          (if p.p_reconciles then "reconcile with registry"
           else "DRIFT (BUG)"))
      r.r_snapshot;
    List.iter
      (fun f ->
        Printf.printf
          "  flight    %-10s escalate after %d: quarantine %s, dump %s, \
           streak %s\n"
          f.f_workload f.f_escalate_after
          (if f.f_quarantine_ok then "fired" else "MISSING (BUG)")
          (if f.f_dump_deterministic then "deterministic"
           else "NONDETERMINISTIC (BUG)")
          (if f.f_covers_streak_ok then "covered" else "NOT COVERED (BUG)"))
      r.r_dump

  let print_json r =
    let ov_json v =
      J.Obj
        ([ ("workload", J.Str v.v_name);
           ("blocks", J.Int v.v_blocks);
           ("nets", J.Int v.v_nets);
           ("instants", J.Int v.v_instants);
           ("evaluations_off", J.Int v.v_evals_off);
           ("evaluations_on", J.Int v.v_evals_on);
           ("wall_off_s", J.Float v.v_wall_off);
           ("wall_on_s", J.Float v.v_wall_on);
           ("overhead_pct", J.Float (overhead_pct v));
           ("outputs_equal", J.Bool v.v_outputs_equal);
           ("evals_identical", J.Bool (v.v_evals_off = v.v_evals_on));
           ( "overhead_within_bound",
             J.Bool ((not v.v_gate) || overhead_pct v <= overhead_bound_pct) )
         ]
        @
        match v.v_baseline_evals with
        | None -> []
        | Some b ->
            [ ("baseline_evaluations", J.Int b);
              ("baseline_identical", J.Bool (b = v.v_evals_off)) ])
    in
    let acc_json k =
      J.Obj
        [ ("workload", J.Str k.k_name);
          ("label", J.Str k.k_stream);
          ("blocks", J.Int k.k_blocks);
          ("instants", J.Int k.k_instants);
          ("alpha", J.Float k.k_alpha);
          ("values", J.Int k.k_count);
          ( "quantiles",
            J.List
              (List.map
                 (fun q ->
                   J.Obj
                     [ ("q", J.Float q.q_q);
                       ("exact", J.Float q.q_exact);
                       ("estimate", J.Float q.q_est);
                       ("rel_err", J.Float q.q_rel) ])
                 k.k_quantiles) );
          ("within_bound", J.Bool k.k_within_bound) ]
    in
    let mg_json m =
      J.Obj
        [ ("workload", J.Str m.g_name);
          ("shards", J.Int m.g_shards);
          ("values", J.Int m.g_values);
          ("merge_equal", J.Bool m.g_equal);
          ("quantiles_identical", J.Bool m.g_quantiles_identical) ]
    in
    let snap_json p =
      J.Obj
        [ ("workload", J.Str p.p_workload);
          ("instants", J.Int p.p_instants);
          ("snapshots", J.Int p.p_snapshots);
          ("lines_valid", J.Bool p.p_lines_valid);
          ("monotone_ok", J.Bool p.p_monotone_ok);
          ("reconciles", J.Bool p.p_reconciles) ]
    in
    let dump_json f =
      J.Obj
        [ ("workload", J.Str f.f_workload);
          ("escalate_after", J.Int f.f_escalate_after);
          ("quarantine_ok", J.Bool f.f_quarantine_ok);
          ("dump_deterministic", J.Bool f.f_dump_deterministic);
          ("covers_streak_ok", J.Bool f.f_covers_streak_ok) ]
    in
    print_endline
      (J.to_string
         (J.Obj
            [ ("bench", J.Str "monitor");
              ("overhead", J.List (List.map ov_json r.r_overhead));
              ("sketch_accuracy", J.List (List.map acc_json r.r_accuracy));
              ("merge", J.List (List.map mg_json r.r_merge));
              ("snapshots", J.List (List.map snap_json r.r_snapshot));
              ("flight", J.List (List.map dump_json r.r_dump)) ]))

  (* Smoke contract (wired into `dune runtest` via the monitor-smoke
     alias): monitoring never changes outputs or evaluation counts,
     sketch quantiles respect the relative-error bound against exact
     quantiles, shard merges are bucket-identical to a single sketch,
     snapshots parse and reconcile with the registry, and quarantine
     dumps are deterministic and cover the faulty streak. The <= 5%
     wall gate runs full size only — smoke-scaled instants are all
     bookkeeping. *)
  let check ~smoke r =
    let failed = ref false in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          Printf.eprintf "FAIL %s\n" s;
          failed := true)
        fmt
    in
    List.iter
      (fun v ->
        if not v.v_outputs_equal then
          fail "%s: monitoring changed the simulation outputs" v.v_name;
        if v.v_evals_off <> v.v_evals_on then
          fail "%s: monitoring changed block evaluations (%d -> %d)" v.v_name
            v.v_evals_off v.v_evals_on;
        (match v.v_baseline_evals with
        | Some b when b <> v.v_evals_off ->
            fail "%s: monitor-off path drifted from the committed fusion \
                  baseline (%d -> %d)"
              v.v_name b v.v_evals_off
        | Some _ | None -> ());
        if (not smoke) && v.v_gate && overhead_pct v > overhead_bound_pct then
          fail "%s: monitor overhead %.2f%% > %.0f%%" v.v_name (overhead_pct v)
            overhead_bound_pct)
      r.r_overhead;
    List.iter
      (fun k ->
        if not k.k_within_bound then
          fail "%s/%s: sketch quantile outside the %.3f relative-error bound"
            k.k_name k.k_stream k.k_alpha)
      r.r_accuracy;
    List.iter
      (fun m ->
        if not (m.g_equal && m.g_quantiles_identical) then
          fail "%s: merged shards differ from the single sketch" m.g_name)
      r.r_merge;
    List.iter
      (fun p ->
        if not p.p_lines_valid then
          fail "%s: a snapshot line did not parse back" p.p_workload;
        if not p.p_monotone_ok then
          fail "%s: snapshot cumulative counters decreased" p.p_workload;
        if not p.p_reconciles then
          fail "%s: monitor cumulatives drifted from the telemetry registry"
            p.p_workload)
      r.r_snapshot;
    List.iter
      (fun f ->
        if not f.f_quarantine_ok then
          fail "%s: watchdog escalation did not produce a quarantine dump"
            f.f_workload;
        if not f.f_dump_deterministic then
          fail "%s: fixed-seed reruns produced different flight dumps"
            f.f_workload;
        if not f.f_covers_streak_ok then
          fail "%s: flight dump does not cover the %d faulty instants"
            f.f_workload f.f_escalate_after)
      r.r_dump;
    if !failed then exit 1

  let run ~json ~smoke ~baseline () =
    let r = reports ~smoke ~baseline () in
    if json then print_json r else print_text r;
    check ~smoke r
end

(* ------------------------------------------------------------------ *)
(* Refinement-checking coverage: VC discharge over the FIR and JPEG    *)
(* refinement chains, trace correspondence under seeded schedules,     *)
(* and the mutation gate (a deliberately broken transform must be      *)
(* rejected by its verification conditions).                           *)
(* ------------------------------------------------------------------ *)

module Refinement_bench = struct
  module J = Telemetry.Json
  module V = Javatime.Verify

  type row = {
    f_workload : string;
    f_cls : string;
    f_steps : int;
    f_transforms : string list;
    f_discharged : int;
    f_failed : int;
    f_schedules : int;
    f_instants : int;
    f_strategies : string list;
    f_checked : int;
    f_corr_failures : string list;
  }

  type report = { rows : row list; mutation_vcs_failed : int }

  let workloads ~smoke () =
    let scale n small = if smoke then small else n in
    [ ( "fir", Workloads.Fir_mj.unrestricted_source, "FirFilter",
        scale 120 6, scale 8 2 );
      ( "jpeg",
        Workloads.Jpeg_mj.unrestricted_source ~width:16 ~height:8 (),
        "JpegCodec", scale 120 6, scale 4 2 ) ]

  let row (name, source, cls, schedules, instants) =
    let program = Mj.Parser.parse_program ~file:(name ^ ".mj") source in
    let report, _ = V.check_program program in
    let corr = V.trace_correspondence ~schedules ~instants program ~cls in
    { f_workload = name;
      f_cls = cls;
      f_steps = List.length report.V.v_steps;
      f_transforms = List.map (fun s -> s.V.s_transform) report.V.v_steps;
      f_discharged = report.V.v_discharged;
      f_failed = report.V.v_failed;
      f_schedules = corr.V.c_schedules;
      f_instants = corr.V.c_instants;
      f_strategies = corr.V.c_strategies;
      f_checked = corr.V.c_checked;
      f_corr_failures = corr.V.c_failures }

  (* Mutation gate: a while->for that leaves the update statement in
     the body while also installing it as the for-update (so it runs
     twice per iteration) must fail its verification conditions. *)
  let mk d = { Mj.Ast.stmt = d; sloc = Mj.Loc.dummy }

  let broken_while_to_for =
    { Javatime.Transforms.id = "while-to-for";
      description = "broken while->for (update applied twice)";
      apply =
        (fun checked ->
          let count = ref 0 in
          let rewrite s =
            match s.Mj.Ast.stmt with
            | Mj.Ast.While (cond, body) -> (
                let stmts =
                  match body.Mj.Ast.stmt with
                  | Mj.Ast.Block l -> l
                  | _ -> [ body ]
                in
                match List.rev stmts with
                | { Mj.Ast.stmt = Mj.Ast.Expr u; _ } :: _ ->
                    incr count;
                    mk
                      (Mj.Ast.For
                         (None, Some cond, Some u, mk (Mj.Ast.Block stmts)))
                | _ -> s)
            | _ -> s
          in
          let program =
            Javatime.Rewrite.map_program_bodies
              (fun ~cls:_ stmts -> List.map rewrite stmts)
              checked.Mj.Typecheck.program
          in
          (program, !count)) }

  let mutation_vcs_failed () =
    let program =
      Mj.Parser.parse_program ~file:"fir.mj" Workloads.Fir_mj.unrestricted_source
    in
    let catalogue =
      List.map
        (fun t ->
          if String.equal t.Javatime.Transforms.id "while-to-for" then
            broken_while_to_for
          else t)
        Javatime.Transforms.catalogue
    in
    let report, _ = V.check_program ~catalogue program in
    let violations = V.violations_of_report report in
    if List.for_all Policy.Rule.is_blocking violations then
      List.length violations
    else 0

  let reports ~smoke () =
    { rows = List.map row (workloads ~smoke ());
      mutation_vcs_failed = mutation_vcs_failed () }

  let print_text r =
    List.iter
      (fun w ->
        Printf.printf
          "  %-6s %s: %d step(s) [%s], %d VC(s) discharged, %d failed\n"
          w.f_workload w.f_cls w.f_steps
          (String.concat " " w.f_transforms)
          w.f_discharged w.f_failed;
        Printf.printf
          "         %d schedule(s) x %d instant(s), strategies [%s]: %d \
           checked, %d correspondence failure(s)\n"
          w.f_schedules w.f_instants
          (String.concat " " w.f_strategies)
          w.f_checked
          (List.length w.f_corr_failures);
        List.iter
          (fun f -> Printf.printf "         FAIL %s\n" f)
          w.f_corr_failures)
      r.rows;
    Printf.printf
      "  mutation gate: broken while->for rejected with %d blocking VC \
       violation(s)\n"
      r.mutation_vcs_failed

  let print_json r =
    let row_json w =
      J.Obj
        [ ("workload", J.Str w.f_workload);
          ("class", J.Str w.f_cls);
          ("transform_steps", J.Int w.f_steps);
          ("transforms", J.List (List.map (fun t -> J.Str t) w.f_transforms));
          ("vcs_discharged", J.Int w.f_discharged);
          ("vcs_failed", J.Int w.f_failed);
          ("vc_ok", J.Bool (w.f_failed = 0));
          ("schedules_explored", J.Int w.f_schedules);
          ("instants", J.Int w.f_instants);
          ("strategies", J.List (List.map (fun s -> J.Str s) w.f_strategies));
          ("correspondences_checked", J.Int w.f_checked);
          ("correspondence_ok", J.Bool (w.f_corr_failures = [])) ]
    in
    print_endline
      (J.to_string
         (J.Obj
            [ ("bench", J.Str "refinement");
              ("workloads", J.List (List.map row_json r.rows));
              ("mutation_vcs_failed", J.Int r.mutation_vcs_failed);
              ("mutation_rejected_ok", J.Bool (r.mutation_vcs_failed > 0)) ]))

  (* Smoke contract (refinement-smoke alias in `dune runtest`): every
     transform the engine applied discharges its VCs, every explored
     schedule's abstracted trace refines the deterministic stream, and
     the broken transform is rejected. *)
  let check ~smoke r =
    let failed = ref false in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          Printf.eprintf "FAIL %s\n" s;
          failed := true)
        fmt
    in
    List.iter
      (fun w ->
        if w.f_steps = 0 then
          fail "%s: the engine applied no transform" w.f_workload;
        if w.f_discharged = 0 then
          fail "%s: no verification condition was discharged" w.f_workload;
        if w.f_failed > 0 then
          fail "%s: %d verification condition(s) failed" w.f_workload w.f_failed;
        if w.f_corr_failures <> [] then
          fail "%s: %d correspondence failure(s)" w.f_workload
            (List.length w.f_corr_failures);
        if (not smoke) && w.f_schedules < 100 then
          fail "%s: only %d schedules explored (>= 100 required)" w.f_workload
            w.f_schedules)
      r.rows;
    if r.mutation_vcs_failed = 0 then
      fail "mutation gate: the broken transform was not rejected";
    if !failed then exit 1

  let run ~json ~smoke () =
    let r = reports ~smoke () in
    if json then print_json r else print_text r;
    check ~smoke r
end

(* ------------------------------------------------------------------ *)
(* Causal tracing: recording overhead on the fused xl rows (the        *)
(* disabled path must stay cycle-identical to the committed fusion     *)
(* baseline; the traced path is measured and reported honestly),       *)
(* why-provenance slice sizes on generated nets up to 1e4 blocks       *)
(* under the bounded ring, first-divergence localization of seeded     *)
(* block mutations, and bit-identical record/replay across every       *)
(* strategy and containment policy, injected campaigns included.       *)
(* ------------------------------------------------------------------ *)

module Causal_bench = struct
  module J = Telemetry.Json
  module C = Telemetry.Causal
  module G = Asr.Graph
  module B = Asr.Block
  module D = Asr.Domain
  module T = Asr.Trace
  module F = Asr.Fixpoint
  module S = Asr.Supervisor
  module I = Asr.Inject

  (* ---- overhead: causal-off vs causal-on on the fusion xl rows ----- *)

  type ov_row = {
    v_name : string;
    v_blocks : int;
    v_nets : int;
    v_instants : int;
    v_evals_off : int;
    v_evals_on : int;
    v_wall_off : float;
    v_wall_on : float;
    v_outputs_equal : bool;
    v_events_pushed : int;  (* causal events pushed over one stream *)
    v_overwrites : int;  (* ring evictions over one stream *)
    v_baseline_evals : int option;  (* fused evals from BENCH_fusion.json *)
  }

  (* Same interleaved best-of-[passes] protocol as
     [Monitor_bench.measure_pair]; the on arm records every evaluation
     into a default-capacity causal ring. Unlike the monitor's counter
     increments, full event capture (reads resolution + write arrays per
     evaluation) is NOT expected to fit a 5% envelope on these
     tiny-kernel nets — the traced wall is reported, not gated. The
     hard gates are on the off arm: evaluations and outputs identical
     to the traced arm, and cycle-identical to the committed fusion
     baseline (tracing disabled costs one [None] match per instant). *)
  let measure_pair g stream ~passes ~reps =
    let compiled = G.compile g in
    let sim_off = Asr.Simulate.create ~strategy:Asr.Fixpoint.Fused g in
    let cz = C.create ~n_nets:compiled.G.n_nets () in
    let sim_on =
      Asr.Simulate.create ~strategy:Asr.Fixpoint.Fused ~causal:cz g
    in
    let arm sim =
      let outputs =
        List.map (fun inputs -> Asr.Simulate.step sim inputs) stream
      in
      let evals = Asr.Simulate.block_evaluations sim in
      Asr.Simulate.reset sim;
      (outputs, evals)
    in
    let off_out, off_evals = arm sim_off in
    let on_out, on_evals = arm sim_on in
    let pushed = C.pushed cz and overwrites = C.overwrites cz in
    let timed sim =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        List.iter (fun inputs -> ignore (Asr.Simulate.step sim inputs)) stream;
        Asr.Simulate.reset sim
      done;
      let w = Unix.gettimeofday () -. t0 in
      w /. float_of_int reps
    in
    Gc.full_major ();
    let best_off = ref infinity and best_on = ref infinity in
    for p = 1 to passes do
      let w_off, w_on =
        if p land 1 = 0 then begin
          let w_off = timed sim_off in
          let w_on = timed sim_on in
          (w_off, w_on)
        end
        else begin
          let w_on = timed sim_on in
          let w_off = timed sim_off in
          (w_off, w_on)
        end
      in
      if w_off < !best_off then best_off := w_off;
      if w_on < !best_on then best_on := w_on
    done;
    ((off_out, off_evals, !best_off), (on_out, on_evals, !best_on),
     (pushed, overwrites))

  let overhead_row ?baseline name g ~instants ~passes ~reps =
    let compiled = G.compile g in
    let stream = Sched_bench.stimulus g ~instants in
    let (off_out, off_evals, off_wall), (on_out, on_evals, on_wall),
        (pushed, overwrites) =
      measure_pair g stream ~passes ~reps
    in
    { v_name = name;
      v_blocks = Array.length compiled.G.c_blocks;
      v_nets = compiled.G.n_nets;
      v_instants = instants;
      v_evals_off = off_evals;
      v_evals_on = on_evals;
      v_wall_off = off_wall;
      v_wall_on = on_wall;
      v_outputs_equal = off_out = on_out;
      v_events_pushed = pushed;
      v_overwrites = overwrites;
      v_baseline_evals =
        (match baseline with None -> None | Some lookup -> lookup ~name) }

  let overhead ~smoke ~baseline () =
    let scale n small = if smoke then small else n in
    let lookup = Option.map Monitor_bench.fusion_baseline baseline in
    (* the fusion xl topologies, sizes and stimulus, so the committed
       fused evaluation counts line up exactly *)
    [ overhead_row ?baseline:lookup "fir-xl"
        (Sched_bench.fir_graph (scale 512 16))
        ~instants:(scale 200 20) ~passes:(scale 20 3) ~reps:(scale 5 1);
      overhead_row ?baseline:lookup "jpeg-pipeline-xl"
        (Sched_bench.pipeline_graph (scale 320 12))
        ~instants:(scale 200 20) ~passes:(scale 20 3) ~reps:(scale 10 1) ]

  let overhead_traced_pct v =
    if v.v_wall_off <= 0.0 then 0.0
    else 100.0 *. (v.v_wall_on -. v.v_wall_off) /. v.v_wall_off

  (* ---- why-provenance slice sizes under the bounded ring ----------- *)

  type sl_row = {
    s_name : string;
    s_blocks : int;
    s_nets : int;
    s_instants : int;
    s_pushed : int;
    s_overwrites : int;
    s_checked : int;  (* slices computed *)
    s_mean : float;  (* mean events per slice *)
    s_max : int;
    s_truncated : int;  (* slices that crossed the retention horizon *)
    s_roots_ok : bool;
        (* every slice agrees with the recorded fixed point: a Def net
           resolves its establishing event (or reports truncation), a ⊥
           net reports no establishing value *)
  }

  let slice_row ~size ~instants =
    let width = min size 25 in
    let depth = max 1 (size / width) in
    let g =
      Workloads.Netgen.generate ~inputs:4 ~delays:4 ~cyclic_ratio:0.04
        ~seed:(1311 + size) ~depth ~width ()
    in
    let compiled = G.compile g in
    let t =
      T.record ~strategy:F.Fused g (Workloads.Netgen.stimulus g ~instants)
    in
    let out_nets =
      match T.outputs t with
      | [] -> []
      | first :: _ -> List.filter_map (fun (n, _) -> T.output_net t n) first
    in
    let last = T.instants t - 1 in
    let probes =
      List.concat_map
        (fun di ->
          if last - di < 0 then []
          else List.map (fun net -> (net, last - di)) out_nets)
        [ 0; 1; 2 ]
    in
    let slices =
      List.map
        (fun (net, instant) ->
          let recorded =
            match T.nets_at t instant with
            | Some nets -> nets.(net)
            | None -> D.Bottom
          in
          (T.why t ~net ~instant, recorded))
        probes
    in
    let sizes =
      List.map (fun (sl, _) -> List.length sl.C.sl_events) slices
    in
    let checked = List.length slices in
    let overwrites, _ = T.data_loss t in
    { s_name = Printf.sprintf "netgen-%d" (Array.length compiled.G.c_blocks);
      s_blocks = Array.length compiled.G.c_blocks;
      s_nets = compiled.G.n_nets;
      s_instants = T.instants t;
      s_pushed = overwrites + List.length (T.events t);
      s_overwrites = overwrites;
      s_checked = checked;
      s_mean =
        (if checked = 0 then 0.0
         else
           float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int checked);
      s_max = List.fold_left max 0 sizes;
      s_truncated =
        List.length (List.filter (fun (sl, _) -> sl.C.sl_truncated) slices);
      s_roots_ok =
        checked > 0
        && List.for_all
             (fun (sl, recorded) ->
               match recorded with
               | D.Bottom -> sl.C.sl_value = None
               | D.Def _ -> sl.C.sl_root >= 0 || sl.C.sl_truncated)
             slices }

  let slice_rows ~smoke () =
    let sizes = if smoke then [ 50 ] else [ 100; 1_000; 10_000 ] in
    let instants = if smoke then 8 else 20 in
    List.map (fun size -> slice_row ~size ~instants) sizes

  (* ---- first-divergence localization of seeded mutations ----------- *)

  type loc_row = {
    l_name : string;
    l_blocks : int;
    l_mutated : int;  (* corrupted compiled block index *)
    l_instant : int;  (* localized divergence instant *)
    l_net : int;
    l_localized : bool;  (* localizer blamed exactly the mutated block *)
  }

  (* Off-by-one every Int output of one block — the canonical silent
     data corruption a bit flip or a wrong-constant patch produces. *)
  let corrupt g ~target =
    G.map_blocks g (fun bi b ->
        if bi <> target then b
        else
          { b with
            B.fn =
              (fun ins ->
                Array.map
                  (function
                    | D.Def (Asr.Data.Int v) -> D.Def (Asr.Data.Int (v + 1))
                    | x -> x)
                  (b.B.fn ins)) })

  let localize_row ~seed ~instants =
    let g =
      Workloads.Netgen.generate ~inputs:3 ~delays:2 ~cyclic_ratio:0.1 ~seed
        ~depth:6 ~width:8 ()
    in
    let compiled = G.compile g in
    let n_blocks = Array.length compiled.G.c_blocks in
    let stream = Workloads.Netgen.stimulus g ~instants in
    let reference = T.record ~strategy:F.Fused g stream in
    (* walk candidate targets from a seeded start until one whose
       corruption actually perturbs the run (Bool-valued cells shrug
       off an Int offset), then demand the localizer blame exactly it *)
    let start = seed mod n_blocks in
    let rec hunt k =
      if k >= n_blocks then
        { l_name = Printf.sprintf "netgen-seed%d" seed;
          l_blocks = n_blocks;
          l_mutated = -1;
          l_instant = -1;
          l_net = -1;
          l_localized = false }
      else
        let target = (start + k) mod n_blocks in
        let mutated = T.record ~strategy:F.Fused (corrupt g ~target) stream in
        match T.first_divergence reference mutated with
        | None -> hunt (k + 1)
        | Some d ->
            { l_name = Printf.sprintf "netgen-seed%d" seed;
              l_blocks = n_blocks;
              l_mutated = target;
              l_instant = d.T.d_instant;
              l_net = d.T.d_net;
              l_localized =
                d.T.d_block = target
                && d.T.d_slice_a <> None
                && d.T.d_slice_b <> None }
    in
    hunt 0

  let localize_rows ~smoke () =
    let seeds = if smoke then [ 31 ] else [ 31; 32; 33 ] in
    let instants = if smoke then 6 else 8 in
    List.map (fun seed -> localize_row ~seed ~instants) seeds

  (* ---- bit-identical record/replay across strategies and policies -- *)

  type rp_row = {
    p_strategy : string;
    p_policy : string;  (* "none" or the containment policy *)
    p_injected : int;  (* faults drawn into the campaign plan *)
    p_instants : int;  (* instants the recorded run completed *)
    p_aborted : bool;  (* Fail_fast cut the run short *)
    p_replay_identical : bool;
    p_serialization_identical : bool;
  }

  let replay_row g stream ~strategy ?policy ?inject () =
    let t = T.record ~strategy ?policy ?inject ~seed:17 g stream in
    { p_strategy = F.strategy_name strategy;
      p_policy =
        (match policy with None -> "none" | Some p -> S.policy_name p);
      p_injected = (match inject with None -> 0 | Some l -> List.length l);
      p_instants = T.instants t;
      p_aborted = T.fatal t <> None;
      p_replay_identical = T.equal t (T.replay t g);
      p_serialization_identical = T.equal t (T.of_json (T.to_json t)) }

  let replay_rows ~smoke () =
    let instants = if smoke then 6 else 12 in
    let g =
      Workloads.Netgen.generate ~inputs:3 ~delays:2 ~cyclic_ratio:0.1 ~seed:41
        ~depth:5 ~width:8 ()
    in
    let compiled = G.compile g in
    let n_blocks = Array.length compiled.G.c_blocks in
    let stream = Workloads.Netgen.stimulus g ~instants in
    let campaign seed =
      I.plan ~seed ~n_blocks ~instants ~n_faults:3 ~first_only:false ()
    in
    [ replay_row g stream ~strategy:F.Chaotic ();
      replay_row g stream ~strategy:F.Scheduled ~policy:S.Hold_last
        ~inject:(campaign 7) ();
      replay_row g stream ~strategy:F.Worklist ~policy:(S.Retry 2)
        ~inject:(campaign 8) ();
      replay_row g stream ~strategy:F.Fused ~policy:S.Absent
        ~inject:(campaign 9) ();
      (* a persistent trap under Fail_fast: the recorded run aborts
         mid-stream and the replay must abort at the same instant with
         the same partial trace *)
      replay_row g stream ~strategy:F.Fused ~policy:S.Fail_fast
        ~inject:
          [ { I.i_block = 1;
              i_kind = I.Trap;
              i_instant = instants / 2;
              i_persistence = I.Persistent;
              i_first_only = false } ]
        () ]

  (* ---- report ------------------------------------------------------ *)

  type report = {
    r_overhead : ov_row list;
    r_slices : sl_row list;
    r_localize : loc_row list;
    r_replay : rp_row list;
  }

  let reports ~smoke ~baseline () =
    { r_overhead = overhead ~smoke ~baseline ();
      r_slices = slice_rows ~smoke ();
      r_localize = localize_rows ~smoke ();
      r_replay = replay_rows ~smoke () }

  let print_text r =
    print_endline
      "Causal tracing: provenance, replay and divergence localization";
    print_newline ();
    List.iter
      (fun v ->
        Printf.printf
          "  %-18s %5d blocks %5d nets %4d instants  off %.6fs traced %.6fs \
           (%+.1f%%)  outputs %s  evals %s%s  %d events (%d evicted)\n"
          v.v_name v.v_blocks v.v_nets v.v_instants v.v_wall_off v.v_wall_on
          (overhead_traced_pct v)
          (if v.v_outputs_equal then "identical" else "DIVERGED (BUG)")
          (if v.v_evals_off = v.v_evals_on then "identical" else "CHANGED (BUG)")
          (match v.v_baseline_evals with
          | None -> ""
          | Some b when b = v.v_evals_off -> ", cycle-identical to baseline"
          | Some b -> Printf.sprintf ", BASELINE DRIFT (%d)" b)
          v.v_events_pushed v.v_overwrites)
      r.r_overhead;
    print_newline ();
    List.iter
      (fun s ->
        Printf.printf
          "  %-14s %5d blocks %5d nets: %d slices, %.1f events mean, %d max, \
           %d truncated (%d ring evictions)  %s\n"
          s.s_name s.s_blocks s.s_nets s.s_checked s.s_mean s.s_max
          s.s_truncated s.s_overwrites
          (if s.s_roots_ok then "roots resolved" else "UNRESOLVED (BUG)"))
      r.r_slices;
    print_newline ();
    List.iter
      (fun l ->
        Printf.printf
          "  %-16s %3d blocks: mutated block %d -> %s (instant %d, net %d)\n"
          l.l_name l.l_blocks l.l_mutated
          (if l.l_localized then "localized" else "NOT LOCALIZED (BUG)")
          l.l_instant l.l_net)
      r.r_localize;
    print_newline ();
    List.iter
      (fun p ->
        Printf.printf
          "  replay %-9s policy %-9s %d injected, %d instants%s: %s, \
           serialization %s\n"
          p.p_strategy p.p_policy p.p_injected p.p_instants
          (if p.p_aborted then " (aborted)" else "")
          (if p.p_replay_identical then "bit-identical"
           else "DIVERGED (BUG)")
          (if p.p_serialization_identical then "bit-identical"
           else "DIVERGED (BUG)"))
      r.r_replay

  let print_json r =
    let ov_json v =
      J.Obj
        ([ ("workload", J.Str v.v_name);
           ("blocks", J.Int v.v_blocks);
           ("nets", J.Int v.v_nets);
           ("instants", J.Int v.v_instants);
           ("evaluations_off", J.Int v.v_evals_off);
           ("evaluations_traced", J.Int v.v_evals_on);
           ("wall_off_s", J.Float v.v_wall_off);
           ("wall_traced_s", J.Float v.v_wall_on);
           ("overhead_traced_pct", J.Float (overhead_traced_pct v));
           ("events_pushed", J.Int v.v_events_pushed);
           ("ring_overwrites", J.Int v.v_overwrites);
           ("outputs_equal", J.Bool v.v_outputs_equal);
           ("evals_identical", J.Bool (v.v_evals_off = v.v_evals_on)) ]
        @
        match v.v_baseline_evals with
        | None -> []
        | Some b ->
            [ ("baseline_evaluations", J.Int b);
              ("off_cycle_identical", J.Bool (b = v.v_evals_off)) ])
    in
    let sl_json s =
      J.Obj
        [ ("workload", J.Str s.s_name);
          ("blocks", J.Int s.s_blocks);
          ("nets", J.Int s.s_nets);
          ("instants", J.Int s.s_instants);
          ("events_pushed", J.Int s.s_pushed);
          ("ring_overwrites", J.Int s.s_overwrites);
          ("slices_checked", J.Int s.s_checked);
          ("slice_events_mean", J.Float s.s_mean);
          ("slice_events_max", J.Int s.s_max);
          ("slices_truncated", J.Int s.s_truncated);
          ("roots_resolved_ok", J.Bool s.s_roots_ok) ]
    in
    let loc_json l =
      J.Obj
        [ ("workload", J.Str l.l_name);
          ("blocks", J.Int l.l_blocks);
          ("mutated_block", J.Int l.l_mutated);
          ("divergence_instant", J.Int l.l_instant);
          ("divergence_net", J.Int l.l_net);
          ("localized", J.Bool l.l_localized) ]
    in
    let rp_json p =
      J.Obj
        [ ("strategy", J.Str p.p_strategy);
          ("policy", J.Str p.p_policy);
          ("injected_faults", J.Int p.p_injected);
          ("instants", J.Int p.p_instants);
          ("aborted", J.Bool p.p_aborted);
          ("replay_identical", J.Bool p.p_replay_identical);
          ("serialization_identical", J.Bool p.p_serialization_identical) ]
    in
    let coverage =
      J.Obj
        [ ( "slices_checked",
            J.Int (List.fold_left (fun a s -> a + s.s_checked) 0 r.r_slices) );
          ("localizations_checked", J.Int (List.length r.r_localize));
          ( "replayed_instants_checked",
            J.Int (List.fold_left (fun a p -> a + p.p_instants) 0 r.r_replay) )
        ]
    in
    print_endline
      (J.to_string
         (J.Obj
            [ ("bench", J.Str "causal");
              ("overhead", J.List (List.map ov_json r.r_overhead));
              ("slices", J.List (List.map sl_json r.r_slices));
              ("localization", J.List (List.map loc_json r.r_localize));
              ("replay", J.List (List.map rp_json r.r_replay));
              ("coverage", coverage) ]))

  (* Smoke contract (causal-smoke alias in `dune runtest`): tracing
     never changes outputs or evaluation counts, the disabled path is
     cycle-identical to the committed fusion baseline when one is
     given, every slice resolves its root or reports truncation, every
     seeded mutation is localized to exactly the mutated block, and
     every recorded run — injected campaigns and Fail_fast aborts
     included — replays and re-serializes bit-identically. *)
  let check r =
    let failed = ref false in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          Printf.eprintf "FAIL %s\n" s;
          failed := true)
        fmt
    in
    List.iter
      (fun v ->
        if not v.v_outputs_equal then
          fail "%s: causal tracing changed the simulation outputs" v.v_name;
        if v.v_evals_off <> v.v_evals_on then
          fail "%s: causal tracing changed block evaluations (%d -> %d)"
            v.v_name v.v_evals_off v.v_evals_on;
        match v.v_baseline_evals with
        | Some b when b <> v.v_evals_off ->
            fail
              "%s: causal-off path drifted from the committed fusion \
               baseline (%d -> %d)"
              v.v_name b v.v_evals_off
        | Some _ | None -> ())
      r.r_overhead;
    List.iter
      (fun s ->
        if s.s_checked = 0 then fail "%s: no slices computed" s.s_name;
        if not s.s_roots_ok then
          fail "%s: a slice neither resolved its root nor reported truncation"
            s.s_name)
      r.r_slices;
    List.iter
      (fun l ->
        if not l.l_localized then
          fail "%s: first_divergence did not blame the mutated block %d"
            l.l_name l.l_mutated)
      r.r_localize;
    List.iter
      (fun p ->
        if not p.p_replay_identical then
          fail "replay %s/%s: replayed trace differs from the recording"
            p.p_strategy p.p_policy;
        if not p.p_serialization_identical then
          fail "replay %s/%s: serialization round-trip is not bit-identical"
            p.p_strategy p.p_policy)
      r.r_replay;
    if !failed then exit 1

  let run ~json ~smoke ~baseline () =
    let r = reports ~smoke ~baseline () in
    if json then print_json r else print_text r;
    check r
end

(* ------------------------------------------------------------------ *)
(* Crash recovery: resume differentials and a SIGKILL harness.         *)
(* ------------------------------------------------------------------ *)

module Recovery_bench = struct
  module J = Telemetry.Json
  module C = Telemetry.Causal
  module G = Asr.Graph
  module D = Asr.Domain
  module F = Asr.Fixpoint
  module S = Asr.Supervisor
  module I = Asr.Inject
  module K = Asr.Checkpoint

  let rec drop n = function
    | _ :: tl when n > 0 -> drop (n - 1) tl
    | l -> l

  (* Bit-exact instant-stream equality: [Codec.value_eq] distinguishes
     NaN payloads and -0.0 where structural (=) would lie. *)
  let outputs_eq a b =
    List.length a = List.length b
    && List.for_all2
         (fun xs ys ->
           List.length xs = List.length ys
           && List.for_all2
                (fun (n1, v1) (n2, v2) ->
                  String.equal n1 n2 && Asr.Codec.value_eq v1 v2)
                xs ys)
         a b

  (* ---- resume differential: every k-th checkpoint, bit-identical --- *)

  type rd_row = {
    d_system : string;
    d_strategy : string;
    d_policy : string;  (* "none" or the containment policy *)
    d_blocks : int;
    d_instants : int;  (* instants the oracle run completed *)
    d_injected : int;
    d_aborted : bool;  (* Fail_fast cut the oracle short *)
    d_checkpoints : int;  (* artifacts captured over the oracle run *)
    d_resumes : int;  (* resumed runs driven to completion *)
    d_roundtrip : bool;  (* of_json (to_json ck) bit-identical, all cks *)
    d_identical : bool;  (* every resumed run converged bit-exactly *)
  }

  (* The same strategy/policy arms as [Causal_bench.replay_rows]: every
     strategy, every containment policy, injected campaigns on all but
     the chaotic control, and a persistent Fail_fast abort. *)
  let arms ~n_blocks ~instants =
    let campaign seed =
      I.plan ~seed ~n_blocks ~instants ~n_faults:3 ~first_only:false ()
    in
    [ (F.Chaotic, None, []);
      (F.Scheduled, Some S.Hold_last, campaign 7);
      (F.Worklist, Some (S.Retry 2), campaign 8);
      (F.Fused, Some S.Absent, campaign 9);
      (F.Fused, Some S.Fail_fast,
       [ { I.i_block = 1;
           i_kind = I.Trap;
           i_instant = instants / 2;
           i_persistence = I.Persistent;
           i_first_only = false } ]) ]

  let attach g ~strategy ?policy ~inject ~with_causal () =
    let injector = if inject = [] then None else Some (I.make inject) in
    let g' =
      match injector with None -> g | Some inj -> I.instrument inj g
    in
    let sup = Option.map (fun p -> S.create ~policy:p ()) policy in
    let causal =
      if with_causal then Some (C.create ~n_nets:(G.compile g).G.n_nets ())
      else None
    in
    let sim =
      Asr.Simulate.create ~strategy
        ~telemetry:(Telemetry.Registry.create ())
        ?supervisor:sup
        ~monitor:(Telemetry.Monitor.create ())
        ?causal g'
    in
    (sim, injector)

  (* One oracle run captures a deep checkpoint at every [ck_every]-th
     instant boundary while it keeps going — then each artifact is
     round-tripped through JSON, resumed against the clean graph, and
     driven over the remaining stimulus. Convergence is judged the
     strongest way available: the resumed suffix outputs must be
     bit-equal to the oracle's, and a final checkpoint of the resumed
     run must serialize byte-identically to the oracle's final
     checkpoint — covering delay registers, fixed points, counters,
     fault log, quarantine set, monitor cumulatives and causal events
     in one comparison. Fail_fast oracles abort instead; there the
     resumed run must abort at the same instant with the same fault. *)
  let differential_row ~name g stream ~strategy ?policy ~inject ~ck_every
      ~with_causal () =
    let compiled = G.compile g in
    let arr = Array.of_list stream in
    let n = Array.length arr in
    let sim, injector = attach g ~strategy ?policy ~inject ~with_causal () in
    let cks = ref [] and outs = ref [] and fatal = ref None in
    (try
       for i = 0 to n - 1 do
         if i > 0 && i mod ck_every = 0 then
           cks := K.capture ~system:name ~seed:17 ?injector sim :: !cks;
         outs := Asr.Simulate.step sim arr.(i) :: !outs;
         Option.iter I.tick injector
       done
     with S.Fatal f -> fatal := Some f);
    let oracle_outs = List.rev !outs in
    let oracle_abort =
      Option.map
        (fun f -> (List.length oracle_outs, S.fault_to_string f))
        !fatal
    in
    let oracle_final =
      match !fatal with
      | Some _ -> None
      | None -> Some (K.capture ~system:name ~seed:17 ?injector sim)
    in
    let roundtrip = ref true and identical = ref true in
    let resumes = ref 0 in
    List.iter
      (fun ck ->
        let ck' = K.of_json (K.to_json ck) in
        if not (K.equal ck ck') then roundtrip := false;
        incr resumes;
        let r = K.resume ck' g in
        let start = K.instant ck' in
        let routs = ref [] and rfatal = ref None in
        (try
           for i = start to n - 1 do
             routs := Asr.Simulate.step r.K.r_sim arr.(i) :: !routs;
             Option.iter I.tick r.K.r_injector
           done
         with S.Fatal f -> rfatal := Some f);
        let routs = List.rev !routs in
        let suffix_ok = outputs_eq routs (drop start oracle_outs) in
        let end_ok =
          match (oracle_abort, !rfatal) with
          | None, None -> (
              match oracle_final with
              | Some o ->
                  K.equal o
                    (K.capture ~system:name ~seed:17
                       ?injector:r.K.r_injector r.K.r_sim)
              | None -> false)
          | Some (a, detail), Some f ->
              start + List.length routs = a
              && String.equal (S.fault_to_string f) detail
          | _ -> false
        in
        if not (suffix_ok && end_ok) then identical := false)
      (List.rev !cks);
    { d_system = name;
      d_strategy = F.strategy_name strategy;
      d_policy =
        (match policy with None -> "none" | Some p -> S.policy_name p);
      d_blocks = Array.length compiled.G.c_blocks;
      d_instants = List.length oracle_outs;
      d_injected = List.length inject;
      d_aborted = Option.is_some oracle_abort;
      d_checkpoints = !resumes;
      d_resumes = !resumes;
      d_roundtrip = !roundtrip;
      d_identical = !identical }

  let netgen_graph size =
    let width = min size 25 in
    let depth = max 1 (size / width) in
    Workloads.Netgen.generate ~inputs:4 ~delays:4 ~cyclic_ratio:0.04
      ~seed:(2201 + size) ~depth ~width ()

  (* FIR / JPEG plus 10^2..10^4-block generated nets. Causal sinks ride
     on the smaller systems (event capture on a 10^4-net ring would
     dominate the run without sharpening the gate); the chaotic arm is
     dropped from the 10^4 net only, where O(depth) sweeps make it the
     lone multi-second row. *)
  let differential ~smoke () =
    let instants = if smoke then 6 else 12 in
    let ck_every = if smoke then 2 else 3 in
    let systems =
      if smoke then
        [ ("fir", Sched_bench.fir_graph 12, `Sched, true, `All);
          ("netgen-small", netgen_graph 50, `Netgen, true, `All) ]
      else
        [ ("fir", Sched_bench.fir_graph 64, `Sched, true, `All);
          ("jpeg-pipeline", Sched_bench.pipeline_graph 48, `Sched, true,
           `All);
          ("netgen-100", netgen_graph 100, `Netgen, true, `All);
          ("netgen-1000", netgen_graph 1000, `Netgen, false, `All);
          ("netgen-10000", netgen_graph 10000, `Netgen, false, `Fast) ]
    in
    List.concat_map
      (fun (name, g, stim, with_causal, which) ->
        let compiled = G.compile g in
        let n_blocks = Array.length compiled.G.c_blocks in
        let stream =
          match stim with
          | `Sched -> Sched_bench.stimulus g ~instants
          | `Netgen -> Workloads.Netgen.stimulus g ~instants
        in
        arms ~n_blocks ~instants
        |> List.filter (fun (strategy, _, _) ->
               which = `All || strategy <> F.Chaotic)
        |> List.map (fun (strategy, policy, inject) ->
               differential_row ~name g stream ~strategy ?policy ~inject
                 ~ck_every ~with_causal ()))
      systems

  (* ---- SIGKILL harness: kill a child mid-run, resume from disk ----- *)

  type kl_row = {
    k_kill : int;  (* boundary the child froze at when killed *)
    k_resumed_from : int;  (* instant of the artifact recovered, -1 none *)
    k_sigkill : bool;  (* child died by SIGKILL while frozen *)
    k_converged : bool;  (* resumed run's end state equals the oracle's *)
  }

  (* The killed child and the in-process oracle build the identical
     system: a seeded generated net under Worklist / Retry 2 with an
     injected three-fault campaign, full telemetry attached. *)
  let harness_setup ~instants =
    let g =
      Workloads.Netgen.generate ~inputs:3 ~delays:2 ~cyclic_ratio:0.1
        ~seed:41 ~depth:5 ~width:8 ()
    in
    let compiled = G.compile g in
    let inject =
      I.plan ~seed:11
        ~n_blocks:(Array.length compiled.G.c_blocks)
        ~instants ~n_faults:3 ~first_only:false ()
    in
    let injector = I.make inject in
    let sim =
      Asr.Simulate.create ~strategy:F.Worklist
        ~telemetry:(Telemetry.Registry.create ())
        ~supervisor:(S.create ~policy:(S.Retry 2) ())
        ~monitor:(Telemetry.Monitor.create ())
        ~causal:(C.create ~n_nets:compiled.G.n_nets ())
        (I.instrument injector g)
    in
    (g, sim, injector,
     Array.of_list (Workloads.Netgen.stimulus g ~instants))

  (* Hidden [recovery-child DIR KILL CK_EVERY INSTANTS] mode, spawned
     by [kill_row]: run the harness system saving a checkpoint at every
     CK_EVERY-instant boundary; at the KILL boundary, touch DIR/ready
     and freeze until the parent's SIGKILL lands. Dying frozen — after
     fsync-visible artifacts, before the next instant — models the
     power cut the recovery story is for. *)
  let child = function
    | [ dir; kill; ck_every; instants ] ->
        let kill = int_of_string kill
        and ck_every = int_of_string ck_every
        and instants = int_of_string instants in
        let _g, sim, injector, arr = harness_setup ~instants in
        for i = 0 to Array.length arr - 1 do
          if i > 0 && i mod ck_every = 0 then
            K.save
              (K.capture ~system:"recovery-harness" ~seed:41 ~injector sim)
              (Filename.concat dir (Printf.sprintf "checkpoint-%d.json" i));
          if i = kill then begin
            close_out (open_out (Filename.concat dir "ready"));
            while true do
              Unix.sleepf 3600.0
            done
          end;
          ignore (Asr.Simulate.step sim arr.(i));
          I.tick injector
        done
    | _ ->
        prerr_endline "usage: recovery-child DIR KILL CK_EVERY INSTANTS";
        exit 1

  let rec wait_for path tries =
    Sys.file_exists path
    || tries > 0
       && begin
            Unix.sleepf 0.05;
            wait_for path (tries - 1)
          end

  let kill_row ~instants ~ck_every ~kill =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "asr-recovery-%d-%d" (Unix.getpid ()) kill)
    in
    (try Unix.mkdir dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let exe = Sys.executable_name in
    let pid =
      Unix.create_process exe
        [| exe; "recovery-child"; dir; string_of_int kill;
           string_of_int ck_every; string_of_int instants |]
        Unix.stdin Unix.stdout Unix.stderr
    in
    let ready = wait_for (Filename.concat dir "ready") 600 in
    Unix.kill pid Sys.sigkill;
    let _, status = Unix.waitpid [] pid in
    let sigkill = ready && status = Unix.WSIGNALED Sys.sigkill in
    let latest =
      Sys.readdir dir |> Array.to_list
      |> List.filter_map (fun f ->
             Scanf.sscanf_opt f "checkpoint-%d.json" (fun i -> i))
      |> List.fold_left max (-1)
    in
    (* in-process oracle: the same run, uninterrupted *)
    let g, sim, injector, arr = harness_setup ~instants in
    let oracle_outs =
      Array.to_list
        (Array.map
           (fun inputs ->
             let o = Asr.Simulate.step sim inputs in
             I.tick injector;
             o)
           arr)
    in
    let oracle_final =
      K.capture ~system:"recovery-harness" ~seed:41 ~injector sim
    in
    let converged =
      latest >= 0
      &&
      let ck =
        K.load
          (Filename.concat dir (Printf.sprintf "checkpoint-%d.json" latest))
      in
      let r = K.resume ck g in
      let start = K.instant ck in
      let routs = ref [] in
      for i = start to Array.length arr - 1 do
        routs := Asr.Simulate.step r.K.r_sim arr.(i) :: !routs;
        Option.iter I.tick r.K.r_injector
      done;
      outputs_eq (List.rev !routs) (drop start oracle_outs)
      && K.equal oracle_final
           (K.capture ~system:"recovery-harness" ~seed:41
              ?injector:r.K.r_injector r.K.r_sim)
    in
    Array.iter
      (fun f ->
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    (try Unix.rmdir dir with Unix.Unix_error _ -> ());
    { k_kill = kill;
      k_resumed_from = latest;
      k_sigkill = sigkill;
      k_converged = converged }

  let kill_rows ~smoke () =
    let instants = if smoke then 8 else 12 in
    let ck_every = if smoke then 2 else 3 in
    let n_kills = if smoke then 1 else 3 in
    List.init n_kills (fun j ->
        let k = 41 * (j + 1) mod instants in
        kill_row ~instants ~ck_every ~kill:(max ck_every k))

  (* ---- report ------------------------------------------------------ *)

  type report = { r_diff : rd_row list; r_kills : kl_row list }

  let reports ~smoke () =
    { r_diff = differential ~smoke (); r_kills = kill_rows ~smoke () }

  let print_text r =
    print_endline "Crash recovery: checkpoint differentials, SIGKILL resume";
    print_newline ();
    List.iter
      (fun d ->
        Printf.printf
          "  %-14s %-9s policy %-9s %5d blocks %2d instants %d injected%s: \
           %d checkpoints, %d resumes %s, serialization %s\n"
          d.d_system d.d_strategy d.d_policy d.d_blocks d.d_instants
          d.d_injected
          (if d.d_aborted then " (aborted)" else "")
          d.d_checkpoints d.d_resumes
          (if d.d_identical then "bit-identical" else "DIVERGED (BUG)")
          (if d.d_roundtrip then "bit-identical" else "DIVERGED (BUG)"))
      r.r_diff;
    print_newline ();
    List.iter
      (fun k ->
        Printf.printf
          "  SIGKILL at instant %2d: resumed from checkpoint %d, child %s, \
           %s\n"
          k.k_kill k.k_resumed_from
          (if k.k_sigkill then "killed frozen" else "NOT KILLED (BUG)")
          (if k.k_converged then "converged to oracle"
           else "DID NOT CONVERGE (BUG)"))
      r.r_kills

  let print_json r =
    let rd_json d =
      J.Obj
        [ ("workload", J.Str d.d_system);
          ("strategy", J.Str d.d_strategy);
          ("policy", J.Str d.d_policy);
          ("blocks", J.Int d.d_blocks);
          ("instants", J.Int d.d_instants);
          ("injected_faults", J.Int d.d_injected);
          ("aborted", J.Bool d.d_aborted);
          ("checkpoints_checked", J.Int d.d_checkpoints);
          ("resumes_checked", J.Int d.d_resumes);
          ("artifact_roundtrip_identical", J.Bool d.d_roundtrip);
          ("resume_identical", J.Bool d.d_identical) ]
    in
    let kl_json k =
      J.Obj
        [ ("kill_instant", J.Int k.k_kill);
          ("recovered_from_instant", J.Int k.k_resumed_from);
          ("sigkill_delivered_ok", J.Bool k.k_sigkill);
          ("recovery_converged_ok", J.Bool k.k_converged) ]
    in
    let coverage =
      J.Obj
        [ ( "checkpoints_checked",
            J.Int
              (List.fold_left (fun a d -> a + d.d_checkpoints) 0 r.r_diff) );
          ( "resumes_checked",
            J.Int (List.fold_left (fun a d -> a + d.d_resumes) 0 r.r_diff) );
          ("kills_checked", J.Int (List.length r.r_kills)) ]
    in
    print_endline
      (J.to_string
         (J.Obj
            [ ("bench", J.Str "recovery");
              ("differential", J.List (List.map rd_json r.r_diff));
              ("sigkill", J.List (List.map kl_json r.r_kills));
              ("coverage", coverage) ]))

  (* Smoke contract (recovery-smoke alias in `dune runtest`): every
     checkpoint artifact survives a JSON round-trip bit-identically,
     every resumed run converges bit-exactly to the uninterrupted
     oracle — outputs, final fixed point, fault log, monitor
     cumulatives and causal events, Fail_fast aborts re-aborting at
     the same instant with the same fault — and a SIGKILLed child's
     on-disk artifacts recover the run. *)
  let check r =
    let failed = ref false in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          Printf.eprintf "FAIL %s\n" s;
          failed := true)
        fmt
    in
    List.iter
      (fun d ->
        if d.d_checkpoints = 0 then
          fail "%s %s/%s: no checkpoints captured" d.d_system d.d_strategy
            d.d_policy;
        if not d.d_roundtrip then
          fail "%s %s/%s: artifact JSON round-trip is not bit-identical"
            d.d_system d.d_strategy d.d_policy;
        if not d.d_identical then
          fail "%s %s/%s: a resumed run diverged from the oracle" d.d_system
            d.d_strategy d.d_policy)
      r.r_diff;
    List.iter
      (fun k ->
        if not k.k_sigkill then
          fail "kill@%d: child was not SIGKILLed while frozen" k.k_kill;
        if not k.k_converged then
          fail "kill@%d: resumed run did not converge to the oracle" k.k_kill)
      r.r_kills;
    if !failed then exit 1

  let run ~json ~smoke () =
    let r = reports ~smoke () in
    if json then print_json r else print_text r;
    check r
end

(* ------------------------------------------------------------------ *)
(* Artifact comparison: diff two BENCH_*.json files metric by metric   *)
(* and fail on cycle/eval regressions beyond the threshold.            *)
(* ------------------------------------------------------------------ *)

module Compare = struct
  module J = Telemetry.Json

  let regression_threshold_pct = 10.0

  (* Flatten a BENCH artifact into dotted-path numeric leaves. List
     elements are keyed by their identifying string fields (workload,
     engine, ...) when present, falling back to the index, so rows
     line up across artifacts even if reordered. *)
  let rec flatten path acc = function
    | J.Int n -> (path, float_of_int n) :: acc
    | J.Float f -> (path, f) :: acc
    (* booleans are quality gates (containment held, traces identical,
       attribution reconciles, ...); compare them as 0/1 so a gate that
       flips false across artifacts is visible and guardable *)
    | J.Bool b -> (path, if b then 1.0 else 0.0) :: acc
    | J.Str _ | J.Null -> acc
    | J.Obj kvs ->
        List.fold_left
          (fun acc (k, v) -> flatten (path ^ "." ^ k) acc v)
          acc kvs
    | J.List items ->
        List.fold_left
          (fun (i, acc) item ->
            let key =
              let parts =
                List.filter_map
                  (fun field ->
                    match J.member field item with
                    | Some (J.Str s) -> Some s
                    | _ -> None)
                  [ "workload"; "engine"; "policy"; "trap"; "name"; "method";
                    "file"; "label"; "strategy" ]
              in
              match parts with
              | [] -> string_of_int i
              | parts -> String.concat ":" parts
            in
            (i + 1, flatten (path ^ "." ^ key) acc item))
          (0, acc) items
        |> snd

  let load path =
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match J.parse text with
    | parsed -> List.rev (flatten "" [] parsed)
    | exception J.Parse_error msg ->
        Printf.eprintf "cannot parse %s: %s\n" path msg;
        exit 1

  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0

  (* Bigger-is-worse metrics guarded against regression. *)
  let guarded path =
    let p = String.lowercase_ascii path in
    contains ~sub:"cycles" p || contains ~sub:"eval" p

  (* Boolean quality gates where any decrease (true -> false) is a
     regression regardless of magnitude: containment held, traces
     identical, attribution reconciled, runs deterministic, ... *)
  let guarded_quality path =
    let p = String.lowercase_ascii path in
    List.exists
      (fun sub -> contains ~sub p)
      [ "identical"; "contained"; "reconcil"; "deterministic"; "equal";
        "_ok"; "valid"; "resumes"; "within_bound" ]

  (* Coverage counters where any decrease is a regression: schedules
     explored, correspondences checked, VCs discharged. Shrinking the
     verified surface must be a deliberate, visible act. *)
  let guarded_coverage path =
    let p = String.lowercase_ascii path in
    List.exists
      (fun sub -> contains ~sub p)
      [ "explored"; "checked"; "discharged"; "localized"; "replayed" ]

  let run baseline_path current_path =
    let baseline = load baseline_path and current = load current_path in
    let current_tbl = Hashtbl.create 64 in
    List.iter (fun (k, v) -> Hashtbl.replace current_tbl k v) current;
    Printf.printf "comparing %s (baseline) vs %s (current)\n\n" baseline_path
      current_path;
    Printf.printf "%-64s %14s %14s %9s\n" "metric" "baseline" "current"
      "delta";
    let regressions = ref 0 in
    List.iter
      (fun (path, base) ->
        match Hashtbl.find_opt current_tbl path with
        | None -> Printf.printf "%-64s %14.6g %14s\n" path base "(gone)"
        | Some cur ->
            Hashtbl.remove current_tbl path;
            let delta_pct =
              if base = 0.0 then if cur = 0.0 then 0.0 else infinity
              else 100.0 *. (cur -. base) /. base
            in
            let regressed =
              (guarded path && delta_pct > regression_threshold_pct)
              || (guarded_quality path && cur < base)
              || (guarded_coverage path && cur < base)
            in
            if regressed then incr regressions;
            if base <> cur || regressed then
              Printf.printf "%-64s %14.6g %14.6g %+8.2f%%%s\n" path base cur
                delta_pct
                (if regressed then "  REGRESSION" else ""))
      baseline;
    List.iter
      (fun (path, cur) ->
        if Hashtbl.mem current_tbl path then
          Printf.printf "%-64s %14s %14.6g\n" path "(new)" cur)
      current;
    if !regressions > 0 then begin
      Printf.printf
        "\n%d guarded metric(s) regressed more than %.0f%%\n" !regressions
        regression_threshold_pct;
      exit 1
    end
    else
      Printf.printf
        "\nno cycle/eval metric regressed more than %.0f%% and no quality \
         gate flipped\n"
        regression_threshold_pct
end

(* ------------------------------------------------------------------ *)

let json_flag = ref false

let smoke_flag = ref false

(* --baseline PATH: a committed artifact the current run is checked
   against — BENCH_lineprof.json for the faults bench (supervisor-
   disabled cycle counts), BENCH_fusion.json for the monitor bench
   (monitor-off evaluation counts must be cycle-identical to the fused
   rows). Full-size runs only; meaningless under --smoke, which scales
   the workloads down. *)
let baseline_flag = ref None

let experiments =
  [ ("schedule",
     `Plain (fun () -> Sched_bench.run ~json:!json_flag ~smoke:!smoke_flag ()));
    ("fusion",
     `Plain (fun () -> Fusion_bench.run ~json:!json_flag ~smoke:!smoke_flag ()));
    ("boundscheck",
     `Plain (fun () -> Boundscheck.run ~json:!json_flag ~smoke:!smoke_flag ()));
    ("analysis",
     `Plain (fun () -> Analysis_bench.run ~json:!json_flag ~smoke:!smoke_flag ()));
    ("telemetry",
     `Plain (fun () -> Telemetry_bench.run ~json:!json_flag ~smoke:!smoke_flag ()));
    ("lineprof",
     `Plain (fun () -> Lineprof_bench.run ~json:!json_flag ~smoke:!smoke_flag ()));
    ("faults",
     `Plain
       (fun () ->
         Faults_bench.run ~json:!json_flag ~smoke:!smoke_flag
           ~baseline:!baseline_flag ()));
    ("monitor",
     `Plain
       (fun () ->
         Monitor_bench.run ~json:!json_flag ~smoke:!smoke_flag
           ~baseline:!baseline_flag ()));
    ("refinement",
     `Plain
       (fun () -> Refinement_bench.run ~json:!json_flag ~smoke:!smoke_flag ()));
    ("causal",
     `Plain
       (fun () ->
         Causal_bench.run ~json:!json_flag ~smoke:!smoke_flag
           ~baseline:!baseline_flag ()));
    ("recovery",
     `Plain
       (fun () -> Recovery_bench.run ~json:!json_flag ~smoke:!smoke_flag ()));
    ("table1", `Sized table1);
    ("fig1", `Plain fig1);
    ("fig2", `Plain fig2);
    ("fig3", `Plain fig3);
    ("fig4", `Plain fig4);
    ("fig5", `Plain fig5);
    ("fig6", `Plain fig6);
    ("fig7", `Plain fig7);
    ("fig8", `Plain fig8);
    ("ablation", `Plain ablation);
    ("bechamel", `Plain bechamel) ]

let run_one ~small name =
  match List.assoc_opt name experiments with
  | Some (`Plain f) ->
      f ();
      print_newline ()
  | Some (`Sized f) ->
      f ~small ();
      print_newline ()
  | None ->
      Printf.eprintf "unknown experiment '%s'; available: %s\n" name
        (String.concat " " (List.map fst experiments @ [ "all" ]));
      exit 1

let rec compare_files = function
  | "--compare" :: baseline :: current :: _ -> Some (baseline, current)
  | "--compare" :: _ ->
      Printf.eprintf "usage: --compare BASELINE.json CURRENT.json\n";
      exit 1
  | _ :: rest -> compare_files rest
  | [] -> None

let rec strip_baseline = function
  | "--baseline" :: path :: rest ->
      baseline_flag := Some path;
      strip_baseline rest
  | [ "--baseline" ] ->
      Printf.eprintf "usage: --baseline BENCH_lineprof.json\n";
      exit 1
  | a :: rest -> a :: strip_baseline rest
  | [] -> []

let () =
  (* hidden subprocess mode for the SIGKILL recovery harness *)
  (match List.tl (Array.to_list Sys.argv) with
  | "recovery-child" :: rest ->
      Recovery_bench.child rest;
      exit 0
  | _ -> ());
  let args = strip_baseline (List.tl (Array.to_list Sys.argv)) in
  (match compare_files args with
  | Some (baseline, current) ->
      Compare.run baseline current;
      exit 0
  | None -> ());
  let small = List.mem "--small" args in
  json_flag := List.mem "--json" args;
  smoke_flag := List.mem "--smoke" args;
  let names =
    List.filter (fun a -> not (List.mem a [ "--small"; "--json"; "--smoke" ])) args
  in
  let sep name =
    (* keep stdout pure JSON under --json *)
    if not !json_flag then Printf.printf "==== %s ====\n" name
  in
  match names with
  | [] | [ "all" ] ->
      List.iter
        (fun (name, _) ->
          sep name;
          run_one ~small name)
        (List.filter (fun (n, _) -> n <> "bechamel") experiments)
  | names -> List.iter (fun n -> sep n; run_one ~small n) names
