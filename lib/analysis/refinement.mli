(** Per-transform verification conditions for the SFR engine.

    [Engine.refine] records the program before and after every transform
    it applies. {!check_transform} checks a simulation relation between
    the two ASTs — loop bounding preserves iteration-by-iteration state
    on the interval domain ({!Interval}), allocation hoisting preserves
    heap shape modulo the preallocated arena ({!Escape}), field
    privatization and finalizer removal are unobservable — so the
    provenance audit becomes a chain of checked correspondences.
    {!races_clean} justifies thread elimination with an {!Races}-clean
    report.

    Soundness caveat: the simulation argument lives on the interval
    domain over locals. Heap effects are compared structurally, and
    statement pairs the aligner cannot match are rejected rather than
    explored — the checker is sound for rejection but incomplete: a
    semantically correct transform written in an unexpected shape is
    refused, never silently accepted. *)

type vc = {
  vc_transform : string;  (** transform id, or ["thread-elimination"] *)
  vc_class : string;      (** class the site lives in *)
  vc_site : string;       (** human description of the rewrite site *)
  vc_before : Mj.Loc.t;   (** source span on the before side *)
  vc_after : Mj.Loc.t;    (** source span on the after side *)
  vc_ok : bool;           (** discharged? *)
  vc_detail : string;     (** why it is discharged, or why it failed *)
}

val check_transform :
  transform:string ->
  before:Mj.Typecheck.checked ->
  after:Mj.Typecheck.checked ->
  vc list
(** Verification conditions for one recorded engine iteration: one VC
    per recognized rewrite site, plus failing VCs for any difference
    between the two programs that the transform cannot have produced. A
    transform id with no catalogued VC yields a single failing VC. *)

val races_clean : Mj.Typecheck.checked -> vc
(** The VC justifying thread elimination / sequentialization of the
    refined program: the static race detector must report no
    shared-field races. *)
