(* Whole-program bounds-check elision plan.

   Runs the interval analysis over every executable body and collects
   the array-access sites (keyed by the span of the index subexpression)
   whose index interval provably sits inside the array's static length.
   The bytecode compiler consults the plan to emit unchecked
   [Aload_u]/[Astore_u] in place of the checked array instructions.

   Parameters and unknown calls evaluate to top, so a site is only in
   the plan when its safety follows from constants, [static final]
   fields, statically-sized allocations, and branch guards — never from
   assumptions about callers. [hints] relaxes exactly the unknown-call
   leg: the harness can bound specific int-returning methods (e.g.
   [readPort] under a known stimulus or fused constant net), unlocking
   elision at sites indexed by environment data. *)

let plan ?hints checked =
  let safe : (Mj.Loc.t, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun cls ->
      List.iter
        (fun body ->
          let summary = Interval.analyze ?hints checked body.Mj.Visit.b_stmts in
          Hashtbl.iter
            (fun loc () -> Hashtbl.replace safe loc ())
            (Interval.safe_sites summary))
        (Mj.Visit.bodies cls))
    checked.Mj.Typecheck.program.Mj.Ast.classes;
  safe

(* Every array-access site in the program (for coverage reporting). *)
let all_sites checked =
  let total = ref 0 in
  List.iter
    (fun cls ->
      List.iter
        (fun body ->
          Mj.Visit.iter_exprs
            (fun e ->
              match e.Mj.Ast.expr with
              | Mj.Ast.Index _ -> incr total
              | Mj.Ast.Assign (Mj.Ast.Lindex _, _)
              | Mj.Ast.Op_assign (_, Mj.Ast.Lindex _, _)
              | Mj.Ast.Pre_incr (_, Mj.Ast.Lindex _)
              | Mj.Ast.Post_incr (_, Mj.Ast.Lindex _) ->
                  incr total
              | _ -> ())
            body.Mj.Visit.b_stmts)
        (Mj.Visit.bodies cls))
    checked.Mj.Typecheck.program.Mj.Ast.classes;
  !total
