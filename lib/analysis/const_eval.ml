(* Constant evaluation over typed MJ expressions.

   Folding follows the runtime's 32-bit integer semantics: every
   arithmetic result is wrapped exactly as the VM wraps it
   (Int32 round-trip), so a folded constant always equals the value the
   program would compute. Division and modulo by a constant zero yield
   [None] — the analysis never raises; the runtime trap is preserved. *)

open Mj.Ast

(* Same semantics as Mj_runtime.Value.wrap32; reimplemented locally
   because this library sits below the runtime. *)
let wrap32 n = Int32.to_int (Int32.of_int n)

let rec const_int checked e =
  match e.expr with
  | Int_lit n -> Some n
  | Unary (Neg, x) -> Option.map (fun n -> wrap32 (-n)) (const_int checked x)
  | Cast (TInt, x) -> const_int checked x
  | Binary (op, x, y) -> (
      match (const_int checked x, const_int checked y) with
      | Some a, Some b -> (
          match op with
          | Add -> Some (wrap32 (a + b))
          | Sub -> Some (wrap32 (a - b))
          | Mul -> Some (wrap32 (a * b))
          | Div -> if b = 0 then None else Some (wrap32 (a / b))
          | Mod -> if b = 0 then None else Some (a mod b)
          | Shl -> Some (wrap32 (a lsl (b land 31)))
          | Shr -> Some (a asr (b land 31))
          | Band -> Some (a land b)
          | Bor -> Some (a lor b)
          | Bxor -> Some (a lxor b)
          | Eq | Neq | Lt | Gt | Le | Ge | And | Or -> None)
      | _, _ -> None)
  | Static_field (cls, fname) -> (
      match Mj.Symtab.lookup_field checked.Mj.Typecheck.symtab cls fname with
      | Some (_, f) when f.f_mods.is_final && equal_ty f.f_ty TInt -> (
          match f.f_init with
          | Some init -> const_int checked init
          | None -> None)
      | Some _ | None -> None)
  | Array_length inner -> (
      (* f.length where the receiver's static type identifies the class. *)
      match inner.expr with
      | Field_access (o, fname) -> (
          match o.ety with
          | Some (TClass cls) -> field_array_length checked ~cls ~field:fname
          | _ -> None)
      | _ -> None)
  | Double_lit _ | Bool_lit _ | String_lit _ | Null_lit | This | Name _
  | Local _ | Field_access _ | Index _ | Call _ | New_object _ | New_array _
  | Unary (Not, _) | Assign _ | Op_assign _ | Pre_incr _ | Post_incr _
  | Cast _ | Cond _ ->
      None

and field_array_length checked ~cls ~field =
  match find_class (Mj.Symtab.program checked.Mj.Typecheck.symtab) cls with
  | None -> None
  | Some decl -> (
      match find_field decl field with
      | None -> (
          (* Inherited field: look in the superclass. *)
          match decl.cl_super with
          | Some super -> field_array_length checked ~cls:super ~field
          | None -> None)
      | Some f when f.f_mods.is_static -> None
      | Some f -> (
          (* Collect every assignment to the field anywhere in the
             program; the length is known when all are constant-size
             allocations in this class's constructors or initializer,
             and they agree. *)
          let sizes = ref [] in
          let foreign_write = ref false in
          let record_assign in_ctor_of_cls rhs =
            match rhs.expr with
            | New_array (_, [ dim ]) when in_ctor_of_cls -> (
                match const_int checked dim with
                | Some n -> sizes := n :: !sizes
                | None -> foreign_write := true)
            | _ -> foreign_write := true
          in
          let program = Mj.Symtab.program checked.Mj.Typecheck.symtab in
          List.iter
            (fun c ->
              List.iter
                (fun body ->
                  let in_ctor_of_cls =
                    String.equal c.cl_name cls
                    &&
                    match body.Mj.Visit.b_kind with
                    | Mj.Visit.Ctor _ | Mj.Visit.Field_init _ -> true
                    | Mj.Visit.Method _ -> false
                  in
                  Mj.Visit.iter_exprs
                    (fun e ->
                      match e.expr with
                      | Assign (Lfield (o, fname), rhs)
                        when String.equal fname field -> (
                          match o.ety with
                          | Some (TClass c2)
                            when Mj.Symtab.is_subclass
                                   checked.Mj.Typecheck.symtab ~sub:c2
                                   ~super:cls
                                 || Mj.Symtab.is_subclass
                                      checked.Mj.Typecheck.symtab ~sub:cls
                                      ~super:c2 ->
                              record_assign in_ctor_of_cls rhs
                          | _ -> ())
                      | Op_assign (_, Lfield (_, fname), _)
                        when String.equal fname field ->
                          foreign_write := true
                      | _ -> ())
                    body.Mj.Visit.b_stmts)
                (Mj.Visit.bodies c))
            program.classes;
          (* A field initializer with a constant allocation also counts. *)
          (match f.f_init with
          | Some init -> (
              match init.expr with
              | New_array (_, [ dim ]) -> (
                  match const_int checked dim with
                  | Some n -> sizes := n :: !sizes
                  | None -> foreign_write := true)
              | Null_lit -> ()
              | _ -> foreign_write := true)
          | None -> ());
          match (!foreign_write, !sizes) with
          | true, _ | _, [] -> None
          | false, n :: rest ->
              if List.for_all (fun m -> m = n) rest then Some n else None))
