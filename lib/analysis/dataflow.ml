(* Generic monotone-framework worklist solver.

   Functorized over an abstract lattice with widening. The solver takes
   the transfer function as a plain value (rather than baking it into
   the functor) so clients can capture recording state in a closure —
   the interval analysis uses this to collect loop-entry environments
   and index-safety facts in a final pass over the converged states.

   Widening points are the targets of back edges, identified by reverse
   postorder: an edge u -> v is a back edge when rpo(v) <= rpo(u).
   Widening is applied only after [widen_delay] ordinary joins have
   failed to stabilize the block, which keeps small constant-bound loops
   exact while still guaranteeing termination. *)

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t  (* [widen old next]: extrapolate the growth *)
end

module Make (L : LATTICE) = struct
  (* Solve to a fixpoint; returns the in-state of every block.
     Blocks unreachable from the entry keep [L.bottom]. *)
  let solve ?(widen_delay = 2) ~transfer (cfg : Cfg.t) ~init =
    let n = Array.length cfg.Cfg.blocks in
    let in_state = Array.make n L.bottom in
    (* Reverse postorder from the entry. *)
    let rpo = Array.make n max_int in
    let visited = Array.make n false in
    let order = ref [] in
    let rec dfs i =
      if not visited.(i) then begin
        visited.(i) <- true;
        List.iter dfs cfg.Cfg.blocks.(i).Cfg.succs;
        order := i :: !order
      end
    in
    dfs cfg.Cfg.entry;
    List.iteri (fun k i -> rpo.(i) <- k) !order;
    let widen_point = Array.make n false in
    Array.iter
      (fun b ->
        List.iter
          (fun s -> if rpo.(s) <= rpo.(b.Cfg.id) then widen_point.(s) <- true)
          b.Cfg.succs)
      cfg.Cfg.blocks;
    (* Worklist ordered by reverse postorder (loop heads before bodies). *)
    let module Q = Set.Make (struct
      type t = int * int

      let compare = compare
    end) in
    let queue = ref Q.empty in
    let queued = Array.make n false in
    let push i =
      if rpo.(i) < max_int && not queued.(i) then begin
        queued.(i) <- true;
        queue := Q.add (rpo.(i), i) !queue
      end
    in
    let joins = Array.make n 0 in
    in_state.(cfg.Cfg.entry) <- init;
    push cfg.Cfg.entry;
    while not (Q.is_empty !queue) do
      let ((_, i) as top) = Q.min_elt !queue in
      queue := Q.remove top !queue;
      queued.(i) <- false;
      let out =
        List.fold_left
          (fun st c -> transfer c st)
          in_state.(i) cfg.Cfg.blocks.(i).Cfg.cmds
      in
      List.iter
        (fun s ->
          let joined = L.join in_state.(s) out in
          let next =
            if widen_point.(s) && joins.(s) >= widen_delay then
              L.widen in_state.(s) joined
            else joined
          in
          if not (L.equal next in_state.(s)) then begin
            in_state.(s) <- next;
            joins.(s) <- joins.(s) + 1;
            push s
          end)
        cfg.Cfg.blocks.(i).Cfg.succs
    done;
    in_state
end
