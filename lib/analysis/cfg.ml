(* Control-flow graphs over typed MJ method bodies.

   Statements are flattened into basic blocks of atomic commands.
   Branching conditions are decomposed recursively: short-circuit
   operators ([&&], [||], [!]) become separate blocks and edges, so each
   [Assume] command carries one atomic condition with its evaluation
   order preserved (the right operand of [&&] is only evaluated on the
   path where the left operand held). [break]/[continue] become edges to
   the loop exit/continuation blocks; [return] jumps to the dedicated
   exit block.

   A [Loop_head] marker command is placed immediately before each [for]
   statement's initializer; clients use it to observe the abstract state
   at loop entry (keyed by the statement's source span). *)

open Mj.Ast

type command =
  | Decl of ty * string * expr option
  | Eval of expr
  | Assume of expr * bool  (* condition, branch sense *)
  | Ret of expr option
  | Loop_head of Mj.Loc.t  (* marks entry of the [for] at this span *)

type block = {
  id : int;
  mutable cmds : command list;  (* execution order (reversed while building) *)
  mutable succs : int list;
}

type t = { blocks : block array; entry : int; exit_id : int }

let build stmts =
  let rev_blocks = ref [] in
  let count = ref 0 in
  let new_block () =
    let b = { id = !count; cmds = []; succs = [] } in
    incr count;
    rev_blocks := b :: !rev_blocks;
    b
  in
  let entry = new_block () in
  let exit_b = new_block () in
  let add b c = b.cmds <- c :: b.cmds in
  let edge a b = if not (List.mem b.id a.succs) then a.succs <- b.id :: a.succs in
  (* Route control on [cond] from [cur] to [tb] (held) or [fb] (failed),
     splitting short-circuit operators into their evaluation order. *)
  let rec branch cur cond tb fb =
    match cond.expr with
    | Binary (And, a, b) ->
        let mid = new_block () in
        branch cur a mid fb;
        branch mid b tb fb
    | Binary (Or, a, b) ->
        let mid = new_block () in
        branch cur a tb mid;
        branch mid b tb fb
    | Unary (Not, a) -> branch cur a fb tb
    | _ ->
        let ta = new_block () in
        add ta (Assume (cond, true));
        edge ta tb;
        let fa = new_block () in
        add fa (Assume (cond, false));
        edge fa fb;
        edge cur ta;
        edge cur fa
  in
  (* Translate [s] starting in block [cur]; return the block where the
     fall-through continuation lives. [brk]/[cont] are the innermost
     loop's exit and continuation blocks. *)
  let rec stmt cur ~brk ~cont s =
    match s.stmt with
    | Block ss -> seq cur ~brk ~cont ss
    | Var_decl (ty, name, init) ->
        add cur (Decl (ty, name, init));
        cur
    | Expr e ->
        add cur (Eval e);
        cur
    | Empty -> cur
    | Super_call args ->
        List.iter (fun a -> add cur (Eval a)) args;
        cur
    | Return e ->
        add cur (Ret e);
        edge cur exit_b;
        new_block ()
    | Break ->
        (match brk with Some b -> edge cur b | None -> edge cur exit_b);
        new_block ()
    | Continue ->
        (match cont with Some b -> edge cur b | None -> edge cur exit_b);
        new_block ()
    | If (c, then_s, else_s) ->
        let tb = new_block () and fb = new_block () and join = new_block () in
        branch cur c tb fb;
        edge (stmt tb ~brk ~cont then_s) join;
        (match else_s with
        | Some else_s -> edge (stmt fb ~brk ~cont else_s) join
        | None -> edge fb join);
        join
    | While (c, body) ->
        let head = new_block () and bb = new_block () and out = new_block () in
        edge cur head;
        branch head c bb out;
        edge (stmt bb ~brk:(Some out) ~cont:(Some head) body) head;
        out
    | Do_while (body, c) ->
        let bb = new_block () and cb = new_block () and out = new_block () in
        edge cur bb;
        edge (stmt bb ~brk:(Some out) ~cont:(Some cb) body) cb;
        branch cb c bb out;
        out
    | For (init, cond, update, body) ->
        add cur (Loop_head s.sloc);
        (match init with
        | Some (For_var (ty, name, e)) -> add cur (Decl (ty, name, e))
        | Some (For_expr e) -> add cur (Eval e)
        | None -> ());
        let head = new_block ()
        and bb = new_block ()
        and ub = new_block ()
        and out = new_block () in
        edge cur head;
        (match cond with
        | Some c -> branch head c bb out
        | None -> edge head bb);
        edge (stmt bb ~brk:(Some out) ~cont:(Some ub) body) ub;
        (match update with Some u -> add ub (Eval u) | None -> ());
        edge ub head;
        out
  and seq cur ~brk ~cont ss =
    List.fold_left (fun cur s -> stmt cur ~brk ~cont s) cur ss
  in
  let last = seq entry ~brk:None ~cont:None stmts in
  edge last exit_b;
  let blocks =
    Array.make !count { id = 0; cmds = []; succs = [] }
  in
  List.iter
    (fun b -> blocks.(b.id) <- { b with cmds = List.rev b.cmds })
    !rev_blocks;
  { blocks; entry = entry.id; exit_id = exit_b.id }

let pp_command ppf = function
  | Decl (_, name, _) -> Format.fprintf ppf "decl %s" name
  | Eval _ -> Format.fprintf ppf "eval"
  | Assume (_, sense) -> Format.fprintf ppf "assume(%b)" sense
  | Ret _ -> Format.fprintf ppf "ret"
  | Loop_head loc -> Format.fprintf ppf "loop-head %a" Mj.Loc.pp loc

let pp ppf t =
  Array.iter
    (fun b ->
      Format.fprintf ppf "B%d%s -> [%s]:@."
        b.id
        (if b.id = t.entry then " (entry)"
         else if b.id = t.exit_id then " (exit)"
         else "")
        (String.concat ", " (List.map string_of_int b.succs));
      List.iter (fun c -> Format.fprintf ppf "  %a@." pp_command c) b.cmds)
    t.blocks
