open Mj.Ast

let local_escapes name stmts =
  let escapes = ref false in
  (* A cast does not launder the reference: [(int[]) x] still escapes
     wherever [x] would. *)
  let rec is_x e =
    match e.expr with
    | Local n | Name n -> String.equal n name
    | Cast (_, inner) -> is_x inner
    | _ -> false
  in
  Mj.Visit.iter_stmts stmts
    ~stmt:(fun s ->
      match s.stmt with
      | Return (Some e) when is_x e -> escapes := true
      | Var_decl (_, _, Some e) when is_x e -> escapes := true
      | _ -> ())
    ~expr:(fun e ->
      match e.expr with
      | Call { args; _ } -> if List.exists is_x args then escapes := true
      | New_object (_, args) -> if List.exists is_x args then escapes := true
      | Assign (lv, rhs) | Op_assign (_, lv, rhs) ->
          if is_x rhs then (
            match lv with
            | Lname n | Llocal n when String.equal n name -> ()
            | Lname _ | Llocal _ | Lfield _ | Lstatic_field _ | Lindex _ ->
                escapes := true)
      | Cond (_, a, b) -> if is_x a || is_x b then escapes := true
      | _ -> ());
  !escapes

let hoistable_zero = function
  | TInt -> Some (Int_lit 0)
  | TDouble -> Some (Double_lit 0.0)
  | TBool -> Some (Bool_lit false)
  | TString | TVoid | TNull | TArray _ | TClass _ -> None

let hoistable_decl checked ~method_body s =
  match s.stmt with
  | Var_decl (TArray elem, x, Some { expr = New_array (elem2, [ dim ]); _ }) ->
      equal_ty elem elem2
      && Const_eval.const_int checked dim <> None
      && hoistable_zero elem <> None
      && not (local_escapes x method_body)
  | _ -> false
