(* Static shared-field race detector.

   The static counterpart of the paper's Fig. 8 demonstration: instead
   of exhibiting one bad interleaving with seeded schedules, walk the
   call graph from every thread's [run] entry point and report each
   static field that is reachable from more than one thread class with
   at least one write. Programs without [Thread] subclasses (the ASR
   style the policy of use enforces) trivially have no races — reactions
   are executed sequentially by the simulator.

   Accesses performed by [main] after [Thread.join] are ordered by the
   join and therefore not counted: only the [run] methods (and everything
   they reach, including constructors of objects they allocate) are
   roots. *)

open Mj.Ast

type access = { a_root : string; a_loc : Mj.Loc.t; a_write : bool }

type race = {
  r_class : string;  (* class declaring the field *)
  r_field : string;
  r_roots : string list;  (* thread classes that reach the field *)
  r_writes : (string * Mj.Loc.t) list;  (* root, write site *)
  r_reads : (string * Mj.Loc.t) list;
  r_loc : Mj.Loc.t;  (* representative source span (first write) *)
}

let thread_classes checked =
  let tab = checked.Mj.Typecheck.symtab in
  List.filter_map
    (fun cls ->
      if
        (not (String.equal cls.cl_name "Thread"))
        && Mj.Symtab.is_subclass tab ~sub:cls.cl_name ~super:"Thread"
      then Some cls.cl_name
      else None)
    checked.Mj.Typecheck.program.classes

(* Bodies reachable from one root method, across resolved calls,
   dynamic-dispatch overrides, and constructor invocations. *)
let reachable_bodies checked ~cls ~mname =
  let tab = checked.Mj.Typecheck.symtab in
  let program = Mj.Symtab.program tab in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let override_bodies defining mname =
    List.filter_map
      (fun c ->
        if
          (not (String.equal c.cl_name defining))
          && Mj.Symtab.is_subclass tab ~sub:c.cl_name ~super:defining
        then
          Option.bind (find_method c mname) (fun m ->
              Option.map (fun b -> (c.cl_name, mname, b)) m.m_body)
        else None)
      program.classes
  in
  let rec visit_method cls mname =
    let key = ("m", cls, mname) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      match Mj.Symtab.lookup_method tab cls mname with
      | None -> ()
      | Some (defining, m) ->
          (match m.m_body with
          | Some body -> take (Printf.sprintf "%s.%s" defining mname) body
          | None -> ());
          List.iter
            (fun (owner, mn, body) ->
              let key = ("m", owner, mn) in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                take (Printf.sprintf "%s.%s" owner mn) body
              end)
            (override_bodies defining mname)
    end
  and visit_ctor cls arity =
    let key = ("c", cls, string_of_int arity) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      (match find_class program cls with
      | Some decl ->
          List.iter
            (fun f ->
              match f.f_init with
              | Some e when not f.f_mods.is_static ->
                  take
                    (Printf.sprintf "%s.%s=" cls f.f_name)
                    [ { stmt = Expr e; sloc = e.eloc } ]
              | _ -> ())
            decl.cl_fields
      | None -> ());
      match Mj.Symtab.lookup_ctor tab cls arity with
      | Some ctor -> take (Printf.sprintf "%s.<init>" cls) ctor.c_body
      | None -> (
          (* Implicit default constructor: field inits only, plus the
             superclass chain. *)
          match Mj.Symtab.superclass tab cls with
          | Some super -> visit_ctor super 0
          | None -> ())
    end
  and take name stmts =
    out := (name, stmts) :: !out;
    Mj.Visit.iter_exprs
      (fun e ->
        match e.expr with
        | Call { resolved = Some r; mname; _ } when not r.rc_native ->
            visit_method r.rc_class mname
        | New_object (ncls, args) -> visit_ctor ncls (List.length args)
        | _ -> ())
      stmts
  in
  visit_method cls mname;
  !out

(* Canonical owner of a possibly-inherited static field. *)
let owner_of checked cls fname =
  match Mj.Symtab.lookup_field checked.Mj.Typecheck.symtab cls fname with
  | Some (defining, _) -> defining
  | None -> cls

let detect checked =
  let user =
    List.map (fun c -> c.cl_name) checked.Mj.Typecheck.program.classes
  in
  let accesses : (string * string, access list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let note root ~cls ~field ~write loc =
    let cls = owner_of checked cls field in
    if List.mem cls user then begin
      let key = (cls, field) in
      let cell =
        match Hashtbl.find_opt accesses key with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.replace accesses key c;
            c
      in
      cell := { a_root = root; a_loc = loc; a_write = write } :: !cell
    end
  in
  List.iter
    (fun root ->
      List.iter
        (fun (_, stmts) ->
          Mj.Visit.iter_exprs
            (fun e ->
              match e.expr with
              | Static_field (cls, field) ->
                  note root ~cls ~field ~write:false e.eloc
              | Assign (Lstatic_field (cls, field), _) ->
                  note root ~cls ~field ~write:true e.eloc
              | Op_assign (_, Lstatic_field (cls, field), _)
              | Pre_incr (_, Lstatic_field (cls, field))
              | Post_incr (_, Lstatic_field (cls, field)) ->
                  note root ~cls ~field ~write:true e.eloc;
                  note root ~cls ~field ~write:false e.eloc
              | _ -> ())
            stmts)
        (reachable_bodies checked ~cls:root ~mname:"run"))
    (thread_classes checked);
  let races = ref [] in
  Hashtbl.iter
    (fun (cls, field) cell ->
      let accs = List.rev !cell in
      let roots = List.sort_uniq compare (List.map (fun a -> a.a_root) accs) in
      let writes =
        List.filter_map
          (fun a -> if a.a_write then Some (a.a_root, a.a_loc) else None)
          accs
      in
      if List.length roots >= 2 && writes <> [] then
        races :=
          { r_class = cls;
            r_field = field;
            r_roots = roots;
            r_writes = writes;
            r_reads =
              List.filter_map
                (fun a -> if a.a_write then None else Some (a.a_root, a.a_loc))
                accs;
            r_loc = snd (List.hd writes) }
          :: !races)
    accesses;
  List.sort (fun a b -> compare (a.r_class, a.r_field) (b.r_class, b.r_field))
    !races

let describe r =
  let writers =
    List.sort_uniq compare (List.map (fun (root, _) -> root) r.r_writes)
  in
  Printf.sprintf
    "static field '%s.%s' is shared by %s and written from %s without \
     synchronization"
    r.r_class r.r_field
    (String.concat ", " (List.map (fun c -> c ^ ".run") r.r_roots))
    (String.concat ", " (List.map (fun c -> c ^ ".run") writers))
