(* Static shared-field race detector.

   The static counterpart of the paper's Fig. 8 demonstration: instead
   of exhibiting one bad interleaving with seeded schedules, walk the
   call graph from every thread's [run] entry point and report each
   static field that is reachable from more than one concurrent root
   with at least one write. Programs without [Thread] subclasses (the
   ASR style the policy of use enforces) trivially have no races —
   reactions are executed sequentially by the simulator.

   Roots are the [run] methods of Thread subclasses (and everything
   they reach, including constructors of objects they allocate), plus
   [main] itself for the window where started threads may still be
   running: accesses [main] performs after a [start()] and before the
   matching unconditional [join()]s are concurrent with the threads.
   Accesses after all joins are ordered by the joins and not counted.

   A single root still races with itself when its class can be
   instantiated more than once — two instances of the same [run] method
   interleave just like two distinct classes do. *)

open Mj.Ast

type access = { a_root : string; a_loc : Mj.Loc.t; a_write : bool }

type race = {
  r_class : string;  (* class declaring the field *)
  r_field : string;
  r_roots : string list;  (* thread classes that reach the field *)
  r_writes : (string * Mj.Loc.t) list;  (* root, write site *)
  r_reads : (string * Mj.Loc.t) list;
  r_loc : Mj.Loc.t;  (* representative source span (first write) *)
}

let thread_classes checked =
  let tab = checked.Mj.Typecheck.symtab in
  List.filter_map
    (fun cls ->
      if
        (not (String.equal cls.cl_name "Thread"))
        && Mj.Symtab.is_subclass tab ~sub:cls.cl_name ~super:"Thread"
      then Some cls.cl_name
      else None)
    checked.Mj.Typecheck.program.classes

(* Bodies reachable from one root method, across resolved calls,
   dynamic-dispatch overrides, and constructor invocations. *)
let reachable_bodies checked ~cls ~mname =
  let tab = checked.Mj.Typecheck.symtab in
  let program = Mj.Symtab.program tab in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let override_bodies defining mname =
    List.filter_map
      (fun c ->
        if
          (not (String.equal c.cl_name defining))
          && Mj.Symtab.is_subclass tab ~sub:c.cl_name ~super:defining
        then
          Option.bind (find_method c mname) (fun m ->
              Option.map (fun b -> (c.cl_name, mname, b)) m.m_body)
        else None)
      program.classes
  in
  let rec visit_method cls mname =
    let key = ("m", cls, mname) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      match Mj.Symtab.lookup_method tab cls mname with
      | None -> ()
      | Some (defining, m) ->
          (match m.m_body with
          | Some body -> take (Printf.sprintf "%s.%s" defining mname) body
          | None -> ());
          List.iter
            (fun (owner, mn, body) ->
              let key = ("m", owner, mn) in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                take (Printf.sprintf "%s.%s" owner mn) body
              end)
            (override_bodies defining mname)
    end
  and visit_ctor cls arity =
    let key = ("c", cls, string_of_int arity) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      (match find_class program cls with
      | Some decl ->
          List.iter
            (fun f ->
              match f.f_init with
              | Some e when not f.f_mods.is_static ->
                  take
                    (Printf.sprintf "%s.%s=" cls f.f_name)
                    [ { stmt = Expr e; sloc = e.eloc } ]
              | _ -> ())
            decl.cl_fields
      | None -> ());
      match Mj.Symtab.lookup_ctor tab cls arity with
      | Some ctor -> take (Printf.sprintf "%s.<init>" cls) ctor.c_body
      | None -> (
          (* Implicit default constructor: field inits only, plus the
             superclass chain. *)
          match Mj.Symtab.superclass tab cls with
          | Some super -> visit_ctor super 0
          | None -> ())
    end
  and take name stmts =
    out := (name, stmts) :: !out;
    Mj.Visit.iter_exprs
      (fun e ->
        match e.expr with
        | Call { resolved = Some r; mname; _ } when not r.rc_native ->
            visit_method r.rc_class mname
        | New_object (ncls, args) -> visit_ctor ncls (List.length args)
        | _ -> ())
      stmts
  in
  visit_method cls mname;
  !out

(* Canonical owner of a possibly-inherited static field. *)
let owner_of checked cls fname =
  match Mj.Symtab.lookup_field checked.Mj.Typecheck.symtab cls fname with
  | Some (defining, _) -> defining
  | None -> cls

(* Can more than one instance of [cls] exist?  Statically approximated:
   two or more [new cls(...)] sites anywhere in the program, or any
   such site under a loop.  (A site in a method invoked repeatedly is
   missed — the approximation errs towards fewer reports, like the rest
   of this detector.) *)
let multiply_instantiated checked cls =
  let sites = ref 0 and looped_site = ref false in
  let count_expr ~looped e =
    Mj.Visit.iter_expr
      (fun x ->
        match x.expr with
        | New_object (c, _) when String.equal c cls ->
            incr sites;
            if looped then looped_site := true
        | _ -> ())
      e
  in
  let rec walk ~looped s =
    match s.stmt with
    | Block ss -> List.iter (walk ~looped) ss
    | Var_decl (_, _, e) -> Option.iter (count_expr ~looped) e
    | Expr e -> count_expr ~looped e
    | Return e -> Option.iter (count_expr ~looped) e
    | Break | Continue | Empty -> ()
    | Super_call args -> List.iter (count_expr ~looped) args
    | If (c, t, f) ->
        count_expr ~looped c;
        walk ~looped t;
        Option.iter (walk ~looped) f
    | While (c, b) ->
        count_expr ~looped:true c;
        walk ~looped:true b
    | Do_while (b, c) ->
        walk ~looped:true b;
        count_expr ~looped:true c
    | For (init, c, u, b) ->
        (match init with
        | Some (For_var (_, _, e)) -> Option.iter (count_expr ~looped) e
        | Some (For_expr e) -> count_expr ~looped e
        | None -> ());
        Option.iter (count_expr ~looped:true) c;
        Option.iter (count_expr ~looped:true) u;
        walk ~looped:true b
  in
  List.iter
    (fun decl ->
      List.iter
        (fun b -> List.iter (walk ~looped:false) b.Mj.Visit.b_stmts)
        (Mj.Visit.bodies decl))
    checked.Mj.Typecheck.program.classes;
  !sites >= 2 || !looped_site

(* Static-field accesses of [stmts], reported to [note] under [root]. *)
let note_accesses note root stmts =
  Mj.Visit.iter_exprs
    (fun e ->
      match e.expr with
      | Static_field (cls, field) -> note root ~cls ~field ~write:false e.eloc
      | Assign (Lstatic_field (cls, field), _) ->
          note root ~cls ~field ~write:true e.eloc
      | Op_assign (_, Lstatic_field (cls, field), _)
      | Pre_incr (_, Lstatic_field (cls, field))
      | Post_incr (_, Lstatic_field (cls, field)) ->
          note root ~cls ~field ~write:true e.eloc;
          note root ~cls ~field ~write:false e.eloc
      | _ -> ())
    stmts

(* Calls to the native [Thread.start]/[Thread.join] inside [stmts]. *)
let thread_calls mname stmts =
  let n = ref 0 in
  Mj.Visit.iter_exprs
    (fun e ->
      match e.expr with
      | Call { mname = m; resolved = Some { rc_class = "Thread"; _ }; _ }
        when String.equal m mname ->
          incr n
      | _ -> ())
    stmts;
  !n

(* Walk each [main] body in order: once a thread has been started and
   not yet joined, main's own static-field accesses are concurrent with
   the running threads and count under the root "main".  Starts are
   counted anywhere in a statement (over-approximating the open
   window); joins close the window only from unconditional straight-line
   statements — a join under an [if] or loop may not execute. *)
let note_main_accesses checked note =
  let rec step (started, joined) s =
    match s.stmt with
    | Block ss -> List.fold_left step (started, joined) ss
    | _ ->
        let starts = thread_calls "start" [ s ] in
        let joins = thread_calls "join" [ s ] in
        if started > joined || starts > 0 then note_accesses note "main" [ s ];
        let unconditional =
          match s.stmt with Expr _ | Var_decl _ | Return _ -> true | _ -> false
        in
        (started + starts, if unconditional then joined + joins else joined)
  in
  List.iter
    (fun decl ->
      List.iter
        (fun m ->
          match (m.m_name, m.m_mods.is_static, m.m_body) with
          | "main", true, Some body ->
              ignore (List.fold_left step (0, 0) body)
          | _ -> ())
        decl.cl_methods)
    checked.Mj.Typecheck.program.classes

let detect checked =
  let user =
    List.map (fun c -> c.cl_name) checked.Mj.Typecheck.program.classes
  in
  let accesses : (string * string, access list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let note root ~cls ~field ~write loc =
    let cls = owner_of checked cls field in
    if List.mem cls user then begin
      let key = (cls, field) in
      let cell =
        match Hashtbl.find_opt accesses key with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.replace accesses key c;
            c
      in
      cell := { a_root = root; a_loc = loc; a_write = write } :: !cell
    end
  in
  List.iter
    (fun root ->
      List.iter
        (fun (_, stmts) -> note_accesses note root stmts)
        (reachable_bodies checked ~cls:root ~mname:"run"))
    (thread_classes checked);
  note_main_accesses checked note;
  let races = ref [] in
  Hashtbl.iter
    (fun (cls, field) cell ->
      let accs = List.rev !cell in
      let roots = List.sort_uniq compare (List.map (fun a -> a.a_root) accs) in
      let writes =
        List.filter_map
          (fun a -> if a.a_write then Some (a.a_root, a.a_loc) else None)
          accs
      in
      let racy =
        writes <> []
        &&
        match roots with
        | [] -> false
        | [ root ] ->
            (* One root races with itself when two of its instances can
               run; [main] alone cannot (it is a single thread). *)
            (not (String.equal root "main"))
            && multiply_instantiated checked root
        | _ :: _ :: _ -> true
      in
      if racy then
        races :=
          { r_class = cls;
            r_field = field;
            r_roots = roots;
            r_writes = writes;
            r_reads =
              List.filter_map
                (fun a -> if a.a_write then None else Some (a.a_root, a.a_loc))
                accs;
            r_loc = snd (List.hd writes) }
          :: !races)
    accesses;
  List.sort (fun a b -> compare (a.r_class, a.r_field) (b.r_class, b.r_field))
    !races

(* How a root reaches the field, for messages: thread roots via their
   [run] method, the pseudo-root "main" via its pre-join window. *)
let root_label root =
  if String.equal root "main" then "main (between start and join)"
  else root ^ ".run"

let describe r =
  let writers =
    List.sort_uniq compare (List.map (fun (root, _) -> root) r.r_writes)
  in
  match r.r_roots with
  | [ root ] ->
      Printf.sprintf
        "static field '%s.%s' is written from %s and multiple %s instances \
         may run concurrently"
        r.r_class r.r_field (root_label root) root
  | roots ->
      Printf.sprintf
        "static field '%s.%s' is shared by %s and written from %s without \
         synchronization"
        r.r_class r.r_field
        (String.concat ", " (List.map root_label roots))
        (String.concat ", " (List.map root_label writers))
