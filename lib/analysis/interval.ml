(* Interval analysis over MJ method bodies.

   An abstract-interpretation client of {!Cfg} and {!Dataflow}: each int
   local is tracked as a 32-bit interval, each array local as a
   statically-known length. The analysis follows the runtime's wrapping
   semantics — any operation whose exact result range escapes
   [int32] goes to top, so a concrete wrapped value is always inside the
   abstract interval (no claim is ever made that elides a real trap).

   Three facts are extracted from the converged fixpoint:
   - [safe_sites]: array accesses (keyed by the span of the index
     subexpression) whose index interval provably sits inside the
     array's known length, on every path — the bounds-check elision plan;
   - [loop_envs]: the abstract environment at each [for] statement's
     entry, which {!for_bound} turns into iteration counts that see
     through locals (copied bounds, affine arithmetic, nested loops);
   - reachability (implicitly): dead branches refine to bottom. *)

open Mj.Ast

let min32 = -0x8000_0000
let max32 = 0x7fff_ffff

type itv = { lo : int; hi : int }

let top = { lo = min32; hi = max32 }

let is_top i = i.lo = min32 && i.hi = max32

(* Exact when the true range fits in int32; top otherwise (the concrete
   machine wraps, so a clamped interval would be unsound). *)
let norm lo hi = if lo < min32 || hi > max32 then top else { lo; hi }

let const n = norm n n

let join_itv a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let widen_itv old next =
  { lo = (if next.lo < old.lo then min32 else old.lo);
    hi = (if next.hi > old.hi then max32 else old.hi) }

let meet_itv a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let add_itv a b = norm (a.lo + b.lo) (a.hi + b.hi)
let sub_itv a b = norm (a.lo - b.hi) (a.hi - b.lo)
let neg_itv a = norm (-a.hi) (-a.lo)

let mul_itv a b =
  (* Products of int32 bounds can reach 2^62; go through Int64. *)
  let p x y = Int64.mul (Int64.of_int x) (Int64.of_int y) in
  let c1 = p a.lo b.lo and c2 = p a.lo b.hi in
  let c3 = p a.hi b.lo and c4 = p a.hi b.hi in
  let lo = List.fold_left min c1 [ c2; c3; c4 ] in
  let hi = List.fold_left max c1 [ c2; c3; c4 ] in
  if
    Int64.compare lo (Int64.of_int min32) < 0
    || Int64.compare hi (Int64.of_int max32) > 0
  then top
  else { lo = Int64.to_int lo; hi = Int64.to_int hi }

let div_itv a b =
  (* Only when the divisor cannot be zero; truncation towards zero
     matches both OCaml and Java. *)
  if b.lo <= 0 && b.hi >= 0 then top
  else
    let c1 = a.lo / b.lo and c2 = a.lo / b.hi in
    let c3 = a.hi / b.lo and c4 = a.hi / b.hi in
    let lo = List.fold_left min c1 [ c2; c3; c4 ] in
    let hi = List.fold_left max c1 [ c2; c3; c4 ] in
    norm lo hi

let mod_itv a b =
  if b.lo <= 0 && b.hi >= 0 then top
  else
    (* Java remainder takes the dividend's sign; |r| < max |divisor|. *)
    let m = max (abs b.lo) (abs b.hi) - 1 in
    if a.lo >= 0 then { lo = 0; hi = min a.hi m }
    else if a.hi <= 0 then { lo = max a.lo (-m); hi = 0 }
    else { lo = max a.lo (-m); hi = min a.hi m }

let shl_itv a b =
  match b with
  | { lo; hi } when lo = hi && lo >= 0 && lo <= 31 ->
      let s x = Int64.shift_left (Int64.of_int x) lo in
      let l = s a.lo and h = s a.hi in
      if
        Int64.compare l (Int64.of_int min32) < 0
        || Int64.compare h (Int64.of_int max32) > 0
      then top
      else { lo = Int64.to_int l; hi = Int64.to_int h }
  | _ -> top

let shr_itv a b =
  match b with
  | { lo; hi } when lo = hi && lo >= 0 && lo <= 31 ->
      { lo = a.lo asr lo; hi = a.hi asr lo }
  | _ -> top

let band_itv a b =
  (* x & mask with a non-negative constant mask lands in [0, mask]. *)
  if b.lo = b.hi && b.lo >= 0 then { lo = 0; hi = b.lo }
  else if a.lo = a.hi && a.lo >= 0 then { lo = 0; hi = a.lo }
  else top

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

module SMap = Map.Make (String)

type vstate =
  | Vint of itv
  | Varr of int option  (* statically-known array length *)

type env = vstate SMap.t

(* [None] is unreachable (bottom). A variable absent from the map is
   unknown — entry parameters, non-scalar types, or joins of
   incompatible states all stay absent, which reads back as top. *)
type state = env option

let equal_vstate a b =
  match (a, b) with
  | Vint x, Vint y -> x.lo = y.lo && x.hi = y.hi
  | Varr x, Varr y -> x = y
  | Vint _, Varr _ | Varr _, Vint _ -> false

let join_env a b =
  SMap.merge
    (fun _ x y ->
      match (x, y) with
      | Some (Vint i), Some (Vint j) -> Some (Vint (join_itv i j))
      | Some (Varr m), Some (Varr n) -> if m = n then Some (Varr m) else None
      | _ -> None)
    a b

let widen_env old next =
  SMap.merge
    (fun _ x y ->
      match (x, y) with
      | Some (Vint i), Some (Vint j) -> Some (Vint (widen_itv i j))
      | Some (Varr m), Some (Varr n) -> if m = n then Some (Varr m) else None
      | _ -> None)
    old next

module State = struct
  type t = state

  let bottom = None

  let equal a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> SMap.equal equal_vstate x y
    | None, Some _ | Some _, None -> false

  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some x, Some y -> Some (join_env x y)

  let widen a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some x, Some y -> Some (widen_env x y)
end

(* ------------------------------------------------------------------ *)
(* Abstract evaluation                                                 *)
(* ------------------------------------------------------------------ *)

type aval = Aint of itv | Aarr of int option | Aother

type ctx = {
  checked : Mj.Typecheck.checked;
  mutable record : bool;  (* true during the post-fixpoint reporting pass *)
  sites : (Mj.Loc.t, bool) Hashtbl.t;  (* index-expr span -> always safe *)
  loop_envs : (Mj.Loc.t, env) Hashtbl.t;  (* for-stmt span -> entry env *)
  hints : (string -> itv list -> itv option) option;
      (* caller-supplied ranges for opaque int-returning calls, keyed by
         method name — e.g. the ASR harness bounding readPort by the
         fused net's folded constants or the stimulus range *)
}

let make_ctx ?hints checked =
  { checked; record = false; sites = Hashtbl.create 32;
    loop_envs = Hashtbl.create 8; hints }

let lookup env name ety =
  match SMap.find_opt name env with
  | Some (Vint i) -> Aint i
  | Some (Varr l) -> Aarr l
  | None -> (
      match ety with
      | Some TInt -> Aint top
      | Some (TArray _) -> Aarr None
      | _ -> Aother)

let bind env name = function
  | Aint i -> SMap.add name (Vint i) env
  | Aarr l -> SMap.add name (Varr l) env
  | Aother -> SMap.remove name env

let join_aval a b =
  match (a, b) with
  | Aint i, Aint j -> Aint (join_itv i j)
  | Aarr m, Aarr n -> Aarr (if m = n then m else None)
  | _ -> Aother

let as_itv = function Aint i -> i | Aarr _ | Aother -> top

let record_site ctx loc safe =
  if ctx.record then
    let prev = Option.value (Hashtbl.find_opt ctx.sites loc) ~default:true in
    Hashtbl.replace ctx.sites loc (prev && safe)

let rec eval ctx env e : env * aval =
  match e.expr with
  | Int_lit n -> (env, Aint (const n))
  | Double_lit _ | Bool_lit _ | String_lit _ | Null_lit | This -> (env, Aother)
  | Local name | Name name -> (env, lookup env name e.ety)
  | Field_access (o, fname) -> (
      let env, _ = eval ctx env o in
      match e.ety with
      | Some TInt -> (env, Aint top)
      | Some (TArray _) ->
          let len =
            match o.ety with
            | Some (TClass cls) ->
                Const_eval.field_array_length ctx.checked ~cls ~field:fname
            | _ -> None
          in
          (env, Aarr len)
      | _ -> (env, Aother))
  | Static_field _ -> (
      match e.ety with
      | Some TInt -> (
          match Const_eval.const_int ctx.checked e with
          | Some n -> (env, Aint (const n))
          | None -> (env, Aint top))
      | Some (TArray _) -> (env, Aarr None)
      | _ -> (env, Aother))
  | Array_length o -> (
      let env, ov = eval ctx env o in
      match ov with
      | Aarr (Some n) -> (env, Aint (const n))
      | _ -> (
          match Const_eval.const_int ctx.checked e with
          | Some n -> (env, Aint (const n))
          | None -> (env, Aint { lo = 0; hi = max32 })))
  | Index (a, i) ->
      let env, av = eval ctx env a in
      let env, iv = eval ctx env i in
      note_access ctx av iv i.eloc;
      let v =
        match e.ety with
        | Some TInt -> Aint top
        | Some (TArray _) -> Aarr None
        | _ -> Aother
      in
      (env, v)
  | Call call ->
      let env =
        match call.recv with
        | Rexpr o -> fst (eval ctx env o)
        | Rsuper | Rimplicit | Rstatic _ -> env
      in
      let env, arg_itvs =
        List.fold_left_map
          (fun env a ->
            let env, v = eval ctx env a in
            (env, as_itv v))
          env call.args
      in
      (* Calls cannot rebind the caller's locals, and a tracked array
         length is an object property fixed at allocation — so no havoc
         is needed; only the result is unknown, unless the caller
         supplied a range hint for this method. *)
      let v =
        match e.ety with
        | Some TInt -> (
            match ctx.hints with
            | Some h -> (
                match h call.mname arg_itvs with
                | Some i -> Aint i
                | None -> Aint top)
            | None -> Aint top)
        | Some (TArray _) -> Aarr None
        | _ -> Aother
      in
      (env, v)
  | New_object (_, args) ->
      (List.fold_left (fun env a -> fst (eval ctx env a)) env args, Aother)
  | New_array (_, [ dim ]) -> (
      let env, dv = eval ctx env dim in
      match dv with
      | Aint { lo; hi } when lo = hi && lo >= 0 -> (env, Aarr (Some lo))
      | _ -> (env, Aarr None))
  | New_array (_, dims) ->
      (List.fold_left (fun env d -> fst (eval ctx env d)) env dims, Aarr None)
  | Unary (Neg, x) ->
      let env, xv = eval ctx env x in
      let v =
        match xv with Aint i -> Aint (neg_itv i) | _ -> as_int_val e
      in
      (env, v)
  | Unary (Not, x) -> (fst (eval ctx env x), Aother)
  | Binary ((And | Or), a, b) ->
      (* Short-circuit in expression position: the right operand may or
         may not run — join both possibilities. *)
      let env_a, _ = eval ctx env a in
      let env_ab, _ = eval ctx env_a b in
      (join_env env_a env_ab, Aother)
  | Binary ((Eq | Neq | Lt | Gt | Le | Ge), a, b) ->
      let env, _ = eval ctx env a in
      let env, _ = eval ctx env b in
      (env, Aother)
  | Binary (op, a, b) -> (
      let env, av = eval ctx env a in
      let env, bv = eval ctx env b in
      match (e.ety, av, bv) with
      | Some TInt, Aint x, Aint y ->
          let v =
            match op with
            | Add -> add_itv x y
            | Sub -> sub_itv x y
            | Mul -> mul_itv x y
            | Div -> div_itv x y
            | Mod -> mod_itv x y
            | Shl -> shl_itv x y
            | Shr -> shr_itv x y
            | Band -> band_itv x y
            | Bor | Bxor -> top
            | Eq | Neq | Lt | Gt | Le | Ge | And | Or -> top
          in
          (env, Aint v)
      | Some TInt, _, _ -> (env, Aint top)
      | _ -> (env, Aother))
  | Assign (lv, rhs) ->
      let env, v = eval ctx env rhs in
      let env = assign_lvalue ctx env lv v in
      (env, v)
  | Op_assign (op, lv, rhs) ->
      let env, old = read_lvalue ctx env lv in
      let env, rv = eval ctx env rhs in
      let v =
        match (old, rv) with
        | Aint x, Aint y -> (
            match op with
            | Add -> Aint (add_itv x y)
            | Sub -> Aint (sub_itv x y)
            | Mul -> Aint (mul_itv x y)
            | Div -> Aint (div_itv x y)
            | Mod -> Aint (mod_itv x y)
            | Shl -> Aint (shl_itv x y)
            | Shr -> Aint (shr_itv x y)
            | Band -> Aint (band_itv x y)
            | Bor | Bxor -> Aint top
            | Eq | Neq | Lt | Gt | Le | Ge | And | Or -> Aother)
        | _ -> if e.ety = Some TInt then Aint top else Aother
      in
      let env = write_lvalue ctx env lv v in
      (env, v)
  | Pre_incr (d, lv) ->
      let env, old = read_lvalue ctx env lv in
      let v =
        match old with
        | Aint i -> Aint (add_itv i (const d))
        | _ -> Aint top
      in
      (write_lvalue ctx env lv v, v)
  | Post_incr (d, lv) ->
      let env, old = read_lvalue ctx env lv in
      let v =
        match old with
        | Aint i -> Aint (add_itv i (const d))
        | _ -> Aint top
      in
      let old = match old with Aint _ -> old | _ -> Aint top in
      (write_lvalue ctx env lv v, old)
  | Cast (TInt, x) -> (
      let env, xv = eval ctx env x in
      match (x.ety, xv) with
      | Some TInt, Aint i -> (env, Aint i)
      | _ -> (env, Aint top))
  | Cast (_, x) ->
      let env, xv = eval ctx env x in
      let v = match (e.ety, xv) with Some (TArray _), Aarr l -> Aarr l | _ -> Aother in
      (env, v)
  | Cond (c, a, b) ->
      let env, _ = eval ctx env c in
      let env_a, va = eval ctx env a in
      let env_b, vb = eval ctx env b in
      (join_env env_a env_b, join_aval va vb)

and as_int_val e = if e.ety = Some TInt then Aint top else Aother

and note_access ctx av iv loc =
  let safe =
    match (av, iv) with
    | Aarr (Some len), Aint { lo; hi } -> lo >= 0 && hi < len
    | _ -> false
  in
  record_site ctx loc safe

and read_lvalue ctx env = function
  | Lname name | Llocal name -> (env, lookup env name (Some TInt))
  | Lfield (o, _) -> (fst (eval ctx env o), Aint top)
  | Lstatic_field _ -> (env, Aint top)
  | Lindex (a, i) ->
      let env, av = eval ctx env a in
      let env, iv = eval ctx env i in
      note_access ctx av iv i.eloc;
      (env, Aint top)

and write_lvalue ctx env lv v =
  match lv with
  | Lname name | Llocal name -> bind env name v
  | Lfield (o, _) -> fst (eval ctx env o)
  | Lstatic_field _ -> env
  | Lindex _ ->
      (* The array and index were already evaluated (and the site
         recorded) by the paired [read_lvalue]. *)
      env

and assign_lvalue ctx env lv v =
  match lv with
  | Lname name | Llocal name -> bind env name v
  | Lfield (o, _) -> fst (eval ctx env o)
  | Lstatic_field _ -> env
  | Lindex (a, i) ->
      let env, av = eval ctx env a in
      let env, iv = eval ctx env i in
      note_access ctx av iv i.eloc;
      env

(* ------------------------------------------------------------------ *)
(* Condition refinement                                                *)
(* ------------------------------------------------------------------ *)

let negate_rel = function
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt
  | Eq -> Neq
  | Neq -> Eq
  | op -> op

let mirror_rel = function
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | op -> op

(* Narrow [x] to satisfy [x REL y]; None means the branch is dead. *)
let refine_itv x rel y =
  match rel with
  | Lt -> if y.hi = min32 then None else meet_itv x { lo = min32; hi = y.hi - 1 }
  | Le -> meet_itv x { lo = min32; hi = y.hi }
  | Gt -> if y.lo = max32 then None else meet_itv x { lo = y.lo + 1; hi = max32 }
  | Ge -> meet_itv x { lo = y.lo; hi = max32 }
  | Eq -> meet_itv x y
  | Neq ->
      if y.lo = y.hi && x.lo = x.hi && x.lo = y.lo then None
      else
        let x = if y.lo = y.hi && x.lo = y.lo then { x with lo = x.lo + 1 } else x in
        let x = if y.lo = y.hi && x.hi = y.lo then { x with hi = x.hi - 1 } else x in
        if x.lo > x.hi then None else Some x
  | _ -> Some x

let local_of e =
  match e.expr with Local n | Name n -> Some n | _ -> None

(* Locals written anywhere inside [e] (assignments, compound
   assignments, increments). *)
let written_locals e =
  let acc = ref [] in
  Mj.Visit.iter_expr
    (fun x ->
      match x.expr with
      | Assign (lv, _) | Op_assign (_, lv, _) | Pre_incr (_, lv)
      | Post_incr (_, lv) -> (
          match lv with
          | Lname n | Llocal n -> if not (List.mem n !acc) then acc := n :: !acc
          | Lfield _ | Lstatic_field _ | Lindex _ -> ())
      | _ -> ())
    e;
  !acc

let rec assume ctx env cond sense : state =
  match cond.expr with
  | Bool_lit b -> if b = sense then Some env else None
  | Unary (Not, x) -> assume ctx env x (not sense)
  | Binary (((Lt | Le | Gt | Ge | Eq | Neq) as op), l, r)
    when l.ety = Some TInt && r.ety = Some TInt ->
      let env, lv = eval ctx env l in
      let env, rv = eval ctx env r in
      let op = if sense then op else negate_rel op in
      let li = as_itv lv and ri = as_itv rv in
      (* The relation constrains the operand *values at comparison
         time*. If the condition itself writes a local (e.g.
         [i < ++i]), that local's post-condition binding differs from
         the compared value, so narrowing it with the relation would be
         unsound — skip those. *)
      let written = written_locals cond in
      let narrow env name rel other =
        if List.mem name written then Some env
        else
          match SMap.find_opt name env with
          | Some (Vint cur) -> (
              match refine_itv cur rel other with
              | Some i -> Some (SMap.add name (Vint i) env)
              | None -> None)
          | Some (Varr _) -> Some env
          | None -> (
              match refine_itv top rel other with
              | Some i -> Some (SMap.add name (Vint i) env)
              | None -> None)
      in
      let st =
        match local_of l with
        | Some n -> narrow env n op ri
        | None -> Some env
      in
      Option.bind st (fun env ->
          match local_of r with
          | Some n -> narrow env n (mirror_rel op) li
          | None -> Some env)
  | _ ->
      (* Boolean locals, calls, etc.: evaluate for side effects only. *)
      Some (fst (eval ctx env cond))

(* ------------------------------------------------------------------ *)
(* Transfer + analysis driver                                          *)
(* ------------------------------------------------------------------ *)

let transfer ctx cmd (st : state) : state =
  match st with
  | None -> None
  | Some env -> (
      match cmd with
      | Cfg.Decl (_, name, init) -> (
          match init with
          | Some e ->
              let env, v = eval ctx env e in
              Some (bind env name v)
          | None -> Some (SMap.remove name env))
      | Cfg.Eval e -> Some (fst (eval ctx env e))
      | Cfg.Assume (c, sense) -> assume ctx env c sense
      | Cfg.Ret e -> (
          match e with
          | Some e -> Some (fst (eval ctx env e))
          | None -> Some env)
      | Cfg.Loop_head loc ->
          if ctx.record then begin
            let env' =
              match Hashtbl.find_opt ctx.loop_envs loc with
              | Some prev -> join_env prev env
              | None -> env
            in
            Hashtbl.replace ctx.loop_envs loc env'
          end;
          Some env)

type summary = {
  s_checked : Mj.Typecheck.checked;
  s_safe_sites : (Mj.Loc.t, unit) Hashtbl.t;
  s_loop_envs : (Mj.Loc.t, env) Hashtbl.t;
}

module Solver = Dataflow.Make (State)

let analyze_uncached ?hints checked stmts =
  let cfg = Cfg.build stmts in
  let ctx = make_ctx ?hints checked in
  let in_states =
    Solver.solve ~transfer:(transfer ctx) cfg ~init:(Some SMap.empty)
  in
  (* Reporting pass: walk every reachable block once under its converged
     in-state, collecting loop-entry environments and site safety. *)
  ctx.record <- true;
  Array.iteri
    (fun i b ->
      match in_states.(i) with
      | None -> ()
      | Some _ ->
          ignore
            (List.fold_left
               (fun st c -> transfer ctx c st)
               in_states.(i) b.Cfg.cmds))
    cfg.Cfg.blocks;
  let safe = Hashtbl.create 32 in
  Hashtbl.iter (fun loc ok -> if ok then Hashtbl.replace safe loc ()) ctx.sites;
  { s_checked = checked; s_safe_sites = safe; s_loop_envs = ctx.loop_envs }

(* Memoized on the physical identity of the statement list: policy
   passes ask about every loop of the same body in turn. Weak keys
   (ephemerons) so a long-lived process analyzing many programs does
   not pin every checked program it has ever seen. *)
module Cache = Ephemeron.K1.Make (struct
  type t = stmt list

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let cache : summary Cache.t = Cache.create 64

(* The cache is keyed on the statements alone, so hinted runs — whose
   summaries depend on the hint function too — bypass it entirely. *)
let analyze ?hints checked stmts =
  match hints with
  | Some _ -> analyze_uncached ?hints checked stmts
  | None -> (
      match Cache.find_opt cache stmts with
      | Some s when s.s_checked == checked -> s
      | _ ->
          let s = analyze_uncached checked stmts in
          Cache.replace cache stmts s;
          s)

let safe_sites summary = summary.s_safe_sites

let is_safe_site summary loc = Hashtbl.mem summary.s_safe_sites loc

(* ------------------------------------------------------------------ *)
(* Loop bounds from the fixpoint                                       *)
(* ------------------------------------------------------------------ *)

(* The closed-form iteration count assumes the limit expression is
   stable across iterations: no side effects of its own, and none of its
   locals written by the body or the update. *)
let rec pure_limit e =
  match e.expr with
  | Int_lit _ | Local _ | Name _ | Static_field _ -> true
  | Array_length o | Field_access (o, _) -> pure_limit o
  | Unary (Neg, o) | Cast (TInt, o) -> pure_limit o
  | Binary ((Add | Sub | Mul | Div | Mod | Shl | Shr | Band | Bor | Bxor), a, b)
    ->
      pure_limit a && pure_limit b
  | _ -> false

let locals_of e =
  let acc = ref [] in
  Mj.Visit.iter_expr
    (fun x ->
      match x.expr with
      | Local n | Name n -> if not (List.mem n !acc) then acc := n :: !acc
      | _ -> ())
    e;
  !acc

let modifies_local name stmts =
  let hit lv =
    match lv with
    | Lname n | Llocal n -> String.equal n name
    | Lfield _ | Lstatic_field _ | Lindex _ -> false
  in
  Mj.Visit.exists_expr
    (fun e ->
      match e.expr with
      | Assign (lv, _) | Op_assign (_, lv, _) | Pre_incr (_, lv)
      | Post_incr (_, lv) ->
          hit lv
      | _ -> false)
    stmts

let iterations ~start ~limit ~step ~op =
  let count =
    match op with
    | Lt -> if step > 0 then (limit - start + step - 1) / step else -1
    | Le -> if step > 0 then (limit - start + step) / step else -1
    | Gt -> if step < 0 then (start - limit - step - 1) / -step else -1
    | Ge -> if step < 0 then (start - limit - step) / -step else -1
    | _ -> -1
  in
  if count < 0 then None
  else if count = 0 then Some 0
  else
    (* The closed form assumes exact arithmetic, but the concrete index
       wraps at int32: the last executed increment starts from the
       largest (smallest) index still inside the loop, and its result
       must stay representable or the loop runs far past the computed
       count (e.g. [i < 2147483646; i += 4] wraps before ever failing
       the test). *)
    let no_wrap =
      match op with
      | Lt -> limit - 1 + step <= max32
      | Le -> limit + step <= max32
      | Gt -> limit + 1 + step >= min32
      | Ge -> limit + step >= min32
      | _ -> false
    in
    if no_wrap then Some count else None

(* Constant step detection by abstract probing: running the update from
   i = c must land on exactly i = c + step for two distinct probes —
   which accepts i++, i += k, i = i + k and rejects any non-unit affine
   or non-deterministic update. *)
let step_of ctx env name update =
  let probe v =
    let env = SMap.add name (Vint (const v)) env in
    let env, _ = eval ctx env update in
    match SMap.find_opt name env with
    | Some (Vint { lo; hi }) when lo = hi -> Some lo
    | _ -> None
  in
  match (probe 0, probe 1) with
  | Some c0, Some c1 when c1 = c0 + 1 && c0 <> 0 -> Some c0
  | _ -> None

let for_bound checked summary s =
  match s.stmt with
  | For (init, Some cond, Some update, body) -> (
      match Hashtbl.find_opt summary.s_loop_envs s.sloc with
      | None -> None
      | Some env0 -> (
          let ctx = make_ctx checked in
          let index =
            match init with
            | Some (For_var (TInt, name, Some e)) -> Some (name, e)
            | Some (For_expr { expr = Assign ((Lname name | Llocal name), e); _ })
              ->
                Some (name, e)
            | _ -> None
          in
          match index with
          | None -> None
          | Some (name, start_e) -> (
              let env1, start_v = eval ctx env0 start_e in
              let env1 = bind env1 name start_v in
              let test =
                match cond.expr with
                | Binary (((Lt | Le | Gt | Ge) as op), l, r) -> (
                    match (local_of l, local_of r) with
                    | Some n, _ when String.equal n name -> Some (op, r)
                    | _, Some n when String.equal n name ->
                        Some (mirror_rel op, l)
                    | _ -> None)
                | _ -> None
              in
              match test with
              | None -> None
              | Some (op, limit_e) -> (
                  let loop_stmts = [ body; { s with stmt = Expr update } ] in
                  let stable =
                    pure_limit limit_e
                    && (not (List.mem name (locals_of limit_e)))
                    && List.for_all
                         (fun n -> not (modifies_local n loop_stmts))
                         (locals_of limit_e)
                  in
                  (* The constant step from [step_of] is probed in the
                     loop-entry environment, so every local the update
                     reads (other than the index itself) must keep its
                     entry value across iterations — reject if the body
                     or the update writes one (e.g. [i += k] with
                     [k = 1] in the body). *)
                  let step_stable =
                    List.for_all
                      (fun n ->
                        String.equal n name
                        || not (modifies_local n loop_stmts))
                      (locals_of update)
                  in
                  if
                    (not stable) || (not step_stable)
                    || modifies_local name [ body ]
                  then None
                  else
                    match (start_v, eval ctx env1 limit_e) with
                    | Aint start, (_, Aint limit) -> (
                        if is_top start || is_top limit then None
                        else
                          match step_of ctx env1 name update with
                          | None -> None
                          | Some step ->
                              (* Worst case over the abstract start and
                                 limit: most distant pairing. *)
                              let start_w =
                                if step > 0 then start.lo else start.hi
                              in
                              let limit_w =
                                if step > 0 then limit.hi else limit.lo
                              in
                              if
                                (step > 0 && (start.lo = min32 || limit.hi = max32))
                                || (step < 0
                                   && (start.hi = max32 || limit.lo = min32))
                              then None
                              else
                                iterations ~start:start_w ~limit:limit_w ~step
                                  ~op)
                    | _ -> None))))
  | _ -> None
