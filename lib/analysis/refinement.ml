(* Per-transform verification conditions for the SFR engine.

   [Engine.refine] records, for every iteration, the program before and
   after the one transform it applied. This module checks a simulation
   relation between those two ASTs, per transform, so the provenance
   audit becomes a chain of discharged correspondences instead of one
   end-to-end leap:

   - while-to-for / do-while-to-for: the rewritten loop is structurally
     bisimilar (same condition, same per-iteration effect) and the
     initializer motion is effect-equal on the interval domain; where
     the trip count is decidable the two loops are additionally unrolled
     side by side and compared state-by-state. A converted do-while must
     prove its entry test — the for loop tests before the first
     iteration, the do-while body ran unconditionally.
   - hoist-alloc: the reactive allocation site is replaced by an alias
     to a fresh private arena field, preallocated in every constructor
     at the same constant size and zero-filled to the element type's
     default before use; the local provably never escapes the method
     ([Escape.local_escapes]), so the aliasing is unobservable.
   - privatize-fields: only field visibility changed, and the before
     program never touches the field from outside the declaring class.
   - remove-finalizers: only methods named [finalize] were removed, and
     the before program never calls one.

   Everything outside the recognized rewrite sites must be structurally
   identical — an unrecognized difference fails a VC. A failing VC
   carries both source spans so the caller (lib/core's [Verify]) can
   emit a [Rule.violation] pointing at the before and after sites.

   Soundness caveat: the simulation argument lives on the interval
   domain over locals — heap effects are compared structurally, not
   semantically, and statement pairs the aligner cannot match are
   rejected rather than explored. The checker is therefore sound for
   rejection (a discharged VC really is a simulation on the abstract
   domain) but incomplete: a semantically correct transform written in
   an unexpected shape is refused. *)

open Mj.Ast

type vc = {
  vc_transform : string;
  vc_class : string;
  vc_site : string;  (* human description of the rewrite site *)
  vc_before : Mj.Loc.t;
  vc_after : Mj.Loc.t;
  vc_ok : bool;
  vc_detail : string;  (* why it is discharged, or why it failed *)
}

let vc ~transform ~cls ~site ~before ~after ok detail =
  { vc_transform = transform; vc_class = cls; vc_site = site;
    vc_before = before; vc_after = after; vc_ok = ok; vc_detail = detail }

(* ------------------------------------------------------------------ *)
(* Interval-domain execution helpers                                   *)
(* ------------------------------------------------------------------ *)

let empty_env : Interval.state = Some Interval.SMap.empty

let exec ctx stmts (st : Interval.state) : Interval.state =
  match (st, stmts) with
  | None, _ -> None
  | Some _, [] -> st
  | Some _, _ ->
      let cfg = Cfg.build stmts in
      let in_states =
        Interval.Solver.solve ~transfer:(Interval.transfer ctx) cfg ~init:st
      in
      in_states.(cfg.Cfg.exit_id)

(* Decide a condition under an abstract environment: assuming the
   opposite truth value yields the unreachable state exactly when the
   condition is definite. *)
type truth = T_true | T_false | T_unknown

let truth ctx env cond =
  if Interval.assume ctx env cond false = None then T_true
  else if Interval.assume ctx env cond true = None then T_false
  else T_unknown

(* Unroll one loop on the interval domain, recording the environment
   after every iteration. [test_first] distinguishes while/for from
   do-while. Stops at [cap] iterations or when the condition becomes
   abstractly undecidable. *)
type unrolled = {
  u_states : Interval.env list;  (* after each completed iteration *)
  u_exact : bool;  (* loop provably terminated within the cap *)
}

let unroll_cap = 4096

let unroll ctx ~test_first ~cond ~body env0 =
  let rec go env n acc =
    if n >= unroll_cap then { u_states = List.rev acc; u_exact = false }
    else
      let step env acc =
        match exec ctx body (Some env) with
        | None -> None
        | Some env' -> Some (env', env' :: acc)
      in
      if test_first then
        match truth ctx env cond with
        | T_false -> { u_states = List.rev acc; u_exact = true }
        | T_unknown -> { u_states = List.rev acc; u_exact = false }
        | T_true -> (
            match step env acc with
            | None -> { u_states = List.rev acc; u_exact = false }
            | Some (env', acc) -> go env' (n + 1) acc)
      else
        match step env acc with
        | None -> { u_states = List.rev acc; u_exact = false }
        | Some (env', acc) -> (
            match truth ctx env' cond with
            | T_false -> { u_states = List.rev (env' :: acc); u_exact = true }
            | T_unknown -> { u_states = List.rev (env' :: acc); u_exact = false }
            | T_true -> go env' (n + 1) (env' :: acc))
  in
  match env0 with
  | None -> { u_states = []; u_exact = false }
  | Some env -> go env 0 []

let env_equal = Interval.SMap.equal Interval.equal_vstate

(* Compare two unrolled iteration sequences state by state. Returns
   [Ok description] or [Error description]. When either side hit the
   cap or an undecidable test, only the common prefix is compared — the
   structural bisimulation already covers the remainder. *)
let compare_unrolls before after =
  let rec common n b a =
    match (b, a) with
    | [], [] -> Ok n
    | [], _ :: _ | _ :: _, [] -> Ok n  (* prefix exhausted on one side *)
    | eb :: b, ea :: a -> if env_equal eb ea then common (n + 1) b a else Error n
  in
  match common 0 before.u_states after.u_states with
  | Error n -> Error (Printf.sprintf "interval states diverge at iteration %d" n)
  | Ok n ->
      if before.u_exact && after.u_exact then
        if List.length before.u_states = List.length after.u_states then
          Ok (Printf.sprintf "%d iterations compared state-by-state" n)
        else
          Error
            (Printf.sprintf "iteration counts differ (%d vs %d)"
               (List.length before.u_states)
               (List.length after.u_states))
      else Ok (Printf.sprintf "%d iterations compared, remainder by structural bisimulation" n)

(* ------------------------------------------------------------------ *)
(* Structural alignment                                                *)
(* ------------------------------------------------------------------ *)

let body_stmts s = match s.stmt with Block l -> l | _ -> [ s ]

(* Walk two statement lists in parallel. [site] is offered every
   position first and may consume a rewrite site (returning how many
   statements it consumed on each side plus its VCs); failing that,
   structurally equal heads are skipped and same-shaped compound heads
   are descended into. Anything else is an alignment failure. *)
let rec align ~site ~fail before after =
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  match site before after with
  | Some (nb, na, vcs) -> vcs @ align ~site ~fail (drop nb before) (drop na after)
  | None -> (
      match (before, after) with
      | [], [] -> []
      | b :: bs, a :: as_ when equal_stmt b a -> align ~site ~fail bs as_
      | b :: bs, a :: as_ -> (
          let descend l1 l2 = align ~site ~fail l1 l2 in
          match (b.stmt, a.stmt) with
          | If (c1, t1, e1), If (c2, t2, e2) when equal_expr c1 c2 ->
              descend (body_stmts t1) (body_stmts t2)
              @ (match (e1, e2) with
                | None, None -> []
                | Some s1, Some s2 -> descend (body_stmts s1) (body_stmts s2)
                | _ -> [ fail b.sloc a.sloc "if/else shape changed" ])
              @ align ~site ~fail bs as_
          | While (c1, b1), While (c2, b2) when equal_expr c1 c2 ->
              descend (body_stmts b1) (body_stmts b2) @ align ~site ~fail bs as_
          | Do_while (b1, c1), Do_while (b2, c2) when equal_expr c1 c2 ->
              descend (body_stmts b1) (body_stmts b2) @ align ~site ~fail bs as_
          | For (i1, c1, u1, b1), For (i2, c2, u2, b2)
            when Option.equal equal_for_init i1 i2
                 && Option.equal equal_expr c1 c2
                 && Option.equal equal_expr u1 u2 ->
              descend (body_stmts b1) (body_stmts b2) @ align ~site ~fail bs as_
          | Block l1, Block l2 -> descend l1 l2 @ align ~site ~fail bs as_
          | _, _ -> [ fail b.sloc a.sloc "unrecognized rewrite at this site" ])
      | b :: _, [] -> [ fail b.sloc b.sloc "statements disappeared with no matching rewrite" ]
      | [], a :: _ -> [ fail a.sloc a.sloc "statements appeared with no matching rewrite" ])

(* ------------------------------------------------------------------ *)
(* Program-pair plumbing                                               *)
(* ------------------------------------------------------------------ *)

let pair_classes ~transform before after =
  let bc = before.classes and ac = after.classes in
  if
    List.length bc = List.length ac
    && List.for_all2 (fun b a -> String.equal b.cl_name a.cl_name) bc ac
  then Ok (List.combine bc ac)
  else
    Error
      (vc ~transform ~cls:"<program>" ~site:"class list"
         ~before:Mj.Loc.dummy ~after:Mj.Loc.dummy false
         "transform changed the set of classes")

let method_sig_equal a b =
  equal_modifiers a.m_mods b.m_mods
  && equal_ty a.m_ret b.m_ret
  && String.equal a.m_name b.m_name
  && List.length a.m_params = List.length b.m_params
  && List.for_all2
       (fun (t1, n1) (t2, n2) -> equal_ty t1 t2 && String.equal n1 n2)
       a.m_params b.m_params

(* Align every method and constructor body of a class pair under [site];
   signatures, fields and everything not handed to [site] must be
   untouched. Used by the loop transforms (fields unchanged) and by
   hoist-alloc (which checks fields/ctors separately). *)
let align_bodies ~transform ~site (bcls, acls) =
  let fail ~cls before after detail =
    vc ~transform ~cls ~site:"statement alignment" ~before ~after false detail
  in
  let cls = bcls.cl_name in
  let meths =
    if List.length bcls.cl_methods <> List.length acls.cl_methods then
      [ vc ~transform ~cls ~site:"method list" ~before:bcls.cl_loc
          ~after:acls.cl_loc false "transform changed the set of methods" ]
    else
      List.concat_map
        (fun (bm, am) ->
          if not (method_sig_equal bm am) then
            [ vc ~transform ~cls ~site:("method " ^ bm.m_name)
                ~before:bm.m_loc ~after:am.m_loc false
                "method signature changed" ]
          else
            match (bm.m_body, am.m_body) with
            | None, None -> []
            | Some b, Some a -> align ~site:(site ~cls) ~fail:(fail ~cls) b a
            | _ ->
                [ vc ~transform ~cls ~site:("method " ^ bm.m_name)
                    ~before:bm.m_loc ~after:am.m_loc false
                    "method body appeared or disappeared" ])
        (List.combine bcls.cl_methods acls.cl_methods)
  in
  let ctors =
    if List.length bcls.cl_ctors <> List.length acls.cl_ctors then
      [ vc ~transform ~cls ~site:"constructor list" ~before:bcls.cl_loc
          ~after:acls.cl_loc false "transform changed the set of constructors" ]
    else
      List.concat_map
        (fun (bc, ac) -> align ~site:(site ~cls) ~fail:(fail ~cls) bc.c_body ac.c_body)
        (List.combine bcls.cl_ctors acls.cl_ctors)
  in
  meths @ ctors

let fields_identical ~transform (bcls, acls) =
  if
    List.length bcls.cl_fields = List.length acls.cl_fields
    && List.for_all2 equal_field bcls.cl_fields acls.cl_fields
  then []
  else
    [ vc ~transform ~cls:bcls.cl_name ~site:"field list" ~before:bcls.cl_loc
        ~after:acls.cl_loc false "transform changed the class fields" ]

(* ------------------------------------------------------------------ *)
(* VC: while-to-for / do-while-to-for                                  *)
(* ------------------------------------------------------------------ *)

let init_as_stmt = function
  | For_var (t, n, i) -> mk_stmt (Var_decl (t, n, i))
  | For_expr e -> mk_stmt (Expr e)

(* One conversion site. The before body may itself contain further
   converted loops (the transform rewrites every site in one pass,
   bottom-up), so body correspondence recurses through [align] with the
   same site matcher instead of requiring strict equality, and the
   iteration-by-iteration comparison runs each side's own body. *)
let rec loop_site_vc ~transform ~do_while ~before_checked ~after_checked ~cls
    ~init_before ~init_after ~loop_stmt ~for_stmt ~cond ~cond' ~update'
    ~loop_body ~for_prefix =
  let mk ok detail =
    vc ~transform ~cls
      ~site:
        (Printf.sprintf "%s at line %d"
           (if do_while then "do-while loop" else "while loop")
           loop_stmt.sloc.Mj.Loc.start_pos.Mj.Loc.line)
      ~before:loop_stmt.sloc ~after:for_stmt.sloc ok detail
  in
  if not (equal_expr cond cond') then [ mk false "loop condition changed" ]
  else
    (* Per-iteration effect: the while body must be the for body
       followed by the update expression (modulo nested conversions,
       aligned recursively). *)
    let body = body_stmts loop_body in
    let prefix = body_stmts for_prefix in
    match List.rev body with
    | { stmt = Expr u; _ } :: rev_prefix when equal_expr u update' ->
        let fail before after detail =
          vc ~transform ~cls ~site:"statement alignment" ~before ~after false
            detail
        in
        let nested =
          align
            ~site:
              (loop_site ~transform ~do_while ~before_checked ~after_checked
                 ~cls)
            ~fail (List.rev rev_prefix) prefix
        in
        let ctx_b = Interval.make_ctx before_checked in
        let ctx_a = Interval.make_ctx after_checked in
        (* Initializer motion is effect-equal on the interval domain. *)
        let env_b0 = exec ctx_b init_before empty_env in
        let env_a0 = exec ctx_a init_after empty_env in
        if not (Interval.State.equal env_b0 env_a0) then
          mk false "initializer motion changes the abstract environment"
          :: nested
        else
          (* A converted do-while must prove its entry test: the for
             loop tests before the first iteration. *)
          let entry_ok =
            (not do_while)
            ||
            match env_a0 with
            | None -> false
            | Some env -> truth ctx_a env cond' = T_true
          in
          if not entry_ok then
            mk false
              "entry test is not provably true, but the do-while body ran \
               unconditionally"
            :: nested
          else
            let step = prefix @ [ mk_stmt (Expr update') ] in
            let ub =
              unroll ctx_b ~test_first:(not do_while) ~cond ~body env_b0
            in
            let ua = unroll ctx_a ~test_first:true ~cond:cond' ~body:step env_a0 in
            (match compare_unrolls ub ua with
            | Ok d -> mk true ("simulation holds: " ^ d)
            | Error d -> mk false d)
            :: nested
    | _ -> [ mk false "loop body is not the for body followed by the update" ]

and loop_site ~transform ~do_while ~before_checked ~after_checked ~cls before
    after =
  let is_loop s =
    match (do_while, s.stmt) with
    | false, While (c, b) -> Some (c, b)
    | true, Do_while (b, c) -> Some (c, b)
    | _ -> None
  in
  let header_corresponds i1 hi =
    (* The moved initializer and the for-header initializer perform the
       same assignment (the exact effect comparison happens on the
       interval domain in [loop_site_vc]). *)
    match (i1.stmt, hi) with
    | Var_decl (TInt, x, Some start), For_var (TInt, x', Some start') ->
        String.equal x x' && equal_expr start start'
    | Expr { expr = Assign ((Lname x | Llocal x), start); _ },
      For_expr { expr = Assign ((Lname x' | Llocal x'), start'); _ } ->
        String.equal x x' && equal_expr start start'
    | _ -> false
  in
  let reinit_corresponds i1 hi =
    match (i1.stmt, hi) with
    | Var_decl (TInt, x, Some start),
      For_expr { expr = Assign ((Lname x' | Llocal x'), start'); _ } ->
        String.equal x x' && equal_expr start start'
    | _ -> false
  in
  let site_vc =
    loop_site_vc ~transform ~do_while ~before_checked ~after_checked ~cls
  in
  match (before, after) with
  (* initializer folded into the header: 2 statements become 1 *)
  | ( i1 :: l :: _,
      ({ stmt = For (Some hi, Some c', Some u', fb); _ } as f) :: _ )
    when is_loop l <> None && header_corresponds i1 hi ->
      let c, b = Option.get (is_loop l) in
      Some
        ( 2, 1,
          site_vc ~init_before:[ i1 ] ~init_after:[ init_as_stmt hi ]
            ~loop_stmt:l ~for_stmt:f ~cond:c ~cond':c' ~update':u' ~loop_body:b
            ~for_prefix:fb )
  (* declaration kept (index used after the loop), header re-initializes *)
  | ( i1 :: l :: _,
      i1' :: ({ stmt = For (Some hi, Some c', Some u', fb); _ } as f) :: _ )
    when is_loop l <> None && equal_stmt i1 i1' && reinit_corresponds i1 hi ->
      let c, b = Option.get (is_loop l) in
      Some
        ( 2, 2,
          site_vc ~init_before:[ i1 ] ~init_after:[ i1; init_as_stmt hi ]
            ~loop_stmt:l ~for_stmt:f ~cond:c ~cond':c' ~update':u' ~loop_body:b
            ~for_prefix:fb )
  (* a lone while with no adjacent initializer *)
  | ( ({ stmt = While (c, b); _ } as l) :: _,
      ({ stmt = For (None, Some c', Some u', fb); _ } as f) :: _ )
    when not do_while ->
      Some
        ( 1, 1,
          site_vc ~init_before:[] ~init_after:[] ~loop_stmt:l ~for_stmt:f
            ~cond:c ~cond':c' ~update':u' ~loop_body:b ~for_prefix:fb )
  | _ -> None

let check_loop_transform ~transform ~do_while before_checked after_checked =
  let before = before_checked.Mj.Typecheck.program in
  let after = after_checked.Mj.Typecheck.program in
  match pair_classes ~transform before after with
  | Error v -> [ v ]
  | Ok pairs ->
      List.concat_map
        (fun pair ->
          fields_identical ~transform pair
          @ align_bodies ~transform
              ~site:(fun ~cls ->
                loop_site ~transform ~do_while ~before_checked ~after_checked
                  ~cls)
              pair)
        pairs

(* ------------------------------------------------------------------ *)
(* VC: hoist-alloc                                                     *)
(* ------------------------------------------------------------------ *)

let is_pre_field name =
  String.length name >= 5 && String.equal (String.sub name 0 5) "_pre_"

(* Constructor-suffix arena allocations: field -> (element type, size). *)
let arena_allocs stmts =
  List.filter_map
    (fun s ->
      match s.stmt with
      | Expr
          { expr =
              Assign
                ( Lfield ({ expr = This; _ }, f),
                  { expr = New_array (elem, [ { expr = Int_lit size; _ } ]); _ } );
            _ } ->
          Some (f, (elem, size))
      | _ -> None)
    stmts

let zero_fill_matches ~field ~elem ~size s =
  match s.stmt with
  | For
      ( Some (For_var (TInt, zi, Some { expr = Int_lit 0; _ })),
        Some { expr = Binary (Lt, le, { expr = Int_lit n; _ }); _ },
        Some { expr = Post_incr (1, (Lname zi' | Llocal zi')); _ },
        fill_body ) -> (
      n = size
      && String.equal zi zi'
      && (match le.expr with
         | Local x | Name x -> String.equal x zi
         | _ -> false)
      &&
      match body_stmts fill_body with
      | [ { stmt =
              Expr
                { expr =
                    Assign
                      ( Lindex
                          ( { expr = Field_access ({ expr = This; _ }, f'); _ },
                            idx ),
                        z );
                  _ };
            _ } ] -> (
          String.equal f' field
          && (match idx.expr with
             | Local x | Name x -> String.equal x zi
             | _ -> false)
          &&
          match Escape.hoistable_zero elem with
          | Some zero -> equal_expr z { expr = zero; eloc = Mj.Loc.dummy; ety = None }
          | None -> false)
      | _ -> false)
  | _ -> false

let hoist_site ~transform ~before_checked ~arenas ~cls ~method_body before after
    =
  match (before, after) with
  | ( ({ stmt = Var_decl (TArray elem, x, Some { expr = New_array (elem2, [ dim ]); _ });
         _ } as b) :: _,
      ({ stmt = Var_decl (TArray elem', x', Some { expr = Field_access ({ expr = This; _ }, f); _ });
         _ } as a) :: zf :: _ )
    when equal_ty elem elem' && String.equal x x' && is_pre_field f ->
      let mk ok detail =
        vc ~transform ~cls
          ~site:(Printf.sprintf "hoisted allocation of %s at line %d" x b.sloc.Mj.Loc.start_pos.Mj.Loc.line)
          ~before:b.sloc ~after:a.sloc ok detail
      in
      let v =
        if not (equal_ty elem elem2) then mk false "allocation element type changed"
        else
          match Const_eval.const_int before_checked dim with
          | None -> mk false "hoisted allocation size is not a compile-time constant"
          | Some size -> (
              match List.assoc_opt f arenas with
              | None -> mk false "no constructor preallocates the arena field"
              | Some (aelem, asize) ->
                  if not (equal_ty aelem elem) then
                    mk false "arena field element type differs from the allocation"
                  else if asize <> size then
                    mk false
                      (Printf.sprintf
                         "arena size %d differs from the hoisted allocation size %d"
                         asize size)
                  else if Escape.hoistable_zero elem = None then
                    mk false "element type has no hoistable default value"
                  else if not (zero_fill_matches ~field:f ~elem ~size zf) then
                    mk false "arena is not zero-filled over [0, size) before use"
                  else if Escape.local_escapes x method_body then
                    mk false
                      "local escapes the method, so aliasing the arena is observable"
                  else
                    mk true
                      (Printf.sprintf
                         "heap shape preserved modulo arena %s: constant size %d, \
                          zero-filled, alias does not escape"
                         f size))
      in
      Some (1, 2, [ v ])
  | _ -> None

let check_hoist_alloc before_checked after_checked =
  let transform = "hoist-alloc" in
  let before = before_checked.Mj.Typecheck.program in
  let after = after_checked.Mj.Typecheck.program in
  match pair_classes ~transform before after with
  | Error v -> [ v ]
  | Ok pairs ->
      List.concat_map
        (fun (bcls, acls) ->
          let cls = bcls.cl_name in
          let new_fields =
            List.filteri
              (fun i _ -> i >= List.length bcls.cl_fields)
              acls.cl_fields
          in
          let prefix_fields =
            List.filteri (fun i _ -> i < List.length bcls.cl_fields) acls.cl_fields
          in
          let field_vcs =
            if
              List.length bcls.cl_fields <= List.length acls.cl_fields
              && List.for_all2 equal_field bcls.cl_fields prefix_fields
            then
              List.filter_map
                (fun f ->
                  if
                    is_pre_field f.f_name
                    && f.f_mods.visibility = Private
                    && (not f.f_mods.is_static)
                    && (match f.f_ty with TArray _ -> true | _ -> false)
                    && f.f_init = None
                  then None
                  else
                    Some
                      (vc ~transform ~cls ~site:("field " ^ f.f_name)
                         ~before:bcls.cl_loc ~after:f.f_loc false
                         "added field is not a private non-static arena array"))
                new_fields
            else
              [ vc ~transform ~cls ~site:"field list" ~before:bcls.cl_loc
                  ~after:acls.cl_loc false
                  "pre-existing fields changed under hoist-alloc" ]
          in
          (* Constructors: unchanged prefix + arena allocations, one per
             added field. A class with no constructor gains a default
             one holding only the allocations. *)
          let arenas =
            List.concat_map (fun c -> arena_allocs c.c_body) acls.cl_ctors
          in
          let ctor_suffix_ok bc ac =
            let n = List.length bc.c_body in
            List.length ac.c_body >= n
            && equal_stmts bc.c_body (List.filteri (fun i _ -> i < n) ac.c_body)
            && List.for_all
                 (fun s -> arena_allocs [ s ] <> [])
                 (List.filteri (fun i _ -> i >= n) ac.c_body)
          in
          let ctor_vcs =
            if new_fields = [] then
              if
                List.length bcls.cl_ctors = List.length acls.cl_ctors
                && List.for_all2 equal_ctor bcls.cl_ctors acls.cl_ctors
              then []
              else
                [ vc ~transform ~cls ~site:"constructors" ~before:bcls.cl_loc
                    ~after:acls.cl_loc false
                    "constructors changed in a class with no hoisted arena" ]
            else
              match (bcls.cl_ctors, acls.cl_ctors) with
              | [], [ ac ] ->
                  if List.for_all (fun s -> arena_allocs [ s ] <> []) ac.c_body
                  then []
                  else
                    [ vc ~transform ~cls ~site:"default constructor"
                        ~before:bcls.cl_loc ~after:ac.c_loc false
                        "generated constructor does more than preallocate arenas" ]
              | bctors, actors
                when List.length bctors = List.length actors
                     && List.for_all2 ctor_suffix_ok bctors actors ->
                  []
              | _ ->
                  [ vc ~transform ~cls ~site:"constructors" ~before:bcls.cl_loc
                      ~after:acls.cl_loc false
                      "constructor bodies are not the originals plus arena \
                       preallocations" ]
          in
          (* Every added field must be preallocated exactly once. *)
          let alloc_cover =
            List.filter_map
              (fun f ->
                match
                  List.length
                    (List.filter (fun (g, _) -> String.equal g f.f_name) arenas)
                with
                | 1 -> None
                | n ->
                    Some
                      (vc ~transform ~cls ~site:("field " ^ f.f_name)
                         ~before:bcls.cl_loc ~after:f.f_loc false
                         (Printf.sprintf
                            "arena field is preallocated %d times (expected \
                             once per constructor path)"
                            n)))
              new_fields
          in
          (* Method bodies: align with the hoist-site matcher. Each
             before-method body is threaded through so the escape check
             sees the whole scope of the hoisted local. *)
          let meth_vcs =
            if List.length bcls.cl_methods <> List.length acls.cl_methods then
              [ vc ~transform ~cls ~site:"method list" ~before:bcls.cl_loc
                  ~after:acls.cl_loc false "transform changed the set of methods" ]
            else
              List.concat_map
                (fun (bm, am) ->
                  if not (method_sig_equal bm am) then
                    [ vc ~transform ~cls ~site:("method " ^ bm.m_name)
                        ~before:bm.m_loc ~after:am.m_loc false
                        "method signature changed" ]
                  else
                    match (bm.m_body, am.m_body) with
                    | None, None -> []
                    | Some b, Some a ->
                        let fail before after detail =
                          vc ~transform ~cls ~site:"statement alignment"
                            ~before ~after false detail
                        in
                        align
                          ~site:
                            (hoist_site ~transform ~before_checked ~arenas ~cls
                               ~method_body:b)
                          ~fail b a
                    | _ ->
                        [ vc ~transform ~cls ~site:("method " ^ bm.m_name)
                            ~before:bm.m_loc ~after:am.m_loc false
                            "method body appeared or disappeared" ])
                (List.combine bcls.cl_methods acls.cl_methods)
          in
          field_vcs @ ctor_vcs @ alloc_cover @ meth_vcs)
        pairs

(* ------------------------------------------------------------------ *)
(* VC: privatize-fields                                                *)
(* ------------------------------------------------------------------ *)

(* The before program never touches [cls.field] from outside the
   declaring class (same reachability the policy's R6 fix uses). *)
let field_accessed_externally checked ~cls ~field =
  let program = Mj.Symtab.program checked.Mj.Typecheck.symtab in
  List.exists
    (fun c ->
      (not (String.equal c.cl_name cls))
      && List.exists
           (fun body ->
             Mj.Visit.exists_expr
               (fun e ->
                 let hits o fname =
                   String.equal fname field
                   &&
                   match o.ety with
                   | Some (TClass c2) ->
                       Mj.Symtab.is_subclass checked.Mj.Typecheck.symtab
                         ~sub:c2 ~super:cls
                   | _ -> false
                 in
                 match e.expr with
                 | Field_access (o, fname) -> hits o fname
                 | Assign (Lfield (o, fname), _)
                 | Op_assign (_, Lfield (o, fname), _)
                 | Pre_incr (_, Lfield (o, fname))
                 | Post_incr (_, Lfield (o, fname)) ->
                     hits o fname
                 | _ -> false)
               body.Mj.Visit.b_stmts)
           (Mj.Visit.bodies c))
    program.classes

let check_privatize before_checked after_checked =
  let transform = "privatize-fields" in
  let before = before_checked.Mj.Typecheck.program in
  let after = after_checked.Mj.Typecheck.program in
  match pair_classes ~transform before after with
  | Error v -> [ v ]
  | Ok pairs ->
      List.concat_map
        (fun ((bcls, acls) as pair) ->
          let cls = bcls.cl_name in
          let bodies_unchanged =
            align_bodies ~transform ~site:(fun ~cls:_ _ _ -> None) pair
          in
          let fields =
            if List.length bcls.cl_fields <> List.length acls.cl_fields then
              [ vc ~transform ~cls ~site:"field list" ~before:bcls.cl_loc
                  ~after:acls.cl_loc false "transform changed the set of fields" ]
            else
              List.filter_map
                (fun (bf, af) ->
                  if equal_field bf af then None
                  else
                    let mk ok detail =
                      vc ~transform ~cls ~site:("field " ^ bf.f_name)
                        ~before:bf.f_loc ~after:af.f_loc ok detail
                    in
                    let only_visibility =
                      String.equal bf.f_name af.f_name
                      && equal_ty bf.f_ty af.f_ty
                      && Option.equal equal_expr bf.f_init af.f_init
                      && af.f_mods.visibility = Private
                      && bf.f_mods.visibility <> Private
                      && bf.f_mods.is_static = af.f_mods.is_static
                      && bf.f_mods.is_final = af.f_mods.is_final
                      && bf.f_mods.is_native = af.f_mods.is_native
                    in
                    if not only_visibility then
                      Some (mk false "change is not a visibility restriction")
                    else if bf.f_mods.is_static then
                      Some (mk false "static fields are not privatized")
                    else if
                      field_accessed_externally before_checked ~cls
                        ~field:bf.f_name
                    then
                      Some
                        (mk false
                           "field is read or written outside the declaring \
                            class; privatizing it changes behavior")
                    else
                      Some
                        (mk true
                           "visibility-only change; no external access in the \
                            before program"))
                (List.combine bcls.cl_fields acls.cl_fields)
          in
          fields @ bodies_unchanged)
        pairs

(* ------------------------------------------------------------------ *)
(* VC: remove-finalizers                                               *)
(* ------------------------------------------------------------------ *)

let check_remove_finalizers before_checked after_checked =
  let transform = "remove-finalizers" in
  let before = before_checked.Mj.Typecheck.program in
  let after = after_checked.Mj.Typecheck.program in
  let finalize_called =
    List.exists
      (fun cls ->
        List.exists
          (fun body ->
            Mj.Visit.exists_expr
              (fun e ->
                match e.expr with
                | Call { mname = "finalize"; _ } -> true
                | _ -> false)
              body.Mj.Visit.b_stmts)
          (Mj.Visit.bodies cls))
      before.classes
  in
  match pair_classes ~transform before after with
  | Error v -> [ v ]
  | Ok pairs ->
      List.concat_map
        (fun ((bcls, acls) as pair) ->
          let cls = bcls.cl_name in
          let removed =
            List.filter
              (fun bm ->
                not
                  (List.exists
                     (fun am -> method_sig_equal bm am)
                     acls.cl_methods))
              bcls.cl_methods
          in
          let kept_unchanged =
            let kept =
              List.filter
                (fun bm ->
                  List.exists (fun am -> method_sig_equal bm am) acls.cl_methods)
                bcls.cl_methods
            in
            List.length kept = List.length acls.cl_methods
            && List.for_all2 equal_method kept acls.cl_methods
          in
          fields_identical ~transform pair
          @ (if
               List.length bcls.cl_ctors = List.length acls.cl_ctors
               && List.for_all2 equal_ctor bcls.cl_ctors acls.cl_ctors
             then []
             else
               [ vc ~transform ~cls ~site:"constructors" ~before:bcls.cl_loc
                   ~after:acls.cl_loc false "constructors changed" ])
          @ (if kept_unchanged then []
             else
               [ vc ~transform ~cls ~site:"method list" ~before:bcls.cl_loc
                   ~after:acls.cl_loc false
                   "a surviving method changed under remove-finalizers" ])
          @ List.map
              (fun bm ->
                let mk ok detail =
                  vc ~transform ~cls ~site:("method " ^ bm.m_name)
                    ~before:bm.m_loc ~after:acls.cl_loc ok detail
                in
                if not (String.equal bm.m_name "finalize") then
                  mk false "a method other than finalize was removed"
                else if finalize_called then
                  mk false "finalize is invoked somewhere in the before program"
                else
                  mk true
                    "finalize is never invoked; removal is semantics-preserving")
              removed)
        pairs

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let check_transform ~transform ~before ~after =
  match transform with
  | "while-to-for" ->
      check_loop_transform ~transform ~do_while:false before after
  | "do-while-to-for" ->
      check_loop_transform ~transform ~do_while:true before after
  | "hoist-alloc" -> check_hoist_alloc before after
  | "privatize-fields" -> check_privatize before after
  | "remove-finalizers" -> check_remove_finalizers before after
  | other ->
      [ vc ~transform:other ~cls:"<program>" ~site:"transform catalogue"
          ~before:Mj.Loc.dummy ~after:Mj.Loc.dummy false
          "no verification condition is catalogued for this transform" ]

let races_clean checked =
  match Races.detect checked with
  | [] ->
      vc ~transform:"thread-elimination" ~cls:"<program>"
        ~site:"shared-field race report" ~before:Mj.Loc.dummy
        ~after:Mj.Loc.dummy true
        "race detector reports no shared-field races; sequentializing the \
         reactions is justified"
  | r :: _ as races ->
      vc ~transform:"thread-elimination" ~cls:r.Races.r_class
        ~site:"shared-field race report" ~before:r.Races.r_loc
        ~after:r.Races.r_loc false
        (Printf.sprintf
           "%d shared-field race(s) remain (first: %s.%s); thread \
            elimination is unjustified"
           (List.length races) r.Races.r_class r.Races.r_field)
