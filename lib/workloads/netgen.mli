(** Parameterized random ASR net generator for scaling and differential
    testing (promoted from the schedule bench's ad-hoc generator).

    Nets are layered DAGs of standard cells — add/sub/gain/neg, a
    modular wrap keeping values bounded, constants — whose inputs are
    drawn from earlier layers, plus optional delay feedback between
    instants and optional delay-free cycles resolved through a mux
    (exercising the cyclic-SCC fallback of every scheduled strategy).
    Generation is deterministic per [seed] and linear in the block
    count, so 10²–10⁵-block nets are all practical. *)

val generate :
  ?inputs:int ->
  ?delays:int ->
  ?cyclic_ratio:float ->
  ?const_ratio:float ->
  seed:int ->
  depth:int ->
  width:int ->
  unit ->
  Asr.Graph.t
(** [generate ~seed ~depth ~width ()] builds a net with [depth] layers
    of [width] block slots. [inputs] (default 3) environment inputs
    feed layer 0 onward; [delays] (default 0) delay elements feed
    values back across instants. Each slot becomes, with probability
    [cyclic_ratio] (default 0), a three-block delay-free cycle gadget
    (parity select, mux, adder); with probability [const_ratio]
    (default 0.1) a constant cell (fodder for fusion-time constant
    folding); otherwise a unary or binary arithmetic cell over random
    earlier endpoints. Up to eight final-layer endpoints are exposed as
    outputs [out0..]. *)

val input_labels : Asr.Graph.t -> string list
(** The environment input labels of a graph, in declaration order. *)

val stimulus : Asr.Graph.t -> instants:int -> (string * Asr.Domain.t) list list
(** Deterministic input stream: instant [t] drives input [i] with
    [(7 t + 13 i) mod 97]. *)
