open Asr

(* Deterministic layered net generator. Block slots are laid out layer by
   layer; every block input is drawn from a pool of previously produced
   int-typed endpoints, so the graph is well-connected by construction
   and the pool lookup is O(1) — generation of a 100k-block net is
   linear in blocks + channels. *)

type pool = {
  mutable eps : Graph.endpoint array;
  mutable n : int;
}

let pool_create () = { eps = [||]; n = 0 }

let pool_push p ep =
  if p.n = Array.length p.eps then begin
    let grown = Array.make (max 64 (2 * p.n)) ep in
    Array.blit p.eps 0 grown 0 p.n;
    p.eps <- grown
  end;
  p.eps.(p.n) <- ep;
  p.n <- p.n + 1

let pool_pick rng p = p.eps.(Random.State.int rng p.n)

let wrap_block =
  Block.imap1 ~name:"wrap"
    (fun v -> ((v mod 9973) + 9973) mod 9973)
    (function
      | Data.Int v -> Data.Int (((v mod 9973) + 9973) mod 9973)
      | v -> v)

let parity_block =
  Block.map1 ~name:"parity" (function
    | Data.Int v -> Data.Bool (v mod 2 = 0)
    | _ -> Data.Bool false)

let generate ?(inputs = 3) ?(delays = 0) ?(cyclic_ratio = 0.0) ?(const_ratio = 0.1)
    ~seed ~depth ~width () =
  if inputs < 1 then invalid_arg "Netgen.generate: inputs must be >= 1";
  if depth < 1 || width < 1 then
    invalid_arg "Netgen.generate: depth and width must be >= 1";
  if cyclic_ratio < 0.0 || cyclic_ratio > 1.0 then
    invalid_arg "Netgen.generate: cyclic_ratio must be in [0, 1]";
  if const_ratio < 0.0 || const_ratio > 1.0 then
    invalid_arg "Netgen.generate: const_ratio must be in [0, 1]";
  if delays < 0 then invalid_arg "Netgen.generate: delays must be >= 0";
  let rng = Random.State.make [| 0x6e65747n |> Nativeint.to_int; seed; depth; width |] in
  let g = Graph.create (Printf.sprintf "netgen-s%d-d%d-w%d" seed depth width) in
  let ints = pool_create () in
  for i = 0 to inputs - 1 do
    let id = Graph.add_input g (Printf.sprintf "in%d" i) in
    pool_push ints (Graph.out_port id 0)
  done;
  let delay_ids = Array.init delays (fun _ -> Graph.add_delay g ~init:(Domain.def (Data.Int 0))) in
  Array.iter (fun id -> pool_push ints (Graph.out_port id 0)) delay_ids;
  let last_layer = ref [] in
  for _layer = 0 to depth - 1 do
    let produced = ref [] in
    for _slot = 0 to width - 1 do
      let roll = Random.State.float rng 1.0 in
      let out =
        if roll < cyclic_ratio then begin
          (* Delay-free cycle resolved through a mux: when the parity
             select is true the mux short-circuits to an acyclic source
             and the loop settles on a defined value; when false the
             component's least fixed point is ⊥. Either way the SCC
             {mux, add} exercises the iterative fallback. *)
          let sel_src = pool_pick rng ints in
          let then_src = pool_pick rng ints in
          let add_src = pool_pick rng ints in
          let parity = Graph.add_block g parity_block in
          let m = Graph.add_block g Block.mux in
          let a = Graph.add_block g Block.add in
          Graph.connect g ~src:sel_src ~dst:(Graph.in_port parity 0);
          Graph.connect g ~src:(Graph.out_port parity 0) ~dst:(Graph.in_port m 0);
          Graph.connect g ~src:then_src ~dst:(Graph.in_port m 1);
          Graph.connect g ~src:(Graph.out_port a 0) ~dst:(Graph.in_port m 2);
          Graph.connect g ~src:add_src ~dst:(Graph.in_port a 0);
          Graph.connect g ~src:(Graph.out_port m 0) ~dst:(Graph.in_port a 1);
          Graph.out_port m 0
        end
        else if roll < cyclic_ratio +. const_ratio then begin
          let k = Random.State.int rng 256 in
          let c = Graph.add_block g (Block.const ~name:(Printf.sprintf "k%d" k) (Data.Int k)) in
          Graph.out_port c 0
        end
        else begin
          match Random.State.int rng 5 with
          | 0 ->
              let b = Graph.add_block g Block.neg in
              Graph.connect g ~src:(pool_pick rng ints) ~dst:(Graph.in_port b 0);
              Graph.out_port b 0
          | 1 ->
              let b = Graph.add_block g (Block.gain (1 + Random.State.int rng 7)) in
              Graph.connect g ~src:(pool_pick rng ints) ~dst:(Graph.in_port b 0);
              Graph.out_port b 0
          | 2 ->
              let b = Graph.add_block g wrap_block in
              Graph.connect g ~src:(pool_pick rng ints) ~dst:(Graph.in_port b 0);
              Graph.out_port b 0
          | 3 ->
              let b = Graph.add_block g Block.add in
              Graph.connect g ~src:(pool_pick rng ints) ~dst:(Graph.in_port b 0);
              Graph.connect g ~src:(pool_pick rng ints) ~dst:(Graph.in_port b 1);
              Graph.out_port b 0
          | _ ->
              let b = Graph.add_block g Block.sub in
              Graph.connect g ~src:(pool_pick rng ints) ~dst:(Graph.in_port b 0);
              Graph.connect g ~src:(pool_pick rng ints) ~dst:(Graph.in_port b 1);
              Graph.out_port b 0
        end
      in
      pool_push ints out;
      produced := out :: !produced
    done;
    last_layer := !produced
  done;
  (* Close the inter-instant feedback: each delay samples a random
     endpoint (within-instant causality is unaffected — delays cut the
     cycle check). *)
  Array.iter
    (fun id -> Graph.connect g ~src:(pool_pick rng ints) ~dst:(Graph.in_port id 0))
    delay_ids;
  (* Observe (up to) eight endpoints of the final layer. *)
  List.iteri
    (fun j src ->
      if j < 8 then begin
        let o = Graph.add_output g (Printf.sprintf "out%d" j) in
        Graph.connect g ~src ~dst:(Graph.in_port o 0)
      end)
    !last_layer;
  g

let input_labels g =
  List.filter_map
    (fun (_, kind) ->
      match kind with Graph.Kinput label -> Some label | _ -> None)
    (Graph.nodes g)

let stimulus g ~instants =
  let labels = input_labels g in
  List.init instants (fun t ->
      List.mapi
        (fun i label -> (label, Domain.def (Data.Int ((7 * t + (13 * i)) mod 97))))
        labels)
