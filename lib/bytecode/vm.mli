(** Bytecode VM — the analogue of a late-90s JVM interpreter.

    Executes {!Compile.image} code against a shared {!Mj_runtime.Machine}
    state with per-instruction cost accounting, and participates in the
    {!Mj_runtime.Threads} scheduler at statement boundaries. *)

type t

val create :
  ?tariff:Mj_runtime.Cost.tariff ->
  ?sink:Mj_runtime.Cost.sink ->
  ?lines:Telemetry.Lines.t ->
  ?elide:(Mj.Loc.t, unit) Hashtbl.t ->
  Mj.Typecheck.checked ->
  t
(** Compile the program, allocate machine state, run the static
    initializer. [sink] observes every cycle from creation on; [lines]
    likewise receives per-source-line attribution, driven by the
    compiled line tables ({!Instr.line_at}). *)

val of_image :
  ?tariff:Mj_runtime.Cost.tariff ->
  ?sink:Mj_runtime.Cost.sink ->
  ?lines:Telemetry.Lines.t ->
  Compile.image -> t
(** Same, reusing a precompiled image (compile once, run many). *)

val machine : t -> Mj_runtime.Machine.t

val image : t -> Compile.image

val cycles : t -> int

val reset_cycles : t -> unit

val output : t -> string

val clear_output : t -> unit

val new_instance : t -> string -> Mj_runtime.Value.t list -> Mj_runtime.Value.t

val call : t -> Mj_runtime.Value.t -> string -> Mj_runtime.Value.t list -> Mj_runtime.Value.t

val call_static : t -> string -> string -> Mj_runtime.Value.t list -> Mj_runtime.Value.t

val run_main : t -> string -> unit
