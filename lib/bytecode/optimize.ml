module Value = Mj_runtime.Value
open Mj.Ast

(* Fold a constant integer operation; [None] leaves the instruction in
   place (overflow-safe: wrap32 matches the VM). *)
let fold_int op x y =
  let w = Value.wrap32 in
  match op with
  | Add -> Some (Value.Int (w (x + y)))
  | Sub -> Some (Value.Int (w (x - y)))
  | Mul -> Some (Value.Int (w (x * y)))
  | Div -> if y = 0 then None else Some (Value.Int (w (x / y)))
  | Mod -> if y = 0 then None else Some (Value.Int (w (x mod y)))
  | Band -> Some (Value.Int (x land y))
  | Bor -> Some (Value.Int (x lor y))
  | Bxor -> Some (Value.Int (x lxor y))
  | Shl -> Some (Value.Int (w (x lsl (y land 31))))
  | Shr -> Some (Value.Int (x asr (y land 31)))
  | Lt -> Some (Value.Bool (x < y))
  | Gt -> Some (Value.Bool (x > y))
  | Le -> Some (Value.Bool (x <= y))
  | Ge -> Some (Value.Bool (x >= y))
  | Eq -> Some (Value.Bool (x = y))
  | Neq -> Some (Value.Bool (x <> y))
  | And | Or -> None

let fold_double op x y =
  match op with
  | Add -> Some (Value.Double (x +. y))
  | Sub -> Some (Value.Double (x -. y))
  | Mul -> Some (Value.Double (x *. y))
  | Div -> Some (Value.Double (x /. y))
  | Lt -> Some (Value.Bool (x < y))
  | Gt -> Some (Value.Bool (x > y))
  | Le -> Some (Value.Bool (x <= y))
  | Ge -> Some (Value.Bool (x >= y))
  | Eq -> Some (Value.Bool (Float.equal x y))
  | Neq -> Some (Value.Bool (not (Float.equal x y)))
  | Mod | Band | Bor | Bxor | Shl | Shr | And | Or -> None

(* One local pass: produce a rewritten instruction list where each entry
   remembers how many source instructions it replaces, so jump targets
   can be remapped. Deleted instructions become [None]. *)
let local_pass code =
  let n = Array.length code in
  let keep = Array.make n true in
  let replacement = Array.map (fun i -> i) code in
  let changed = ref false in
  (* a source position is a jump target if any instruction jumps there;
     fusing across a jump target would break the jump's semantics *)
  let is_target = Array.make (n + 1) false in
  Array.iter
    (function
      | Instr.Jump t | Instr.Jump_if_false t ->
          if t >= 0 && t <= n then is_target.(t) <- true
      | _ -> ())
    code;
  let fusable i width =
    (* positions i+1 .. i+width-1 must not be jump targets *)
    let ok = ref true in
    for k = i + 1 to i + width - 1 do
      if is_target.(k) then ok := false
    done;
    !ok
  in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      (match (replacement.(i), (if i + 1 < n then Some code.(i + 1) else None),
              if i + 2 < n then Some code.(i + 2) else None)
       with
      (* Const a; Const b; op  ->  Const (a op b) *)
      | Instr.Const (Value.Int a), Some (Instr.Const (Value.Int b)), Some (Instr.Iop op)
        when fusable i 3 && keep.(i + 1) && keep.(i + 2) -> (
          match fold_int op a b with
          | Some v ->
              replacement.(i) <- Instr.Const v;
              keep.(i + 1) <- false;
              keep.(i + 2) <- false;
              changed := true
          | None -> ())
      | Instr.Const (Value.Double a), Some (Instr.Const (Value.Double b)),
        Some (Instr.Dop op)
        when fusable i 3 && keep.(i + 1) && keep.(i + 2) -> (
          match fold_double op a b with
          | Some v ->
              replacement.(i) <- Instr.Const v;
              keep.(i + 1) <- false;
              keep.(i + 2) <- false;
              changed := true
          | None -> ())
      (* Dup; Store n; Pop  ->  Store n *)
      | Instr.Dup, Some (Instr.Store slot), Some Instr.Pop
        when fusable i 3 && keep.(i + 1) && keep.(i + 2) ->
          replacement.(i) <- Instr.Store slot;
          keep.(i + 1) <- false;
          keep.(i + 2) <- false;
          changed := true
      (* Const; Pop -> nothing *)
      | Instr.Const _, Some Instr.Pop, _ when fusable i 2 && keep.(i + 1) ->
          keep.(i) <- false;
          keep.(i + 1) <- false;
          changed := true
      (* Const bool; Jump_if_false *)
      | Instr.Const (Value.Bool b), Some (Instr.Jump_if_false target), _
        when fusable i 2 && keep.(i + 1) ->
          if b then begin
            keep.(i) <- false;
            keep.(i + 1) <- false
          end
          else begin
            keep.(i) <- false;
            replacement.(i + 1) <- Instr.Jump target
          end;
          changed := true
      (* I2d of an integer literal *)
      | Instr.Const (Value.Int a), Some Instr.I2d, _
        when fusable i 2 && keep.(i + 1) ->
          replacement.(i) <- Instr.Const (Value.Double (float_of_int a));
          keep.(i + 1) <- false;
          changed := true
      (* consecutive yield points *)
      | Instr.Yield_point, Some Instr.Yield_point, _
        when fusable i 2 && keep.(i + 1) ->
          keep.(i + 1) <- false;
          changed := true
      | _ -> ())
    end
  done;
  (!changed, keep, replacement)

(* Remap jump targets after deletions: target t moves to the number of
   kept instructions strictly before t (a deleted target's jump lands on
   the next kept instruction — safe because deletions only occur where
   the deleted code had no observable effect). *)
let compact code keep replacement =
  let n = Array.length code in
  let new_index = Array.make (n + 1) 0 in
  let count = ref 0 in
  for i = 0 to n - 1 do
    new_index.(i) <- !count;
    if keep.(i) then incr count
  done;
  new_index.(n) <- !count;
  let out = Array.make !count Instr.Ret in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      out.(!j) <-
        (match replacement.(i) with
        | Instr.Jump t -> Instr.Jump new_index.(t)
        | Instr.Jump_if_false t -> Instr.Jump_if_false new_index.(t)
        | instr -> instr);
      incr j
    end
  done;
  (out, new_index)

(* Remap line-table pcs through the same index. A range whose every
   instruction was deleted collapses onto the next kept pc; when several
   entries collide the last wins (its source region owns the survivor).
   Entries pushed past the end of the compacted code are dropped. *)
let compact_lines lines new_index total =
  let mapped =
    Array.to_list lines
    |> List.filter_map (fun (pc, loc) ->
           let np = new_index.(pc) in
           if np >= total then None else Some (np, loc))
  in
  let rec dedupe = function
    | (p1, _) :: ((p2, _) :: _ as rest) when p1 = p2 -> dedupe rest
    | e :: rest -> e :: dedupe rest
    | [] -> []
  in
  Array.of_list (dedupe mapped)

(* Thread jump chains: Jump t where code[t] = Jump u  becomes Jump u. *)
let thread_jumps code =
  let n = Array.length code in
  let changed = ref false in
  let rec final_target t depth =
    if depth > n then t
    else
      match if t < n then code.(t) else Instr.Ret with
      | Instr.Jump u when u <> t -> final_target u (depth + 1)
      | _ -> t
  in
  let out =
    Array.map
      (function
        | Instr.Jump t ->
            let u = final_target t 0 in
            if u <> t then changed := true;
            Instr.Jump u
        | Instr.Jump_if_false t ->
            let u = final_target t 0 in
            if u <> t then changed := true;
            Instr.Jump_if_false u
        | instr -> instr)
      code
  in
  (!changed, out)

let optimize_code code lines =
  let rec loop code lines fuel =
    if fuel = 0 then (code, lines)
    else
      let changed1, code = thread_jumps code in
      let changed2, keep, replacement = local_pass code in
      let code, lines =
        if changed2 then begin
          let code, new_index = compact code keep replacement in
          (code, compact_lines lines new_index (Array.length code))
        end
        else (code, lines)
      in
      if changed1 || changed2 then loop code lines (fuel - 1) else (code, lines)
  in
  loop code lines 10

let method_code mc =
  let code, lines = optimize_code mc.Instr.mc_code mc.Instr.mc_lines in
  { mc with Instr.mc_code = code; mc_lines = lines }

let image (im : Compile.image) =
  let im_methods = Hashtbl.create (Hashtbl.length im.Compile.im_methods) in
  Hashtbl.iter
    (fun key mc -> Hashtbl.replace im_methods key (method_code mc))
    im.Compile.im_methods;
  let im_ctors = Hashtbl.create (Hashtbl.length im.Compile.im_ctors) in
  Hashtbl.iter
    (fun key mc -> Hashtbl.replace im_ctors key (method_code mc))
    im.Compile.im_ctors;
  { im with Compile.im_methods; im_ctors;
    im_static_init = method_code im.Compile.im_static_init }

let shrinkage (im : Compile.image) =
  let count image =
    Hashtbl.fold (fun _ mc acc -> acc + Array.length mc.Instr.mc_code)
      image.Compile.im_methods 0
    + Hashtbl.fold
        (fun _ mc acc -> acc + Array.length mc.Instr.mc_code)
        image.Compile.im_ctors 0
  in
  (count im, count (image im))
