(** Stack bytecode for MJ — the analogue of Java class files.

    Operand-stack conventions are noted per instruction; stores push the
    stored value back (statement contexts append [Pop]). *)

type t =
  | Const of Mj_runtime.Value.t
  | Load of int            (** push local slot *)
  | Store of int           (** pop into local slot *)
  | Get_field of string    (** [obj] -> [value] *)
  | Put_field of string    (** [obj; value] -> [value] *)
  | Get_static of string * string
  | Put_static of string * string  (** [value] -> [value] *)
  | Array_load             (** [arr; idx] -> [value] *)
  | Array_store            (** [arr; idx; value] -> [value] *)
  | Array_len              (** [arr] -> [length] *)
  | Aload_u                (** [Array_load] with the bounds check elided *)
  | Astore_u               (** [Array_store] with the bounds check elided *)
  | New_object of string * int  (** [args...] -> [obj]; runs constructor *)
  | New_array of Mj.Ast.ty      (** element type; [len] -> [arr] *)
  | New_multi of Mj.Ast.ty * int (** element type, #dims; [d1..dn] -> [arr] *)
  | Iop of Mj.Ast.binop    (** int arithmetic/comparison *)
  | Dop of Mj.Ast.binop    (** double arithmetic/comparison *)
  | Veq of bool            (** generic equality; [true] = equals *)
  | Sconcat                (** [a; b] -> [string] *)
  | Ineg
  | Dneg
  | Bnot
  | I2d
  | D2i
  | Checkcast of Mj.Ast.ty
  | Jump of int            (** absolute target *)
  | Jump_if_false of int   (** pops a boolean *)
  | Invoke_virtual of string * int      (** method name, argc; [recv; args...] *)
  | Invoke_static of string * string * int
  | Invoke_special of string * string * int
      (** statically-dispatched call starting at a given class (super calls) *)
  | Invoke_ctor of string * int  (** [obj; args...] -> []; constructor chain *)
  | Ret                    (** return null/void *)
  | Ret_val
  | Pop
  | Dup
  | Dup2                   (** [a; b] -> [a; b; a; b] *)
  | Dup_x1                 (** [a; b] -> [b; a; b] *)
  | Dup_x2                 (** [a; b; c] -> [c; a; b; c] *)
  | Coerce of Mj.Ast.ty    (** widen int to double when the type is double *)
  | Yield_point            (** statement boundary: thread preemption *)

type method_code = {
  mc_class : string;
  mc_name : string;
  mc_params : Mj.Ast.ty list;
  mc_ret : Mj.Ast.ty;
  mc_nlocals : int;  (** includes slot 0 (this) and parameters *)
  mc_code : t array;
  mc_lines : (int * Mj.Loc.t) array;
      (** Line table: sorted by strictly increasing start pc; entry
          [(pc, loc)] covers instructions from [pc] up to (excluding)
          the next entry's pc. Instructions before the first entry have
          no source attribution. *)
}

val line_at : method_code -> int -> Mj.Loc.t
(** Source location of the instruction at [pc] per the line table
    (binary search); {!Mj.Loc.dummy} when unattributed. *)

val expand_lines : method_code -> Mj.Loc.t array
(** Per-pc expansion of the line table — used by the JIT so executed
    code pays an array read, not a search. *)

val pp : Format.formatter -> t -> unit

val pp_method : Format.formatter -> method_code -> unit
