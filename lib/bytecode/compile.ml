module Value = Mj_runtime.Value

open Mj.Ast

type image = {
  im_tab : Mj.Symtab.t;
  im_methods : (string * string, Instr.method_code) Hashtbl.t;
  im_ctors : (string * int, Instr.method_code) Hashtbl.t;
  im_static_init : Instr.method_code;
}

let fail fmt = Format.kasprintf failwith fmt

(* Code emission buffer with label patching. *)
type emitter = {
  mutable code : Instr.t array;
  mutable len : int;
  mutable next_slot : int;
  mutable max_slot : int;
  tab : Mj.Symtab.t;
  cls : string;
  mutable scopes : (string * (int * ty)) list list; (* innermost first *)
  mutable break_patches : int list list;
  mutable continue_patches : int list list;
  (* Array-access sites (keyed by the span of the index subexpression)
     whose bounds check the static analysis proved redundant. *)
  elide : (Mj.Loc.t, unit) Hashtbl.t;
  (* Line-table entries in reverse emission order: a new entry is pushed
     whenever the source position of the code being emitted changes
     line (or file). [lt_file]/[lt_line] cache the last noted position. *)
  mutable lines_rev : (int * Mj.Loc.t) list;
  mutable lt_file : string;
  mutable lt_line : int;
}

let emit em instr =
  if em.len >= Array.length em.code then begin
    let bigger = Array.make (max 64 (2 * Array.length em.code)) Instr.Ret in
    Array.blit em.code 0 bigger 0 em.len;
    em.code <- bigger
  end;
  em.code.(em.len) <- instr;
  em.len <- em.len + 1

let here em = em.len

(* Note that subsequent instructions compile source at [loc]. Dummy
   locations are skipped (synthesized code stays on the current line). *)
let note_loc em loc =
  if not (Mj.Loc.is_dummy loc) then begin
    let line = loc.Mj.Loc.start_pos.Mj.Loc.line in
    let file = loc.Mj.Loc.file in
    if line <> em.lt_line || not (String.equal file em.lt_file) then begin
      em.lt_file <- file;
      em.lt_line <- line;
      em.lines_rev <- (em.len, loc) :: em.lines_rev
    end
  end

(* The finished table: ascending pc, one entry per pc (when several
   positions were noted at the same pc — e.g. an empty statement —
   only the last survives). *)
let line_table em =
  let rec dedupe = function
    | (pc1, _) :: ((pc2, _) :: _ as rest) when pc1 = pc2 -> dedupe rest
    | e :: rest -> e :: dedupe rest
    | [] -> []
  in
  Array.of_list (dedupe (List.rev em.lines_rev))

let emit_placeholder em =
  let at = em.len in
  emit em (Instr.Jump (-1));
  at

let patch em at instr = em.code.(at) <- instr

let alloc_slot em name ty =
  let slot = em.next_slot in
  em.next_slot <- slot + 1;
  if em.next_slot > em.max_slot then em.max_slot <- em.next_slot;
  (match em.scopes with
  | scope :: rest -> em.scopes <- ((name, (slot, ty)) :: scope) :: rest
  | [] -> em.scopes <- [ [ (name, (slot, ty)) ] ]);
  slot

let push_scope em = em.scopes <- [] :: em.scopes

let pop_scope em =
  match em.scopes with
  | scope :: rest ->
      em.next_slot <- em.next_slot - List.length scope;
      em.scopes <- rest
  | [] -> ()

let find_local em name =
  let rec loop = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with
        | Some entry -> Some entry
        | None -> loop rest)
  in
  loop em.scopes

let ety e =
  match e.ety with
  | Some ty -> ty
  | None -> fail "compile: expression lacks a type annotation"

let is_double_ty = function TDouble -> true | _ -> false

let field_type em ~obj_ty fname =
  match obj_ty with
  | TClass cls -> (
      match Mj.Symtab.lookup_field em.tab cls fname with
      | Some (_, f) -> f.f_ty
      | None -> fail "compile: no field %s on %s" fname cls)
  | ty -> fail "compile: field %s on non-class %s" fname (ty_to_string ty)

let static_field_type em cls fname =
  match Mj.Symtab.lookup_field em.tab cls fname with
  | Some (_, f) -> f.f_ty
  | None -> fail "compile: no static field %s.%s" cls fname

(* Emit a coercion when a value of type [src] flows into a slot of type
   [target]. Only int-to-double widening exists in MJ. *)
let coerce_into em ~target ~src =
  if is_double_ty target && not (is_double_ty src) then emit em Instr.I2d

(* Checked or unchecked array access, per the elision plan. *)
let aload em idx =
  if Hashtbl.mem em.elide idx.eloc then Instr.Aload_u else Instr.Array_load

let astore em idx =
  if Hashtbl.mem em.elide idx.eloc then Instr.Astore_u else Instr.Array_store

let rec compile_expr em e =
  note_loc em e.eloc;
  match e.expr with
  | Int_lit n -> emit em (Instr.Const (Value.Int (Value.wrap32 n)))
  | Double_lit f -> emit em (Instr.Const (Value.Double f))
  | Bool_lit b -> emit em (Instr.Const (Value.Bool b))
  | String_lit s -> emit em (Instr.Const (Value.Str s))
  | Null_lit -> emit em (Instr.Const Value.Null)
  | This -> emit em (Instr.Load 0)
  | Local name | Name name -> (
      match find_local em name with
      | Some (slot, _) -> emit em (Instr.Load slot)
      | None -> fail "compile: unbound local '%s'" name)
  | Field_access (o, fname) ->
      compile_expr em o;
      emit em (Instr.Get_field fname)
  | Static_field (cls, fname) -> emit em (Instr.Get_static (cls, fname))
  | Array_length o ->
      compile_expr em o;
      emit em Instr.Array_len
  | Index (arr, idx) ->
      compile_expr em arr;
      compile_expr em idx;
      emit em (aload em idx)
  | Call call -> compile_call em call
  | New_object (cls, args) ->
      List.iter2
        (fun arg pty ->
          compile_expr em arg;
          coerce_into em ~target:pty ~src:(ety arg))
        args
        (ctor_param_types em cls (List.length args));
      emit em (Instr.New_object (cls, List.length args))
  | New_array (elem, [ dim ]) ->
      compile_expr em dim;
      emit em (Instr.New_array elem)
  | New_array (elem, dims) ->
      List.iter (compile_expr em) dims;
      emit em (Instr.New_multi (elem, List.length dims))
  | Unary (Neg, x) ->
      compile_expr em x;
      emit em (if is_double_ty (ety x) then Instr.Dneg else Instr.Ineg)
  | Unary (Not, x) ->
      compile_expr em x;
      emit em Instr.Bnot
  | Binary (And, x, y) ->
      (* x && y: if !x jump to push-false *)
      compile_expr em x;
      let jf = emit_placeholder em in
      compile_expr em y;
      let jend = emit_placeholder em in
      patch em jf (Instr.Jump_if_false (here em));
      emit em (Instr.Const (Value.Bool false));
      patch em jend (Instr.Jump (here em))
  | Binary (Or, x, y) ->
      compile_expr em x;
      emit em Instr.Bnot;
      let jf = emit_placeholder em in
      compile_expr em y;
      let jend = emit_placeholder em in
      patch em jf (Instr.Jump_if_false (here em));
      emit em (Instr.Const (Value.Bool true));
      patch em jend (Instr.Jump (here em))
  | Binary (op, x, y) -> compile_binary em op x y
  | Assign (lv, rhs) -> compile_assign em lv rhs
  | Op_assign (op, lv, rhs) -> compile_op_assign em op lv rhs
  | Pre_incr (d, lv) -> compile_incr em d lv ~post:false
  | Post_incr (d, lv) -> compile_incr em d lv ~post:true
  | Cast (ty, x) -> (
      compile_expr em x;
      match (ty, ety x) with
      | TInt, TDouble -> emit em Instr.D2i
      | TDouble, (TInt | TDouble) -> emit em Instr.I2d
      | TClass _, _ -> emit em (Instr.Checkcast ty)
      | _, _ -> ())
  | Cond (c, a, b) ->
      let result_ty = ety e in
      compile_expr em c;
      let jf = emit_placeholder em in
      compile_expr em a;
      coerce_into em ~target:result_ty ~src:(ety a);
      let jend = emit_placeholder em in
      patch em jf (Instr.Jump_if_false (here em));
      compile_expr em b;
      coerce_into em ~target:result_ty ~src:(ety b);
      patch em jend (Instr.Jump (here em))

and ctor_param_types em cls arity =
  match Mj.Symtab.lookup_ctor em.tab cls arity with
  | Some ctor -> List.map fst ctor.c_params
  | None -> fail "compile: no constructor %s/%d" cls arity

and compile_binary em op x y =
  let tx = ety x and ty_ = ety y in
  let string_concat = op = Add && (tx = TString || ty_ = TString) in
  if string_concat then begin
    compile_expr em x;
    compile_expr em y;
    emit em Instr.Sconcat
  end
  else
    let numeric =
      match (tx, ty_) with
      | (TInt | TDouble), (TInt | TDouble) -> true
      | _ -> false
    in
    if numeric then begin
      let want_double = is_double_ty tx || is_double_ty ty_ in
      compile_expr em x;
      if want_double && not (is_double_ty tx) then emit em Instr.I2d;
      compile_expr em y;
      if want_double && not (is_double_ty ty_) then emit em Instr.I2d;
      emit em (if want_double then Instr.Dop op else Instr.Iop op)
    end
    else begin
      (* Non-numeric equality (references, strings, booleans). *)
      compile_expr em x;
      compile_expr em y;
      match op with
      | Eq -> emit em (Instr.Veq true)
      | Neq -> emit em (Instr.Veq false)
      | _ -> fail "compile: operator %s on non-numeric operands" (binop_to_string op)
    end

and compile_assign em lv rhs =
  match lv with
  | Lname name | Llocal name -> (
      match find_local em name with
      | Some (slot, ty) ->
          compile_expr em rhs;
          coerce_into em ~target:ty ~src:(ety rhs);
          emit em Instr.Dup;
          emit em (Instr.Store slot)
      | None -> fail "compile: unbound local '%s'" name)
  | Lfield (o, fname) ->
      compile_expr em o;
      compile_expr em rhs;
      coerce_into em ~target:(field_type em ~obj_ty:(ety o) fname) ~src:(ety rhs);
      emit em (Instr.Put_field fname)
  | Lstatic_field (cls, fname) ->
      compile_expr em rhs;
      coerce_into em ~target:(static_field_type em cls fname) ~src:(ety rhs);
      emit em (Instr.Put_static (cls, fname))
  | Lindex (arr, idx) ->
      compile_expr em arr;
      compile_expr em idx;
      compile_expr em rhs;
      (match ety arr with
      | TArray elem -> coerce_into em ~target:elem ~src:(ety rhs)
      | _ -> ());
      emit em (astore em idx)

and lvalue_read_ty em = function
  | Lname name | Llocal name -> (
      match find_local em name with
      | Some (_, ty) -> ty
      | None -> fail "compile: unbound local '%s'" name)
  | Lfield (o, fname) -> field_type em ~obj_ty:(ety o) fname
  | Lstatic_field (cls, fname) -> static_field_type em cls fname
  | Lindex (arr, _) -> (
      match ety arr with
      | TArray elem -> elem
      | ty -> fail "compile: indexing non-array %s" (ty_to_string ty))

(* target op= rhs. Leaves the stored value on the stack. *)
and compile_op_assign em op lv rhs =
  let target_ty = lvalue_read_ty em lv in
  let rhs_ty = ety rhs in
  let want_double = is_double_ty target_ty || is_double_ty rhs_ty in
  let emit_op () =
    if want_double then begin
      emit em (Instr.Dop op);
      (* Compound assignment narrows back to the target type. *)
      if not (is_double_ty target_ty) then emit em Instr.D2i
    end
    else if op = Add && target_ty = TString then emit em Instr.Sconcat
    else emit em (Instr.Iop op)
  in
  let compile_rhs () =
    compile_expr em rhs;
    if want_double && not (is_double_ty rhs_ty) then emit em Instr.I2d
  in
  let widen_old () = if want_double && not (is_double_ty target_ty) then emit em Instr.I2d in
  match lv with
  | Lname name | Llocal name -> (
      match find_local em name with
      | Some (slot, _) ->
          emit em (Instr.Load slot);
          widen_old ();
          compile_rhs ();
          emit_op ();
          emit em Instr.Dup;
          emit em (Instr.Store slot)
      | None -> fail "compile: unbound local '%s'" name)
  | Lfield (o, fname) ->
      compile_expr em o;
      emit em Instr.Dup;
      emit em (Instr.Get_field fname);
      widen_old ();
      compile_rhs ();
      emit_op ();
      emit em (Instr.Put_field fname)
  | Lstatic_field (cls, fname) ->
      emit em (Instr.Get_static (cls, fname));
      widen_old ();
      compile_rhs ();
      emit_op ();
      emit em (Instr.Put_static (cls, fname))
  | Lindex (arr, idx) ->
      compile_expr em arr;
      compile_expr em idx;
      emit em Instr.Dup2;
      emit em (aload em idx);
      widen_old ();
      compile_rhs ();
      emit_op ();
      emit em (astore em idx)

and compile_incr em d lv ~post =
  let bump () =
    emit em (Instr.Const (Value.Int d));
    emit em (Instr.Iop Add)
  in
  match lv with
  | Lname name | Llocal name -> (
      match find_local em name with
      | Some (slot, _) ->
          emit em (Instr.Load slot);
          if post then begin
            emit em Instr.Dup;
            bump ();
            emit em (Instr.Store slot)
          end
          else begin
            bump ();
            emit em Instr.Dup;
            emit em (Instr.Store slot)
          end
      | None -> fail "compile: unbound local '%s'" name)
  | Lfield (o, fname) ->
      compile_expr em o;
      emit em Instr.Dup;
      emit em (Instr.Get_field fname);
      if post then begin
        (* [o; old] -> [old; o; old] *)
        emit em Instr.Dup_x1;
        bump ();
        emit em (Instr.Put_field fname);
        emit em Instr.Pop
      end
      else begin
        bump ();
        emit em (Instr.Put_field fname)
      end
  | Lstatic_field (cls, fname) ->
      emit em (Instr.Get_static (cls, fname));
      if post then begin
        emit em Instr.Dup;
        bump ();
        emit em (Instr.Put_static (cls, fname));
        emit em Instr.Pop
      end
      else begin
        bump ();
        emit em (Instr.Put_static (cls, fname))
      end
  | Lindex (arr, idx) ->
      compile_expr em arr;
      compile_expr em idx;
      emit em Instr.Dup2;
      emit em (aload em idx);
      if post then begin
        (* [a; i; old] -> [old; a; i; old] *)
        emit em Instr.Dup_x2;
        bump ();
        emit em (astore em idx);
        emit em Instr.Pop
      end
      else begin
        bump ();
        emit em (astore em idx)
      end

and compile_call em call =
  let resolved =
    match call.resolved with
    | Some r -> r
    | None -> fail "compile: unresolved call '%s'" call.mname
  in
  let param_types =
    match Mj.Symtab.lookup_method em.tab resolved.rc_class call.mname with
    | Some (_, m) -> List.map fst m.m_params
    | None -> fail "compile: method %s.%s vanished" resolved.rc_class call.mname
  in
  let compile_args () =
    (* println/print accept any argument type: skip coercion when the
       parameter list does not match the arg count. *)
    if List.length param_types = List.length call.args then
      List.iter2
        (fun arg pty ->
          compile_expr em arg;
          coerce_into em ~target:pty ~src:(ety arg))
        call.args param_types
    else List.iter (compile_expr em) call.args
  in
  let argc = List.length call.args in
  match call.recv with
  | Rstatic cls ->
      compile_args ();
      emit em (Instr.Invoke_static (cls, call.mname, argc))
  | Rimplicit ->
      if resolved.rc_static then begin
        compile_args ();
        emit em (Instr.Invoke_static (resolved.rc_class, call.mname, argc))
      end
      else begin
        emit em (Instr.Load 0);
        compile_args ();
        emit em (Instr.Invoke_virtual (call.mname, argc))
      end
  | Rexpr o ->
      compile_expr em o;
      compile_args ();
      emit em (Instr.Invoke_virtual (call.mname, argc))
  | Rsuper ->
      let super =
        match Mj.Symtab.superclass em.tab em.cls with
        | Some s -> s
        | None -> fail "compile: 'super' in class without superclass"
      in
      emit em (Instr.Load 0);
      compile_args ();
      emit em (Instr.Invoke_special (super, call.mname, argc))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec compile_stmt em s =
  note_loc em s.sloc;
  emit em Instr.Yield_point;
  match s.stmt with
  | Block stmts ->
      push_scope em;
      List.iter (compile_stmt em) stmts;
      pop_scope em
  | Var_decl (ty, name, init) ->
      let slot = alloc_slot em name ty in
      (match init with
      | Some e ->
          compile_expr em e;
          coerce_into em ~target:ty ~src:(ety e)
      | None -> emit em (Instr.Const (Value.default ty)));
      emit em (Instr.Store slot)
  | Expr e ->
      compile_expr em e;
      emit em Instr.Pop
  | If (c, then_s, else_s) -> (
      compile_expr em c;
      let jf = emit_placeholder em in
      compile_stmt em then_s;
      match else_s with
      | None -> patch em jf (Instr.Jump_if_false (here em))
      | Some else_s ->
          let jend = emit_placeholder em in
          patch em jf (Instr.Jump_if_false (here em));
          compile_stmt em else_s;
          patch em jend (Instr.Jump (here em)))
  | While (c, body) ->
      let top = here em in
      compile_expr em c;
      let jf = emit_placeholder em in
      enter_loop em;
      compile_stmt em body;
      let break_ps, continue_ps = exit_loop em in
      List.iter (fun at -> patch em at (Instr.Jump top)) continue_ps;
      emit em (Instr.Jump top);
      patch em jf (Instr.Jump_if_false (here em));
      List.iter (fun at -> patch em at (Instr.Jump (here em))) break_ps
  | Do_while (body, c) ->
      let top = here em in
      enter_loop em;
      compile_stmt em body;
      let break_ps, continue_ps = exit_loop em in
      let cond_at = here em in
      List.iter (fun at -> patch em at (Instr.Jump cond_at)) continue_ps;
      compile_expr em c;
      let jf = emit_placeholder em in
      emit em (Instr.Jump top);
      patch em jf (Instr.Jump_if_false (here em));
      List.iter (fun at -> patch em at (Instr.Jump (here em))) break_ps
  | For (init, cond, update, body) ->
      push_scope em;
      (match init with
      | Some (For_var (ty, name, ie)) ->
          let slot = alloc_slot em name ty in
          (match ie with
          | Some e ->
              compile_expr em e;
              coerce_into em ~target:ty ~src:(ety e)
          | None -> emit em (Instr.Const (Value.default ty)));
          emit em (Instr.Store slot)
      | Some (For_expr e) ->
          compile_expr em e;
          emit em Instr.Pop
      | None -> ());
      let top = here em in
      let jf =
        match cond with
        | Some c ->
            compile_expr em c;
            Some (emit_placeholder em)
        | None -> None
      in
      enter_loop em;
      compile_stmt em body;
      let break_ps, continue_ps = exit_loop em in
      let update_at = here em in
      List.iter (fun at -> patch em at (Instr.Jump update_at)) continue_ps;
      (match update with
      | Some u ->
          compile_expr em u;
          emit em Instr.Pop
      | None -> ());
      emit em (Instr.Jump top);
      (match jf with
      | Some at -> patch em at (Instr.Jump_if_false (here em))
      | None -> ());
      List.iter (fun at -> patch em at (Instr.Jump (here em))) break_ps;
      pop_scope em
  | Return None -> emit em Instr.Ret
  | Return (Some e) ->
      compile_expr em e;
      emit em Instr.Ret_val
  | Break -> (
      match em.break_patches with
      | ps :: rest ->
          em.break_patches <- (emit_placeholder em :: ps) :: rest
      | [] -> fail "compile: break outside loop")
  | Continue -> (
      match em.continue_patches with
      | ps :: rest ->
          em.continue_patches <- (emit_placeholder em :: ps) :: rest
      | [] -> fail "compile: continue outside loop")
  | Super_call _ -> fail "compile: super call outside constructor prologue"
  | Empty -> ()

and enter_loop em =
  em.break_patches <- [] :: em.break_patches;
  em.continue_patches <- [] :: em.continue_patches

and exit_loop em =
  match (em.break_patches, em.continue_patches) with
  | bp :: brest, cp :: crest ->
      em.break_patches <- brest;
      em.continue_patches <- crest;
      (bp, cp)
  | _ -> fail "compile: loop stack underflow"

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let make_emitter ~elide tab cls ~is_static params =
  let em =
    { code = Array.make 64 Instr.Ret; len = 0;
      next_slot = (if is_static then 0 else 1); max_slot = 0;
      tab; cls; scopes = [ [] ]; break_patches = []; continue_patches = [];
      elide; lines_rev = []; lt_file = ""; lt_line = 0 }
  in
  em.max_slot <- em.next_slot;
  List.iter (fun (ty, name) -> ignore (alloc_slot em name ty)) params;
  em

let finish em ~cls ~name ~params ~ret =
  emit em Instr.Ret;
  { Instr.mc_class = cls; mc_name = name; mc_params = List.map fst params;
    mc_ret = ret; mc_nlocals = em.max_slot;
    mc_code = Array.sub em.code 0 em.len; mc_lines = line_table em }

let compile_method ~elide tab cls (m : method_decl) =
  match m.m_body with
  | None -> None
  | Some body ->
      let em =
        make_emitter ~elide tab cls.cl_name ~is_static:m.m_mods.is_static
          m.m_params
      in
      List.iter (compile_stmt em) body;
      Some (finish em ~cls:cls.cl_name ~name:m.m_name ~params:m.m_params ~ret:m.m_ret)

let compile_ctor ~elide tab cls (c : ctor_decl) =
  let em = make_emitter ~elide tab cls.cl_name ~is_static:false c.c_params in
  let body_after_super =
    match c.c_body with
    | { stmt = Super_call args; _ } :: rest ->
        let super =
          match cls.cl_super with
          | Some s -> s
          | None -> fail "compile: super() in class without superclass"
        in
        emit em (Instr.Load 0);
        List.iter2
          (fun arg pty ->
            compile_expr em arg;
            coerce_into em ~target:pty ~src:(ety arg))
          args
          (ctor_param_types em super (List.length args));
        emit em (Instr.Invoke_ctor (super, List.length args));
        rest
    | body ->
        (match cls.cl_super with
        | Some super ->
            emit em (Instr.Load 0);
            emit em (Instr.Invoke_ctor (super, 0))
        | None -> ());
        body
  in
  (* Instance field initializers of this class. *)
  List.iter
    (fun f ->
      if (not f.f_mods.is_static) && f.f_init <> None then begin
        let init = Option.get f.f_init in
        emit em (Instr.Load 0);
        compile_expr em init;
        coerce_into em ~target:f.f_ty ~src:(ety init);
        emit em (Instr.Put_field f.f_name);
        emit em Instr.Pop
      end)
    cls.cl_fields;
  List.iter (compile_stmt em) body_after_super;
  finish em ~cls:cls.cl_name ~name:"<init>" ~params:c.c_params ~ret:TVoid

let default_ctor_decl =
  { c_mods = Mj.Ast.no_mods; c_params = []; c_body = []; c_loc = Mj.Loc.dummy }

let compile ?elide checked =
  let elide =
    match elide with Some h -> h | None -> Hashtbl.create 0
  in
  let tab = checked.Mj.Typecheck.symtab in
  let all = (Mj.Symtab.program tab).classes in
  let im_methods = Hashtbl.create 64 in
  let im_ctors = Hashtbl.create 64 in
  List.iter
    (fun cls ->
      List.iter
        (fun m ->
          match compile_method ~elide tab cls m with
          | Some mc -> Hashtbl.replace im_methods (cls.cl_name, m.m_name) mc
          | None -> ())
        cls.cl_methods;
      let ctors = if cls.cl_ctors = [] then [ default_ctor_decl ] else cls.cl_ctors in
      List.iter
        (fun c ->
          Hashtbl.replace im_ctors
            (cls.cl_name, List.length c.c_params)
            (compile_ctor ~elide tab cls c))
        ctors)
    all;
  (* Synthetic static initializer covering all classes in order. *)
  let em = make_emitter ~elide tab "<clinit>" ~is_static:true [] in
  List.iter
    (fun (cls, f) ->
      match f.f_init with
      | None -> ()
      | Some e ->
          compile_expr em e;
          coerce_into em ~target:f.f_ty ~src:(ety e);
          emit em (Instr.Put_static (cls, f.f_name));
          emit em Instr.Pop)
    (Mj.Symtab.static_fields tab);
  let im_static_init =
    finish em ~cls:"<clinit>" ~name:"<clinit>" ~params:[] ~ret:TVoid
  in
  { im_tab = tab; im_methods; im_ctors; im_static_init }

let sorted_methods image =
  Hashtbl.fold (fun key mc acc -> (key, mc) :: acc) image.im_methods []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let find_method image cls mname =
  let rec loop cls_name =
    match Hashtbl.find_opt image.im_methods (cls_name, mname) with
    | Some mc -> Some (cls_name, mc)
    | None -> (
        match Mj.Symtab.superclass image.im_tab cls_name with
        | Some super -> loop super
        | None -> None)
  in
  loop cls
