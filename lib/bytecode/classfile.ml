module Value = Mj_runtime.Value
open Mj.Ast

(* Little-endian primitive writers. *)
let w_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let w_u32 buf n =
  w_u8 buf n;
  w_u8 buf (n lsr 8);
  w_u8 buf (n lsr 16);
  w_u8 buf (n lsr 24)

let w_i64 buf n =
  for i = 0 to 7 do
    w_u8 buf (Int64.to_int (Int64.shift_right_logical n (8 * i)))
  done

let w_str buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

type reader = { src : string; mutable pos : int }

let r_u8 r =
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_u32 r =
  let a = r_u8 r in
  let b = r_u8 r in
  let c = r_u8 r in
  let d = r_u8 r in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let r_i64 r =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (r_u8 r)) (8 * i))
  done;
  !v

let r_str r =
  let n = r_u32 r in
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let rec w_ty buf = function
  | TInt -> w_u8 buf 0
  | TBool -> w_u8 buf 1
  | TDouble -> w_u8 buf 2
  | TString -> w_u8 buf 3
  | TVoid -> w_u8 buf 4
  | TNull -> w_u8 buf 5
  | TArray elem ->
      w_u8 buf 6;
      w_ty buf elem
  | TClass name ->
      w_u8 buf 7;
      w_str buf name

let rec r_ty r =
  match r_u8 r with
  | 0 -> TInt
  | 1 -> TBool
  | 2 -> TDouble
  | 3 -> TString
  | 4 -> TVoid
  | 5 -> TNull
  | 6 -> TArray (r_ty r)
  | 7 -> TClass (r_str r)
  | n -> failwith (Printf.sprintf "classfile: bad type tag %d" n)

let w_value buf = function
  | Value.Int n ->
      w_u8 buf 0;
      w_i64 buf (Int64.of_int n)
  | Value.Double f ->
      w_u8 buf 1;
      w_i64 buf (Int64.bits_of_float f)
  | Value.Bool b ->
      w_u8 buf 2;
      w_u8 buf (if b then 1 else 0)
  | Value.Str s ->
      w_u8 buf 3;
      w_str buf s
  | Value.Null -> w_u8 buf 4
  | Value.Ref _ -> failwith "classfile: heap reference in constant pool"

let r_value r =
  match r_u8 r with
  | 0 -> Value.Int (Int64.to_int (r_i64 r))
  | 1 -> Value.Double (Int64.float_of_bits (r_i64 r))
  | 2 -> Value.Bool (r_u8 r = 1)
  | 3 -> Value.Str (r_str r)
  | 4 -> Value.Null
  | n -> failwith (Printf.sprintf "classfile: bad value tag %d" n)

let w_binop buf op =
  let code =
    match op with
    | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Mod -> 4
    | Eq -> 5 | Neq -> 6 | Lt -> 7 | Gt -> 8 | Le -> 9 | Ge -> 10
    | And -> 11 | Or -> 12 | Band -> 13 | Bor -> 14 | Bxor -> 15
    | Shl -> 16 | Shr -> 17
  in
  w_u8 buf code

let r_binop r =
  match r_u8 r with
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> Div | 4 -> Mod
  | 5 -> Eq | 6 -> Neq | 7 -> Lt | 8 -> Gt | 9 -> Le | 10 -> Ge
  | 11 -> And | 12 -> Or | 13 -> Band | 14 -> Bor | 15 -> Bxor
  | 16 -> Shl | 17 -> Shr
  | n -> failwith (Printf.sprintf "classfile: bad binop tag %d" n)

let w_instr buf (instr : Instr.t) =
  match instr with
  | Instr.Const v -> w_u8 buf 0; w_value buf v
  | Instr.Load n -> w_u8 buf 1; w_u32 buf n
  | Instr.Store n -> w_u8 buf 2; w_u32 buf n
  | Instr.Get_field f -> w_u8 buf 3; w_str buf f
  | Instr.Put_field f -> w_u8 buf 4; w_str buf f
  | Instr.Get_static (c, f) -> w_u8 buf 5; w_str buf c; w_str buf f
  | Instr.Put_static (c, f) -> w_u8 buf 6; w_str buf c; w_str buf f
  | Instr.Array_load -> w_u8 buf 7
  | Instr.Array_store -> w_u8 buf 8
  | Instr.Array_len -> w_u8 buf 9
  | Instr.New_object (c, n) -> w_u8 buf 10; w_str buf c; w_u32 buf n
  | Instr.New_array ty -> w_u8 buf 11; w_ty buf ty
  | Instr.New_multi (ty, n) -> w_u8 buf 12; w_ty buf ty; w_u32 buf n
  | Instr.Iop op -> w_u8 buf 13; w_binop buf op
  | Instr.Dop op -> w_u8 buf 14; w_binop buf op
  | Instr.Veq b -> w_u8 buf 15; w_u8 buf (if b then 1 else 0)
  | Instr.Sconcat -> w_u8 buf 16
  | Instr.Ineg -> w_u8 buf 17
  | Instr.Dneg -> w_u8 buf 18
  | Instr.Bnot -> w_u8 buf 19
  | Instr.I2d -> w_u8 buf 20
  | Instr.D2i -> w_u8 buf 21
  | Instr.Checkcast ty -> w_u8 buf 22; w_ty buf ty
  | Instr.Jump n -> w_u8 buf 23; w_u32 buf n
  | Instr.Jump_if_false n -> w_u8 buf 24; w_u32 buf n
  | Instr.Invoke_virtual (m, n) -> w_u8 buf 25; w_str buf m; w_u32 buf n
  | Instr.Invoke_static (c, m, n) -> w_u8 buf 26; w_str buf c; w_str buf m; w_u32 buf n
  | Instr.Invoke_special (c, m, n) -> w_u8 buf 27; w_str buf c; w_str buf m; w_u32 buf n
  | Instr.Invoke_ctor (c, n) -> w_u8 buf 28; w_str buf c; w_u32 buf n
  | Instr.Ret -> w_u8 buf 29
  | Instr.Ret_val -> w_u8 buf 30
  | Instr.Pop -> w_u8 buf 31
  | Instr.Dup -> w_u8 buf 32
  | Instr.Dup2 -> w_u8 buf 33
  | Instr.Dup_x1 -> w_u8 buf 34
  | Instr.Dup_x2 -> w_u8 buf 35
  | Instr.Coerce ty -> w_u8 buf 36; w_ty buf ty
  | Instr.Yield_point -> w_u8 buf 37
  | Instr.Aload_u -> w_u8 buf 38
  | Instr.Astore_u -> w_u8 buf 39

let r_instr r : Instr.t =
  match r_u8 r with
  | 0 -> Instr.Const (r_value r)
  | 1 -> Instr.Load (r_u32 r)
  | 2 -> Instr.Store (r_u32 r)
  | 3 -> Instr.Get_field (r_str r)
  | 4 -> Instr.Put_field (r_str r)
  | 5 -> let c = r_str r in Instr.Get_static (c, r_str r)
  | 6 -> let c = r_str r in Instr.Put_static (c, r_str r)
  | 7 -> Instr.Array_load
  | 8 -> Instr.Array_store
  | 9 -> Instr.Array_len
  | 10 -> let c = r_str r in Instr.New_object (c, r_u32 r)
  | 11 -> Instr.New_array (r_ty r)
  | 12 -> let ty = r_ty r in Instr.New_multi (ty, r_u32 r)
  | 13 -> Instr.Iop (r_binop r)
  | 14 -> Instr.Dop (r_binop r)
  | 15 -> Instr.Veq (r_u8 r = 1)
  | 16 -> Instr.Sconcat
  | 17 -> Instr.Ineg
  | 18 -> Instr.Dneg
  | 19 -> Instr.Bnot
  | 20 -> Instr.I2d
  | 21 -> Instr.D2i
  | 22 -> Instr.Checkcast (r_ty r)
  | 23 -> Instr.Jump (r_u32 r)
  | 24 -> Instr.Jump_if_false (r_u32 r)
  | 25 -> let m = r_str r in Instr.Invoke_virtual (m, r_u32 r)
  | 26 ->
      let c = r_str r in
      let m = r_str r in
      Instr.Invoke_static (c, m, r_u32 r)
  | 27 ->
      let c = r_str r in
      let m = r_str r in
      Instr.Invoke_special (c, m, r_u32 r)
  | 28 -> let c = r_str r in Instr.Invoke_ctor (c, r_u32 r)
  | 29 -> Instr.Ret
  | 30 -> Instr.Ret_val
  | 31 -> Instr.Pop
  | 32 -> Instr.Dup
  | 33 -> Instr.Dup2
  | 34 -> Instr.Dup_x1
  | 35 -> Instr.Dup_x2
  | 36 -> Instr.Coerce (r_ty r)
  | 37 -> Instr.Yield_point
  | 38 -> Instr.Aload_u
  | 39 -> Instr.Astore_u
  | n -> failwith (Printf.sprintf "classfile: bad instruction tag %d" n)

(* "MJC2" = "MJC1" + per-method line tables. *)
let magic = "MJC2"

let w_pos buf (p : Mj.Loc.pos) =
  w_u32 buf p.Mj.Loc.line;
  w_u32 buf p.Mj.Loc.col;
  w_i64 buf (Int64.of_int p.Mj.Loc.offset)

let r_pos r =
  let line = r_u32 r in
  let col = r_u32 r in
  let offset = Int64.to_int (r_i64 r) in
  { Mj.Loc.line; col; offset }

let w_loc buf (loc : Mj.Loc.t) =
  w_str buf loc.Mj.Loc.file;
  w_pos buf loc.Mj.Loc.start_pos;
  w_pos buf loc.Mj.Loc.end_pos

let r_loc r =
  let file = r_str r in
  let start_pos = r_pos r in
  let end_pos = r_pos r in
  { Mj.Loc.file; start_pos; end_pos }

let encode_method (mc : Instr.method_code) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  w_str buf mc.Instr.mc_class;
  w_str buf mc.Instr.mc_name;
  w_u32 buf (List.length mc.Instr.mc_params);
  List.iter (w_ty buf) mc.Instr.mc_params;
  w_ty buf mc.Instr.mc_ret;
  w_u32 buf mc.Instr.mc_nlocals;
  w_u32 buf (Array.length mc.Instr.mc_code);
  Array.iter (w_instr buf) mc.Instr.mc_code;
  w_u32 buf (Array.length mc.Instr.mc_lines);
  Array.iter
    (fun (pc, loc) ->
      w_u32 buf pc;
      w_loc buf loc)
    mc.Instr.mc_lines;
  Buffer.contents buf

let decode_method s =
  let r = { src = s; pos = 0 } in
  let m = String.sub s 0 4 in
  if not (String.equal m magic) then failwith "classfile: bad magic";
  r.pos <- 4;
  let mc_class = r_str r in
  let mc_name = r_str r in
  let n_params = r_u32 r in
  let mc_params = List.init n_params (fun _ -> r_ty r) in
  let mc_ret = r_ty r in
  let mc_nlocals = r_u32 r in
  let n_code = r_u32 r in
  let mc_code = Array.init n_code (fun _ -> r_instr r) in
  let n_lines = r_u32 r in
  let mc_lines =
    Array.init n_lines (fun _ ->
        let pc = r_u32 r in
        let loc = r_loc r in
        (pc, loc))
  in
  { Instr.mc_class; mc_name; mc_params; mc_ret; mc_nlocals; mc_code; mc_lines }

let methods_of_class image cls =
  let methods =
    Hashtbl.fold
      (fun (c, _) mc acc -> if String.equal c cls then mc :: acc else acc)
      image.Compile.im_methods []
  in
  let ctors =
    Hashtbl.fold
      (fun (c, _) mc acc -> if String.equal c cls then mc :: acc else acc)
      image.Compile.im_ctors []
  in
  (* Deterministic order for stable sizes. *)
  List.sort
    (fun a b -> String.compare a.Instr.mc_name b.Instr.mc_name)
    (methods @ ctors)

let class_size image cls =
  List.fold_left
    (fun acc mc -> acc + String.length (encode_method mc))
    (* Fixed per-class overhead: header, superclass link, field table. *)
    64
    (methods_of_class image cls)

let program_size image ~classes =
  List.fold_left (fun acc cls -> acc + class_size image cls) 0 classes

let arity_key mc = (mc.Instr.mc_class, List.length mc.Instr.mc_params)

let decode_image tab blob =
  let r = { src = blob; pos = 0 } in
  let m = String.sub blob 0 4 in
  if not (String.equal m magic) then failwith "classfile: bad image magic";
  r.pos <- 4;
  let n = r_u32 r in
  let decoded = List.init n (fun _ -> decode_method (r_str r)) in
  let im_methods = Hashtbl.create 64 in
  let im_ctors = Hashtbl.create 16 in
  let static_init = ref None in
  List.iter
    (fun mc ->
      if String.equal mc.Instr.mc_name "<clinit>" then static_init := Some mc
      else if String.equal mc.Instr.mc_name "<init>" then
        Hashtbl.replace im_ctors (arity_key mc) mc
      else
        Hashtbl.replace im_methods (mc.Instr.mc_class, mc.Instr.mc_name) mc)
    decoded;
  match !static_init with
  | None -> failwith "classfile: image lacks a static initializer"
  | Some im_static_init ->
      { Compile.im_tab = tab; im_methods; im_ctors; im_static_init }

let encode_image image =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  let all =
    Hashtbl.fold (fun _ mc acc -> mc :: acc) image.Compile.im_methods []
    @ Hashtbl.fold (fun _ mc acc -> mc :: acc) image.Compile.im_ctors []
    @ [ image.Compile.im_static_init ]
  in
  let all =
    List.sort
      (fun a b ->
        compare
          (a.Instr.mc_class, a.Instr.mc_name, List.length a.Instr.mc_params)
          (b.Instr.mc_class, b.Instr.mc_name, List.length b.Instr.mc_params))
      all
  in
  w_u32 buf (List.length all);
  List.iter (fun mc -> w_str buf (encode_method mc)) all;
  Buffer.contents buf
