(** Closure backend — the analogue of a late-90s JIT compiler.

    Each bytecode method is translated once into an array of OCaml
    closures (one per instruction, operands pre-decoded, static call
    targets pre-resolved); execution then drives the closures directly
    without interpreter dispatch. Results are identical to {!Vm};
    only the speed and the cost tariff differ. *)

type t

val create :
  ?tariff:Mj_runtime.Cost.tariff ->
  ?sink:Mj_runtime.Cost.sink ->
  ?lines:Telemetry.Lines.t ->
  ?elide:(Mj.Loc.t, unit) Hashtbl.t ->
  Mj.Typecheck.checked ->
  t
(** Default tariff is {!Mj_runtime.Cost.jit_tariff}. [sink] observes
    every cycle from creation on; [lines] receives per-source-line
    attribution via per-pc positions precomputed at translate time
    (the disabled path runs the original dispatch loop untouched). *)

val of_image :
  ?tariff:Mj_runtime.Cost.tariff ->
  ?sink:Mj_runtime.Cost.sink ->
  ?lines:Telemetry.Lines.t ->
  Compile.image -> t

val machine : t -> Mj_runtime.Machine.t

val cycles : t -> int

val reset_cycles : t -> unit

val output : t -> string

val clear_output : t -> unit

val new_instance : t -> string -> Mj_runtime.Value.t list -> Mj_runtime.Value.t

val call : t -> Mj_runtime.Value.t -> string -> Mj_runtime.Value.t list -> Mj_runtime.Value.t

val call_static : t -> string -> string -> Mj_runtime.Value.t list -> Mj_runtime.Value.t

val run_main : t -> string -> unit

val compiled_methods : t -> int
(** Number of methods translated so far (lazy, per first call). *)
