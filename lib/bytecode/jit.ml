module Value = Mj_runtime.Value
module Heap = Mj_runtime.Heap
module Cost = Mj_runtime.Cost
module Machine = Mj_runtime.Machine
module Threads = Mj_runtime.Threads
open Mj.Ast

type frame = {
  locals : Value.t array;
  mutable stack : Value.t array;
  mutable sp : int;
}

type compiled = {
  c_label : string;  (* "Class.method", precomputed for the cost sink *)
  c_nlocals : int;
  c_params : ty list;
  c_takes_this : bool;
  c_steps : (frame -> int) array;
  c_locs : Mj.Loc.t array;  (* per-pc source positions, precomputed *)
}

type t = {
  image : Compile.image;
  m : Machine.t;
  methods : (string * string, compiled) Hashtbl.t;
  ctors : (string * int, compiled) Hashtbl.t;
}

exception Jit_return of Value.t

let fail = Machine.fail

let machine t = t.m

let cycles t = Cost.cycles t.m.Machine.cost

let reset_cycles t = Cost.reset t.m.Machine.cost

let output t = Buffer.contents t.m.Machine.console

let clear_output t = Buffer.clear t.m.Machine.console

let compiled_methods t = Hashtbl.length t.methods + Hashtbl.length t.ctors

let push fr v =
  if fr.sp >= Array.length fr.stack then begin
    let bigger = Array.make (2 * Array.length fr.stack) Value.Null in
    Array.blit fr.stack 0 bigger 0 fr.sp;
    fr.stack <- bigger
  end;
  fr.stack.(fr.sp) <- v;
  fr.sp <- fr.sp + 1

let pop fr =
  if fr.sp = 0 then fail "jit: operand stack underflow";
  fr.sp <- fr.sp - 1;
  fr.stack.(fr.sp)

let pop_n fr n =
  let values = Array.make n Value.Null in
  for i = n - 1 downto 0 do
    values.(i) <- pop fr
  done;
  Array.to_list values

let as_int = Machine.as_int

let as_bool = Machine.as_bool

let as_double = Machine.as_double

let int_op op =
  let w = Value.wrap32 in
  match op with
  | Add -> fun x y -> Value.Int (w (x + y))
  | Sub -> fun x y -> Value.Int (w (x - y))
  | Mul -> fun x y -> Value.Int (w (x * y))
  | Div -> fun x y -> if y = 0 then fail "division by zero" else Value.Int (w (x / y))
  | Mod -> fun x y -> if y = 0 then fail "division by zero" else Value.Int (w (x mod y))
  | Band -> fun x y -> Value.Int (x land y)
  | Bor -> fun x y -> Value.Int (x lor y)
  | Bxor -> fun x y -> Value.Int (x lxor y)
  | Shl -> fun x y -> Value.Int (w (x lsl (y land 31)))
  | Shr -> fun x y -> Value.Int (x asr (y land 31))
  | Lt -> fun x y -> Value.Bool (x < y)
  | Gt -> fun x y -> Value.Bool (x > y)
  | Le -> fun x y -> Value.Bool (x <= y)
  | Ge -> fun x y -> Value.Bool (x >= y)
  | Eq -> fun x y -> Value.Bool (x = y)
  | Neq -> fun x y -> Value.Bool (x <> y)
  | And | Or -> fail "jit: boolean operator compiled as int op"

let double_op op =
  match op with
  | Add -> fun x y -> Value.Double (x +. y)
  | Sub -> fun x y -> Value.Double (x -. y)
  | Mul -> fun x y -> Value.Double (x *. y)
  | Div -> fun x y -> Value.Double (x /. y)
  | Lt -> fun x y -> Value.Bool (x < y)
  | Gt -> fun x y -> Value.Bool (x > y)
  | Le -> fun x y -> Value.Bool (x <= y)
  | Ge -> fun x y -> Value.Bool (x >= y)
  | Eq -> fun x y -> Value.Bool (Float.equal x y)
  | Neq -> fun x y -> Value.Bool (not (Float.equal x y))
  | Mod | Band | Bor | Bxor | Shl | Shr | And | Or ->
      fail "jit: operator not defined on doubles"

(* Translate one method's bytecode into per-instruction closures. Static
   call targets resolve lazily through the method cache on first use. *)
let rec translate t (mc : Instr.method_code) ~takes_this =
  let heap = t.m.Machine.heap in
  let cost = t.m.Machine.cost in
  let translate_instr pc instr =
    match instr with
    | Instr.Const v ->
        fun fr ->
          push fr v;
          pc + 1
    | Instr.Load n ->
        fun fr ->
          push fr fr.locals.(n);
          pc + 1
    | Instr.Store n ->
        fun fr ->
          fr.locals.(n) <- pop fr;
          pc + 1
    | Instr.Get_field fname ->
        fun fr ->
          Cost.field cost;
          let r = Heap.deref heap (pop fr) in
          push fr (Heap.get_field heap r fname);
          pc + 1
    | Instr.Put_field fname ->
        fun fr ->
          Cost.field cost;
          let v = pop fr in
          let r = Heap.deref heap (pop fr) in
          Heap.set_field heap r fname v;
          push fr v;
          pc + 1
    | Instr.Get_static (cls, fname) ->
        fun fr ->
          Cost.field cost;
          if Threads.active () then
            Threads.note (Printf.sprintf "read %s.%s" cls fname);
          push fr (Machine.static_get t.m cls fname);
          pc + 1
    | Instr.Put_static (cls, fname) ->
        fun fr ->
          Cost.field cost;
          let v = pop fr in
          if Threads.active () then
            Threads.note
              (Printf.sprintf "write %s.%s = %s" cls fname (Value.to_display v));
          Machine.static_set t.m cls fname v;
          push fr v;
          pc + 1
    | Instr.Array_load ->
        fun fr ->
          Cost.array cost;
          let i = as_int (pop fr) in
          let r = Heap.deref heap (pop fr) in
          push fr (Heap.array_get heap r i);
          pc + 1
    | Instr.Array_store ->
        fun fr ->
          Cost.array cost;
          let v = pop fr in
          let i = as_int (pop fr) in
          let r = Heap.deref heap (pop fr) in
          let v =
            match Heap.get heap r with
            | Heap.Arr { elem; _ } -> Machine.coerce elem v
            | Heap.Object _ -> v
          in
          Heap.array_set heap r i v;
          push fr v;
          pc + 1
    | Instr.Aload_u ->
        fun fr ->
          Cost.array_unchecked cost;
          let i = as_int (pop fr) in
          let r = Heap.deref heap (pop fr) in
          push fr (Heap.array_get_unchecked heap r i);
          pc + 1
    | Instr.Astore_u ->
        fun fr ->
          Cost.array_unchecked cost;
          let v = pop fr in
          let i = as_int (pop fr) in
          let r = Heap.deref heap (pop fr) in
          let v =
            match Heap.get heap r with
            | Heap.Arr { elem; _ } -> Machine.coerce elem v
            | Heap.Object _ -> v
          in
          Heap.array_set_unchecked heap r i v;
          push fr v;
          pc + 1
    | Instr.Array_len ->
        fun fr ->
          let r = Heap.deref heap (pop fr) in
          push fr (Value.Int (Heap.array_length heap r));
          pc + 1
    | Instr.New_object (cls, argc) ->
        fun fr ->
          let args = pop_n fr argc in
          push fr (construct t cls args);
          pc + 1
    | Instr.New_array elem ->
        fun fr ->
          let n = as_int (pop fr) in
          Cost.alloc cost ~words:n;
          push fr (Heap.alloc_array heap ~elem n);
          pc + 1
    | Instr.New_multi (elem, ndims) ->
        fun fr ->
          let dims = List.map as_int (pop_n fr ndims) in
          push fr (alloc_multi t elem dims);
          pc + 1
    | Instr.Iop op ->
        let f = int_op op in
        fun fr ->
          Cost.arith cost;
          let y = as_int (pop fr) in
          let x = as_int (pop fr) in
          push fr (f x y);
          pc + 1
    | Instr.Dop op ->
        let f = double_op op in
        fun fr ->
          Cost.arith cost;
          let y = as_double (pop fr) in
          let x = as_double (pop fr) in
          push fr (f x y);
          pc + 1
    | Instr.Veq positive ->
        fun fr ->
          let y = pop fr in
          let x = pop fr in
          let same = Value.equal x y in
          push fr (Value.Bool (if positive then same else not same));
          pc + 1
    | Instr.Sconcat ->
        fun fr ->
          let y = pop fr in
          let x = pop fr in
          push fr (Value.Str (Value.to_display x ^ Value.to_display y));
          pc + 1
    | Instr.Ineg ->
        fun fr ->
          push fr (Value.Int (Value.wrap32 (-as_int (pop fr))));
          pc + 1
    | Instr.Dneg ->
        fun fr ->
          push fr (Value.Double (-.as_double (pop fr)));
          pc + 1
    | Instr.Bnot ->
        fun fr ->
          push fr (Value.Bool (not (as_bool (pop fr))));
          pc + 1
    | Instr.I2d ->
        fun fr ->
          push fr (Value.Double (as_double (pop fr)));
          pc + 1
    | Instr.D2i ->
        fun fr ->
          push fr (Value.Int (Value.wrap32 (int_of_float (as_double (pop fr)))));
          pc + 1
    | Instr.Checkcast ty ->
        fun fr ->
          (let v = pop fr in
           match (ty, v) with
           | TClass target, Value.Ref r ->
               let dyn = Heap.object_class heap r in
               if
                 Mj.Symtab.is_subclass t.image.Compile.im_tab ~sub:dyn
                   ~super:target
               then push fr v
               else fail "class cast exception: %s is not a %s" dyn target
           | _, v -> push fr v);
          pc + 1
    | Instr.Jump target -> fun _fr -> target
    | Instr.Jump_if_false target ->
        fun fr -> if as_bool (pop fr) then pc + 1 else target
    | Instr.Invoke_virtual (mname, argc) ->
        fun fr ->
          Cost.call cost;
          let args = pop_n fr argc in
          let recv = pop fr in
          push fr (invoke_virtual t recv mname args);
          pc + 1
    | Instr.Invoke_static (cls, mname, argc) ->
        fun fr ->
          Cost.call cost;
          let args = pop_n fr argc in
          push fr (invoke_static t cls mname args);
          pc + 1
    | Instr.Invoke_special (cls, mname, argc) ->
        fun fr ->
          Cost.call cost;
          let args = pop_n fr argc in
          let recv = pop fr in
          push fr (invoke_from_class t recv cls mname args);
          pc + 1
    | Instr.Invoke_ctor (cls, argc) ->
        fun fr ->
          Cost.call cost;
          let args = pop_n fr argc in
          let recv = pop fr in
          run_ctor t cls recv args;
          pc + 1
    | Instr.Ret -> fun _fr -> raise (Jit_return Value.Null)
    | Instr.Ret_val ->
        let ret = mc.Instr.mc_ret in
        fun fr -> raise (Jit_return (Machine.coerce ret (pop fr)))
    | Instr.Pop ->
        fun fr ->
          ignore (pop fr);
          pc + 1
    | Instr.Dup ->
        fun fr ->
          let v = pop fr in
          push fr v;
          push fr v;
          pc + 1
    | Instr.Dup2 ->
        fun fr ->
          let b = pop fr in
          let a = pop fr in
          push fr a;
          push fr b;
          push fr a;
          push fr b;
          pc + 1
    | Instr.Dup_x1 ->
        fun fr ->
          let b = pop fr in
          let a = pop fr in
          push fr b;
          push fr a;
          push fr b;
          pc + 1
    | Instr.Dup_x2 ->
        fun fr ->
          let c = pop fr in
          let b = pop fr in
          let a = pop fr in
          push fr c;
          push fr a;
          push fr b;
          push fr c;
          pc + 1
    | Instr.Coerce ty ->
        fun fr ->
          push fr (Machine.coerce ty (pop fr));
          pc + 1
    | Instr.Yield_point ->
        fun _fr ->
          Threads.maybe_yield ();
          pc + 1
  in
  { c_label = mc.Instr.mc_class ^ "." ^ mc.Instr.mc_name;
    c_nlocals = mc.Instr.mc_nlocals; c_params = mc.Instr.mc_params;
    c_takes_this = takes_this;
    c_steps = Array.mapi translate_instr mc.Instr.mc_code;
    c_locs = Instr.expand_lines mc }

and alloc_multi t elem dims =
  let heap = t.m.Machine.heap in
  Cost.alloc t.m.Machine.cost ~words:(match dims with d :: _ -> d | [] -> 0);
  match dims with
  | [] -> fail "jit: array without dimensions"
  | [ n ] -> Heap.alloc_array heap ~elem n
  | n :: rest ->
      let sub_ty = List.fold_left (fun ty _ -> TArray ty) elem rest in
      let arr = Heap.alloc_array heap ~elem:sub_ty n in
      let r = Heap.deref heap arr in
      for i = 0 to n - 1 do
        Heap.array_set heap r i (alloc_multi t elem rest)
      done;
      arr

and run_compiled cost c ~this args =
  let fr =
    { locals = Array.make (max 1 c.c_nlocals) Value.Null;
      stack = Array.make 32 Value.Null; sp = 0 }
  in
  let base =
    match this with
    | Some v ->
        if c.c_nlocals > 0 then fr.locals.(0) <- v;
        1
    | None -> 0
  in
  (try
     List.iteri
       (fun i (arg, ty) -> fr.locals.(base + i) <- Machine.coerce ty arg)
       (List.combine args c.c_params)
   with Invalid_argument _ -> fail "jit: arity mismatch");
  let steps = c.c_steps in
  (* Two dispatch loops, selected once per frame: the line-profiling
     path updates the source position before every step, the default
     path pays nothing. *)
  if Cost.lines_on cost then begin
    let locs = c.c_locs in
    let rec go_ln pc =
      Cost.at_line cost locs.(pc);
      go_ln (steps.(pc) fr)
    in
    try go_ln 0 with Jit_return v -> v
  end
  else
    let rec go pc = go (steps.(pc) fr) in
    try go 0 with Jit_return v -> v

and lookup_compiled t cls mname =
  match Hashtbl.find_opt t.methods (cls, mname) with
  | Some c -> Some c
  | None -> (
      match Compile.find_method t.image cls mname with
      | Some (defining, mc) ->
          let c = translate t mc ~takes_this:true in
          Hashtbl.replace t.methods (defining, mname) c;
          Hashtbl.replace t.methods (cls, mname) c;
          Some c
      | None -> None)

and invoke_virtual t recv mname args =
  let r = Heap.deref t.m.Machine.heap recv in
  let dyn = Heap.object_class t.m.Machine.heap r in
  invoke_from_class t recv dyn mname args

and bracketed t label f =
  Machine.enter_frame t.m;
  Cost.enter_method t.m.Machine.cost label;
  Fun.protect
    ~finally:(fun () ->
      Cost.leave_method t.m.Machine.cost;
      Machine.leave_frame t.m)
    f

and invoke_from_class t recv cls mname args =
  match lookup_compiled t cls mname with
  | Some c ->
      bracketed t c.c_label (fun () -> run_compiled t.m.Machine.cost c ~this:(Some recv) args)
  | None -> (
      match Mj.Symtab.lookup_method t.image.Compile.im_tab cls mname with
      | Some (defining, m) when m.m_mods.is_native ->
          Machine.native_call t.m ~defining ~mname recv args
      | Some (defining, _) -> fail "jit: method %s.%s has no code" defining mname
      | None -> fail "jit: no method %s on %s" mname cls)

and invoke_static t cls mname args =
  match lookup_compiled t cls mname with
  | Some c -> bracketed t c.c_label (fun () -> run_compiled t.m.Machine.cost c ~this:None args)
  | None -> (
      match Mj.Symtab.lookup_method t.image.Compile.im_tab cls mname with
      | Some (defining, m) when m.m_mods.is_native ->
          Machine.native_call t.m ~defining ~mname Value.Null args
      | Some _ | None -> fail "jit: no static method %s.%s" cls mname)

and run_ctor t cls recv args =
  let arity = List.length args in
  let c =
    match Hashtbl.find_opt t.ctors (cls, arity) with
    | Some c -> c
    | None -> (
        match Hashtbl.find_opt t.image.Compile.im_ctors (cls, arity) with
        | Some mc ->
            let c = translate t mc ~takes_this:true in
            Hashtbl.replace t.ctors (cls, arity) c;
            c
        | None -> fail "jit: no constructor %s/%d" cls arity)
  in
  ignore (bracketed t c.c_label (fun () -> run_compiled t.m.Machine.cost c ~this:(Some recv) args))

and construct t cls args =
  let tab = t.image.Compile.im_tab in
  let fields = Mj.Symtab.instance_fields tab cls in
  let defaults =
    List.map (fun (_, f) -> (f.f_name, Value.default f.f_ty)) fields
  in
  Cost.alloc t.m.Machine.cost ~words:(Heap.words_of_object (List.length defaults));
  let obj = Heap.alloc_object t.m.Machine.heap ~cls ~fields:defaults in
  run_ctor t cls obj args;
  obj

let call t recv mname args = invoke_virtual t recv mname args

let call_static t cls mname args = invoke_static t cls mname args

let new_instance t cls args = construct t cls args

let run_main t cls = ignore (call_static t cls "main" [])

let of_image ?(tariff = Cost.jit_tariff) ?sink ?lines image =
  let m = Machine.create ~tariff ?sink ?lines image.Compile.im_tab in
  let t = { image; m; methods = Hashtbl.create 64; ctors = Hashtbl.create 16 } in
  m.Machine.invoke_run <- (fun recv -> ignore (invoke_virtual t recv "run" []));
  let static_init = translate t image.Compile.im_static_init ~takes_this:false in
  ignore (bracketed t static_init.c_label (fun () -> run_compiled t.m.Machine.cost static_init ~this:None []));
  t

let create ?tariff ?sink ?lines ?elide checked =
  of_image ?tariff ?sink ?lines (Compile.compile ?elide checked)
