module Value = Mj_runtime.Value
module Heap = Mj_runtime.Heap
module Cost = Mj_runtime.Cost
module Machine = Mj_runtime.Machine
module Threads = Mj_runtime.Threads
open Mj.Ast

type t = { image : Compile.image; m : Machine.t }

let fail = Machine.fail

let machine t = t.m

let image t = t.image

let cycles t = Cost.cycles t.m.Machine.cost

let reset_cycles t = Cost.reset t.m.Machine.cost

let output t = Buffer.contents t.m.Machine.console

let clear_output t = Buffer.clear t.m.Machine.console

let as_int = Machine.as_int

let as_bool = Machine.as_bool

let as_double = Machine.as_double

let int_op op x y =
  let w = Value.wrap32 in
  match op with
  | Add -> Value.Int (w (x + y))
  | Sub -> Value.Int (w (x - y))
  | Mul -> Value.Int (w (x * y))
  | Div -> if y = 0 then fail "division by zero" else Value.Int (w (x / y))
  | Mod -> if y = 0 then fail "division by zero" else Value.Int (w (x mod y))
  | Band -> Value.Int (x land y)
  | Bor -> Value.Int (x lor y)
  | Bxor -> Value.Int (x lxor y)
  | Shl -> Value.Int (w (x lsl (y land 31)))
  | Shr -> Value.Int (x asr (y land 31))
  | Lt -> Value.Bool (x < y)
  | Gt -> Value.Bool (x > y)
  | Le -> Value.Bool (x <= y)
  | Ge -> Value.Bool (x >= y)
  | Eq -> Value.Bool (x = y)
  | Neq -> Value.Bool (x <> y)
  | And | Or -> fail "vm: boolean operator compiled as int op"

let double_op op x y =
  match op with
  | Add -> Value.Double (x +. y)
  | Sub -> Value.Double (x -. y)
  | Mul -> Value.Double (x *. y)
  | Div -> Value.Double (x /. y)
  | Lt -> Value.Bool (x < y)
  | Gt -> Value.Bool (x > y)
  | Le -> Value.Bool (x <= y)
  | Ge -> Value.Bool (x >= y)
  | Eq -> Value.Bool (Float.equal x y)
  | Neq -> Value.Bool (not (Float.equal x y))
  | Mod | Band | Bor | Bxor | Shl | Shr | And | Or ->
      fail "vm: operator not defined on doubles"

(* A frame: locals array plus a growable operand stack. *)
type frame = {
  locals : Value.t array;
  mutable stack : Value.t array;
  mutable sp : int;
}

let push fr v =
  if fr.sp >= Array.length fr.stack then begin
    let bigger = Array.make (2 * Array.length fr.stack) Value.Null in
    Array.blit fr.stack 0 bigger 0 fr.sp;
    fr.stack <- bigger
  end;
  fr.stack.(fr.sp) <- v;
  fr.sp <- fr.sp + 1

let pop fr =
  if fr.sp = 0 then fail "vm: operand stack underflow";
  fr.sp <- fr.sp - 1;
  fr.stack.(fr.sp)

let pop_n fr n =
  let values = Array.make n Value.Null in
  for i = n - 1 downto 0 do
    values.(i) <- pop fr
  done;
  Array.to_list values

let rec exec t (mc : Instr.method_code) ~this args =
  Machine.enter_frame t.m;
  Cost.enter_method_in t.m.Machine.cost mc.Instr.mc_class mc.Instr.mc_name;
  Fun.protect
    ~finally:(fun () ->
      Cost.leave_method t.m.Machine.cost;
      Machine.leave_frame t.m)
  @@ fun () ->
  let fr =
    { locals = Array.make (max 1 mc.Instr.mc_nlocals) Value.Null;
      stack = Array.make 32 Value.Null; sp = 0 }
  in
  let base =
    match this with
    | Some v ->
        if mc.Instr.mc_nlocals > 0 then fr.locals.(0) <- v;
        1
    | None -> 0
  in
  (try
     List.iteri
       (fun i (arg, ty) -> fr.locals.(base + i) <- Machine.coerce ty arg)
       (List.combine args mc.Instr.mc_params)
   with Invalid_argument _ ->
     fail "vm: arity mismatch calling %s.%s" mc.Instr.mc_class mc.Instr.mc_name);
  let code = mc.Instr.mc_code in
  let cost = t.m.Machine.cost in
  let heap = t.m.Machine.heap in
  (* Checked once per frame: the disabled path pays nothing per step. *)
  let lines_on = Cost.lines_on cost in
  let rec step pc =
    if lines_on then Cost.at_line cost (Instr.line_at mc pc);
    Cost.dispatch cost;
    match code.(pc) with
    | Instr.Const v ->
        push fr v;
        step (pc + 1)
    | Instr.Load n ->
        Cost.load_store cost;
        push fr fr.locals.(n);
        step (pc + 1)
    | Instr.Store n ->
        Cost.load_store cost;
        fr.locals.(n) <- pop fr;
        step (pc + 1)
    | Instr.Get_field fname ->
        Cost.field cost;
        let r = Heap.deref heap (pop fr) in
        push fr (Heap.get_field heap r fname);
        step (pc + 1)
    | Instr.Put_field fname ->
        Cost.field cost;
        let v = pop fr in
        let r = Heap.deref heap (pop fr) in
        Heap.set_field heap r fname v;
        push fr v;
        step (pc + 1)
    | Instr.Get_static (cls, fname) ->
        Cost.field cost;
        if Threads.active () then
          Threads.note (Printf.sprintf "read %s.%s" cls fname);
        push fr (Machine.static_get t.m cls fname);
        step (pc + 1)
    | Instr.Put_static (cls, fname) ->
        Cost.field cost;
        let v = pop fr in
        if Threads.active () then
          Threads.note
            (Printf.sprintf "write %s.%s = %s" cls fname (Value.to_display v));
        Machine.static_set t.m cls fname v;
        push fr v;
        step (pc + 1)
    | Instr.Array_load ->
        Cost.array cost;
        let i = as_int (pop fr) in
        let r = Heap.deref heap (pop fr) in
        push fr (Heap.array_get heap r i);
        step (pc + 1)
    | Instr.Array_store ->
        Cost.array cost;
        let v = pop fr in
        let i = as_int (pop fr) in
        let r = Heap.deref heap (pop fr) in
        let v =
          match Heap.get heap r with
          | Heap.Arr { elem; _ } -> Machine.coerce elem v
          | Heap.Object _ -> v
        in
        Heap.array_set heap r i v;
        push fr v;
        step (pc + 1)
    | Instr.Aload_u ->
        Cost.array_unchecked cost;
        let i = as_int (pop fr) in
        let r = Heap.deref heap (pop fr) in
        push fr (Heap.array_get_unchecked heap r i);
        step (pc + 1)
    | Instr.Astore_u ->
        Cost.array_unchecked cost;
        let v = pop fr in
        let i = as_int (pop fr) in
        let r = Heap.deref heap (pop fr) in
        let v =
          match Heap.get heap r with
          | Heap.Arr { elem; _ } -> Machine.coerce elem v
          | Heap.Object _ -> v
        in
        Heap.array_set_unchecked heap r i v;
        push fr v;
        step (pc + 1)
    | Instr.Array_len ->
        Cost.field cost;
        let r = Heap.deref heap (pop fr) in
        push fr (Value.Int (Heap.array_length heap r));
        step (pc + 1)
    | Instr.New_object (cls, argc) ->
        let args = pop_n fr argc in
        push fr (construct t cls args);
        step (pc + 1)
    | Instr.New_array elem ->
        let n = as_int (pop fr) in
        Cost.alloc cost ~words:n;
        push fr (Heap.alloc_array heap ~elem n);
        step (pc + 1)
    | Instr.New_multi (elem, ndims) ->
        let dims = List.map as_int (pop_n fr ndims) in
        push fr (alloc_multi t elem dims);
        step (pc + 1)
    | Instr.Iop op ->
        Cost.arith cost;
        let y = as_int (pop fr) in
        let x = as_int (pop fr) in
        push fr (int_op op x y);
        step (pc + 1)
    | Instr.Dop op ->
        Cost.arith cost;
        let y = as_double (pop fr) in
        let x = as_double (pop fr) in
        push fr (double_op op x y);
        step (pc + 1)
    | Instr.Veq positive ->
        Cost.arith cost;
        let y = pop fr in
        let x = pop fr in
        let same = Value.equal x y in
        push fr (Value.Bool (if positive then same else not same));
        step (pc + 1)
    | Instr.Sconcat ->
        Cost.arith cost;
        let y = pop fr in
        let x = pop fr in
        push fr (Value.Str (Value.to_display x ^ Value.to_display y));
        step (pc + 1)
    | Instr.Ineg ->
        Cost.arith cost;
        push fr (Value.Int (Value.wrap32 (-as_int (pop fr))));
        step (pc + 1)
    | Instr.Dneg ->
        Cost.arith cost;
        push fr (Value.Double (-.as_double (pop fr)));
        step (pc + 1)
    | Instr.Bnot ->
        Cost.arith cost;
        push fr (Value.Bool (not (as_bool (pop fr))));
        step (pc + 1)
    | Instr.I2d ->
        Cost.arith cost;
        push fr (Value.Double (as_double (pop fr)));
        step (pc + 1)
    | Instr.D2i ->
        Cost.arith cost;
        push fr (Value.Int (Value.wrap32 (int_of_float (as_double (pop fr)))));
        step (pc + 1)
    | Instr.Checkcast ty ->
        (let v = pop fr in
         match (ty, v) with
         | TClass target, Value.Ref r ->
             let dyn = Heap.object_class heap r in
             if Mj.Symtab.is_subclass t.image.Compile.im_tab ~sub:dyn ~super:target
             then push fr v
             else fail "class cast exception: %s is not a %s" dyn target
         | _, v -> push fr v);
        step (pc + 1)
    | Instr.Jump target -> step target
    | Instr.Jump_if_false target ->
        if as_bool (pop fr) then step (pc + 1) else step target
    | Instr.Invoke_virtual (mname, argc) ->
        Cost.call cost;
        let args = pop_n fr argc in
        let recv = pop fr in
        push fr (invoke_virtual t recv mname args);
        step (pc + 1)
    | Instr.Invoke_static (cls, mname, argc) ->
        Cost.call cost;
        let args = pop_n fr argc in
        push fr (invoke_static t cls mname args);
        step (pc + 1)
    | Instr.Invoke_special (cls, mname, argc) ->
        Cost.call cost;
        let args = pop_n fr argc in
        let recv = pop fr in
        push fr (invoke_from_class t recv cls mname args);
        step (pc + 1)
    | Instr.Invoke_ctor (cls, argc) ->
        Cost.call cost;
        let args = pop_n fr argc in
        let recv = pop fr in
        run_ctor t cls recv args;
        step (pc + 1)
    | Instr.Ret -> Value.Null
    | Instr.Ret_val -> Machine.coerce mc.Instr.mc_ret (pop fr)
    | Instr.Pop ->
        ignore (pop fr);
        step (pc + 1)
    | Instr.Dup ->
        let v = pop fr in
        push fr v;
        push fr v;
        step (pc + 1)
    | Instr.Dup2 ->
        let b = pop fr in
        let a = pop fr in
        push fr a;
        push fr b;
        push fr a;
        push fr b;
        step (pc + 1)
    | Instr.Dup_x1 ->
        let b = pop fr in
        let a = pop fr in
        push fr b;
        push fr a;
        push fr b;
        step (pc + 1)
    | Instr.Dup_x2 ->
        let c = pop fr in
        let b = pop fr in
        let a = pop fr in
        push fr c;
        push fr a;
        push fr b;
        push fr c;
        step (pc + 1)
    | Instr.Coerce ty ->
        push fr (Machine.coerce ty (pop fr));
        step (pc + 1)
    | Instr.Yield_point ->
        Threads.maybe_yield ();
        step (pc + 1)
  in
  step 0

and alloc_multi t elem dims =
  let heap = t.m.Machine.heap in
  Cost.alloc t.m.Machine.cost ~words:(match dims with d :: _ -> d | [] -> 0);
  match dims with
  | [] -> fail "vm: array without dimensions"
  | [ n ] -> Heap.alloc_array heap ~elem n
  | n :: rest ->
      let sub_ty = List.fold_left (fun ty _ -> TArray ty) elem rest in
      let arr = Heap.alloc_array heap ~elem:sub_ty n in
      let r = Heap.deref heap arr in
      for i = 0 to n - 1 do
        Heap.array_set heap r i (alloc_multi t elem rest)
      done;
      arr

and invoke_virtual t recv mname args =
  let r = Heap.deref t.m.Machine.heap recv in
  let dyn = Heap.object_class t.m.Machine.heap r in
  invoke_from_class t recv dyn mname args

and invoke_from_class t recv cls mname args =
  match Compile.find_method t.image cls mname with
  | Some (_, mc) -> exec t mc ~this:(Some recv) args
  | None -> (
      match Mj.Symtab.lookup_method t.image.Compile.im_tab cls mname with
      | Some (defining, m) when m.m_mods.is_native ->
          Machine.native_call t.m ~defining ~mname recv args
      | Some (defining, _) -> fail "vm: method %s.%s has no code" defining mname
      | None -> fail "vm: no method %s on %s" mname cls)

and invoke_static t cls mname args =
  match Compile.find_method t.image cls mname with
  | Some (_, mc) -> exec t mc ~this:None args
  | None -> (
      match Mj.Symtab.lookup_method t.image.Compile.im_tab cls mname with
      | Some (defining, m) when m.m_mods.is_native ->
          Machine.native_call t.m ~defining ~mname Value.Null args
      | Some _ | None -> fail "vm: no static method %s.%s" cls mname)

and run_ctor t cls recv args =
  match Hashtbl.find_opt t.image.Compile.im_ctors (cls, List.length args) with
  | Some mc -> ignore (exec t mc ~this:(Some recv) args)
  | None -> fail "vm: no constructor %s/%d" cls (List.length args)

and construct t cls args =
  let tab = t.image.Compile.im_tab in
  let fields = Mj.Symtab.instance_fields tab cls in
  let defaults =
    List.map (fun (_, f) -> (f.f_name, Value.default f.f_ty)) fields
  in
  Cost.alloc t.m.Machine.cost ~words:(Heap.words_of_object (List.length defaults));
  let obj = Heap.alloc_object t.m.Machine.heap ~cls ~fields:defaults in
  run_ctor t cls obj args;
  obj

let call t recv mname args = invoke_virtual t recv mname args

let call_static t cls mname args = invoke_static t cls mname args

let new_instance t cls args = construct t cls args

let run_main t cls = ignore (call_static t cls "main" [])

let of_image ?tariff ?sink ?lines image =
  let m =
    match tariff with
    | Some tariff -> Machine.create ~tariff ?sink ?lines image.Compile.im_tab
    | None -> Machine.create ?sink ?lines image.Compile.im_tab
  in
  let t = { image; m } in
  m.Machine.invoke_run <- (fun recv -> ignore (invoke_virtual t recv "run" []));
  ignore (exec t image.Compile.im_static_init ~this:None []);
  t

let create ?tariff ?sink ?lines ?elide checked =
  of_image ?tariff ?sink ?lines (Compile.compile ?elide checked)
