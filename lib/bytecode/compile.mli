(** Compiler from checked MJ ASTs to stack bytecode.

    Produces an {!Image.t}-shaped record: one {!Instr.method_code} per
    method body and constructor (constructors embed the super-constructor
    call and the instance field initializers), plus one synthetic method
    holding all static field initializers. *)

type image = {
  im_tab : Mj.Symtab.t;
  im_methods : (string * string, Instr.method_code) Hashtbl.t;
      (** keyed by (class, method); only methods with bodies *)
  im_ctors : (string * int, Instr.method_code) Hashtbl.t;
      (** keyed by (class, arity); every class has at least arity 0 *)
  im_static_init : Instr.method_code;
}

val compile :
  ?elide:(Mj.Loc.t, unit) Hashtbl.t -> Mj.Typecheck.checked -> image
(** Compile every class (builtins included). [elide] is the set of
    array-access sites — keyed by the source span of the index
    subexpression — whose bounds checks were statically proven
    redundant; those sites compile to [Aload_u]/[Astore_u]. Defaults to
    empty (all accesses checked). *)

val find_method : image -> string -> string -> (string * Instr.method_code) option
(** Resolve a method by dynamic dispatch from a class upward; returns the
    defining class. [None] means the method is native (or absent). *)

val sorted_methods : image -> Instr.method_code list
(** All compiled method bodies ordered by (class, method) name — a
    deterministic view of [im_methods] for listings and disassembly
    ([Hashtbl] iteration order is seeded per run). *)
