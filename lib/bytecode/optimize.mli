(** Peephole optimizer over MJ bytecode.

    Rewrites that preserve observable behaviour exactly (the test suite
    checks this by differential execution):

    - constant folding of integer/double/boolean operations whose
      operands are literals (division/modulo by a constant zero is left
      in place so the runtime error survives);
    - [Dup; Store n; Pop] → [Store n] (expression-statement assignments);
    - branch simplification for constant conditions;
    - jump-chain threading (a jump to an unconditional jump retargets);
    - collapsing of consecutive {!Instr.Yield_point}s (a single
      preemption point per statement boundary suffices).

    Jump targets — and line-table entry pcs — are remapped after
    deletions, so source attribution survives optimization. *)

val method_code : Instr.method_code -> Instr.method_code

val image : Compile.image -> Compile.image
(** Optimize every method, constructor, and the static initializer. *)

val shrinkage : Compile.image -> int * int
(** (instructions before, instructions after) for reporting. *)
