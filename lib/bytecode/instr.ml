module Value = Mj_runtime.Value

type t =
  | Const of Value.t
  | Load of int
  | Store of int
  | Get_field of string
  | Put_field of string
  | Get_static of string * string
  | Put_static of string * string
  | Array_load
  | Array_store
  | Array_len
  (* Unchecked variants: the elision planner proved the index in range,
     so the bounds check (and its cycle cost) is dropped. *)
  | Aload_u
  | Astore_u
  | New_object of string * int
  | New_array of Mj.Ast.ty
  | New_multi of Mj.Ast.ty * int
  | Iop of Mj.Ast.binop
  | Dop of Mj.Ast.binop
  | Veq of bool
  | Sconcat
  | Ineg
  | Dneg
  | Bnot
  | I2d
  | D2i
  | Checkcast of Mj.Ast.ty
  | Jump of int
  | Jump_if_false of int
  | Invoke_virtual of string * int
  | Invoke_static of string * string * int
  | Invoke_special of string * string * int
  | Invoke_ctor of string * int
  | Ret
  | Ret_val
  | Pop
  | Dup
  | Dup2
  | Dup_x1
  | Dup_x2
  | Coerce of Mj.Ast.ty
  | Yield_point

type method_code = {
  mc_class : string;
  mc_name : string;
  mc_params : Mj.Ast.ty list;
  mc_ret : Mj.Ast.ty;
  mc_nlocals : int;
  mc_code : t array;
  mc_lines : (int * Mj.Loc.t) array;
}

(* Binary search the line table for the entry covering [pc]: the one
   with the greatest start pc ≤ [pc]. *)
let line_at mc pc =
  let tbl = mc.mc_lines in
  let n = Array.length tbl in
  if n = 0 || pc < fst tbl.(0) then Mj.Loc.dummy
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if fst tbl.(mid) <= pc then lo := mid else hi := mid - 1
    done;
    snd tbl.(!lo)
  end

let expand_lines mc =
  Array.init (Array.length mc.mc_code) (fun pc -> line_at mc pc)

let pp ppf instr =
  let p fmt = Format.fprintf ppf fmt in
  match instr with
  | Const v -> p "const %s" (Value.to_display v)
  | Load n -> p "load %d" n
  | Store n -> p "store %d" n
  | Get_field f -> p "getfield %s" f
  | Put_field f -> p "putfield %s" f
  | Get_static (c, f) -> p "getstatic %s.%s" c f
  | Put_static (c, f) -> p "putstatic %s.%s" c f
  | Array_load -> p "aload"
  | Array_store -> p "astore"
  | Array_len -> p "arraylen"
  | Aload_u -> p "aload_u"
  | Astore_u -> p "astore_u"
  | New_object (c, n) -> p "new %s/%d" c n
  | New_array ty -> p "newarray %s" (Mj.Ast.ty_to_string ty)
  | New_multi (ty, n) -> p "multianewarray %s/%d" (Mj.Ast.ty_to_string ty) n
  | Iop op -> p "i%s" (Mj.Ast.binop_to_string op)
  | Dop op -> p "d%s" (Mj.Ast.binop_to_string op)
  | Veq true -> p "veq"
  | Veq false -> p "vneq"
  | Sconcat -> p "sconcat"
  | Ineg -> p "ineg"
  | Dneg -> p "dneg"
  | Bnot -> p "bnot"
  | I2d -> p "i2d"
  | D2i -> p "d2i"
  | Checkcast ty -> p "checkcast %s" (Mj.Ast.ty_to_string ty)
  | Jump n -> p "goto %d" n
  | Jump_if_false n -> p "iffalse %d" n
  | Invoke_virtual (m, n) -> p "invokevirtual %s/%d" m n
  | Invoke_static (c, m, n) -> p "invokestatic %s.%s/%d" c m n
  | Invoke_special (c, m, n) -> p "invokespecial %s.%s/%d" c m n
  | Invoke_ctor (c, n) -> p "invokector %s/%d" c n
  | Ret -> p "return"
  | Ret_val -> p "vreturn"
  | Pop -> p "pop"
  | Dup -> p "dup"
  | Dup2 -> p "dup2"
  | Dup_x1 -> p "dup_x1"
  | Dup_x2 -> p "dup_x2"
  | Coerce ty -> p "coerce %s" (Mj.Ast.ty_to_string ty)
  | Yield_point -> p "yieldpoint"

let pp_method ppf mc =
  Format.fprintf ppf "%s.%s/%d (locals=%d):@." mc.mc_class mc.mc_name
    (List.length mc.mc_params) mc.mc_nlocals;
  Array.iteri
    (fun i instr -> Format.fprintf ppf "  %4d: %a@." i pp instr)
    mc.mc_code
