(** Deterministic per-method cycle profile (flat + cumulative).

    The runtime's [Cost] sink feeds this with [charge]/[enter]/[leave]
    events; because the cost model is deterministic, the result is an
    exact attribution — like [gprof] with a sampling rate of every
    cycle. Invariant: the sum of all [self] cycles (including the
    [<toplevel>] root, which absorbs charges outside any method, e.g.
    static initializers run at load time) equals {!total}, which equals
    [Cost.cycles] when the sink is attached from machine creation.

    Recursion: cumulative time is only accumulated at the outermost
    occurrence of a label on the stack, so a recursive method's [cum]
    is not double-counted. *)

type row = {
  r_label : string;  (** ["Class.method"], or ["<toplevel>"] for the root *)
  mutable r_calls : int;
  mutable r_self : int;  (** cycles charged while this frame was innermost *)
  mutable r_cum : int;  (** cycles in this frame and its callees *)
  mutable r_allocs : int;
  mutable r_alloc_words : int;
  mutable r_gc_cycles : int;  (** portion of [r_self] spent in GC pauses *)
}

type t

val create : ?spans:Registry.t -> unit -> t
(** When [spans] is given, every method entry/exit is additionally
    recorded as a span in that registry with the cycle counter as its
    timestamp — exporting it as a Chrome trace gives a full call tree
    on a cycle timeline. *)

val charge : t -> int -> unit
val enter : t -> string -> unit
val leave : t -> unit
val alloc : t -> words:int -> unit
val gc : t -> cycles:int -> unit

val total : t -> int
(** Total cycles charged; equals the sum of [r_self] over {!rows}. *)

val rows : t -> row list
(** Root first, then methods in first-call order. The root's [r_cum] is
    {!total}. *)

val by_self : t -> row list
(** Sorted by [r_self] descending (ties by label). *)

val by_cum : t -> row list
(** Sorted by [r_cum] descending (ties by label). *)

val depth : t -> int
(** Current stack depth — 0 when every [enter] has been matched, useful
    as a sanity check. *)
