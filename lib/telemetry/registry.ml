type arg = Int of int | Float of float | Str of string | Bool of bool

type counter = { c_name : string; mutable c_value : int }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
}

type span = {
  sp_id : int;
  sp_name : string;
  sp_cat : string;
  sp_depth : int;
  sp_parent : int;
  sp_start : float;
  mutable sp_stop : float;
  mutable sp_closed : bool;
  mutable sp_args : (string * arg) list;
}

type t = {
  mutable enabled : bool;
  clock : unit -> float;
  counters_tbl : (string, counter) Hashtbl.t;
  mutable counters_rev : counter list;
  histograms_tbl : (string, histogram) Hashtbl.t;
  mutable histograms_rev : histogram list;
  mutable spans_rev : span list;
  mutable n_spans : int;
  max_spans : int;
  mutable dropped : int;
  mutable open_stack : span list;
  mutable next_id : int;
}

let tick_clock () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. 1.0;
    !t

let create ?(enabled = true) ?clock ?(max_spans = 1_000_000) () =
  let clock = match clock with Some c -> c | None -> tick_clock () in
  { enabled;
    clock;
    counters_tbl = Hashtbl.create 32;
    counters_rev = [];
    histograms_tbl = Hashtbl.create 16;
    histograms_rev = [];
    spans_rev = [];
    n_spans = 0;
    max_spans;
    dropped = 0;
    open_stack = [];
    next_id = 0 }

let is_enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let sat_add a b = if a > max_int - b then max_int else a + b

let counter t name =
  match Hashtbl.find_opt t.counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace t.counters_tbl name c;
      t.counters_rev <- c :: t.counters_rev;
      c

let add c n = if n > 0 then c.c_value <- sat_add c.c_value n

let count t name n = if t.enabled then add (counter t name) n

let histogram t name =
  match Hashtbl.find_opt t.histograms_tbl name with
  | Some h -> h
  | None ->
      let h =
        { h_name = name;
          h_count = 0;
          h_sum = 0;
          h_min = max_int;
          h_max = min_int;
          h_buckets = Array.make 64 0 }
      in
      Hashtbl.replace t.histograms_tbl name h;
      t.histograms_rev <- h :: t.histograms_rev;
      h

let bucket_of v =
  if v <= 0 then 0
  else
    let rec go v i = if v = 0 then i else go (v lsr 1) (i + 1) in
    min 63 (go v 0)

let observe h v =
  h.h_count <- h.h_count + 1;
  if v > 0 then h.h_sum <- sat_add h.h_sum v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let observe_value t name v = if t.enabled then observe (histogram t name) v

let mean h = if h.h_count = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_count

let enter t ?(cat = "") ?(args = []) ?ts name =
  if t.enabled then begin
    let now = match ts with Some ts -> ts | None -> t.clock () in
    let parent, depth =
      match t.open_stack with
      | [] -> (-1, 0)
      | p :: _ -> (p.sp_id, p.sp_depth + 1)
    in
    let sp =
      { sp_id = t.next_id;
        sp_name = name;
        sp_cat = cat;
        sp_depth = depth;
        sp_parent = parent;
        sp_start = now;
        sp_stop = now;
        sp_closed = false;
        sp_args = args }
    in
    t.next_id <- t.next_id + 1;
    t.open_stack <- sp :: t.open_stack;
    if t.n_spans < t.max_spans then begin
      t.spans_rev <- sp :: t.spans_rev;
      t.n_spans <- t.n_spans + 1
    end
    else t.dropped <- t.dropped + 1
  end

let exit t ?(args = []) ?ts () =
  if t.enabled then
    match t.open_stack with
    | [] -> ()
    | sp :: rest ->
        t.open_stack <- rest;
        sp.sp_stop <- (match ts with Some ts -> ts | None -> t.clock ());
        sp.sp_closed <- true;
        if args <> [] then sp.sp_args <- sp.sp_args @ args

let with_span t ?cat ?args name f =
  if not t.enabled then f ()
  else begin
    enter t ?cat ?args name;
    Fun.protect ~finally:(fun () -> exit t ()) f
  end

let counters t = List.rev t.counters_rev
let histograms t = List.rev t.histograms_rev
let spans t = List.rev t.spans_rev
let dropped_spans t = t.dropped

let export_counters t = List.map (fun c -> (c.c_name, c.c_value)) (counters t)

let import_counters t pairs =
  List.iter (fun (name, v) -> (counter t name).c_value <- v) pairs

let saturated c = c.c_value = max_int

let saturated_counters t =
  List.filter_map
    (fun c -> if saturated c then Some c.c_name else None)
    (List.rev t.counters_rev)

let reset t =
  Hashtbl.reset t.counters_tbl;
  t.counters_rev <- [];
  Hashtbl.reset t.histograms_tbl;
  t.histograms_rev <- [];
  t.spans_rev <- [];
  t.n_spans <- 0;
  t.dropped <- 0;
  t.open_stack <- [];
  t.next_id <- 0
