type t = {
  s_alpha : float;
  s_gamma : float;
  s_log_gamma : float;
  s_max_buckets : int;
  s_buckets : (int, int ref) Hashtbl.t;  (* bucket index -> count cell *)
  mutable s_count : int;  (* recorded values: zeros + positives *)
  mutable s_zeros : int;
  mutable s_out_of_range : int;
  mutable s_collapsed : int;
  mutable s_min : float;  (* nan when empty *)
  mutable s_max : float;
  mutable s_sum : float;
  (* one-bucket memo: per-instant telemetry streams repeat values, and
     [index_of]'s log/pow chain dominates {!add} on an always-on path;
     a hit costs two float compares instead *)
  mutable s_memo_idx : int;
  mutable s_memo_lo : float;  (* gamma^(memo_idx - 1) *)
  mutable s_memo_hi : float;  (* gamma^memo_idx; nan = no memo *)
  mutable s_memo_cell : int ref option;  (* count cell of the memo bucket *)
}

let create ?(alpha = 0.01) ?(max_buckets = 2048) () =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Sketch.create: alpha must be in (0, 1)";
  if max_buckets < 16 then
    invalid_arg "Sketch.create: max_buckets must be >= 16";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  { s_alpha = alpha;
    s_gamma = gamma;
    s_log_gamma = log gamma;
    s_max_buckets = max_buckets;
    s_buckets = Hashtbl.create 64;
    s_count = 0;
    s_zeros = 0;
    s_out_of_range = 0;
    s_collapsed = 0;
    s_min = nan;
    s_max = nan;
    s_sum = 0.0;
    s_memo_idx = 0;
    s_memo_lo = nan;
    s_memo_hi = nan;
    s_memo_cell = None }

let alpha t = t.s_alpha

(* ceil(log_gamma v), corrected against floating error so the bucket
   invariant gamma^(i-1) < v <= gamma^i genuinely holds — the
   relative-error guarantee depends on it, not on log being exact. *)
let index_of t v =
  if v > t.s_memo_lo && v <= t.s_memo_hi then t.s_memo_idx
  else begin
    let i = ref (int_of_float (Float.ceil (log v /. t.s_log_gamma))) in
    while Float.pow t.s_gamma (float_of_int (!i - 1)) >= v do
      decr i
    done;
    while Float.pow t.s_gamma (float_of_int !i) < v do
      incr i
    done;
    t.s_memo_idx <- !i;
    t.s_memo_lo <- Float.pow t.s_gamma (float_of_int (!i - 1));
    t.s_memo_hi <- Float.pow t.s_gamma (float_of_int !i);
    !i
  end

let bucket_value t i = 2.0 *. Float.pow t.s_gamma (float_of_int i) /. (t.s_gamma +. 1.0)

let sorted_indices t =
  Hashtbl.fold (fun i _ acc -> i :: acc) t.s_buckets []
  |> List.sort compare

(* Collapse the lowest buckets into one until the table fits. Standard
   DDSketch degradation: quantiles above the collapse boundary keep the
   guarantee; the boundary itself absorbs everything below. *)
let collapse_if_needed t =
  let n = Hashtbl.length t.s_buckets in
  if n > t.s_max_buckets then begin
    t.s_memo_cell <- None;  (* the memo bucket may be folded away *)
    let excess = n - t.s_max_buckets + 1 in
    let lowest = List.filteri (fun k _ -> k < excess) (sorted_indices t) in
    match List.rev lowest with
    | [] -> ()
    | target :: to_fold ->
        let moved = ref 0 in
        List.iter
          (fun i ->
            (match Hashtbl.find_opt t.s_buckets i with
            | Some c -> moved := !moved + !c
            | None -> ());
            Hashtbl.remove t.s_buckets i)
          to_fold;
        (match Hashtbl.find_opt t.s_buckets target with
        | Some c -> c := !c + !moved
        | None -> Hashtbl.add t.s_buckets target (ref !moved));
        t.s_collapsed <- t.s_collapsed + !moved
  end

let note_minmax t v =
  if Float.is_nan t.s_min || v < t.s_min then t.s_min <- v;
  if Float.is_nan t.s_max || v > t.s_max then t.s_max <- v

let add t v =
  if Float.is_nan v || (not (Float.is_finite v)) || v < 0.0 then
    t.s_out_of_range <- t.s_out_of_range + 1
  else if v = 0.0 then begin
    t.s_zeros <- t.s_zeros + 1;
    t.s_count <- t.s_count + 1;
    note_minmax t 0.0
  end
  else begin
    (match t.s_memo_cell with
    (* fast path: the previous value's bucket — per-instant telemetry
       streams are repetitive, so this is the common case *)
    | Some c when v > t.s_memo_lo && v <= t.s_memo_hi -> incr c
    | _ ->
        let i = index_of t v in
        let c =
          match Hashtbl.find_opt t.s_buckets i with
          | Some c -> c
          | None ->
              let c = ref 0 in
              Hashtbl.add t.s_buckets i c;
              c
        in
        incr c;
        t.s_memo_cell <- Some c);
    t.s_count <- t.s_count + 1;
    t.s_sum <- t.s_sum +. v;
    note_minmax t v;
    collapse_if_needed t
  end

let count t = t.s_count
let zero_count t = t.s_zeros
let out_of_range t = t.s_out_of_range
let collapsed t = t.s_collapsed
let min_value t = t.s_min
let max_value t = t.s_max
let sum t = t.s_sum

let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Sketch.quantile: q must be in [0, 1]";
  if t.s_count = 0 then nan
  else begin
    let rank = int_of_float (Float.floor (q *. float_of_int (t.s_count - 1))) in
    if rank < t.s_zeros then 0.0
    else begin
      let cum = ref t.s_zeros and result = ref nan in
      (try
         List.iter
           (fun i ->
             cum := !cum + !(Hashtbl.find t.s_buckets i);
             if rank < !cum then begin
               result := bucket_value t i;
               raise Exit
             end)
           (sorted_indices t)
       with Exit -> ());
      (* every recorded value is in some bucket, so the walk always
         lands — the max clamp only guards float edge cases *)
      if Float.is_nan !result then t.s_max else !result
    end
  end

let merge ~into src =
  if into.s_alpha <> src.s_alpha then
    invalid_arg "Sketch.merge: sketches have different alpha";
  Hashtbl.iter
    (fun i c ->
      match Hashtbl.find_opt into.s_buckets i with
      | Some b -> b := !b + !c
      | None -> Hashtbl.add into.s_buckets i (ref !c))
    src.s_buckets;
  into.s_count <- into.s_count + src.s_count;
  into.s_zeros <- into.s_zeros + src.s_zeros;
  into.s_out_of_range <- into.s_out_of_range + src.s_out_of_range;
  into.s_collapsed <- into.s_collapsed + src.s_collapsed;
  into.s_sum <- into.s_sum +. src.s_sum;
  if not (Float.is_nan src.s_min) then note_minmax into src.s_min;
  if not (Float.is_nan src.s_max) then note_minmax into src.s_max;
  collapse_if_needed into

let copy t =
  let buckets = Hashtbl.create 64 in
  Hashtbl.iter (fun i c -> Hashtbl.replace buckets i (ref !c)) t.s_buckets;
  { t with s_buckets = buckets; s_memo_cell = None }

let buckets t =
  List.map (fun i -> (i, !(Hashtbl.find t.s_buckets i))) (sorted_indices t)

let float_eq a b = (Float.is_nan a && Float.is_nan b) || a = b

let equal a b =
  a.s_alpha = b.s_alpha && a.s_count = b.s_count && a.s_zeros = b.s_zeros
  && a.s_out_of_range = b.s_out_of_range
  && a.s_collapsed = b.s_collapsed
  && float_eq a.s_min b.s_min && float_eq a.s_max b.s_max
  && buckets a = buckets b

let clear t =
  Hashtbl.reset t.s_buckets;
  t.s_memo_cell <- None;
  t.s_count <- 0;
  t.s_zeros <- 0;
  t.s_out_of_range <- 0;
  t.s_collapsed <- 0;
  t.s_min <- nan;
  t.s_max <- nan;
  t.s_sum <- 0.0

let to_json t =
  Json.Obj
    [ ("alpha", Json.Float t.s_alpha);
      ("count", Json.Int t.s_count);
      ("zeros", Json.Int t.s_zeros);
      ("out_of_range", Json.Int t.s_out_of_range);
      ("collapsed", Json.Int t.s_collapsed);
      ("min", Json.Float t.s_min);
      ("max", Json.Float t.s_max);
      ("sum", Json.Float t.s_sum);
      ("p50", Json.Float (quantile t 0.5));
      ("p95", Json.Float (quantile t 0.95));
      ("p99", Json.Float (quantile t 0.99)) ]
