type entry = {
  e_file : string;
  e_line : int;
  e_cycles : int;
  e_allocs : int;
  e_alloc_words : int;
  e_traps : int;
}

type row = {
  mutable l_cycles : int;
  mutable l_allocs : int;
  mutable l_alloc_words : int;
  mutable l_traps : int;
}

type t = {
  tbl : (string * int, row) Hashtbl.t;
  mutable total : int;
  (* Current position; [cur] is the row for [(cur_file, cur_line)],
     cached so the per-instruction [set] pays a hashtable lookup only
     when the position actually changes. *)
  mutable cur_file : string;
  mutable cur_line : int;
  mutable cur : row;
  (* Saved positions across method calls (see [enter]/[leave]). *)
  mutable stack : (string * int * row) list;
}

let fresh_row () = { l_cycles = 0; l_allocs = 0; l_alloc_words = 0; l_traps = 0 }

let create () =
  let tbl = Hashtbl.create 64 in
  let unattributed = fresh_row () in
  Hashtbl.add tbl ("", 0) unattributed;
  { tbl; total = 0; cur_file = ""; cur_line = 0; cur = unattributed; stack = [] }

let lookup t file line =
  let key = (file, line) in
  match Hashtbl.find_opt t.tbl key with
  | Some r -> r
  | None ->
      let r = fresh_row () in
      Hashtbl.add t.tbl key r;
      r

let set t ~file ~line =
  if line <> t.cur_line || not (String.equal file t.cur_file) then begin
    t.cur_file <- file;
    t.cur_line <- line;
    t.cur <- lookup t file line
  end

let charge t n =
  t.total <- t.total + n;
  t.cur.l_cycles <- t.cur.l_cycles + n

let alloc t ~words =
  t.cur.l_allocs <- t.cur.l_allocs + 1;
  t.cur.l_alloc_words <- t.cur.l_alloc_words + words

let trap t = t.cur.l_traps <- t.cur.l_traps + 1

let enter t = t.stack <- (t.cur_file, t.cur_line, t.cur) :: t.stack

let leave t =
  match t.stack with
  | [] -> ()
  | (file, line, row) :: rest ->
      t.stack <- rest;
      t.cur_file <- file;
      t.cur_line <- line;
      t.cur <- row

let total t = t.total

let live ((file, line), r) =
  if r.l_cycles = 0 && r.l_allocs = 0 && r.l_traps = 0 then None
  else
    Some
      { e_file = file; e_line = line; e_cycles = r.l_cycles;
        e_allocs = r.l_allocs; e_alloc_words = r.l_alloc_words;
        e_traps = r.l_traps }

let rows t =
  Hashtbl.fold (fun k r acc -> (k, r) :: acc) t.tbl []
  |> List.filter_map live
  |> List.sort (fun a b ->
         match String.compare a.e_file b.e_file with
         | 0 -> compare a.e_line b.e_line
         | c -> c)

let by_cycles t =
  rows t
  |> List.sort (fun a b ->
         match compare b.e_cycles a.e_cycles with
         | 0 -> (
             match String.compare a.e_file b.e_file with
             | 0 -> compare a.e_line b.e_line
             | c -> c)
         | c -> c)
