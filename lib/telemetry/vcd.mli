(** Value Change Dump (IEEE 1364 §18) writer.

    Generic over signal kinds so the ASR layer can map its domain values
    onto wires, reals, and string variables; the output opens in GTKWave
    and other standard waveform viewers. Timestamps are instants
    (0, 1, 2, …) scaled by [timescale]. *)

type value =
  | Bits of string  (** binary digits, or ["x"] for undefined *)
  | Real of float
  | Str of string

type kind =
  | Wire of int  (** bit width *)
  | Real_kind
  | String_kind

type signal = { name : string; kind : kind }

val id_code : int -> string
(** The identifier code assigned to the [i]-th signal (printable ASCII
    per the VCD grammar). Exposed for golden tests. *)

val dump :
  ?timescale:string -> ?scope:string -> (signal * value list) list -> string
(** [dump signals] renders a complete VCD document: header, one [$var]
    per signal, initial values under [$dumpvars] at [#0], then
    change-only emission at each subsequent instant. All value lists
    should have equal length; shorter ones read as undefined at the
    missing instants. Defaults: [timescale = "1 us"], [scope = "asr"]. *)
