type health = {
  h_block : string;
  h_faults : int;
  h_recovered : int;
  h_streak : int;
  h_max_streak : int;
  h_last_fault_instant : int;
  h_quarantined : bool;
}

(* Mutable per-block state behind the exported snapshot type. *)
type block_state = {
  b_name : string;
  mutable b_faults : int;
  mutable b_recovered : int;
  mutable b_streak : int;
  mutable b_max_streak : int;
  mutable b_last_fault_instant : int;
  mutable b_quarantined : bool;
  mutable b_faulted_now : bool;  (* >= 1 fault in the open instant *)
}

(* Field order is deliberate: everything the per-instant path touches
   (clock, counters, ring, pending buffer) sits first so it packs onto
   adjacent cache lines — on an always-on monitor the simulation's own
   working set evicts the monitor between instants, and scattering the
   hot fields across the record costs a miss per line. *)
type t = {
  (* [None] is the default deterministic tick clock — every instant's
     latency is exactly 1.0, so the per-instant path skips the closure
     calls and the timestamp store entirely *)
  m_clock : (unit -> float) option;
  m_cycles_source : (unit -> int) option;
  (* one-slot float array rather than a mutable float field: in a mixed
     record every float store boxes, and this one happens per instant *)
  m_begin_ts : float array;
  mutable m_in_instant : bool;
  mutable m_instants : int;
  mutable m_cum_evals : int;
  mutable m_cum_iterations : int;
  mutable m_cum_churn : int;
  mutable m_cum_faults : int;
  mutable m_cum_cycles : int;
  m_recorder : Recorder.t;
  (* Pending per-instant samples not yet committed to the sketches and
     windows. Committing touches every summary structure — a dozen
     cache lines — so the per-instant path only appends here and the
     commit runs once per [batch] instants (and before any query, so
     batching is invisible to every observer). Samples are interleaved
     [latency; cycles; evals; churn] per instant: one cache line per
     append instead of four. The flight ring and the cumulative
     counters are NOT batched: dumps and reconciliation stay exact to
     the instant. *)
  m_pend : float array;
  mutable m_pending : int;
  mutable m_nblocks : int;  (* Hashtbl.length m_blocks, on the hot line *)
  m_blocks : (string, block_state) Hashtbl.t;
  m_snapshot_every : int;
  mutable m_snapshots : int;
  m_snapshot_sink : (string -> unit) option;
  m_spike_factor : float;
  m_spike_warmup : int;
  m_dump_sink : (Json.t -> unit) option;
  m_churn_every : int;
  m_latency : Sketch.t;
  m_cycles : Sketch.t;
  m_evals : Sketch.t;
  m_lat_win : Window.t;
  m_evals_win : Window.t;
  m_churn_win : Window.t;
  mutable m_spikes : int;
  mutable m_last_dump : Json.t option;
  (* (overwrites, truncated_slices) of an attached causal event ring;
     installed by the simulator so ring loss rides along in data_loss *)
  mutable m_causal_source : (unit -> int * int) option;
  (* durable-checkpoint write accounting; failures surface in
     [data_loss_json] — a failed write is lost recovery data *)
  mutable m_ckpt_writes : int;
  mutable m_ckpt_bytes : int;
  mutable m_ckpt_failures : int;
  m_ckpt_seconds : float array;  (* one slot, same boxing dodge as above *)
}

let batch = 32

let create ?(alpha = 0.01) ?(recorder_capacity = 256) ?(window = 64)
    ?(ewma_alpha = 0.1) ?(spike_factor = 4.0) ?(spike_warmup = 8)
    ?(snapshot_every = 0) ?snapshot_sink ?dump_sink ?clock ?cycles_source
    ?(churn_every = 256) () =
  if spike_factor <= 1.0 then
    invalid_arg "Monitor.create: spike_factor must be > 1";
  if snapshot_every < 0 then
    invalid_arg "Monitor.create: snapshot_every must be >= 0";
  if churn_every < 0 then
    invalid_arg "Monitor.create: churn_every must be >= 0";
  { m_clock = clock;
    m_cycles_source = cycles_source;
    m_begin_ts = Array.make 1 0.0;
    m_in_instant = false;
    m_instants = 0;
    m_cum_evals = 0;
    m_cum_iterations = 0;
    m_cum_churn = 0;
    m_cum_faults = 0;
    m_cum_cycles = 0;
    m_recorder = Recorder.create ~capacity:recorder_capacity ();
    m_pend = Array.make (4 * batch) 0.0;
    m_pending = 0;
    m_nblocks = 0;
    m_blocks = Hashtbl.create 16;
    m_snapshot_every = snapshot_every;
    m_snapshots = 0;
    m_snapshot_sink = snapshot_sink;
    m_spike_factor = spike_factor;
    m_spike_warmup = max 1 spike_warmup;
    m_dump_sink = dump_sink;
    m_churn_every = churn_every;
    m_latency = Sketch.create ~alpha ();
    m_cycles = Sketch.create ~alpha ();
    m_evals = Sketch.create ~alpha ();
    m_lat_win = Window.create ~ewma_alpha ~capacity:window ();
    m_evals_win = Window.create ~ewma_alpha ~capacity:window ();
    m_churn_win = Window.create ~ewma_alpha ~capacity:window ();
    m_spikes = 0;
    m_last_dump = None;
    m_causal_source = None;
    m_ckpt_writes = 0;
    m_ckpt_bytes = 0;
    m_ckpt_failures = 0;
    m_ckpt_seconds = Array.make 1 0.0 }

let set_causal_source t f = t.m_causal_source <- Some f

let checkpoint_written t ~bytes ~seconds =
  t.m_ckpt_writes <- t.m_ckpt_writes + 1;
  t.m_ckpt_bytes <- t.m_ckpt_bytes + bytes;
  t.m_ckpt_seconds.(0) <- t.m_ckpt_seconds.(0) +. seconds

let checkpoint_write_failed t = t.m_ckpt_failures <- t.m_ckpt_failures + 1

let checkpoint_stats t =
  (t.m_ckpt_writes, t.m_ckpt_bytes, t.m_ckpt_seconds.(0), t.m_ckpt_failures)

let block_state t name =
  match Hashtbl.find_opt t.m_blocks name with
  | Some b -> b
  | None ->
      let b =
        { b_name = name;
          b_faults = 0;
          b_recovered = 0;
          b_streak = 0;
          b_max_streak = 0;
          b_last_fault_instant = -1;
          b_quarantined = false;
          b_faulted_now = false }
      in
      Hashtbl.replace t.m_blocks name b;
      t.m_nblocks <- t.m_nblocks + 1;
      b

let instant_begin t =
  (match t.m_clock with
  | Some c -> t.m_begin_ts.(0) <- c ()
  | None -> ());
  t.m_in_instant <- true

let block_fault t ~block =
  let b = block_state t block in
  b.b_faults <- b.b_faults + 1;
  b.b_last_fault_instant <- t.m_instants;
  b.b_faulted_now <- true

let block_recovered t ~block =
  let b = block_state t block in
  b.b_recovered <- b.b_recovered + 1

let health t =
  Hashtbl.fold
    (fun _ b acc ->
      { h_block = b.b_name;
        h_faults = b.b_faults;
        h_recovered = b.b_recovered;
        h_streak = b.b_streak;
        h_max_streak = b.b_max_streak;
        h_last_fault_instant = b.b_last_fault_instant;
        h_quarantined = b.b_quarantined }
      :: acc)
    t.m_blocks []
  |> List.sort (fun a b -> compare a.h_block b.h_block)

let health_json t =
  Json.List
    (List.map
       (fun h ->
         Json.Obj
           [ ("block", Json.Str h.h_block);
             ("faults", Json.Int h.h_faults);
             ("recovered", Json.Int h.h_recovered);
             ("streak", Json.Int h.h_streak);
             ("max_streak", Json.Int h.h_max_streak);
             ("last_fault_instant", Json.Int h.h_last_fault_instant);
             ("quarantined", Json.Bool h.h_quarantined) ])
       (health t))

let data_loss_json t =
  let sketch_oor =
    Sketch.out_of_range t.m_latency + Sketch.out_of_range t.m_cycles
    + Sketch.out_of_range t.m_evals
  in
  let causal_ow, causal_trunc =
    match t.m_causal_source with Some f -> f () | None -> (0, 0)
  in
  Json.Obj
    [ ("recorder_overwrites", Json.Int (Recorder.overwrites t.m_recorder));
      ("sketch_out_of_range", Json.Int sketch_oor);
      ("causal_overwrites", Json.Int causal_ow);
      ("causal_truncated", Json.Int causal_trunc);
      ("checkpoint_write_failures", Json.Int t.m_ckpt_failures) ]

(* Commit the pending samples in instant order: the spike flag is
   evaluated against the EWMA as it stood *before* each sample (one
   slow instant cannot mask itself), so replaying the deferred samples
   sequentially yields bit-identical sketches, windows and spike counts
   to the unbatched feed. *)
let flush t =
  for k = 0 to t.m_pending - 1 do
    let latency = t.m_pend.(4 * k) in
    let cycles = t.m_pend.((4 * k) + 1) in
    let evals = t.m_pend.((4 * k) + 2) in
    let churn = t.m_pend.((4 * k) + 3) in
    let prev_ewma = Window.ewma t.m_lat_win in
    if
      Window.pushed t.m_lat_win >= t.m_spike_warmup
      && (not (Float.is_nan prev_ewma))
      && latency > t.m_spike_factor *. prev_ewma
    then t.m_spikes <- t.m_spikes + 1;
    Sketch.add t.m_latency latency;
    Sketch.add t.m_cycles cycles;
    Sketch.add t.m_evals evals;
    Window.push t.m_lat_win latency;
    Window.push t.m_evals_win evals;
    Window.push t.m_churn_win churn
  done;
  t.m_pending <- 0

(* The snapshot is the always-available view: cumulative counters (the
   ones {!Asr.Simulate} also feeds the registry, so the two reconcile
   exactly), bounded-memory quantiles, window aggregates, health, and
   the data-loss flags. *)
let snapshot t =
  flush t;
  Json.Obj
    [ ("instant", Json.Int (t.m_instants - 1));
      ("instants", Json.Int t.m_instants);
      ("block_evaluations", Json.Int t.m_cum_evals);
      ("iterations", Json.Int t.m_cum_iterations);
      ("net_churn", Json.Int t.m_cum_churn);
      ("faults", Json.Int t.m_cum_faults);
      ("cycles", Json.Int t.m_cum_cycles);
      ("latency", Sketch.to_json t.m_latency);
      ("cycles_sketch", Sketch.to_json t.m_cycles);
      ("evals_sketch", Sketch.to_json t.m_evals);
      ( "window",
        Json.Obj
          [ ("size", Json.Int (Window.size t.m_evals_win));
            ("evals_rate", Json.Float (Window.rate t.m_evals_win));
            ("churn_min", Json.Float (Window.min_value t.m_churn_win));
            ("churn_max", Json.Float (Window.max_value t.m_churn_win));
            ("latency_ewma", Json.Float (Window.ewma t.m_lat_win)) ] );
      ("spikes", Json.Int t.m_spikes);
      ( "checkpoint",
        Json.Obj
          [ ("writes", Json.Int t.m_ckpt_writes);
            ("bytes", Json.Int t.m_ckpt_bytes);
            ("seconds", Json.Float t.m_ckpt_seconds.(0));
            ("write_failures", Json.Int t.m_ckpt_failures) ] );
      ("health", health_json t);
      ("data_loss", data_loss_json t) ]

let dump ?last ~reason t =
  flush t;
  Json.Obj
    [ ("reason", Json.Str reason);
      ("instant", Json.Int (t.m_instants - 1));
      ("flight", Recorder.dump ?last t.m_recorder);
      ("health", health_json t);
      ("data_loss", data_loss_json t) ]

let quarantine t ~block =
  let b = block_state t block in
  b.b_quarantined <- true;
  let d = dump ~reason:("quarantine:" ^ block) t in
  t.m_last_dump <- Some d;
  match t.m_dump_sink with Some sink -> sink d | None -> ()

let instant_end t ~iterations ~block_evals ~net_churn ~faults =
  let latency =
    if not t.m_in_instant then 0.0
    else
      match t.m_clock with
      | Some c -> Float.max 0.0 (c () -. t.m_begin_ts.(0))
      | None -> 1.0  (* tick clock: one tick per instant *)
  in
  t.m_in_instant <- false;
  let cycles =
    match t.m_cycles_source with Some f -> f () | None -> 0
  in
  t.m_instants <- t.m_instants + 1;
  t.m_cum_evals <- t.m_cum_evals + block_evals;
  t.m_cum_iterations <- t.m_cum_iterations + iterations;
  t.m_cum_churn <- t.m_cum_churn + net_churn;
  t.m_cum_faults <- t.m_cum_faults + faults;
  t.m_cum_cycles <- t.m_cum_cycles + cycles;
  Recorder.push_values t.m_recorder ~instant:(t.m_instants - 1) ~cycles
    ~iterations ~block_evals ~net_churn ~faults;
  let base = 4 * t.m_pending in
  t.m_pend.(base) <- latency;
  t.m_pend.(base + 1) <- float_of_int cycles;
  t.m_pend.(base + 2) <- float_of_int block_evals;
  t.m_pend.(base + 3) <- float_of_int net_churn;
  t.m_pending <- t.m_pending + 1;
  if t.m_pending = batch then flush t;
  (* advance per-block fault streaks; the table is empty until the
     first fault, so the always-on path skips the traversal *)
  if t.m_nblocks > 0 then
    Hashtbl.iter
      (fun _ b ->
        if b.b_faulted_now then begin
          b.b_streak <- b.b_streak + 1;
          if b.b_streak > b.b_max_streak then b.b_max_streak <- b.b_streak;
          b.b_faulted_now <- false
        end
        else if not b.b_quarantined then b.b_streak <- 0)
      t.m_blocks;
  if t.m_snapshot_every > 0 && t.m_instants mod t.m_snapshot_every = 0 then begin
    t.m_snapshots <- t.m_snapshots + 1;
    match t.m_snapshot_sink with
    | Some sink -> sink (Json.to_string (snapshot t))
    | None -> ()
  end

let instants t = t.m_instants

let churn_every t = t.m_churn_every
let cum_block_evals t = t.m_cum_evals
let cum_iterations t = t.m_cum_iterations
let cum_net_churn t = t.m_cum_churn
let cum_faults t = t.m_cum_faults
let cum_cycles t = t.m_cum_cycles
let latency t = flush t; t.m_latency
let cycles t = flush t; t.m_cycles
let evals t = flush t; t.m_evals
let recorder t = t.m_recorder
let spike_count t = flush t; t.m_spikes
let snapshots_emitted t = t.m_snapshots
let last_dump t = t.m_last_dump

let reset t =
  Recorder.clear t.m_recorder;
  Sketch.clear t.m_latency;
  Sketch.clear t.m_cycles;
  Sketch.clear t.m_evals;
  Window.clear t.m_lat_win;
  Window.clear t.m_evals_win;
  Window.clear t.m_churn_win;
  Hashtbl.reset t.m_blocks;
  t.m_nblocks <- 0;
  t.m_pending <- 0;
  t.m_instants <- 0;
  t.m_begin_ts.(0) <- 0.0;
  t.m_in_instant <- false;
  t.m_cum_evals <- 0;
  t.m_cum_iterations <- 0;
  t.m_cum_churn <- 0;
  t.m_cum_faults <- 0;
  t.m_cum_cycles <- 0;
  t.m_spikes <- 0;
  t.m_snapshots <- 0;
  t.m_last_dump <- None;
  t.m_ckpt_writes <- 0;
  t.m_ckpt_bytes <- 0;
  t.m_ckpt_failures <- 0;
  t.m_ckpt_seconds.(0) <- 0.0

(* ------------------------- checkpoint state ----------------------- *)

let state_malformed what =
  invalid_arg ("Monitor.restore_state: malformed " ^ what)

let state_int name j =
  match Json.member name j with
  | Some (Json.Int n) -> n
  | _ -> state_malformed name

(* What travels in a checkpoint: the cumulative counters (the resume
   bit-exactness gate), per-block health, and the spike/snapshot
   counts. The quantile sketches, windows and flight ring restart
   empty on restore — they are bounded-memory summaries of the
   *process*, not simulation state, and their contents are not
   recoverable from their own outputs anyway. Checkpoint write
   accounting also restarts: it describes the writing process. *)
let state_json t =
  if t.m_in_instant then invalid_arg "Monitor.state_json: instant open";
  flush t;
  let blocks =
    Hashtbl.fold (fun _ b acc -> b :: acc) t.m_blocks []
    |> List.sort (fun a b -> compare a.b_name b.b_name)
  in
  Json.Obj
    [ ("instants", Json.Int t.m_instants);
      ("block_evaluations", Json.Int t.m_cum_evals);
      ("iterations", Json.Int t.m_cum_iterations);
      ("net_churn", Json.Int t.m_cum_churn);
      ("faults", Json.Int t.m_cum_faults);
      ("cycles", Json.Int t.m_cum_cycles);
      ("spikes", Json.Int t.m_spikes);
      ("snapshots", Json.Int t.m_snapshots);
      ( "blocks",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [ ("block", Json.Str b.b_name);
                   ("faults", Json.Int b.b_faults);
                   ("recovered", Json.Int b.b_recovered);
                   ("streak", Json.Int b.b_streak);
                   ("max_streak", Json.Int b.b_max_streak);
                   ("last_fault_instant", Json.Int b.b_last_fault_instant);
                   ("quarantined", Json.Bool b.b_quarantined) ])
             blocks) ) ]

let restore_state t j =
  reset t;
  t.m_instants <- state_int "instants" j;
  t.m_cum_evals <- state_int "block_evaluations" j;
  t.m_cum_iterations <- state_int "iterations" j;
  t.m_cum_churn <- state_int "net_churn" j;
  t.m_cum_faults <- state_int "faults" j;
  t.m_cum_cycles <- state_int "cycles" j;
  t.m_spikes <- state_int "spikes" j;
  t.m_snapshots <- state_int "snapshots" j;
  match Json.member "blocks" j with
  | Some (Json.List bs) ->
      List.iter
        (fun bj ->
          let name =
            match Json.member "block" bj with
            | Some (Json.Str s) -> s
            | _ -> state_malformed "block"
          in
          let b = block_state t name in
          b.b_faults <- state_int "faults" bj;
          b.b_recovered <- state_int "recovered" bj;
          b.b_streak <- state_int "streak" bj;
          b.b_max_streak <- state_int "max_streak" bj;
          b.b_last_fault_instant <- state_int "last_fault_instant" bj;
          b.b_quarantined <-
            (match Json.member "quarantined" bj with
            | Some (Json.Bool q) -> q
            | _ -> state_malformed "quarantined"))
        bs
  | _ -> state_malformed "blocks"
