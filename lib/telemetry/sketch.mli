(** Mergeable log-bucket quantile sketch (DDSketch-style).

    A bounded-memory summary of a value stream that answers quantile
    queries with a configurable {e relative}-error guarantee: for any
    recorded positive value stream and any [q], the estimate [x̂]
    satisfies [|x̂ - x| <= alpha * x] where [x] is the exact
    [q]-quantile — the log-bucket layout makes the guarantee
    multiplicative, so one sketch covers microseconds and minutes alike.

    Values are assigned to geometric buckets [gamma^(i-1) < v <=
    gamma^i] with [gamma = (1 + alpha) / (1 - alpha)]; each bucket
    stores only a count, so memory is O(log(max/min) / alpha) and
    independent of the stream length.

    {b Merge} is pointwise bucket addition: associative, commutative,
    and lossless (the merged sketch is bit-identical in every count to
    the sketch of the concatenated streams) — the primitive per-domain
    telemetry sinks need to combine at instant commit.

    Zero values are counted exactly in a dedicated slot (they sort
    before every positive bucket). Negative and non-finite values
    cannot be bucketed and are {e counted but not recorded} — see
    {!out_of_range}; exporters surface that count as a data-loss flag
    so a truncated view is never silently read as complete. *)

type t

val create : ?alpha:float -> ?max_buckets:int -> unit -> t
(** Defaults: [alpha = 0.01] (1% relative error), [max_buckets = 2048].
    When the bucket table would exceed [max_buckets], the lowest
    buckets collapse into one (standard DDSketch degradation: the
    guarantee then holds only above the collapse boundary; see
    {!collapsed}). [Invalid_argument] unless [0 < alpha < 1] and
    [max_buckets >= 16]. *)

val alpha : t -> float

val add : t -> float -> unit
(** Record one value. Zero is counted exactly; negative, NaN and ±∞
    increment {!out_of_range} and are otherwise ignored. *)

val count : t -> int
(** Recorded values (zeros included, out-of-range excluded). *)

val zero_count : t -> int

val out_of_range : t -> int
(** Values that could not be recorded (negative or non-finite) — a
    data-loss flag, surfaced by every exporter. *)

val collapsed : t -> int
(** Values whose low buckets were collapsed past [max_buckets] — 0 in
    normal operation. *)

val min_value : t -> float
(** Smallest recorded value; [nan] when empty. *)

val max_value : t -> float
(** Largest recorded value; [nan] when empty. *)

val sum : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0, 1]]: the value at rank
    [floor (q * (count - 1))] of the sorted recorded stream, up to the
    relative-error guarantee. [nan] when the sketch is empty;
    [Invalid_argument] outside [[0, 1]]. Monotone in [q]. *)

val merge : into:t -> t -> unit
(** Pointwise bucket addition of the second sketch into [into]. The
    result is exactly the sketch of the concatenated streams
    (bucket-identical, so quantile queries agree bit-for-bit with a
    single sketch that saw every value). [Invalid_argument] when the
    two sketches were created with different [alpha]. *)

val copy : t -> t

val equal : t -> t -> bool
(** Structural equality of everything quantile queries depend on:
    alpha, counts, min/max and every bucket. The floating [sum] is
    deliberately excluded (float addition is not associative, so sums
    of differently ordered merges may differ in the last ulp). *)

val buckets : t -> (int * int) list
(** [(index, count)] pairs in ascending index order — the exact merge
    state, for tests and serialization. *)

val clear : t -> unit
(** Back to the empty sketch (alpha and capacity retained). *)

val to_json : t -> Json.t
(** [{"alpha": a, "count": n, "zeros": z, "out_of_range": o,
    "collapsed": c, "min": m, "max": M, "sum": s,
    "p50": ..., "p95": ..., "p99": ...}] — non-finite floats render per
    {!Json.to_string}. *)
