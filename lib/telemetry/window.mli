(** Fixed-capacity sliding-window aggregations.

    A ring of the last [capacity] samples plus an exponentially
    weighted moving average over the whole stream. Everything is O(1)
    per push and O(capacity) per query, with no allocation after
    {!create} — cheap enough to leave on for every instant of a
    long-running simulation. *)

type t

val create : ?ewma_alpha:float -> capacity:int -> unit -> t
(** [ewma_alpha] defaults to [0.1] (new sample weight).
    [Invalid_argument] unless [capacity >= 1] and [0 < ewma_alpha <= 1]. *)

val capacity : t -> int

val push : t -> float -> unit
(** Append a sample, evicting the oldest once the window is full. *)

val size : t -> int
(** Samples currently in the window ([min pushed capacity]). *)

val pushed : t -> int
(** Total samples ever pushed. *)

val last : t -> float
(** Most recent sample; [nan] when empty. *)

val sum : t -> float
(** Sum over the window (0 when empty). *)

val mean : t -> float
(** Mean over the window; [nan] when empty. *)

val rate : t -> float
(** Alias of {!mean}, read as events-per-instant when the stream is a
    per-instant count. *)

val min_value : t -> float
(** Minimum over the window; [nan] when empty. *)

val max_value : t -> float
(** Maximum over the window; [nan] when empty. *)

val ewma : t -> float
(** Exponentially weighted moving average over {e all} pushed samples
    (seeded with the first); [nan] when empty. *)

val clear : t -> unit
