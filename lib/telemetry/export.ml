let arg_json : Registry.arg -> Json.t = function
  | Registry.Int n -> Json.Int n
  | Registry.Float f -> Json.Float f
  | Registry.Str s -> Json.Str s
  | Registry.Bool b -> Json.Bool b

let args_json args = Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)

let arg_text : Registry.arg -> string = function
  | Registry.Int n -> string_of_int n
  | Registry.Float f -> Printf.sprintf "%g" f
  | Registry.Str s -> s
  | Registry.Bool b -> string_of_bool b

let table ?(causal_loss = (0, 0)) reg =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let counters = Registry.counters reg in
  if counters <> [] then begin
    line "counters:";
    let width =
      List.fold_left
        (fun acc c -> max acc (String.length c.Registry.c_name))
        0 counters
    in
    List.iter
      (fun c -> line "  %-*s %d" width c.Registry.c_name c.Registry.c_value)
      counters
  end;
  let histograms = Registry.histograms reg in
  if histograms <> [] then begin
    line "histograms:";
    List.iter
      (fun h ->
        let open Registry in
        if h.h_count = 0 then line "  %s: empty" h.h_name
        else
          line "  %s: count=%d sum=%d min=%d max=%d mean=%.2f" h.h_name
            h.h_count h.h_sum h.h_min h.h_max (Registry.mean h))
      histograms
  end;
  let spans = Registry.spans reg in
  if spans <> [] then begin
    line "spans:";
    List.iter
      (fun sp ->
        let open Registry in
        let args =
          if sp.sp_args = [] then ""
          else
            " ["
            ^ String.concat ", "
                (List.map (fun (k, v) -> k ^ "=" ^ arg_text v) sp.sp_args)
            ^ "]"
        in
        let dur =
          if sp.sp_closed then Printf.sprintf "%.0f" (sp.sp_stop -. sp.sp_start)
          else "open"
        in
        line "  %s%s (%s)%s"
          (String.make (2 * sp.sp_depth) ' ')
          sp.sp_name dur args)
      spans
  end;
  if Registry.dropped_spans reg > 0 then
    line "(%d spans dropped past retention cap)" (Registry.dropped_spans reg);
  List.iter
    (fun name ->
      line "(counter %s saturated at max_int; later increments were lost)" name)
    (Registry.saturated_counters reg);
  (let ow, trunc = causal_loss in
   if ow > 0 then
     line "(%d causal events overwritten past the ring capacity)" ow;
   if trunc > 0 then
     line "(%d causal slices truncated at the retention horizon)" trunc);
  Buffer.contents buf

let json ?(causal_loss = (0, 0)) reg =
  let counters =
    Json.Obj
      (List.map
         (fun c -> (c.Registry.c_name, Json.Int c.Registry.c_value))
         (Registry.counters reg))
  in
  let histograms =
    Json.List
      (List.map
         (fun h ->
           let open Registry in
           Json.Obj
             [ ("name", Json.Str h.h_name);
               ("count", Json.Int h.h_count);
               ("sum", Json.Int h.h_sum);
               ("min", Json.Int (if h.h_count = 0 then 0 else h.h_min));
               ("max", Json.Int (if h.h_count = 0 then 0 else h.h_max));
               ("mean", Json.Float (Registry.mean h)) ])
         (Registry.histograms reg))
  in
  let spans =
    Json.List
      (List.map
         (fun sp ->
           let open Registry in
           Json.Obj
             [ ("id", Json.Int sp.sp_id);
               ("name", Json.Str sp.sp_name);
               ("cat", Json.Str sp.sp_cat);
               ("parent", Json.Int sp.sp_parent);
               ("depth", Json.Int sp.sp_depth);
               ("start", Json.Float sp.sp_start);
               ("stop", Json.Float sp.sp_stop);
               ("closed", Json.Bool sp.sp_closed);
               ("args", args_json sp.sp_args) ])
         (Registry.spans reg))
  in
  Json.Obj
    [ ("counters", counters); ("histograms", histograms); ("spans", spans);
      ("dropped_spans", Json.Int (Registry.dropped_spans reg));
      ( "data_loss",
        Json.Obj
          [ ("dropped_spans", Json.Int (Registry.dropped_spans reg));
            ( "saturated_counters",
              Json.List
                (List.map
                   (fun n -> Json.Str n)
                   (Registry.saturated_counters reg)) );
            ("causal_overwrites", Json.Int (fst causal_loss));
            ("causal_truncated", Json.Int (snd causal_loss)) ] ) ]

let chrome_trace ?(causal_loss = (0, 0)) reg =
  let events =
    List.filter_map
      (fun sp ->
        let open Registry in
        if not sp.sp_closed then None
        else
          Some
            (Json.Obj
               [ ("name", Json.Str sp.sp_name);
                 ("cat", Json.Str (if sp.sp_cat = "" then "default" else sp.sp_cat));
                 ("ph", Json.Str "X");
                 ("ts", Json.Float sp.sp_start);
                 ("dur", Json.Float (Float.max 0.0 (sp.sp_stop -. sp.sp_start)));
                 ("pid", Json.Int 1);
                 ("tid", Json.Int 1);
                 ("args", args_json sp.sp_args) ]))
      (Registry.spans reg)
  in
  let counters =
    Json.Obj
      (List.map
         (fun c -> (c.Registry.c_name, Json.Int c.Registry.c_value))
         (Registry.counters reg))
  in
  Json.to_string
    (Json.Obj
       [ ("traceEvents", Json.List events);
         ("displayTimeUnit", Json.Str "ms");
         ("otherData", counters);
         ("metadata",
          Json.Obj
            [ ("dropped_spans", Json.Int (Registry.dropped_spans reg));
              ( "saturated_counters",
                Json.List
                  (List.map
                     (fun n -> Json.Str n)
                     (Registry.saturated_counters reg)) );
              ("causal_overwrites", Json.Int (fst causal_loss));
              ("causal_truncated", Json.Int (snd causal_loss)) ]) ])

let pct total part =
  if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total

let profile_table ?limit prof =
  let grand_total = Profile.total prof in
  let rows = Profile.by_self prof in
  let rows =
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) rows
    | None -> rows
  in
  let label_w =
    List.fold_left
      (fun acc r -> max acc (String.length r.Profile.r_label))
      6 rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-*s %10s %12s %7s %12s %8s %10s %10s\n" label_w "method"
       "calls" "self" "self%" "cum" "allocs" "words" "gc");
  List.iter
    (fun r ->
      let open Profile in
      Buffer.add_string buf
        (Printf.sprintf "%-*s %10d %12d %6.2f%% %12d %8d %10d %10d\n" label_w
           r.r_label r.r_calls r.r_self
           (pct grand_total r.r_self)
           r.r_cum r.r_allocs r.r_alloc_words r.r_gc_cycles))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "%-*s %10s %12d %6.2f%%\n" label_w "total" "" grand_total
       100.0);
  Buffer.contents buf

let lines_table ?limit lt =
  let grand_total = Lines.total lt in
  let rows = Lines.by_cycles lt in
  let rows =
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) rows
    | None -> rows
  in
  let name r =
    let open Lines in
    if r.e_file = "" then "<unattributed>"
    else Printf.sprintf "%s:%d" r.e_file r.e_line
  in
  let label_w = List.fold_left (fun acc r -> max acc (String.length (name r))) 4 rows in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-*s %12s %7s %8s %10s %6s\n" label_w "line" "cycles"
       "cyc%" "allocs" "words" "traps");
  List.iter
    (fun r ->
      let open Lines in
      Buffer.add_string buf
        (Printf.sprintf "%-*s %12d %6.2f%% %8d %10d %6d\n" label_w (name r)
           r.e_cycles
           (pct grand_total r.e_cycles)
           r.e_allocs r.e_alloc_words r.e_traps))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "%-*s %12d %6.2f%%\n" label_w "total" grand_total 100.0);
  Buffer.contents buf

let lines_json lt =
  let rows =
    List.map
      (fun r ->
        let open Lines in
        Json.Obj
          [ ("file", Json.Str r.e_file);
            ("line", Json.Int r.e_line);
            ("cycles", Json.Int r.e_cycles);
            ("allocs", Json.Int r.e_allocs);
            ("alloc_words", Json.Int r.e_alloc_words);
            ("traps", Json.Int r.e_traps) ])
      (Lines.by_cycles lt)
  in
  Json.Obj [ ("total", Json.Int (Lines.total lt)); ("lines", Json.List rows) ]

let profile_json prof =
  let methods =
    List.map
      (fun r ->
        let open Profile in
        Json.Obj
          [ ("method", Json.Str r.r_label);
            ("calls", Json.Int r.r_calls);
            ("self", Json.Int r.r_self);
            ("cum", Json.Int r.r_cum);
            ("allocs", Json.Int r.r_allocs);
            ("alloc_words", Json.Int r.r_alloc_words);
            ("gc_cycles", Json.Int r.r_gc_cycles) ])
      (Profile.by_self prof)
  in
  Json.Obj
    [ ("total", Json.Int (Profile.total prof)); ("methods", Json.List methods) ]
