(** Collapsed-stack ("folded") flamegraph export over {!Registry} spans.

    The format is the one consumed by Brendan Gregg's [flamegraph.pl]
    and by speedscope: one line per distinct call stack,

    {v root;child;grandchild 1234 v}

    where the number is the {e self} weight of the leaf frame — the
    span's duration minus the durations of its direct children in the
    same category. For spans produced by {!Profile} (category
    ["method"], timestamps in cycles) the weights are exact cycle
    counts, so summing the lines whose leaf is a given method
    reproduces that method's [r_self] in the flat profile. *)

val collapse : ?cat:string -> Registry.t -> (string * int) list
(** Fold the registry's closed spans of [cat] (default ["method"]) into
    [(stack, self_weight)] rows, sorted by stack. Parent chains skip
    spans of other categories; still-open spans are ignored. Rows with
    zero self weight are dropped. *)

val to_string : (string * int) list -> string
(** One ["stack weight\n"] line per row. *)

val parse : string -> (string * int) list
(** Inverse of {!to_string}; tolerates blank lines.
    @raise Failure on a malformed line. *)
