(** Exporters over {!Registry} and {!Profile} data: human-readable
    tables, a machine-readable JSON dump, and Chrome [trace_event]
    files loadable in [chrome://tracing] / Perfetto. *)

val table : ?causal_loss:int * int -> Registry.t -> string
(** Pretty text: counters, histograms, then the span tree (indented by
    nesting depth, with durations and args), then one line per
    data-loss condition (dropped spans, saturated counters, and — when
    [causal_loss = (overwrites, truncated_slices)] reports a traced
    run's causal ring, see {!Causal.data_loss} — ring overwrites and
    truncated slices). *)

val json : ?causal_loss:int * int -> Registry.t -> Json.t
(** Full structured dump: [{"counters": {...}, "histograms": [...],
    "spans": [...], "dropped_spans": n, "data_loss": {...}}] —
    [data_loss] carries [dropped_spans] (nonzero when the retention
    cap truncated the span list), [saturated_counters] (counters
    that hit [max_int]) and the causal ring's [causal_overwrites] /
    [causal_truncated] (0 unless [causal_loss] is supplied), so a
    partial view is never silently read as complete. *)

val chrome_trace : ?causal_loss:int * int -> Registry.t -> string
(** JSON Object Format per the Trace Event specification: closed spans
    become complete ([ph = "X"]) events with µs timestamps; counters
    ride along under ["otherData"], and ["metadata"] carries
    [dropped_spans], [saturated_counters], [causal_overwrites] and
    [causal_truncated] (see {!json}). *)

val profile_table : ?limit:int -> Profile.t -> string
(** Flat profile sorted by self cycles (descending), gprof-style, with
    calls, self/cumulative cycles, percentages, allocation and GC
    columns. [limit] caps the number of rows shown. *)

val profile_json : Profile.t -> Json.t
(** [{"total": n, "methods": [...]}] in self-descending order. *)

val lines_table : ?limit:int -> Lines.t -> string
(** Flat per-source-line profile sorted by cycles (descending), with
    allocation and bounds-trap columns and a reconciling total row. *)

val lines_json : Lines.t -> Json.t
(** [{"total": n, "lines": [...]}] in cycles-descending order. *)
