(** Bounded-memory causal event log for fixpoint evaluation.

    Every instant of an ASR run is a least fixpoint of block reactions,
    so the causal chain behind any net value — which block evaluation
    wrote it, from which input nets, at which versions — is
    well-defined. This module records that chain as a bounded ring of
    events and answers backward *why-provenance* queries: from
    [(net, instant)] to the minimal DAG of block evaluations, input and
    delay bindings that produced the value.

    The module is value-agnostic (['v] is instantiated by the caller —
    {!Asr.Fixpoint} uses its [Domain.t]); the telemetry layer carries no
    simulator types. Events reference each other by [uid] — the
    position in the push sequence — and nets and blocks by the integer
    indices of the caller's compiled graph.

    Memory discipline follows {!Recorder}: the ring holds the most
    recent [capacity] events; older events are overwritten and the loss
    is surfaced as an {!overwrites} counter (and, through the caller,
    as a [data_loss] field). A slice that chases a dependency past the
    retention horizon reports itself truncated rather than guessing. *)

type kind =
  | Eval  (** a block evaluation *)
  | Input  (** an environment input binding at instant start *)
  | Delay  (** a delay output binding ([ev_src] is the source net read
               at the previous instant) *)
  | Folded  (** a constant net preloaded by a fused plan's template *)

type 'v event = {
  ev_uid : int;  (** position in the push sequence; the event's identity *)
  ev_instant : int;
  ev_kind : kind;
  ev_block : int;  (** evaluated block index; -1 for bindings *)
  ev_tag : string;
      (** "" for an ordinary evaluation; a containment provenance tag
          (e.g. ["contained:hold-last"]) when the recorded outputs are a
          supervisor substitution rather than the block's own values *)
  ev_src : int;  (** [Delay] only: source net, read at [ev_instant - 1];
                     -1 otherwise *)
  ev_reads : int array;
      (** flattened [(net, producer uid)] pairs: the nets read by the
          evaluation and the uid of each net's establishing event at
          read time (-1 when the net was still ⊥) *)
  ev_write_nets : int array;  (** nets this event established *)
  ev_write_values : 'v array;  (** parallel to [ev_write_nets] *)
}

type 'v t

val create : ?capacity:int -> n_nets:int -> unit -> 'v t
(** Ring of at most [capacity] (default 65536) events over a graph of
    [n_nets] nets. Raises [Invalid_argument] on a non-positive
    capacity or a negative net count. *)

val capacity : 'v t -> int

val n_nets : 'v t -> int

(** {1 Instant lifecycle}

    {!Asr.Fixpoint.eval} brackets each evaluation it runs as one
    instant; instants are numbered from 0 in bracket order. *)

val in_instant : 'v t -> bool

val begin_instant : 'v t -> unit
(** Opens the next instant: the current net-writer registers become the
    previous instant's (so delay bindings can resolve their source) and
    every net starts the new instant unwritten. Raises
    [Invalid_argument] when an instant is already open. *)

val end_instant : 'v t -> unit

val instant : 'v t -> int
(** The open instant's index, or the index the next {!begin_instant}
    will open. *)

(** {1 Recording} *)

val record_binding : 'v t -> kind:kind -> net:int -> ?src:int -> 'v -> unit
(** Record an instant-start binding ([Input], [Delay] or [Folded]) of
    [net]. For [Delay], [src] is the net whose previous-instant value
    crossed the delay; the binding's read resolves against the previous
    instant's writer registers. *)

val eval_begin : 'v t -> block:int -> reads:int array -> unit
(** Open an evaluation event for [block]. [reads] are the input nets
    (the caller's static array is only read, never retained); each is
    resolved to its current establishing uid immediately. *)

val eval_write : 'v t -> net:int -> 'v -> unit
(** Record that the open evaluation established [net]. *)

val set_tag : 'v t -> string -> unit
(** Tag the open evaluation with containment provenance. *)

val pending_writes : 'v t -> int
(** Writes recorded on the open evaluation so far. *)

val pending_tag : 'v t -> string

val eval_commit : 'v t -> unit
(** Close the open evaluation. The event is pushed only when it
    established at least one net or carries a tag; quiet re-evaluations
    (chaotic sweeps that change nothing) leave no trace and no ring
    pressure. *)

(** {1 Loss accounting} *)

val pushed : 'v t -> int
(** Events pushed since creation (monotone; not reset by eviction). *)

val retained : 'v t -> int

val overwrites : 'v t -> int
(** Events lost to ring eviction: [max 0 (pushed - capacity)]. *)

val truncated_slices : 'v t -> int
(** Slices computed so far whose dependency chase crossed the retention
    horizon. *)

val data_loss : 'v t -> int * int
(** [(overwrites, truncated_slices)] — the pair surfaced in
    [data_loss] objects by {!Monitor} and the exporters. *)

(** {1 Queries} *)

val events : ?instant:int -> 'v t -> 'v event list
(** Retained events in push order, optionally only those of one
    instant. *)

val find : 'v t -> int -> 'v event option
(** Event by uid; [None] when never pushed or evicted. *)

val writer : 'v t -> net:int -> instant:int -> 'v event option
(** The retained event that established [net]'s final value at
    [instant], if any. *)

type 'v slice = {
  sl_net : int;
  sl_instant : int;
  sl_value : 'v option;  (** [None]: no retained writer (⊥, or lost) *)
  sl_root : int;  (** uid of the establishing event, or -1 *)
  sl_events : 'v event list;
      (** the minimal causal DAG, in push (hence causal) order *)
  sl_bottom : (int * int) list;
      (** [(net, instant)] leaves that were ⊥ when read *)
  sl_missing : (int * int) list;
      (** [(net, instant)] dependencies lost to ring eviction *)
  sl_truncated : bool;  (** [sl_missing <> []] or the root itself was
                            past the retention horizon *)
}

val slice : 'v t -> net:int -> instant:int -> 'v slice
(** Backward causal slice: the minimal set of retained events the value
    of [net] at [instant] transitively depends on, following
    evaluation reads within the instant and delay crossings into
    earlier instants. *)

(** {1 Restoration and serialization} *)

val restore : ?capacity:int -> n_nets:int -> 'v event list -> 'v t
(** Rebuild a queryable log from serialized events (uids preserved).
    [capacity] defaults to covering the given events. Only querying is
    meaningful on a restored log. *)

(** A continuable snapshot of the log, unlike {!restore}'s query-only
    rebuild: it carries the per-net writer registers (which may
    reference evicted events the ring no longer holds) so a log rebuilt
    with {!of_state} keeps recording with uids and read edges
    bit-identical to the uninterrupted run's. *)
type 'v state = {
  st_capacity : int;
  st_pushed : int;
  st_instant : int;  (** last opened instant; -1 before the first *)
  st_truncated : int;
  st_writers : int array;
      (** establishing uid per net for the last recorded instant *)
  st_events : 'v event list;  (** retained events, push order *)
}

val export_state : 'v t -> 'v state
(** Raises [Invalid_argument] when an instant is open. *)

val of_state : 'v state -> 'v t

val event_json : render:('v -> Json.t) -> 'v event -> Json.t

val event_of_json : unrender:(Json.t -> 'v) -> Json.t -> 'v event
(** Inverse of {!event_json}. Raises [Invalid_argument] or
    [Json.Parse_error] on malformed input. *)

val events_json : render:('v -> Json.t) -> 'v t -> Json.t
(** Object with [capacity], [pushed], [overwrites], [truncated_slices]
    and the retained [events]. *)

val slice_json : render:('v -> Json.t) -> 'v slice -> Json.t
