type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let err msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else err (Printf.sprintf "expected '%c'" c)
  in
  let lit word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else err ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            incr pos;
            Buffer.contents buf
        | '\\' ->
            incr pos;
            if !pos >= n then err "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 >= n then err "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                (match int_of_string_opt ("0x" ^ hex) with
                | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
                | Some _ -> Buffer.add_char buf '?'
                | None -> err "bad \\u escape");
                pos := !pos + 4
            | c -> err (Printf.sprintf "bad escape '\\%c'" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then incr pos;
    let continue = ref true in
    while !continue && !pos < n do
      match s.[!pos] with
      | '0' .. '9' -> incr pos
      | '.' | 'e' | 'E' ->
          is_float := true;
          incr pos
      | ('+' | '-') when !is_float -> incr pos
      | _ -> continue := false
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> err ("bad number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> err ("bad number " ^ text)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_lit ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> err "unexpected character"
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (
      incr pos;
      List [])
    else
      let rec items acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            items (v :: acc)
        | Some ']' ->
            incr pos;
            List (List.rev (v :: acc))
        | _ -> err "expected ',' or ']'"
      in
      items []
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (
      incr pos;
      Obj [])
    else
      let rec items acc =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            items ((k, v) :: acc)
        | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
        | _ -> err "expected ',' or '}'"
      in
      items []
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then err "trailing characters";
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

(* Reals must survive a JSON round trip bit-exactly in durable artifacts
   (traces, checkpoints), but [float_repr] rounds through decimal and
   maps non-finite values to 0 — so the exact IEEE-754 bit pattern rides
   alongside a human-readable approximation. *)
let float_bits f =
  Obj
    [ ("r", Float f);
      ("bits", Str (Printf.sprintf "%016Lx" (Int64.bits_of_float f))) ]

let float_of_bits j =
  match member "bits" j with
  | Some (Str hex) -> (
      match Int64.of_string_opt ("0x" ^ hex) with
      | Some bits -> Some (Int64.float_of_bits bits)
      | None -> None)
  | _ -> None
