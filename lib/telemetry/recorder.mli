(** Fixed-capacity ring-buffer flight recorder.

    One record per instant, overwriting the oldest once full — memory
    is bounded by [capacity] regardless of how long the simulation
    runs, so the recorder is cheap enough to leave always-on and
    {!dump} the last N instants the moment something goes wrong (the
    supervisor dumps on quarantine escalation so the watchdog's
    verdict ships with its context). Overwrites are counted and
    surfaced in every dump: a window that silently lost its prefix is
    never read as the whole flight. *)

type record = {
  r_instant : int;
  r_cycles : int;  (** modeled cycles of the instant's reactions (0 when unmetered) *)
  r_iterations : int;  (** fixpoint iterations *)
  r_block_evals : int;
  r_net_churn : int;  (** nets whose fixed point changed vs the previous instant *)
  r_faults : int;  (** faults contained this instant *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default [capacity = 256] records. [Invalid_argument] when
    [capacity < 1]. *)

val capacity : t -> int

val push : t -> record -> unit

val push_values :
  t ->
  instant:int ->
  cycles:int ->
  iterations:int ->
  block_evals:int ->
  net_churn:int ->
  faults:int ->
  unit
(** Same as {!push} without materializing a [record] — the always-on
    per-instant path stores straight into the ring and allocates
    nothing. *)

val size : t -> int
(** Records currently retained ([min pushed capacity]). *)

val pushed : t -> int

val overwrites : t -> int
(** Records lost to ring wrap-around — a data-loss flag, included in
    every {!dump}. *)

val records : ?last:int -> t -> record list
(** Chronological (oldest first); [last] keeps only the most recent N. *)

val record_to_json : record -> Json.t

val dump : ?last:int -> t -> Json.t
(** [{"capacity": c, "pushed": n, "overwrites": o, "records": [...]}]
    with records chronological — parseable back by {!Json.parse}. *)

val clear : t -> unit
