(** Process-local instrumentation registry: monotonic counters,
    power-of-two histograms, and nestable spans.

    One registry is one observation session. Components take a registry
    as an optional argument and record into it when it is enabled; a
    disabled registry costs one branch per operation. Timestamps come
    from a caller-supplied clock (microseconds by convention — the
    Chrome trace exporter assumes µs) or, by default, from a
    deterministic tick counter so unit tests are reproducible. *)

type arg = Int of int | Float of float | Str of string | Bool of bool
(** Key/value payload attached to spans. *)

type counter = { c_name : string; mutable c_value : int }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
      (** 64 buckets: bucket [0] holds values ≤ 0, bucket [i ≥ 1] holds
          values in [2{^i-1}, 2{^i}). *)
}

type span = {
  sp_id : int;
  sp_name : string;
  sp_cat : string;
  sp_depth : int;  (** nesting depth at entry, 0 for roots *)
  sp_parent : int;  (** [sp_id] of the enclosing span, [-1] for roots *)
  sp_start : float;
  mutable sp_stop : float;
  mutable sp_closed : bool;
  mutable sp_args : (string * arg) list;
}

type t

val create : ?enabled:bool -> ?clock:(unit -> float) -> ?max_spans:int -> unit -> t
(** Defaults: enabled, deterministic tick clock (1.0 per reading,
    starting at 1.0), [max_spans = 1_000_000] retained span records
    (further spans still nest and time correctly but are not retained;
    see {!dropped_spans}). *)

val is_enabled : t -> bool
val set_enabled : t -> bool -> unit

(** {2 Counters} *)

val counter : t -> string -> counter
(** Find-or-create. The handle is valid for the registry's lifetime;
    callers caching handles on hot paths guard with {!is_enabled}
    themselves. *)

val add : counter -> int -> unit
(** Saturates at [max_int]; negative increments are ignored (counters
    are monotonic). Not gated on {!is_enabled} — use {!count} for the
    gated one-shot form. *)

val count : t -> string -> int -> unit
(** [count t name n]: find-or-create + {!add}, skipped when disabled. *)

(** {2 Histograms} *)

val histogram : t -> string -> histogram
val observe : histogram -> int -> unit
val observe_value : t -> string -> int -> unit
(** Gated find-or-create + {!observe}. *)

val mean : histogram -> float

(** {2 Spans} *)

val enter :
  t -> ?cat:string -> ?args:(string * arg) list -> ?ts:float -> string -> unit
(** Open a span nested under the innermost open span. [ts] overrides the
    registry clock (used by the cycle profiler, whose timeline is cycle
    counts rather than wall time). No-op when disabled. *)

val exit : t -> ?args:(string * arg) list -> ?ts:float -> unit -> unit
(** Close the innermost open span, appending [args] to it. Unbalanced
    calls are ignored. *)

val with_span :
  t -> ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [enter]/[exit] bracket, exception-safe. *)

(** {2 Inspection} *)

val counters : t -> counter list
(** In creation order. *)

val histograms : t -> histogram list
val spans : t -> span list
(** In start order, including any still-open spans ([sp_closed = false]). *)

val dropped_spans : t -> int

val export_counters : t -> (string * int) list
(** [(name, value)] pairs in creation order — the counter half of a
    durable checkpoint. *)

val import_counters : t -> (string * int) list -> unit
(** Find-or-create each named counter and set (not add) its value, for
    checkpoint restore; counters not named are left untouched. *)

val saturated : counter -> bool
(** The counter hit [max_int]: later increments were lost. *)

val saturated_counters : t -> string list
(** Names of saturated counters, in creation order — a data-loss flag
    every exporter surfaces (see {!Export}). *)

val reset : t -> unit
