(** Minimal JSON tree, printer and parser.

    The telemetry exporters need to emit JSON (Chrome trace files,
    machine-readable profiles) and the test suite needs to parse that
    output back to validate it structurally. The switch carries no JSON
    library, so this is a small, dependency-free implementation: it
    covers exactly the constructs the exporters produce (objects,
    arrays, strings, ints, floats, bools, null) plus enough of RFC 8259
    to re-read them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact (single-line) rendering. Strings are escaped; non-finite
    floats are rendered as [0] (JSON has no representation for them). *)

val parse : string -> t
(** Inverse of {!to_string} on its image; accepts any whitespace-
    separated JSON text with ASCII escapes. Raises {!Parse_error} with
    an offset on malformed input. Numbers without [.], [e] or [E] parse
    as [Int]; everything else as [Float]. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the first binding of [k], [None] otherwise
    or when the value is not an object. *)

val float_bits : float -> t
(** Lossless float encoding for durable artifacts. {!to_string} rounds
    floats through a decimal representation (and renders non-finite
    values as [0]), so serializers that must round-trip reals bit-exactly
    — traces, checkpoints — encode them as
    [{"r": <approx>, "bits": "<16 hex digits>"}]: the ["r"] member keeps
    the artifact human-readable, the ["bits"] member carries the exact
    IEEE-754 bit pattern. *)

val float_of_bits : t -> float option
(** Inverse of {!float_bits}: decodes the ["bits"] member back to the
    identical bit pattern. [None] when the value is not a well-formed
    {!float_bits} object. *)
