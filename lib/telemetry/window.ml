type t = {
  w_ring : float array;
  w_capacity : int;
  w_ewma_alpha : float;
  mutable w_pushed : int;
  mutable w_ewma : float;
}

let create ?(ewma_alpha = 0.1) ~capacity () =
  if capacity < 1 then invalid_arg "Window.create: capacity must be >= 1";
  if not (ewma_alpha > 0.0 && ewma_alpha <= 1.0) then
    invalid_arg "Window.create: ewma_alpha must be in (0, 1]";
  { w_ring = Array.make capacity 0.0;
    w_capacity = capacity;
    w_ewma_alpha = ewma_alpha;
    w_pushed = 0;
    w_ewma = nan }

let capacity t = t.w_capacity

let push t v =
  t.w_ring.(t.w_pushed mod t.w_capacity) <- v;
  t.w_ewma <-
    (if t.w_pushed = 0 then v
     else (t.w_ewma_alpha *. v) +. ((1.0 -. t.w_ewma_alpha) *. t.w_ewma));
  t.w_pushed <- t.w_pushed + 1

let size t = min t.w_pushed t.w_capacity

let pushed t = t.w_pushed

let last t =
  if t.w_pushed = 0 then nan
  else t.w_ring.((t.w_pushed - 1) mod t.w_capacity)

let fold f init t =
  let n = size t in
  let acc = ref init in
  for k = 0 to n - 1 do
    acc := f !acc t.w_ring.((t.w_pushed - n + k) mod t.w_capacity)
  done;
  !acc

let sum t = fold ( +. ) 0.0 t

let mean t = if size t = 0 then nan else sum t /. float_of_int (size t)

let rate = mean

let min_value t = if size t = 0 then nan else fold Float.min infinity t

let max_value t = if size t = 0 then nan else fold Float.max neg_infinity t

let ewma t = t.w_ewma

let clear t =
  t.w_pushed <- 0;
  t.w_ewma <- nan
