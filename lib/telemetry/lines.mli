(** Deterministic per-source-line cost attribution.

    The runtime's [Cost] meter feeds this with a current-position
    pointer ([set]) plus charge/alloc/trap events; because the cost
    model is deterministic, the result is an exact flat profile by
    [(file, line)] — every cycle the meter records lands on exactly one
    row. Invariant: {!total} equals [Cost.cycles] when the table is
    attached from machine creation.

    Charges made before any [set], or at positions without source
    information, accumulate on the unattributed row [("", 0)].

    Method calls: the engines bracket bodies with {!enter}/{!leave} so
    that cycles charged after a callee returns (but before the caller's
    next position update) land back on the caller's line rather than
    skidding onto the callee's last line. *)

type entry = {
  e_file : string;  (** [""] for the unattributed row *)
  e_line : int;  (** 1-based; [0] for the unattributed row *)
  e_cycles : int;
  e_allocs : int;
  e_alloc_words : int;
  e_traps : int;  (** bounds-check violations raised at this line *)
}

type t

val create : unit -> t

val set : t -> file:string -> line:int -> unit
(** Move the current-position pointer. Subsequent charges accrue to
    this [(file, line)] row. Cheap when the position is unchanged. *)

val charge : t -> int -> unit
val alloc : t -> words:int -> unit
val trap : t -> unit

val enter : t -> unit
(** Method entry: push the current position so {!leave} can restore it. *)

val leave : t -> unit
(** Method exit: restore the caller's position. Unbalanced calls are
    ignored. *)

val total : t -> int
(** Total cycles charged; equals the sum of [e_cycles] over {!rows}. *)

val rows : t -> entry list
(** All rows with any activity, sorted by [(file, line)]. *)

val by_cycles : t -> entry list
(** Sorted by [e_cycles] descending (ties by file then line). *)
