type row = {
  r_label : string;
  mutable r_calls : int;
  mutable r_self : int;
  mutable r_cum : int;
  mutable r_allocs : int;
  mutable r_alloc_words : int;
  mutable r_gc_cycles : int;
}

type frame = { f_row : row; f_entry_total : int; f_outer : bool }

type t = {
  rows_tbl : (string, row) Hashtbl.t;
  mutable rows_rev : row list;
  mutable stack : frame list;
  on_stack : (string, int) Hashtbl.t;
  mutable total : int;
  root : row;
  span_reg : Registry.t option;
}

let make_row label =
  { r_label = label;
    r_calls = 0;
    r_self = 0;
    r_cum = 0;
    r_allocs = 0;
    r_alloc_words = 0;
    r_gc_cycles = 0 }

let create ?spans () =
  { rows_tbl = Hashtbl.create 64;
    rows_rev = [];
    stack = [];
    on_stack = Hashtbl.create 64;
    total = 0;
    root = make_row "<toplevel>";
    span_reg = spans }

let top t = match t.stack with [] -> t.root | f :: _ -> f.f_row

let charge t n =
  t.total <- t.total + n;
  let r = top t in
  r.r_self <- r.r_self + n

let enter t label =
  let row =
    match Hashtbl.find_opt t.rows_tbl label with
    | Some r -> r
    | None ->
        let r = make_row label in
        Hashtbl.replace t.rows_tbl label r;
        t.rows_rev <- r :: t.rows_rev;
        r
  in
  row.r_calls <- row.r_calls + 1;
  let occurrences =
    match Hashtbl.find_opt t.on_stack label with Some d -> d | None -> 0
  in
  Hashtbl.replace t.on_stack label (occurrences + 1);
  t.stack <-
    { f_row = row; f_entry_total = t.total; f_outer = occurrences = 0 }
    :: t.stack;
  match t.span_reg with
  | Some reg -> Registry.enter reg ~cat:"method" ~ts:(float_of_int t.total) label
  | None -> ()

let leave t =
  match t.stack with
  | [] -> ()
  | f :: rest ->
      t.stack <- rest;
      let label = f.f_row.r_label in
      (match Hashtbl.find_opt t.on_stack label with
      | Some 1 -> Hashtbl.remove t.on_stack label
      | Some d -> Hashtbl.replace t.on_stack label (d - 1)
      | None -> ());
      if f.f_outer then
        f.f_row.r_cum <- f.f_row.r_cum + (t.total - f.f_entry_total);
      (match t.span_reg with
      | Some reg -> Registry.exit reg ~ts:(float_of_int t.total) ()
      | None -> ())

let alloc t ~words =
  let r = top t in
  r.r_allocs <- r.r_allocs + 1;
  r.r_alloc_words <- r.r_alloc_words + words

let gc t ~cycles =
  let r = top t in
  r.r_gc_cycles <- r.r_gc_cycles + cycles

let total t = t.total

let rows t =
  t.root.r_cum <- t.total;
  t.root :: List.rev t.rows_rev

let sorted_by key t =
  List.stable_sort
    (fun a b ->
      match compare (key b) (key a) with
      | 0 -> compare a.r_label b.r_label
      | c -> c)
    (rows t)

let by_self = sorted_by (fun r -> r.r_self)
let by_cum = sorted_by (fun r -> r.r_cum)

let depth t = List.length t.stack
