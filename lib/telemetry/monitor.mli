(** Always-on, bounded-memory observability for long-running
    simulations.

    One monitor owns, per simulation: a {!Recorder} flight ring (last N
    instants), three {!Sketch} quantile sketches (per-instant latency,
    modeled cycles, block evaluations — p50/p95/p99 at any moment, any
    stream length), sliding {!Window} aggregations (evaluation rate,
    churn min/max, latency EWMA), and per-block health derived from
    supervisor fault events (fault streaks, quarantine state) plus an
    EWMA latency-spike flag. Memory is fixed at creation; nothing grows
    with the number of instants, which is what distinguishes this layer
    from the batch exporters in {!Export}.

    The driver ({!Asr.Simulate}) brackets each instant with
    {!instant_begin} / {!instant_end} and forwards supervisor events;
    the monitor emits one NDJSON snapshot every [snapshot_every]
    instants and a flight-recorder dump the moment a block is
    quarantined, so escalations ship with their last-K-instants
    context. All timestamps come from a caller-supplied clock
    (µs by convention), defaulting to a deterministic tick so tests and
    fixed-seed campaigns are bit-reproducible. *)

type health = {
  h_block : string;
  h_faults : int;  (** contained faults attributed to this block *)
  h_recovered : int;  (** faults a [Retry] absorbed *)
  h_streak : int;  (** consecutive faulty instants, current *)
  h_max_streak : int;
  h_last_fault_instant : int;  (** -1 when never faulted *)
  h_quarantined : bool;
}

type t

val create :
  ?alpha:float ->
  ?recorder_capacity:int ->
  ?window:int ->
  ?ewma_alpha:float ->
  ?spike_factor:float ->
  ?spike_warmup:int ->
  ?snapshot_every:int ->
  ?snapshot_sink:(string -> unit) ->
  ?dump_sink:(Json.t -> unit) ->
  ?clock:(unit -> float) ->
  ?cycles_source:(unit -> int) ->
  ?churn_every:int ->
  unit ->
  t
(** Defaults: [alpha = 0.01] (sketch relative error),
    [recorder_capacity = 256], [window = 64], [ewma_alpha = 0.1],
    [spike_factor = 4.0], [spike_warmup = 8] instants before spike
    flags arm, [snapshot_every = 0] (periodic snapshots off),
    deterministic tick clock, no cycle source, [churn_every = 256].

    [snapshot_sink] receives each periodic snapshot as one serialized
    JSON object (no trailing newline — append one per line for NDJSON).
    [dump_sink] receives each flight-recorder dump (quarantines).
    [cycles_source] is polled once per instant for the modeled cycle
    count of that instant's reactions (e.g.
    [Elaborate.last_reaction_cycles]); without it cycles record as 0.

    [churn_every] bounds the cost of net-churn accounting: an exact
    churn comparison is O(nets) per instant — fine for the batch
    telemetry registry, but it would dominate an always-on monitor on
    large fused nets. The simulator therefore runs the full scan only
    every [churn_every] instants when the monitor is the sole consumer
    (a record's [r_net_churn] then means "nets changed since the
    previous churn sample", 0 between samples); with the full telemetry
    registry also attached the scan already runs every instant and
    churn is exact. [0] disables sampling entirely. *)

(** {2 Instant lifecycle (driven by the simulator)} *)

val instant_begin : t -> unit
(** Samples the clock; latency of the instant is the span to
    {!instant_end}. *)

val instant_end :
  t -> iterations:int -> block_evals:int -> net_churn:int -> faults:int -> unit
(** Close the instant: push the flight record, feed sketches and
    windows, advance per-block fault streaks, flag latency spikes, and
    emit a periodic snapshot when due. *)

(** {2 Supervisor events (forwarded by the simulator)} *)

val block_fault : t -> block:string -> unit

val block_recovered : t -> block:string -> unit

val quarantine : t -> block:string -> unit
(** Mark the block quarantined and emit a flight-recorder dump
    ([reason = "quarantine"]) to [dump_sink]; the dump is also retained
    as {!last_dump}. *)

val set_causal_source : t -> (unit -> int * int) -> unit
(** Install a thunk returning an attached {!Causal} ring's
    [(overwrites, truncated_slices)] pair; once installed, every
    snapshot's and dump's [data_loss] object reports the pair as
    [causal_overwrites] / [causal_truncated] (both 0 when no source is
    installed). The simulator wires this when a reaction loop carries
    both a monitor and a causal sink. *)

(** {2 Checkpoint write accounting}

    Durable-checkpoint writes are part of the monitored system: their
    count, volume and cost appear in every {!snapshot} under a
    [checkpoint] object, and a failed write — lost recovery data —
    raises the [checkpoint_write_failures] flag in [data_loss]. *)

val checkpoint_written : t -> bytes:int -> seconds:float -> unit

val checkpoint_write_failed : t -> unit

val checkpoint_stats : t -> int * int * float * int
(** [(writes, bytes, seconds, failures)]. *)

(** {2 Inspection} *)

val instants : t -> int
(** Completed instants. *)

val churn_every : t -> int
(** The churn sampling stride the driver should honor (see {!create}). *)

val cum_block_evals : t -> int
val cum_iterations : t -> int
val cum_net_churn : t -> int
val cum_faults : t -> int
val cum_cycles : t -> int

val latency : t -> Sketch.t
val cycles : t -> Sketch.t
val evals : t -> Sketch.t

val recorder : t -> Recorder.t

val spike_count : t -> int
(** Instants whose latency exceeded [spike_factor] × the running EWMA
    (after warmup). *)

val health : t -> health list
(** Blocks that ever faulted (or were quarantined), sorted by name. *)

val snapshot : t -> Json.t
(** The current snapshot object — the same shape the periodic sink
    receives: cumulative counters, sketch quantiles, window aggregates,
    health, and a [data_loss] object (recorder overwrites, sketch
    out-of-range counts, causal-ring overwrites and truncated slices —
    see {!set_causal_source}). *)

val snapshots_emitted : t -> int

val dump : ?last:int -> reason:string -> t -> Json.t
(** Flight-recorder dump with monitor context:
    [{"reason": r, "instant": n, "flight": {...}, "health": [...]}]. *)

val last_dump : t -> Json.t option
(** The most recent dump emitted by {!quarantine}. *)

val reset : t -> unit

(** {2 Checkpoint state}

    What travels in a durable checkpoint: the cumulative counters (the
    resume bit-exactness gate), per-block health, and the
    spike/snapshot counts. The quantile sketches, windows and flight
    ring restart empty on restore — they are bounded-memory summaries
    of the process, not simulation state. *)

val state_json : t -> Json.t
(** Raises [Invalid_argument] when an instant is open. *)

val restore_state : t -> Json.t -> unit
(** {!reset} then restore: the monitor continues as if it had observed
    the checkpointed run. Raises [Invalid_argument] on malformed
    input. *)
