type kind = Eval | Input | Delay | Folded

type 'v event = {
  ev_uid : int;
  ev_instant : int;
  ev_kind : kind;
  ev_block : int;
  ev_tag : string;
  ev_src : int;
  ev_reads : int array;
  ev_write_nets : int array;
  ev_write_values : 'v array;
}

(* The ring holds whole events (an event owns variable-length read and
   write arrays, so a flat interleaved encoding in the Recorder style
   would need its own allocator); the per-evaluation scratch below keeps
   the open event's reads and writes in reused growable buffers so an
   evaluation that commits nothing — the common chaotic re-sweep —
   allocates nothing. *)
type 'v t = {
  c_capacity : int;
  c_n_nets : int;
  c_ring : 'v event option array;
  mutable c_pushed : int;
  mutable c_instant : int;  (* last opened instant; -1 before the first *)
  mutable c_open : bool;
  (* establishing-event uid per net, this instant and the previous one
     (delay bindings read across the boundary) *)
  mutable c_cur : int array;
  mutable c_prev : int array;
  (* open evaluation scratch *)
  mutable c_ev_open : bool;
  mutable c_ev_block : int;
  mutable c_ev_tag : string;
  mutable c_reads : int array;  (* flattened (net, uid) pairs *)
  mutable c_n_reads : int;  (* pairs, not slots *)
  mutable c_w_nets : int array;
  mutable c_w_vals : 'v option array;
  mutable c_n_writes : int;
  mutable c_truncated : int;
}

let create ?(capacity = 65536) ~n_nets () =
  if capacity < 1 then invalid_arg "Causal.create: capacity must be >= 1";
  if n_nets < 0 then invalid_arg "Causal.create: negative net count";
  { c_capacity = capacity;
    c_n_nets = n_nets;
    c_ring = Array.make capacity None;
    c_pushed = 0;
    c_instant = -1;
    c_open = false;
    c_cur = Array.make n_nets (-1);
    c_prev = Array.make n_nets (-1);
    c_ev_open = false;
    c_ev_block = -1;
    c_ev_tag = "";
    c_reads = Array.make 16 0;
    c_n_reads = 0;
    c_w_nets = Array.make 8 0;
    c_w_vals = Array.make 8 None;
    c_n_writes = 0;
    c_truncated = 0 }

let capacity t = t.c_capacity

let n_nets t = t.c_n_nets

(* ------------------------- instant lifecycle ---------------------- *)

let in_instant t = t.c_open

let begin_instant t =
  if t.c_open then invalid_arg "Causal.begin_instant: instant open";
  t.c_open <- true;
  t.c_instant <- t.c_instant + 1;
  let prev = t.c_prev in
  t.c_prev <- t.c_cur;
  Array.fill prev 0 t.c_n_nets (-1);
  t.c_cur <- prev

let end_instant t =
  if not t.c_open then invalid_arg "Causal.end_instant: no instant open";
  if t.c_ev_open then invalid_arg "Causal.end_instant: evaluation open";
  t.c_open <- false

let instant t = if t.c_open then t.c_instant else t.c_instant + 1

(* ----------------------------- recording -------------------------- *)

let push t ev =
  t.c_ring.(t.c_pushed mod t.c_capacity) <- Some ev;
  t.c_pushed <- t.c_pushed + 1

let record_binding t ~kind ~net ?(src = -1) v =
  if not t.c_open then invalid_arg "Causal.record_binding: no instant open";
  if net < 0 || net >= t.c_n_nets then
    invalid_arg "Causal.record_binding: net out of range";
  let uid = t.c_pushed in
  let reads =
    match kind with
    | Delay when src >= 0 -> [| src; t.c_prev.(src) |]
    | _ -> [||]
  in
  push t
    { ev_uid = uid;
      ev_instant = t.c_instant;
      ev_kind = kind;
      ev_block = -1;
      ev_tag = "";
      ev_src = src;
      ev_reads = reads;
      ev_write_nets = [| net |];
      ev_write_values = [| v |] };
  t.c_cur.(net) <- uid

let grow_reads t need =
  if 2 * need > Array.length t.c_reads then begin
    let bigger = Array.make (max (2 * need) (2 * Array.length t.c_reads)) 0 in
    Array.blit t.c_reads 0 bigger 0 (2 * t.c_n_reads);
    t.c_reads <- bigger
  end

let eval_begin t ~block ~reads =
  if not t.c_open then invalid_arg "Causal.eval_begin: no instant open";
  if t.c_ev_open then invalid_arg "Causal.eval_begin: evaluation already open";
  t.c_ev_open <- true;
  t.c_ev_block <- block;
  t.c_ev_tag <- "";
  t.c_n_writes <- 0;
  let n = Array.length reads in
  grow_reads t n;
  t.c_n_reads <- n;
  let dst = t.c_reads and cur = t.c_cur in
  for p = 0 to n - 1 do
    let net = reads.(p) in
    dst.(2 * p) <- net;
    dst.((2 * p) + 1) <- cur.(net)
  done

let eval_write t ~net v =
  if not t.c_ev_open then invalid_arg "Causal.eval_write: no evaluation open";
  let n = t.c_n_writes in
  if n >= Array.length t.c_w_nets then begin
    let cap = 2 * Array.length t.c_w_nets in
    let nets = Array.make cap 0 and vals = Array.make cap None in
    Array.blit t.c_w_nets 0 nets 0 n;
    Array.blit t.c_w_vals 0 vals 0 n;
    t.c_w_nets <- nets;
    t.c_w_vals <- vals
  end;
  t.c_w_nets.(n) <- net;
  t.c_w_vals.(n) <- Some v;
  t.c_n_writes <- n + 1

let set_tag t tag =
  if not t.c_ev_open then invalid_arg "Causal.set_tag: no evaluation open";
  t.c_ev_tag <- tag

let pending_writes t = t.c_n_writes

let pending_tag t = t.c_ev_tag

let eval_commit t =
  if not t.c_ev_open then invalid_arg "Causal.eval_commit: no evaluation open";
  t.c_ev_open <- false;
  let nw = t.c_n_writes in
  if nw > 0 || t.c_ev_tag <> "" then begin
    let uid = t.c_pushed in
    let wnets = Array.sub t.c_w_nets 0 nw in
    let wvals =
      Array.init nw (fun i ->
          match t.c_w_vals.(i) with
          | Some v -> v
          | None -> assert false)
    in
    push t
      { ev_uid = uid;
        ev_instant = t.c_instant;
        ev_kind = Eval;
        ev_block = t.c_ev_block;
        ev_tag = t.c_ev_tag;
        ev_src = -1;
        ev_reads = Array.sub t.c_reads 0 (2 * t.c_n_reads);
        ev_write_nets = wnets;
        ev_write_values = wvals };
    for i = 0 to nw - 1 do
      t.c_cur.(wnets.(i)) <- uid
    done
  end;
  (* release the value pointers so the scratch does not pin them *)
  for i = 0 to nw - 1 do
    t.c_w_vals.(i) <- None
  done;
  t.c_n_writes <- 0;
  t.c_n_reads <- 0

(* -------------------------- loss accounting ----------------------- *)

let pushed t = t.c_pushed

let retained t = min t.c_pushed t.c_capacity

let overwrites t = max 0 (t.c_pushed - t.c_capacity)

let truncated_slices t = t.c_truncated

let data_loss t = (overwrites t, t.c_truncated)

(* ------------------------------ queries --------------------------- *)

let first_retained t = max 0 (t.c_pushed - t.c_capacity)

let find t uid =
  if uid < first_retained t || uid >= t.c_pushed then None
  else
    match t.c_ring.(uid mod t.c_capacity) with
    | Some ev when ev.ev_uid = uid -> Some ev
    | _ -> None

let events ?instant t =
  let acc = ref [] in
  for uid = t.c_pushed - 1 downto first_retained t do
    match find t uid with
    | Some ev when (match instant with None -> true | Some i -> ev.ev_instant = i)
      ->
        acc := ev :: !acc
    | _ -> ()
  done;
  !acc

let writes_net ev net =
  let rec loop i =
    i < Array.length ev.ev_write_nets
    && (ev.ev_write_nets.(i) = net || loop (i + 1))
  in
  loop 0

(* Events are pushed in instant order, so the scan can stop as soon as
   it walks past the target instant. *)
let writer t ~net ~instant =
  let rec loop uid =
    if uid < first_retained t then None
    else
      match find t uid with
      | Some ev when ev.ev_instant < instant -> None
      | Some ev when ev.ev_instant = instant && writes_net ev net -> Some ev
      | _ -> loop (uid - 1)
  in
  loop (t.c_pushed - 1)

type 'v slice = {
  sl_net : int;
  sl_instant : int;
  sl_value : 'v option;
  sl_root : int;
  sl_events : 'v event list;
  sl_bottom : (int * int) list;
  sl_missing : (int * int) list;
  sl_truncated : bool;
}

let value_written ev net =
  let rec loop i =
    if i >= Array.length ev.ev_write_nets then None
    else if ev.ev_write_nets.(i) = net then Some ev.ev_write_values.(i)
    else loop (i + 1)
  in
  loop 0

(* Is the retained window known to be missing events of [instant]? *)
let horizon_hides t inst =
  overwrites t > 0
  &&
  match find t (first_retained t) with
  | Some oldest -> inst <= oldest.ev_instant
  | None -> true

let slice t ~net ~instant =
  let included = Hashtbl.create 32 in
  let bottom = ref [] and missing = ref [] in
  let add_once lst p = if not (List.mem p !lst) then lst := p :: !lst in
  let frontier = Queue.create () in
  let enqueue uid = if not (Hashtbl.mem included uid) then Queue.push uid frontier in
  let root, value =
    match writer t ~net ~instant with
    | Some ev ->
        enqueue ev.ev_uid;
        (ev.ev_uid, value_written ev net)
    | None ->
        if horizon_hides t instant then add_once missing (net, instant)
        else add_once bottom (net, instant);
        (-1, None)
  in
  while not (Queue.is_empty frontier) do
    let uid = Queue.pop frontier in
    if not (Hashtbl.mem included uid) then begin
      match find t uid with
      | None -> ()
      | Some ev ->
          Hashtbl.replace included uid ev;
          let dep_instant =
            match ev.ev_kind with Delay -> ev.ev_instant - 1 | _ -> ev.ev_instant
          in
          let reads = ev.ev_reads in
          for p = 0 to (Array.length reads / 2) - 1 do
            let rnet = reads.(2 * p) and ruid = reads.((2 * p) + 1) in
            if ruid < 0 then
              (* a ⊥ read is a leaf unless the net's value was simply
                 established before the retention horizon *)
              if dep_instant >= 0 && horizon_hides t dep_instant then
                add_once missing (rnet, dep_instant)
              else add_once bottom (rnet, dep_instant)
            else if find t ruid <> None then enqueue ruid
            else add_once missing (rnet, dep_instant)
          done
    end
  done;
  let evs =
    Hashtbl.fold (fun _ ev acc -> ev :: acc) included []
    |> List.sort (fun a b -> compare a.ev_uid b.ev_uid)
  in
  let truncated = !missing <> [] in
  if truncated then t.c_truncated <- t.c_truncated + 1;
  { sl_net = net;
    sl_instant = instant;
    sl_value = value;
    sl_root = root;
    sl_events = evs;
    sl_bottom = List.rev !bottom;
    sl_missing = List.rev !missing;
    sl_truncated = truncated }

(* ---------------------- restoration / serialization --------------- *)

let restore ?capacity ~n_nets evs =
  let max_uid = List.fold_left (fun m ev -> max m ev.ev_uid) (-1) evs in
  let cap =
    match capacity with Some c -> c | None -> max 1 (max_uid + 1)
  in
  let t = create ~capacity:cap ~n_nets () in
  List.iter (fun ev -> t.c_ring.(ev.ev_uid mod cap) <- Some ev) evs;
  t.c_pushed <- max_uid + 1;
  t.c_instant <- List.fold_left (fun m ev -> max m ev.ev_instant) (-1) evs;
  t

(* [restore] rebuilds a log for querying only: the per-net writer
   registers stay at -1, so recording could not continue correctly (the
   first resumed instant's delay bindings would read uid -1, and the
   live registers may reference evicted events the ring no longer
   holds). A [state] carries those registers explicitly, which is what
   makes a checkpointed log *continuable* — the resumed recording
   produces uids and read edges bit-identical to the uninterrupted
   run's. *)

type 'v state = {
  st_capacity : int;
  st_pushed : int;
  st_instant : int;
  st_truncated : int;
  st_writers : int array;
  st_events : 'v event list;
}

let export_state t =
  if t.c_open then invalid_arg "Causal.export_state: instant open";
  { st_capacity = t.c_capacity;
    st_pushed = t.c_pushed;
    st_instant = t.c_instant;
    st_truncated = t.c_truncated;
    st_writers = Array.copy t.c_cur;
    st_events = events t }

let of_state st =
  if st.st_capacity < 1 then
    invalid_arg "Causal.of_state: capacity must be >= 1";
  let n_nets = Array.length st.st_writers in
  let t = create ~capacity:st.st_capacity ~n_nets () in
  List.iter
    (fun ev -> t.c_ring.(ev.ev_uid mod st.st_capacity) <- Some ev)
    st.st_events;
  t.c_pushed <- st.st_pushed;
  t.c_instant <- st.st_instant;
  t.c_truncated <- st.st_truncated;
  Array.blit st.st_writers 0 t.c_cur 0 n_nets;
  t

let kind_name = function
  | Eval -> "eval"
  | Input -> "input"
  | Delay -> "delay"
  | Folded -> "folded"

let kind_of_name = function
  | "eval" -> Eval
  | "input" -> Input
  | "delay" -> Delay
  | "folded" -> Folded
  | s -> invalid_arg ("Causal.kind_of_name: " ^ s)

let event_json ~render ev =
  let reads =
    List.init
      (Array.length ev.ev_reads / 2)
      (fun p ->
        Json.List
          [ Json.Int ev.ev_reads.(2 * p); Json.Int ev.ev_reads.((2 * p) + 1) ])
  in
  let writes =
    List.init (Array.length ev.ev_write_nets) (fun i ->
        Json.List
          [ Json.Int ev.ev_write_nets.(i); render ev.ev_write_values.(i) ])
  in
  Json.Obj
    ([ ("uid", Json.Int ev.ev_uid);
       ("instant", Json.Int ev.ev_instant);
       ("kind", Json.Str (kind_name ev.ev_kind));
       ("block", Json.Int ev.ev_block) ]
    @ (if ev.ev_tag = "" then [] else [ ("tag", Json.Str ev.ev_tag) ])
    @ (if ev.ev_src < 0 then [] else [ ("src", Json.Int ev.ev_src) ])
    @ [ ("reads", Json.List reads); ("writes", Json.List writes) ])

let event_of_json ~unrender j =
  let get k =
    match Json.member k j with
    | Some v -> v
    | None -> invalid_arg ("Causal.event_of_json: missing " ^ k)
  in
  let int k = match get k with Json.Int n -> n | _ -> invalid_arg k in
  let opt_int k d = match Json.member k j with Some (Json.Int n) -> n | _ -> d in
  let reads =
    match get "reads" with
    | Json.List pairs ->
        let a = Array.make (2 * List.length pairs) 0 in
        List.iteri
          (fun p pair ->
            match pair with
            | Json.List [ Json.Int net; Json.Int uid ] ->
                a.(2 * p) <- net;
                a.((2 * p) + 1) <- uid
            | _ -> invalid_arg "Causal.event_of_json: bad read")
          pairs;
        a
    | _ -> invalid_arg "Causal.event_of_json: reads"
  in
  let wnets, wvals =
    match get "writes" with
    | Json.List ws ->
        let n = List.length ws in
        let nets = Array.make n 0 in
        let vals =
          Array.init n (fun i ->
              match List.nth ws i with
              | Json.List [ Json.Int net; v ] ->
                  nets.(i) <- net;
                  unrender v
              | _ -> invalid_arg "Causal.event_of_json: bad write")
        in
        (nets, vals)
    | _ -> invalid_arg "Causal.event_of_json: writes"
  in
  { ev_uid = int "uid";
    ev_instant = int "instant";
    ev_kind =
      (match get "kind" with
      | Json.Str s -> kind_of_name s
      | _ -> invalid_arg "Causal.event_of_json: kind");
    ev_block = int "block";
    ev_tag =
      (match Json.member "tag" j with Some (Json.Str s) -> s | _ -> "");
    ev_src = opt_int "src" (-1);
    ev_reads = reads;
    ev_write_nets = wnets;
    ev_write_values = wvals }

let events_json ~render t =
  Json.Obj
    [ ("capacity", Json.Int t.c_capacity);
      ("pushed", Json.Int t.c_pushed);
      ("overwrites", Json.Int (overwrites t));
      ("truncated_slices", Json.Int t.c_truncated);
      ("events", Json.List (List.map (event_json ~render) (events t))) ]

let slice_json ~render sl =
  let pair (net, inst) =
    Json.Obj [ ("net", Json.Int net); ("instant", Json.Int inst) ]
  in
  Json.Obj
    [ ("net", Json.Int sl.sl_net);
      ("instant", Json.Int sl.sl_instant);
      ( "value",
        match sl.sl_value with Some v -> render v | None -> Json.Null );
      ("root", Json.Int sl.sl_root);
      ("events", Json.List (List.map (event_json ~render) sl.sl_events));
      ("bottom", Json.List (List.map pair sl.sl_bottom));
      ("missing", Json.List (List.map pair sl.sl_missing));
      ("truncated", Json.Bool sl.sl_truncated) ]
