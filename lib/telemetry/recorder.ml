type record = {
  r_instant : int;
  r_cycles : int;
  r_iterations : int;
  r_block_evals : int;
  r_net_churn : int;
  r_faults : int;
}

(* The ring is a flat int array, [fields] interleaved slots per record:
   a push on the always-on path is six stores into one or two cache
   lines and allocates nothing (a [record array] ring would allocate a
   block per instant and have every surviving record copied out of the
   minor heap by each collection). *)
let fields = 6

type t = {
  g_data : int array;
  g_capacity : int;
  mutable g_pushed : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
  { g_data = Array.make (fields * capacity) 0; g_capacity = capacity; g_pushed = 0 }

let capacity t = t.g_capacity

let push_values t ~instant ~cycles ~iterations ~block_evals ~net_churn ~faults =
  let base = fields * (t.g_pushed mod t.g_capacity) in
  let d = t.g_data in
  d.(base) <- instant;
  d.(base + 1) <- cycles;
  d.(base + 2) <- iterations;
  d.(base + 3) <- block_evals;
  d.(base + 4) <- net_churn;
  d.(base + 5) <- faults;
  t.g_pushed <- t.g_pushed + 1

let push t r =
  push_values t ~instant:r.r_instant ~cycles:r.r_cycles
    ~iterations:r.r_iterations ~block_evals:r.r_block_evals
    ~net_churn:r.r_net_churn ~faults:r.r_faults

let size t = min t.g_pushed t.g_capacity

let pushed t = t.g_pushed

let overwrites t = max 0 (t.g_pushed - t.g_capacity)

let record_at t slot =
  let base = fields * slot in
  let d = t.g_data in
  { r_instant = d.(base);
    r_cycles = d.(base + 1);
    r_iterations = d.(base + 2);
    r_block_evals = d.(base + 3);
    r_net_churn = d.(base + 4);
    r_faults = d.(base + 5) }

let records ?last t =
  let n = size t in
  let n = match last with Some k when k < n -> max 0 k | _ -> n in
  List.init n (fun k -> record_at t ((t.g_pushed - n + k) mod t.g_capacity))

let record_to_json r =
  Json.Obj
    [ ("instant", Json.Int r.r_instant);
      ("cycles", Json.Int r.r_cycles);
      ("iterations", Json.Int r.r_iterations);
      ("block_evals", Json.Int r.r_block_evals);
      ("net_churn", Json.Int r.r_net_churn);
      ("faults", Json.Int r.r_faults) ]

let dump ?last t =
  Json.Obj
    [ ("capacity", Json.Int t.g_capacity);
      ("pushed", Json.Int t.g_pushed);
      ("overwrites", Json.Int (overwrites t));
      ("records", Json.List (List.map record_to_json (records ?last t))) ]

let clear t = t.g_pushed <- 0
