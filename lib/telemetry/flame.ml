let collapse ?(cat = "method") reg =
  let all = Registry.spans reg in
  let by_id = Hashtbl.create 256 in
  List.iter (fun (s : Registry.span) -> Hashtbl.replace by_id s.sp_id s) all;
  let matching (s : Registry.span) = s.sp_closed && String.equal s.sp_cat cat in
  (* Nearest enclosing span of the same category, skipping over spans of
     other categories (e.g. a method span opened inside an iteration
     span still stacks under the enclosing method). *)
  let rec ancestor (s : Registry.span) =
    if s.sp_parent < 0 then None
    else
      match Hashtbl.find_opt by_id s.sp_parent with
      | None -> None
      | Some p -> if matching p then Some p else ancestor p
  in
  let stacks = Hashtbl.create 256 in
  let rec stack_of (s : Registry.span) =
    match Hashtbl.find_opt stacks s.sp_id with
    | Some st -> st
    | None ->
        let st =
          match ancestor s with
          | None -> s.sp_name
          | Some p -> stack_of p ^ ";" ^ s.sp_name
        in
        Hashtbl.replace stacks s.sp_id st;
        st
  in
  let dur (s : Registry.span) = int_of_float (s.sp_stop -. s.sp_start) in
  let child_time = Hashtbl.create 256 in
  List.iter
    (fun s ->
      if matching s then
        match ancestor s with
        | None -> ()
        | Some p ->
            let sofar =
              Option.value ~default:0 (Hashtbl.find_opt child_time p.sp_id)
            in
            Hashtbl.replace child_time p.sp_id (sofar + dur s))
    all;
  let weights = Hashtbl.create 256 in
  List.iter
    (fun s ->
      if matching s then begin
        let children =
          Option.value ~default:0 (Hashtbl.find_opt child_time s.sp_id)
        in
        let self = dur s - children in
        if self <> 0 then
          let st = stack_of s in
          let sofar = Option.value ~default:0 (Hashtbl.find_opt weights st) in
          Hashtbl.replace weights st (sofar + self)
      end)
    all;
  Hashtbl.fold (fun st w acc -> (st, w) :: acc) weights []
  |> List.filter (fun (_, w) -> w <> 0)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_string rows =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (stack, w) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" stack w))
    rows;
  Buffer.contents buf

let parse s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else
           match String.rindex_opt line ' ' with
           | None -> failwith (Printf.sprintf "flame: malformed line %S" line)
           | Some i -> (
               let stack = String.sub line 0 i in
               let num = String.sub line (i + 1) (String.length line - i - 1) in
               match int_of_string_opt num with
               | Some w -> Some (stack, w)
               | None ->
                   failwith (Printf.sprintf "flame: malformed line %S" line)))
