type value = Bits of string | Real of float | Str of string

type kind = Wire of int | Real_kind | String_kind

type signal = { name : string; kind : kind }

(* Identifier codes run over the printable ASCII range '!'..'~' (94
   characters), extending to multiple characters past 93 signals. *)
let id_code i =
  let buf = Buffer.create 2 in
  let rec go i =
    Buffer.add_char buf (Char.chr (33 + (i mod 94)));
    if i >= 94 then go ((i / 94) - 1)
  in
  go i;
  Buffer.contents buf

let sanitize s =
  String.map (function ' ' | '\t' | '\n' | '\r' -> '_' | c -> c) s

let format_value kind code v =
  match (kind, v) with
  | Wire 1, Bits b when String.length b = 1 -> b ^ code
  | Wire 1, _ -> "x" ^ code
  | Wire _, Bits b -> "b" ^ b ^ " " ^ code
  | Wire _, _ -> "bx " ^ code
  | Real_kind, Real f -> Printf.sprintf "r%.16g %s" f code
  | Real_kind, _ -> "r0 " ^ code
  | String_kind, Str s -> "s" ^ sanitize s ^ " " ^ code
  | String_kind, Bits b -> "s" ^ sanitize b ^ " " ^ code
  | String_kind, Real f -> Printf.sprintf "s%.16g %s" f code

let var_decl kind code name =
  match kind with
  | Wire w -> Printf.sprintf "$var wire %d %s %s $end" w code (sanitize name)
  | Real_kind -> Printf.sprintf "$var real 64 %s %s $end" code (sanitize name)
  | String_kind -> Printf.sprintf "$var string 1 %s %s $end" code (sanitize name)

let dump ?(timescale = "1 us") ?(scope = "asr") signals =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "$timescale %s $end" timescale;
  line "$scope module %s $end" scope;
  List.iteri
    (fun i ({ name; kind }, _) -> line "%s" (var_decl kind (id_code i) name))
    signals;
  line "$upscope $end";
  line "$enddefinitions $end";
  let n_instants =
    List.fold_left (fun acc (_, vs) -> max acc (List.length vs)) 0 signals
  in
  let arrays =
    List.map (fun ({ kind; _ }, vs) -> (kind, Array.of_list vs)) signals
  in
  let value_at (kind, a) t =
    if t < Array.length a then a.(t)
    else match kind with Real_kind -> Real 0.0 | _ -> Bits "x"
  in
  for t = 0 to n_instants - 1 do
    line "#%d" t;
    if t = 0 then begin
      line "$dumpvars";
      List.iteri
        (fun i (kind, _ as sig_) ->
          line "%s" (format_value kind (id_code i) (value_at sig_ 0)))
        arrays;
      line "$end"
    end
    else
      List.iteri
        (fun i (kind, _ as sig_) ->
          let v = value_at sig_ t in
          if v <> value_at sig_ (t - 1) then
            line "%s" (format_value kind (id_code i) v))
        arrays
  done;
  line "#%d" n_instants;
  Buffer.contents buf
