type instant = { label : string; mutable subs : instant list }

type t = {
  tab : Mj.Symtab.t;
  heap : Heap.t;
  statics : (string * string, Value.t) Hashtbl.t;
  cost : Cost.t;
  console : Buffer.t;
  asr_ports : (int, ports) Hashtbl.t;
  mutable instant_stack : instant list;
  root : instant;
  mutable invoke_run : Value.t -> unit;
  mutable call_depth : int;
  mutable max_call_depth : int;
}

and ports = {
  mutable n_in : int;
  mutable n_out : int;
  mutable inputs : Value.t option array;
  mutable outputs : Value.t option array;
}

let fail fmt = Format.kasprintf (fun m -> raise (Heap.Runtime_error m)) fmt

let create ?(tariff = Cost.interpreter_tariff) ?sink ?lines tab =
  let root = { label = "<root>"; subs = [] } in
  let t =
    { tab; heap = Heap.create (); statics = Hashtbl.create 64;
      cost = Cost.create ?sink ?lines tariff; console = Buffer.create 256;
      asr_ports = Hashtbl.create 8; instant_stack = [ root ]; root;
      invoke_run = (fun _ -> fail "no engine installed for Thread.start");
      call_depth = 0; max_call_depth = 4096 }
  in
  List.iter
    (fun (cls, f) ->
      Hashtbl.replace t.statics (cls, f.Mj.Ast.f_name) (Value.default f.Mj.Ast.f_ty))
    (Mj.Symtab.static_fields tab);
  Heap.set_gc_hook t.heap (fun ~live_words -> Cost.gc t.cost ~live_words);
  Heap.set_trap_hook t.heap (fun () -> Cost.bounds_trap t.cost);
  t

let enter_frame t =
  t.call_depth <- t.call_depth + 1;
  if t.call_depth > t.max_call_depth then begin
    t.call_depth <- 0;
    fail "stack overflow: call depth exceeded %d frames" t.max_call_depth
  end

let leave_frame t = t.call_depth <- max 0 (t.call_depth - 1)

let as_int = function
  | Value.Int n -> n
  | v -> fail "expected an int, found %s" (Value.to_display v)

let as_double = function
  | Value.Double f -> f
  | Value.Int n -> float_of_int n
  | v -> fail "expected a double, found %s" (Value.to_display v)

let as_bool = function
  | Value.Bool b -> b
  | v -> fail "expected a boolean, found %s" (Value.to_display v)

let coerce ty v =
  match (ty, v) with
  | Mj.Ast.TDouble, Value.Int n -> Value.Double (float_of_int n)
  | _, v -> v

let static_get t cls fname =
  match Hashtbl.find_opt t.statics (cls, fname) with
  | Some v -> v
  | None -> fail "no static field %s.%s" cls fname

let static_set t cls fname v = Hashtbl.replace t.statics (cls, fname) v

let ports_state t recv =
  let r = Heap.deref t.heap recv in
  match Hashtbl.find_opt t.asr_ports r with
  | Some p -> p
  | None ->
      let p = { n_in = 0; n_out = 0; inputs = [||]; outputs = [||] } in
      Hashtbl.replace t.asr_ports r p;
      p

(* Schedule-seeded trace capture: port accesses performed while the
   thread scheduler is tracing are recorded as events, in schedule
   order. The refinement checker's abstraction function rebuilds an
   instant's outputs from these events (last write per port), so array
   contents are snapshotted at access time — a later in-place update of
   the array must not retroactively change the recorded event. *)
let render_port_value t v =
  match v with
  | Value.Ref _ -> (
      try
        let r = Heap.deref t.heap v in
        let n = Heap.array_length t.heap r in
        let b = Buffer.create ((n * 4) + 2) in
        Buffer.add_char b '[';
        for i = 0 to n - 1 do
          if i > 0 then Buffer.add_char b ';';
          Buffer.add_string b (Value.to_display (Heap.array_get t.heap r i))
        done;
        Buffer.add_char b ']';
        Buffer.contents b
      with Heap.Runtime_error _ -> Value.to_display v)
  | v -> Value.to_display v

let note_port t fmt_name port v =
  if Threads.tracing () then
    Threads.note
      (Printf.sprintf "%s(%d, %s)" fmt_name port (render_port_value t v))

let native_call t ~defining ~mname recv args =
  Cost.enter_method_in t.cost defining mname;
  Fun.protect ~finally:(fun () -> Cost.leave_method t.cost) @@ fun () ->
  Cost.native t.cost;
  match (defining, mname, args) with
  | "Math", "sqrt", [ x ] -> Value.Double (sqrt (as_double x))
  | "Math", "sin", [ x ] -> Value.Double (sin (as_double x))
  | "Math", "cos", [ x ] -> Value.Double (cos (as_double x))
  | "Math", "floor", [ x ] -> Value.Double (floor (as_double x))
  | "Math", "ceil", [ x ] -> Value.Double (ceil (as_double x))
  | "Math", "pow", [ x; y ] -> Value.Double (Float.pow (as_double x) (as_double y))
  | "Math", "abs", [ x ] -> Value.Double (Float.abs (as_double x))
  | "Math", "iabs", [ x ] -> Value.Int (abs (as_int x))
  | "Math", "round", [ x ] ->
      Value.Int (Value.wrap32 (int_of_float (Float.round (as_double x))))
  | "Math", "min", [ x; y ] -> Value.Int (min (as_int x) (as_int y))
  | "Math", "max", [ x; y ] -> Value.Int (max (as_int x) (as_int y))
  | "PrintStream", "println", [ v ] ->
      Buffer.add_string t.console (Value.to_display v);
      Buffer.add_char t.console '\n';
      Value.Null
  | "PrintStream", "print", [ v ] ->
      Buffer.add_string t.console (Value.to_display v);
      Value.Null
  | "System", "currentTimeMillis", [] ->
      (* Deterministic pseudo-time derived from the cost model. *)
      Value.Int (Value.wrap32 (Cost.cycles t.cost / 100_000))
  | "Thread", "start", [] ->
      let r = Heap.deref t.heap recv in
      if Threads.active () then
        Effect.perform (Threads.Spawn (r, fun () -> t.invoke_run recv))
      else
        (* Without a scheduler, start() degrades to a synchronous call. *)
        t.invoke_run recv;
      Value.Null
  | "Thread", "join", [] ->
      let r = Heap.deref t.heap recv in
      if Threads.active () then Effect.perform (Threads.Join r);
      Value.Null
  | "Thread", "yield", [] ->
      Threads.maybe_yield ();
      Value.Null
  | "ASR", "declarePorts", [ n_in; n_out ] ->
      let p = ports_state t recv in
      p.n_in <- as_int n_in;
      p.n_out <- as_int n_out;
      p.inputs <- Array.make (as_int n_in) None;
      p.outputs <- Array.make (as_int n_out) None;
      Value.Null
  | "ASR", "portCount", [ dir ] ->
      let p = ports_state t recv in
      Value.Int (if as_int dir = 0 then p.n_in else p.n_out)
  | "ASR", "readPort", [ port ] -> (
      let p = ports_state t recv in
      let i = as_int port in
      if i < 0 || i >= Array.length p.inputs then fail "no input port %d" i;
      match p.inputs.(i) with
      | Some (Value.Int n) ->
          note_port t "readPort" i (Value.Int n);
          Value.Int n
      | Some v -> fail "input port %d holds %s, not an int" i (Value.to_display v)
      | None ->
          note_port t "readPort" i (Value.Int 0);
          Value.Int 0)
  | "ASR", "readPortArray", [ port ] -> (
      let p = ports_state t recv in
      let i = as_int port in
      if i < 0 || i >= Array.length p.inputs then fail "no input port %d" i;
      match p.inputs.(i) with
      | Some (Value.Ref _ as v) ->
          note_port t "readPortArray" i v;
          v
      | Some v -> fail "input port %d holds %s, not an array" i (Value.to_display v)
      | None ->
          note_port t "readPortArray" i Value.Null;
          Value.Null)
  | "ASR", "portPresent", [ port ] ->
      let p = ports_state t recv in
      let i = as_int port in
      Value.Bool (i >= 0 && i < Array.length p.inputs && p.inputs.(i) <> None)
  | "ASR", "writePort", [ port; v ] ->
      let p = ports_state t recv in
      let i = as_int port in
      if i < 0 || i >= Array.length p.outputs then fail "no output port %d" i;
      p.outputs.(i) <- Some v;
      note_port t "writePort" i v;
      Value.Null
  | "ASR", "writePortArray", [ port; v ] ->
      let p = ports_state t recv in
      let i = as_int port in
      if i < 0 || i >= Array.length p.outputs then fail "no output port %d" i;
      p.outputs.(i) <- Some v;
      note_port t "writePortArray" i v;
      Value.Null
  | "JTime", "enterInstant", [ label ] -> (
      let node = { label = Value.to_display label; subs = [] } in
      match t.instant_stack with
      | top :: _ ->
          top.subs <- top.subs @ [ node ];
          t.instant_stack <- node :: t.instant_stack;
          Value.Null
      | [] -> fail "instant stack underflow")
  | "JTime", "exitInstant", [] -> (
      match t.instant_stack with
      | _ :: (_ :: _ as rest) ->
          t.instant_stack <- rest;
          Value.Null
      | _ -> fail "exitInstant without matching enterInstant")
  | cls, name, _ -> fail "unimplemented native method %s.%s" cls name

let ports_of t recv =
  let p = ports_state t recv in
  (p.n_in, p.n_out)

let set_input t recv port v =
  let p = ports_state t recv in
  if port < 0 || port >= Array.length p.inputs then fail "no input port %d" port;
  p.inputs.(port) <- v

let output_port t recv port =
  let p = ports_state t recv in
  if port < 0 || port >= Array.length p.outputs then fail "no output port %d" port;
  p.outputs.(port)

let clear_io t recv =
  let p = ports_state t recv in
  Array.fill p.inputs 0 (Array.length p.inputs) None;
  Array.fill p.outputs 0 (Array.length p.outputs) None

let instant_root t = t.root

let reset_instants t =
  t.root.subs <- [];
  t.instant_stack <- [ t.root ]

let int_array t v =
  let r = Heap.deref t.heap v in
  Array.init (Heap.array_length t.heap r) (fun i ->
      as_int (Heap.array_get t.heap r i))

let make_int_array t contents =
  let v = Heap.alloc_array t.heap ~elem:Mj.Ast.TInt (Array.length contents) in
  let r = Heap.deref t.heap v in
  Array.iteri (fun i n -> Heap.array_set t.heap r i (Value.Int n)) contents;
  v
