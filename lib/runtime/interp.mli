(** Reference interpreter for checked MJ programs (big-step).

    Deterministic except when a {!Threads} scheduler is active, in which
    case statement interleaving follows the scheduler's policy — the
    paper's Fig. 6/8 nondeterminism. Shares all machine state (heap,
    statics, cost, console, ASR ports, instants) with the other engines
    through {!Machine}. *)

type t

val create :
  ?tariff:Cost.tariff ->
  ?sink:Cost.sink ->
  ?lines:Telemetry.Lines.t ->
  Mj.Typecheck.checked ->
  t
(** Build a session: allocates static storage and runs static field
    initializers ("loading, linking and initialization"). [sink]
    observes every cycle from creation on (see {!Cost.sink}); [lines]
    likewise receives an exact per-source-line attribution, driven by
    the AST locations the evaluator walks. *)

val machine : t -> Machine.t

val symtab : t -> Mj.Symtab.t

val heap : t -> Heap.t

val cycles : t -> int

val reset_cycles : t -> unit

val output : t -> string

val clear_output : t -> unit

val new_instance : t -> string -> Value.t list -> Value.t

val call : t -> Value.t -> string -> Value.t list -> Value.t
(** Dynamically-dispatched instance method call. *)

val call_static : t -> string -> string -> Value.t list -> Value.t

val run_main : t -> string -> unit
(** Invoke the static void [main()] method of a class. *)
