(** Deep machine-state snapshots: the durable half of checkpointing.

    A snapshot captures everything an elaborated reaction's behavior can
    depend on — the complete {!Heap} (via {!Heap.snapshot}), static
    storage, ASR port states, console contents, and the {!Cost} meter —
    and restores it bit-exactly, in process (re-application-safe
    reactions) or across a process boundary (the JSON codec, used by
    durable checkpoint artifacts). Doubles ride through JSON as IEEE-754
    bit patterns ({!Telemetry.Json.float_bits}), so restore is exact for
    NaN payloads and [-0.0] too.

    Not captured: the instant log (a diagnostic trace, not reaction
    state), engine wiring (sinks, line tables, hooks — attached at
    machine creation), and the symbol table (reconstructed by
    re-elaborating the same program). {!restore} targets a machine built
    from the same program as the one captured. *)

type t

val capture : Machine.t -> t
(** Deep copy: later machine mutation never shows through. *)

val restore : t -> Machine.t -> unit
(** Restore into [m]: heap, statics, ports, console and cycle meter
    become bit-identical to the captured moment. Reusable — the same
    snapshot can be restored any number of times. *)

val to_json : t -> Telemetry.Json.t

val of_json : Telemetry.Json.t -> t
(** Inverse of {!to_json}; raises [Invalid_argument] on malformed
    input. *)

val value_json : Value.t -> Telemetry.Json.t
(** Bit-exact {!Value.t} codec ([Double] carries its IEEE-754 bit
    pattern; [Ref] serializes as its heap index). *)

val value_of_json : Telemetry.Json.t -> Value.t
