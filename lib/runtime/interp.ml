open Mj.Ast

type t = Machine.t

type frame = {
  locals : (string, Value.t) Hashtbl.t;
  local_types : (string, ty) Hashtbl.t;
  this : Value.t;
  cls : string; (* statically enclosing class, for super dispatch *)
}

exception Return_from_method of Value.t

exception Break_loop

exception Continue_loop

let fail = Machine.fail

let machine t = t

let symtab (t : t) = t.Machine.tab

let heap (t : t) = t.Machine.heap

let cycles (t : t) = Cost.cycles t.Machine.cost

let reset_cycles (t : t) = Cost.reset t.Machine.cost

let output (t : t) = Buffer.contents t.Machine.console

let clear_output (t : t) = Buffer.clear t.Machine.console

let coerce = Machine.coerce

let as_int = Machine.as_int

let as_double = Machine.as_double

let as_bool = Machine.as_bool

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let int_binop op x y =
  let w = Value.wrap32 in
  match op with
  | Add -> Value.Int (w (x + y))
  | Sub -> Value.Int (w (x - y))
  | Mul -> Value.Int (w (x * y))
  | Div -> if y = 0 then fail "division by zero" else Value.Int (w (x / y))
  | Mod -> if y = 0 then fail "division by zero" else Value.Int (w (x mod y))
  | Band -> Value.Int (x land y)
  | Bor -> Value.Int (x lor y)
  | Bxor -> Value.Int (x lxor y)
  | Shl -> Value.Int (w (x lsl (y land 31)))
  | Shr -> Value.Int (x asr (y land 31))
  | Lt -> Value.Bool (x < y)
  | Gt -> Value.Bool (x > y)
  | Le -> Value.Bool (x <= y)
  | Ge -> Value.Bool (x >= y)
  | Eq -> Value.Bool (x = y)
  | Neq -> Value.Bool (x <> y)
  | And | Or -> fail "boolean operator on ints"

let double_binop op x y =
  match op with
  | Add -> Value.Double (x +. y)
  | Sub -> Value.Double (x -. y)
  | Mul -> Value.Double (x *. y)
  | Div -> Value.Double (x /. y)
  | Lt -> Value.Bool (x < y)
  | Gt -> Value.Bool (x > y)
  | Le -> Value.Bool (x <= y)
  | Ge -> Value.Bool (x >= y)
  | Eq -> Value.Bool (Float.equal x y)
  | Neq -> Value.Bool (not (Float.equal x y))
  | Mod | Band | Bor | Bxor | Shl | Shr | And | Or ->
      fail "operator not defined on doubles"

let eval_binop op x y =
  match (op, x, y) with
  | Add, Value.Str s, v -> Value.Str (s ^ Value.to_display v)
  | Add, v, Value.Str s -> Value.Str (Value.to_display v ^ s)
  | _, Value.Int a, Value.Int b -> int_binop op a b
  | _, (Value.Double _ | Value.Int _), (Value.Double _ | Value.Int _) ->
      double_binop op (as_double x) (as_double y)
  | (Eq | Neq), _, _ ->
      let same = Value.equal x y in
      Value.Bool (if op = Eq then same else not same)
  | _, _, _ ->
      fail "invalid operands for '%s': %s, %s" (binop_to_string op)
        (Value.to_display x) (Value.to_display y)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec eval_expr (t : t) frame e =
  Cost.at_line t.Machine.cost e.eloc;
  Cost.dispatch t.Machine.cost;
  match e.expr with
  | Int_lit n -> Value.Int (Value.wrap32 n)
  | Double_lit f -> Value.Double f
  | Bool_lit b -> Value.Bool b
  | String_lit s -> Value.Str s
  | Null_lit -> Value.Null
  | This -> frame.this
  | Local name | Name name -> (
      Cost.load_store t.Machine.cost;
      match Hashtbl.find_opt frame.locals name with
      | Some v -> v
      | None -> fail "unbound local '%s'" name)
  | Field_access (o, fname) ->
      Cost.field t.Machine.cost;
      let r = Heap.deref t.Machine.heap (eval_expr t frame o) in
      Heap.get_field t.Machine.heap r fname
  | Static_field (cls, fname) ->
      Cost.field t.Machine.cost;
      if Threads.active () then
        Threads.note (Printf.sprintf "read %s.%s" cls fname);
      Machine.static_get t cls fname
  | Array_length o ->
      Cost.field t.Machine.cost;
      let r = Heap.deref t.Machine.heap (eval_expr t frame o) in
      Value.Int (Heap.array_length t.Machine.heap r)
  | Index (arr, idx) ->
      Cost.array t.Machine.cost;
      let r = Heap.deref t.Machine.heap (eval_expr t frame arr) in
      let i = as_int (eval_expr t frame idx) in
      Heap.array_get t.Machine.heap r i
  | Call call -> eval_call t frame e.eloc call
  | New_object (cls, args) ->
      let args = List.map (eval_expr t frame) args in
      construct t cls args
  | New_array (elem, dims) ->
      let dims = List.map (fun d -> as_int (eval_expr t frame d)) dims in
      alloc_multi t elem dims
  | Unary (Neg, x) -> (
      Cost.arith t.Machine.cost;
      match eval_expr t frame x with
      | Value.Int n -> Value.Int (Value.wrap32 (-n))
      | Value.Double f -> Value.Double (-.f)
      | v -> fail "unary '-' on %s" (Value.to_display v))
  | Unary (Not, x) ->
      Cost.arith t.Machine.cost;
      Value.Bool (not (as_bool (eval_expr t frame x)))
  | Binary (And, x, y) ->
      Cost.arith t.Machine.cost;
      if as_bool (eval_expr t frame x) then eval_expr t frame y
      else Value.Bool false
  | Binary (Or, x, y) ->
      Cost.arith t.Machine.cost;
      if as_bool (eval_expr t frame x) then Value.Bool true
      else eval_expr t frame y
  | Binary (op, x, y) ->
      Cost.arith t.Machine.cost;
      let xv = eval_expr t frame x in
      let yv = eval_expr t frame y in
      eval_binop op xv yv
  | Assign (lv, rhs) ->
      let slot = eval_slot t frame lv in
      let v = eval_expr t frame rhs in
      write_slot t frame slot v
  | Op_assign (op, lv, rhs) ->
      let slot = eval_slot t frame lv in
      let old_v = read_slot t frame slot in
      let v = eval_binop op old_v (eval_expr t frame rhs) in
      (* Compound assignment narrows back to the target's type. *)
      let v =
        match (old_v, v) with
        | Value.Int _, Value.Double f -> Value.Int (Value.wrap32 (int_of_float f))
        | _, v -> v
      in
      write_slot t frame slot v
  | Pre_incr (d, lv) ->
      let slot = eval_slot t frame lv in
      let v = Value.Int (Value.wrap32 (as_int (read_slot t frame slot) + d)) in
      write_slot t frame slot v
  | Post_incr (d, lv) ->
      let slot = eval_slot t frame lv in
      let old_v = read_slot t frame slot in
      let v = Value.Int (Value.wrap32 (as_int old_v + d)) in
      ignore (write_slot t frame slot v);
      old_v
  | Cast (ty, x) -> (
      Cost.arith t.Machine.cost;
      let v = eval_expr t frame x in
      match (ty, v) with
      | TInt, Value.Double f -> Value.Int (Value.wrap32 (int_of_float f))
      | TInt, Value.Int n -> Value.Int n
      | TDouble, v -> Value.Double (as_double v)
      | TClass target, (Value.Ref r as v) ->
          let dyn = Heap.object_class t.Machine.heap r in
          if Mj.Symtab.is_subclass t.Machine.tab ~sub:dyn ~super:target then v
          else fail "class cast exception: %s is not a %s" dyn target
      | (TClass _ | TArray _ | TString), Value.Null -> Value.Null
      | _, v -> v)
  | Cond (c, a, b) ->
      Cost.arith t.Machine.cost;
      if as_bool (eval_expr t frame c) then eval_expr t frame a
      else eval_expr t frame b

and alloc_multi (t : t) elem dims =
  Cost.alloc t.Machine.cost ~words:(match dims with d :: _ -> d | [] -> 0);
  match dims with
  | [] -> fail "array without dimensions"
  | [ n ] -> Heap.alloc_array t.Machine.heap ~elem n
  | n :: rest ->
      let sub_ty = List.fold_left (fun ty _ -> TArray ty) elem rest in
      let arr = Heap.alloc_array t.Machine.heap ~elem:sub_ty n in
      let r = Heap.deref t.Machine.heap arr in
      for i = 0 to n - 1 do
        Heap.array_set t.Machine.heap r i (alloc_multi t elem rest)
      done;
      arr

(* ------------------------------------------------------------------ *)
(* Lvalue slots                                                        *)
(* ------------------------------------------------------------------ *)

and eval_slot t frame = function
  | Lname name | Llocal name -> `Local name
  | Lfield (o, fname) ->
      let r = Heap.deref t.Machine.heap (eval_expr t frame o) in
      `Field (r, fname)
  | Lstatic_field (cls, fname) -> `Static (cls, fname)
  | Lindex (arr, idx) ->
      let r = Heap.deref t.Machine.heap (eval_expr t frame arr) in
      let i = as_int (eval_expr t frame idx) in
      `Array (r, i)

and read_slot (t : t) frame = function
  | `Local name -> (
      Cost.load_store t.Machine.cost;
      match Hashtbl.find_opt frame.locals name with
      | Some v -> v
      | None -> fail "unbound local '%s'" name)
  | `Field (r, fname) ->
      Cost.field t.Machine.cost;
      Heap.get_field t.Machine.heap r fname
  | `Static (cls, fname) ->
      Cost.field t.Machine.cost;
      Machine.static_get t cls fname
  | `Array (r, i) ->
      Cost.array t.Machine.cost;
      Heap.array_get t.Machine.heap r i

and write_slot (t : t) frame slot v =
  (match slot with
  | `Local name ->
      Cost.load_store t.Machine.cost;
      let v =
        match Hashtbl.find_opt frame.local_types name with
        | Some ty -> coerce ty v
        | None -> v
      in
      Hashtbl.replace frame.locals name v
  | `Field (r, fname) ->
      Cost.field t.Machine.cost;
      let cls = Heap.object_class t.Machine.heap r in
      let v =
        match Mj.Symtab.lookup_field t.Machine.tab cls fname with
        | Some (_, field) -> coerce field.f_ty v
        | None -> v
      in
      Heap.set_field t.Machine.heap r fname v
  | `Static (cls, fname) ->
      Cost.field t.Machine.cost;
      if Threads.active () then
        Threads.note
          (Printf.sprintf "write %s.%s = %s" cls fname (Value.to_display v));
      let v =
        match Mj.Symtab.lookup_field t.Machine.tab cls fname with
        | Some (_, field) -> coerce field.f_ty v
        | None -> v
      in
      Machine.static_set t cls fname v
  | `Array (r, i) ->
      Cost.array t.Machine.cost;
      let v =
        match Heap.get t.Machine.heap r with
        | Heap.Arr { elem; _ } -> coerce elem v
        | Heap.Object _ -> v
      in
      Heap.array_set t.Machine.heap r i v);
  v

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)
(* ------------------------------------------------------------------ *)

and eval_call t frame loc call =
  Cost.call t.Machine.cost;
  let args = List.map (eval_expr t frame) call.args in
  let resolved =
    match call.resolved with
    | Some r -> r
    | None ->
        Mj.Diag.error ~loc "internal: unresolved call '%s' at runtime" call.mname
  in
  match call.recv with
  | (Rstatic _ | Rimplicit) when resolved.rc_static ->
      invoke_static t resolved.rc_class call.mname args
  | Rstatic cls -> invoke_static t cls call.mname args
  | Rimplicit -> invoke_virtual t frame.this call.mname args
  | Rexpr o ->
      let recv = eval_expr t frame o in
      invoke_virtual t recv call.mname args
  | Rsuper -> (
      match Mj.Symtab.superclass t.Machine.tab frame.cls with
      | None -> fail "no superclass for 'super' call"
      | Some super -> invoke_on_class t frame.this super call.mname args)

and invoke_static t cls mname args =
  match Mj.Symtab.lookup_method t.Machine.tab cls mname with
  | Some (defining, m) when m.m_mods.is_native ->
      Machine.native_call t ~defining ~mname Value.Null args
  | Some (defining, m) -> run_method t ~defining ~m ~this:Value.Null args
  | None -> fail "no static method %s.%s" cls mname

and invoke_virtual t recv mname args =
  let r = Heap.deref t.Machine.heap recv in
  let dyn = Heap.object_class t.Machine.heap r in
  invoke_on_class t recv dyn mname args

and invoke_on_class t recv cls mname args =
  match Mj.Symtab.lookup_method t.Machine.tab cls mname with
  | Some (defining, m) when m.m_mods.is_native ->
      Machine.native_call t ~defining ~mname recv args
  | Some (defining, m) -> run_method t ~defining ~m ~this:recv args
  | None -> fail "no method %s on class %s" mname cls

and run_method t ~defining ~m ~this args =
  match m.m_body with
  | None -> Machine.native_call t ~defining ~mname:m.m_name this args
  | Some body ->
      Machine.enter_frame t;
      Cost.enter_method_in t.Machine.cost defining m.m_name;
      Fun.protect
        ~finally:(fun () ->
          Cost.leave_method t.Machine.cost;
          Machine.leave_frame t)
      @@ fun () ->
      let frame =
        { locals = Hashtbl.create 16; local_types = Hashtbl.create 16;
          this; cls = defining }
      in
      (try
         List.iter2
           (fun (ty, name) arg ->
             Hashtbl.replace frame.local_types name ty;
             Hashtbl.replace frame.locals name (coerce ty arg))
           m.m_params args
       with Invalid_argument _ -> fail "arity mismatch calling %s" m.m_name);
      (try
         exec_stmts t frame body;
         Value.Null
       with Return_from_method v -> coerce m.m_ret v)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

and construct t cls args =
  let fields = Mj.Symtab.instance_fields t.Machine.tab cls in
  let defaults =
    List.map (fun (_, f) -> (f.f_name, Value.default f.f_ty)) fields
  in
  Cost.alloc t.Machine.cost ~words:(Heap.words_of_object (List.length defaults));
  let obj = Heap.alloc_object t.Machine.heap ~cls ~fields:defaults in
  init_chain t obj cls args;
  obj

(* Constructor chain: superclass constructor first, then this class's
   field initializers, then the constructor body. *)
and init_chain t obj cls args =
  Cost.enter_method_in t.Machine.cost cls "<init>";
  Fun.protect ~finally:(fun () -> Cost.leave_method t.Machine.cost)
  @@ fun () ->
  let ctor =
    match Mj.Symtab.lookup_ctor t.Machine.tab cls (List.length args) with
    | Some c -> c
    | None -> fail "no constructor %s/%d" cls (List.length args)
  in
  let frame =
    { locals = Hashtbl.create 16; local_types = Hashtbl.create 16;
      this = obj; cls }
  in
  (try
     List.iter2
       (fun (ty, name) arg ->
         Hashtbl.replace frame.local_types name ty;
         Hashtbl.replace frame.locals name (coerce ty arg))
       ctor.c_params args
   with Invalid_argument _ -> fail "constructor arity mismatch for %s" cls);
  let body_after_super =
    match ctor.c_body with
    | { stmt = Super_call super_args; _ } :: rest ->
        let super_vals = List.map (eval_expr t frame) super_args in
        (match Mj.Symtab.superclass t.Machine.tab cls with
        | Some super -> init_chain t obj super super_vals
        | None -> fail "super call in class without superclass");
        rest
    | body ->
        (match Mj.Symtab.superclass t.Machine.tab cls with
        | Some super -> init_chain t obj super []
        | None -> ());
        body
  in
  let decl = Mj.Symtab.get_class t.Machine.tab cls in
  List.iter
    (fun f ->
      if not f.f_mods.is_static then
        let v =
          match f.f_init with
          | Some e -> eval_expr t frame e
          | None -> Value.default f.f_ty
        in
        Heap.set_field t.Machine.heap
          (Heap.deref t.Machine.heap obj)
          f.f_name (coerce f.f_ty v))
    decl.cl_fields;
  try exec_stmts t frame body_after_super
  with Return_from_method _ -> ()

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and exec_stmts t frame stmts = List.iter (exec_stmt t frame) stmts

and exec_stmt (t : t) frame s =
  Threads.maybe_yield ();
  Cost.at_line t.Machine.cost s.sloc;
  Cost.dispatch t.Machine.cost;
  match s.stmt with
  | Block stmts -> exec_stmts t frame stmts
  | Var_decl (ty, name, init) ->
      Hashtbl.replace frame.local_types name ty;
      let v =
        match init with
        | Some e -> eval_expr t frame e
        | None -> Value.default ty
      in
      Hashtbl.replace frame.locals name (coerce ty v)
  | Expr e -> ignore (eval_expr t frame e)
  | If (c, then_s, else_s) ->
      if as_bool (eval_expr t frame c) then exec_stmt t frame then_s
      else Option.iter (exec_stmt t frame) else_s
  | While (c, body) ->
      let rec loop () =
        if as_bool (eval_expr t frame c) then begin
          (try exec_stmt t frame body with Continue_loop -> ());
          loop ()
        end
      in
      (try loop () with Break_loop -> ())
  | Do_while (body, c) ->
      let rec loop () =
        (try exec_stmt t frame body with Continue_loop -> ());
        if as_bool (eval_expr t frame c) then loop ()
      in
      (try loop () with Break_loop -> ())
  | For (init, cond, update, body) ->
      (match init with
      | Some (For_var (ty, name, ie)) ->
          Hashtbl.replace frame.local_types name ty;
          let v =
            match ie with
            | Some e -> eval_expr t frame e
            | None -> Value.default ty
          in
          Hashtbl.replace frame.locals name (coerce ty v)
      | Some (For_expr e) -> ignore (eval_expr t frame e)
      | None -> ());
      let check () =
        match cond with
        | None -> true
        | Some c -> as_bool (eval_expr t frame c)
      in
      let step () =
        match update with
        | None -> ()
        | Some u -> ignore (eval_expr t frame u)
      in
      let rec loop () =
        if check () then begin
          (try exec_stmt t frame body with Continue_loop -> ());
          step ();
          loop ()
        end
      in
      (try loop () with Break_loop -> ())
  | Return None -> raise (Return_from_method Value.Null)
  | Return (Some e) -> raise (Return_from_method (eval_expr t frame e))
  | Break -> raise Break_loop
  | Continue -> raise Continue_loop
  | Super_call _ -> fail "super constructor call outside constructor prologue"
  | Empty -> ()

(* ------------------------------------------------------------------ *)
(* Session construction and public entry points                        *)
(* ------------------------------------------------------------------ *)

let call t recv mname args = invoke_virtual t recv mname args

let call_static t cls mname args = invoke_static t cls mname args

let new_instance t cls args = construct t cls args

let run_main t cls = ignore (call_static t cls "main" [])

let create ?(tariff = Cost.interpreter_tariff) ?sink ?lines
    (checked : Mj.Typecheck.checked) =
  let t = Machine.create ~tariff ?sink ?lines checked.symtab in
  t.Machine.invoke_run <- (fun recv -> ignore (invoke_virtual t recv "run" []));
  (* Run static field initializers in declaration order. *)
  List.iter
    (fun (cls, f) ->
      match f.f_init with
      | None -> ()
      | Some e ->
          let frame =
            { locals = Hashtbl.create 4; local_types = Hashtbl.create 4;
              this = Value.Null; cls }
          in
          let v = eval_expr t frame e in
          Machine.static_set t cls f.f_name (coerce f.f_ty v))
    (Mj.Symtab.static_fields t.Machine.tab);
  t
