(** Cooperative green threads for the MJ reference interpreter, built on
    OCaml effect handlers.

    Java threads are the paper's source of nondeterminism (Fig. 6 and
    Fig. 8): the interleaving of statements from different threads is
    schedule-dependent. The scheduler here makes that explicit — a
    [Round_robin] policy and seeded pseudo-random policies each define one
    interleaving, and different seeds exhibit different program outcomes
    for racy programs. *)

type policy =
  | Round_robin
  | Seeded of int  (** pseudo-random runnable pick, reproducible per seed *)

type event = { thread : int; description : string }
(** A trace entry; [thread] is the heap reference of the Thread object
    (or [-1] for the main thread). *)

type _ Effect.t +=
  | Yield : unit Effect.t
  | Spawn : int * (unit -> unit) -> unit Effect.t
  | Join : int -> unit Effect.t

exception Deadlock of string
(** Raised when every live thread is blocked in [join]. *)

val active : unit -> bool
(** True while {!run} is executing; interpreters must only perform
    thread effects when active. *)

val current : unit -> int
(** Id of the currently running thread; [-1] outside {!run}. *)

val tracing : unit -> bool
(** True while {!run} is executing with tracing on. Callers building
    expensive event descriptions should guard on this so the disabled
    path stays free. *)

val note : string -> unit
(** Append a trace event for the current thread (no-op when inactive or
    tracing is off). *)

val maybe_yield : unit -> unit
(** Preemption point: yields to the scheduler when active. *)

val run : policy:policy -> ?trace:bool -> (unit -> unit) -> event list
(** Run [main] as the initial thread under the given policy until all
    spawned threads finish; returns the recorded trace. Not reentrant. *)
