(** Shared execution state and native-method implementations.

    The reference interpreter, the bytecode VM, and the closure backend
    all execute against a [Machine.t]: heap, static storage, cost
    counter, console, ASR port states, and the hierarchical instant log.
    Native methods ([Math], [System.out], [Thread], [ASR], [JTime]) are
    implemented here once. *)

type instant = { label : string; mutable subs : instant list }

type t = {
  tab : Mj.Symtab.t;
  heap : Heap.t;
  statics : (string * string, Value.t) Hashtbl.t;
  cost : Cost.t;
  console : Buffer.t;
  asr_ports : (int, ports) Hashtbl.t;
  mutable instant_stack : instant list;
  root : instant;
  mutable invoke_run : Value.t -> unit;
      (** engine callback used by [Thread.start]; installed by the engine *)
  mutable call_depth : int;
  mutable max_call_depth : int;
      (** frames allowed before the engines raise a stack-overflow
          {!Heap.Runtime_error} (default 4096) *)
}

and ports = {
  mutable n_in : int;
  mutable n_out : int;
  mutable inputs : Value.t option array;
  mutable outputs : Value.t option array;
}

val create :
  ?tariff:Cost.tariff ->
  ?sink:Cost.sink ->
  ?lines:Telemetry.Lines.t ->
  Mj.Symtab.t ->
  t
(** Fresh machine with static storage defaulted (initializers are the
    engine's job, since they require evaluation). *)

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Heap.Runtime_error} with a formatted message. *)

val as_int : Value.t -> int
val as_double : Value.t -> float
val as_bool : Value.t -> bool

val coerce : Mj.Ast.ty -> Value.t -> Value.t
(** Implicit int-to-double widening into a typed slot. *)

val static_get : t -> string -> string -> Value.t
val static_set : t -> string -> string -> Value.t -> unit

val native_call :
  t -> defining:string -> mname:string -> Value.t -> Value.t list -> Value.t
(** Dispatch a native method; raises for unknown natives. *)

val enter_frame : t -> unit
(** Engines bracket every MJ method/constructor body with
    [enter_frame]/[leave_frame]; exceeding [max_call_depth] raises. *)

val leave_frame : t -> unit

val ports_state : t -> Value.t -> ports

val ports_of : t -> Value.t -> int * int
val set_input : t -> Value.t -> int -> Value.t option -> unit
val output_port : t -> Value.t -> int -> Value.t option
val clear_io : t -> Value.t -> unit

val instant_root : t -> instant
val reset_instants : t -> unit

val int_array : t -> Value.t -> int array
val make_int_array : t -> int array -> Value.t
