type phase = Init | Reactive

exception Runtime_error of string

type obj_data =
  | Object of { cls : string; fields : (string, Value.t) Hashtbl.t }
  | Arr of { elem : Mj.Ast.ty; cells : Value.t array }

type stats = {
  init_allocations : int;
  reactive_allocations : int;
  init_words : int;
  reactive_words : int;
  live_objects : int;
}

type t = {
  mutable cells : obj_data option array;
  mutable next : int;
  mutable phase : phase;
  mutable forbid_reactive : bool;
  mutable init_allocations : int;
  mutable reactive_allocations : int;
  mutable init_words : int;
  mutable reactive_words : int;
  mutable limit_words : int option;
  mutable gc_threshold : int option;
  mutable words_since_gc : int;
  mutable gc_count : int;
  mutable on_gc : live_words:int -> unit;
  mutable on_trap : unit -> unit;
}

let create () =
  { cells = Array.make 1024 None; next = 0; phase = Init;
    forbid_reactive = false; init_allocations = 0; reactive_allocations = 0;
    init_words = 0; reactive_words = 0; limit_words = None; gc_threshold = None;
    words_since_gc = 0; gc_count = 0; on_gc = (fun ~live_words:_ -> ());
    on_trap = (fun () -> ()) }

let phase t = t.phase

let set_phase t phase = t.phase <- phase

let forbid_reactive_alloc t flag = t.forbid_reactive <- flag

let stats t =
  { init_allocations = t.init_allocations;
    reactive_allocations = t.reactive_allocations;
    init_words = t.init_words; reactive_words = t.reactive_words;
    live_objects = t.next }

let configure_gc t ~threshold_words =
  t.gc_threshold <- threshold_words;
  t.words_since_gc <- 0

let set_gc_hook t hook = t.on_gc <- hook

let set_trap_hook t hook = t.on_trap <- hook

let gc_count t = t.gc_count

let words_of_object n_fields = 2 + n_fields

let words_of_array n = 2 + n

let set_limit_words t limit =
  (match limit with
  | Some n when n < 0 -> invalid_arg "Heap.set_limit_words: negative limit"
  | _ -> ());
  t.limit_words <- limit

let limit_words t = t.limit_words

(* The exhaustion check models a fixed-size heap: total words ever
   allocated (the model has no reclamation of individual objects)
   against the configured capacity. It runs in both phases — an
   oversized initialization is as fatal on the target as a reactive
   alloc storm — and never touches [Cost], so arming a limit cannot
   perturb modeled cycle counts. *)
let check_limit t words =
  match t.limit_words with
  | Some limit when t.init_words + t.reactive_words + words > limit ->
      raise
        (Runtime_error
           (Printf.sprintf
              "heap exhausted: %d words requested, %d of %d in use"
              words
              (t.init_words + t.reactive_words)
              limit))
  | _ -> ()

let record_alloc t words =
  check_limit t words;
  match t.phase with
  | Init ->
      t.init_allocations <- t.init_allocations + 1;
      t.init_words <- t.init_words + words
  | Reactive ->
      if t.forbid_reactive then
        raise
          (Runtime_error
             "allocation during the reactive phase (bounded-memory policy)");
      t.reactive_allocations <- t.reactive_allocations + 1;
      t.reactive_words <- t.reactive_words + words;
      (match t.gc_threshold with
      | Some threshold ->
          t.words_since_gc <- t.words_since_gc + words;
          if t.words_since_gc > threshold then begin
            let live = t.init_words + t.words_since_gc in
            t.gc_count <- t.gc_count + 1;
            t.words_since_gc <- 0;
            t.on_gc ~live_words:live
          end
      | None -> ())

let store t data =
  if t.next >= Array.length t.cells then begin
    let bigger = Array.make (2 * Array.length t.cells) None in
    Array.blit t.cells 0 bigger 0 (Array.length t.cells);
    t.cells <- bigger
  end;
  let index = t.next in
  t.cells.(index) <- Some data;
  t.next <- index + 1;
  Value.Ref index

let alloc_object t ~cls ~fields =
  record_alloc t (words_of_object (List.length fields));
  let table = Hashtbl.create (max 4 (List.length fields)) in
  List.iter (fun (name, value) -> Hashtbl.replace table name value) fields;
  store t (Object { cls; fields = table })

let alloc_array t ~elem n =
  if n < 0 then raise (Runtime_error "negative array size");
  record_alloc t (words_of_array n);
  store t (Arr { elem; cells = Array.make n (Value.default elem) })

let get t index =
  if index < 0 || index >= t.next then raise (Runtime_error "dangling reference")
  else
    match t.cells.(index) with
    | Some data -> data
    | None -> raise (Runtime_error "dangling reference")

let deref _t = function
  | Value.Ref index -> index
  | Value.Null -> raise (Runtime_error "null pointer dereference")
  | Value.Int _ | Value.Double _ | Value.Bool _ | Value.Str _ ->
      raise (Runtime_error "dereference of a non-reference value")

let object_class t index =
  match get t index with
  | Object { cls; _ } -> cls
  | Arr _ -> raise (Runtime_error "expected an object, found an array")

let object_fields t index =
  match get t index with
  | Object { fields; _ } -> fields
  | Arr _ -> raise (Runtime_error "expected an object, found an array")

let get_field t index name =
  match Hashtbl.find_opt (object_fields t index) name with
  | Some v -> v
  | None -> raise (Runtime_error (Printf.sprintf "object has no field '%s'" name))

let set_field t index name value =
  let fields = object_fields t index in
  if not (Hashtbl.mem fields name) then
    raise (Runtime_error (Printf.sprintf "object has no field '%s'" name));
  Hashtbl.replace fields name value

let array_cells t index =
  match get t index with
  | Arr { cells; _ } -> cells
  | Object _ -> raise (Runtime_error "expected an array, found an object")

let array_length t index = Array.length (array_cells t index)

let array_get t index i =
  let cells = array_cells t index in
  if i < 0 || i >= Array.length cells then begin
    t.on_trap ();
    raise
      (Runtime_error
         (Printf.sprintf "array index %d out of bounds for length %d" i
            (Array.length cells)))
  end
  else cells.(i)

let array_set t index i value =
  let cells = array_cells t index in
  if i < 0 || i >= Array.length cells then begin
    t.on_trap ();
    raise
      (Runtime_error
         (Printf.sprintf "array index %d out of bounds for length %d" i
            (Array.length cells)))
  end
  else cells.(i) <- value

(* Unchecked accessors for statically verified sites. OCaml's own array
   check remains as a backstop: an unsound elision plan surfaces as
   [Invalid_argument] rather than silent corruption. *)
let array_get_unchecked t index i = (array_cells t index).(i)
let array_set_unchecked t index i value = (array_cells t index).(i) <- value

(* ------------------------- snapshot / restore --------------------- *)

type snapshot = {
  s_cells : obj_data option array;
  s_next : int;
  s_phase : phase;
  s_forbid_reactive : bool;
  s_init_allocations : int;
  s_reactive_allocations : int;
  s_init_words : int;
  s_reactive_words : int;
  s_limit_words : int option;
  s_gc_threshold : int option;
  s_words_since_gc : int;
  s_gc_count : int;
}

(* Field Hashtbls and array cells are mutable, so both directions copy
   them: a snapshot stays valid however the live heap mutates, and a
   snapshot restored more than once hands out fresh state each time. *)
let copy_cell = function
  | None -> None
  | Some (Object { cls; fields }) ->
      Some (Object { cls; fields = Hashtbl.copy fields })
  | Some (Arr { elem; cells }) -> Some (Arr { elem; cells = Array.copy cells })

let snapshot t =
  { s_cells = Array.init t.next (fun i -> copy_cell t.cells.(i));
    s_next = t.next;
    s_phase = t.phase;
    s_forbid_reactive = t.forbid_reactive;
    s_init_allocations = t.init_allocations;
    s_reactive_allocations = t.reactive_allocations;
    s_init_words = t.init_words;
    s_reactive_words = t.reactive_words;
    s_limit_words = t.limit_words;
    s_gc_threshold = t.gc_threshold;
    s_words_since_gc = t.words_since_gc;
    s_gc_count = t.gc_count }

let restore t s =
  let cap = max 1024 s.s_next in
  if Array.length t.cells < cap then t.cells <- Array.make cap None
  else Array.fill t.cells 0 (Array.length t.cells) None;
  for i = 0 to s.s_next - 1 do
    t.cells.(i) <- copy_cell s.s_cells.(i)
  done;
  t.next <- s.s_next;
  t.phase <- s.s_phase;
  t.forbid_reactive <- s.s_forbid_reactive;
  t.init_allocations <- s.s_init_allocations;
  t.reactive_allocations <- s.s_reactive_allocations;
  t.init_words <- s.s_init_words;
  t.reactive_words <- s.s_reactive_words;
  t.limit_words <- s.s_limit_words;
  t.gc_threshold <- s.s_gc_threshold;
  t.words_since_gc <- s.s_words_since_gc;
  t.gc_count <- s.s_gc_count
