type policy = Round_robin | Seeded of int

type event = { thread : int; description : string }

type _ Effect.t +=
  | Yield : unit Effect.t
  | Spawn : int * (unit -> unit) -> unit Effect.t
  | Join : int -> unit Effect.t

exception Deadlock of string

type scheduler = {
  mutable runnable : (int * (unit -> unit)) list;
  finished : (int, unit) Hashtbl.t;
  waiters : (int, (int * (unit -> unit)) list) Hashtbl.t;
  rng : Random.State.t option;
  mutable current : int;
  mutable live : int;
  mutable trace : event list;
  tracing : bool;
}

let state : scheduler option ref = ref None

let active () = Option.is_some !state

let current () = match !state with Some s -> s.current | None -> -1

let tracing () = match !state with Some s -> s.tracing | None -> false

let note description =
  match !state with
  | Some s when s.tracing ->
      s.trace <- { thread = s.current; description } :: s.trace
  | Some _ | None -> ()

let maybe_yield () = if active () then Effect.perform Yield

let push s tid thunk = s.runnable <- s.runnable @ [ (tid, thunk) ]

let pick s =
  match s.runnable with
  | [] -> None
  | entries ->
      let index =
        match s.rng with
        | Some rng -> Random.State.int rng (List.length entries)
        | None -> 0
      in
      let chosen = List.nth entries index in
      s.runnable <- List.filteri (fun i _ -> i <> index) entries;
      Some chosen

let schedule s =
  match pick s with
  | Some (tid, thunk) ->
      s.current <- tid;
      thunk ()
  | None ->
      if s.live > 0 && Hashtbl.length s.waiters > 0 then
        raise (Deadlock "all remaining threads are blocked in join")

let finish s tid =
  Hashtbl.replace s.finished tid ();
  s.live <- s.live - 1;
  (match Hashtbl.find_opt s.waiters tid with
  | Some thunks ->
      Hashtbl.remove s.waiters tid;
      List.iter (fun (waiter, thunk) -> push s waiter thunk) thunks
  | None -> ());
  schedule s

(* Each fiber runs under a deep handler; yields enqueue the continuation
   and re-enter the scheduler. *)
let rec run_fiber s tid body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> finish s tid);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, _) continuation) ->
                  push s tid (fun () -> continue k ());
                  schedule s)
          | Spawn (child_tid, child_body) ->
              Some
                (fun (k : (a, _) continuation) ->
                  s.live <- s.live + 1;
                  push s child_tid (fun () -> run_fiber s child_tid child_body);
                  continue k ())
          | Join target ->
              Some
                (fun (k : (a, _) continuation) ->
                  if Hashtbl.mem s.finished target then continue k ()
                  else begin
                    let waiter = s.current in
                    let existing =
                      Option.value ~default:[] (Hashtbl.find_opt s.waiters target)
                    in
                    Hashtbl.replace s.waiters target
                      ((waiter, fun () -> continue k ()) :: existing);
                    schedule s
                  end)
          | _ -> None);
    }

let run ~policy ?(trace = true) main =
  if active () then invalid_arg "Threads.run is not reentrant";
  let rng =
    match policy with
    | Round_robin -> None
    | Seeded seed -> Some (Random.State.make [| seed |])
  in
  let s =
    { runnable = []; finished = Hashtbl.create 8; waiters = Hashtbl.create 8;
      rng; current = -1; live = 1; trace = []; tracing = trace }
  in
  state := Some s;
  let result =
    Fun.protect ~finally:(fun () -> state := None) (fun () ->
        run_fiber s (-1) main;
        List.rev s.trace)
  in
  result
