(** Object heap with phase-tagged allocation accounting.

    The ASR policy of use requires all allocation to happen during
    initialization; the heap distinguishes an [Init] phase from the
    [Reactive] phase, counts allocations per phase, and can be armed to
    reject reactive-phase allocation outright (bounded-memory
    enforcement of elaborated blocks). *)

type phase = Init | Reactive

exception Runtime_error of string
(** Raised for null dereference, bad index, division by zero, bad casts,
    and forbidden allocation. *)

type obj_data =
  | Object of { cls : string; fields : (string, Value.t) Hashtbl.t }
  | Arr of { elem : Mj.Ast.ty; cells : Value.t array }

type stats = {
  init_allocations : int;
  reactive_allocations : int;
  init_words : int;
  reactive_words : int;
  live_objects : int;
}

type t

val create : unit -> t

val phase : t -> phase

val set_phase : t -> phase -> unit

val forbid_reactive_alloc : t -> bool -> unit
(** When armed, any allocation in the [Reactive] phase raises
    {!Runtime_error}. *)

val stats : t -> stats

val set_limit_words : t -> int option -> unit
(** Arm (or clear) a fixed heap capacity in words. An allocation that
    would push the total allocated words (both phases; the model never
    reclaims) past the limit raises {!Runtime_error} with a message
    starting ["heap exhausted"] — the token [Elaborate.fault_classifier]
    keys on. Checked in both phases; independent of the GC model and of
    [Cost] (arming a limit never changes modeled cycles). *)

val limit_words : t -> int option

val alloc_object : t -> cls:string -> fields:(string * Value.t) list -> Value.t

val alloc_array : t -> elem:Mj.Ast.ty -> int -> Value.t

val get : t -> int -> obj_data

val deref : t -> Value.t -> int
(** Extract a reference index; raises on [Null] or non-reference. *)

val object_class : t -> int -> string

val get_field : t -> int -> string -> Value.t

val set_field : t -> int -> string -> Value.t -> unit

val array_length : t -> int -> int

val array_get : t -> int -> int -> Value.t

val array_set : t -> int -> int -> Value.t -> unit

val array_get_unchecked : t -> int -> int -> Value.t
(** Like {!array_get} without the modelled bounds check — for sites the
    static analysis proved in range. OCaml's own check backstops an
    unsound plan with [Invalid_argument] instead of silent corruption. *)

val array_set_unchecked : t -> int -> int -> Value.t -> unit

val words_of_object : int -> int
(** Heap words occupied by an object with n fields (header included). *)

val words_of_array : int -> int

(** {1 Garbage-collection model}

    A crude stop-the-world collector in the JDK-1.1 mould: when
    reactive-phase allocation since the last collection exceeds the
    configured threshold, the [on_gc] hook fires with the approximate
    live size (initialization-phase words plus the words allocated since
    the previous collection) so the engine can charge a pause. Disabled
    by default. *)

val configure_gc : t -> threshold_words:int option -> unit

val set_gc_hook : t -> (live_words:int -> unit) -> unit

val set_trap_hook : t -> (unit -> unit) -> unit
(** Called just before a checked array access raises [Runtime_error] on
    an out-of-bounds index — the machine wires this to
    [Cost.bounds_trap] so the trap is attributed to a source line. *)

val gc_count : t -> int

(** {1 Snapshot / restore}

    Deep copies of the complete heap state — cells (object field tables
    and array contents included), allocation counters for both phases,
    the capacity limit, and the GC model's counters. The foundation of
    re-application-safe reactions and durable checkpoints: restoring a
    snapshot makes the heap bit-identical to the moment of capture.
    The [on_gc]/[on_trap] hooks are wiring, not state, and are left
    untouched by {!restore}. *)

type snapshot = {
  s_cells : obj_data option array;
  s_next : int;
  s_phase : phase;
  s_forbid_reactive : bool;
  s_init_allocations : int;
  s_reactive_allocations : int;
  s_init_words : int;
  s_reactive_words : int;
  s_limit_words : int option;
  s_gc_threshold : int option;
  s_words_since_gc : int;
  s_gc_count : int;
}

val snapshot : t -> snapshot
(** Deep copy: later heap mutation never shows through a snapshot. *)

val restore : t -> snapshot -> unit
(** Deep copy back: the same snapshot can be restored any number of
    times, and mutating the restored heap never corrupts the snapshot. *)
