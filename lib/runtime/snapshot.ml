module Json = Telemetry.Json

let malformed what = invalid_arg ("Snapshot.of_json: malformed " ^ what)

type ports_snap = {
  p_id : int;
  p_n_in : int;
  p_n_out : int;
  p_inputs : Value.t option array;
  p_outputs : Value.t option array;
}

type t = {
  s_heap : Heap.snapshot;
  s_statics : ((string * string) * Value.t) list;
  s_ports : ports_snap list;
  s_console : string;
  s_cycles : int;
}

(* Value.t is immutable (a [Ref] is just an index into the heap, whose
   contents the heap snapshot copies), so statics and port slots copy by
   sharing. *)
let capture (m : Machine.t) =
  let statics =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.Machine.statics []
    |> List.sort compare
  in
  let ports =
    Hashtbl.fold
      (fun id (p : Machine.ports) acc ->
        { p_id = id;
          p_n_in = p.Machine.n_in;
          p_n_out = p.Machine.n_out;
          p_inputs = Array.copy p.Machine.inputs;
          p_outputs = Array.copy p.Machine.outputs }
        :: acc)
      m.Machine.asr_ports []
    |> List.sort (fun a b -> compare a.p_id b.p_id)
  in
  { s_heap = Heap.snapshot m.Machine.heap;
    s_statics = statics;
    s_ports = ports;
    s_console = Buffer.contents m.Machine.console;
    s_cycles = Cost.cycles m.Machine.cost }

let restore t (m : Machine.t) =
  Heap.restore m.Machine.heap t.s_heap;
  Hashtbl.reset m.Machine.statics;
  List.iter (fun (k, v) -> Hashtbl.replace m.Machine.statics k v) t.s_statics;
  Hashtbl.reset m.Machine.asr_ports;
  List.iter
    (fun p ->
      Hashtbl.replace m.Machine.asr_ports p.p_id
        { Machine.n_in = p.p_n_in;
          n_out = p.p_n_out;
          inputs = Array.copy p.p_inputs;
          outputs = Array.copy p.p_outputs })
    t.s_ports;
  Buffer.clear m.Machine.console;
  Buffer.add_string m.Machine.console t.s_console;
  Cost.restore_cycles m.Machine.cost t.s_cycles

(* ------------------------------ JSON ------------------------------ *)

let value_json (v : Value.t) =
  match v with
  | Value.Int n -> Json.Obj [ ("i", Json.Int n) ]
  | Value.Double f -> Json.Obj [ ("d", Json.float_bits f) ]
  | Value.Bool b -> Json.Bool b
  | Value.Str s -> Json.Obj [ ("s", Json.Str s) ]
  | Value.Null -> Json.Null
  | Value.Ref r -> Json.Obj [ ("ref", Json.Int r) ]

let value_of_json j =
  match j with
  | Json.Null -> Value.Null
  | Json.Bool b -> Value.Bool b
  | Json.Obj _ -> (
      match Json.member "i" j with
      | Some (Json.Int n) -> Value.Int n
      | _ -> (
          match Json.member "d" j with
          | Some bits -> (
              match Json.float_of_bits bits with
              | Some f -> Value.Double f
              | None -> malformed "value")
          | _ -> (
              match Json.member "s" j with
              | Some (Json.Str s) -> Value.Str s
              | _ -> (
                  match Json.member "ref" j with
                  | Some (Json.Int r) -> Value.Ref r
                  | _ -> malformed "value"))))
  | _ -> malformed "value"

let rec ty_name (ty : Mj.Ast.ty) =
  match ty with
  | Mj.Ast.TInt -> "int"
  | Mj.Ast.TBool -> "boolean"
  | Mj.Ast.TDouble -> "double"
  | Mj.Ast.TString -> "String"
  | Mj.Ast.TVoid -> "void"
  | Mj.Ast.TNull -> "null"
  | Mj.Ast.TArray t -> ty_name t ^ "[]"
  | Mj.Ast.TClass c -> "class:" ^ c

let rec ty_of_name s : Mj.Ast.ty =
  let n = String.length s in
  if n > 2 && String.sub s (n - 2) 2 = "[]" then
    Mj.Ast.TArray (ty_of_name (String.sub s 0 (n - 2)))
  else
    match s with
    | "int" -> Mj.Ast.TInt
    | "boolean" -> Mj.Ast.TBool
    | "double" -> Mj.Ast.TDouble
    | "String" -> Mj.Ast.TString
    | "void" -> Mj.Ast.TVoid
    | "null" -> Mj.Ast.TNull
    | s when n > 6 && String.sub s 0 6 = "class:" ->
        Mj.Ast.TClass (String.sub s 6 (n - 6))
    | _ -> malformed "type"

let cell_json (c : Heap.obj_data option) =
  match c with
  | None -> Json.Null
  | Some (Heap.Object { cls; fields }) ->
      let fs =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) fields []
        |> List.sort compare
      in
      Json.Obj
        [ ("cls", Json.Str cls);
          ( "fields",
            Json.List
              (List.map
                 (fun (k, v) -> Json.List [ Json.Str k; value_json v ])
                 fs) ) ]
  | Some (Heap.Arr { elem; cells }) ->
      Json.Obj
        [ ("elem", Json.Str (ty_name elem));
          ("cells", Json.List (Array.to_list (Array.map value_json cells))) ]

let cell_of_json j : Heap.obj_data option =
  match j with
  | Json.Null -> None
  | Json.Obj _ -> (
      match (Json.member "cls" j, Json.member "elem" j) with
      | Some (Json.Str cls), _ ->
          let fields = Hashtbl.create 8 in
          (match Json.member "fields" j with
          | Some (Json.List fs) ->
              List.iter
                (function
                  | Json.List [ Json.Str k; v ] ->
                      Hashtbl.replace fields k (value_of_json v)
                  | _ -> malformed "field")
                fs
          | _ -> malformed "fields");
          Some (Heap.Object { cls; fields })
      | _, Some (Json.Str elem) ->
          let cells =
            match Json.member "cells" j with
            | Some (Json.List l) ->
                Array.of_list (List.map value_of_json l)
            | _ -> malformed "cells"
          in
          Some (Heap.Arr { elem = ty_of_name elem; cells })
      | _ -> malformed "cell")
  | _ -> malformed "cell"

let int_field name j =
  match Json.member name j with Some (Json.Int n) -> n | _ -> malformed name

let opt_int_json = function None -> Json.Null | Some n -> Json.Int n

let opt_int_field name j =
  match Json.member name j with
  | Some Json.Null | None -> None
  | Some (Json.Int n) -> Some n
  | _ -> malformed name

let phase_name = function Heap.Init -> "init" | Heap.Reactive -> "reactive"

let phase_of_name = function
  | "init" -> Heap.Init
  | "reactive" -> Heap.Reactive
  | _ -> malformed "phase"

let heap_json (h : Heap.snapshot) =
  Json.Obj
    [ ( "cells",
        Json.List
          (List.init h.Heap.s_next (fun i -> cell_json h.Heap.s_cells.(i))) );
      ("phase", Json.Str (phase_name h.Heap.s_phase));
      ("forbid_reactive", Json.Bool h.Heap.s_forbid_reactive);
      ("init_allocations", Json.Int h.Heap.s_init_allocations);
      ("reactive_allocations", Json.Int h.Heap.s_reactive_allocations);
      ("init_words", Json.Int h.Heap.s_init_words);
      ("reactive_words", Json.Int h.Heap.s_reactive_words);
      ("limit_words", opt_int_json h.Heap.s_limit_words);
      ("gc_threshold", opt_int_json h.Heap.s_gc_threshold);
      ("words_since_gc", Json.Int h.Heap.s_words_since_gc);
      ("gc_count", Json.Int h.Heap.s_gc_count) ]

let heap_of_json j : Heap.snapshot =
  let cells =
    match Json.member "cells" j with
    | Some (Json.List l) -> Array.of_list (List.map cell_of_json l)
    | _ -> malformed "cells"
  in
  { Heap.s_cells = cells;
    s_next = Array.length cells;
    s_phase =
      (match Json.member "phase" j with
      | Some (Json.Str s) -> phase_of_name s
      | _ -> malformed "phase");
    s_forbid_reactive =
      (match Json.member "forbid_reactive" j with
      | Some (Json.Bool b) -> b
      | _ -> malformed "forbid_reactive");
    s_init_allocations = int_field "init_allocations" j;
    s_reactive_allocations = int_field "reactive_allocations" j;
    s_init_words = int_field "init_words" j;
    s_reactive_words = int_field "reactive_words" j;
    s_limit_words = opt_int_field "limit_words" j;
    s_gc_threshold = opt_int_field "gc_threshold" j;
    s_words_since_gc = int_field "words_since_gc" j;
    s_gc_count = int_field "gc_count" j }

(* [Value.Null] encodes as [null] too, so slots disambiguate with a
   one-element wrapper: an absent slot is [null], a bound slot is
   [[v]]. *)
let port_slot_json = function
  | None -> Json.Null
  | Some v -> Json.List [ value_json v ]

let port_slot_of_json = function
  | Json.Null -> None
  | Json.List [ v ] -> Some (value_of_json v)
  | _ -> malformed "port slot"

let ports_json p =
  Json.Obj
    [ ("id", Json.Int p.p_id);
      ("n_in", Json.Int p.p_n_in);
      ("n_out", Json.Int p.p_n_out);
      ( "inputs",
        Json.List (Array.to_list (Array.map port_slot_json p.p_inputs)) );
      ( "outputs",
        Json.List (Array.to_list (Array.map port_slot_json p.p_outputs)) ) ]

let ports_of_json j =
  let slots name =
    match Json.member name j with
    | Some (Json.List l) -> Array.of_list (List.map port_slot_of_json l)
    | _ -> malformed name
  in
  { p_id = int_field "id" j;
    p_n_in = int_field "n_in" j;
    p_n_out = int_field "n_out" j;
    p_inputs = slots "inputs";
    p_outputs = slots "outputs" }

let to_json t =
  Json.Obj
    [ ("heap", heap_json t.s_heap);
      ( "statics",
        Json.List
          (List.map
             (fun ((cls, name), v) ->
               Json.List [ Json.Str cls; Json.Str name; value_json v ])
             t.s_statics) );
      ("ports", Json.List (List.map ports_json t.s_ports));
      ("console", Json.Str t.s_console);
      ("cycles", Json.Int t.s_cycles) ]

let of_json j =
  let statics =
    match Json.member "statics" j with
    | Some (Json.List l) ->
        List.map
          (function
            | Json.List [ Json.Str cls; Json.Str name; v ] ->
                ((cls, name), value_of_json v)
            | _ -> malformed "static")
          l
    | _ -> malformed "statics"
  in
  let ports =
    match Json.member "ports" j with
    | Some (Json.List l) -> List.map ports_of_json l
    | _ -> malformed "ports"
  in
  { s_heap =
      (match Json.member "heap" j with
      | Some h -> heap_of_json h
      | None -> malformed "heap");
    s_statics = statics;
    s_ports = ports;
    s_console =
      (match Json.member "console" j with
      | Some (Json.Str s) -> s
      | _ -> malformed "console");
    s_cycles = int_field "cycles" j }
