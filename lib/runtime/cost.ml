type tariff = {
  dispatch : int;
  arith : int;
  load_store : int;
  field : int;
  array : int;
  array_unchecked : int;  (* array access with the bounds check elided *)
  call : int;
  alloc_base : int;
  alloc_word : int;
  native : int;
  gc_base : int;
  gc_word : int;
}

let interpreter_tariff =
  { dispatch = 10; arith = 1; load_store = 2; field = 4; array = 6;
    array_unchecked = 3; call = 40; alloc_base = 120; alloc_word = 4;
    native = 20; gc_base = 50_000; gc_word = 8 }

let jit_tariff =
  { dispatch = 0; arith = 1; load_store = 1; field = 2; array = 3;
    array_unchecked = 1; call = 10; alloc_base = 120; alloc_word = 4;
    native = 20; gc_base = 50_000; gc_word = 8 }

type sink = {
  sink_charge : int -> unit;
  sink_enter : string -> unit;
  sink_leave : unit -> unit;
  sink_alloc : words:int -> unit;
  sink_gc : cycles:int -> unit;
}

type t = {
  tariff : tariff;
  mutable cycles : int;
  mutable budget : int option;
  mutable sink : sink option;
  mutable lines : Telemetry.Lines.t option;
  (* [slow] caches [budget <> None || sink <> None || lines <> None] so
     the common path of [charge] — no watchdog, no telemetry — is a
     single flag test. *)
  mutable slow : bool;
}

exception Budget_exceeded of int

let create ?sink ?lines tariff =
  { tariff; cycles = 0; budget = None; sink; lines;
    slow = sink <> None || lines <> None }

let refresh_slow t =
  t.slow <- t.budget <> None || t.sink <> None || t.lines <> None

let set_budget t budget =
  t.budget <- budget;
  refresh_slow t

let set_sink t sink =
  t.sink <- sink;
  refresh_slow t

let set_lines t lines =
  t.lines <- lines;
  refresh_slow t

let lines_on t = t.lines <> None

let lines t = t.lines

(* Move the line profiler's current-position pointer. Positions without
   source information are skipped, so charges stay on the last known
   line rather than resetting to the unattributed row. *)
let at_line t loc =
  match t.lines with
  | None -> ()
  | Some l ->
      if not (Mj.Loc.is_dummy loc) then
        Telemetry.Lines.set l ~file:loc.Mj.Loc.file
          ~line:loc.Mj.Loc.start_pos.Mj.Loc.line

let cycles t = t.cycles

let reset t = t.cycles <- 0

(* Checkpoint restore: the meter is set, not charged, so no budget
   check fires and no sink or line table sees a phantom charge. *)
let restore_cycles t n = t.cycles <- n

(* The sink sees the charge even when it trips the watchdog: the cycles
   were added to the meter, so a profile stays reconciled on the
   Budget_exceeded path too. *)
let charge_slow t n =
  (match t.lines with None -> () | Some l -> Telemetry.Lines.charge l n);
  (match t.sink with None -> () | Some s -> s.sink_charge n);
  match t.budget with
  | Some limit when t.cycles > limit -> raise (Budget_exceeded t.cycles)
  | Some _ | None -> ()

let charge t n =
  t.cycles <- t.cycles + n;
  if t.slow then charge_slow t n

let enter_method t label =
  (match t.sink with None -> () | Some s -> s.sink_enter label);
  match t.lines with None -> () | Some l -> Telemetry.Lines.enter l

(* Variant taking the qualified name in two halves so the disabled path
   does not even pay the string concatenation. *)
let enter_method_in t cls name =
  (match t.sink with None -> () | Some s -> s.sink_enter (cls ^ "." ^ name));
  match t.lines with None -> () | Some l -> Telemetry.Lines.enter l

let leave_method t =
  (match t.sink with None -> () | Some s -> s.sink_leave ());
  match t.lines with None -> () | Some l -> Telemetry.Lines.leave l

let bounds_trap t =
  match t.lines with None -> () | Some l -> Telemetry.Lines.trap l

let profile_sink p =
  { sink_charge = Telemetry.Profile.charge p;
    sink_enter = Telemetry.Profile.enter p;
    sink_leave = (fun () -> Telemetry.Profile.leave p);
    sink_alloc = (fun ~words -> Telemetry.Profile.alloc p ~words);
    sink_gc = (fun ~cycles -> Telemetry.Profile.gc p ~cycles) }

let dispatch t = charge t t.tariff.dispatch
let arith t = charge t t.tariff.arith
let load_store t = charge t t.tariff.load_store
let field t = charge t t.tariff.field
let array t = charge t t.tariff.array
let array_unchecked t = charge t t.tariff.array_unchecked
let call t = charge t t.tariff.call
let alloc t ~words =
  charge t (t.tariff.alloc_base + (t.tariff.alloc_word * words));
  (match t.lines with None -> () | Some l -> Telemetry.Lines.alloc l ~words);
  match t.sink with None -> () | Some s -> s.sink_alloc ~words

let native t = charge t t.tariff.native

let gc t ~live_words =
  let pause = t.tariff.gc_base + (t.tariff.gc_word * live_words) in
  charge t pause;
  match t.sink with None -> () | Some s -> s.sink_gc ~cycles:pause
