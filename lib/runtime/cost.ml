type tariff = {
  dispatch : int;
  arith : int;
  load_store : int;
  field : int;
  array : int;
  array_unchecked : int;  (* array access with the bounds check elided *)
  call : int;
  alloc_base : int;
  alloc_word : int;
  native : int;
  gc_base : int;
  gc_word : int;
}

let interpreter_tariff =
  { dispatch = 10; arith = 1; load_store = 2; field = 4; array = 6;
    array_unchecked = 3; call = 40; alloc_base = 120; alloc_word = 4;
    native = 20; gc_base = 50_000; gc_word = 8 }

let jit_tariff =
  { dispatch = 0; arith = 1; load_store = 1; field = 2; array = 3;
    array_unchecked = 1; call = 10; alloc_base = 120; alloc_word = 4;
    native = 20; gc_base = 50_000; gc_word = 8 }

type t = { tariff : tariff; mutable cycles : int; mutable budget : int option }

exception Budget_exceeded of int

let create tariff = { tariff; cycles = 0; budget = None }

let set_budget t budget = t.budget <- budget

let cycles t = t.cycles

let reset t = t.cycles <- 0

let charge t n =
  t.cycles <- t.cycles + n;
  match t.budget with
  | Some limit when t.cycles > limit -> raise (Budget_exceeded t.cycles)
  | Some _ | None -> ()

let dispatch t = charge t t.tariff.dispatch
let arith t = charge t t.tariff.arith
let load_store t = charge t t.tariff.load_store
let field t = charge t t.tariff.field
let array t = charge t t.tariff.array
let array_unchecked t = charge t t.tariff.array_unchecked
let call t = charge t t.tariff.call
let alloc t ~words = charge t (t.tariff.alloc_base + (t.tariff.alloc_word * words))
let native t = charge t t.tariff.native

let gc t ~live_words =
  charge t (t.tariff.gc_base + (t.tariff.gc_word * live_words))
