type tariff = {
  dispatch : int;
  arith : int;
  load_store : int;
  field : int;
  array : int;
  array_unchecked : int;  (* array access with the bounds check elided *)
  call : int;
  alloc_base : int;
  alloc_word : int;
  native : int;
  gc_base : int;
  gc_word : int;
}

let interpreter_tariff =
  { dispatch = 10; arith = 1; load_store = 2; field = 4; array = 6;
    array_unchecked = 3; call = 40; alloc_base = 120; alloc_word = 4;
    native = 20; gc_base = 50_000; gc_word = 8 }

let jit_tariff =
  { dispatch = 0; arith = 1; load_store = 1; field = 2; array = 3;
    array_unchecked = 1; call = 10; alloc_base = 120; alloc_word = 4;
    native = 20; gc_base = 50_000; gc_word = 8 }

type sink = {
  sink_charge : int -> unit;
  sink_enter : string -> unit;
  sink_leave : unit -> unit;
  sink_alloc : words:int -> unit;
  sink_gc : cycles:int -> unit;
}

type t = {
  tariff : tariff;
  mutable cycles : int;
  mutable budget : int option;
  mutable sink : sink option;
  (* [slow] caches [budget <> None || sink <> None] so the common path of
     [charge] — no watchdog, no telemetry — is a single flag test. *)
  mutable slow : bool;
}

exception Budget_exceeded of int

let create ?sink tariff =
  { tariff; cycles = 0; budget = None; sink; slow = sink <> None }

let refresh_slow t = t.slow <- t.budget <> None || t.sink <> None

let set_budget t budget =
  t.budget <- budget;
  refresh_slow t

let set_sink t sink =
  t.sink <- sink;
  refresh_slow t

let cycles t = t.cycles

let reset t = t.cycles <- 0

(* The sink sees the charge even when it trips the watchdog: the cycles
   were added to the meter, so a profile stays reconciled on the
   Budget_exceeded path too. *)
let charge_slow t n =
  (match t.sink with None -> () | Some s -> s.sink_charge n);
  match t.budget with
  | Some limit when t.cycles > limit -> raise (Budget_exceeded t.cycles)
  | Some _ | None -> ()

let charge t n =
  t.cycles <- t.cycles + n;
  if t.slow then charge_slow t n

let enter_method t label =
  match t.sink with None -> () | Some s -> s.sink_enter label

(* Variant taking the qualified name in two halves so the disabled path
   does not even pay the string concatenation. *)
let enter_method_in t cls name =
  match t.sink with None -> () | Some s -> s.sink_enter (cls ^ "." ^ name)

let leave_method t =
  match t.sink with None -> () | Some s -> s.sink_leave ()

let profile_sink p =
  { sink_charge = Telemetry.Profile.charge p;
    sink_enter = Telemetry.Profile.enter p;
    sink_leave = (fun () -> Telemetry.Profile.leave p);
    sink_alloc = (fun ~words -> Telemetry.Profile.alloc p ~words);
    sink_gc = (fun ~cycles -> Telemetry.Profile.gc p ~cycles) }

let dispatch t = charge t t.tariff.dispatch
let arith t = charge t t.tariff.arith
let load_store t = charge t t.tariff.load_store
let field t = charge t t.tariff.field
let array t = charge t t.tariff.array
let array_unchecked t = charge t t.tariff.array_unchecked
let call t = charge t t.tariff.call
let alloc t ~words =
  charge t (t.tariff.alloc_base + (t.tariff.alloc_word * words));
  match t.sink with None -> () | Some s -> s.sink_alloc ~words

let native t = charge t t.tariff.native

let gc t ~live_words =
  let pause = t.tariff.gc_base + (t.tariff.gc_word * live_words) in
  charge t pause;
  match t.sink with None -> () | Some s -> s.sink_gc ~cycles:pause
