(** Deterministic execution-cost accounting.

    Both execution substrates charge abstract cycles per operation so that
    timing-shaped results (Table 1) can be checked machine-independently.
    The tariff models a late-90s JVM: interpretation dispatch dominates,
    allocation is expensive, arithmetic is cheap. *)

type tariff = {
  dispatch : int;   (** per interpreted operation *)
  arith : int;
  load_store : int; (** local variable access *)
  field : int;
  array : int;      (** element access, bounds check included *)
  array_unchecked : int;
      (** element access whose bounds check was statically elided *)
  call : int;       (** invocation overhead *)
  alloc_base : int; (** per allocation *)
  alloc_word : int; (** per allocated word *)
  native : int;
  gc_base : int;    (** per collection pause *)
  gc_word : int;    (** per live word scanned during a collection *)
}

val interpreter_tariff : tariff
(** Models a bytecode interpreter (the paper's "Sun JDK 1.1.4"). *)

val jit_tariff : tariff
(** Models compiled code (the paper's "Café JIT"): dispatch eliminated. *)

type sink = {
  sink_charge : int -> unit;  (** after every cycle charge, with its size *)
  sink_enter : string -> unit;  (** method entry, label ["Class.method"] *)
  sink_leave : unit -> unit;
  sink_alloc : words:int -> unit;  (** per allocation, after its charge *)
  sink_gc : cycles:int -> unit;  (** per GC pause, after its charge *)
}
(** Observation interface for the cost meter. The engines bracket every
    method body with {!enter_method}/{!leave_method}; a sink attached at
    machine creation therefore sees every cycle from load time onward
    and can attribute each to the innermost open method — the basis of
    the deterministic profiler ({!Telemetry.Profile}, adapted by
    {!profile_sink}). Allocation and GC events are reported in addition
    to (not instead of) their cycle charges. *)

type t

exception Budget_exceeded of int
(** Raised by {!charge} when a {!set_budget} limit is crossed; carries
    the cycle count at the moment of detection. Used as a runtime
    watchdog: a compliant reaction run under its static worst-case
    bound can never trip it. *)

val create : ?sink:sink -> ?lines:Telemetry.Lines.t -> tariff -> t

val set_budget : t -> int option -> unit
(** Absolute cycle count the meter may not exceed; [None] disables. *)

val set_sink : t -> sink option -> unit
(** Attaching after cycles have been spent loses the exact-reconciliation
    property; prefer [?sink] on creation (or on the engine's [create]). *)

val set_lines : t -> Telemetry.Lines.t option -> unit
(** Same caveat as {!set_sink}: attach at creation for exact
    reconciliation ([Telemetry.Lines.total] = {!cycles}). *)

val lines_on : t -> bool
(** Whether a line table is attached — engines with per-instruction
    position updates check this once per frame and skip the updates
    entirely when disabled. *)

val lines : t -> Telemetry.Lines.t option

val at_line : t -> Mj.Loc.t -> unit
(** Move the line profiler's position pointer to [loc]'s starting line.
    Dummy locations are ignored (charges stay on the last known line).
    One branch when no line table is attached. *)

val cycles : t -> int

val reset : t -> unit

val restore_cycles : t -> int -> unit
(** Set the meter to an absolute value (checkpoint restore). Unlike
    {!charge} this is not a charge: no budget check fires and no sink or
    line table observes it. *)

val charge : t -> int -> unit

val dispatch : t -> unit
val arith : t -> unit
val load_store : t -> unit
val field : t -> unit
val array : t -> unit
val array_unchecked : t -> unit
val call : t -> unit
val alloc : t -> words:int -> unit
val native : t -> unit
val gc : t -> live_words:int -> unit

val enter_method : t -> string -> unit
(** Notify the sink of a method entry. One branch when no sink is set. *)

val enter_method_in : t -> string -> string -> unit
(** [enter_method_in t cls name] = [enter_method t (cls ^ "." ^ name)],
    but only pays the concatenation when a sink is attached. *)

val leave_method : t -> unit

val bounds_trap : t -> unit
(** Record a bounds-check violation on the current source line (fired by
    the heap just before it raises). No cycle charge — the trap aborts
    the reaction. *)

val profile_sink : Telemetry.Profile.t -> sink
(** The standard sink: feed a deterministic per-method cycle profile. *)
