(** Loop-bound analysis (paper §4.3).

    [while]/[do-while] are forbidden outright. [for] loops are admitted
    when the iteration count is calculable: integer index with constant
    initial value, relational exit test against a compile-time constant
    (literal, [static final], or known field-array length), constant
    step, and an index that the body never modifies. *)

type bound_result =
  | Bounded of int      (** iteration count *)
  | Index_modified of string
  | Unrecognized of string

val for_bound :
  ?enclosing:Mj.Ast.stmt list ->
  Mj.Typecheck.checked ->
  Mj.Ast.stmt ->
  bound_result
(** Analyze a [For] statement ([Invalid_argument] on other kinds). The
    syntactic recognizer runs first; on [Unrecognized] the interval
    analysis over [enclosing] (the surrounding method body, defaulting
    to the loop alone) gets a chance to bound the loop — it sees
    constants flowing through locals and affine limit arithmetic the
    syntactic shape misses. *)

val syntactic_for_bound : Mj.Typecheck.checked -> Mj.Ast.stmt -> bound_result
(** The purely syntactic recognizer alone (no interval fallback). *)

val while_convertible : Mj.Typecheck.checked -> Mj.Ast.stmt -> bool
(** True when the SFR catalogue's while-to-for transformation applies:
    [while (i REL limit) { ...; i += c; }] with the step as the last
    statement and [i] otherwise unmodified. *)

val while_parts :
  Mj.Typecheck.checked ->
  Mj.Ast.stmt ->
  (string * Mj.Ast.expr * Mj.Ast.expr * Mj.Ast.stmt list) option
(** (index, condition, update expression, body prefix) when
    {!while_convertible}; also accepts [Do_while] statements of the same
    shape (the entry check is the caller's business). *)

val exit_test :
  Mj.Typecheck.checked ->
  index:string ->
  Mj.Ast.expr ->
  (Mj.Ast.binop * int) option
(** The relational exit test [index REL constant] of a condition. *)
