(* Escape analysis moved into the dataflow library (PR 7) so the
   refinement checker's hoist-alloc verification condition can use it
   without depending on the policy layer — the same motion Const_eval
   made in PR 2. Re-exported here to keep the [Policy.Escape] API
   stable. *)

include Analysis.Escape
