(* Constant evaluation moved into the dataflow library (PR 2) so the
   bytecode compiler's elision planner can use it without depending on
   the policy layer. Re-exported here to keep the [Policy.Const_eval]
   API stable. *)

include Analysis.Const_eval
