open Mj.Ast
module Cost = Mj_runtime.Cost

type bound = Cycles of int | Unbounded of string

exception Unbounded_exc of string

type ctx = {
  checked : Mj.Typecheck.checked;
  tariff : Cost.tariff;
  memo : (string * string, int) Hashtbl.t;
  in_progress : (string * string, unit) Hashtbl.t;
  (* The statements of the body currently being costed, so loop-bound
     queries can hand the interval analysis its enclosing context. *)
  mutable enclosing : stmt list;
}

let with_enclosing ctx stmts f =
  let saved = ctx.enclosing in
  ctx.enclosing <- stmts;
  Fun.protect ~finally:(fun () -> ctx.enclosing <- saved) f

let rec expr_cost ctx e =
  let t = ctx.tariff in
  let base = t.Cost.dispatch in
  base
  +
  match e.expr with
  | Int_lit _ | Double_lit _ | Bool_lit _ | String_lit _ | Null_lit | This -> 0
  | Name _ | Local _ -> t.Cost.load_store
  | Field_access (o, _) -> t.Cost.field + expr_cost ctx o
  | Static_field _ -> t.Cost.field
  | Array_length o -> t.Cost.field + expr_cost ctx o
  | Index (a, i) -> t.Cost.array + expr_cost ctx a + expr_cost ctx i
  | Call call -> call_cost ctx call
  | New_object (cls, args) ->
      t.Cost.alloc_base
      + List.fold_left (fun acc a -> acc + expr_cost ctx a) 0 args
      + ctor_cost ctx cls (List.length args)
  | New_array (_, dims) ->
      (* Allocation cost grows with the (statically known) size; use the
         constant when available, else charge the base only — the memory
         rule will have flagged reactive allocations anyway. *)
      t.Cost.alloc_base
      + List.fold_left
          (fun acc d ->
            acc + expr_cost ctx d
            + t.Cost.alloc_word
              * Option.value ~default:0 (Const_eval.const_int ctx.checked d))
          0 dims
  | Unary (_, x) -> t.Cost.arith + expr_cost ctx x
  | Binary (_, x, y) -> t.Cost.arith + expr_cost ctx x + expr_cost ctx y
  | Assign (lv, rhs) -> lvalue_cost ctx lv + expr_cost ctx rhs
  | Op_assign (_, lv, rhs) ->
      t.Cost.arith + (2 * lvalue_cost ctx lv) + expr_cost ctx rhs
  | Pre_incr (_, lv) | Post_incr (_, lv) ->
      t.Cost.arith + (2 * lvalue_cost ctx lv)
  | Cast (_, x) -> t.Cost.arith + expr_cost ctx x
  | Cond (c, a, b) ->
      t.Cost.arith + expr_cost ctx c + max (expr_cost ctx a) (expr_cost ctx b)

and lvalue_cost ctx = function
  | Lname _ | Llocal _ -> ctx.tariff.Cost.load_store
  | Lfield (o, _) -> ctx.tariff.Cost.field + expr_cost ctx o
  | Lstatic_field _ -> ctx.tariff.Cost.field
  | Lindex (a, i) -> ctx.tariff.Cost.array + expr_cost ctx a + expr_cost ctx i

and call_cost ctx call =
  let t = ctx.tariff in
  let args = List.fold_left (fun acc a -> acc + expr_cost ctx a) 0 call.args in
  let recv =
    match call.recv with
    | Rexpr o -> expr_cost ctx o
    | Rsuper | Rimplicit | Rstatic _ -> 0
  in
  let target =
    match call.resolved with
    | None -> raise (Unbounded_exc "unresolved call")
    | Some r ->
        if r.rc_native then t.Cost.native
        else named_method_cost ctx r.rc_class call.mname
  in
  t.Cost.call + args + recv + target

and ctor_cost ctx cls arity =
  body_cost ctx (cls, Printf.sprintf "<init>/%d" arity) (fun () ->
      match Mj.Symtab.lookup_ctor ctx.checked.Mj.Typecheck.symtab cls arity with
      | None -> raise (Unbounded_exc (Printf.sprintf "no constructor %s/%d" cls arity))
      | Some ctor ->
          let fields_cost =
            match find_class (Mj.Symtab.program ctx.checked.Mj.Typecheck.symtab) cls with
            | None -> 0
            | Some decl ->
                List.fold_left
                  (fun acc f ->
                    match f.f_init with
                    | Some e when not f.f_mods.is_static ->
                        acc + expr_cost ctx e + ctx.tariff.Cost.field
                    | Some _ | None -> 0 + acc)
                  0 decl.cl_fields
          in
          let super_cost =
            match
              (ctor.c_body, Mj.Symtab.superclass ctx.checked.Mj.Typecheck.symtab cls)
            with
            | { stmt = Super_call args; _ } :: _, Some super ->
                ctor_cost ctx super (List.length args)
            | _, Some super -> ctor_cost ctx super 0
            | _, None -> 0
          in
          let body =
            match ctor.c_body with
            | { stmt = Super_call _; _ } :: rest -> rest
            | body -> body
          in
          super_cost + fields_cost
          + with_enclosing ctx body (fun () -> stmts_cost ctx body))

and named_method_cost ctx cls mname =
  match Mj.Symtab.lookup_method ctx.checked.Mj.Typecheck.symtab cls mname with
  | None -> raise (Unbounded_exc (Printf.sprintf "no method %s.%s" cls mname))
  | Some (defining, m) -> (
      match m.m_body with
      | None -> ctx.tariff.Cost.native
      | Some body ->
          (* Dynamic dispatch: bound by the worst over all overrides. *)
          let overrides =
            List.filter_map
              (fun c ->
                if
                  (not (String.equal c.cl_name defining))
                  && Mj.Symtab.is_subclass ctx.checked.Mj.Typecheck.symtab
                       ~sub:c.cl_name ~super:defining
                then
                  Option.map
                    (fun m' -> (c.cl_name, m'))
                    (find_method c mname)
                else None)
              (Mj.Symtab.program ctx.checked.Mj.Typecheck.symtab).classes
          in
          let cost_of (owner, (m : method_decl)) =
            match m.m_body with
            | None -> ctx.tariff.Cost.native
            | Some body ->
                body_cost ctx (owner, mname) (fun () ->
                    with_enclosing ctx body (fun () -> stmts_cost ctx body))
          in
          List.fold_left
            (fun acc target -> max acc (cost_of target))
            (body_cost ctx (defining, mname) (fun () ->
                 with_enclosing ctx body (fun () -> stmts_cost ctx body)))
            overrides)

and body_cost ctx key compute =
  match Hashtbl.find_opt ctx.memo key with
  | Some cost -> cost
  | None ->
      if Hashtbl.mem ctx.in_progress key then
        raise
          (Unbounded_exc
             (Printf.sprintf "recursive invocation through %s.%s" (fst key)
                (snd key)));
      Hashtbl.replace ctx.in_progress key ();
      let cost = compute () in
      Hashtbl.remove ctx.in_progress key;
      Hashtbl.replace ctx.memo key cost;
      cost

and stmts_cost ctx stmts =
  List.fold_left (fun acc s -> acc + stmt_cost ctx s) 0 stmts

and stmt_cost ctx s =
  let t = ctx.tariff in
  t.Cost.dispatch
  +
  match s.stmt with
  | Block stmts -> stmts_cost ctx stmts
  | Var_decl (_, _, init) ->
      t.Cost.load_store
      + Option.fold ~none:0 ~some:(fun e -> expr_cost ctx e) init
  | Expr e -> expr_cost ctx e
  | If (c, then_s, else_s) ->
      expr_cost ctx c
      + max (stmt_cost ctx then_s)
          (Option.fold ~none:0 ~some:(fun e -> stmt_cost ctx e) else_s)
  | While _ -> raise (Unbounded_exc "while loop")
  | Do_while _ -> raise (Unbounded_exc "do-while loop")
  | For (init, cond, update, body) -> (
      match Loop_bounds.for_bound ~enclosing:ctx.enclosing ctx.checked s with
      | Loop_bounds.Bounded n ->
          let header =
            (match init with
            | Some (For_var (_, _, Some e)) | Some (For_expr e) -> expr_cost ctx e
            | Some (For_var (_, _, None)) | None -> 0)
            + Option.fold ~none:0 ~some:(fun e -> expr_cost ctx e) cond
          in
          let per_iteration =
            stmt_cost ctx body
            + Option.fold ~none:0 ~some:(fun e -> expr_cost ctx e) update
            + Option.fold ~none:0 ~some:(fun e -> expr_cost ctx e) cond
          in
          header + (n * per_iteration)
      | Loop_bounds.Index_modified name ->
          raise (Unbounded_exc (Printf.sprintf "loop index '%s' modified" name))
      | Loop_bounds.Unrecognized why ->
          raise (Unbounded_exc (Printf.sprintf "for loop: %s" why)))
  | Return e -> Option.fold ~none:0 ~some:(fun e -> expr_cost ctx e) e
  | Break | Continue | Empty -> 0
  | Super_call args ->
      List.fold_left (fun acc a -> acc + expr_cost ctx a) 0 args

let method_bound ?(tariff = Cost.interpreter_tariff) checked ~cls ~mname =
  let ctx =
    { checked; tariff; memo = Hashtbl.create 32;
      in_progress = Hashtbl.create 8; enclosing = [] }
  in
  try Cycles (named_method_cost ctx cls mname)
  with Unbounded_exc why -> Unbounded why

let reaction_bound ?tariff checked ~cls =
  method_bound ?tariff checked ~cls ~mname:"run"
