open Mj.Ast

(* Port signature of an ASR class: constant arguments of the
   declarePorts call in its constructors. *)
let port_signature checked cls_name =
  match find_class checked.Mj.Typecheck.program cls_name with
  | None -> None
  | Some decl ->
      let found = ref None in
      List.iter
        (fun ctor ->
          Mj.Visit.iter_exprs
            (fun e ->
              match e.expr with
              | Call { mname = "declarePorts"; args = [ a; b ]; _ } -> (
                  match
                    ( Const_eval.const_int checked a,
                      Const_eval.const_int checked b )
                  with
                  | Some n_in, Some n_out -> found := Some (Some (n_in, n_out))
                  | _ -> found := Some None)
              | _ -> ())
            ctor.c_body)
        decl.cl_ctors;
      !found

(* Occurrences of port operations in the reactive code of [cls]:
   (port number option, conditional?, in-loop?, location). *)
type port_access = {
  pa_port : int option;
  pa_conditional : bool;
  pa_loc : Mj.Loc.t;
  pa_subject : string;
}

let port_accesses checked cls_name ~methods_of_interest =
  let graph = Call_graph.build checked in
  let reachable =
    Call_graph.reachable graph ~roots:[ Call_graph.method_node cls_name "run" ]
  in
  let accesses = ref [] in
  List.iter
    (fun node ->
      match Phases.body_of_node checked node with
      | None -> ()
      | Some body ->
          (* A call found in any method other than run itself counts as
             conditional: we cannot cheaply prove the call site fires
             exactly once. *)
          let in_run =
            match body.Mj.Visit.b_kind with
            | Mj.Visit.Method m ->
                String.equal m.m_name "run" && String.equal (fst node) cls_name
            | Mj.Visit.Ctor _ | Mj.Visit.Field_init _ -> false
          in
          let rec walk ~conditional stmts =
            List.iter (walk_stmt ~conditional) stmts
          and walk_stmt ~conditional s =
            match s.stmt with
            | Block stmts -> walk ~conditional stmts
            | If (c, t, f) ->
                scan_expr ~conditional c;
                walk_stmt ~conditional:true t;
                Option.iter (walk_stmt ~conditional:true) f
            | While (c, body) ->
                scan_expr ~conditional:true c;
                walk_stmt ~conditional:true body
            | Do_while (body, c) ->
                (* a do-while body runs at least once, but possibly more *)
                scan_expr ~conditional:true c;
                walk_stmt ~conditional:true body
            | For (init, cond, update, body) ->
                (match init with
                | Some (For_var (_, _, Some e)) | Some (For_expr e) ->
                    scan_expr ~conditional e
                | Some (For_var (_, _, None)) | None -> ());
                Option.iter (scan_expr ~conditional:true) cond;
                Option.iter (scan_expr ~conditional:true) update;
                walk_stmt ~conditional:true body
            | Var_decl (_, _, init) -> Option.iter (scan_expr ~conditional) init
            | Expr e | Return (Some e) -> scan_expr ~conditional e
            | Super_call args -> List.iter (scan_expr ~conditional) args
            | Return None | Break | Continue | Empty -> ()
          and scan_expr ~conditional e =
            Mj.Visit.iter_stmts
              [ { stmt = Expr e; sloc = e.eloc } ]
              ~stmt:(fun _ -> ())
              ~expr:(fun e ->
                match e.expr with
                | Call { mname; args = port_arg :: _; _ }
                  when List.mem mname methods_of_interest ->
                    accesses :=
                      { pa_port = Const_eval.const_int checked port_arg;
                        pa_conditional = conditional || not in_run;
                        pa_loc = e.eloc;
                        pa_subject = Call_graph.node_name node }
                      :: !accesses
                | Call { mname; args = []; _ }
                  when List.mem mname methods_of_interest ->
                    accesses :=
                      { pa_port = None; pa_conditional = true; pa_loc = e.eloc;
                        pa_subject = Call_graph.node_name node }
                      :: !accesses
                | _ -> ())
          in
          walk ~conditional:false body.Mj.Visit.b_stmts)
    reachable;
  List.rev !accesses

let rec rule_static_ports =
  { Rule.id = "D0-static-ports";
    title = "the port signature must be a compile-time constant";
    paper_ref = "SDF extension: static actor signatures";
    check = check_static_ports }

and check_static_ports checked =
  List.filter_map
    (fun cls ->
      match port_signature checked cls with
      | Some (Some _) -> None
      | Some None | None ->
          let decl = find_class checked.Mj.Typecheck.program cls in
          Some
            (Rule.make_violation ~rule:rule_static_ports
               ~loc:(match decl with Some d -> d.cl_loc | None -> Mj.Loc.dummy)
               ~subject:cls
               ~fixes:
                 [ Rule.Manual
                     "call declarePorts with integer constants in the \
                      constructor" ]
               "port signature is not statically known"))
    (Phases.asr_classes checked)

let single_rate ~rule ~direction ~count_of ~methods checked =
  List.concat_map
    (fun cls ->
      match port_signature checked cls with
      | Some (Some signature) ->
          let n_ports = count_of signature in
          let accesses = port_accesses checked cls ~methods_of_interest:methods in
          let violations = ref [] in
          List.iter
            (fun access ->
              match access.pa_port with
              | None ->
                  violations :=
                    Rule.make_violation ~rule ~loc:access.pa_loc
                      ~subject:access.pa_subject
                      ~fixes:[ Rule.Manual "use a constant port number" ]
                      (Printf.sprintf "%s port is not a constant" direction)
                    :: !violations
              | Some _ when access.pa_conditional ->
                  violations :=
                    Rule.make_violation ~rule ~loc:access.pa_loc
                      ~subject:access.pa_subject
                      ~fixes:
                        [ Rule.Manual
                            (Printf.sprintf
                               "hoist the %s out of the loop/branch so every \
                                firing transfers exactly one token"
                               direction) ]
                      (Printf.sprintf "conditional %s access" direction)
                    :: !violations
              | Some _ -> ())
            accesses;
          (* exactly one unconditional access per port *)
          for port = 0 to n_ports - 1 do
            let hits =
              List.filter
                (fun a -> a.pa_port = Some port && not a.pa_conditional)
                accesses
            in
            match hits with
            | [ _ ] -> ()
            | [] ->
                let decl = find_class checked.Mj.Typecheck.program cls in
                violations :=
                  Rule.make_violation ~rule
                    ~loc:(match decl with Some d -> d.cl_loc | None -> Mj.Loc.dummy)
                    ~subject:(cls ^ ".run")
                    ~fixes:
                      [ Rule.Manual
                          (Printf.sprintf "add exactly one %s of port %d per firing"
                             direction port) ]
                    (Printf.sprintf "port %d has no unconditional %s" port direction)
                  :: !violations
            | _ :: _ :: _ ->
                List.iter
                  (fun a ->
                    violations :=
                      Rule.make_violation ~rule ~loc:a.pa_loc ~subject:a.pa_subject
                        ~fixes:
                          [ Rule.Manual
                              (Printf.sprintf
                                 "merge the multiple %ss of port %d into one"
                                 direction port) ]
                        (Printf.sprintf "port %d is %s more than once" port
                           direction)
                      :: !violations)
                  hits
          done;
          List.rev !violations
      | Some None | None -> [])
    (Phases.asr_classes checked)

let rec rule_single_reads =
  { Rule.id = "D1-single-rate-reads";
    title = "every input port is read exactly once per firing";
    paper_ref = "SDF extension: unit consumption rates";
    check =
      (fun checked ->
        single_rate ~rule:rule_single_reads ~direction:"read" ~count_of:fst
          ~methods:[ "readPort"; "readPortArray" ] checked) }

let rec rule_single_writes =
  { Rule.id = "D2-single-rate-writes";
    title = "every output port is written exactly once per firing";
    paper_ref = "SDF extension: unit production rates";
    check =
      (fun checked ->
        single_rate ~rule:rule_single_writes ~direction:"write" ~count_of:snd
          ~methods:[ "writePort"; "writePortArray" ] checked) }

let rec rule_no_presence =
  { Rule.id = "D3-no-presence-test";
    title = "token absence is not observable in dataflow";
    paper_ref = "SDF extension: blocking reads";
    check = check_no_presence }

and check_no_presence checked =
  List.concat_map
    (fun cls ->
      List.concat_map
        (fun body ->
          let violations = ref [] in
          Mj.Visit.iter_exprs
            (fun e ->
              match e.expr with
              | Call { mname = "portPresent"; _ } ->
                  violations :=
                    Rule.make_violation ~rule:rule_no_presence ~loc:e.eloc
                      ~subject:(Mj.Visit.body_name body)
                      ~fixes:
                        [ Rule.Manual
                            "restructure so every firing consumes its tokens \
                             unconditionally" ]
                      "portPresent used"
                    :: !violations
              | _ -> ())
            body.Mj.Visit.b_stmts;
          List.rev !violations)
        (Mj.Visit.bodies cls))
    checked.Mj.Typecheck.program.classes

(* Boundedness rules shared with the ASR policy. *)
let shared_rule_ids =
  [ "R1-no-threads"; "R2-no-reactive-allocation"; "R3-no-while-loops";
    "R4-bounded-for-loops"; "R5-no-recursion"; "R7-no-finalizers" ]

let rules =
  [ rule_static_ports; rule_single_reads; rule_single_writes; rule_no_presence ]
  @ List.filter
      (fun r -> List.mem r.Rule.id shared_rule_ids)
      Asr_policy.rules

let rule_ids = List.map (fun r -> r.Rule.id) rules

let check checked =
  Rule.order_violations (List.concat_map (fun r -> r.Rule.check checked) rules)

let compliant checked = not (List.exists Rule.is_blocking (check checked))
