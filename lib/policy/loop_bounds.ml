open Mj.Ast

type bound_result =
  | Bounded of int
  | Index_modified of string
  | Unrecognized of string

let local_name = function
  | Lname n | Llocal n -> Some n
  | Lfield _ | Lstatic_field _ | Lindex _ -> None

(* Does the statement list modify local [name]? *)
let modifies_local name stmts =
  Mj.Visit.exists_expr
    (fun e ->
      match e.expr with
      | Assign (lv, _) | Op_assign (_, lv, _) | Pre_incr (_, lv) | Post_incr (_, lv)
        -> (
          match local_name lv with
          | Some n -> String.equal n name
          | None -> false)
      | _ -> false)
    stmts

(* Constant step applied to index [name] by the update expression. *)
let step_of checked name update =
  match update.expr with
  | Pre_incr (d, lv) | Post_incr (d, lv) -> (
      match local_name lv with
      | Some n when String.equal n name -> Some d
      | _ -> None)
  | Op_assign (Add, lv, rhs) -> (
      match (local_name lv, Const_eval.const_int checked rhs) with
      | Some n, Some c when String.equal n name -> Some c
      | _ -> None)
  | Op_assign (Sub, lv, rhs) -> (
      match (local_name lv, Const_eval.const_int checked rhs) with
      | Some n, Some c when String.equal n name -> Some (-c)
      | _ -> None)
  | Assign (lv, { expr = Binary (Add, { expr = Local n2 | Name n2; _ }, rhs); _ })
    -> (
      match (local_name lv, Const_eval.const_int checked rhs) with
      | Some n, Some c when String.equal n name && String.equal n2 name -> Some c
      | _ -> None)
  | Assign (lv, { expr = Binary (Sub, { expr = Local n2 | Name n2; _ }, rhs); _ })
    -> (
      match (local_name lv, Const_eval.const_int checked rhs) with
      | Some n, Some c when String.equal n name && String.equal n2 name ->
          Some (-c)
      | _ -> None)
  | _ -> None

(* Exit test [i REL limit] (or mirrored) with a constant limit. *)
let test_of checked name cond =
  let limit_of e = Const_eval.const_int checked e in
  match cond.expr with
  | Binary (((Lt | Le | Gt | Ge) as op), { expr = Local n | Name n; _ }, limit)
    when String.equal n name -> (
      match limit_of limit with Some l -> Some (op, l) | None -> None)
  | Binary (((Lt | Le | Gt | Ge) as op), limit, { expr = Local n | Name n; _ })
    when String.equal n name -> (
      match limit_of limit with
      | Some l ->
          let mirrored =
            match op with Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le | _ -> op
          in
          Some (mirrored, l)
      | None -> None)
  | _ -> None

let min32 = -0x8000_0000
let max32 = 0x7fff_ffff

let iterations ~start ~limit ~step ~op =
  let count =
    match op with
    | Lt -> if step > 0 then (limit - start + step - 1) / step else -1
    | Le -> if step > 0 then (limit - start + step) / step else -1
    | Gt -> if step < 0 then (start - limit - step - 1) / -step else -1
    | Ge -> if step < 0 then (start - limit - step) / -step else -1
    | _ -> -1
  in
  if count < 0 then None
  else if count = 0 then Some 0
  else
    (* The closed form assumes exact arithmetic, but the concrete index
       wraps at int32: the last executed increment must stay
       representable or the loop runs far past the computed count
       (e.g. [i < 2147483646; i += 4] wraps before failing the test). *)
    let no_wrap =
      match op with
      | Lt -> limit - 1 + step <= max32
      | Le -> limit + step <= max32
      | Gt -> limit + 1 + step >= min32
      | Ge -> limit + step >= min32
      | _ -> false
    in
    if no_wrap then Some count else None

(* The original syntactic recognizer: [int i = <const>; i REL <const>;
   i += <const>]. Kept as the fast path; the interval fallback below
   subsumes it for everything it accepts. *)
let syntactic_for_bound checked s =
  match s.stmt with
  | For (init, cond, update, body) -> (
      let index =
        match init with
        | Some (For_var (TInt, name, Some start)) ->
            Option.map (fun n -> (name, n)) (Const_eval.const_int checked start)
        | Some (For_expr { expr = Assign (lv, start); _ }) -> (
            match (local_name lv, Const_eval.const_int checked start) with
            | Some name, Some n -> Some (name, n)
            | _ -> None)
        | Some (For_var _) | Some (For_expr _) | None -> None
      in
      match index with
      | None -> Unrecognized "initializer is not 'int i = <constant>'"
      | Some (name, start) -> (
          match cond with
          | None -> Unrecognized "missing exit test"
          | Some cond -> (
              match test_of checked name cond with
              | None ->
                  Unrecognized
                    "exit test is not '<index> REL <compile-time constant>'"
              | Some (op, limit) -> (
                  match update with
                  | None -> Unrecognized "missing update"
                  | Some update -> (
                      match step_of checked name update with
                      | None ->
                          Unrecognized "update is not a constant step of the index"
                      | Some step ->
                          if modifies_local name [ body ] then Index_modified name
                          else (
                            match iterations ~start ~limit ~step ~op with
                            | Some n -> Bounded n
                            | None ->
                                Unrecognized
                                  "step direction or int32 wrap-around leaves \
                                   the loop unbounded"))))))
  | Block _ | Var_decl _ | Expr _ | If _ | While _ | Do_while _ | Return _
  | Break | Continue | Super_call _ | Empty ->
      invalid_arg "Loop_bounds.for_bound: not a for statement"

(* Full bound computation: syntactic first, then the interval analysis
   over [enclosing] (the method body containing the loop; defaults to
   the loop alone). The fallback sees bounds flowing through locals,
   affine limit arithmetic, and nested-loop index ranges — anything the
   abstract environment at the loop head pins down. Entry parameters
   and call results are top there, so loops governed by runtime inputs
   stay Unrecognized. *)
let for_bound ?enclosing checked s =
  match syntactic_for_bound checked s with
  | (Bounded _ | Index_modified _) as r -> r
  | Unrecognized _ as r -> (
      let enclosing = match enclosing with Some ss -> ss | None -> [ s ] in
      let summary = Analysis.Interval.analyze checked enclosing in
      match Analysis.Interval.for_bound checked summary s with
      | Some n -> Bounded n
      | None -> r)

(* while (i REL limit) { body...; i += c; } where body does not
   otherwise touch i, and limit/step are compile-time constants. A
   [break]/[continue] in the body would change meaning under the
   conversion (the step moves into the for header), so those disqualify. *)
let loop_parts checked cond body =
  let stmts = match body.stmt with Block b -> b | _ -> [ body ] in
  let has_jump =
    Mj.Visit.exists_stmt
      (fun s -> match s.stmt with Break | Continue -> true | _ -> false)
      stmts
  in
  if has_jump then None
  else
    match List.rev stmts with
    | { stmt = Expr update; _ } :: rev_prefix -> (
        let index =
          match cond.expr with
          | Binary ((Lt | Le | Gt | Ge), { expr = Local n | Name n; _ }, _) ->
              Some n
          | Binary ((Lt | Le | Gt | Ge), _, { expr = Local n | Name n; _ }) ->
              Some n
          | _ -> None
        in
        match index with
        | None -> None
        | Some name -> (
            match (test_of checked name cond, step_of checked name update) with
            | Some _, Some step
              when step <> 0 && not (modifies_local name (List.rev rev_prefix))
              ->
                Some (name, cond, update, List.rev rev_prefix)
            | _ -> None))
    | _ -> None

let while_parts checked s =
  match s.stmt with
  | While (cond, body) | Do_while (body, cond) -> loop_parts checked cond body
  | Block _ | Var_decl _ | Expr _ | If _ | For _ | Return _ | Break
  | Continue | Super_call _ | Empty ->
      None

let while_convertible checked s =
  match s.stmt with
  | While _ -> while_parts checked s <> None
  | Block _ | Var_decl _ | Expr _ | If _ | Do_while _ | For _ | Return _
  | Break | Continue | Super_call _ | Empty ->
      false

let exit_test checked ~index cond = test_of checked index cond
