open Mj.Ast

(* ------------------------------------------------------------------ *)
(* R1: no threads                                                      *)
(* ------------------------------------------------------------------ *)

let rec rule_no_threads =
  { Rule.id = "R1-no-threads";
    title = "direct use of Java threads is prohibited";
    paper_ref =
      "§4.3: \"direct use of Java threads is prohibited, and concurrency is \
       obtained through specification of separate functional blocks\"";
    check = check_no_threads }

and check_no_threads checked =
  let tab = checked.Mj.Typecheck.symtab in
  let violations = ref [] in
  let manual =
    Rule.Manual
      "express each thread as a separate ASR functional block; communicate \
       through channels instead of shared variables"
  in
  List.iter
    (fun cls ->
      if
        (not (String.equal cls.cl_name "Thread"))
        && Mj.Symtab.is_subclass tab ~sub:cls.cl_name ~super:"Thread"
      then
        violations :=
          Rule.make_violation ~rule:rule_no_threads ~loc:cls.cl_loc
            ~subject:cls.cl_name ~fixes:[ manual ]
            (Printf.sprintf "class '%s' extends Thread" cls.cl_name)
          :: !violations;
      List.iter
        (fun body ->
          Mj.Visit.iter_exprs
            (fun e ->
              match e.expr with
              | Call { mname = ("start" | "join" | "yield") as mname; resolved = Some r; _ }
                when String.equal r.rc_class "Thread" ->
                  violations :=
                    Rule.make_violation ~rule:rule_no_threads ~loc:e.eloc
                      ~subject:(Mj.Visit.body_name body) ~fixes:[ manual ]
                      (Printf.sprintf "call to Thread.%s" mname)
                    :: !violations
              | _ -> ())
            body.Mj.Visit.b_stmts)
        (Mj.Visit.bodies cls))
    checked.Mj.Typecheck.program.classes;
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* R2: allocation only during initialization                           *)
(* ------------------------------------------------------------------ *)

let rec rule_no_reactive_alloc =
  { Rule.id = "R2-no-reactive-allocation";
    title = "objects may be instantiated only during initialization";
    paper_ref =
      "§4.3: \"one important restriction is that objects may be instantiated \
       only during initialization\"";
    check = check_no_reactive_alloc }

and check_no_reactive_alloc checked =
  let graph = Call_graph.build checked in
  let violations = ref [] in
  List.iter
    (fun (node, body) ->
      (* Only reactive-phase *methods* matter; constructors reached from
         run would themselves be flagged as allocations at the new-site. *)
      match body.Mj.Visit.b_kind with
      | Mj.Visit.Ctor _ | Mj.Visit.Field_init _ -> ()
      | Mj.Visit.Method _ ->
          (* Sites the hoist-alloc transformation will actually rewrite. *)
          let hoistable = Hashtbl.create 8 in
          Mj.Visit.iter_stmts body.Mj.Visit.b_stmts
            ~expr:(fun _ -> ())
            ~stmt:(fun s ->
              if Escape.hoistable_decl checked ~method_body:body.Mj.Visit.b_stmts s
              then
                match s.stmt with
                | Var_decl (_, _, Some init) -> Hashtbl.replace hoistable init.eloc ()
                | _ -> ());
          Mj.Visit.iter_exprs
            (fun e ->
              match e.expr with
              | New_array (_, _) ->
                  let fixes =
                    if Hashtbl.mem hoistable e.eloc then
                      [ Rule.Automatic "hoist-alloc";
                        Rule.Manual
                          "preallocate the array in the constructor and reuse it" ]
                    else
                      [ Rule.Manual
                          "preallocate a maximum-size buffer during \
                           initialization and index into it" ]
                  in
                  violations :=
                    Rule.make_violation ~rule:rule_no_reactive_alloc ~loc:e.eloc
                      ~subject:(Call_graph.node_name node) ~fixes
                      "array allocated in the reactive phase"
                    :: !violations
              | New_object (cls, _) ->
                  violations :=
                    Rule.make_violation ~rule:rule_no_reactive_alloc ~loc:e.eloc
                      ~subject:(Call_graph.node_name node)
                      ~fixes:
                        [ Rule.Manual
                            (Printf.sprintf
                               "construct the '%s' instance during \
                                initialization and reset its state per reaction"
                               cls) ]
                      (Printf.sprintf "object of class '%s' allocated in the \
                                       reactive phase" cls)
                    :: !violations
              | _ -> ())
            body.Mj.Visit.b_stmts)
    (Phases.reactive_bodies checked graph);
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* R3/R4: loops                                                        *)
(* ------------------------------------------------------------------ *)

let rec rule_no_while =
  { Rule.id = "R3-no-while-loops";
    title = "while and do-while loops may not be used";
    paper_ref = "§4.3: \"while and do while loops may not be used\"";
    check = check_no_while }

and check_no_while checked =
  let violations = ref [] in
  List.iter
    (fun cls ->
      List.iter
        (fun body ->
          Mj.Visit.iter_stmts body.Mj.Visit.b_stmts
            ~expr:(fun _ -> ())
            ~stmt:(fun s ->
              match s.stmt with
              | While _ ->
                  let fixes =
                    if Loop_bounds.while_convertible checked s then
                      [ Rule.Automatic "while-to-for" ]
                    else
                      [ Rule.Manual
                          "rewrite as a for loop with a calculable bound" ]
                  in
                  violations :=
                    Rule.make_violation ~rule:rule_no_while ~loc:s.sloc
                      ~subject:(Mj.Visit.body_name body) ~fixes
                      "while loop"
                    :: !violations
              | Do_while _ ->
                  violations :=
                    Rule.make_violation ~rule:rule_no_while ~loc:s.sloc
                      ~subject:(Mj.Visit.body_name body)
                      ~fixes:[ Rule.Automatic "do-while-to-for" ]
                      "do-while loop"
                    :: !violations
              | _ -> ()))
        (Mj.Visit.bodies cls))
    checked.Mj.Typecheck.program.classes;
  List.rev !violations

let rec rule_bounded_for =
  { Rule.id = "R4-bounded-for-loops";
    title = "for loops need calculable bounds and an unmodified index";
    paper_ref =
      "§4.3: \"calculable upper bounds on loop iterations are required ... \
       the iteration variable in for loops cannot be modified within the \
       loop\"";
    check = check_bounded_for }

and check_bounded_for checked =
  let violations = ref [] in
  List.iter
    (fun cls ->
      List.iter
        (fun body ->
          Mj.Visit.iter_stmts body.Mj.Visit.b_stmts
            ~expr:(fun _ -> ())
            ~stmt:(fun s ->
              match s.stmt with
              | For _ -> (
                  match
                    Loop_bounds.for_bound ~enclosing:body.Mj.Visit.b_stmts
                      checked s
                  with
                  | Loop_bounds.Bounded _ -> ()
                  | Loop_bounds.Index_modified name ->
                      violations :=
                        Rule.make_violation ~rule:rule_bounded_for ~loc:s.sloc
                          ~subject:(Mj.Visit.body_name body)
                          ~fixes:
                            [ Rule.Manual
                                "hoist the index modification out of the body" ]
                          (Printf.sprintf
                             "loop index '%s' is modified inside the body" name)
                        :: !violations
                  | Loop_bounds.Unrecognized why ->
                      violations :=
                        Rule.make_violation ~rule:rule_bounded_for ~loc:s.sloc
                          ~subject:(Mj.Visit.body_name body)
                          ~fixes:
                            [ Rule.Manual
                                "use a constant (literal, static final, or \
                                 fixed array length) bound with a constant step" ]
                          (Printf.sprintf "iteration count is not calculable: %s"
                             why)
                        :: !violations)
              | _ -> ()))
        (Mj.Visit.bodies cls))
    checked.Mj.Typecheck.program.classes;
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* R5: no recursion                                                    *)
(* ------------------------------------------------------------------ *)

let rec rule_no_recursion =
  { Rule.id = "R5-no-recursion";
    title = "circular method invocations are not allowed";
    paper_ref = "§4.3: \"circular method invocations are not allowed\"";
    check = check_no_recursion }

and check_no_recursion checked =
  let graph = Call_graph.build checked in
  let user_classes =
    List.map (fun c -> c.cl_name) checked.Mj.Typecheck.program.classes
  in
  List.filter_map
    (fun ((cls, _) as node) ->
      if List.mem cls user_classes then
        Some
          (Rule.make_violation ~rule:rule_no_recursion
             ~loc:(Call_graph.node_loc graph node)
             ~subject:(Call_graph.node_name node)
             ~fixes:
               [ Rule.Manual
                   "convert the recursion into an iteration with an explicit \
                    statically-sized stack" ]
             "method participates in a call cycle")
      else None)
    (Call_graph.recursive_nodes graph)

(* ------------------------------------------------------------------ *)
(* R6: private state                                                   *)
(* ------------------------------------------------------------------ *)

let field_accessed_externally checked ~cls ~field =
  let program = Mj.Symtab.program checked.Mj.Typecheck.symtab in
  List.exists
    (fun c ->
      (not (String.equal c.cl_name cls))
      && List.exists
           (fun body ->
             Mj.Visit.exists_expr
               (fun e ->
                 let hits o fname =
                   String.equal fname field
                   &&
                   match o.ety with
                   | Some (TClass c2) ->
                       Mj.Symtab.is_subclass checked.Mj.Typecheck.symtab
                         ~sub:c2 ~super:cls
                   | _ -> false
                 in
                 match e.expr with
                 | Field_access (o, fname) -> hits o fname
                 | Assign (Lfield (o, fname), _)
                 | Op_assign (_, Lfield (o, fname), _)
                 | Pre_incr (_, Lfield (o, fname))
                 | Post_incr (_, Lfield (o, fname)) ->
                     hits o fname
                 | _ -> false)
               body.Mj.Visit.b_stmts)
           (Mj.Visit.bodies c))
    program.classes

let rec rule_private_state =
  { Rule.id = "R6-private-state";
    title = "an ASR object's variables must be private";
    paper_ref =
      "§4.3: \"we must also take care that an ASR object's internal state may \
       not be externally accessible by requiring the object's variables to be \
       private\"";
    check = check_private_state }

and check_private_state checked =
  let violations = ref [] in
  List.iter
    (fun cls ->
      List.iter
        (fun f ->
          if (not f.f_mods.is_static) && f.f_mods.visibility <> Private then begin
            let fixes =
              if
                field_accessed_externally checked ~cls:cls.cl_name
                  ~field:f.f_name
              then
                [ Rule.Manual
                    "add accessor methods (or channels) and make the field \
                     private" ]
              else [ Rule.Automatic "privatize-fields" ]
            in
            violations :=
              Rule.make_violation ~rule:rule_private_state ~loc:f.f_loc
                ~subject:(cls.cl_name ^ "." ^ f.f_name)
                ~fixes "instance field is not private"
              :: !violations
          end)
        cls.cl_fields)
    checked.Mj.Typecheck.program.classes;
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* R7: no finalizers                                                   *)
(* ------------------------------------------------------------------ *)

let rec rule_no_finalizers =
  { Rule.id = "R7-no-finalizers";
    title = "finalization is disallowed";
    paper_ref =
      "§4: \"finalization is disallowed, as it may be considered as \
       representing the termination or destruction of the system\"";
    check = check_no_finalizers }

and check_no_finalizers checked =
  List.concat_map
    (fun cls ->
      List.filter_map
        (fun m ->
          if String.equal m.m_name "finalize" then
            Some
              (Rule.make_violation ~rule:rule_no_finalizers ~loc:m.m_loc
                 ~subject:(cls.cl_name ^ ".finalize")
                 ~fixes:[ Rule.Automatic "remove-finalizers" ]
                 "finalizer declared")
          else None)
        cls.cl_methods)
    checked.Mj.Typecheck.program.classes

(* ------------------------------------------------------------------ *)
(* R8: linked structures (caution)                                     *)
(* ------------------------------------------------------------------ *)

let rec rule_linked_structures =
  { Rule.id = "R8-linked-structures";
    title = "linked data structures should be statically allocated";
    paper_ref =
      "§4.3: \"the use of linked structures ... should be checked for and \
       eliminated in favor of statically allocated data structures\"";
    check = check_linked_structures }

and check_linked_structures checked =
  (* Classes on a cycle of the instance-field type-reference graph. *)
  let program = checked.Mj.Typecheck.program in
  let user = List.map (fun c -> c.cl_name) program.classes in
  let refs cls =
    List.filter_map
      (fun f ->
        if f.f_mods.is_static then None
        else
          let rec class_of = function
            | TClass c when List.mem c user -> Some c
            | TArray elem -> class_of elem
            | TClass _ | TInt | TBool | TDouble | TString | TVoid | TNull ->
                None
          in
          class_of f.f_ty)
      cls.cl_fields
  in
  let on_cycle = Hashtbl.create 8 in
  let state = Hashtbl.create 8 in
  let rec visit stack name =
    match Hashtbl.find_opt state name with
    | Some `In_progress ->
        let rec mark = function
          | [] -> ()
          | n :: rest ->
              Hashtbl.replace on_cycle n ();
              if not (String.equal n name) then mark rest
        in
        mark stack
    | Some `Done -> ()
    | None ->
        Hashtbl.replace state name `In_progress;
        (match find_class program name with
        | Some cls -> List.iter (visit (name :: stack)) (refs cls)
        | None -> ());
        Hashtbl.replace state name `Done
  in
  List.iter (fun c -> visit [] c.cl_name) program.classes;
  List.filter_map
    (fun cls ->
      if Hashtbl.mem on_cycle cls.cl_name then
        Some
          (Rule.make_violation ~rule:rule_linked_structures ~severity:Rule.Caution
             ~loc:cls.cl_loc ~subject:cls.cl_name
             ~fixes:
               [ Rule.Manual
                   "replace the linked structure with statically allocated \
                    arrays sized for the worst case" ]
             "class participates in a linked (self-referential) structure")
      else None)
    program.classes

(* ------------------------------------------------------------------ *)
(* R9: bounded reaction time                                           *)
(* ------------------------------------------------------------------ *)

let rec rule_bounded_reaction =
  { Rule.id = "R9-bounded-reaction";
    title = "the reaction must have a computable worst-case time bound";
    paper_ref =
      "§4.3: \"computation of the output must be bounded in time; otherwise \
       the system's execution would never advance to the next instant\"";
    check = check_bounded_reaction }

and check_bounded_reaction checked =
  List.filter_map
    (fun cls ->
      match Time_bound.reaction_bound checked ~cls with
      | Time_bound.Cycles _ -> None
      | Time_bound.Unbounded why ->
          let decl = find_class checked.Mj.Typecheck.program cls in
          Some
            (Rule.make_violation ~rule:rule_bounded_reaction
               ~loc:(match decl with Some d -> d.cl_loc | None -> Mj.Loc.dummy)
               ~subject:(cls ^ ".run")
               ~fixes:
                 [ Rule.Manual
                     "remove the unbounded construct (see R3/R4/R5 findings)" ]
               (Printf.sprintf "no worst-case reaction bound: %s" why)))
    (Phases.asr_classes checked)

(* ------------------------------------------------------------------ *)
(* R10: no shared-field races                                          *)
(* ------------------------------------------------------------------ *)

let rec rule_no_races =
  { Rule.id = "R10-no-shared-field-races";
    title = "static fields may not be shared between threads with writes";
    paper_ref =
      "§4.2/Fig. 8: the unrestricted threaded example communicates through \
       an unprotected shared variable; the ASR restriction removes the race \
       by construction";
    check = check_no_races }

and check_no_races checked =
  List.concat_map
    (fun (r : Analysis.Races.race) ->
      let related =
        (* at least one racing write and one racing read, so a JSON
           consumer can point at both sides of the race *)
        let take what sites =
          match sites with (_, loc) :: _ -> [ (what, loc) ] | [] -> []
        in
        take "write" r.Analysis.Races.r_writes @ take "read" r.r_reads
      in
      let head =
        Rule.make_violation ~rule:rule_no_races ~loc:r.Analysis.Races.r_loc
          ~subject:(r.r_class ^ "." ^ r.r_field)
          ~fixes:
            [ Rule.Manual
                "communicate through an ASR channel (or join before reading) \
                 instead of an unsynchronized static field" ]
          ~related
          (Analysis.Races.describe r)
      in
      let site (root, loc) what =
        Rule.make_violation ~rule:rule_no_races ~severity:Rule.Caution ~loc
          ~subject:(r.r_class ^ "." ^ r.r_field)
          ~fixes:[]
          (Printf.sprintf "%s of racy field from %s" what
             (Analysis.Races.root_label root))
      in
      head
      :: (List.map (fun w -> site w "write") r.r_writes
         @ List.map (fun rd -> site rd "read") r.r_reads))
    (Analysis.Races.detect checked)

(* ------------------------------------------------------------------ *)

let rules =
  [ rule_no_threads; rule_no_reactive_alloc; rule_no_while; rule_bounded_for;
    rule_no_recursion; rule_private_state; rule_no_finalizers;
    rule_linked_structures; rule_bounded_reaction; rule_no_races ]

let rule_ids = List.map (fun r -> r.Rule.id) rules

let check checked =
  Rule.order_violations (List.concat_map (fun r -> r.Rule.check checked) rules)

let compliant checked = not (List.exists Rule.is_blocking (check checked))

let check_source ?(file = "<source>") src =
  check (Mj.Typecheck.check_source ~file src)
