(** Policy-of-use framework (paper §2): a policy is a set of rules; each
    rule is a static analysis producing violations, and each violation
    carries suggested fixes — automated transformations where possible,
    guidance for the user otherwise. *)

type severity =
  | Forbidden  (** the program is outside S′ until fixed *)
  | Caution    (** admissible but fragile; the paper flags these too *)

type fix =
  | Automatic of string
      (** id of a transformation in the SFR engine's catalogue *)
  | Manual of string  (** guidance shown to the designer *)

type violation = {
  rule_id : string;
  severity : severity;
  loc : Mj.Loc.t;
  subject : string;  (** "Class.method" or "Class.field" context *)
  message : string;
  fixes : fix list;
  related : (string * Mj.Loc.t) list;
      (** secondary locations as [(role, loc)] pairs — e.g. a race
          report carries at least one racing ["write"] and one racing
          ["read"] site in addition to the field declaration *)
}

type t = {
  id : string;
  title : string;
  paper_ref : string;  (** claim in the paper this rule implements *)
  check : Mj.Typecheck.checked -> violation list;
}

val make_violation :
  rule:t ->
  ?severity:severity ->
  loc:Mj.Loc.t ->
  subject:string ->
  ?fixes:fix list ->
  ?related:(string * Mj.Loc.t) list ->
  string ->
  violation

val is_blocking : violation -> bool
(** Forbidden violations block compliance; cautions do not. *)

val order_violations : violation list -> violation list
(** Canonical report order: violations grouped by rule (in the order
    rules first reported) and sorted by location — (file, line, col) —
    within each group. {!report_to_json} applies this, honouring the
    "ordered by rule then location" contract of the policy checkers. *)

val automatic_fixes : violation -> string list

val pp_violation : Format.formatter -> violation -> unit

val pp_report : Format.formatter -> violation list -> unit

val violation_to_json : violation -> string
(** One violation as a JSON object: rule id, severity, span (file, line,
    col, end_line, end_col), subject, message, suggested fixes, and a
    ["related"] array of secondary locations. *)

val report_to_json : violation list -> string
(** Whole report as [{"compliant": bool, "violations": [...]}]. *)
