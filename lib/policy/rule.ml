type severity = Forbidden | Caution

type fix = Automatic of string | Manual of string

type violation = {
  rule_id : string;
  severity : severity;
  loc : Mj.Loc.t;
  subject : string;
  message : string;
  fixes : fix list;
  related : (string * Mj.Loc.t) list;
      (* secondary locations: (role, loc), e.g. a racing read and a
         racing write backing up a shared-field report *)
}

type t = {
  id : string;
  title : string;
  paper_ref : string;
  check : Mj.Typecheck.checked -> violation list;
}

let make_violation ~rule ?(severity = Forbidden) ~loc ~subject ?(fixes = [])
    ?(related = []) message =
  { rule_id = rule.id; severity; loc; subject; message; fixes; related }

let is_blocking v = v.severity = Forbidden

let automatic_fixes v =
  List.filter_map
    (function Automatic id -> Some id | Manual _ -> None)
    v.fixes

let pp_fix ppf = function
  | Automatic id -> Format.fprintf ppf "automatic: %s" id
  | Manual hint -> Format.fprintf ppf "manual: %s" hint

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %a: %s (%s)%s" v.rule_id Mj.Loc.pp v.loc v.message
    v.subject
    (if v.severity = Caution then " [caution]" else "");
  List.iter (fun f -> Format.fprintf ppf "@.      -> %a" pp_fix f) v.fixes

let pp_report ppf violations =
  match violations with
  | [] -> Format.fprintf ppf "policy of use: compliant (no violations)@."
  | vs ->
      Format.fprintf ppf "policy of use: %d violation(s)@." (List.length vs);
      List.iter (fun v -> Format.fprintf ppf "  %a@." pp_violation v) vs

(* Machine-readable report (hand-rolled JSON; no external deps). *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fix_to_json = function
  | Automatic id ->
      Printf.sprintf {|{"kind":"automatic","transform":"%s"}|} (json_escape id)
  | Manual hint ->
      Printf.sprintf {|{"kind":"manual","hint":"%s"}|} (json_escape hint)

let related_to_json (role, loc) =
  Printf.sprintf {|{"role":"%s","file":"%s","line":%d,"col":%d}|}
    (json_escape role)
    (json_escape loc.Mj.Loc.file)
    loc.Mj.Loc.start_pos.Mj.Loc.line loc.Mj.Loc.start_pos.Mj.Loc.col

let violation_to_json v =
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"end_line":%d,"end_col":%d,"subject":"%s","message":"%s","fixes":[%s],"related":[%s]}|}
    (json_escape v.rule_id)
    (match v.severity with Forbidden -> "forbidden" | Caution -> "caution")
    (json_escape v.loc.Mj.Loc.file)
    v.loc.Mj.Loc.start_pos.Mj.Loc.line v.loc.Mj.Loc.start_pos.Mj.Loc.col
    v.loc.Mj.Loc.end_pos.Mj.Loc.line v.loc.Mj.Loc.end_pos.Mj.Loc.col
    (json_escape v.subject) (json_escape v.message)
    (String.concat "," (List.map fix_to_json v.fixes))
    (String.concat "," (List.map related_to_json v.related))

let report_to_json violations =
  Printf.sprintf
    {|{"compliant":%b,"violations":[%s]}|}
    (not (List.exists is_blocking violations))
    (String.concat ",\n " (List.map violation_to_json violations))
