type severity = Forbidden | Caution

type fix = Automatic of string | Manual of string

type violation = {
  rule_id : string;
  severity : severity;
  loc : Mj.Loc.t;
  subject : string;
  message : string;
  fixes : fix list;
  related : (string * Mj.Loc.t) list;
      (* secondary locations: (role, loc), e.g. a racing read and a
         racing write backing up a shared-field report *)
}

type t = {
  id : string;
  title : string;
  paper_ref : string;
  check : Mj.Typecheck.checked -> violation list;
}

let make_violation ~rule ?(severity = Forbidden) ~loc ~subject ?(fixes = [])
    ?(related = []) message =
  { rule_id = rule.id; severity; loc; subject; message; fixes; related }

let is_blocking v = v.severity = Forbidden

(* Canonical report order: grouped by rule (first-report order — rule
   ids are not sorted lexically, so R10 stays after R9), violations
   within a group sorted by source location. Checkers emit per-rule
   groups already; what they do NOT guarantee is location order inside
   a group (e.g. the shared-field rule reports at the field head with
   write/read sites discovered in traversal order). *)
let order_violations violations =
  let rank = Hashtbl.create 8 in
  List.iter
    (fun v ->
      if not (Hashtbl.mem rank v.rule_id) then
        Hashtbl.add rank v.rule_id (Hashtbl.length rank))
    violations;
  let compare_loc a b =
    let c = compare a.Mj.Loc.file b.Mj.Loc.file in
    if c <> 0 then c
    else
      let pa = a.Mj.Loc.start_pos and pb = b.Mj.Loc.start_pos in
      let c = compare pa.Mj.Loc.line pb.Mj.Loc.line in
      if c <> 0 then c else compare pa.Mj.Loc.col pb.Mj.Loc.col
  in
  List.stable_sort
    (fun a b ->
      let c =
        compare (Hashtbl.find rank a.rule_id) (Hashtbl.find rank b.rule_id)
      in
      if c <> 0 then c else compare_loc a.loc b.loc)
    violations

let automatic_fixes v =
  List.filter_map
    (function Automatic id -> Some id | Manual _ -> None)
    v.fixes

let pp_fix ppf = function
  | Automatic id -> Format.fprintf ppf "automatic: %s" id
  | Manual hint -> Format.fprintf ppf "manual: %s" hint

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %a: %s (%s)%s" v.rule_id Mj.Loc.pp v.loc v.message
    v.subject
    (if v.severity = Caution then " [caution]" else "");
  List.iter (fun f -> Format.fprintf ppf "@.      -> %a" pp_fix f) v.fixes

let pp_report ppf violations =
  match violations with
  | [] -> Format.fprintf ppf "policy of use: compliant (no violations)@."
  | vs ->
      Format.fprintf ppf "policy of use: %d violation(s)@." (List.length vs);
      List.iter (fun v -> Format.fprintf ppf "  %a@." pp_violation v) vs

(* Machine-readable report (hand-rolled JSON; no external deps). *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fix_to_json = function
  | Automatic id ->
      Printf.sprintf {|{"kind":"automatic","transform":"%s"}|} (json_escape id)
  | Manual hint ->
      Printf.sprintf {|{"kind":"manual","hint":"%s"}|} (json_escape hint)

let related_to_json (role, loc) =
  Printf.sprintf {|{"role":"%s","file":"%s","line":%d,"col":%d}|}
    (json_escape role)
    (json_escape loc.Mj.Loc.file)
    loc.Mj.Loc.start_pos.Mj.Loc.line loc.Mj.Loc.start_pos.Mj.Loc.col

let violation_to_json v =
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"end_line":%d,"end_col":%d,"subject":"%s","message":"%s","fixes":[%s],"related":[%s]}|}
    (json_escape v.rule_id)
    (match v.severity with Forbidden -> "forbidden" | Caution -> "caution")
    (json_escape v.loc.Mj.Loc.file)
    v.loc.Mj.Loc.start_pos.Mj.Loc.line v.loc.Mj.Loc.start_pos.Mj.Loc.col
    v.loc.Mj.Loc.end_pos.Mj.Loc.line v.loc.Mj.Loc.end_pos.Mj.Loc.col
    (json_escape v.subject) (json_escape v.message)
    (String.concat "," (List.map fix_to_json v.fixes))
    (String.concat "," (List.map related_to_json v.related))

let report_to_json violations =
  let violations = order_violations violations in
  Printf.sprintf
    {|{"compliant":%b,"violations":[%s]}|}
    (not (List.exists is_blocking violations))
    (String.concat ",\n " (List.map violation_to_json violations))
