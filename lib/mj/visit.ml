open Ast

type body = { b_class : string; b_kind : kind; b_stmts : stmt list }

and kind =
  | Method of method_decl
  | Ctor of ctor_decl
  | Field_init of field_decl

let bodies cls =
  let field_bodies =
    List.filter_map
      (fun f ->
        match f.f_init with
        | None -> None
        | Some e ->
            Some
              { b_class = cls.cl_name; b_kind = Field_init f;
                b_stmts = [ { stmt = Expr e; sloc = e.eloc } ] })
      cls.cl_fields
  in
  let ctor_bodies =
    List.map
      (fun c -> { b_class = cls.cl_name; b_kind = Ctor c; b_stmts = c.c_body })
      cls.cl_ctors
  in
  let method_bodies =
    List.filter_map
      (fun m ->
        match m.m_body with
        | None -> None
        | Some stmts ->
            Some { b_class = cls.cl_name; b_kind = Method m; b_stmts = stmts })
      cls.cl_methods
  in
  field_bodies @ ctor_bodies @ method_bodies

let body_name b =
  match b.b_kind with
  | Method m -> Printf.sprintf "%s.%s" b.b_class m.m_name
  | Ctor c -> Printf.sprintf "%s.<init>/%d" b.b_class (List.length c.c_params)
  | Field_init f -> Printf.sprintf "%s.%s=" b.b_class f.f_name

let rec iter_expr_deep f e =
  f e;
  let lvalue lv =
    match lv with
    | Lname _ | Llocal _ -> ()
    | Lfield (o, _) -> iter_expr_deep f o
    | Lstatic_field _ -> ()
    | Lindex (a, i) ->
        iter_expr_deep f a;
        iter_expr_deep f i
  in
  match e.expr with
  | Int_lit _ | Double_lit _ | Bool_lit _ | String_lit _ | Null_lit | This
  | Name _ | Local _ | Static_field _ ->
      ()
  | Field_access (o, _) | Array_length o | Unary (_, o) | Cast (_, o) ->
      iter_expr_deep f o
  | Index (a, i) ->
      iter_expr_deep f a;
      iter_expr_deep f i
  | Call c ->
      (match c.recv with
      | Rexpr o -> iter_expr_deep f o
      | Rsuper | Rimplicit | Rstatic _ -> ());
      List.iter (iter_expr_deep f) c.args
  | New_object (_, args) -> List.iter (iter_expr_deep f) args
  | New_array (_, dims) -> List.iter (iter_expr_deep f) dims
  | Binary (_, x, y) ->
      iter_expr_deep f x;
      iter_expr_deep f y
  | Assign (lv, rhs) ->
      lvalue lv;
      iter_expr_deep f rhs
  | Op_assign (_, lv, rhs) ->
      lvalue lv;
      iter_expr_deep f rhs
  | Pre_incr (_, lv) | Post_incr (_, lv) -> lvalue lv
  | Cond (c, a, b) ->
      iter_expr_deep f c;
      iter_expr_deep f a;
      iter_expr_deep f b

let rec iter_stmt_deep ~stmt ~expr s =
  stmt s;
  let e = iter_expr_deep expr in
  match s.stmt with
  | Block stmts -> List.iter (iter_stmt_deep ~stmt ~expr) stmts
  | Var_decl (_, _, init) -> Option.iter e init
  | Expr x -> e x
  | If (c, t, f) ->
      e c;
      iter_stmt_deep ~stmt ~expr t;
      Option.iter (iter_stmt_deep ~stmt ~expr) f
  | While (c, body) ->
      e c;
      iter_stmt_deep ~stmt ~expr body
  | Do_while (body, c) ->
      iter_stmt_deep ~stmt ~expr body;
      e c
  | For (init, cond, update, body) ->
      (match init with
      | Some (For_var (_, _, ie)) -> Option.iter e ie
      | Some (For_expr x) -> e x
      | None -> ());
      Option.iter e cond;
      Option.iter e update;
      iter_stmt_deep ~stmt ~expr body
  | Return v -> Option.iter e v
  | Super_call args -> List.iter e args
  | Break | Continue | Empty -> ()

let iter_stmts ~stmt ~expr stmts = List.iter (iter_stmt_deep ~stmt ~expr) stmts

let iter_exprs f stmts = iter_stmts ~stmt:(fun _ -> ()) ~expr:f stmts

let exists_expr pred stmts =
  let found = ref false in
  iter_exprs (fun e -> if pred e then found := true) stmts;
  !found

let exists_stmt pred stmts =
  let found = ref false in
  iter_stmts ~stmt:(fun s -> if pred s then found := true) ~expr:(fun _ -> ()) stmts;
  !found

let iter_expr = iter_expr_deep

let exists_expr_deep pred e =
  let found = ref false in
  iter_expr_deep (fun x -> if pred x then found := true) e;
  !found
