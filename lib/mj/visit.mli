(** Generic traversal helpers over MJ ASTs, used by the static analyses
    and transformations. *)

type body = {
  b_class : string;
  b_kind : kind;
  b_stmts : Ast.stmt list;
}

and kind =
  | Method of Ast.method_decl
  | Ctor of Ast.ctor_decl
  | Field_init of Ast.field_decl

val bodies : Ast.class_decl -> body list
(** All executable code of a class: field initializers (wrapped as a
    single expression statement), constructors, and method bodies. *)

val body_name : body -> string
(** "Class.method", "Class.<init>/2", or "Class.field=". *)

val iter_stmts : stmt:(Ast.stmt -> unit) -> expr:(Ast.expr -> unit) -> Ast.stmt list -> unit
(** Pre-order walk of every statement and every expression (including
    expressions nested inside other expressions and lvalues). *)

val iter_exprs : (Ast.expr -> unit) -> Ast.stmt list -> unit

val exists_expr : (Ast.expr -> bool) -> Ast.stmt list -> bool

val exists_stmt : (Ast.stmt -> bool) -> Ast.stmt list -> bool

val iter_expr : (Ast.expr -> unit) -> Ast.expr -> unit
(** Pre-order walk of one expression tree (including lvalue
    subexpressions). *)

val exists_expr_deep : (Ast.expr -> bool) -> Ast.expr -> bool
