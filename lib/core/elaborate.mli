(** Elaboration: embedding a policy-compliant MJ design in the ASR model
    (paper §4.2, Fig. 7).

    An instance of an MJ class extending [ASR] looks like a black box to
    its environment: present inputs on its ports, invoke [run], collect
    outputs — one reaction per instant. Elaboration constructs the
    instance (the initialization phase), switches the heap to the
    reactive phase (optionally arming bounded-memory enforcement), and
    wraps the reaction protocol for the ASR simulator. *)

type engine = Engine_interp | Engine_vm | Engine_jit

type t

val elaborate :
  ?engine:engine ->
  ?enforce_policy:bool ->
  ?bounded_memory:bool ->
  ?gc_threshold:int ->
  ?heap_limit_words:int ->
  ?ctor_args:Mj_runtime.Value.t list ->
  ?elide_bounds_checks:bool ->
  ?port_ranges:int * int ->
  ?cost_sink:Mj_runtime.Cost.sink ->
  ?cost_lines:Telemetry.Lines.t ->
  Mj.Typecheck.checked ->
  cls:string ->
  t
(** Defaults: VM engine, policy enforced (raises [Invalid_argument] on a
    non-compliant program), bounded memory armed (reactive-phase
    allocation raises), garbage collection disabled, zero constructor
    arguments, bounds checks kept. [gc_threshold] (in heap words) arms
    the JDK-style collector: reactive allocation beyond the threshold
    charges a pause proportional to the approximate live size.
    [heap_limit_words] arms a fixed heap capacity on the machine
    ({!Mj_runtime.Heap.set_limit_words}); allocation past it raises
    [Runtime_error "heap exhausted: ..."], which {!fault_classifier}
    maps to {!Asr.Supervisor.Heap_exhausted}. [elide_bounds_checks] runs the interval analysis and compiles
    statically safe array accesses to unchecked instructions (bytecode
    engines only; the interpreter ignores it). [port_ranges] feeds the
    analysis an inter-block fact: every [readPort] result lies in the
    given inclusive range (a stimulus bound, or a constant net folded by
    {!Asr.Fuse}), which unlocks elision at sites indexed by port data.
    The claim is the caller's to keep — a value outside the range can
    turn an elided site into an unchecked out-of-bounds access.
    [cost_sink] is installed
    on the engine's cost meter at creation, so a profile fed by it
    reconciles exactly with {!total_cycles} — initialization included.
    [cost_lines] is a per-source-line attribution table with the same
    exact-reconciliation property. *)

val ports : t -> int * int
(** Input and output port counts declared during initialization. *)

val init_cycles : t -> int
(** Cost cycles spent in loading, linking and construction. *)

val react : t -> Asr.Domain.t array -> Asr.Domain.t array
(** One instant: marshal inputs onto ports, invoke [run], collect
    outputs. ⊥ inputs are absent ([portPresent] is false). *)

val react_bounded :
  t -> budget_cycles:int -> Asr.Domain.t array -> Asr.Domain.t array
(** Like {!react} but with a watchdog: the reaction may spend at most
    [budget_cycles] (e.g. the static bound from
    {!Policy.Time_bound.reaction_bound}); exceeding it raises
    {!Mj_runtime.Cost.Budget_exceeded}. For a policy-compliant design
    driven under its own static bound this never fires — the test suite
    checks exactly that. *)

val last_reaction_cycles : t -> int

val total_cycles : t -> int

val machine : t -> Mj_runtime.Machine.t

val console : t -> string

val to_block : ?budget_cycles:int -> t -> Asr.Block.t
(** The design as an ASR functional block, for composition into graphs.
    Requires the [run] method (and everything it calls) to be free of
    field and static writes — the fixed-point iteration may apply a
    block several times per instant, which is only sound for stateless
    reactions. Raises [Invalid_argument] for stateful designs; those are
    driven with {!react} (the Fig. 7 protocol) instead.

    [budget_cycles] meters every application with {!react_bounded}: the
    block raises [Cost.Budget_exceeded] instead of overrunning — under a
    {!Asr.Supervisor} created with {!fault_classifier} that trap is
    contained as a [Budget_exceeded] fault. Derive the budget from
    {!Policy.Time_bound.reaction_bound} when the design is refined. *)

val to_reapplicable_block :
  ?budget_cycles:int -> t -> Asr.Block.t * (unit -> unit)
(** Like {!to_block} but sound for *stateful* designs under any
    strategy, chaotic iteration included: the block snapshots its
    machine ({!Mj_runtime.Snapshot}) at the first application of each
    instant and restores before every re-application, so N applications
    are indistinguishable from one — same outputs, same final heap,
    and the same cycle meter (the instant charges exactly one
    application, whatever the strategy). The second component announces
    an instant boundary; the driver calls it before each
    {!Asr.Simulate.step}/[run]. *)

(** {2 Machine checkpointing}

    The embedder half of {!Asr.Checkpoint}: an elaborated design's
    complete machine state (heap, statics, ports, console, cycle
    meter), deep-copied or serialized. The ASR layer carries the JSON
    as an opaque payload; these are the functions that produce and
    apply it. *)

val machine_state : t -> Mj_runtime.Snapshot.t

val restore_machine_state : t -> Mj_runtime.Snapshot.t -> unit

val machine_state_json : t -> Telemetry.Json.t

val restore_machine_json : t -> Telemetry.Json.t -> unit
(** Raises [Invalid_argument] on malformed input. *)

val fault_classifier : exn -> (Asr.Supervisor.fault_class * string) option
(** Engine-aware fault classification for {!Asr.Supervisor.create}:
    [Cost.Budget_exceeded] is a budget fault, heap-capacity exhaustion
    and bounded-memory violations are heap faults, any other
    [Heap.Runtime_error] (bounds trap, null dereference, division by
    zero, bad cast) is an ordinary trap. Returns [None] for everything
    else, falling through to the supervisor's default classifier. *)

val writes_state : Mj.Typecheck.checked -> cls:string -> bool
(** The static purity check used by {!to_block}. *)
