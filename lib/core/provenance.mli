(** Refinement provenance: the audit trail of a {!Engine.refine} run.

    Each iteration records the violations that were outstanding (rule
    id, source location, message) and, when a catalogue transformation
    fired, the concrete source-level changes it made — per-site before
    and after snippets that pretty-print back to the rewritten program.
    The trail answers "why does the refined program look like this?"
    line by line, which is the paper's successive-refinement story made
    inspectable. *)

type change = {
  ch_class : string;  (** enclosing class name *)
  ch_site : string;
      (** where inside the class: ["method run"], ["constructor/2"],
          ["field buf"], or ["class"] for whole-class changes *)
  ch_loc : Mj.Loc.t;  (** location of the replaced source region *)
  ch_before : string; (** pretty-printed snippet before the rewrite *)
  ch_after : string;  (** pretty-printed snippet after the rewrite *)
}

type iteration = {
  it_index : int;  (** 1-based, matches the engine step's iteration *)
  it_violations : Policy.Rule.violation list;
  it_transform : string option;
      (** catalogue id of the transform applied this iteration, [None]
          for the final iteration that only re-checked *)
  it_description : string;
  it_sites : int;
  it_changes : change list;
  it_before : Mj.Ast.program option;
      (** the resolved program this iteration analyzed, recorded only
          when a transform fired — the input to the refinement checker's
          per-transform verification conditions ({!Verify}) *)
  it_after : Mj.Ast.program option;
      (** the transform's output (what the next iteration parses) *)
}

type t = {
  p_iterations : iteration list;  (** in refinement order *)
  p_compliant : bool;
  p_residual : Policy.Rule.violation list;
  p_final : string;  (** the refined program, pretty-printed *)
}

val diff_program :
  before:Mj.Ast.program -> after:Mj.Ast.program -> change list
(** Structural diff at declaration granularity: classes are matched by
    name, fields by name, methods by name, constructors by arity.
    Changed bodies are narrowed to the smallest differing statement
    span (common prefix and suffix trimmed under
    [Mj.Ast.equal_stmt]); each span becomes one {!change} whose
    location merges the replaced statements' spans. Exposed for
    tests. *)

val to_json : t -> Telemetry.Json.t
(** Machine-readable audit: [{"compliant", "iterations": [{"iteration",
    "violations", "transform", "sites", "changes": [{"class", "site",
    "file", "line", "col", "before", "after"}]}], "residual",
    "final"}]. *)

val to_string : t -> string
(** Human-readable audit trail. *)
