module Ast = Mj.Ast
module Loc = Mj.Loc

type change = {
  ch_class : string;
  ch_site : string;
  ch_loc : Loc.t;
  ch_before : string;
  ch_after : string;
}

type iteration = {
  it_index : int;
  it_violations : Policy.Rule.violation list;
  it_transform : string option;
  it_description : string;
  it_sites : int;
  it_changes : change list;
  it_before : Mj.Ast.program option;
  it_after : Mj.Ast.program option;
}

type t = {
  p_iterations : iteration list;
  p_compliant : bool;
  p_residual : Policy.Rule.violation list;
  p_final : string;
}

(* ------------------------------------------------------------------ *)
(* Snippet printers. Pretty covers statements and whole classes; field
   and method headers are small enough to render here. *)

let vis_string = function
  | Ast.Public -> "public "
  | Ast.Private -> "private "
  | Ast.Protected -> "protected "
  | Ast.Package -> ""

let mods_string (m : Ast.modifiers) =
  vis_string m.visibility
  ^ (if m.is_static then "static " else "")
  ^ (if m.is_final then "final " else "")
  ^ if m.is_native then "native " else ""

let field_string (f : Ast.field_decl) =
  let init =
    match f.f_init with
    | None -> ""
    | Some e -> " = " ^ Mj.Pretty.expr_to_string e
  in
  Printf.sprintf "%s%s %s%s;" (mods_string f.f_mods)
    (Ast.ty_to_string f.f_ty) f.f_name init

let params_string ps =
  String.concat ", "
    (List.map (fun (ty, name) -> Ast.ty_to_string ty ^ " " ^ name) ps)

let method_header (m : Ast.method_decl) =
  Printf.sprintf "%s%s %s(%s)" (mods_string m.m_mods)
    (Ast.ty_to_string m.m_ret) m.m_name
    (params_string m.m_params)

let ctor_header cls (c : Ast.ctor_decl) =
  Printf.sprintf "%s%s(%s)" (mods_string c.c_mods) cls
    (params_string c.c_params)

let stmts_string stmts =
  String.concat "\n" (List.map Mj.Pretty.stmt_to_string stmts)

let class_string cls = Format.asprintf "%a" Mj.Pretty.pp_class cls

(* ------------------------------------------------------------------ *)
(* Structural diff.  Declarations are matched by stable keys (class and
   member names, constructor arity); changed statement lists are
   narrowed to the smallest differing span so the audit points at what
   a rewrite actually touched, not the whole method. *)

let span_loc ~fallback stmts =
  let real = List.filter (fun s -> not (Loc.is_dummy s.Ast.sloc)) stmts in
  match real with
  | [] -> fallback
  | first :: _ ->
      let last = List.nth real (List.length real - 1) in
      Loc.merge first.Ast.sloc last.Ast.sloc

(* Trim the longest common prefix and suffix (under equal_stmt) off a
   pair of statement lists, returning (kept_before, kept_after, loc of
   the replaced region in the before program). *)
let diff_stmts ~fallback before after =
  let rec drop_prefix b a =
    match (b, a) with
    | x :: b', y :: a' when Ast.equal_stmt x y -> drop_prefix b' a'
    | _ -> (b, a)
  in
  let b, a = drop_prefix before after in
  let rb, ra = drop_prefix (List.rev b) (List.rev a) in
  let b = List.rev rb and a = List.rev ra in
  (b, a, span_loc ~fallback b)

let diff_bodies ~cls ~site ~fallback before after =
  if Ast.equal_stmts before after then []
  else
    let b, a, loc = diff_stmts ~fallback before after in
    [ { ch_class = cls; ch_site = site; ch_loc = loc;
        ch_before = stmts_string b; ch_after = stmts_string a } ]

let diff_methods cls (before : Ast.method_decl list)
    (after : Ast.method_decl list) =
  let removed =
    List.filter_map
      (fun m ->
        if List.exists (fun m' -> m'.Ast.m_name = m.Ast.m_name) after then None
        else
          Some
            { ch_class = cls; ch_site = "method " ^ m.Ast.m_name;
              ch_loc = m.Ast.m_loc;
              ch_before =
                method_header m ^ " { "
                ^ (match m.Ast.m_body with
                  | None -> ""
                  | Some b -> stmts_string b)
                ^ " }";
              ch_after = "" })
      before
  in
  let added_or_changed =
    List.concat_map
      (fun m' ->
        match
          List.find_opt (fun m -> m.Ast.m_name = m'.Ast.m_name) before
        with
        | None ->
            [ { ch_class = cls; ch_site = "method " ^ m'.Ast.m_name;
                ch_loc = m'.Ast.m_loc; ch_before = "";
                ch_after =
                  method_header m' ^ " { "
                  ^ (match m'.Ast.m_body with
                    | None -> ""
                    | Some b -> stmts_string b)
                  ^ " }" } ]
        | Some m -> (
            match (m.Ast.m_body, m'.Ast.m_body) with
            | Some b, Some b' ->
                diff_bodies ~cls ~site:("method " ^ m'.Ast.m_name)
                  ~fallback:m.Ast.m_loc b b'
            | _ ->
                if Ast.equal_method m m' then []
                else
                  [ { ch_class = cls; ch_site = "method " ^ m'.Ast.m_name;
                      ch_loc = m.Ast.m_loc;
                      ch_before = method_header m;
                      ch_after = method_header m' } ]))
      after
  in
  removed @ added_or_changed

let diff_fields cls (before : Ast.field_decl list)
    (after : Ast.field_decl list) =
  let removed =
    List.filter_map
      (fun f ->
        if List.exists (fun f' -> f'.Ast.f_name = f.Ast.f_name) after then None
        else
          Some
            { ch_class = cls; ch_site = "field " ^ f.Ast.f_name;
              ch_loc = f.Ast.f_loc; ch_before = field_string f;
              ch_after = "" })
      before
  in
  let added_or_changed =
    List.filter_map
      (fun f' ->
        match
          List.find_opt (fun f -> f.Ast.f_name = f'.Ast.f_name) before
        with
        | None ->
            (* New fields are synthesized (e.g. by hoist_alloc); their
               loc points at the allocation site they came from. *)
            Some
              { ch_class = cls; ch_site = "field " ^ f'.Ast.f_name;
                ch_loc = f'.Ast.f_loc; ch_before = "";
                ch_after = field_string f' }
        | Some f ->
            if Ast.equal_field f f' then None
            else
              Some
                { ch_class = cls; ch_site = "field " ^ f'.Ast.f_name;
                  ch_loc = f.Ast.f_loc; ch_before = field_string f;
                  ch_after = field_string f' })
      after
  in
  removed @ added_or_changed

let diff_ctors cls (before : Ast.ctor_decl list) (after : Ast.ctor_decl list) =
  let arity (c : Ast.ctor_decl) = List.length c.c_params in
  List.concat_map
    (fun c' ->
      match List.find_opt (fun c -> arity c = arity c') before with
      | None ->
          [ { ch_class = cls;
              ch_site = Printf.sprintf "constructor/%d" (arity c');
              ch_loc = c'.Ast.c_loc; ch_before = "";
              ch_after = ctor_header cls c' ^ " { "
                         ^ stmts_string c'.Ast.c_body ^ " }" } ]
      | Some c ->
          diff_bodies ~cls
            ~site:(Printf.sprintf "constructor/%d" (arity c'))
            ~fallback:c.Ast.c_loc c.Ast.c_body c'.Ast.c_body)
    after

let diff_class (before : Ast.class_decl) (after : Ast.class_decl) =
  let cls = after.Ast.cl_name in
  diff_fields cls before.Ast.cl_fields after.Ast.cl_fields
  @ diff_ctors cls before.Ast.cl_ctors after.Ast.cl_ctors
  @ diff_methods cls before.Ast.cl_methods after.Ast.cl_methods

let diff_program ~(before : Ast.program) ~(after : Ast.program) =
  List.concat_map
    (fun (c' : Ast.class_decl) ->
      match Ast.find_class before c'.Ast.cl_name with
      | None ->
          [ { ch_class = c'.Ast.cl_name; ch_site = "class";
              ch_loc = c'.Ast.cl_loc; ch_before = "";
              ch_after = class_string c' } ]
      | Some c -> if Ast.equal_class c c' then [] else diff_class c c')
    after.Ast.classes
  @ List.filter_map
      (fun (c : Ast.class_decl) ->
        if Ast.find_class after c.Ast.cl_name <> None then None
        else
          Some
            { ch_class = c.Ast.cl_name; ch_site = "class";
              ch_loc = c.Ast.cl_loc; ch_before = class_string c;
              ch_after = "" })
      before.Ast.classes

(* ------------------------------------------------------------------ *)
(* Export. *)

module Json = Telemetry.Json

let loc_fields (loc : Loc.t) =
  [ ("file", Json.Str loc.file);
    ("line", Json.Int loc.start_pos.Loc.line);
    ("col", Json.Int loc.start_pos.Loc.col) ]

let violation_json (v : Policy.Rule.violation) =
  Json.Obj
    ([ ("rule", Json.Str v.rule_id);
       ("severity",
        Json.Str
          (match v.severity with
          | Policy.Rule.Forbidden -> "forbidden"
          | Policy.Rule.Caution -> "caution")) ]
    @ loc_fields v.loc
    @ [ ("subject", Json.Str v.subject); ("message", Json.Str v.message) ])

let change_json c =
  Json.Obj
    ([ ("class", Json.Str c.ch_class); ("site", Json.Str c.ch_site) ]
    @ loc_fields c.ch_loc
    @ [ ("before", Json.Str c.ch_before); ("after", Json.Str c.ch_after) ])

let iteration_json it =
  Json.Obj
    [ ("iteration", Json.Int it.it_index);
      ("violations", Json.List (List.map violation_json it.it_violations));
      ("transform",
       match it.it_transform with None -> Json.Null | Some s -> Json.Str s);
      ("description", Json.Str it.it_description);
      ("sites", Json.Int it.it_sites);
      ("changes", Json.List (List.map change_json it.it_changes)) ]

let to_json p =
  Json.Obj
    [ ("compliant", Json.Bool p.p_compliant);
      ("iterations", Json.List (List.map iteration_json p.p_iterations));
      ("residual", Json.List (List.map violation_json p.p_residual));
      ("final", Json.Str p.p_final) ]

let to_string p =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  line "refinement audit: %d iteration(s), %s"
    (List.length p.p_iterations)
    (if p.p_compliant then "compliant" else "NOT compliant");
  List.iter
    (fun it ->
      line "iteration %d:" it.it_index;
      List.iter
        (fun (v : Policy.Rule.violation) ->
          line "  [%s] %s: %s" v.rule_id (Loc.to_string v.loc) v.message)
        it.it_violations;
      (match it.it_transform with
      | None -> line "  no transform applied"
      | Some id ->
          line "  applied %s (%d site(s)) — %s" id it.it_sites
            it.it_description);
      List.iter
        (fun c ->
          line "  %s %s.%s:" (Loc.to_string c.ch_loc) c.ch_class c.ch_site;
          let dump prefix text =
            if text <> "" then
              String.split_on_char '\n' text
              |> List.iter (fun l -> line "    %s %s" prefix l)
          in
          dump "-" c.ch_before;
          dump "+" c.ch_after)
        it.it_changes)
    p.p_iterations;
  (match p.p_residual with
  | [] -> ()
  | vs ->
      line "residual violations:";
      List.iter
        (fun (v : Policy.Rule.violation) ->
          line "  [%s] %s: %s" v.rule_id (Loc.to_string v.loc) v.message)
        vs);
  Buffer.contents buf
