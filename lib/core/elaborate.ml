module Value = Mj_runtime.Value
module Machine = Mj_runtime.Machine
module Heap = Mj_runtime.Heap

type engine = Engine_interp | Engine_vm | Engine_jit

type ops = {
  o_machine : Machine.t;
  o_new : string -> Value.t list -> Value.t;
  o_call : Value.t -> string -> Value.t list -> Value.t;
}

type t = {
  ops : ops;
  instance : Value.t;
  cls : string;
  n_in : int;
  n_out : int;
  init_cycles : int;
  mutable last_reaction : int;
  mutable reaction_budget : int option;
  stateless : bool;
}

let ops_of_engine ~elide ?port_ranges ?sink ?lines engine checked =
  (* The elision plan only affects the bytecode engines; the interpreter
     walks the AST and always performs the modelled bounds check. *)
  let hints =
    (* Environment knowledge crossing the block boundary: when the
       harness bounds the stimulus (or fusion folded the feeding net to
       a constant), readPort's result range is known and sites indexed
       by port data become elidable. *)
    match port_ranges with
    | None -> None
    | Some (lo, hi) ->
        Some
          (fun mname _args ->
            if String.equal mname "readPort" then
              Some { Analysis.Interval.lo; hi }
            else None)
  in
  let plan () =
    if elide then Some (Analysis.Elide.plan ?hints checked) else None
  in
  match engine with
  | Engine_interp ->
      let s = Mj_runtime.Interp.create ?sink ?lines checked in
      { o_machine = Mj_runtime.Interp.machine s;
        o_new = Mj_runtime.Interp.new_instance s;
        o_call = Mj_runtime.Interp.call s }
  | Engine_vm ->
      let s = Mj_bytecode.Vm.create ?sink ?lines ?elide:(plan ()) checked in
      { o_machine = Mj_bytecode.Vm.machine s;
        o_new = Mj_bytecode.Vm.new_instance s;
        o_call = Mj_bytecode.Vm.call s }
  | Engine_jit ->
      let s = Mj_bytecode.Jit.create ?sink ?lines ?elide:(plan ()) checked in
      { o_machine = Mj_bytecode.Jit.machine s;
        o_new = Mj_bytecode.Jit.new_instance s;
        o_call = Mj_bytecode.Jit.call s }

(* Purity of the reaction: no field or static stores reachable from run. *)
let writes_state (checked : Mj.Typecheck.checked) ~cls =
  let graph = Policy.Call_graph.build checked in
  let reachable =
    Policy.Call_graph.reachable graph
      ~roots:[ Policy.Call_graph.method_node cls "run" ]
  in
  List.exists
    (fun node ->
      match Policy.Phases.body_of_node checked node with
      | None -> false
      | Some body ->
          Mj.Visit.exists_expr
            (fun e ->
              match e.Mj.Ast.expr with
              | Mj.Ast.Assign ((Mj.Ast.Lfield _ | Mj.Ast.Lstatic_field _), _)
              | Mj.Ast.Op_assign
                  (_, (Mj.Ast.Lfield _ | Mj.Ast.Lstatic_field _), _)
              | Mj.Ast.Pre_incr (_, (Mj.Ast.Lfield _ | Mj.Ast.Lstatic_field _))
              | Mj.Ast.Post_incr (_, (Mj.Ast.Lfield _ | Mj.Ast.Lstatic_field _))
                ->
                  true
              | _ -> false)
            body.Mj.Visit.b_stmts)
    reachable

let data_to_value m = function
  | Asr.Data.Int n -> Value.Int n
  | Asr.Data.Real f -> Value.Double f
  | Asr.Data.Bool b -> Value.Bool b
  | Asr.Data.Str s -> Value.Str s
  | Asr.Data.Int_array a -> Machine.make_int_array m a
  | Asr.Data.Tuple _ | Asr.Data.Absent ->
      invalid_arg "elaborate: tuples cannot cross an MJ port"

let value_to_data m = function
  | Value.Int n -> Asr.Data.Int n
  | Value.Double f -> Asr.Data.Real f
  | Value.Bool b -> Asr.Data.Bool b
  | Value.Str s -> Asr.Data.Str s
  | Value.Ref _ as v -> Asr.Data.Int_array (Machine.int_array m v)
  | Value.Null -> invalid_arg "elaborate: null on an output port"

let elaborate ?(engine = Engine_vm) ?(enforce_policy = true)
    ?(bounded_memory = true) ?gc_threshold ?heap_limit_words ?(ctor_args = [])
    ?(elide_bounds_checks = false) ?port_ranges ?cost_sink ?cost_lines checked
    ~cls =
  if enforce_policy && not (Policy.Asr_policy.compliant checked) then
    invalid_arg
      (Printf.sprintf
         "elaborate: program violates the ASR policy of use (class %s); \
          refine it first or pass ~enforce_policy:false"
         cls);
  if not (List.mem cls (Policy.Phases.asr_classes checked)) then
    invalid_arg (Printf.sprintf "elaborate: class %s does not extend ASR" cls);
  let ops =
    ops_of_engine ~elide:elide_bounds_checks ?port_ranges ?sink:cost_sink
      ?lines:cost_lines engine checked
  in
  let m = ops.o_machine in
  Heap.set_phase m.Machine.heap Heap.Init;
  Heap.set_limit_words m.Machine.heap heap_limit_words;
  let instance = ops.o_new cls ctor_args in
  let n_in, n_out = Machine.ports_of m instance in
  let init_cycles = Mj_runtime.Cost.cycles m.Machine.cost in
  Heap.set_phase m.Machine.heap Heap.Reactive;
  Heap.forbid_reactive_alloc m.Machine.heap bounded_memory;
  Heap.configure_gc m.Machine.heap ~threshold_words:gc_threshold;
  let stateless = not (writes_state checked ~cls) in
  { ops; instance; cls; n_in; n_out; init_cycles; last_reaction = 0;
    reaction_budget = None; stateless }

let ports t = (t.n_in, t.n_out)

let init_cycles t = t.init_cycles

let machine t = t.ops.o_machine

let console t = Buffer.contents t.ops.o_machine.Machine.console

let last_reaction_cycles t = t.last_reaction

let total_cycles t = Mj_runtime.Cost.cycles t.ops.o_machine.Machine.cost

let react t inputs =
  if Array.length inputs <> t.n_in then
    invalid_arg
      (Printf.sprintf "react: %s expects %d inputs, got %d" t.cls t.n_in
         (Array.length inputs));
  let m = t.ops.o_machine in
  (* Port marshalling is the environment's work, not the reaction's:
     it happens in the Init phase so bounded-memory enforcement only
     covers the design's own code. *)
  Heap.set_phase m.Machine.heap Heap.Init;
  Machine.clear_io m t.instance;
  Array.iteri
    (fun i input ->
      match input with
      | Asr.Domain.Bottom -> Machine.set_input m t.instance i None
      | Asr.Domain.Def v ->
          Machine.set_input m t.instance i (Some (data_to_value m v)))
    inputs;
  Heap.set_phase m.Machine.heap Heap.Reactive;
  let before = Mj_runtime.Cost.cycles m.Machine.cost in
  (* the watchdog meters the reaction only, not the environment's
     marshalling work above *)
  (match t.reaction_budget with
  | Some budget -> Mj_runtime.Cost.set_budget m.Machine.cost (Some (before + budget))
  | None -> ());
  Fun.protect
    ~finally:(fun () -> Mj_runtime.Cost.set_budget m.Machine.cost None)
    (fun () -> ignore (t.ops.o_call t.instance "run" []));
  t.last_reaction <- Mj_runtime.Cost.cycles m.Machine.cost - before;
  Heap.set_phase m.Machine.heap Heap.Init;
  Array.init t.n_out (fun i ->
      match Machine.output_port m t.instance i with
      | None -> Asr.Domain.Bottom
      | Some v -> Asr.Domain.Def (value_to_data m v))

let react_bounded t ~budget_cycles inputs =
  t.reaction_budget <- Some budget_cycles;
  Fun.protect
    ~finally:(fun () -> t.reaction_budget <- None)
    (fun () -> react t inputs)

let to_block ?budget_cycles t =
  if not t.stateless then
    invalid_arg
      (Printf.sprintf
         "to_block: %s.run writes fields; drive it with react instead" t.cls);
  let react t inputs =
    match budget_cycles with
    | Some budget_cycles -> react_bounded t ~budget_cycles inputs
    | None -> react t inputs
  in
  (* Strict: the fixed point may apply the block with partial inputs;
     only a fully-defined input vector triggers the reaction. *)
  Asr.Block.make ~name:("mj:" ^ t.cls) ~n_in:t.n_in ~n_out:t.n_out
    (fun inputs ->
      if Array.for_all Asr.Domain.is_def inputs then react t inputs
      else Array.make t.n_out Asr.Domain.Bottom)

(* ---------------------- machine checkpointing --------------------- *)

let machine_state t = Mj_runtime.Snapshot.capture t.ops.o_machine

let restore_machine_state t s = Mj_runtime.Snapshot.restore s t.ops.o_machine

let machine_state_json t = Mj_runtime.Snapshot.to_json (machine_state t)

let restore_machine_json t j =
  restore_machine_state t (Mj_runtime.Snapshot.of_json j)

(* A stateful design's run() advances its fields, so applying its block
   twice in one instant double-steps the state — the reason chaotic
   iteration was excluded from trace correspondence. Snapshotting the
   machine at the first application of each instant and restoring
   before every further application makes N applications
   indistinguishable from one: same outputs (monotone fixpoints feed a
   fully-defined input vector the same values all instant), same final
   heap, and same cycle meter (the restore rewinds it, so the instant
   charges exactly one application). The driver announces instant
   boundaries through the returned thunk. *)
let to_reapplicable_block ?budget_cycles t =
  let snap = ref None in
  let new_instant () = snap := None in
  let react t inputs =
    match budget_cycles with
    | Some budget_cycles -> react_bounded t ~budget_cycles inputs
    | None -> react t inputs
  in
  let block =
    Asr.Block.make ~name:("mj:" ^ t.cls) ~n_in:t.n_in ~n_out:t.n_out
      (fun inputs ->
        if Array.for_all Asr.Domain.is_def inputs then begin
          (match !snap with
          | None -> snap := Some (Mj_runtime.Snapshot.capture t.ops.o_machine)
          | Some s -> Mj_runtime.Snapshot.restore s t.ops.o_machine);
          react t inputs
        end
        else Array.make t.n_out Asr.Domain.Bottom)
  in
  (block, new_instant)

(* Map the engine-level traps onto supervisor fault classes. The heap
   message prefixes are the ones [Heap] actually raises: a blown heap
   limit starts with "heap exhausted", the bounded-memory policy trap
   mentions the reactive phase; everything else a reaction can raise
   ([Runtime_error]: bounds, null, division by zero, …) is an ordinary
   trap. *)
let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let fault_classifier = function
  | Mj_runtime.Cost.Budget_exceeded cycles ->
      Some
        ( Asr.Supervisor.Budget_exceeded,
          Printf.sprintf "reaction blew its cycle budget at meter reading %d"
            cycles )
  | Heap.Runtime_error msg when starts_with ~prefix:"heap exhausted" msg ->
      Some (Asr.Supervisor.Heap_exhausted, msg)
  | Heap.Runtime_error msg
    when starts_with ~prefix:"allocation during the reactive phase" msg ->
      Some (Asr.Supervisor.Heap_exhausted, msg)
  | Heap.Runtime_error msg -> Some (Asr.Supervisor.Trap, msg)
  | _ -> None
