(** Mechanized refinement checking (paper §2: each refinement step must
    preserve the design's meaning).

    Two cooperating layers. Layer 1 discharges static {e verification
    conditions}: for every transform the engine applied, the recorded
    before/after ASTs from the {!Provenance} chain are checked for a
    simulation relation by {!Analysis.Refinement}, and the final
    program's thread elimination is justified by a race-free report.
    Layer 2 checks {e trace correspondence}: an abstraction function
    maps unrestricted-MJ execution traces under seeded thread schedules
    to ASR instant streams, which must coincide with the deterministic
    instant stream of the refined program under every fixpoint
    strategy.

    Soundness caveat: a failed VC or correspondence is a genuine
    counterexample to refinement (modulo the interval abstraction);
    passing checks cover the explored schedules and the catalogued
    rewrite shapes only. *)

(** {1 Layer 1: verification conditions} *)

type vc_step = {
  s_iteration : int;        (** provenance iteration index *)
  s_transform : string;     (** transform id that fired *)
  s_vcs : Analysis.Refinement.vc list;
}

type vc_report = {
  v_steps : vc_step list;
  v_races : Analysis.Refinement.vc;
      (** thread-elimination VC on the final program *)
  v_discharged : int;
  v_failed : int;
}

val all_vcs : vc_report -> Analysis.Refinement.vc list
(** Per-step VCs in chain order, then the race VC. *)

val check_program :
  ?max_iterations:int ->
  ?policy:Policy.Rule.t list ->
  ?catalogue:Transforms.t list ->
  Mj.Ast.program ->
  vc_report * Engine.outcome
(** Refine with provenance and discharge every step's VCs.
    [catalogue] is the mutation-testing hook of {!Engine.refine}. *)

val refinement_rule : Policy.Rule.t
(** Blocking rule wrapping {!check_program}. NOT part of
    {!Policy.Asr_policy.rules} — the engine re-checks that policy each
    iteration and a rule that itself runs the engine would recurse; the
    CLI composes it into [javatime check] on top of the policy report. *)

val violations_of_report : vc_report -> Policy.Rule.violation list
(** Failing VCs as blocking violations; the after-span is the primary
    location, the before-span rides in [related]. *)

(** {1 Layer 2: trace correspondence} *)

val ramp : int -> int -> int
(** [ramp t i] — the deterministic scalar input applied to port [i] at
    instant [t], shared with [javatime simulate]. *)

val input_kinds :
  Mj.Typecheck.checked -> cls:string -> n_in:int -> bool array
(** Which input ports carry arrays ([readPortArray] sites with constant
    port indices in the class's own bodies). *)

val make_inputs :
  kinds:bool array -> array_size:int -> int -> int -> Asr.Domain.t
(** [make_inputs ~kinds ~array_size t i]: the deterministic input for
    port [i] at instant [t] — {!ramp} for scalar ports, a pixel-like
    array of [array_size] elements for array ports. *)

val calibrate_array_size :
  ?engine:Elaborate.engine ->
  kinds:bool array ->
  Mj.Typecheck.checked ->
  cls:string ->
  int
(** Smallest power-of-two array length a throwaway reaction accepts
    without an out-of-bounds trap (array sizes are design constants —
    e.g. WIDTH * HEIGHT — invisible to the port declaration). *)

val abstract_outputs :
  n_out:int -> Mj_runtime.Threads.event list -> Asr.Domain.t array
(** The abstraction function α: the last recorded write per output port
    defines the instant's value; unwritten ports are ⊥. *)

val spec_stream :
  ?engine:Elaborate.engine ->
  ?inputs:(int -> int -> Asr.Domain.t) ->
  strategy:Asr.Fixpoint.strategy ->
  instants:int ->
  Mj.Typecheck.checked ->
  cls:string ->
  Asr.Domain.t array list
(** Instant stream of [cls] elaborated as a one-block ASR system on the
    input ramp. The block is the re-applicable embedding
    ({!Elaborate.to_reapplicable_block}), so every strategy — chaotic
    iteration included — sees single-application semantics even for
    stateful reactions (e.g. a filter window surviving between
    applications). *)

val low_stream :
  ?engine:Elaborate.engine ->
  ?inputs:(int -> int -> Asr.Domain.t) ->
  seed:int ->
  instants:int ->
  Mj.Typecheck.checked ->
  cls:string ->
  Asr.Domain.t array list
(** α-image of one seeded schedule of the (unrestricted) program. *)

type correspondence = {
  c_schedules : int;          (** seeded schedules explored *)
  c_instants : int;
  c_strategies : string list;
  c_checked : int;            (** correspondences checked *)
  c_failures : string list;   (** empty iff every trace refines the stream *)
}

val trace_correspondence :
  ?engine:Elaborate.engine ->
  ?schedules:int ->
  ?instants:int ->
  ?array_size:int ->
  ?max_iterations:int ->
  ?policy:Policy.Rule.t list ->
  ?catalogue:Transforms.t list ->
  Mj.Ast.program ->
  cls:string ->
  correspondence
(** Refine the program, then check that the refined instant stream
    agrees under all four fixpoint strategies (chaotic, scheduled,
    worklist, fused — chaotic is sound here because {!spec_stream}
    uses the re-applicable embedding), and that the α-image of each of
    [schedules] (default 100) seeded low-level schedules of the
    {e unrestricted} program coincides with it, over [instants]
    (default 8) ramp instants. *)
