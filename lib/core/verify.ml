(* Mechanized refinement checking: the two cooperating layers.

   Layer 1 replays the engine's provenance chain and discharges the
   per-transform verification conditions of [Analysis.Refinement] on
   every recorded before/after pair, plus the race-freedom VC that
   justifies sequentializing the refined program. Failures become
   blocking [Policy.Rule] violations carrying both spans.

   Layer 2 is the trace correspondence: an abstraction function from
   unrestricted-MJ traces under seeded thread schedules (the pluggable
   [Mj_runtime.Threads] scheduler, with port accesses recorded by the
   machine) to ASR instant streams, compared against the deterministic
   instant stream of the refined program under every fixpoint strategy
   — [Chaotic] included: the re-applicable embedding restores the
   machine before each within-instant re-application, so stateful
   reactions survive chaotic iteration. *)

module R = Analysis.Refinement
module D = Asr.Domain

(* ------------------------------------------------------------------ *)
(* Layer 1: per-transform verification conditions                      *)
(* ------------------------------------------------------------------ *)

type vc_step = {
  s_iteration : int;
  s_transform : string;
  s_vcs : R.vc list;
}

type vc_report = {
  v_steps : vc_step list;
  v_races : R.vc;
  v_discharged : int;
  v_failed : int;
}

let all_vcs r = List.concat_map (fun s -> s.s_vcs) r.v_steps @ [ r.v_races ]

let check_program ?max_iterations ?policy ?catalogue program =
  let outcome =
    Engine.refine ?max_iterations ?policy ?catalogue ~provenance:true program
  in
  let iterations =
    match outcome.Engine.provenance with
    | Some p -> p.Provenance.p_iterations
    | None -> []
  in
  let steps =
    List.filter_map
      (fun it ->
        match
          ( it.Provenance.it_transform,
            it.Provenance.it_before,
            it.Provenance.it_after )
        with
        | Some transform, Some before, Some after ->
            let vcs =
              match (Mj.Typecheck.check before, Mj.Typecheck.check after) with
              | cb, ca -> R.check_transform ~transform ~before:cb ~after:ca
              | exception Mj.Diag.Compile_error d ->
                  [ { R.vc_transform = transform; vc_class = "<program>";
                      vc_site = "typecheck"; vc_before = Mj.Loc.dummy;
                      vc_after = Mj.Loc.dummy; vc_ok = false;
                      vc_detail =
                        "recorded program no longer typechecks: "
                        ^ d.Mj.Diag.message } ]
            in
            Some
              { s_iteration = it.Provenance.it_index; s_transform = transform;
                s_vcs = vcs }
        | _ -> None)
      iterations
  in
  let report0 =
    { v_steps = steps; v_races = R.races_clean outcome.Engine.checked;
      v_discharged = 0; v_failed = 0 }
  in
  let all = all_vcs report0 in
  let report =
    { report0 with
      v_discharged = List.length (List.filter (fun v -> v.R.vc_ok) all);
      v_failed = List.length (List.filter (fun v -> not v.R.vc_ok) all) }
  in
  (report, outcome)

(* The rule is deliberately NOT part of [Policy.Asr_policy.rules]: the
   engine's refinement loop re-checks that policy every iteration, and
   a rule that itself runs the engine would recurse. The CLI composes
   it into `javatime check` on top of the policy report. *)
let rec refinement_rule =
  { Policy.Rule.id = "R11-verified-refinement";
    title = "every applied transform must discharge its verification conditions";
    paper_ref =
      "§2: each step of the successive refinement must preserve the \
       meaning of the design while restricting it to the policy of use";
    check = rule_check }

and violation_of_vc v =
  if v.R.vc_ok then None
  else
    Some
      (Policy.Rule.make_violation ~rule:refinement_rule ~loc:v.R.vc_after
         ~subject:(v.R.vc_class ^ ": " ^ v.R.vc_site)
         ~fixes:
           [ Policy.Rule.Manual
               (if String.equal v.R.vc_transform "thread-elimination" then
                  "resolve the remaining shared-field races before \
                   sequentializing the reactions"
                else
                  "the recorded transform is not simulation-equivalent; \
                   refine by hand or fix the transform") ]
         ~related:[ ("before", v.R.vc_before) ]
         (v.R.vc_transform ^ ": " ^ v.R.vc_detail))

and rule_check checked =
  let report, _ = check_program checked.Mj.Typecheck.program in
  List.filter_map violation_of_vc (all_vcs report)

let violations_of_report report =
  List.filter_map violation_of_vc (all_vcs report)

(* ------------------------------------------------------------------ *)
(* Layer 2: trace correspondence                                       *)
(* ------------------------------------------------------------------ *)

(* Deterministic input ramp, shared with `javatime simulate`: port i at
   instant t carries (t + 1) * (i + 2) mod 17. *)
let ramp t i = (t + 1) * (i + 2) mod 17

(* Input ports read with readPortArray carry arrays, not ints. The
   kinds are recovered syntactically from the class's own bodies (a
   reaction that delegates its port reads to another class is out of
   scope and will surface as a runtime error). *)
let input_kinds checked ~cls ~n_in =
  let arrays = Hashtbl.create 4 in
  (match
     List.find_opt
       (fun c -> String.equal c.Mj.Ast.cl_name cls)
       checked.Mj.Typecheck.program.Mj.Ast.classes
   with
  | None -> ()
  | Some c ->
      List.iter
        (fun b ->
          Mj.Visit.iter_exprs
            (fun e ->
              match e.Mj.Ast.expr with
              | Mj.Ast.Call { mname = "readPortArray"; args = [ a ]; _ } -> (
                  match Analysis.Const_eval.const_int checked a with
                  | Some i -> Hashtbl.replace arrays i ()
                  | None -> ())
              | _ -> ())
            b.Mj.Visit.b_stmts)
        (Mj.Visit.bodies c));
  Array.init n_in (Hashtbl.mem arrays)

(* Deterministic array payload for an array-carrying port: element k of
   port i at instant t is pixel-like, in 0..255. *)
let array_ramp ~size t i =
  Asr.Data.Int_array (Array.init size (fun k -> (t + 1) * (i + k + 2) mod 256))

let make_inputs ~kinds ~array_size t i =
  if i < Array.length kinds && kinds.(i) then D.Def (array_ramp ~size:array_size t i)
  else D.int (ramp t i)

(* The needed array length depends on constants baked into the design
   (e.g. an image's WIDTH * HEIGHT), so it is found by probing: the
   smallest power of two a throwaway reaction accepts without an
   out-of-bounds trap. *)
let calibrate_array_size ?(engine = Elaborate.Engine_vm) ~kinds checked ~cls =
  let rec probe size =
    if size > 1 lsl 20 then 1
    else
      let ok =
        match
          let elab =
            Elaborate.elaborate ~engine ~enforce_policy:false
              ~bounded_memory:false checked ~cls
          in
          let n_in, _ = Elaborate.ports elab in
          Elaborate.react elab
            (Array.init n_in (make_inputs ~kinds ~array_size:size 0))
        with
        | _ -> true
        | exception Mj_runtime.Heap.Runtime_error _ -> false
      in
      if ok then size else probe (size * 2)
  in
  probe 1

(* The abstraction function α maps a low-level schedule trace to the
   instant's ASR outputs: of all port-write events in the trace, the
   last write to each port defines that port's value for the instant;
   unwritten ports are ⊥. Array payloads were snapshotted at write time
   by the machine, so later in-place mutations do not leak in. *)
let parse_write desc =
  let value_of s =
    let s = String.trim s in
    let n = String.length s in
    if n >= 2 && s.[0] = '[' && s.[n - 1] = ']' then
      let inner = String.sub s 1 (n - 2) in
      let parts =
        if String.equal inner "" then []
        else String.split_on_char ';' inner
      in
      let ints = List.map int_of_string_opt parts in
      if List.for_all Option.is_some ints then
        Some (Asr.Data.Int_array (Array.of_list (List.map Option.get ints)))
      else None
    else
      match int_of_string_opt s with
      | Some n -> Some (Asr.Data.Int n)
      | None -> None
  in
  let payload prefix =
    let np = String.length prefix and nd = String.length desc in
    if nd > np + 1 && String.equal (String.sub desc 0 np) prefix then
      match String.index_opt desc ',' with
      | Some comma when String.length desc > comma + 1 ->
          let port = String.sub desc np (comma - np) in
          let v = String.sub desc (comma + 1) (nd - comma - 2) in
          Option.bind (int_of_string_opt port) (fun p ->
              Option.map (fun d -> (p, d)) (value_of v))
      | _ -> None
    else None
  in
  match payload "writePortArray(" with
  | Some r -> Some r
  | None -> payload "writePort("

let abstract_outputs ~n_out (events : Mj_runtime.Threads.event list) =
  let writes = Hashtbl.create 8 in
  List.iter
    (fun (e : Mj_runtime.Threads.event) ->
      match parse_write e.Mj_runtime.Threads.description with
      | Some (port, data) -> Hashtbl.replace writes port data
      | None -> ())
    events;
  Array.init n_out (fun j ->
      match Hashtbl.find_opt writes j with
      | Some d -> D.Def d
      | None -> D.Bottom)

(* The deterministic instant stream of the refined program: the
   elaborated reaction as a one-block ASR system, driven on the input
   ramp under the given fixpoint strategy. Chaotic iteration may apply
   a block several times per instant, which is unsound for stateful
   reactions — callers exclude it when [Elaborate.writes_state]. *)
let spec_stream ?(engine = Elaborate.Engine_vm)
    ?(inputs = fun t i -> D.int (ramp t i)) ~strategy ~instants checked ~cls =
  let elab =
    Elaborate.elaborate ~engine ~enforce_policy:false ~bounded_memory:false
      checked ~cls
  in
  let n_in, n_out = Elaborate.ports elab in
  (* Re-applicable embedding: the machine snapshots at the first
     application of each instant and restores before any further one,
     so even strategies that apply the block several times per instant
     (chaotic iteration) see single-application semantics. *)
  let block, new_instant = Elaborate.to_reapplicable_block elab in
  let g = Asr.Graph.create ("verify:" ^ cls) in
  let b = Asr.Graph.add_block g block in
  for i = 0 to n_in - 1 do
    let inp = Asr.Graph.add_input g (string_of_int i) in
    Asr.Graph.connect g
      ~src:(Asr.Graph.out_port inp 0)
      ~dst:(Asr.Graph.in_port b i)
  done;
  for j = 0 to n_out - 1 do
    let out = Asr.Graph.add_output g (string_of_int j) in
    Asr.Graph.connect g
      ~src:(Asr.Graph.out_port b j)
      ~dst:(Asr.Graph.in_port out 0)
  done;
  let sim = Asr.Simulate.create ~strategy g in
  let stream =
    List.init instants (fun t ->
        List.init n_in (fun i -> (string_of_int i, inputs t i)))
  in
  let trace =
    List.concat_map
      (fun bindings ->
        new_instant ();
        Asr.Simulate.run sim [ bindings ])
      stream
  in
  List.map
    (fun (te : Asr.Simulate.trace_entry) ->
      Array.init n_out (fun j ->
          List.assoc (string_of_int j) te.Asr.Simulate.outputs))
    trace

(* One seeded schedule of the unrestricted program: run each instant's
   reaction under the pluggable scheduler, abstract the recorded trace.
   Threads started by the reaction really interleave here — this is
   the nondeterministic low-level semantics the refined stream must be
   an abstraction of. *)
let low_stream ?(engine = Elaborate.Engine_vm)
    ?(inputs = fun t i -> D.int (ramp t i)) ~seed ~instants checked ~cls =
  let elab =
    Elaborate.elaborate ~engine ~enforce_policy:false ~bounded_memory:false
      checked ~cls
  in
  let n_in, n_out = Elaborate.ports elab in
  List.init instants (fun t ->
      let inputs = Array.init n_in (inputs t) in
      let events =
        Mj_runtime.Threads.run
          ~policy:(Mj_runtime.Threads.Seeded seed)
          ~trace:true
          (fun () -> ignore (Elaborate.react elab inputs))
      in
      abstract_outputs ~n_out events)

type correspondence = {
  c_schedules : int;      (* seeded schedules explored *)
  c_instants : int;
  c_strategies : string list;
  c_checked : int;        (* instant correspondences checked *)
  c_failures : string list;
}

let stream_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         Array.length x = Array.length y
         && Array.for_all2 D.equal x y)
       a b

let diverging_instant spec low =
  let rec go t spec low =
    match (spec, low) with
    | [], [] -> None
    | s :: spec, l :: low ->
        if Array.length s = Array.length l && Array.for_all2 D.equal s l then
          go (t + 1) spec low
        else Some t
    | _ -> Some t
  in
  go 0 spec low

let trace_correspondence ?(engine = Elaborate.Engine_vm) ?(schedules = 100)
    ?(instants = 8) ?array_size ?max_iterations ?policy ?catalogue program
    ~cls =
  let outcome = Engine.refine ?max_iterations ?policy ?catalogue program in
  let refined = outcome.Engine.checked in
  let unrestricted = Mj.Typecheck.check program in
  let n_in =
    let elab =
      Elaborate.elaborate ~engine ~enforce_policy:false ~bounded_memory:false
        unrestricted ~cls
    in
    fst (Elaborate.ports elab)
  in
  let kinds = input_kinds unrestricted ~cls ~n_in in
  let array_size =
    match array_size with
    | Some s -> s
    | None ->
        if Array.exists Fun.id kinds then
          calibrate_array_size ~engine ~kinds unrestricted ~cls
        else 1
  in
  let inputs = make_inputs ~kinds ~array_size in
  (* Chaotic iteration re-applies blocks within an instant, which used
     to exclude it here: re-running run() double-steps any stateful
     design. The re-applicable embedding ([Elaborate.
     to_reapplicable_block]) closes that gap — the machine restores to
     its instant-entry snapshot before each re-application — so all
     four strategies are checked. *)
  let strategies =
    [ Asr.Fixpoint.Chaotic; Asr.Fixpoint.Scheduled; Asr.Fixpoint.Worklist;
      Asr.Fixpoint.Fused ]
  in
  let failures = ref [] in
  let checked_count = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let specs =
    List.map
      (fun strategy ->
        ( Asr.Fixpoint.strategy_name strategy,
          spec_stream ~engine ~inputs ~strategy ~instants refined ~cls ))
      strategies
  in
  (match specs with
  | [] -> ()
  | (name0, spec0) :: rest ->
      (* The refined stream is deterministic: every strategy computes
         the same instants. *)
      List.iter
        (fun (name, spec) ->
          incr checked_count;
          if not (stream_equal spec0 spec) then
            fail "strategy %s diverges from %s" name name0)
        rest;
      for seed = 1 to schedules do
        match low_stream ~engine ~inputs ~seed ~instants unrestricted ~cls with
        | low -> (
            incr checked_count;
            match diverging_instant spec0 low with
            | None -> ()
            | Some t ->
                fail "seed %d: abstracted trace diverges from the refined \
                      stream at instant %d"
                  seed t)
        | exception e ->
            incr checked_count;
            fail "seed %d: schedule raised %s" seed (Printexc.to_string e)
      done);
  { c_schedules = schedules; c_instants = instants;
    c_strategies = List.map fst specs; c_checked = !checked_count;
    c_failures = List.rev !failures }
