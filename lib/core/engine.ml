type applied = { a_transform : string; a_description : string; a_sites : int }

type step = {
  iteration : int;
  violations : Policy.Rule.violation list;
  applied : applied list;
}

type outcome = {
  initial : Mj.Ast.program;
  final : Mj.Ast.program;
  checked : Mj.Typecheck.checked;
  steps : step list;
  compliant : bool;
  residual : Policy.Rule.violation list;
  provenance : Provenance.t option;
}

(* First-occurrence order preserved; membership via a seen-set rather
   than [List.mem] over a growing accumulator (which was quadratic). *)
let dedup ids =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun id ->
      if Hashtbl.mem seen id then false
      else begin
        Hashtbl.add seen id ();
        true
      end)
    ids

let refine ?(max_iterations = 20) ?(policy = Policy.Asr_policy.rules)
    ?(catalogue = Transforms.catalogue) ?telemetry ?(provenance = false)
    program =
  let module Reg = Telemetry.Registry in
  let tele =
    match telemetry with
    | Some reg when Reg.is_enabled reg -> Some reg
    | _ -> None
  in
  let initial = program in
  let check_policy checked =
    List.concat_map
      (fun r ->
        match tele with
        | None -> r.Policy.Rule.check checked
        | Some reg ->
            Reg.enter reg ~cat:"rule" ("check." ^ r.Policy.Rule.id);
            let vs = r.Policy.Rule.check checked in
            Reg.exit reg ~args:[ ("violations", Reg.Int (List.length vs)) ] ();
            vs)
      policy
  in
  let rec loop iteration program steps prov =
    (match tele with
    | Some reg ->
        Reg.enter reg ~cat:"refine" "iteration"
          ~args:[ ("iteration", Reg.Int iteration) ];
        Reg.count reg "refine.iterations" 1
    | None -> ());
    let checked = Mj.Typecheck.check program in
    let violations = check_policy checked in
    let wanted =
      dedup (List.concat_map Policy.Rule.automatic_fixes violations)
    in
    (* Catalogue order keeps the engine deterministic. *)
    let transforms =
      List.filter (fun t -> List.mem t.Transforms.id wanted) catalogue
    in
    let blocking = List.filter Policy.Rule.is_blocking violations in
    let close_iteration ~outcome ~applied =
      match tele with
      | Some reg ->
          Reg.exit reg
            ~args:
              [ ("violations", Reg.Int (List.length violations));
                ("blocking", Reg.Int (List.length blocking));
                ("applied", Reg.Str applied);
                ("outcome", Reg.Str outcome) ]
            ()
      | None -> ()
    in
    let finish () =
      close_iteration
        ~outcome:(if blocking = [] then "compliant" else "residual")
        ~applied:"";
      let audit =
        if not provenance then None
        else
          let last =
            { Provenance.it_index = iteration; it_violations = violations;
              it_transform = None; it_description = ""; it_sites = 0;
              it_changes = []; it_before = None; it_after = None }
          in
          Some
            { Provenance.p_iterations = List.rev (last :: prov);
              p_compliant = blocking = []; p_residual = violations;
              p_final =
                Mj.Pretty.program_to_string checked.Mj.Typecheck.program }
      in
      { initial; final = checked.Mj.Typecheck.program; checked;
        steps = List.rev steps; compliant = blocking = [];
        residual = violations; provenance = audit }
    in
    if transforms = [] || iteration > max_iterations then finish ()
    else begin
      (* Apply the first transformation that changes something, then
         re-analyze: one incremental refinement per iteration. *)
      let apply_one t =
        match tele with
        | None -> t.Transforms.apply checked
        | Some reg ->
            Reg.enter reg ~cat:"transform" ("apply." ^ t.Transforms.id);
            let rewritten, sites = t.Transforms.apply checked in
            Reg.exit reg ~args:[ ("sites", Reg.Int sites) ] ();
            if sites > 0 then
              Reg.count reg ("transform." ^ t.Transforms.id ^ ".sites") sites;
            (rewritten, sites)
      in
      let rec try_transforms = function
        | [] -> None
        | t :: rest -> (
            let rewritten, sites = apply_one t in
            if sites = 0 then try_transforms rest
            else
              Some
                ( rewritten,
                  { a_transform = t.Transforms.id;
                    a_description = t.Transforms.description; a_sites = sites } ))
      in
      match try_transforms transforms with
      | None -> finish ()
      | Some (rewritten, applied) ->
          close_iteration ~outcome:"transformed" ~applied:applied.a_transform;
          let step = { iteration; violations; applied = [ applied ] } in
          let prov =
            if not provenance then prov
            else
              { Provenance.it_index = iteration; it_violations = violations;
                it_transform = Some applied.a_transform;
                it_description = applied.a_description;
                it_sites = applied.a_sites;
                it_changes =
                  (* diff the resolved program this iteration analyzed
                     against the transform's output, so snippets match
                     what the next iteration parses *)
                  Provenance.diff_program
                    ~before:checked.Mj.Typecheck.program ~after:rewritten;
                (* full before/after ASTs, so the refinement checker can
                   discharge this iteration's verification conditions *)
                it_before = Some checked.Mj.Typecheck.program;
                it_after = Some rewritten }
              :: prov
          in
          loop (iteration + 1) rewritten (step :: steps) prov
    end
  in
  loop 1 program [] []

let refine_source ?(file = "<source>") ?max_iterations ?policy ?catalogue
    ?telemetry ?provenance src =
  refine ?max_iterations ?policy ?catalogue ?telemetry ?provenance
    (Mj.Parser.parse_program ~file src)

let pp_trace ppf outcome =
  Format.fprintf ppf "successive formal refinement: %d iteration(s)@."
    (List.length outcome.steps);
  List.iter
    (fun step ->
      let blocking =
        List.length (List.filter Policy.Rule.is_blocking step.violations)
      in
      Format.fprintf ppf "  iteration %d: %d violation(s) (%d blocking)@."
        step.iteration
        (List.length step.violations)
        blocking;
      List.iter
        (fun a ->
          Format.fprintf ppf "    applied %-18s (%d site(s)) — %s@."
            a.a_transform a.a_sites a.a_description)
        step.applied)
    outcome.steps;
  if outcome.compliant then
    Format.fprintf ppf "  result: compliant with the policy of use@."
  else begin
    Format.fprintf ppf "  result: %d violation(s) need manual refinement@."
      (List.length (List.filter Policy.Rule.is_blocking outcome.residual));
    List.iter
      (fun v ->
        if Policy.Rule.is_blocking v then
          Format.fprintf ppf "    %a@." Policy.Rule.pp_violation v)
      outcome.residual
  end
