(** The successive, formal refinement engine (paper §2, Fig. 2).

    Iterates analyze → suggest → transform: the program is checked
    against the ASR policy of use; violations carrying automatic fixes
    trigger the corresponding catalogue transformations; the result is
    re-checked, until the program complies or only manual fixes remain.
    Every iteration is recorded — the trace is the Fig. 2 story. *)

type applied = { a_transform : string; a_description : string; a_sites : int }

type step = {
  iteration : int;
  violations : Policy.Rule.violation list;  (** before this iteration's fixes *)
  applied : applied list;
}

type outcome = {
  initial : Mj.Ast.program;
  final : Mj.Ast.program;      (** resolved; pretty-prints to valid MJ *)
  checked : Mj.Typecheck.checked;
  steps : step list;
  compliant : bool;
  residual : Policy.Rule.violation list;  (** violations needing manual work *)
  provenance : Provenance.t option;
      (** full audit trail, present iff [refine ~provenance:true] *)
}

val dedup : string list -> string list
(** Remove duplicates preserving first-occurrence order (the order
    automatic fixes were suggested in). Exposed for tests. *)

val refine :
  ?max_iterations:int ->
  ?policy:Policy.Rule.t list ->
  ?catalogue:Transforms.t list ->
  ?telemetry:Telemetry.Registry.t ->
  ?provenance:bool ->
  Mj.Ast.program ->
  outcome
(** Raises {!Mj.Diag.Compile_error} if the program does not type-check
    (initially or — a bug — after a transformation). Default
    [max_iterations] is 20; default [policy] is the ASR policy of use.
    Pass {!Policy.Sdf_policy.rules} to refine toward the dataflow model
    instead — the paper's "variety of target models, each with its own
    policy of use".

    [catalogue] (default {!Transforms.catalogue}) substitutes the
    transform catalogue the wanted automatic fixes are drawn from. The
    refinement checker's mutation tests use this to inject a
    deliberately broken transform and assert its verification
    conditions fail; it is not a user-facing extension point.

    [telemetry]: each iteration emits an ["iteration"] span containing
    one ["check.<rule>"] span per policy rule (args: violation count —
    rule timings come from the registry clock) and one
    ["apply.<transform>"] span per attempted transformation (args: site
    count); counters ["refine.iterations"] and
    ["transform.<id>.sites"] accumulate across the run.

    [provenance] (default off) additionally records, per iteration, the
    outstanding violations and a source-level diff of what the applied
    transformation changed — see {!Provenance}. *)

val refine_source :
  ?file:string ->
  ?max_iterations:int ->
  ?policy:Policy.Rule.t list ->
  ?catalogue:Transforms.t list ->
  ?telemetry:Telemetry.Registry.t ->
  ?provenance:bool ->
  string ->
  outcome

val pp_trace : Format.formatter -> outcome -> unit
(** Human-readable refinement trace. *)
