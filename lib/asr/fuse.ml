type op =
  | Step of int * (Domain.t array -> unit)
  | Generic of int
  | Iterate of int array * int

type fast =
  | Frun of (Domain.t array -> unit)
  | Fiter of int array * int

type t = {
  f_ops : op array;
  f_fast : fast array;
  f_fast_evals : int;
  f_template : Domain.t array;
  f_reset : int array;
  f_copy_src : int array;
  f_copy_dst : int array;
  f_n_nets : int;
  f_n_blocks : int;
  f_folded : bool array;
  f_n_fused : int;
  f_n_folded : int;
  f_n_inlined : int;
  f_n_cyclic : int;
}

(* Raised (no-trace) by an input getter when the slot or chain value is
   ⊥: the head of the chain skips its store, leaving the output at ⊥ —
   exactly what the strict cells produce on partial inputs. A dedicated
   exception so a kernel that itself raises [Exit] is not swallowed. *)
exception Undefined

(* Raised (no-trace) by the int lane when a non-[Int] value flows
   through: the head re-runs the exact data-level chain. *)
exception Not_int

(* Slot operation for a kernel cell: read input slots, write output
   slots, allocate nothing but the produced value itself. Semantics
   must match the corresponding cell in [Block] exactly — skipping the
   write leaves the slot at ⊥, which is what the strict cells output on
   partial inputs. *)
let step_of_kernel kernel in_nets out_nets =
  match kernel with
  | Block.Opaque -> None
  | Block.Const outs ->
      Some
        (fun nets ->
          for p = 0 to Array.length outs - 1 do
            nets.(out_nets.(p)) <- outs.(p)
          done)
  | Block.Map1 f ->
      let i = in_nets.(0) and o = out_nets.(0) in
      Some
        (fun nets ->
          match nets.(i) with
          | Domain.Bottom -> ()
          | Domain.Def x -> nets.(o) <- Domain.Def (f x))
  | Block.Map2 f ->
      let i0 = in_nets.(0) and i1 = in_nets.(1) and o = out_nets.(0) in
      Some
        (fun nets ->
          match (nets.(i0), nets.(i1)) with
          | Domain.Def x, Domain.Def y -> nets.(o) <- Domain.Def (f x y)
          | _ -> ())
  | Block.IMap1 (fi, f) ->
      let i = in_nets.(0) and o = out_nets.(0) in
      Some
        (fun nets ->
          match nets.(i) with
          | Domain.Bottom -> ()
          | Domain.Def (Data.Int x) -> nets.(o) <- Domain.Def (Data.Int (fi x))
          | Domain.Def x -> nets.(o) <- Domain.Def (f x))
  | Block.IMap2 (fi, f) ->
      let i0 = in_nets.(0) and i1 = in_nets.(1) and o = out_nets.(0) in
      Some
        (fun nets ->
          match (nets.(i0), nets.(i1)) with
          | Domain.Def (Data.Int x), Domain.Def (Data.Int y) ->
              nets.(o) <- Domain.Def (Data.Int (fi x y))
          | Domain.Def x, Domain.Def y -> nets.(o) <- Domain.Def (f x y)
          | _ -> ())
  | Block.Mux ->
      let s = in_nets.(0)
      and a = in_nets.(1)
      and b = in_nets.(2)
      and o = out_nets.(0) in
      Some
        (fun nets ->
          match nets.(s) with
          | Domain.Bottom -> ()
          | Domain.Def (Data.Bool true) -> nets.(o) <- nets.(a)
          | Domain.Def (Data.Bool false) -> nets.(o) <- nets.(b)
          | Domain.Def v ->
              invalid_arg
                (Printf.sprintf "mux: non-boolean select %s" (Data.to_string v)))
  | Block.Fork ->
      let i = in_nets.(0) in
      Some
        (fun nets ->
          let v = nets.(i) in
          for p = 0 to Array.length out_nets - 1 do
            nets.(out_nets.(p)) <- v
          done)
  | Block.Identity ->
      let i = in_nets.(0) and o = out_nets.(0) in
      Some (fun nets -> nets.(o) <- nets.(i))

(* Compile-time evaluation of a pure kernel on constant inputs. [None]
   declines the fold (e.g. the map function traps on these values — the
   block then stays in the plan and traps identically every instant).
   Only kernels are trial-evaluated: an opaque function may close over
   mutable state, so running it at fuse time could be observable. *)
let fold_kernel kernel ~n_out (ins : Domain.t array) =
  match kernel with
  | Block.Opaque -> None
  | Block.Const outs -> Some (Array.copy outs)
  | Block.Map1 f | Block.IMap1 (_, f) -> (
      match ins.(0) with
      | Domain.Bottom -> Some [| Domain.Bottom |]
      | Domain.Def x -> (
          match f x with
          | y -> Some [| Domain.Def y |]
          | exception _ -> None))
  | Block.Map2 f | Block.IMap2 (_, f) -> (
      match (ins.(0), ins.(1)) with
      | Domain.Def x, Domain.Def y -> (
          match f x y with
          | z -> Some [| Domain.Def z |]
          | exception _ -> None)
      | _ -> Some [| Domain.Bottom |])
  | Block.Mux -> (
      match ins.(0) with
      | Domain.Bottom -> Some [| Domain.Bottom |]
      | Domain.Def (Data.Bool true) -> Some [| ins.(1) |]
      | Domain.Def (Data.Bool false) -> Some [| ins.(2) |]
      | Domain.Def _ -> None)
  | Block.Fork -> Some (Array.make n_out ins.(0))
  | Block.Identity -> Some [| ins.(0) |]

(* ---- chain collapsing ---------------------------------------------- *)

(* A value-producing kernel (one output, data in → data out) can be
   inlined into its consumer: the chain computes through OCaml locals
   and the interior net is never written. Mux passes Domain values
   through (⊥ included) and Const always folds, so the collapsible set
   is the strict data kernels; Fork and slot-fed Identity dissolve
   through net aliasing instead. *)
let value_kernel = function
  | Block.Map1 _ | Block.Map2 _ | Block.IMap1 _ | Block.IMap2 _
  | Block.Identity ->
      true
  | Block.Opaque | Block.Const _ | Block.Mux | Block.Fork -> false

(* Argument shape at a (resolved) net: a registered chain, or a plain
   slot whose read gets inlined into the consumer's closure. *)
type darg = Dexpr of (Domain.t array -> Data.t) | Dslot of int
type iarg = Iexpr of (Domain.t array -> int) | Islot of int

let dclose = function
  | Dexpr e -> e
  | Dslot n -> (
      fun nets ->
        match nets.(n) with
        | Domain.Def x -> x
        | Domain.Bottom -> raise_notrace Undefined)

let iclose = function
  | Iexpr e -> e
  | Islot n -> (
      fun nets ->
        match nets.(n) with
        | Domain.Def (Data.Int x) -> x
        | Domain.Def _ -> raise_notrace Not_int
        | Domain.Bottom -> raise_notrace Undefined)

(* Chain body for a strict data kernel, [Undefined]-strict in every
   transitive leaf. With both arguments of a binary map fed by chains
   the left chain runs first; if it is ⊥ the right chain is not
   evaluated at all — same fixed point as block-at-a-time evaluation
   (strict cells ignore the other input then too), but a kernel that
   would have trapped inside the skipped chain does not get to. The
   supervised path never inlines, so contained faults are unaffected. *)
let value_of_kernel ~dlook kernel in_nets =
  match kernel with
  | Block.Map1 f | Block.IMap1 (_, f) -> (
      match dlook in_nets.(0) with
      | Dexpr e -> Some (fun nets -> f (e nets))
      | Dslot n ->
          Some
            (fun nets ->
              match nets.(n) with
              | Domain.Def x -> f x
              | Domain.Bottom -> raise_notrace Undefined))
  | Block.Map2 f | Block.IMap2 (_, f) -> (
      match (dlook in_nets.(0), dlook in_nets.(1)) with
      | Dslot n0, Dslot n1 ->
          Some
            (fun nets ->
              match (nets.(n0), nets.(n1)) with
              | Domain.Def a, Domain.Def b -> f a b
              | _ -> raise_notrace Undefined)
      | Dexpr e0, Dslot n1 ->
          Some
            (fun nets ->
              let a = e0 nets in
              match nets.(n1) with
              | Domain.Def b -> f a b
              | Domain.Bottom -> raise_notrace Undefined)
      | Dslot n0, Dexpr e1 ->
          Some
            (fun nets ->
              match nets.(n0) with
              | Domain.Def a -> f a (e1 nets)
              | Domain.Bottom -> raise_notrace Undefined)
      | Dexpr e0, Dexpr e1 ->
          Some
            (fun nets ->
              let a = e0 nets in
              let b = e1 nets in
              f a b))
  | Block.Identity -> Some (dclose (dlook in_nets.(0)))
  | _ -> None

(* Int-lane chain body: raw machine ints in OCaml locals, no [Data]
   boxing anywhere inside the chain. Only kernels with an int
   specialization (and Identity) participate; a generic data kernel in
   the middle of a chain is reached through an unboxing wrapper, and
   any non-[Int] value anywhere aborts to the data lane via [Not_int]. *)
let ivalue_of_kernel ~ilook kernel in_nets =
  match kernel with
  | Block.IMap1 (fi, _) -> (
      match ilook in_nets.(0) with
      | Iexpr e -> Some (fun nets -> fi (e nets))
      | Islot n ->
          Some
            (fun nets ->
              match nets.(n) with
              | Domain.Def (Data.Int x) -> fi x
              | Domain.Def _ -> raise_notrace Not_int
              | Domain.Bottom -> raise_notrace Undefined))
  | Block.IMap2 (fi, _) -> (
      match (ilook in_nets.(0), ilook in_nets.(1)) with
      | Islot n0, Islot n1 ->
          Some
            (fun nets ->
              match (nets.(n0), nets.(n1)) with
              | Domain.Def (Data.Int a), Domain.Def (Data.Int b) -> fi a b
              | Domain.Def _, Domain.Def _ -> raise_notrace Not_int
              | _ -> raise_notrace Undefined)
      | Iexpr e0, Islot n1 ->
          Some
            (fun nets ->
              let a = e0 nets in
              match nets.(n1) with
              | Domain.Def (Data.Int b) -> fi a b
              | Domain.Def _ -> raise_notrace Not_int
              | Domain.Bottom -> raise_notrace Undefined)
      | Islot n0, Iexpr e1 ->
          Some
            (fun nets ->
              match nets.(n0) with
              | Domain.Def (Data.Int a) -> fi a (e1 nets)
              | Domain.Def _ -> raise_notrace Not_int
              | Domain.Bottom -> raise_notrace Undefined)
      | Iexpr e0, Iexpr e1 ->
          Some
            (fun nets ->
              let a = e0 nets in
              let b = e1 nets in
              fi a b))
  | Block.Identity -> Some (iclose (ilook in_nets.(0)))
  | _ -> None

let compile ?schedule (c : Graph.compiled) =
  let schedule =
    match schedule with Some s -> s | None -> Schedule.of_compiled c
  in
  let n_blocks = Array.length c.Graph.c_blocks in
  let n_nets = c.Graph.n_nets in
  let template = Array.make n_nets Domain.Bottom in
  (* A net is static when its producer folded; env inputs and delay
     outputs change per instant and are never static. *)
  let static = Array.make n_nets false in
  let folded = Array.make n_blocks false in
  (* Nets the environment reads back after the instant: output ports
     and delay feeds. They block chain collapsing (the chain's head
     must store) but not aliasing — an aliased env net is served by a
     post-pass copyback from its source slot. *)
  let env_read = Array.make n_nets false in
  Array.iter (fun (_, net) -> env_read.(net) <- true) c.Graph.c_outputs;
  Array.iter (fun (din, _, _) -> env_read.(din) <- true) c.Graph.c_delays;
  let cyclic = Array.make n_blocks false in
  List.iter
    (function
      | Schedule.Acyclic _ -> ()
      | Schedule.Cyclic members ->
          Array.iter (fun bi -> cyclic.(bi) <- true) members)
    (Schedule.groups schedule);
  (* Fork (and slot-fed Identity) outputs alias their source slot; the
     chain getters resolve through this, so the copy never happens. *)
  let alias = Array.init n_nets Fun.id in
  let inlined : (Domain.t array -> Data.t) option array =
    Array.make n_nets None
  in
  let inlined_int : (Domain.t array -> int) option array =
    Array.make n_nets None
  in
  let dlook n =
    let n = alias.(n) in
    match inlined.(n) with Some e -> Dexpr e | None -> Dslot n
  in
  let ilook n =
    let n = alias.(n) in
    match inlined_int.(n) with
    | Some e -> Iexpr e
    | None -> (
        match inlined.(n) with
        | Some d ->
            Iexpr
              (fun nets ->
                match d nets with
                | Data.Int x -> x
                | _ -> raise_notrace Not_int)
        | None -> Islot n)
  in
  (* Does some consumer of this net read the slot itself (rather than
     resolve through the alias / chain getters)? Mux, opaque and
     Const-kernel steps and SCC members all evaluate via direct slot
     reads; value kernels and forks resolve. *)
  let slot_consumed o =
    Array.exists
      (fun q ->
        cyclic.(q)
        ||
        let qb, _, _ = c.Graph.c_blocks.(q) in
        not (value_kernel qb.Block.kernel || qb.Block.kernel = Block.Fork))
      c.Graph.c_consumers.(o)
  in
  (* Is net [o]'s one consumer a strict data kernel outside every SCC?
     Then the chain computed into [o] can move into that consumer.
     (A consumer of a non-static net can never fold — folding needs
     all-static inputs — so a registered chain is always picked up.
     A consumer reading [o] on both ports appears once in c_consumers;
     the chain then evaluates twice, sound for the pure kernels.) *)
  let collapsible o =
    (not env_read.(o))
    &&
    match c.Graph.c_consumers.(o) with
    | [| q |] ->
        (not cyclic.(q))
        &&
        let qb, _, _ = c.Graph.c_blocks.(q) in
        value_kernel qb.Block.kernel
    | _ -> false
  in
  let n_fused = ref 0 in
  let n_folded = ref 0 in
  let n_inlined = ref 0 in
  let n_cyclic = ref 0 in
  let fast_evals = ref 0 in
  let rev_ops = ref [] in
  let rev_fast = ref [] in
  let rev_reset = ref [] in
  let rev_copy = ref [] in
  let reset s = rev_reset := s :: !rev_reset in
  List.iter
    (fun group ->
      match group with
      | Schedule.Acyclic bi -> (
          let block, in_nets, out_nets = c.Graph.c_blocks.(bi) in
          let all_static = Array.for_all (fun n -> static.(n)) in_nets in
          let fold =
            if all_static then
              fold_kernel block.Block.kernel
                ~n_out:(Array.length out_nets)
                (Array.map (fun n -> template.(n)) in_nets)
            else None
          in
          match fold with
          | Some outs ->
              folded.(bi) <- true;
              incr n_folded;
              Array.iteri
                (fun p v ->
                  template.(out_nets.(p)) <- v;
                  static.(out_nets.(p)) <- true;
                  reset out_nets.(p))
                outs
          | None -> (
              incr fast_evals;
              (* symbolic per-block op, for the counting and supervised
                 interpreters *)
              (match step_of_kernel block.Block.kernel in_nets out_nets with
              | Some step ->
                  incr n_fused;
                  rev_ops := Step (bi, step) :: !rev_ops
              | None -> rev_ops := Generic bi :: !rev_ops);
              (* fast lane *)
              let kernel = block.Block.kernel in
              let passthrough =
                match kernel with
                | Block.Fork -> true
                | Block.Identity -> (
                    match dlook in_nets.(0) with
                    | Dslot _ -> true
                    | Dexpr _ -> false)
                | _ -> false
              in
              if passthrough then begin
                (* every port is just another read of the source slot *)
                let i =
                  match dlook in_nets.(0) with
                  | Dslot n -> n
                  | Dexpr _ ->
                      (* a fork's source is never a collapsed chain: a
                         chain only registers under a value-kernel
                         consumer, which Fork is not *)
                      assert false
                in
                let residual =
                  Array.of_list
                    (List.filter slot_consumed (Array.to_list out_nets))
                in
                Array.iter
                  (fun o ->
                    alias.(o) <- i;
                    if env_read.(o) && not (slot_consumed o) then
                      rev_copy := (o, i) :: !rev_copy)
                  out_nets;
                if Array.length residual = 0 then incr n_inlined
                else
                  rev_fast :=
                    Frun
                      (fun nets ->
                        let v = nets.(i) in
                        for p = 0 to Array.length residual - 1 do
                          nets.(residual.(p)) <- v
                        done)
                    :: !rev_fast
              end
              else
                let value = value_of_kernel ~dlook kernel in_nets in
                match value with
                | Some dv ->
                    let o = out_nets.(0) in
                    if collapsible o then begin
                      incr n_inlined;
                      inlined.(o) <- Some dv;
                      inlined_int.(o) <- (
                        match ivalue_of_kernel ~ilook kernel in_nets with
                        | Some iv -> Some iv
                        | None -> None)
                    end
                    else begin
                      (* conditional writer: skipped stores must find ⊥ *)
                      reset o;
                      let run =
                        match ivalue_of_kernel ~ilook kernel in_nets with
                        | Some iv ->
                            (* int first; any non-Int value re-runs the
                               exact data chain from scratch (pure
                               kernels, so re-evaluation is
                               unobservable) *)
                            fun nets -> (
                              match iv nets with
                              | x -> nets.(o) <- Domain.Def (Data.Int x)
                              | exception Undefined -> ()
                              | exception Not_int -> (
                                  match dv nets with
                                  | x -> nets.(o) <- Domain.Def x
                                  | exception Undefined -> ()))
                        | None ->
                            fun nets -> (
                              match dv nets with
                              | x -> nets.(o) <- Domain.Def x
                              | exception Undefined -> ())
                      in
                      rev_fast := Frun run :: !rev_fast
                    end
                | None -> (
                    match step_of_kernel kernel in_nets out_nets with
                    | Some step ->
                        (* Mux skips its store on a ⊥ select; Const
                           stores unconditionally *)
                        (match kernel with
                        | Block.Mux -> reset out_nets.(0)
                        | _ -> ());
                        rev_fast := Frun step :: !rev_fast
                    | None ->
                        (* opaque: private scratch buffer, direct store
                           (single producer + topological order make it
                           exact) *)
                        let scratch =
                          Array.make (Array.length in_nets) Domain.Bottom
                        in
                        rev_fast :=
                          Frun
                            (fun nets ->
                              for p = 0 to Array.length in_nets - 1 do
                                scratch.(p) <- nets.(in_nets.(p))
                              done;
                              let out = Block.apply block scratch in
                              for p = 0 to Array.length out_nets - 1 do
                                nets.(out_nets.(p)) <- out.(p)
                              done)
                          :: !rev_fast)))
      | Schedule.Cyclic members ->
          (* Local domain height = nets written inside the SCC; one
             extra round detects stability (same bound as Scheduled). *)
          let scc_nets =
            Array.fold_left
              (fun acc bi ->
                let _, _, outs = c.Graph.c_blocks.(bi) in
                acc + Array.length outs)
              0 members
          in
          Array.iter
            (fun bi ->
              let _, _, outs = c.Graph.c_blocks.(bi) in
              Array.iter reset outs)
            members;
          n_cyclic := !n_cyclic + Array.length members;
          rev_ops := Iterate (members, scc_nets + 2) :: !rev_ops;
          rev_fast := Fiter (members, scc_nets + 2) :: !rev_fast)
    (Schedule.groups schedule);
  (* Inputs may be partially bound (an absent port stays ⊥), so their
     slots reset each instant too. *)
  Array.iter (fun (_, net) -> reset net) c.Graph.c_inputs;
  let copy = Array.of_list (List.rev !rev_copy) in
  { f_ops = Array.of_list (List.rev !rev_ops);
    f_fast = Array.of_list (List.rev !rev_fast);
    f_fast_evals = !fast_evals;
    f_template = template;
    f_reset = Array.of_list (List.rev !rev_reset);
    f_copy_src = Array.map snd copy;
    f_copy_dst = Array.map fst copy;
    f_n_nets = n_nets;
    f_n_blocks = n_blocks;
    f_folded = folded;
    f_n_fused = !n_fused;
    f_n_folded = !n_folded;
    f_n_inlined = !n_inlined;
    f_n_cyclic = !n_cyclic }

let constant_nets t =
  let acc = ref [] in
  for net = t.f_n_nets - 1 downto 0 do
    (* folded slots are exactly the non-⊥ template entries plus folded
       ⊥ outputs; report the defined ones, which are the usable facts *)
    match t.f_template.(net) with
    | Domain.Bottom -> ()
    | v -> acc := (net, v) :: !acc
  done;
  !acc

let describe t =
  Printf.sprintf
    "fused plan: %d block(s) -> %d kernel step(s) (%d inlined into chains), \
     %d generic, %d folded, %d in cyclic fallback"
    t.f_n_blocks t.f_n_fused t.f_n_inlined
    (t.f_n_blocks - t.f_n_fused - t.f_n_folded - t.f_n_cyclic)
    t.f_n_folded t.f_n_cyclic
