type t = { label : string; mutable children : t list }

let make label = { label; children = [] }

let add_child node label =
  let child = make label in
  node.children <- node.children @ [ child ];
  child

let add_leaves node ~prefix n =
  for i = 1 to n do
    ignore (add_child node (Printf.sprintf "%s %d" prefix i))
  done

let rec leaf_count node =
  match node.children with
  | [] -> 1
  | children -> List.fold_left (fun acc c -> acc + leaf_count c) 0 children

let rec depth node =
  match node.children with
  | [] -> 1
  | children -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let rec count node =
  1 + List.fold_left (fun acc c -> acc + count c) 0 node.children

let pp ppf root =
  let rec go prefix is_last node =
    Format.fprintf ppf "%s%s%s@." prefix
      (if String.equal prefix "" then "" else if is_last then "`- " else "|- ")
      node.label;
    let child_prefix =
      if String.equal prefix "" then "   "
      else prefix ^ if is_last then "   " else "|  "
    in
    let rec each = function
      | [] -> ()
      | [ last ] -> go child_prefix true last
      | c :: rest ->
          go child_prefix false c;
          each rest
    in
    each node.children
  in
  go "" true root

let to_string node = Format.asprintf "%a" pp node
