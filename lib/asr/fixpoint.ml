type result = {
  nets : Domain.t array;
  iterations : int;
  block_evaluations : int;
}

type strategy = Chaotic | Scheduled | Worklist

exception Nonmonotonic of string

let strategy_name = function
  | Chaotic -> "chaotic"
  | Scheduled -> "scheduled"
  | Worklist -> "worklist"

(* Apply block [bi] once, lub-merging its outputs into [nets]. Returns
   true when some output net changed. A lub conflict means the block
   retracted or rewrote a defined value: not monotone. With a
   supervisor the application is guarded (trap containment, budgets,
   quarantine) and a retraction is contained by freezing the block at
   the nets' current values instead of raising. *)
let apply_block ?supervisor (c : Graph.compiled) nets bi =
  let block, in_nets, out_nets = c.Graph.c_blocks.(bi) in
  let run () =
    let inputs = Array.map (fun net -> nets.(net)) in_nets in
    Block.apply block inputs
  in
  let outputs =
    match supervisor with
    | None -> run ()
    | Some sup -> Supervisor.guard sup ~bi ~run
  in
  let changed = ref false in
  (try
     Array.iteri
       (fun port v ->
         let net = out_nets.(port) in
         let merged =
           try Domain.lub nets.(net) v
           with Domain.Inconsistent msg ->
             let detail =
               Printf.sprintf "block %s retracted output %d: %s"
                 block.Block.name port msg
             in
             let contained =
               match supervisor with
               | Some sup ->
                   Supervisor.retract sup ~bi
                     ~current:(Array.map (fun n -> nets.(n)) out_nets)
                     ~detail
               | None -> false
             in
             if contained then raise_notrace Exit
             else raise (Nonmonotonic detail)
         in
         if not (Domain.equal merged nets.(net)) then begin
           nets.(net) <- merged;
           changed := true
         end)
       outputs
   with Exit -> () (* retraction contained: nets keep their values *));
  !changed

(* ------------------------------------------------------------------ *)
(* Chaotic iteration: the reference oracle. Re-evaluates every block on
   every sweep until a sweep changes nothing.                           *)
(* ------------------------------------------------------------------ *)

(* Optional per-block evaluation tally for telemetry; a zero-length
   array (the default) disables counting. *)
let bump counts bi =
  if Array.length counts > 0 then counts.(bi) <- counts.(bi) + 1

let eval_chaotic ?supervisor c nets ~order ~counts =
  let order =
    match order with
    | Some order -> order
    | None -> Array.init (Array.length c.Graph.c_blocks) (fun i -> i)
  in
  let evaluations = ref 0 in
  let sweeps = ref 0 in
  (* Height of the product domain = number of nets; one extra sweep
     detects stability, so n_nets + 2 sweeps suffice for monotone blocks. *)
  let max_sweeps = c.Graph.n_nets + 2 in
  let changed = ref true in
  while !changed do
    if !sweeps > max_sweeps then
      raise (Nonmonotonic "fixpoint exceeded the monotone iteration bound");
    changed := false;
    incr sweeps;
    Array.iter
      (fun bi ->
        incr evaluations;
        bump counts bi;
        if apply_block ?supervisor c nets bi then changed := true)
      order
  done;
  (!sweeps, !evaluations)

(* ------------------------------------------------------------------ *)
(* Static schedule: acyclic blocks once, in topological order; cyclic
   SCCs iterate locally until stable (bounded by the SCC's net count).  *)
(* ------------------------------------------------------------------ *)

let eval_scheduled ?supervisor c nets ~schedule ~counts =
  let evaluations = ref 0 in
  let max_rounds = ref 1 in
  List.iter
    (fun group ->
      match group with
      | Schedule.Acyclic bi ->
          incr evaluations;
          bump counts bi;
          ignore (apply_block ?supervisor c nets bi)
      | Schedule.Cyclic members ->
          (* Local domain height = nets written inside the SCC; one
             extra round detects stability. *)
          let scc_nets =
            Array.fold_left
              (fun acc bi ->
                let _, _, outs = c.Graph.c_blocks.(bi) in
                acc + Array.length outs)
              0 members
          in
          let bound = scc_nets + 2 in
          let rounds = ref 0 in
          let changed = ref true in
          while !changed do
            if !rounds > bound then
              raise
                (Nonmonotonic
                   "cyclic component exceeded the monotone iteration bound");
            changed := false;
            incr rounds;
            Array.iter
              (fun bi ->
                incr evaluations;
                bump counts bi;
                if apply_block ?supervisor c nets bi then changed := true)
              members
          done;
          if !rounds > !max_rounds then max_rounds := !rounds)
    (Schedule.groups schedule);
  (!max_rounds, !evaluations)

(* ------------------------------------------------------------------ *)
(* Worklist: every block is seeded once; afterwards a block re-enters
   the queue only when one of its input nets actually changed.          *)
(* ------------------------------------------------------------------ *)

let eval_worklist ?supervisor c nets ~seed ~counts =
  let n_blocks = Array.length c.Graph.c_blocks in
  let queue = Queue.create () in
  let in_queue = Array.make n_blocks false in
  let eval_count = Array.make n_blocks 0 in
  Array.iter
    (fun bi ->
      Queue.push bi queue;
      in_queue.(bi) <- true)
    seed;
  let evaluations = ref 0 in
  (* Monotone blocks change each net at most n_nets times in total, so
     every block re-enters the queue a bounded number of times. *)
  let max_evaluations = (n_blocks + 1) * (c.Graph.n_nets + 2) in
  while not (Queue.is_empty queue) do
    let bi = Queue.pop queue in
    in_queue.(bi) <- false;
    incr evaluations;
    bump counts bi;
    eval_count.(bi) <- eval_count.(bi) + 1;
    if !evaluations > max_evaluations then
      raise (Nonmonotonic "worklist exceeded the monotone evaluation bound");
    let _, _, out_nets = c.Graph.c_blocks.(bi) in
    let before = Array.map (fun net -> nets.(net)) out_nets in
    if apply_block ?supervisor c nets bi then
      Array.iteri
        (fun port net ->
          if not (Domain.equal before.(port) nets.(net)) then
            Array.iter
              (fun consumer ->
                if not in_queue.(consumer) then begin
                  Queue.push consumer queue;
                  in_queue.(consumer) <- true
                end)
              c.Graph.c_consumers.(net))
        out_nets
  done;
  let deepest = Array.fold_left max 1 eval_count in
  (deepest, !evaluations)

(* ------------------------------------------------------------------ *)

let eval (c : Graph.compiled) ~inputs ~delay_values ?order ?(strategy = Chaotic)
    ?schedule ?nets ?(eval_counts = [||]) ?supervisor () =
  (match (order, strategy) with
  | Some _, (Scheduled | Worklist) ->
      invalid_arg
        (Printf.sprintf
           "fixpoint: explicit evaluation order requires the chaotic \
            strategy, not %s"
           (strategy_name strategy))
  | _ -> ());
  let nets =
    match nets with
    | None -> Array.make c.Graph.n_nets Domain.Bottom
    | Some buf ->
        if Array.length buf <> c.Graph.n_nets then
          invalid_arg "fixpoint: net buffer length mismatch";
        Array.fill buf 0 (Array.length buf) Domain.Bottom;
        buf
  in
  List.iter
    (fun (label, v) ->
      match Graph.input_net c label with
      | Some net -> nets.(net) <- v
      | None -> invalid_arg (Printf.sprintf "fixpoint: unknown input '%s'" label))
    inputs;
  if Array.length delay_values <> Array.length c.Graph.c_delays then
    invalid_arg "fixpoint: delay vector length mismatch";
  Array.iteri
    (fun i (_, out_net, _) -> nets.(out_net) <- delay_values.(i))
    c.Graph.c_delays;
  let counts = eval_counts in
  (* Standalone use (no Simulate driving the lifecycle): bracket this
     evaluation as one supervised instant. *)
  let auto_instant =
    match supervisor with
    | Some sup ->
        Supervisor.attach sup c;
        if Supervisor.in_instant sup then false
        else begin
          Supervisor.begin_instant sup;
          true
        end
    | None -> false
  in
  if Array.length counts > 0 && Array.length counts <> Array.length c.Graph.c_blocks
  then invalid_arg "fixpoint: eval_counts length mismatch";
  let iterations, block_evaluations =
    match strategy with
    | Chaotic -> eval_chaotic ?supervisor c nets ~order ~counts
    | Scheduled ->
        let schedule =
          match schedule with
          | Some s -> s
          | None -> Schedule.of_compiled c
        in
        eval_scheduled ?supervisor c nets ~schedule ~counts
    | Worklist ->
        let seed =
          match schedule with
          | Some s -> Schedule.linear_order s
          | None -> Array.init (Array.length c.Graph.c_blocks) (fun i -> i)
        in
        eval_worklist ?supervisor c nets ~seed ~counts
  in
  (match supervisor with
  | Some sup when auto_instant -> Supervisor.end_instant sup
  | _ -> ());
  { nets; iterations; block_evaluations }

let outputs (c : Graph.compiled) result =
  Array.to_list
    (Array.map (fun (label, net) -> (label, result.nets.(net))) c.Graph.c_outputs)

let delay_next (c : Graph.compiled) result =
  Array.map (fun (in_net, _, _) -> result.nets.(in_net)) c.Graph.c_delays
