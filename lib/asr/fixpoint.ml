type result = {
  nets : Domain.t array;
  iterations : int;
  block_evaluations : int;
}

type strategy = Chaotic | Scheduled | Worklist | Fused

exception Nonmonotonic of string

let strategy_name = function
  | Chaotic -> "chaotic"
  | Scheduled -> "scheduled"
  | Worklist -> "worklist"
  | Fused -> "fused"

let strategy_of_string = function
  | "chaotic" -> Some Chaotic
  | "scheduled" -> Some Scheduled
  | "worklist" -> Some Worklist
  | "fused" -> Some Fused
  | _ -> None

(* Preallocated per-block scratch: input vectors filled in place before
   each application and (worklist only) previous-output snapshots. One
   allocation per graph instead of one per application — the PR-1-era
   hot-path cost. Block functions must not retain their input array;
   every cell and wrapper in this codebase copies what it keeps. *)
type buffers = {
  b_in : Domain.t array array;
  b_out : Domain.t array array;
}

let make_buffers (c : Graph.compiled) =
  { b_in =
      Array.map
        (fun (_, ins, _) -> Array.make (Array.length ins) Domain.Bottom)
        c.Graph.c_blocks;
    b_out =
      Array.map
        (fun (_, _, outs) -> Array.make (Array.length outs) Domain.Bottom)
        c.Graph.c_blocks }

(* Apply block [bi] once, lub-merging its outputs into [nets]. Returns
   true when some output net changed. A lub conflict means the block
   retracted or rewrote a defined value: not monotone. With a
   supervisor the application is guarded (trap containment, budgets,
   quarantine) and a retraction is contained by freezing the block at
   the nets' current values instead of raising. *)
let apply_block ?supervisor ?causal (c : Graph.compiled) ~bufs nets bi =
  let block, in_nets, out_nets = c.Graph.c_blocks.(bi) in
  let buf = bufs.b_in.(bi) in
  (match causal with
  | None -> ()
  | Some cz -> Telemetry.Causal.eval_begin cz ~block:bi ~reads:in_nets);
  let run () =
    for p = 0 to Array.length in_nets - 1 do
      buf.(p) <- nets.(in_nets.(p))
    done;
    Block.apply block buf
  in
  let outputs =
    match supervisor with
    | None -> run ()
    | Some sup -> Supervisor.guard sup ~bi ~run
  in
  (match (causal, supervisor) with
  | Some cz, Some sup -> (
      match Supervisor.containment sup bi with
      | Some tag -> Telemetry.Causal.set_tag cz tag
      | None -> ())
  | _ -> ());
  let changed = ref false in
  (try
     Array.iteri
       (fun port v ->
         let net = out_nets.(port) in
         let merged =
           try Domain.lub nets.(net) v
           with Domain.Inconsistent msg ->
             let detail =
               Printf.sprintf "block %s retracted output %d: %s"
                 block.Block.name port msg
             in
             let contained =
               match supervisor with
               | Some sup ->
                   Supervisor.retract sup ~bi
                     ~current:(Array.map (fun n -> nets.(n)) out_nets)
                     ~detail
               | None -> false
             in
             if contained then raise_notrace Exit
             else raise (Nonmonotonic detail)
         in
         if not (Domain.equal merged nets.(net)) then begin
           nets.(net) <- merged;
           (match causal with
           | None -> ()
           | Some cz -> Telemetry.Causal.eval_write cz ~net merged);
           changed := true
         end)
       outputs
   with Exit ->
     (* retraction contained: nets keep their values *)
     (match causal with
     | None -> ()
     | Some cz -> Telemetry.Causal.set_tag cz "contained:retraction"));
  (match causal with
  | None -> ()
  | Some cz ->
      (* a substitution that established nothing still links the
         block's nets to the tagged event, so ⊥/held values resolve *)
      if
        Telemetry.Causal.pending_tag cz <> ""
        && Telemetry.Causal.pending_writes cz = 0
      then
        Array.iter
          (fun net -> Telemetry.Causal.eval_write cz ~net nets.(net))
          out_nets;
      Telemetry.Causal.eval_commit cz);
  !changed

(* ------------------------------------------------------------------ *)
(* Chaotic iteration: the reference oracle. Re-evaluates every block on
   every sweep until a sweep changes nothing.                           *)
(* ------------------------------------------------------------------ *)

(* Optional per-block evaluation tally for telemetry; a zero-length
   array (the default) disables counting. *)
let bump counts bi =
  if Array.length counts > 0 then counts.(bi) <- counts.(bi) + 1

let eval_chaotic ?supervisor ?causal c nets ~bufs ~order ~counts =
  let order =
    match order with
    | Some order -> order
    | None -> Array.init (Array.length c.Graph.c_blocks) (fun i -> i)
  in
  let evaluations = ref 0 in
  let sweeps = ref 0 in
  (* Height of the product domain = number of nets; one extra sweep
     detects stability, so n_nets + 2 sweeps suffice for monotone blocks. *)
  let max_sweeps = c.Graph.n_nets + 2 in
  let changed = ref true in
  while !changed do
    if !sweeps > max_sweeps then
      raise (Nonmonotonic "fixpoint exceeded the monotone iteration bound");
    changed := false;
    incr sweeps;
    Array.iter
      (fun bi ->
        incr evaluations;
        bump counts bi;
        if apply_block ?supervisor ?causal c ~bufs nets bi then changed := true)
      order
  done;
  (!sweeps, !evaluations)

(* ------------------------------------------------------------------ *)
(* Static schedule: acyclic blocks once, in topological order; cyclic
   SCCs iterate locally until stable (bounded by the SCC's net count).  *)
(* ------------------------------------------------------------------ *)

(* Shared by Scheduled and the fused plan's SCC fallback. *)
let iterate_scc ?supervisor ?causal c nets ~bufs ~members ~bound ~counts
    ~evaluations =
  let rounds = ref 0 in
  let changed = ref true in
  while !changed do
    if !rounds > bound then
      raise
        (Nonmonotonic "cyclic component exceeded the monotone iteration bound");
    changed := false;
    incr rounds;
    Array.iter
      (fun bi ->
        incr evaluations;
        bump counts bi;
        if apply_block ?supervisor ?causal c ~bufs nets bi then changed := true)
      members
  done;
  !rounds

let eval_scheduled ?supervisor ?causal c nets ~bufs ~schedule ~counts =
  let evaluations = ref 0 in
  let max_rounds = ref 1 in
  List.iter
    (fun group ->
      match group with
      | Schedule.Acyclic bi ->
          incr evaluations;
          bump counts bi;
          ignore (apply_block ?supervisor ?causal c ~bufs nets bi)
      | Schedule.Cyclic members ->
          (* Local domain height = nets written inside the SCC; one
             extra round detects stability. *)
          let scc_nets =
            Array.fold_left
              (fun acc bi ->
                let _, _, outs = c.Graph.c_blocks.(bi) in
                acc + Array.length outs)
              0 members
          in
          let rounds =
            iterate_scc ?supervisor ?causal c nets ~bufs ~members
              ~bound:(scc_nets + 2) ~counts ~evaluations
          in
          if rounds > !max_rounds then max_rounds := rounds)
    (Schedule.groups schedule);
  (!max_rounds, !evaluations)

(* ------------------------------------------------------------------ *)
(* Worklist: every block is seeded once; afterwards a block re-enters
   the queue only when one of its input nets actually changed.          *)
(* ------------------------------------------------------------------ *)

let eval_worklist ?supervisor ?causal c nets ~bufs ~seed ~counts =
  let n_blocks = Array.length c.Graph.c_blocks in
  let queue = Queue.create () in
  let in_queue = Array.make n_blocks false in
  let eval_count = Array.make n_blocks 0 in
  Array.iter
    (fun bi ->
      Queue.push bi queue;
      in_queue.(bi) <- true)
    seed;
  let evaluations = ref 0 in
  (* Monotone blocks change each net at most n_nets times in total, so
     every block re-enters the queue a bounded number of times. *)
  let max_evaluations = (n_blocks + 1) * (c.Graph.n_nets + 2) in
  while not (Queue.is_empty queue) do
    let bi = Queue.pop queue in
    in_queue.(bi) <- false;
    incr evaluations;
    bump counts bi;
    eval_count.(bi) <- eval_count.(bi) + 1;
    if !evaluations > max_evaluations then
      raise (Nonmonotonic "worklist exceeded the monotone evaluation bound");
    let _, _, out_nets = c.Graph.c_blocks.(bi) in
    let before = bufs.b_out.(bi) in
    for port = 0 to Array.length out_nets - 1 do
      before.(port) <- nets.(out_nets.(port))
    done;
    if apply_block ?supervisor ?causal c ~bufs nets bi then
      Array.iteri
        (fun port net ->
          if not (Domain.equal before.(port) nets.(net)) then
            Array.iter
              (fun consumer ->
                if not in_queue.(consumer) then begin
                  Queue.push consumer queue;
                  in_queue.(consumer) <- true
                end)
              c.Graph.c_consumers.(net))
        out_nets
  done;
  let deepest = Array.fold_left max 1 eval_count in
  (deepest, !evaluations)

(* ------------------------------------------------------------------ *)
(* Fused: execute a precompiled Fuse plan. Acyclic blocks store their
   outputs directly into net slots (single producer + topological order
   make the direct store exact); cyclic SCCs fall back to the bounded
   lub iteration above. With a supervisor, every remaining application
   runs under Supervisor.guard — same containment, same substitution.   *)
(* ------------------------------------------------------------------ *)

(* Direct-store application of an acyclic opaque block: inputs from a
   reused buffer, outputs straight into the slots. *)
let apply_direct ?supervisor ?causal (c : Graph.compiled) ~bufs nets bi =
  let block, in_nets, out_nets = c.Graph.c_blocks.(bi) in
  let buf = bufs.b_in.(bi) in
  (match causal with
  | None -> ()
  | Some cz -> Telemetry.Causal.eval_begin cz ~block:bi ~reads:in_nets);
  let run () =
    for p = 0 to Array.length in_nets - 1 do
      buf.(p) <- nets.(in_nets.(p))
    done;
    Block.apply block buf
  in
  let outputs =
    match supervisor with
    | None -> run ()
    | Some sup -> Supervisor.guard sup ~bi ~run
  in
  for port = 0 to Array.length out_nets - 1 do
    nets.(out_nets.(port)) <- outputs.(port)
  done;
  match causal with
  | None -> ()
  | Some cz ->
      (match supervisor with
      | Some sup -> (
          match Supervisor.containment sup bi with
          | Some tag -> Telemetry.Causal.set_tag cz tag
          | None -> ())
      | None -> ());
      (* single producer + topological order make the direct store the
         establishing write; a tagged substitution records its ⊥ ports
         too, so absent values keep their provenance *)
      let tagged = Telemetry.Causal.pending_tag cz <> "" in
      for port = 0 to Array.length out_nets - 1 do
        let v = outputs.(port) in
        if tagged || Domain.is_def v then
          Telemetry.Causal.eval_write cz ~net:out_nets.(port) v
      done;
      Telemetry.Causal.eval_commit cz

let eval_fused ?supervisor ?causal c nets ~bufs ~plan ~counts =
  let evaluations = ref 0 in
  let max_rounds = ref 1 in
  let ops = plan.Fuse.f_ops in
  let n = Array.length ops in
  (match (supervisor, causal) with
  | None, None when Array.length counts = 0 ->
      (* Hot path: the fast lane. Chains are already collapsed into
         closures, so the pass is a bare sweep over them; the block
         applications it stands for are accounted in one add. *)
      evaluations := plan.Fuse.f_fast_evals;
      let fast = plan.Fuse.f_fast in
      for k = 0 to Array.length fast - 1 do
        match fast.(k) with
        | Fuse.Frun run -> run nets
        | Fuse.Fiter (members, bound) ->
            let rounds =
              iterate_scc c nets ~bufs ~members ~bound ~counts ~evaluations
            in
            if rounds > !max_rounds then max_rounds := rounds
      done;
      (* serve environment-read fork/identity ports from their alias *)
      let dst = plan.Fuse.f_copy_dst and src = plan.Fuse.f_copy_src in
      for k = 0 to Array.length dst - 1 do
        nets.(dst.(k)) <- nets.(src.(k))
      done
  | None, None ->
      for k = 0 to n - 1 do
        match ops.(k) with
        | Fuse.Step (bi, step) ->
            incr evaluations;
            bump counts bi;
            step nets
        | Fuse.Generic bi ->
            incr evaluations;
            bump counts bi;
            apply_direct c ~bufs nets bi
        | Fuse.Iterate (members, bound) ->
            let rounds =
              iterate_scc c nets ~bufs ~members ~bound ~counts ~evaluations
            in
            if rounds > !max_rounds then max_rounds := rounds
      done
  | _ ->
      (* Supervised and/or traced: kernel specialization would bypass
         the guard and hide writes from the causal sink, so every
         acyclic block takes the (guarded, recorded) direct-store path.
         Folded blocks stay folded — they are constant, cannot fault,
         and are recorded as template bindings by the caller. *)
      for k = 0 to n - 1 do
        match ops.(k) with
        | Fuse.Step (bi, _) | Fuse.Generic bi ->
            incr evaluations;
            bump counts bi;
            apply_direct ?supervisor ?causal c ~bufs nets bi
        | Fuse.Iterate (members, bound) ->
            let rounds =
              iterate_scc ?supervisor ?causal c nets ~bufs ~members ~bound
                ~counts ~evaluations
            in
            if rounds > !max_rounds then max_rounds := rounds
      done);
  (!max_rounds, !evaluations)

(* ------------------------------------------------------------------ *)

let eval (c : Graph.compiled) ~inputs ~delay_values ?order ?(strategy = Chaotic)
    ?schedule ?fuse ?buffers ?nets ?(eval_counts = [||]) ?supervisor ?causal ()
    =
  (match (order, strategy) with
  | Some _, (Scheduled | Worklist | Fused) ->
      invalid_arg
        (Printf.sprintf
           "fixpoint: explicit evaluation order requires the chaotic \
            strategy, not %s"
           (strategy_name strategy))
  | _ -> ());
  let plan =
    match strategy with
    | Fused -> (
        match fuse with
        | Some p ->
            if
              p.Fuse.f_n_nets <> c.Graph.n_nets
              || p.Fuse.f_n_blocks <> Array.length c.Graph.c_blocks
            then invalid_arg "fixpoint: fused plan does not match the graph";
            Some p
        | None -> Some (Fuse.compile ?schedule c))
    | Chaotic | Scheduled | Worklist -> None
  in
  let nets =
    match nets with
    | None -> Array.make c.Graph.n_nets Domain.Bottom
    | Some buf ->
        if Array.length buf <> c.Graph.n_nets then
          invalid_arg "fixpoint: net buffer length mismatch";
        buf
  in
  (* The fused template preloads folded constant nets; other strategies
     start from all-⊥. The fast lane (no supervisor, no counting)
     restores only the slots a pass can leave stale — everything else
     is rewritten unconditionally or aliased away. The counting and
     supervised paths run conditional per-block steps over every net,
     so they need the full blit. *)
  (match plan with
  | Some p
    when Option.is_none supervisor && Option.is_none causal
         && Array.length eval_counts = 0 ->
      let template = p.Fuse.f_template and rlist = p.Fuse.f_reset in
      for k = 0 to Array.length rlist - 1 do
        let s = rlist.(k) in
        nets.(s) <- template.(s)
      done
  | Some p -> Array.blit p.Fuse.f_template 0 nets 0 (Array.length nets)
  | None -> Array.fill nets 0 (Array.length nets) Domain.Bottom);
  List.iter
    (fun (label, v) ->
      match Graph.input_net c label with
      | Some net -> nets.(net) <- v
      | None -> invalid_arg (Printf.sprintf "fixpoint: unknown input '%s'" label))
    inputs;
  if Array.length delay_values <> Array.length c.Graph.c_delays then
    invalid_arg "fixpoint: delay vector length mismatch";
  Array.iteri
    (fun i (_, out_net, _) -> nets.(out_net) <- delay_values.(i))
    c.Graph.c_delays;
  (* Bracket this evaluation as one traced instant and record the
     instant-start bindings: folded constants (fused template), driven
     environment inputs, then delay crossings (whose reads resolve
     against the previous instant's writers). *)
  let causal_instant =
    match causal with
    | None -> false
    | Some cz ->
        let opened =
          if Telemetry.Causal.in_instant cz then false
          else begin
            Telemetry.Causal.begin_instant cz;
            true
          end
        in
        (match plan with
        | Some p ->
            List.iter
              (fun (net, v) ->
                Telemetry.Causal.record_binding cz ~kind:Telemetry.Causal.Folded
                  ~net v)
              (Fuse.constant_nets p)
        | None -> ());
        List.iter
          (fun (label, v) ->
            match Graph.input_net c label with
            | Some net ->
                Telemetry.Causal.record_binding cz ~kind:Telemetry.Causal.Input
                  ~net v
            | None -> ())
          inputs;
        Array.iteri
          (fun i (in_net, out_net, _) ->
            Telemetry.Causal.record_binding cz ~kind:Telemetry.Causal.Delay
              ~net:out_net ~src:in_net delay_values.(i))
          c.Graph.c_delays;
        opened
  in
  let counts = eval_counts in
  let bufs = match buffers with Some b -> b | None -> make_buffers c in
  (* Standalone use (no Simulate driving the lifecycle): bracket this
     evaluation as one supervised instant. *)
  let auto_instant =
    match supervisor with
    | Some sup ->
        Supervisor.attach sup c;
        if Supervisor.in_instant sup then false
        else begin
          Supervisor.begin_instant sup;
          true
        end
    | None -> false
  in
  if Array.length counts > 0 && Array.length counts <> Array.length c.Graph.c_blocks
  then invalid_arg "fixpoint: eval_counts length mismatch";
  let iterations, block_evaluations =
    match strategy with
    | Chaotic -> eval_chaotic ?supervisor ?causal c nets ~bufs ~order ~counts
    | Scheduled ->
        let schedule =
          match schedule with
          | Some s -> s
          | None -> Schedule.of_compiled c
        in
        eval_scheduled ?supervisor ?causal c nets ~bufs ~schedule ~counts
    | Worklist ->
        let seed =
          match schedule with
          | Some s -> Schedule.linear_order s
          | None -> Array.init (Array.length c.Graph.c_blocks) (fun i -> i)
        in
        eval_worklist ?supervisor ?causal c nets ~bufs ~seed ~counts
    | Fused ->
        eval_fused ?supervisor ?causal c nets ~bufs ~plan:(Option.get plan)
          ~counts
  in
  (match supervisor with
  | Some sup when auto_instant -> Supervisor.end_instant sup
  | _ -> ());
  (match causal with
  | Some cz when causal_instant -> Telemetry.Causal.end_instant cz
  | _ -> ());
  { nets; iterations; block_evaluations }

let outputs (c : Graph.compiled) result =
  Array.to_list
    (Array.map (fun (label, net) -> (label, result.nets.(net))) c.Graph.c_outputs)

let delay_next (c : Graph.compiled) result =
  Array.map (fun (in_net, _, _) -> result.nets.(in_net)) c.Graph.c_delays

let delay_next_into (c : Graph.compiled) result dst =
  let delays = c.Graph.c_delays in
  if Array.length dst <> Array.length delays then
    invalid_arg "fixpoint: delay vector length mismatch";
  for i = 0 to Array.length delays - 1 do
    let in_net, _, _ = delays.(i) in
    dst.(i) <- result.nets.(in_net)
  done
