module Json = Telemetry.Json

let malformed what = invalid_arg ("Asr.Codec: malformed " ^ what)

let rec data_json (d : Data.t) =
  match d with
  | Data.Int n -> Json.Int n
  | Data.Bool b -> Json.Bool b
  | Data.Real f ->
      (* The decimal rendering is lossy (%.12g) and non-finite floats
         print as 0; the bit pattern is what round-trips. *)
      Json.float_bits f
  | Data.Str s -> Json.Obj [ ("s", Json.Str s) ]
  | Data.Int_array a ->
      Json.Obj
        [ ( "ia",
            Json.List (Array.to_list (Array.map (fun n -> Json.Int n) a)) ) ]
  | Data.Tuple vs -> Json.Obj [ ("tu", Json.List (List.map data_json vs)) ]
  | Data.Absent -> Json.Obj [ ("absent", Json.Bool true) ]

let rec data_of_json j =
  match j with
  | Json.Int n -> Data.Int n
  | Json.Bool b -> Data.Bool b
  | Json.Obj _ -> (
      match Json.float_of_bits j with
      | Some f -> Data.Real f
      | None -> (
          match Json.member "s" j with
          | Some (Json.Str s) -> Data.Str s
          | _ -> (
              match Json.member "ia" j with
              | Some (Json.List l) ->
                  Data.Int_array
                    (Array.of_list
                       (List.map
                          (function Json.Int n -> n | _ -> malformed "value")
                          l))
              | _ -> (
                  match Json.member "tu" j with
                  | Some (Json.List l) -> Data.Tuple (List.map data_of_json l)
                  | _ -> (
                      match Json.member "absent" j with
                      | Some _ -> Data.Absent
                      | _ -> malformed "value")))))
  | _ -> malformed "value"

let value_json (v : Domain.t) =
  match v with Domain.Bottom -> Json.Null | Domain.Def d -> data_json d

let value_of_json j =
  match j with Json.Null -> Domain.Bottom | j -> Domain.Def (data_of_json j)

(* Bit-exact equality: Domain.equal compares reals with (=), which
   conflates distinct NaN payloads and -0.0 with 0.0; the serialized
   form is the identity replay and resume are measured against. *)
let value_eq a b = Json.to_string (value_json a) = Json.to_string (value_json b)

let vec_json vec = Json.List (Array.to_list (Array.map value_json vec))

let vec_of_json name j =
  match j with
  | Json.List l -> Array.of_list (List.map value_of_json l)
  | _ -> malformed name

(* ------------------------------------------------------------------ *)
(* Fault-injection campaign specs                                     *)

let spec_json (s : Inject.spec) =
  Json.Obj
    [ ("block", Json.Int s.Inject.i_block);
      ("kind", Json.Str (Inject.kind_name s.Inject.i_kind));
      ("instant", Json.Int s.Inject.i_instant);
      ("persistence", Json.Str (Inject.persistence_name s.Inject.i_persistence));
      ("first_only", Json.Bool s.Inject.i_first_only) ]

let int_field name j =
  match Json.member name j with Some (Json.Int n) -> n | _ -> malformed name

let str_field name j =
  match Json.member name j with Some (Json.Str s) -> s | _ -> malformed name

let spec_of_json j : Inject.spec =
  let kind =
    match str_field "kind" j with
    | "trap" -> Inject.Trap
    | "cycle-spike" -> Inject.Cycle_spike
    | "alloc-storm" -> Inject.Alloc_storm
    | _ -> malformed "kind"
  in
  let persistence =
    match str_field "persistence" j with
    | "transient" -> Inject.Transient
    | "persistent" -> Inject.Persistent
    | _ -> malformed "persistence"
  in
  let first_only =
    match Json.member "first_only" j with
    | Some (Json.Bool b) -> b
    | _ -> malformed "first_only"
  in
  {
    Inject.i_block = int_field "block" j;
    i_kind = kind;
    i_instant = int_field "instant" j;
    i_persistence = persistence;
    i_first_only = first_only;
  }
