type kind = Trap | Cycle_spike | Alloc_storm

type persistence = Transient | Persistent

type spec = {
  i_block : int;
  i_kind : kind;
  i_instant : int;
  i_persistence : persistence;
  i_first_only : bool;
}

exception Injected of kind * string

type t = {
  specs : spec array;
  mutable instant : int;
  apps : (int, int) Hashtbl.t; (* block index -> applications this instant *)
  mutable fired : int;
}

let kind_name = function
  | Trap -> "trap"
  | Cycle_spike -> "cycle-spike"
  | Alloc_storm -> "alloc-storm"

let persistence_name = function
  | Transient -> "transient"
  | Persistent -> "persistent"

let spec_to_string s =
  Printf.sprintf "%s %s on block %d %s instant %d%s"
    (persistence_name s.i_persistence)
    (kind_name s.i_kind) s.i_block
    (match s.i_persistence with Transient -> "at" | Persistent -> "from")
    s.i_instant
    (if s.i_first_only then " (first application only)" else "")

let make specs =
  List.iter
    (fun s ->
      if s.i_block < 0 then invalid_arg "Inject.make: negative block index";
      if s.i_instant < 0 then invalid_arg "Inject.make: negative instant")
    specs;
  { specs = Array.of_list specs;
    instant = 0;
    apps = Hashtbl.create 8;
    fired = 0 }

let specs t = Array.to_list t.specs

let tick t =
  t.instant <- t.instant + 1;
  Hashtbl.reset t.apps

let instant t = t.instant

let fired t = t.fired

let reset t =
  t.instant <- 0;
  Hashtbl.reset t.apps;
  t.fired <- 0

(* Per-instant application counts are cleared by [tick], so a
   checkpoint taken between instants only needs the two cumulative
   registers. *)
let restore_state t ~instant ~fired =
  if instant < 0 || fired < 0 then
    invalid_arg "Inject.restore_state: negative state";
  t.instant <- instant;
  Hashtbl.reset t.apps;
  t.fired <- fired

(* The injected message mimics the wording of the real fault the kind
   models, so log readers (and the default classifier's fallbacks) see
   plausible diagnostics. *)
let message = function
  | Trap -> "injected trap"
  | Cycle_spike -> "injected cycle spike: reaction budget exceeded"
  | Alloc_storm -> "injected alloc storm: heap exhausted"

let active t s app =
  (match s.i_persistence with
  | Transient -> t.instant = s.i_instant
  | Persistent -> t.instant >= s.i_instant)
  && ((not s.i_first_only) || app = 0)

let wrap t ~index (b : Block.t) =
  let mine =
    List.filter (fun s -> s.i_block = index) (Array.to_list t.specs)
  in
  if mine = [] then b
  else
    (* Same name and arity as the wrapped block: injected and clean
       graphs stay structurally identical, which the differential
       containment tests rely on. *)
    Block.make ~name:b.Block.name ~n_in:b.Block.n_in ~n_out:b.Block.n_out
      (fun inputs ->
        let app =
          match Hashtbl.find_opt t.apps index with Some n -> n | None -> 0
        in
        Hashtbl.replace t.apps index (app + 1);
        match List.find_opt (fun s -> active t s app) mine with
        | Some s ->
            t.fired <- t.fired + 1;
            raise (Injected (s.i_kind, message s.i_kind))
        | None -> b.Block.fn inputs)

let instrument t g = Graph.map_blocks g (fun index b -> wrap t ~index b)

let plan ~seed ~n_blocks ~instants ?(n_faults = 1) ?(first_only = false) () =
  if n_blocks < 1 then invalid_arg "Inject.plan: need at least one block";
  if instants < 1 then invalid_arg "Inject.plan: need at least one instant";
  (* A private Random.State keyed on the seed: identical plans for
     identical seeds, no interference with the global generator. *)
  let st = Random.State.make [| seed; 0x6a77; n_blocks; instants |] in
  List.init (max 0 n_faults) (fun _ ->
      { i_block = Random.State.int st n_blocks;
        i_kind =
          (match Random.State.int st 3 with
          | 0 -> Trap
          | 1 -> Cycle_spike
          | _ -> Alloc_storm);
        i_instant = Random.State.int st instants;
        i_persistence =
          (if Random.State.bool st then Transient else Persistent);
        i_first_only = first_only })
