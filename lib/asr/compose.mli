(** Spatial abstraction (paper §3, Fig. 5).

    An aggregation of blocks is functionally equivalent to a single
    block; a collection of blocks and delay elements is equivalent to a
    system with one block and one (vector-valued) delay element. *)

val to_block :
  ?instants:Instant.t ->
  ?strategy:Fixpoint.strategy ->
  ?supervisor:Supervisor.t ->
  Graph.t ->
  Block.t
(** Collapse a delay-free graph into one functional block whose inputs
    and outputs follow the graph's environment port order. Each
    application runs the internal fixed point under a schedule
    precompiled once at collapse time ([strategy] defaults to
    {!Fixpoint.Worklist}); with [instants] set, the internal activity of
    every application is logged as nested sub-instants. Raises
    [Invalid_argument] if the graph contains delay elements.

    [supervisor] (which must be dedicated to this inner graph, not
    shared with an enclosing simulation) guards the internal fixpoint:
    each application of the collapsed block runs as one supervised
    instant, so a fault inside the subsystem is contained within it
    rather than tearing down the enclosing system. *)

val abstract :
  ?instants:Instant.t ->
  ?strategy:Fixpoint.strategy ->
  ?supervisor:Supervisor.t ->
  Graph.t ->
  Graph.t
(** Fig. 5 proper: an equivalent system with exactly one block and (if
    the original had any delays) one delay element carrying the tuple of
    all delay states. Environment ports keep their names, so traces of
    the original and the abstraction are directly comparable. *)
