(** Reaction supervisor: runtime fault containment for ASR simulation.

    The refinement rules guarantee bounded reactions *statically*; the
    supervisor enforces graceful behavior when a block misbehaves
    anyway — an unrefined program, a modeling error, or an injected
    fault ({!Inject}). It wraps every block application of a fixpoint
    so that a raising block is *contained* instead of tearing down the
    whole reactive system: the block's output nets hold their previous
    value or go absent (per {!policy}) while the fixpoint continues for
    every other block, and a watchdog escalates a block to permanent
    quarantine after [escalate_after] consecutive faulty instants.

    {b Containment invariant.} A contained block's substitution is
    always lub-consistent with what the block already wrote this
    instant (staged outputs if any, otherwise the previous instant's
    committed outputs, otherwise ⊥), and is constant for the rest of
    the instant — so the supervised fixpoint still iterates a monotone
    function and converges. Consequently every net outside
    {!Graph.affected_nets} of the faulted block takes exactly the same
    per-instant value as in the fault-free run; the test suite and the
    [faults] bench check this bit-for-bit.

    {b Determinism.} The supervisor adds no randomness: given the same
    graph, inputs, policy and (injected) faults, the fault log and all
    net traces are identical run to run.

    Lifecycle: {!attach} once per compiled graph (done implicitly by
    {!Fixpoint.eval}), {!begin_instant} / {!end_instant} around each
    instant (done by {!Simulate.react}; [Fixpoint.eval] brackets itself
    when used standalone). *)

type policy =
  | Fail_fast  (** re-raise as {!Fatal}: stop the simulation *)
  | Hold_last  (** output nets hold the previous instant's values *)
  | Absent  (** output nets go ⊥ for the instant *)
  | Retry of int
      (** re-run the block up to [n] more times within the instant;
          contain like [Hold_last] if every attempt faults *)

type fault_class =
  | Trap  (** bounds violation, division by zero, … *)
  | Budget_exceeded  (** reaction cycle budget blown *)
  | Heap_exhausted  (** allocation failure / bounded-memory violation *)
  | Step_limit  (** more applications in one instant than [step_budget] *)
  | Retraction  (** non-monotone: the block changed a defined output *)

type action =
  | Held
  | Went_absent
  | Recovered of int  (** a [Retry] succeeded after [n] failed attempts *)
  | Escalated
  | Aborted

type fault = {
  f_instant : int;
  f_block : int;  (** index in [compiled.c_blocks] *)
  f_block_name : string;
  f_class : fault_class;
  f_detail : string;  (** human-readable provenance (exception message) *)
  f_action : action;
}

exception Fatal of fault
(** Raised under [Fail_fast] (after logging the fault). *)

type event =
  | Ev_fault of fault  (** a fault was contained (any action) *)
  | Ev_recovered of fault  (** a [Retry] absorbed a transient fault *)
  | Ev_quarantined of fault
      (** the watchdog escalated the block to permanent quarantine *)

type t

val create :
  ?policy:policy ->
  ?escalate_after:int ->
  ?max_log:int ->
  ?step_budget:int ->
  ?classify:(exn -> (fault_class * string) option) ->
  ?telemetry:Telemetry.Registry.t ->
  unit ->
  t
(** Defaults: [policy = Hold_last], [escalate_after = 3] consecutive
    faulty instants before quarantine, [max_log = 1000] retained fault
    records (later ones are counted in {!dropped_faults}), no
    [step_budget] (no per-instant application limit).

    [classify] maps an exception raised by a block to a fault class and
    detail; it is consulted before the built-in classifier (which
    recognizes {!Inject.Injected}, [Division_by_zero],
    [Invalid_argument], [Failure], [Stack_overflow], [Out_of_memory]).
    An exception neither classifier recognizes propagates unchanged —
    the supervisor contains faults, it does not swallow harness bugs.
    Engine-level classification (cycle budgets, heap limits) is
    provided by [Elaborate.fault_classifier].

    [telemetry] feeds counters ["asr.supervisor.faults"],
    ["asr.supervisor.fault.<class>"], ["asr.supervisor.recovered"] and
    ["asr.supervisor.quarantined"]. *)

val set_observer : t -> (event -> unit) -> unit
(** Install a synchronous event observer, replacing any previous one.
    Fired at every containment ([Ev_fault], including the ones beyond
    the [max_log] retention cap), retry recovery ([Ev_recovered]) and
    watchdog escalation ([Ev_quarantined], from {!end_instant}). Under
    [Fail_fast] the observer sees the fault before {!Fatal} is raised.
    {!Simulate} uses this to feed {!Telemetry.Monitor} block health;
    {!reset} leaves the observer installed. *)

val attach : t -> Graph.compiled -> unit
(** Size the per-block state for this graph. Idempotent for graphs with
    the same block count; [Invalid_argument] if the supervisor is
    already attached to a graph with a different one. *)

val begin_instant : t -> unit

val end_instant : t -> unit
(** Commit staged outputs, advance the watchdog (consecutive-fault
    counters, quarantine escalation), move to the next instant. *)

val in_instant : t -> bool

val guard : t -> bi:int -> run:(unit -> Domain.t array) -> Domain.t array
(** One supervised block application: runs [run ()] unless the block is
    quarantined or already contained this instant (in which case the
    substitution is returned directly), classifies and contains any
    recognized fault per the policy. Called by [Fixpoint.apply_block]. *)

val retract : t -> bi:int -> current:Domain.t array -> detail:string -> bool
(** Containment for a lub conflict detected *outside* the block
    function (the block returned, but its outputs contradict the nets).
    [current] must be the block's output nets' current values; the
    block is frozen at those values for the rest of the instant. [false]
    when the block was already contained this instant — the caller
    should then fall back to [Fixpoint.Nonmonotonic]. *)

(** {2 Inspection} *)

val policy : t -> policy

val escalation_threshold : t -> int
(** The [escalate_after] this supervisor was created with. *)

val faults : t -> fault list
(** Chronological fault log (capped at [max_log]). *)

val fault_count : t -> int
(** Contained (non-recovered) faults, including those beyond the cap. *)

val recovered_count : t -> int

val dropped_faults : t -> int

val instant_fault_count : t -> int
(** Faults contained in the current (or just-ended) instant. *)

val is_quarantined : t -> int -> bool

val containment : t -> int -> string option
(** When block [bi]'s outputs this instant come from a containment
    substitution rather than the block's own function, the provenance
    tag: ["contained:"] or ["quarantined:"] followed by the value
    source — ["held"] (outputs staged earlier this instant),
    ["hold-last"] (last committed outputs) or ["absent"] (⊥). [None]
    when the block is running normally. Feeds the causal trace so
    held/absent values carry their policy provenance. *)

val quarantined_blocks : t -> int list

val fault_to_json : fault -> Telemetry.Json.t

val faults_json : t -> Telemetry.Json.t
(** The full fault log plus summary counters, for [--fault-log]. *)

val reset : t -> unit
(** Clear all per-block state, counters and the log (for re-running a
    trace on the same graph; pairs with {!Simulate.reset}). *)

(** {2 Checkpoint state}

    The inter-instant registers — instant index, committed outputs,
    fault streaks, quarantine flags, counters, and the capped fault
    log — as a JSON blob. Per-instant scratch (staged values, latches,
    application counts) is excluded: it is cleared by the next
    [begin_instant], so a checkpoint taken between instants never needs
    it. Reals serialize as IEEE-754 bit patterns, and fault actions as
    parseable tags (["recovered:3"], not prose), so a restored
    supervisor continues — and logs — bit-identically. *)

val state_json : t -> Telemetry.Json.t
(** Raises [Invalid_argument] when called mid-instant. *)

val restore_state : t -> Telemetry.Json.t -> unit
(** Restore into an {!attach}ed supervisor created with the same policy
    and escalation threshold (both are checked; mismatch raises
    [Invalid_argument], as does malformed input). *)

(** {2 Names} *)

val policy_name : policy -> string

val policy_of_string : string -> policy option
(** Accepts ["fail"]/["fail-fast"], ["hold"]/["hold-last"], ["absent"],
    ["retry:<n>"]. *)

val class_name : fault_class -> string

val action_name : action -> string

val fault_to_string : fault -> string

val default_classify : exn -> (fault_class * string) option
