(** Bit-exact JSON codec for ASR values, shared by the durable
    artifacts ({!Trace} recordings and {!Checkpoint} snapshots).

    [Telemetry.Json.to_string] rounds floats through a decimal
    representation and renders non-finite values as [0], so reals are
    encoded with {!Telemetry.Json.float_bits} — the exact IEEE-754 bit
    pattern rides alongside a human-readable approximation and decoding
    restores the identical bits (NaN payloads and [-0.0] included).
    All decoders raise [Invalid_argument] on malformed input. *)

val data_json : Data.t -> Telemetry.Json.t
val data_of_json : Telemetry.Json.t -> Data.t

val value_json : Domain.t -> Telemetry.Json.t
(** [Bottom] encodes as JSON [null]. *)

val value_of_json : Telemetry.Json.t -> Domain.t

val value_eq : Domain.t -> Domain.t -> bool
(** Bit-exact equality: [Domain.equal] compares reals with [(=)], which
    conflates distinct NaN payloads and [-0.0] with [0.0]; this compares
    the serialized forms, the identity replay and resume are measured
    against. *)

val vec_json : Domain.t array -> Telemetry.Json.t
val vec_of_json : string -> Telemetry.Json.t -> Domain.t array

val spec_json : Inject.spec -> Telemetry.Json.t
val spec_of_json : Telemetry.Json.t -> Inject.spec

val malformed : string -> 'a
(** [malformed what] raises [Invalid_argument] naming the offending
    construct; exposed so artifact parsers built on this codec report
    errors uniformly. *)
