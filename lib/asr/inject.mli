(** Deterministic, seeded fault injection for ASR blocks.

    The injector wraps selected blocks of a graph so that they raise a
    recognizable exception at chosen instants — the raw material for
    exercising the {!Supervisor}'s containment machinery. Faults are
    specified per block and per instant, are replayed identically for a
    fixed plan (there is no hidden randomness at injection time; only
    {!plan} draws random specs, from its own seeded generator), and the
    injector never perturbs a block it was not aimed at.

    The three fault kinds model the runtime misbehaviors the paper's
    refinement rules are meant to rule out: a [Trap] models a bounds
    violation or division by zero, a [Cycle_spike] models a reaction
    blowing its WCET budget, an [Alloc_storm] models heap exhaustion.
    At the ASR level all three surface as the {!Injected} exception
    (carrying the kind); the supervisor's default classifier maps them
    to the corresponding {!Supervisor.fault_class}, so the containment
    path taken is exactly the one a real trap of that class takes. *)

type kind = Trap | Cycle_spike | Alloc_storm

type persistence =
  | Transient  (** faults only at instant [i_instant] *)
  | Persistent  (** faults at every instant from [i_instant] on *)

type spec = {
  i_block : int;  (** target block, by index in [compiled.c_blocks] *)
  i_kind : kind;
  i_instant : int;  (** first faulty instant (0-based) *)
  i_persistence : persistence;
  i_first_only : bool;
      (** fault only the first application within a faulty instant —
          later applications (retries, fixpoint re-evaluations) succeed.
          Models an intermittent glitch a [Retry] policy can absorb. *)
}

exception Injected of kind * string
(** Raised by a wrapped block in place of running its function. *)

type t

val make : spec list -> t
(** Validates specs (non-negative block/instant). The injector starts
    at instant 0; drive it with {!tick} after each simulated instant. *)

val specs : t -> spec list

val wrap : t -> index:int -> Block.t -> Block.t
(** Wrap one block. If no spec targets [index] the block is returned
    unchanged; otherwise the wrapper raises {!Injected} whenever some
    spec is active for the injector's current instant and application
    count, and defers to the original block function otherwise. The
    wrapper keeps the block's name and arity. *)

val instrument : t -> Graph.t -> Graph.t
(** [wrap] every block of the graph, by declaration-order index (the
    same index the block has after {!Graph.compile}). Returns a new
    graph; the original is untouched. *)

val tick : t -> unit
(** Advance to the next instant and reset per-instant application
    counters. Call once after each {!Simulate.step}/[react]. *)

val instant : t -> int

val fired : t -> int
(** Total number of injected faults raised so far. *)

val reset : t -> unit
(** Back to instant 0 with zeroed counters (for re-running a trace). *)

val restore_state : t -> instant:int -> fired:int -> unit
(** Checkpoint restore: set the instant index and fired-fault count, the
    only inter-instant registers (per-instant application counts are
    cleared by {!tick}). Raises [Invalid_argument] on negative values. *)

val kind_name : kind -> string

val persistence_name : persistence -> string

val spec_to_string : spec -> string

val plan :
  seed:int ->
  n_blocks:int ->
  instants:int ->
  ?n_faults:int ->
  ?first_only:bool ->
  unit ->
  spec list
(** Draw [n_faults] (default 1) specs from a generator seeded with
    [seed] — identical seeds yield identical plans, independent of the
    global [Random] state. Blocks are drawn from [0..n_blocks-1] and
    first faulty instants from [0..instants-1]. *)
