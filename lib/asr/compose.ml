let domain_to_component = function
  | Domain.Bottom -> Data.Absent
  | Domain.Def v -> v

let component_to_domain = function
  | Data.Absent -> Domain.Bottom
  | v -> Domain.Def v

(* Shared machinery: run the inner fixpoint of [compiled] as the body of
   a single block application. State is the tuple of delay values. The
   schedule is compiled once per abstraction, and one net buffer is
   reused across applications. *)
let make_abstract_block ?instants ?(strategy = Fixpoint.Worklist) ?supervisor ~name compiled =
  let in_names = Array.map fst compiled.Graph.c_inputs in
  let out_names = Array.map fst compiled.Graph.c_outputs in
  let n_delays = Array.length compiled.Graph.c_delays in
  let has_state = n_delays > 0 in
  let n_in = Array.length in_names + if has_state then 1 else 0 in
  let n_out = Array.length out_names + if has_state then 1 else 0 in
  let schedule = Schedule.of_compiled compiled in
  let fuse =
    match strategy with
    | Fixpoint.Fused -> Some (Fuse.compile ~schedule compiled)
    | _ -> None
  in
  let buffers = Fixpoint.make_buffers compiled in
  let nets_buffer = Array.make compiled.Graph.n_nets Domain.Bottom in
  let applications = ref 0 in
  let fn inputs =
    incr applications;
    let env_inputs =
      Array.to_list (Array.mapi (fun i label -> (label, inputs.(i))) in_names)
    in
    let delay_values =
      if not has_state then [||]
      else
        match inputs.(Array.length in_names) with
        | Domain.Bottom -> Array.make n_delays Domain.Bottom
        | Domain.Def (Data.Tuple parts) when List.length parts = n_delays ->
            Array.of_list (List.map component_to_domain parts)
        | Domain.Def v ->
            invalid_arg
              (Printf.sprintf "abstract block %s: bad state %s" name
                 (Data.to_string v))
    in
    let result =
      Fixpoint.eval compiled ~inputs:env_inputs ~delay_values ~strategy
        ~schedule ?fuse ~buffers ~nets:nets_buffer ?supervisor ()
    in
    (match instants with
    | Some parent ->
        let app =
          Instant.add_child parent
            (Printf.sprintf "%s: application %d" name !applications)
        in
        Instant.add_leaves app ~prefix:"sweep" result.Fixpoint.iterations
    | None -> ());
    let outs =
      Array.map
        (fun (_, net) -> result.Fixpoint.nets.(net))
        compiled.Graph.c_outputs
    in
    if has_state then begin
      let next = Fixpoint.delay_next compiled result in
      let state =
        Domain.Def
          (Data.Tuple (Array.to_list (Array.map domain_to_component next)))
      in
      Array.append outs [| state |]
    end
    else outs
  in
  (Block.make ~name ~n_in ~n_out fn, in_names, out_names, has_state)

let to_block ?instants ?strategy ?supervisor g =
  if Graph.delay_count g > 0 then
    invalid_arg
      (Printf.sprintf "Compose.to_block: graph %s contains delay elements"
         (Graph.name g));
  let compiled = Graph.compile g in
  let block, _, _, _ =
    make_abstract_block ?instants ?strategy ?supervisor
      ~name:(Graph.name g ^ "^") compiled
  in
  block

let abstract ?instants ?strategy ?supervisor g =
  let compiled = Graph.compile g in
  let block, in_names, out_names, has_state =
    make_abstract_block ?instants ?strategy ?supervisor
      ~name:(Graph.name g ^ "^") compiled
  in
  let out_graph = Graph.create (Graph.name g ^ "_abstract") in
  let b = Graph.add_block out_graph block in
  Array.iteri
    (fun i label ->
      let input = Graph.add_input out_graph label in
      Graph.connect out_graph ~src:(Graph.out_port input 0) ~dst:(Graph.in_port b i))
    in_names;
  Array.iteri
    (fun j label ->
      let output = Graph.add_output out_graph label in
      Graph.connect out_graph ~src:(Graph.out_port b j) ~dst:(Graph.in_port output 0))
    out_names;
  if has_state then begin
    let init =
      Domain.Def
        (Data.Tuple
           (Array.to_list
              (Array.map
                 (fun (_, _, init) -> domain_to_component init)
                 compiled.Graph.c_delays)))
    in
    let d = Graph.add_delay out_graph ~init in
    Graph.connect out_graph
      ~src:(Graph.out_port b (Array.length out_names))
      ~dst:(Graph.in_port d 0);
    Graph.connect out_graph ~src:(Graph.out_port d 0)
      ~dst:(Graph.in_port b (Array.length in_names))
  end;
  out_graph
