(** Reactive simulation: drive an ASR system instant by instant.

    ASR systems are reactive — the environment initiates every instant
    by presenting inputs; with no input the system sits idle (paper §3).
    The simulator owns the delay state between instants, compiles the
    evaluation {!Schedule} once at creation, and reuses one net buffer
    across instants instead of allocating per reaction. *)

type t

type trace_entry = {
  instant : int;
  inputs : (string * Domain.t) list;
  outputs : (string * Domain.t) list;
  iterations : int;
}

val create :
  ?order:int array ->
  ?strategy:Fixpoint.strategy ->
  ?telemetry:Telemetry.Registry.t ->
  ?supervisor:Supervisor.t ->
  ?monitor:Telemetry.Monitor.t ->
  ?causal:Domain.t Telemetry.Causal.t ->
  Graph.t ->
  t
(** Compiles the graph and its schedule — and, under
    {!Fixpoint.Fused}, the {!Fuse} plan — once at creation. [strategy]
    defaults to {!Fixpoint.Worklist} — near-linear per instant on
    feed-forward systems — unless [order] is given, which selects
    chaotic iteration under that fixed block order (determinism tests
    shuffle it). Passing [order] together with a non-chaotic [strategy]
    raises [Invalid_argument].

    [telemetry]: each reaction emits one ["instant"] span (args:
    instant index, fixpoint iterations, block evaluations, net churn —
    nets whose fixed-point value differs from the previous instant's),
    maintains ["asr.instants"] / ["asr.block_evaluations"] and one
    ["asr.block.<name>.evals"] counter per block, and feeds the
    ["asr.fixpoint_iterations"] histogram. Disabled registries cost one
    check per reaction.

    [supervisor]: every block application of every instant runs under
    {!Supervisor.guard} (trap containment, budgets, quarantine); the
    simulator drives the supervisor's instant lifecycle and, with
    telemetry on, adds a ["faults"] arg to each instant span. Without a
    supervisor the execution path is exactly the pre-supervisor one —
    no per-application overhead.

    [monitor]: each reaction is bracketed by
    {!Telemetry.Monitor.instant_begin} / [instant_end], recording one
    flight-recorder entry per instant (iterations, block evaluations,
    net churn, faults) and feeding the streaming sketches and windows.
    With only a monitor attached, the O(nets) churn scan runs every
    [Telemetry.Monitor.churn_every] instants rather than every instant
    (records between samples carry churn 0, the sampled record carries
    "nets changed since the previous sample") — always-on monitoring
    must not scale per-instant cost with net count; with [telemetry]
    also enabled churn is exact every instant.
    The record is pushed {e before} [Supervisor.end_instant], so a
    quarantine escalation's flight dump covers the instant that
    triggered it. With both [monitor] and [supervisor], the simulator
    installs a {!Supervisor.set_observer} hook translating fault /
    recovery / quarantine events into monitor block health. The monitor
    is independent of [telemetry]; with both, their cumulative
    ["asr.instants"] / ["asr.block_evaluations"] /
    ["asr.supervisor.faults"] views reconcile exactly because they are
    fed from the same per-instant values.

    [causal]: every reaction is recorded into the bounded causal event
    log as one traced instant (see {!Fixpoint.eval} and
    {!Telemetry.Causal}); the sink's net count must match the compiled
    graph. With both [monitor] and [causal], the monitor's [data_loss]
    object additionally reports the causal ring's overwrite and
    truncated-slice counters. Without a sink the execution path is
    unchanged. *)

val step : t -> (string * Domain.t) list -> (string * Domain.t) list
(** React to one instant's inputs; returns the outputs and advances the
    delay state. *)

val run : t -> (string * Domain.t) list list -> trace_entry list
(** Feed a stream of instants. *)

val strategy : t -> Fixpoint.strategy

val fuse_plan : t -> Fuse.t option
(** The {!Fuse} plan precompiled at creation — [Some] exactly when the
    strategy is {!Fixpoint.Fused}. *)

val schedule : t -> Schedule.t
(** The schedule precompiled at creation. *)

val instant_count : t -> int

val block_evaluations : t -> int
(** Total block applications across all instants since creation (or the
    last {!reset}) — the quantity the scheduling strategies minimize. *)

val delay_state : t -> Domain.t array

val supervisor : t -> Supervisor.t option

val monitor : t -> Telemetry.Monitor.t option

val causal : t -> Domain.t Telemetry.Causal.t option

val telemetry : t -> Telemetry.Registry.t option

val net_values : t -> Domain.t array
(** Copy of the most recent instant's fixed point, indexed by net (all
    ⊥ before the first reaction) — the per-instant observation the
    containment property quantifies over. *)

val reset : t -> unit
(** Back to initial delay values, instant 0, evaluation count 0; also
    resets the attached supervisor, if any. *)

(** {2 Checkpoint state}

    The complete simulator-side state between instants: delay
    registers, last fixed point, churn reference, and the two
    counters. A fresh simulator with this state imported reacts
    bit-identically to the one exported from — attachment state
    (supervisor, monitor, causal log, registry) travels separately via
    the attachments' own checkpoint hooks (see {!Checkpoint}). *)

type state = {
  st_instant : int;
  st_evaluations : int;
  st_delays : Domain.t array;
  st_nets : Domain.t array;
  st_prev_nets : Domain.t array;  (** [[||]] without churn sinks *)
}

val export_state : t -> state
(** Deep copy; valid however the simulator advances afterwards. *)

val import_state : t -> state -> unit
(** Restore into a simulator compiled from the same graph with the same
    strategy and attachment configuration. Raises [Invalid_argument] on
    a delay- or net-count mismatch. *)
