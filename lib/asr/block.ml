type kernel =
  | Opaque
  | Const of Domain.t array
  | Map1 of (Data.t -> Data.t)
  | Map2 of (Data.t -> Data.t -> Data.t)
  | IMap1 of (int -> int) * (Data.t -> Data.t)
  | IMap2 of (int -> int -> int) * (Data.t -> Data.t -> Data.t)
  | Mux
  | Fork
  | Identity

type t = {
  name : string;
  n_in : int;
  n_out : int;
  fn : Domain.t array -> Domain.t array;
  kernel : kernel;
}

let make ?(kernel = Opaque) ~name ~n_in ~n_out fn =
  let checked inputs =
    if Array.length inputs <> n_in then
      invalid_arg
        (Printf.sprintf "block %s: expected %d inputs, got %d" name n_in
           (Array.length inputs));
    let outputs = fn inputs in
    if Array.length outputs <> n_out then
      invalid_arg
        (Printf.sprintf "block %s: produced %d outputs, expected %d" name
           (Array.length outputs) n_out);
    outputs
  in
  { name; n_in; n_out; fn = checked; kernel }

let strict ?kernel ~name ~n_in ~n_out f =
  let fn inputs =
    let all_defined = Array.for_all Domain.is_def inputs in
    if not all_defined then Array.make n_out Domain.Bottom
    else
      let values =
        Array.map
          (function Domain.Def v -> v | Domain.Bottom -> assert false)
          inputs
      in
      Array.map Domain.def (f values)
  in
  make ?kernel ~name ~n_in ~n_out fn

let apply b inputs = b.fn inputs

let monotone_on b lo hi =
  let pointwise_leq a b =
    Array.for_all2 (fun x y -> Domain.leq x y) a b
  in
  (not (pointwise_leq lo hi)) || pointwise_leq (apply b lo) (apply b hi)

let const ~name v =
  make ~kernel:(Const [| Domain.def v |]) ~name ~n_in:0 ~n_out:1 (fun _ ->
      [| Domain.def v |])

let map1 ~name f =
  strict ~kernel:(Map1 f) ~name ~n_in:1 ~n_out:1 (fun vs -> [| f vs.(0) |])

let map2 ~name f =
  strict ~kernel:(Map2 f) ~name ~n_in:2 ~n_out:1 (fun vs ->
      [| f vs.(0) vs.(1) |])

(* Int-specialized maps: [fi] must coincide with [f] on Int operands —
   Fuse's chain compiler runs [fi] over raw ints (no boxing at all) and
   falls back to [f] the moment a non-Int value flows through. *)
let imap1 ~name fi f =
  strict ~kernel:(IMap1 (fi, f)) ~name ~n_in:1 ~n_out:1 (fun vs ->
      [| f vs.(0) |])

let imap2 ~name fi f =
  strict ~kernel:(IMap2 (fi, f)) ~name ~n_in:2 ~n_out:1 (fun vs ->
      [| f vs.(0) vs.(1) |])

let arith name int_op real_op =
  let g a b =
    match (a, b) with
    | Data.Int x, Data.Int y -> Data.Int (int_op x y)
    | Data.Real x, Data.Real y -> Data.Real (real_op x y)
    | Data.Int x, Data.Real y -> Data.Real (real_op (float_of_int x) y)
    | Data.Real x, Data.Int y -> Data.Real (real_op x (float_of_int y))
    | _ -> invalid_arg (Printf.sprintf "block %s: non-numeric operands" name)
  in
  imap2 ~name int_op g

let add = arith "add" ( + ) ( +. )

let sub = arith "sub" ( - ) ( -. )

let mul = arith "mul" ( * ) ( *. )

let gain k =
  imap1
    ~name:(Printf.sprintf "gain%d" k)
    (fun n -> k * n)
    (function
      | Data.Int n -> Data.Int (k * n)
      | Data.Real f -> Data.Real (float_of_int k *. f)
      | v ->
          invalid_arg (Printf.sprintf "gain: non-numeric %s" (Data.to_string v)))

let neg =
  imap1 ~name:"neg"
    (fun n -> -n)
    (function
      | Data.Int n -> Data.Int (-n)
      | Data.Real f -> Data.Real (-.f)
      | v ->
          invalid_arg (Printf.sprintf "neg: non-numeric %s" (Data.to_string v)))

let logical name f =
  map2 ~name (fun a b ->
      match (a, b) with
      | Data.Bool x, Data.Bool y -> Data.Bool (f x y)
      | _ -> invalid_arg (name ^ ": non-boolean operands"))

let logical_and = logical "and" ( && )

let logical_or = logical "or" ( || )

let logical_not =
  map1 ~name:"not" (function
    | Data.Bool b -> Data.Bool (not b)
    | _ -> invalid_arg "not: non-boolean operand")

(* Non-strict: once the select is known, only the chosen branch needs to
   be defined. This is what lets delay-free feedback through the
   unselected branch still converge. *)
let mux =
  make ~kernel:Mux ~name:"mux" ~n_in:3 ~n_out:1 (fun inputs ->
      match inputs.(0) with
      | Domain.Bottom -> [| Domain.Bottom |]
      | Domain.Def (Data.Bool true) -> [| inputs.(1) |]
      | Domain.Def (Data.Bool false) -> [| inputs.(2) |]
      | Domain.Def v ->
          invalid_arg
            (Printf.sprintf "mux: non-boolean select %s" (Data.to_string v)))

let fork n =
  make ~kernel:Fork ~name:(Printf.sprintf "fork%d" n) ~n_in:1 ~n_out:n
    (fun inputs -> Array.make n inputs.(0))

let identity =
  make ~kernel:Identity ~name:"id" ~n_in:1 ~n_out:1 (fun inputs ->
      [| inputs.(0) |])
